package warpsched

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark executes the corresponding
// experiment from internal/exp at the quick scale (2 simulated SMs,
// reduced inputs — see EXPERIMENTS.md) and reports simulated cycles and
// simulated-cycles-per-second as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. cmd/experiments prints the same experiments
// as full text tables with the paper's numbers alongside.

import (
	"fmt"
	"testing"

	"warpsched/internal/exp"
	"warpsched/internal/kernels"
)

// benchCfg is the quick-scale harness configuration.
func benchCfg() exp.Cfg { return exp.Cfg{Quick: true} }

// runExperiment executes a registered experiment b.N times.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := exp.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1_HashtableMotivation regenerates Figure 1: GPU-vs-CPU
// hashtable time, instruction/memory overhead split, SIMD efficiency.
func BenchmarkFig1_HashtableMotivation(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2_SyncStatusDistribution regenerates Figure 2: lock
// acquire / wait exit outcomes under LRR, GTO, CAWA.
func BenchmarkFig2_SyncStatusDistribution(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3_SoftwareBackoff regenerates Figure 3: the software
// back-off delay sweep on the hashtable.
func BenchmarkFig3_SoftwareBackoff(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkTable1_DDOSSensitivity regenerates Table I: TSDR/FSDR/DPR
// across hashing function, width, threshold, history length and sharing.
func BenchmarkTable1_DDOSSensitivity(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig9_FermiExecEnergy regenerates Figure 9: normalized time and
// energy for the sync suite on the Fermi configuration.
func BenchmarkFig9_FermiExecEnergy(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10to13_DelaySweep regenerates Figures 10-13 (one shared
// sweep): execution time, backed-off distribution, lock status and
// dynamic overheads across back-off delay limits.
func BenchmarkFig10to13_DelaySweep(b *testing.B) { runExperiment(b, "delaysweep") }

// BenchmarkFig14_DetectionErrors regenerates Figure 14: MODULO-hash false
// detections throttling sync-free kernels.
func BenchmarkFig14_DetectionErrors(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15_PascalExecEnergy regenerates Figure 15: the Figure 9
// study on the Pascal configuration.
func BenchmarkFig15_PascalExecEnergy(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16_ContentionSensitivity regenerates Figure 16: the
// hashtable bucket sweep (BOWS speedup and instruction savings).
func BenchmarkFig16_ContentionSensitivity(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkTable3_ImplementationCost regenerates Table III (static
// storage arithmetic; trivially fast).
func BenchmarkTable3_ImplementationCost(b *testing.B) { runExperiment(b, "table3") }

// Per-kernel simulation throughput benchmarks: how fast the simulator
// itself runs each workload (simulated cycles per wall second). These
// use the quick suite: its instances are sized for the 2-SM bench
// machine — in particular ST's cross-CTA wait-and-signal, like the real
// BarnesHut sort, requires every CTA to be co-resident (a cooperative
// launch), so its CTA count must not exceed what the machine hosts.
func BenchmarkSimulator(b *testing.B) {
	quick := map[string]*Benchmark{}
	for _, k := range append(kernels.QuickSyncSuite(), kernels.QuickSyncFreeSuite()...) {
		quick[k.Name] = k
	}
	run := func(b *testing.B, name string, bows, noff bool, sms, shards int) {
		k := quick[name]
		if k == nil {
			b.Fatalf("kernel %s not in quick suite", name)
		}
		opt := DefaultOptions()
		opt.GPU = GTX480().Scaled(sms)
		if bows {
			opt.BOWS = DefaultBOWS()
		}
		opt.NoFastForward = noff
		opt.Shards = shards
		var simCycles int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := Run(opt, k)
			if err != nil {
				b.Fatal(err)
			}
			simCycles += res.Stats.Cycles
		}
		b.ReportMetric(float64(simCycles)/float64(b.N), "simcycles/op")
		b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "simcycles/s")
	}
	// The historical labels (kernel, ±BOWS, 2 SMs, serial, fast-forward on)
	// keep their exact names so scripts/bench_regress.sh lines them up
	// against older BENCH_*.json baselines.
	for _, name := range []string{"HT", "ATM", "ST", "TSP", "NW1", "VECADD"} {
		name := name
		for _, bows := range []bool{false, true} {
			label := name
			if bows {
				label += "+BOWS"
			}
			b.Run(label, func(b *testing.B) { run(b, name, bows, false, 2, 1) })
		}
	}
	// Clock and sharding variants on the spin kernels: +noff disables the
	// event-driven fast-forward (per-cycle clock — the gap to the plain
	// label is the fast-forward speedup on identical simulated work), and
	// the sm8 pair runs an 8-SM machine serially vs. on four shard workers
	// (the gap is the sharding speedup). Results are cycle-identical
	// across all variants of the same kernel+machine; only wall time moves.
	for _, v := range []struct {
		label, kernel string
		noff          bool
		sms, shards   int
	}{
		{"HT+BOWS+noff", "HT", true, 2, 1},
		{"ATM+BOWS+noff", "ATM", true, 2, 1},
		{"ST+BOWS+noff", "ST", true, 2, 1},
		{"TSP+BOWS+noff", "TSP", true, 2, 1},
		{"HT+BOWS+sm8", "HT", false, 8, 1},
		{"HT+BOWS+sm8shards4", "HT", false, 8, 4},
		{"TSP+BOWS+sm8", "TSP", false, 8, 1},
		{"TSP+BOWS+sm8shards4", "TSP", false, 8, 4},
	} {
		v := v
		b.Run(v.label, func(b *testing.B) { run(b, v.kernel, true, v.noff, v.sms, v.shards) })
	}
}

// TestExperimentRegistryResolves drives a cheap experiment end to end
// through the registry (the path cmd/experiments uses).
func TestExperimentRegistryResolves(t *testing.T) {
	e, err := exp.ByName("table3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(exp.Cfg{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fmt.Sprint(res)) == 0 {
		t.Fatal("empty rendering")
	}
	if _, err := exp.ByName("nope"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}
