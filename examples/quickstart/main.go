// Quickstart: run the hashtable spin-lock kernel under GTO with and
// without BOWS and compare. This is the smallest end-to-end use of the
// public API: pick a benchmark, pick options, run, read statistics.
package main

import (
	"fmt"
	"log"

	"warpsched"
)

func main() {
	// The HT benchmark is the paper's Figure 1a workload: threads insert
	// random keys into a chained hashtable, acquiring a per-bucket spin
	// lock with atomicCAS.
	k, err := warpsched.Kernel("HT")
	if err != nil {
		log.Fatal(err)
	}

	// Scale the GTX480 down to 4 SMs so the demo runs in seconds; the
	// per-SM structure (48 warp slots, 2 schedulers) is unchanged.
	opt := warpsched.DefaultOptions()
	opt.GPU = warpsched.GTX480().Scaled(4)
	opt.Sched = warpsched.GTO

	baseline, err := warpsched.Run(opt, k)
	if err != nil {
		log.Fatal(err)
	}

	// Same machine, now with the paper's full system: DDOS detects the
	// spin-inducing branch at run time and BOWS deprioritizes and
	// rate-limits warps that take it.
	opt.BOWS = warpsched.DefaultBOWS()
	bows, err := warpsched.Run(opt, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n\n", k.Desc)
	fmt.Printf("%-22s %12s %12s\n", "", "GTO", "GTO+BOWS")
	fmt.Printf("%-22s %12d %12d\n", "cycles", baseline.Stats.Cycles, bows.Stats.Cycles)
	fmt.Printf("%-22s %12d %12d\n", "thread instructions", baseline.Stats.ThreadInstrs, bows.Stats.ThreadInstrs)
	fmt.Printf("%-22s %12d %12d\n", "failed lock acquires",
		baseline.Stats.Sync.InterWarpFail+baseline.Stats.Sync.IntraWarpFail,
		bows.Stats.Sync.InterWarpFail+bows.Stats.Sync.IntraWarpFail)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "SIMD efficiency",
		100*baseline.Stats.SIMDEfficiency(), 100*bows.Stats.SIMDEfficiency())
	fmt.Printf("\nspeedup: %.2fx\n", float64(baseline.Stats.Cycles)/float64(bows.Stats.Cycles))
	fmt.Printf("DDOS confirmed spin-inducing branches at PCs %v (ground truth: %v)\n",
		bows.ConfirmedSIBs, k.Launch.Prog.TrueSIBs)
	fmt.Printf("adaptive back-off delay limits settled at %v cycles\n", bows.FinalDelayLimits)
}
