// Hashtable contention study: the paper's motivating workload (Figure 1)
// swept over bucket counts. Fewer buckets mean more threads fighting per
// lock; the example shows how synchronization overhead grows with
// contention and how much of it BOWS removes (Figure 16).
package main

import (
	"flag"
	"fmt"
	"log"

	"warpsched"
	"warpsched/internal/kernels"
)

func main() {
	items := flag.Int("items", 12288, "keys to insert")
	threads := flag.Int("ctas", 48, "CTAs of 128 threads to launch")
	sms := flag.Int("sms", 4, "SM count (scaled GTX480)")
	flag.Parse()

	fmt.Printf("%8s  %12s %12s %9s  %10s %10s  %8s\n",
		"buckets", "GTO cycles", "BOWS cycles", "speedup", "sync instr", "sync mem", "SIMD")
	for _, buckets := range []int{128, 256, 512, 1024, 2048, 4096} {
		k := kernels.NewHashTable(kernels.HashTableConfig{
			Items: *items, Buckets: buckets, CTAs: *threads, CTAThreads: 128,
		})
		opt := warpsched.DefaultOptions()
		opt.GPU = warpsched.GTX480().Scaled(*sms)
		opt.Sched = warpsched.GTO

		base, err := warpsched.Run(opt, k)
		if err != nil {
			log.Fatal(err)
		}
		opt.BOWS = warpsched.DefaultBOWS()
		bows, err := warpsched.Run(opt, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %12d %12d %8.2fx  %9.1f%% %9.1f%%  %7.1f%%\n",
			buckets, base.Stats.Cycles, bows.Stats.Cycles,
			float64(base.Stats.Cycles)/float64(bows.Stats.Cycles),
			100*base.Stats.SyncInstrFraction(), 100*base.Stats.SyncMemFraction(),
			100*base.Stats.SIMDEfficiency())
	}
	fmt.Println("\nFewer buckets → more contention → more of the machine burned on spinning,")
	fmt.Println("and more for BOWS to win back (paper Figure 16: 5x at 128 buckets, 1.2x at 4096).")
}
