// Wait-and-signal: the BarnesHut sort kernel (paper Figure 6c) uses no
// locks at all — threads busy-wait on flags set by other threads. The
// example shows DDOS detecting the polling loop as spin-inducing (it is
// not an atomicCAS loop!) and reports the wait-exit outcome distribution,
// plus the detection quality metrics of Table I.
package main

import (
	"fmt"
	"log"

	"warpsched"
)

func main() {
	k, err := warpsched.Kernel("ST")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", k.Desc)
	fmt.Println("kernel assembly (the backward branch marked SIB is the ground-truth spin branch):")
	fmt.Println(k.Launch.Prog.Listing())

	opt := warpsched.DefaultOptions()
	opt.GPU = warpsched.GTX480().Scaled(4)
	opt.Sched = warpsched.GTO

	base, err := warpsched.Run(opt, k)
	if err != nil {
		log.Fatal(err)
	}
	opt.BOWS = warpsched.DefaultBOWS()
	bows, err := warpsched.Run(opt, k)
	if err != nil {
		log.Fatal(err)
	}

	det := bows.Detection
	fmt.Printf("DDOS detection: TSDR=%.2f (%d/%d true SIBs), FSDR=%.2f (%d/%d non-SIB backward branches)\n",
		det.TSDR(), det.TrueDetected, det.TrueSeen, det.FSDR(), det.FalseDetected, det.FalseSeen)
	fmt.Printf("confirmed SIB PCs: %v (ground truth: %v)\n\n", bows.ConfirmedSIBs, k.Launch.Prog.TrueSIBs)

	fmt.Printf("%-24s %12s %12s\n", "", "GTO", "GTO+BOWS")
	fmt.Printf("%-24s %12d %12d\n", "cycles", base.Stats.Cycles, bows.Stats.Cycles)
	fmt.Printf("%-24s %12d %12d\n", "thread instructions", base.Stats.ThreadInstrs, bows.Stats.ThreadInstrs)
	fmt.Printf("%-24s %12d %12d\n", "wait-exit successes", base.Stats.Sync.WaitExitSuccess, bows.Stats.Sync.WaitExitSuccess)
	fmt.Printf("%-24s %12d %12d\n", "wait-exit failures", base.Stats.Sync.WaitExitFail, bows.Stats.Sync.WaitExitFail)
	e0 := warpsched.Energy(opt, base)
	e1 := warpsched.Energy(opt, bows)
	fmt.Printf("%-24s %12.0f %12.0f  (nJ, modeled)\n", "dynamic energy", e0.Total()/1e3, e1.Total()/1e3)
	fmt.Printf("\nenergy saving: %.2fx (paper: ST gains 17.8%% energy with little speed change —\n", e0.Total()/e1.Total())
	fmt.Println("the kernel is memory-latency bound, but BOWS removes wasted polling instructions)")
}
