// Scheduler comparison: run every synchronization kernel of the paper's
// suite under all three baseline warp schedulers, each with and without
// BOWS — a miniature of the paper's Figure 9 built directly on the public
// API.
package main

import (
	"flag"
	"fmt"
	"log"

	"warpsched"
)

func main() {
	// 4 SMs minimum: ST's cooperative wait-and-signal launch needs all
	// 32 of its CTAs co-resident (4 SMs × 8 CTAs).
	sms := flag.Int("sms", 4, "SM count (scaled GTX480)")
	flag.Parse()

	kinds := []warpsched.SchedulerKind{warpsched.LRR, warpsched.GTO, warpsched.CAWA}
	fmt.Printf("%-6s", "kernel")
	for _, kind := range kinds {
		fmt.Printf(" %9s %9s", kind, kind+"+B")
	}
	fmt.Println("   (cycles; +B = with BOWS)")

	for _, k := range warpsched.SyncSuite() {
		fmt.Printf("%-6s", k.Name)
		for _, kind := range kinds {
			for _, withBOWS := range []bool{false, true} {
				opt := warpsched.DefaultOptions()
				opt.GPU = warpsched.GTX480().Scaled(*sms)
				opt.Sched = kind
				if withBOWS {
					opt.BOWS = warpsched.DefaultBOWS()
				}
				res, err := warpsched.Run(opt, k)
				if err != nil {
					log.Fatalf("%s under %s: %v", k.Name, kind, err)
				}
				fmt.Printf(" %9d", res.Stats.Cycles)
			}
		}
		fmt.Println()
	}
}
