// Custom kernel: write a spin-lock kernel as PTX-flavoured assembly text,
// assemble it with warpsched.ParseProgram, and run it with and without
// BOWS. This is the workflow for studying synchronization code that is
// not in the built-in suite.
package main

import (
	"fmt"
	"log"

	"warpsched"
)

// Each thread atomically pushes its id onto a shared stack guarded by one
// spin lock: acquire, read top, link, publish, release — the minimal
// lock-protected data structure.
const stackPushSrc = `
  ld.param %r10, 0          // lock address
  ld.param %r11, 1          // top-of-stack address
  ld.param %r12, 2          // next[] base
  mov %r1, %gtid
  mov %r6, 0                // done = 0
push:
  atom.cas %r7, [%r10+0], 0, 1     !acquire,sync
  setp.eq %p1, %r7, 0              !sync
  @!%p1 bra retry reconv=retry
  ld.volatile %r8, [%r11+0]        // old top
  st.global [%r12+%r1], %r8        // next[gtid] = old top
  st.global [%r11+0], %r1          // top = gtid
  mov %r6, 1
  membar                           !sync
  atom.exch %r9, [%r10+0], 0       !release,sync
retry:
  setp.eq %p2, %r6, 0              !sync
  @%p2 bra push                    !sib,sync
  exit
`

func main() {
	prog, err := warpsched.ParseProgram("stackpush", stackPushSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.Listing())

	const threads = 2048
	const (
		lockAddr = 0
		topAddr  = 32
		nextBase = 64
	)
	launch := warpsched.Launch{
		Prog:       prog,
		GridCTAs:   threads / 128,
		CTAThreads: 128,
		Params:     []uint32{lockAddr, topAddr, nextBase},
		MemWords:   nextBase + threads + 64,
		Setup: func(w []uint32) {
			w[topAddr] = 0xFFFFFFFF // empty stack
		},
	}
	bench := warpsched.NewBenchmark("stackpush", "lock-protected stack push", launch,
		func(w []uint32) error {
			// Every thread id must appear exactly once on the stack.
			seen := make([]bool, threads)
			count := 0
			for cur := w[topAddr]; cur != 0xFFFFFFFF; cur = w[nextBase+cur] {
				if cur >= threads || seen[cur] {
					return fmt.Errorf("corrupt stack at %d", cur)
				}
				seen[cur] = true
				count++
			}
			if count != threads {
				return fmt.Errorf("stack has %d entries, want %d", count, threads)
			}
			return nil
		})

	opt := warpsched.DefaultOptions()
	opt.GPU = warpsched.GTX480().Scaled(2)
	base, err := warpsched.Run(opt, bench)
	if err != nil {
		log.Fatal(err)
	}
	opt.BOWS = warpsched.DefaultBOWS()
	bows, err := warpsched.Run(opt, bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GTO: %d cycles, %d failed acquires\n", base.Stats.Cycles,
		base.Stats.Sync.InterWarpFail+base.Stats.Sync.IntraWarpFail)
	fmt.Printf("GTO+BOWS: %d cycles, %d failed acquires (detected SIBs at %v, truth %v)\n",
		bows.Stats.Cycles, bows.Stats.Sync.InterWarpFail+bows.Stats.Sync.IntraWarpFail,
		bows.ConfirmedSIBs, prog.TrueSIBs)
}
