// Package simt models SIMT execution state: warps with per-lane register
// files, the stack-based reconvergence mechanism of pre-Volta NVIDIA GPUs
// (the architecture the paper targets), divergence/reconvergence on
// annotated branches, CTA barriers, and the functional execution of one
// warp instruction.
//
// Functional effects of non-memory instructions are applied immediately;
// memory instructions return the per-lane accesses for the memory system
// to perform at service time, so atomics interleave in simulated-time
// order (see internal/mem).
package simt

import (
	"fmt"
	"math/bits"

	"warpsched/internal/isa"
)

// StackEntry is one SIMT reconvergence stack entry.
type StackEntry struct {
	PC     int32
	Reconv int32 // reconvergence PC; NoReconv for the base entry
	Mask   uint32
}

// CTA groups the warps of one cooperative thread array for barriers and
// special registers.
type CTA struct {
	ID         int32
	ThreadsPer int32 // threads per CTA (blockDim.x)
	GridCTAs   int32 // gridDim.x
	NumWarps   int
	// barrier bookkeeping
	arrived int
	waiting []*Warp
	// liveWarps counts warps that have not fully exited.
	liveWarps int
	// Released latches a barrier release — every live warp arrived, or
	// the last straggler exited while others waited. Purely
	// observational: the engine's Observer wiring consumes and clears
	// it; nothing else reads it.
	Released bool
}

// Warp is one resident warp's complete architectural state.
type Warp struct {
	Prog *isa.Program
	CTA  *CTA
	// IDInCTA is the warp's index within its CTA; Slot its SM warp slot.
	IDInCTA int
	Slot    int
	SM      int
	// GTIDBase is the global thread id of lane 0.
	GTIDBase int32
	// Params are the kernel parameters read by OpLdParam.
	Params []uint32

	Stack  []StackEntry
	Exited uint32 // lanes that executed OpExit
	Valid  uint32 // lanes that exist (partial last warp)
	// ProfiledLane is the thread whose setp operands feed the DDOS
	// history registers: re-latched to the lowest lane taking each
	// backward branch (the thread staying in the loop), so guarded setps
	// executed by other lanes are skipped rather than mixed in.
	ProfiledLane int
	Done         bool
	// AtBarrier marks the warp blocked on bar.sync.
	AtBarrier bool

	regs  []uint32 // 32 * NumRegs, lane-major: regs[lane*NumRegs+r]
	preds []bool   // 32 * NumPreds

	// memScratch backs ExecResult.Mem. The engine converts the accesses
	// into its memory request before the warp's next Execute, so one
	// buffer per warp suffices and the issue path stays allocation-free.
	memScratch []MemAccess
}

// NewCTA creates barrier state for a CTA of numWarps warps.
func NewCTA(id, threadsPer, gridCTAs int32, numWarps int) *CTA {
	return &CTA{ID: id, ThreadsPer: threadsPer, GridCTAs: gridCTAs,
		NumWarps: numWarps, liveWarps: numWarps}
}

// NewWarp creates a warp with valid lanes [0,lanes) and a full active
// mask, PC 0.
func NewWarp(prog *isa.Program, cta *CTA, idInCTA, slot, sm int, gtidBase int32, lanes int) *Warp {
	var valid uint32
	if lanes >= 32 {
		valid = ^uint32(0)
	} else {
		valid = (uint32(1) << lanes) - 1
	}
	w := &Warp{
		Prog: prog, CTA: cta, IDInCTA: idInCTA, Slot: slot, SM: sm,
		GTIDBase: gtidBase, Valid: valid,
		regs:       make([]uint32, 32*isa.NumRegs),
		preds:      make([]bool, 32*isa.NumPreds),
		memScratch: make([]MemAccess, 0, 32),
	}
	w.Stack = append(w.Stack, StackEntry{PC: 0, Reconv: isa.NoReconv, Mask: valid})
	w.ProfiledLane = bits.TrailingZeros32(valid)
	return w
}

// Reg returns lane's register r (for tests and result verification).
func (w *Warp) Reg(lane int, r isa.Reg) uint32 { return w.regs[lane*isa.NumRegs+int(r)] }

// SetReg sets lane's register r.
func (w *Warp) SetReg(lane int, r isa.Reg, v uint32) { w.regs[lane*isa.NumRegs+int(r)] = v }

// PredVal returns lane's predicate p.
func (w *Warp) PredVal(lane int, p isa.Pred) bool { return w.preds[lane*isa.NumPreds+int(p)] }

// SetPred sets lane's predicate p.
func (w *Warp) SetPred(lane int, p isa.Pred, v bool) { w.preds[lane*isa.NumPreds+int(p)] = v }

// PC returns the current program counter (top of SIMT stack).
func (w *Warp) PC() int32 { return w.Stack[len(w.Stack)-1].PC }

// ActiveMask returns the lanes that will execute the next instruction.
func (w *Warp) ActiveMask() uint32 {
	if w.Done {
		return 0
	}
	return w.Stack[len(w.Stack)-1].Mask &^ w.Exited
}

// NextInstr returns the instruction the warp will execute next.
func (w *Warp) NextInstr() *isa.Instr {
	return w.Prog.At(w.PC())
}

// EvalAddr computes the effective address in.A + in.B of a memory
// instruction for lane, without executing it. Hang diagnosis uses it to
// name the lock word a stuck acquire is waiting on; address operands
// never read %clock, so the clock is evaluated as zero.
func (w *Warp) EvalAddr(in *isa.Instr, lane int) uint32 {
	return w.operand(in.A, lane, 0) + w.operand(in.B, lane, 0)
}

// popReconverged pops stack entries whose PC reached their reconvergence
// point, merging divergent paths, and retires empty entries.
func (w *Warp) popReconverged() {
	for len(w.Stack) > 1 {
		top := &w.Stack[len(w.Stack)-1]
		if top.Mask&^w.Exited == 0 || (top.Reconv != isa.NoReconv && top.PC == top.Reconv) {
			w.Stack = w.Stack[:len(w.Stack)-1]
			continue
		}
		return
	}
	if w.Stack[0].Mask&^w.Exited == 0 {
		w.finish()
	}
}

func (w *Warp) finish() {
	if !w.Done {
		w.Done = true
		w.CTA.warpFinished()
	}
}

// warpFinished accounts a retired warp and releases the barrier if the
// remaining live warps have all arrived.
func (c *CTA) warpFinished() {
	c.liveWarps--
	if c.arrived > 0 && c.arrived >= c.liveWarps {
		for _, ww := range c.waiting {
			ww.AtBarrier = false
		}
		c.waiting = c.waiting[:0]
		c.arrived = 0
		c.Released = true
	}
}

// guardMask returns the lanes in mask whose guard predicate passes.
func (w *Warp) guardMask(in *isa.Instr, mask uint32) uint32 {
	if !in.Guarded() {
		return mask
	}
	var g uint32
	p := int(in.Guard)
	for lane := 0; lane < 32; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		v := w.preds[lane*isa.NumPreds+p]
		if v != in.GuardNeg {
			g |= 1 << lane
		}
	}
	return g
}

// operand evaluates o for lane.
func (w *Warp) operand(o isa.Operand, lane int, clock int64) uint32 {
	switch o.Kind {
	case isa.OpdReg:
		return w.regs[lane*isa.NumRegs+int(o.Reg)]
	case isa.OpdImm:
		return uint32(o.Imm)
	case isa.OpdSpecial:
		switch o.Spec {
		case isa.SpecTID:
			return uint32(w.IDInCTA*32 + lane)
		case isa.SpecNTID:
			return uint32(w.CTA.ThreadsPer)
		case isa.SpecCTAID:
			return uint32(w.CTA.ID)
		case isa.SpecNCTAID:
			return uint32(w.CTA.GridCTAs)
		case isa.SpecLaneID:
			return uint32(lane)
		case isa.SpecWarpID:
			return uint32(w.IDInCTA)
		case isa.SpecSMID:
			return uint32(w.SM)
		case isa.SpecGTID:
			return uint32(w.GTIDBase + int32(lane))
		case isa.SpecClock:
			return uint32(clock)
		}
	}
	return 0
}

// MemAccess is one lane's pending access (re-exported shape; the sim
// engine converts to mem.Access to avoid an import cycle).
type MemAccess struct {
	Lane   int
	Addr   uint32
	V1, V2 uint32
	GTID   int32
}

// ExecResult describes the side effects of executing one instruction.
type ExecResult struct {
	// Instr is the executed instruction; PC its address.
	Instr *isa.Instr
	PC    int32
	// EffMask is the lanes that actually executed (active ∧ guard); for
	// branches it is the full active mask.
	EffMask uint32
	// Mem holds per-lane accesses for memory operations (nil otherwise).
	Mem []MemAccess
	// Branch fields.
	IsBranch      bool
	Taken         uint32 // lanes that took the branch
	NotTaken      uint32
	BackwardTaken bool // branch was backward and taken by ≥1 lane
	Diverged      bool
	// Setp observation for DDOS: source values of the first active lane
	// (the profiled thread), and which lane that was.
	IsSetp         bool
	SetpLane       int
	SetpV1, SetpV2 uint32
	// Barrier is set when the warp blocked on bar.sync.
	Barrier bool
	// ExitedLanes is the mask of lanes that retired this cycle.
	ExitedLanes uint32
}

// ActiveLanes returns the number of executing lanes.
func (r *ExecResult) ActiveLanes() int { return bits.OnesCount32(r.EffMask) }

// Execute runs the instruction at the warp's PC. clock is the SM cycle
// (for %clock). Memory instructions compute addresses and operands but
// defer data movement to the memory system: the caller must apply
// WritebackMem once results are available. All other instructions commit
// immediately and the PC/stack advance before returning.
func (w *Warp) Execute(clock int64) ExecResult {
	if w.Done {
		panic("simt: Execute on finished warp")
	}
	pc := w.PC()
	in := w.Prog.At(pc)
	active := w.ActiveMask()
	res := ExecResult{Instr: in, PC: pc, EffMask: active}

	if in.Op == isa.OpBra {
		w.execBranch(in, pc, active, &res)
		w.popReconverged()
		return res
	}

	eff := active & w.guardMask(in, active)
	res.EffMask = eff
	top := &w.Stack[len(w.Stack)-1]

	switch in.Op {
	case isa.OpNop, isa.OpMembar:
		// Timing handled by the engine.
	case isa.OpExit:
		w.Exited |= eff
		res.ExitedLanes = eff
	case isa.OpBar:
		res.Barrier = true
		// Arrival/release handled by the engine via CTA.Arrive.
	case isa.OpMov, isa.OpLdParam, isa.OpSelp,
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpMin, isa.OpMax, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr:
		for lane := 0; lane < 32; lane++ {
			if eff&(1<<lane) == 0 {
				continue
			}
			w.regs[lane*isa.NumRegs+int(in.Dst)] = w.alu(in, lane, clock)
		}
	case isa.OpSetp:
		// A setp record is produced only when the warp's profiled thread
		// executes the setp, so the history never mixes values from
		// different threads. If the profiled thread has exited, fall back
		// to the lowest live lane.
		if w.Valid&^w.Exited&(1<<w.ProfiledLane) == 0 {
			w.ProfiledLane = bits.TrailingZeros32(w.Valid &^ w.Exited)
		}
		profiled := w.ProfiledLane
		for lane := 0; lane < 32; lane++ {
			if eff&(1<<lane) == 0 {
				continue
			}
			a := w.operand(in.A, lane, clock)
			b := w.operand(in.B, lane, clock)
			w.preds[lane*isa.NumPreds+int(in.PDst)] = in.Cmp.Eval(a, b)
			if lane == profiled {
				res.IsSetp, res.SetpV1, res.SetpV2 = true, a, b
				res.SetpLane = lane
			}
		}
	case isa.OpLd, isa.OpSt, isa.OpAtomCAS, isa.OpAtomExch, isa.OpAtomAdd, isa.OpAtomMax:
		res.Mem = w.buildAccesses(in, eff, clock)
	default:
		panic(fmt.Sprintf("simt: unimplemented opcode %v", in.Op))
	}

	top.PC = pc + 1
	w.popReconverged()
	return res
}

func (w *Warp) alu(in *isa.Instr, lane int, clock int64) uint32 {
	a := w.operand(in.A, lane, clock)
	switch in.Op {
	case isa.OpMov:
		return a
	case isa.OpLdParam:
		if int(in.Param) >= len(w.Params) {
			panic(fmt.Sprintf("simt: %s: ld.param %d out of range (%d params)",
				w.Prog.Name, in.Param, len(w.Params)))
		}
		return w.Params[in.Param]
	case isa.OpSelp:
		b := w.operand(in.B, lane, clock)
		if w.preds[lane*isa.NumPreds+int(in.PSrc)] {
			return a
		}
		return b
	}
	b := w.operand(in.B, lane, clock)
	sa, sb := int32(a), int32(b)
	switch in.Op {
	case isa.OpAdd:
		return uint32(sa + sb)
	case isa.OpSub:
		return uint32(sa - sb)
	case isa.OpMul:
		return uint32(sa * sb)
	case isa.OpDiv:
		if sb == 0 {
			return 0
		}
		return uint32(sa / sb)
	case isa.OpRem:
		if sb == 0 {
			return 0
		}
		return uint32(sa % sb)
	case isa.OpMin:
		if sa < sb {
			return a
		}
		return b
	case isa.OpMax:
		if sa > sb {
			return a
		}
		return b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpShl:
		return a << (b & 31)
	case isa.OpShr:
		return a >> (b & 31)
	}
	panic("simt: alu: bad opcode")
}

// buildAccesses builds the per-lane access list for a memory instruction
// in the warp's scratch buffer (valid until the warp's next Execute).
func (w *Warp) buildAccesses(in *isa.Instr, eff uint32, clock int64) []MemAccess {
	out := w.memScratch[:0]
	for lane := 0; lane < 32; lane++ {
		if eff&(1<<lane) == 0 {
			continue
		}
		addr := w.operand(in.A, lane, clock) + w.operand(in.B, lane, clock)
		acc := MemAccess{Lane: lane, Addr: addr, GTID: w.GTIDBase + int32(lane)}
		switch in.Op {
		case isa.OpSt, isa.OpAtomExch, isa.OpAtomAdd, isa.OpAtomMax:
			acc.V1 = w.operand(in.C, lane, clock)
		case isa.OpAtomCAS:
			acc.V1 = w.operand(in.C, lane, clock)
			acc.V2 = w.operand(in.D, lane, clock)
		}
		out = append(out, acc)
	}
	w.memScratch = out
	return out
}

// execBranch updates the SIMT stack for a (possibly divergent) branch.
func (w *Warp) execBranch(in *isa.Instr, pc int32, active uint32, res *ExecResult) {
	res.IsBranch = true
	top := &w.Stack[len(w.Stack)-1]
	if !in.Guarded() {
		// Unconditional: all active lanes jump, no divergence.
		res.Taken = active
		top.PC = in.Target
		res.BackwardTaken = in.Target <= pc && active != 0
		if res.BackwardTaken {
			w.ProfiledLane = bits.TrailingZeros32(active)
		}
		return
	}
	taken := active & w.guardMask(in, active)
	notTaken := active &^ taken
	res.Taken, res.NotTaken = taken, notTaken
	res.BackwardTaken = in.Target <= pc && taken != 0
	if res.BackwardTaken {
		// Loop boundary: the profiled thread for the next iteration is
		// the lowest lane staying in the loop.
		w.ProfiledLane = bits.TrailingZeros32(taken)
	}
	switch {
	case taken == 0:
		top.PC = pc + 1
	case notTaken == 0:
		top.PC = in.Target
	default:
		res.Diverged = true
		// Standard reconvergence-stack divergence: the current entry
		// becomes the reconvergence entry; the not-taken path is pushed
		// below the taken path, so the taken side executes first.
		top.PC = in.Reconv
		w.Stack = append(w.Stack,
			StackEntry{PC: pc + 1, Reconv: in.Reconv, Mask: notTaken},
			StackEntry{PC: in.Target, Reconv: in.Reconv, Mask: taken},
		)
	}
}

// Arrive registers the warp at its CTA barrier; it returns true when the
// barrier released (all live warps arrived), in which case every waiting
// warp including this one has been unblocked.
func (c *CTA) Arrive(w *Warp) bool {
	w.AtBarrier = true
	c.arrived++
	c.waiting = append(c.waiting, w)
	if c.arrived < c.liveWarps {
		return false
	}
	for _, ww := range c.waiting {
		ww.AtBarrier = false
	}
	c.waiting = c.waiting[:0]
	c.arrived = 0
	c.Released = true
	return true
}

// LiveWarps returns the CTA's not-yet-finished warp count.
func (c *CTA) LiveWarps() int { return c.liveWarps }
