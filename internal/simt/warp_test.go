package simt

import (
	"math/bits"
	"testing"
	"testing/quick"

	"warpsched/internal/isa"
)

// run executes w functionally, applying memory against words, for at most
// maxSteps instructions.
func run(t *testing.T, w *Warp, words []uint32, maxSteps int) {
	t.Helper()
	for step := 0; step < maxSteps && !w.Done; step++ {
		in := w.NextInstr()
		res := w.Execute(int64(step))
		for i := range res.Mem {
			a := &res.Mem[i]
			switch in.Op {
			case isa.OpLd:
				w.SetReg(a.Lane, in.Dst, words[a.Addr])
			case isa.OpSt:
				words[a.Addr] = a.V1
			case isa.OpAtomCAS:
				old := words[a.Addr]
				if old == a.V1 {
					words[a.Addr] = a.V2
				}
				w.SetReg(a.Lane, in.Dst, old)
			case isa.OpAtomExch:
				old := words[a.Addr]
				words[a.Addr] = a.V1
				w.SetReg(a.Lane, in.Dst, old)
			case isa.OpAtomAdd:
				old := words[a.Addr]
				words[a.Addr] = old + a.V1
				w.SetReg(a.Lane, in.Dst, old)
			}
		}
	}
	if !w.Done {
		t.Fatalf("warp did not finish in %d steps", maxSteps)
	}
}

func newTestWarp(prog *isa.Program, lanes int) *Warp {
	cta := NewCTA(0, int32(lanes), 1, 1)
	w := NewWarp(prog, cta, 0, 0, 0, 0, lanes)
	return w
}

func TestSpecialRegisters(t *testing.T) {
	b := isa.NewBuilder("specials")
	b.Mov(1, isa.S(isa.SpecTID))
	b.Mov(2, isa.S(isa.SpecLaneID))
	b.Mov(3, isa.S(isa.SpecNTID))
	b.Mov(4, isa.S(isa.SpecCTAID))
	b.Mov(5, isa.S(isa.SpecGTID))
	b.Exit()
	p := b.MustBuild()
	cta := NewCTA(3, 64, 5, 2)
	w := NewWarp(p, cta, 1, 0, 0, 3*64+32, 32) // second warp of CTA 3
	for !w.Done {
		w.Execute(0)
	}
	for lane := 0; lane < 32; lane++ {
		if got := w.Reg(lane, 1); got != uint32(32+lane) {
			t.Fatalf("lane %d tid = %d, want %d", lane, got, 32+lane)
		}
		if got := w.Reg(lane, 2); got != uint32(lane) {
			t.Fatalf("lane %d laneid = %d", lane, got)
		}
		if got := w.Reg(lane, 3); got != 64 {
			t.Fatalf("ntid = %d", got)
		}
		if got := w.Reg(lane, 4); got != 3 {
			t.Fatalf("ctaid = %d", got)
		}
		if got := w.Reg(lane, 5); got != uint32(3*64+32+lane) {
			t.Fatalf("gtid = %d", got)
		}
	}
}

func TestALUSemantics(t *testing.T) {
	b := isa.NewBuilder("alu")
	b.Mov(1, isa.I(-7))
	b.Mov(2, isa.I(3))
	b.Add(10, isa.R(1), isa.R(2))  // -4
	b.Sub(11, isa.R(1), isa.R(2))  // -10
	b.Mul(12, isa.R(1), isa.R(2))  // -21
	b.Div(13, isa.R(1), isa.R(2))  // -2 (trunc toward zero)
	b.Rem(14, isa.R(1), isa.R(2))  // -1
	b.Div(15, isa.R(1), isa.I(0))  // 0 (guarded)
	b.Rem(16, isa.R(1), isa.I(0))  // 0
	b.Min(17, isa.R(1), isa.R(2))  // -7 signed
	b.Max(18, isa.R(1), isa.R(2))  // 3
	b.Shl(19, isa.I(1), isa.I(33)) // shift mod 32 → 2
	b.Shr(20, isa.I(-4), isa.I(1)) // logical: huge positive
	b.Exit()
	p := b.MustBuild()
	w := newTestWarp(p, 1)
	for !w.Done {
		w.Execute(0)
	}
	want := map[isa.Reg]int32{10: -4, 11: -10, 12: -21, 13: -2, 14: -1,
		15: 0, 16: 0, 17: -7, 18: 3, 19: 2}
	for r, v := range want {
		if got := int32(w.Reg(0, r)); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
	if got := w.Reg(0, 20); got != uint32(0xFFFFFFFC)>>1 {
		t.Errorf("logical shr wrong: %d", w.Reg(0, 20))
	}
}

func TestSelp(t *testing.T) {
	b := isa.NewBuilder("selp")
	b.Mov(1, isa.S(isa.SpecLaneID))
	b.And(2, isa.R(1), isa.I(1))
	b.Setp(isa.EQ, 0, isa.R(2), isa.I(0))
	b.Selp(3, 0, isa.I(100), isa.I(200))
	b.Exit()
	p := b.MustBuild()
	w := newTestWarp(p, 32)
	for !w.Done {
		w.Execute(0)
	}
	for lane := 0; lane < 32; lane++ {
		want := uint32(200)
		if lane%2 == 0 {
			want = 100
		}
		if got := w.Reg(lane, 3); got != want {
			t.Fatalf("lane %d selp = %d, want %d", lane, got, want)
		}
	}
}

func TestGuardedInstructionSkipsLanes(t *testing.T) {
	b := isa.NewBuilder("guard")
	b.Mov(1, isa.S(isa.SpecLaneID))
	b.Setp(isa.LT, 0, isa.R(1), isa.I(4))
	b.Mov(2, isa.I(1))
	b.Emit(isa.Instr{Op: isa.OpMov, Dst: 2, A: isa.I(9), Guard: 0})
	b.Exit()
	p := b.MustBuild()
	w := newTestWarp(p, 8)
	for !w.Done {
		w.Execute(0)
	}
	for lane := 0; lane < 8; lane++ {
		want := uint32(1)
		if lane < 4 {
			want = 9
		}
		if got := w.Reg(lane, 2); got != want {
			t.Fatalf("lane %d r2 = %d, want %d", lane, got, want)
		}
	}
}

// TestStackMaskPartition checks the central SIMT stack invariant under a
// randomized divergence pattern: whenever the warp diverges, the taken
// and not-taken masks partition the active mask, and all lanes eventually
// reconverge with the full mask.
func TestStackMaskPartition(t *testing.T) {
	f := func(sel uint32, sel2 uint32) bool {
		b := isa.NewBuilder("q")
		b.Mov(1, isa.S(isa.SpecLaneID))
		b.Mov(5, isa.I(0))
		// Diverge on bit pattern of sel: lanes where (sel>>lane)&1 == 1.
		b.Mov(2, isa.I(int32(sel)))
		b.Shr(3, isa.R(2), isa.R(1))
		b.And(3, isa.R(3), isa.I(1))
		b.Setp(isa.EQ, 0, isa.R(3), isa.I(1))
		b.IfElse(0, false,
			func() {
				b.Mov(2, isa.I(int32(sel2)))
				b.Shr(3, isa.R(2), isa.R(1))
				b.And(3, isa.R(3), isa.I(1))
				b.Setp(isa.EQ, 1, isa.R(3), isa.I(1))
				b.IfElse(1, false,
					func() { b.Add(5, isa.R(5), isa.I(3)) },
					func() { b.Add(5, isa.R(5), isa.I(5)) })
			},
			func() { b.Add(5, isa.R(5), isa.I(7)) })
		b.Add(5, isa.R(5), isa.I(100)) // post-reconvergence, all lanes
		b.Exit()
		p, err := b.Build()
		if err != nil {
			return false
		}
		w := newTestWarp(p, 32)
		for step := 0; step < 200 && !w.Done; step++ {
			active := w.ActiveMask()
			res := w.Execute(0)
			if res.Diverged {
				if res.Taken&res.NotTaken != 0 || res.Taken|res.NotTaken != active {
					return false
				}
			}
		}
		if !w.Done {
			return false
		}
		for lane := 0; lane < 32; lane++ {
			want := uint32(7)
			if sel>>lane&1 == 1 {
				if sel2>>lane&1 == 1 {
					want = 3
				} else {
					want = 5
				}
			}
			if w.Reg(lane, 5) != want+100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExitPartialLanes(t *testing.T) {
	// Half the lanes exit early; the rest continue and write.
	b := isa.NewBuilder("exit")
	b.Mov(1, isa.S(isa.SpecLaneID))
	b.Setp(isa.LT, 0, isa.R(1), isa.I(16))
	b.If(0, false, func() { b.Exit() })
	b.St(isa.I(0), isa.R(1), isa.R(1))
	b.Exit()
	p := b.MustBuild()
	w := newTestWarp(p, 32)
	words := make([]uint32, 64)
	run(t, w, words, 100)
	for lane := 0; lane < 32; lane++ {
		want := uint32(0)
		if lane >= 16 {
			want = uint32(lane)
		}
		if words[lane] != want {
			t.Fatalf("words[%d] = %d, want %d", lane, words[lane], want)
		}
	}
}

func TestPartialWarpValidMask(t *testing.T) {
	b := isa.NewBuilder("partial")
	b.Mov(1, isa.I(1))
	b.Exit()
	p := b.MustBuild()
	w := newTestWarp(p, 20)
	if bits.OnesCount32(w.ActiveMask()) != 20 {
		t.Fatalf("partial warp active mask = %08x", w.ActiveMask())
	}
	res := w.Execute(0)
	if res.ActiveLanes() != 20 {
		t.Fatalf("ActiveLanes = %d, want 20", res.ActiveLanes())
	}
}

func TestBarrierReleaseOnLastArrival(t *testing.T) {
	b := isa.NewBuilder("bar")
	b.Bar()
	b.Exit()
	p := b.MustBuild()
	cta := NewCTA(0, 96, 1, 3)
	warps := []*Warp{
		NewWarp(p, cta, 0, 0, 0, 0, 32),
		NewWarp(p, cta, 1, 1, 0, 32, 32),
		NewWarp(p, cta, 2, 2, 0, 64, 32),
	}
	for i, w := range warps {
		w.Execute(0) // bar
		released := cta.Arrive(w)
		if i < 2 && released {
			t.Fatalf("barrier released after %d arrivals", i+1)
		}
		if i < 2 && !w.AtBarrier {
			t.Fatal("warp should block at barrier")
		}
	}
	for _, w := range warps {
		if w.AtBarrier {
			t.Fatal("all warps should be released")
		}
	}
}

func TestBarrierReleasesWhenOtherWarpExits(t *testing.T) {
	// One warp exits without reaching the barrier; the barrier must then
	// release on the remaining live warps.
	bExit := isa.NewBuilder("bexit")
	bExit.Exit()
	pExit := bExit.MustBuild()
	bBar := isa.NewBuilder("bbar")
	bBar.Bar()
	bBar.Exit()
	pBar := bBar.MustBuild()

	cta := NewCTA(0, 64, 1, 2)
	w0 := NewWarp(pBar, cta, 0, 0, 0, 0, 32)
	w1 := NewWarp(pExit, cta, 1, 1, 0, 32, 32)
	w0.Execute(0)
	cta.Arrive(w0)
	if !w0.AtBarrier {
		t.Fatal("w0 should wait")
	}
	w1.Execute(0) // exit → warpFinished → release
	if !w1.Done {
		t.Fatal("w1 should be done")
	}
	if w0.AtBarrier {
		t.Fatal("barrier must release when the other warp exits")
	}
}

func TestSetpProfiledLane(t *testing.T) {
	// The profiled thread is latched to the lowest lane taking each
	// backward branch; setps the profiled thread does not execute produce
	// no record (guarded setps by other lanes must never be mixed in).
	b := isa.NewBuilder("prof")
	b.Mov(1, isa.S(isa.SpecLaneID))
	b.Setp(isa.GE, 0, isa.R(1), isa.I(8))
	b.If(0, false, func() {
		b.Setp(isa.EQ, 1, isa.R(1), isa.R(1)) // only lanes ≥ 8 active
	})
	// A loop whose backward branch is taken once, by lanes ≥ 16 only:
	// the profiled thread re-latches to lane 16.
	b.Mov(2, isa.I(0))
	b.Label("top")
	b.Add(2, isa.R(2), isa.I(1))
	b.Setp(isa.GE, 2, isa.R(1), isa.I(16))
	b.Setp(isa.EQ, 3, isa.R(2), isa.I(1))
	// take once (r2==1) and only for lanes >= 16: p4 = both
	b.Selp(3, 2, isa.R(2), isa.I(99)) // lanes <16: r3=99; lanes>=16: r3=r2
	b.Setp(isa.EQ, 3, isa.R(3), isa.I(1))
	b.BraP(3, false, "top", "")
	b.Setp(isa.EQ, 4, isa.R(1), isa.R(1)) // full-warp setp after loop
	b.Exit()
	p := b.MustBuild()
	w := newTestWarp(p, 32)
	var innerRecorded bool
	var lastLane = -1
	for !w.Done {
		res := w.Execute(0)
		if res.IsSetp {
			lastLane = res.SetpLane
			if res.Instr.PDst == 1 {
				innerRecorded = true
			}
		}
	}
	if innerRecorded {
		t.Fatal("guarded setp not executed by the profiled thread must not be recorded")
	}
	if lastLane != 16 {
		t.Fatalf("profiled lane after backward branch = %d, want 16", lastLane)
	}
}

func TestMemAccessOperands(t *testing.T) {
	b := isa.NewBuilder("mem")
	b.Mov(1, isa.S(isa.SpecLaneID))
	b.AtomCAS(2, isa.I(100), isa.R(1), isa.I(0), isa.I(1))
	b.Exit()
	p := b.MustBuild()
	w := newTestWarp(p, 4)
	w.Execute(0) // mov
	res := w.Execute(0)
	if len(res.Mem) != 4 {
		t.Fatalf("accesses = %d, want 4", len(res.Mem))
	}
	for i, a := range res.Mem {
		if a.Addr != uint32(100+i) || a.V1 != 0 || a.V2 != 1 || a.Lane != i {
			t.Fatalf("access %d = %+v", i, a)
		}
	}
}
