package store

import (
	"os"
	"sync"
	"syscall"
)

// FaultConfig tunes a FaultFS: per-operation failure periods (every
// Nth operation of that kind fails; 0 disables that fault) and whether
// failed writes tear (write a prefix before erroring) instead of
// failing cleanly. Failures surface as Err (default syscall.ENOSPC).
// Periods are driven by a seeded xorshift64* generator, so a given
// (seed, schedule) is fully reproducible — the same contract as the
// memory fault injector (mem.FaultConfig).
type FaultConfig struct {
	// WriteEvery fails (approximately) one in WriteEvery writes.
	WriteEvery int
	// SyncEvery fails one in SyncEvery file fsyncs.
	SyncEvery int
	// RenameEvery fails one in RenameEvery renames.
	RenameEvery int
	// TornWrites makes failing writes first persist a random-length
	// prefix, simulating a partial page flush before the device filled.
	TornWrites bool
	// Err is the injected error (default syscall.ENOSPC).
	Err error
}

// FaultFS wraps another FS and injects deterministic, seeded failures
// into its write path. Reads always pass through: the chaos harness
// corrupts bytes via the real filesystem, while FaultFS models the
// device refusing writes (ENOSPC, failed fsync, failed rename). Safe
// for concurrent use. Enabled by default; SetEnabled(false) "frees disk
// space" mid-test.
type FaultFS struct {
	base FS
	cfg  FaultConfig

	mu       sync.Mutex
	rng      uint64
	enabled  bool
	injected int64
}

// NewFaultFS wraps base with the seeded fault schedule cfg describes.
func NewFaultFS(base FS, seed uint64, cfg FaultConfig) *FaultFS {
	if cfg.Err == nil {
		cfg.Err = syscall.ENOSPC
	}
	if seed == 0 {
		seed = 1
	}
	return &FaultFS{base: base, cfg: cfg, rng: seed, enabled: true}
}

// SetEnabled turns fault injection on or off; disabling it mid-test
// models the disk recovering (space freed, device healthy again).
func (f *FaultFS) SetEnabled(on bool) {
	f.mu.Lock()
	f.enabled = on
	f.mu.Unlock()
}

// Injected returns how many faults have fired so far.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// next steps the xorshift64* generator.
func (f *FaultFS) next() uint64 {
	f.rng ^= f.rng >> 12
	f.rng ^= f.rng << 25
	f.rng ^= f.rng >> 27
	return f.rng * 0x2545F4914F6CDD1D
}

// trip decides whether the next operation with period p fails, and
// also draws the torn-write fraction (numerator of n/256).
func (f *FaultFS) trip(p int) (fail bool, tear int) {
	if p <= 0 {
		return false, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.next()
	if !f.enabled {
		return false, 0
	}
	if int(r%uint64(p)) == 0 {
		f.injected++
		return true, int(r >> 32 % 256)
	}
	return false, 0
}

// MkdirAll implements FS (pass-through).
func (f *FaultFS) MkdirAll(path string) error { return f.base.MkdirAll(path) }

// ReadDir implements FS (pass-through).
func (f *FaultFS) ReadDir(path string) ([]os.DirEntry, error) {
	return f.base.ReadDir(path)
}

// ReadFile implements FS (pass-through).
func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.base.ReadFile(path) }

// Create implements FS, wrapping the file so writes and fsyncs can fail.
func (f *FaultFS) Create(path string) (File, error) {
	file, err := f.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// OpenAppend implements FS, wrapping the file like Create.
func (f *FaultFS) OpenAppend(path string) (File, error) {
	file, err := f.base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// Rename implements FS; one in RenameEvery calls fails.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if fail, _ := f.trip(f.cfg.RenameEvery); fail {
		return f.cfg.Err
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove implements FS (pass-through).
func (f *FaultFS) Remove(path string) error { return f.base.Remove(path) }

// SyncDir implements FS (pass-through; per-file Sync is where fsync
// faults inject).
func (f *FaultFS) SyncDir(path string) error { return f.base.SyncDir(path) }

// faultFile interposes on writes and fsyncs of one open file.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (w *faultFile) Write(p []byte) (int, error) {
	if fail, tear := w.fs.trip(w.fs.cfg.WriteEvery); fail {
		if w.fs.cfg.TornWrites && len(p) > 0 {
			n := len(p) * tear / 256
			w.f.Write(p[:n]) // the torn prefix reaches the disk
			return n, w.fs.cfg.Err
		}
		return 0, w.fs.cfg.Err
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error {
	if fail, _ := w.fs.trip(w.fs.cfg.SyncEvery); fail {
		return w.fs.cfg.Err
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error { return w.f.Close() }
