package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testKey(i int) string {
	return fmt.Sprintf("%016x-abcdef0123456789-v1", uint64(i)*0x9e3779b97f4a7c15+1)
}

func mustOpen(t *testing.T, dir string, opt Options) (*Store, RecoveryReport) {
	t.Helper()
	s, rep, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rep
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	payload := []byte(`{"schema":2,"runs":[{"cycles":12345}]}` + "\n")
	key := testKey(1)
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get: ok=%v got %q want %q", ok, got, payload)
	}
	// Bytes survive a reopen (the whole point of the store).
	s2, rep := mustOpen(t, dir, Options{})
	if rep.Recovered != 1 || len(rep.Quarantined) != 0 {
		t.Fatalf("reopen recovery = %+v, want 1 recovered, 0 quarantined", rep)
	}
	got, ok = s2.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after reopen: ok=%v got %q", ok, got)
	}
	if _, ok := s2.Get("0000000000000000-missing-v1"); ok {
		t.Fatal("Get of absent key returned ok")
	}
}

func TestRejectsUnsafeKeys(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	for _, key := range []string{"", "ab", "../../etc/passwd", "a/b-c", ".hidden-key-x", "key with space"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an unsafe key", key)
		}
	}
}

// TestConcurrentWritersSameKey hammers one key from many goroutines
// while readers spin; every read must return the canonical payload.
func TestConcurrentWritersSameKey(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	key := testKey(2)
	payload := bytes.Repeat([]byte("deterministic result "), 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Put(key, payload); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok := s.Get(key); ok && !bytes.Equal(got, payload) {
					t.Errorf("Get returned wrong bytes (%d)", len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("final Get: ok=%v", ok)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestEvictionRacingRead runs a GC-heavy writer against readers of a
// hot key: reads may miss (eviction) but must never return wrong or
// partial bytes, and the store must never report corruption.
func TestEvictionRacingRead(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 2048)
	// Bound fits only a handful of entries, so every Put evicts.
	s, _ := mustOpen(t, t.TempDir(), Options{MaxBytes: 8 * 1024})
	hot := testKey(0)
	done := make(chan struct{})
	var writerWG sync.WaitGroup
	var wg sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 1; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := s.Put(testKey(i), payload); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Put(hot, payload)
				if got, ok := s.Get(hot); ok && !bytes.Equal(got, payload) {
					t.Errorf("hot read returned wrong bytes")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	writerWG.Wait()
	st := s.Stats()
	if st.CorruptReads != 0 {
		t.Fatalf("eviction races were misreported as corruption: %+v", st)
	}
	if st.Bytes > 8*1024 {
		t.Fatalf("GC failed to hold the bound: %d bytes", st.Bytes)
	}
}

func TestGCEvictsLeastRecentlyAccessed(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 1000)
	s, _ := mustOpen(t, t.TempDir(), Options{MaxBytes: 4 * 1100})
	for i := 0; i < 4; i++ {
		if err := s.Put(testKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("key 0 missing before GC")
	}
	if err := s.Put(testKey(9), payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("LRU victim (key 1) survived GC")
	}
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("recently accessed key 0 was evicted")
	}
	if st := s.Stats(); st.GCEvictions == 0 {
		t.Fatalf("no GC evictions recorded: %+v", st)
	}
}

// TestCorruptEntriesQuarantinedAtOpen damages entries in all the ways
// the chaos harness does — truncation, bit-flips, zero-byte and
// header-only files — and asserts recovery quarantines (never deletes)
// them while healthy entries keep serving.
func TestCorruptEntriesQuarantinedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	payload := []byte(strings.Repeat("result bytes ", 100))
	keys := make([]string, 6)
	for i := range keys {
		keys[i] = testKey(10 + i)
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
	}
	path := func(key string) string { return filepath.Join(dir, key[:2], key) }

	// keys[0]: truncated mid-payload.
	full, err := os.ReadFile(path(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path(keys[0]), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// keys[1]: single bit flip in the payload.
	data, _ := os.ReadFile(path(keys[1]))
	data[len(data)-7] ^= 0x40
	os.WriteFile(path(keys[1]), data, 0o644)
	// keys[2]: zero-byte file.
	os.WriteFile(path(keys[2]), nil, 0o644)
	// keys[3]: header-only file (payload gone entirely).
	data, _ = os.ReadFile(path(keys[3]))
	nl := bytes.IndexByte(data, '\n')
	os.WriteFile(path(keys[3]), data[:nl+1], 0o644)
	// An orphan temp file from a crashed atomic write.
	os.WriteFile(filepath.Join(dir, keys[4][:2], ".tmp-99-"+keys[4]), []byte("partial"), 0o644)

	s2, rep := mustOpen(t, dir, Options{})
	if rep.Recovered != 2 { // keys[4] and keys[5] are intact
		t.Fatalf("recovered = %d, want 2 (report %+v)", rep.Recovered, rep)
	}
	if len(rep.Quarantined) != 5 {
		t.Fatalf("quarantined = %d, want 5 (report %+v)", len(rep.Quarantined), rep)
	}
	for _, k := range keys[:4] {
		if _, ok := s2.Get(k); ok {
			t.Fatalf("corrupt key %s still readable", k)
		}
	}
	if got, ok := s2.Get(keys[5]); !ok || !bytes.Equal(got, payload) {
		t.Fatal("healthy entry lost during recovery")
	}
	// Quarantine holds the damaged files (moved, not deleted) plus the
	// structured report.
	qents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(qents) != 6 { // 5 damaged files + report.jsonl
		var names []string
		for _, e := range qents {
			names = append(names, e.Name())
		}
		t.Fatalf("quarantine holds %v, want 5 files + report", names)
	}
	repData, err := os.ReadFile(filepath.Join(dir, quarantineDir, reportFile))
	if err != nil || bytes.Count(repData, []byte("\n")) != 5 {
		t.Fatalf("report.jsonl: err=%v lines=%d want 5", err, bytes.Count(repData, []byte("\n")))
	}

	// Quarantine-then-resubmit: re-putting a quarantined key repopulates
	// it with the canonical bytes.
	if err := s2.Put(keys[1], payload); err != nil {
		t.Fatalf("repopulate: %v", err)
	}
	if got, ok := s2.Get(keys[1]); !ok || !bytes.Equal(got, payload) {
		t.Fatal("repopulated key does not round-trip")
	}
}

// TestCorruptionDetectedOnRead flips a bit under a live store and
// asserts the read misses, quarantines, and a re-put self-heals.
func TestCorruptionDetectedOnRead(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	key := testKey(30)
	payload := []byte(strings.Repeat("z", 500))
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key[:2], key)
	data, _ := os.ReadFile(p)
	data[len(data)-1] ^= 1
	os.WriteFile(p, data, 0o644)

	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served")
	}
	st := s.Stats()
	if st.CorruptReads != 1 || st.Quarantined == 0 {
		t.Fatalf("corruption not recorded: %+v", st)
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("self-heal Put: %v", err)
	}
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatal("self-healed key does not serve")
	}
}

// TestENOSPC drives Puts into an always-full disk, asserts clean
// failures with no partial entries, then "frees space" and asserts the
// store heals.
func TestENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{}, 42, FaultConfig{WriteEvery: 1})
	s, _ := mustOpen(t, dir, Options{FS: ffs})
	key := testKey(40)
	if err := s.Put(key, []byte("payload")); err == nil {
		t.Fatal("Put on a full disk succeeded")
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("failed Put left a readable entry")
	}
	ffs.SetEnabled(false) // space freed
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatalf("Put after space freed: %v", err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "payload" {
		t.Fatal("healed store does not serve")
	}
	// No stray temp files remain in the shard directory.
	ents, _ := os.ReadDir(filepath.Join(dir, key[:2]))
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s leaked", e.Name())
		}
	}
}

// TestCrashRestartLoop simulates ten crash/restart cycles: each
// iteration writes entries through a torn-write fault schedule
// (acked = Put returned nil), "crashes" by dropping the Store without
// any shutdown path, reopens, and asserts every acked entry survives
// byte-identically and every torn write was quarantined or cleaned,
// never served.
func TestCrashRestartLoop(t *testing.T) {
	dir := t.TempDir()
	acked := make(map[string][]byte)
	payloadFor := func(i, j int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("run-%d-%d ", i, j)), 20+j)
	}
	for iter := 0; iter < 10; iter++ {
		ffs := NewFaultFS(OS{}, uint64(iter)+1, FaultConfig{WriteEvery: 3, TornWrites: true, RenameEvery: 7})
		s, rep := mustOpen(t, dir, Options{FS: ffs})
		// Everything previously acked must have survived the crash.
		if rep.Recovered < 0 {
			t.Fatal("unreachable")
		}
		for k, want := range acked {
			got, ok := s.Get(k)
			if !ok {
				t.Fatalf("iter %d: acked key %s lost", iter, k)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("iter %d: acked key %s bytes differ", iter, k)
			}
		}
		for j := 0; j < 8; j++ {
			key := testKey(1000 + iter*8 + j)
			payload := payloadFor(iter, j)
			if err := s.Put(key, payload); err == nil {
				acked[key] = payload
			}
		}
		// Crash: no Close, no flush — the Store is simply abandoned.
	}
	s, _ := mustOpen(t, dir, Options{})
	for k, want := range acked {
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("final check: acked key %s lost or damaged (ok=%v)", k, ok)
		}
	}
	if len(acked) == 0 {
		t.Fatal("fault schedule acked nothing; test proved nothing")
	}
}
