// Package store is a persistent content-addressed result store: a
// durable key→bytes map under the simulation service's cache keys
// (FNV(program)-VariantHash-v{sim.Version}). Determinism makes entries
// immutable — equal key means byte-equal value, forever — so the store
// needs no invalidation protocol, only durability and self-healing:
//
//   - every write is atomic and fsynced (temp file → fsync → rename →
//     dir fsync, single-sourced in atomicWrite), so a crash never leaves
//     a partial entry under a live name;
//   - every entry carries a checksummed header, verified on startup and
//     on every read;
//   - corrupt or truncated entries are quarantined — moved, never
//     deleted — into quarantine/ with a structured report, and the key
//     simply misses until a resubmission repopulates it;
//   - a size-capped GC evicts least-recently-accessed entries once the
//     byte bound is exceeded.
//
// The in-memory result cache (internal/server.Cache) fronts this store
// read-through/write-through; the store is the durable tier that
// survives process death.
package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
)

// headerMagic starts every entry file; the version suffix changes if
// the on-disk format ever does.
const headerMagic = "warpstore1"

// quarantineDir is the subdirectory (of the store root) corrupt entries
// are moved into; reportFile inside it accumulates one JSON line per
// quarantined file.
const (
	quarantineDir = "quarantine"
	reportFile    = "report.jsonl"
)

// Options configures a Store. The zero value is usable: Open fills
// every unset field with the documented default.
type Options struct {
	// MaxBytes bounds the on-disk footprint (payload + header bytes of
	// live entries); least-recently-accessed entries are evicted once a
	// write exceeds it (default 4 GiB). Quarantined bytes do not count
	// against the bound — quarantine is an operator-owned holding area.
	MaxBytes int64
	// FS is the filesystem to run on (default OS). Tests inject
	// FaultFS here to simulate ENOSPC, torn writes and failed renames.
	FS FS
	// Log, when non-nil, receives one line per notable store event
	// (quarantines, GC evictions, recovery summary).
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 4 << 30
	}
	if o.FS == nil {
		o.FS = OS{}
	}
	return o
}

// entry is one live key in the index.
type entry struct {
	key  string
	size int64 // on-disk bytes (header + payload)
}

// Store is a durable content-addressed key→bytes map. All methods are
// safe for concurrent use. Reads happen outside the index lock, so a
// read can race an eviction; content addressing makes every interleaving
// safe (whatever bytes a read returns passed the checksum and are the
// value for that key).
type Store struct {
	fs   FS
	root string
	opt  Options

	mu     sync.Mutex
	index  map[string]*list.Element
	ll     *list.List // front = most recently accessed
	bytes  int64
	tmpSeq int64

	hits, misses, puts, gcEvictions, quarantined, corrupt int64
}

// QuarantinedEntry describes one file moved into quarantine/: the key
// (or original filename for orphan temp files), the reason, and where
// it was moved to. The same record is appended as one JSON line to
// quarantine/report.jsonl.
type QuarantinedEntry struct {
	// Key is the content address the damaged file was stored under
	// (the original filename for orphan temp files).
	Key string `json:"key"`
	// Reason classifies the damage: "truncated", "bad-magic",
	// "bad-header", "checksum-mismatch", "key-mismatch", "short-payload",
	// "unreadable" or "orphan-temp".
	Reason string `json:"reason"`
	// SizeBytes is the damaged file's size as found.
	SizeBytes int64 `json:"size_bytes"`
	// QuarantinePath is where the file now lives, relative to the store
	// root.
	QuarantinePath string `json:"quarantine_path"`
}

// RecoveryReport summarizes one Open: how many entries were scanned,
// recovered into the index, and quarantined (with per-file detail).
type RecoveryReport struct {
	// Scanned counts files examined; Recovered of them entered the index.
	Scanned   int `json:"scanned"`
	Recovered int `json:"recovered"`
	// Quarantined lists every file moved aside, corrupt entries and
	// orphan temp files alike.
	Quarantined []QuarantinedEntry `json:"quarantined,omitempty"`
	// EvictedAtOpen counts entries GC'd immediately because the
	// recovered set already exceeded the byte bound.
	EvictedAtOpen int `json:"evicted_at_open,omitempty"`
}

// Open opens (creating if needed) the store rooted at dir, scans and
// verifies every entry, quarantines damaged ones, and returns the store
// plus a recovery report. Initial access order is the files' modification
// order (the best persisted approximation of last access); subsequent
// Gets and Puts refine it.
func Open(dir string, opt Options) (*Store, RecoveryReport, error) {
	opt = opt.withDefaults()
	s := &Store{fs: opt.FS, root: dir, opt: opt,
		index: make(map[string]*list.Element), ll: list.New()}
	var rep RecoveryReport
	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, rep, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	if err := s.fs.MkdirAll(dir + "/" + quarantineDir); err != nil {
		return nil, rep, fmt.Errorf("store: mkdir quarantine: %w", err)
	}
	if err := s.scan(&rep); err != nil {
		return nil, rep, err
	}
	s.mu.Lock()
	rep.EvictedAtOpen = s.gcLocked("")
	s.quarantined = int64(len(rep.Quarantined))
	s.mu.Unlock()
	if len(rep.Quarantined) > 0 {
		s.logf("store: recovery quarantined %d of %d files (see %s/%s/%s)",
			len(rep.Quarantined), rep.Scanned, dir, quarantineDir, reportFile)
	}
	return s, rep, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.opt.Log != nil {
		s.opt.Log(format, args...)
	}
}

// scannedFile is one candidate entry found on disk, ordered by mtime so
// the recovered index approximates last-access order.
type scannedFile struct {
	shard, name string
	size        int64
	mtimeNS     int64
}

// scan walks the shard directories, verifies every file, quarantines
// damaged ones and orphan temp files, and seeds the index in
// modification-time order.
func (s *Store) scan(rep *RecoveryReport) error {
	shards, err := s.fs.ReadDir(s.root)
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", s.root, err)
	}
	var files []scannedFile
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == quarantineDir {
			continue
		}
		ents, err := s.fs.ReadDir(s.root + "/" + sh.Name())
		if err != nil {
			return fmt.Errorf("store: scan shard %s: %w", sh.Name(), err)
		}
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue // deleted mid-scan
			}
			files = append(files, scannedFile{shard: sh.Name(), name: e.Name(),
				size: info.Size(), mtimeNS: info.ModTime().UnixNano()})
		}
	}
	// Oldest first: pushing in mtime order leaves the most recently
	// written entries at the front of the LRU list.
	for i := 1; i < len(files); i++ {
		for j := i; j > 0 && files[j].mtimeNS < files[j-1].mtimeNS; j-- {
			files[j], files[j-1] = files[j-1], files[j]
		}
	}
	for _, f := range files {
		rep.Scanned++
		path := s.root + "/" + f.shard + "/" + f.name
		if strings.HasPrefix(f.name, ".tmp-") {
			// A temp file that survived a crash mid-write: by protocol it
			// was never acked, but quarantine it anyway — never delete.
			rep.Quarantined = append(rep.Quarantined, s.quarantine(path, f.name, "orphan-temp", f.size))
			continue
		}
		data, err := s.fs.ReadFile(path)
		if err != nil {
			rep.Quarantined = append(rep.Quarantined, s.quarantine(path, f.name, "unreadable", f.size))
			continue
		}
		if _, reason := parseEntry(f.name, data); reason != "" {
			rep.Quarantined = append(rep.Quarantined, s.quarantine(path, f.name, reason, f.size))
			continue
		}
		s.mu.Lock()
		s.index[f.name] = s.ll.PushFront(&entry{key: f.name, size: int64(len(data))})
		s.bytes += int64(len(data))
		s.mu.Unlock()
		rep.Recovered++
	}
	return nil
}

// quarantine moves one damaged file into quarantine/ (never deleting
// it) and appends a structured record to the report file. Failures to
// move are logged but never fatal: a store that cannot quarantine still
// serves every healthy entry.
func (s *Store) quarantine(path, key, reason string, size int64) QuarantinedEntry {
	s.mu.Lock()
	s.tmpSeq++
	seq := s.tmpSeq
	s.mu.Unlock()
	qname := fmt.Sprintf("%s.%d.%s", key, seq, reason)
	q := QuarantinedEntry{Key: key, Reason: reason, SizeBytes: size,
		QuarantinePath: quarantineDir + "/" + qname}
	if err := s.fs.Rename(path, s.root+"/"+q.QuarantinePath); err != nil {
		s.logf("store: quarantine %s: %v", path, err)
		return q
	}
	s.logf("store: quarantined %s (%s, %d bytes)", key, reason, size)
	if line, err := json.Marshal(q); err == nil {
		if f, err := s.fs.OpenAppend(s.root + "/" + quarantineDir + "/" + reportFile); err == nil {
			f.Write(append(line, '\n'))
			f.Sync()
			f.Close()
		}
	}
	return q
}

// shardOf returns the two-character directory a key lives under. Keys
// start with 16 hex characters of the program FNV, so shards are
// uniform.
func shardOf(key string) string { return key[:2] }

// validKey rejects keys that cannot safely be filenames. Content
// addresses are hex-and-dash strings; anything else is a caller bug.
func validKey(key string) error {
	if len(key) < 3 {
		return fmt.Errorf("store: key %q too short", key)
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("store: key %q contains unsafe character %q", key, r)
		}
	}
	if strings.HasPrefix(key, ".") {
		return fmt.Errorf("store: key %q may not start with a dot", key)
	}
	return nil
}

// encodeEntry renders the on-disk form: a checksummed header line
// ("warpstore1 <key> <payload-len> <fnv64a-hex>\n") followed by the
// payload bytes.
func encodeEntry(key string, payload []byte) []byte {
	h := fnv.New64a()
	h.Write(payload)
	hdr := fmt.Sprintf("%s %s %d %016x\n", headerMagic, key, len(payload), h.Sum64())
	out := make([]byte, 0, len(hdr)+len(payload))
	out = append(out, hdr...)
	return append(out, payload...)
}

// parseEntry verifies an on-disk entry against the key it is filed
// under and returns the payload, or a non-empty reason string
// classifying the damage.
func parseEntry(key string, data []byte) (payload []byte, reason string) {
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
		if i > 512 {
			break // headers are short; a missing newline is corruption
		}
	}
	if nl < 0 {
		return nil, "truncated"
	}
	var magic, gotKey, sum string
	var n int
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %s %d %s", &magic, &gotKey, &n, &sum); err != nil {
		return nil, "bad-header"
	}
	if magic != headerMagic {
		return nil, "bad-magic"
	}
	if gotKey != key {
		return nil, "key-mismatch"
	}
	payload = data[nl+1:]
	if len(payload) != n {
		return nil, "short-payload"
	}
	h := fnv.New64a()
	h.Write(payload)
	if fmt.Sprintf("%016x", h.Sum64()) != sum {
		return nil, "checksum-mismatch"
	}
	return payload, ""
}

// Get returns the payload stored under key and refreshes its access
// recency. A damaged entry is quarantined on the spot and reported as a
// miss — the daemon keeps serving, and a resubmission repopulates the
// key.
func (s *Store) Get(key string) ([]byte, bool) {
	path := s.root + "/" + shardOf(key) + "/" + key
	// Read outside the lock: an eviction (or an eviction followed by a
	// re-put) can race us, but any bytes that verify are the value for
	// this key (content addressing). A failed read loops back to the
	// index check, which distinguishes the cases by index-entry identity:
	// key gone → eviction (miss); a different element → a re-put raced us
	// (retry against the fresh file); the same element still indexed with
	// its file unreadable → real damage (files are only ever removed by
	// GC, which also removes the element, under the lock).
	for {
		s.mu.Lock()
		el, ok := s.index[key]
		if !ok {
			s.misses++
			s.mu.Unlock()
			return nil, false
		}
		s.ll.MoveToFront(el)
		s.mu.Unlock()

		data, err := s.fs.ReadFile(path)
		if err != nil {
			s.mu.Lock()
			el2, still := s.index[key]
			s.mu.Unlock()
			if !still {
				s.mu.Lock()
				s.misses++
				s.mu.Unlock()
				return nil, false
			}
			if el2 != el {
				continue
			}
			s.dropCorrupt(key, path, "unreadable", 0)
			return nil, false
		}
		payload, reason := parseEntry(key, data)
		if reason == "" {
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			return payload, true
		}
		s.dropCorrupt(key, path, reason, int64(len(data)))
		return nil, false
	}
}

// dropCorrupt removes a damaged entry from the index and quarantines
// the file.
func (s *Store) dropCorrupt(key, path, reason string, size int64) {
	s.mu.Lock()
	if el, ok := s.index[key]; ok {
		e := s.ll.Remove(el).(*entry)
		delete(s.index, key)
		s.bytes -= e.size
	}
	s.corrupt++
	s.misses++
	s.mu.Unlock()
	s.quarantine(path, key, reason, size)
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
}

// Put durably stores payload under key: atomic write, fsync, then index
// update and GC. Re-putting an existing key only refreshes recency —
// content addressing makes overwrites value-identical by construction.
func (s *Store) Put(key string, payload []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	if el, ok := s.index[key]; ok {
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return nil
	}
	s.tmpSeq++
	tmpName := fmt.Sprintf(".tmp-%d-%s", s.tmpSeq, key)
	s.mu.Unlock()

	data := encodeEntry(key, payload)
	dir := s.root + "/" + shardOf(key)
	if err := s.fs.MkdirAll(dir); err != nil {
		return fmt.Errorf("store: mkdir shard: %w", err)
	}
	if err := atomicWrite(s.fs, dir, tmpName, dir+"/"+key, data); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; !ok {
		s.index[key] = s.ll.PushFront(&entry{key: key, size: int64(len(data))})
		s.bytes += int64(len(data))
	}
	s.puts++
	s.gcLocked(key)
	return nil
}

// gcLocked evicts least-recently-accessed entries (never the key just
// written) until the byte bound holds, returning how many were evicted.
// Eviction deletes — only damage quarantines; GC'd results are
// reproducible on demand from the deterministic engine.
func (s *Store) gcLocked(keep string) int {
	n := 0
	for s.bytes > s.opt.MaxBytes {
		el := s.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*entry)
		if e.key == keep {
			break // a single entry larger than the bound stays resident
		}
		s.ll.Remove(el)
		delete(s.index, e.key)
		s.bytes -= e.size
		s.gcEvictions++
		n++
		path := s.root + "/" + shardOf(e.key) + "/" + e.key
		if err := s.fs.Remove(path); err != nil {
			s.logf("store: gc remove %s: %v", e.key, err)
		}
	}
	return n
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats is a point-in-time view of store occupancy and health, shaped
// for /v1/stats.
type Stats struct {
	// Entries and Bytes describe live occupancy; MaxBytes the GC bound.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	// Hits, Misses and Puts are cumulative since Open.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// GCEvictions counts entries deleted by the size cap; Quarantined
	// counts files moved aside (recovery scan and read-time detection);
	// CorruptReads counts read-time verification failures.
	GCEvictions  int64 `json:"gc_evictions"`
	Quarantined  int64 `json:"quarantined"`
	CorruptReads int64 `json:"corrupt_reads"`
}

// Stats returns cumulative counters and current occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Entries: len(s.index), Bytes: s.bytes, MaxBytes: s.opt.MaxBytes,
		Hits: s.hits, Misses: s.misses, Puts: s.puts,
		GCEvictions: s.gcEvictions, Quarantined: s.quarantined, CorruptReads: s.corrupt}
}
