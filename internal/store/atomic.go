package store

// This file is the audited write-protocol helper: every byte the store
// puts on disk goes through atomicWrite (temp file in the target
// directory → write → fsync → close → rename → fsync directory), and
// every filesystem primitive the store touches is reached through the
// FS interface so tests can inject faults (ENOSPC, torn writes, failed
// renames). cmd/golint-internal enforces the single-sourcing: bare
// os.Rename / os.WriteFile calls are forbidden anywhere else in this
// package.

import (
	"fmt"
	"io"
	"os"
)

// File is the writable-file surface the store needs: sequential writes,
// durability, and close. *os.File satisfies it.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Close releases the handle; a Close error after a successful Sync
	// is still a write-protocol failure.
	Close() error
}

// FS is the filesystem the store runs on. The default implementation
// (OS) passes straight through to the os package; fault-injecting
// wrappers (FaultFS) simulate ENOSPC, torn writes and failed renames
// for the chaos harness without touching a real disk's failure modes.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// ReadDir lists a directory (sorted by filename, like os.ReadDir).
	ReadDir(path string) ([]os.DirEntry, error)
	// ReadFile returns a file's full contents.
	ReadFile(path string) ([]byte, error)
	// Create truncates-or-creates a file for writing.
	Create(path string) (File, error)
	// OpenAppend opens a file for appending, creating it if needed.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// SyncDir fsyncs a directory, making previously renamed entries
	// durable against power loss.
	SyncDir(path string) error
}

// OS is the real filesystem: the FS implementation production stores
// run on.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// ReadDir implements FS.
func (OS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Create implements FS.
func (OS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// OpenAppend implements FS.
func (OS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// SyncDir implements FS.
func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// atomicWrite is the store's one write path: it writes data to a
// temporary file in dir, fsyncs it, atomically renames it to path, and
// fsyncs the directory so the rename itself is durable. A crash at any
// point leaves either the old state or the new entry — never a partial
// entry under the final name (partial temp files are swept into
// quarantine at the next Open). tmpName must be unique per concurrent
// writer; on any error the temp file is removed best-effort.
func atomicWrite(fs FS, dir, tmpName, path string, data []byte) error {
	tmp := dir + "/" + tmpName
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	cleanup := func(err error) error {
		fs.Remove(tmp) // best-effort; Open quarantines survivors
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return cleanup(fmt.Errorf("store: write %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return cleanup(fmt.Errorf("store: fsync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return cleanup(fmt.Errorf("store: close %s: %w", tmp, err))
	}
	if err := fs.Rename(tmp, path); err != nil {
		return cleanup(fmt.Errorf("store: rename %s: %w", tmp, err))
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, err)
	}
	return nil
}
