package metrics

import (
	"reflect"
	"testing"
)

func TestRegistryRegistrationAndLookup(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sm0.sched.issue_cycles")
	c.Add(41)
	c.Inc()
	if got := c.Get(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if v, ok := r.Lookup("sm0.sched.issue_cycles"); !ok || v != 42 {
		t.Fatalf("Lookup = %d,%v, want 42,true", v, ok)
	}

	var field int64
	r.Int64("sm0.mem.l1_hits", &field)
	field = 7
	if v, ok := r.Lookup("sm0.mem.l1_hits"); !ok || v != 7 {
		t.Fatalf("view Lookup = %d,%v, want 7,true", v, ok)
	}

	r.Gauge("sm0.mem.l1_hit_rate", func() float64 { return 0.5 })
	if _, ok := r.Lookup("sm0.mem.l1_hit_rate"); ok {
		t.Fatal("Lookup of a gauge should report absent")
	}
	if _, ok := r.Lookup("no.such.name"); ok {
		t.Fatal("Lookup of an unknown name should report absent")
	}

	want := []string{"sm0.mem.l1_hit_rate", "sm0.mem.l1_hits", "sm0.sched.issue_cycles"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	for _, bad := range []string{"", ".", "a..b", ".a", "a.", "A.b", "a b", "sm0.Mem"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: expected panic", bad)
				}
			}()
			NewRegistry().Counter(bad)
		}()
	}
	// Duplicate registration panics too.
	r := NewRegistry()
	r.Counter("a.b")
	defer func() {
		if recover() == nil {
			t.Error("duplicate name: expected panic")
		}
	}()
	r.Counter("a.b")
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.events").Add(3)
	var num, den int64 = 1, 4
	r.Rate("x.ratio", &num, &den)
	h := r.Histogram("x.lat", []int64{10, 100})
	for _, v := range []int64{5, 50, 500, 7} {
		h.Observe(v)
	}
	s := r.Snapshot()
	wantCounters := map[string]int64{
		"x.events":     3,
		"x.lat.count":  4,
		"x.lat.sum":    562,
		"x.lat.min":    5,
		"x.lat.max":    500,
		"x.lat.le_10":  2,
		"x.lat.le_100": 1,
		"x.lat.le_inf": 1,
	}
	if !reflect.DeepEqual(s.Counters, wantCounters) {
		t.Errorf("Counters = %v, want %v", s.Counters, wantCounters)
	}
	if got := s.Gauges["x.ratio"]; got != 0.25 {
		t.Errorf("ratio gauge = %v, want 0.25", got)
	}
	// Rate with zero denominator reads 0, not NaN.
	den = 0
	if got := r.Snapshot().Gauges["x.ratio"]; got != 0 {
		t.Errorf("zero-denominator rate = %v, want 0", got)
	}
}

func TestSnapshotSum(t *testing.T) {
	s := &Snapshot{Counters: map[string]int64{
		"sm0.mem.l1_hits":     3,
		"sm1.mem.l1_hits":     4,
		"sm0.mem.l1_accesses": 9,
		"engine.cycles":       100,
	}}
	if got := s.Sum("mem.l1_hits"); got != 7 {
		t.Errorf("Sum = %d, want 7", got)
	}
	if got := s.Sum("cycles"); got != 100 {
		t.Errorf("Sum(cycles) = %d, want 100", got)
	}
}

// TestCounterHotPathZeroAlloc pins the observability layer's core
// promise: incrementing instruments on the issue path allocates nothing.
func TestCounterHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot.issues")
	var view int64
	r.Int64("hot.view", &view)
	h := r.Histogram("hot.hist", []int64{8, 64, 512})
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		view++
		h.Observe(42)
	}); n != 0 {
		t.Errorf("hot path allocated %v times per run, want 0", n)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})

	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for _, v := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 500} {
		h.Observe(v)
	}
	// 9 of 10 observations fall in the ≤10 bucket, one in ≤1000.
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %d, want 10", got)
	}
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want 1000", got)
	}
	if got := h.Quantile(1.0); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}

	// Past the last bound, the estimate falls back to the observed max.
	h.Observe(50_000)
	if got := h.Quantile(1.0); got != 50_000 {
		t.Errorf("overflow quantile = %d, want observed max 50000", got)
	}
}
