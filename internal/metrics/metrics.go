// Package metrics is the simulator's structured observability layer: a
// registry of typed instruments (counters, gauges, histograms) with
// hierarchical dotted names such as sm3.sched.issue_cycles, plus the
// machine-readable run manifest (manifest.go) that cmd/warpsim and
// cmd/experiments emit via -stats-json.
//
// The design constraint is near-zero hot-path cost: an instrument is a
// plain int64 the owning subsystem increments directly (either a
// registry-allocated Counter or an existing struct field registered as a
// view with Int64). Name resolution, maps and allocation happen only at
// registration and snapshot time, never on the per-cycle issue path.
// Registries are not safe for concurrent use; one registry belongs to
// one engine, mirroring sim.Engine's own concurrency contract.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; Add and Inc are plain integer adds.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Get returns the current value.
func (c *Counter) Get() int64 { return c.v }

// Histogram counts int64 observations into buckets with fixed upper
// bounds, tracking count, sum, min and max. It is intended for off-hot-
// path sampling (controller windows, queue occupancy), not per-cycle use.
type Histogram struct {
	bounds []int64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64 // len(bounds)+1
	count  int64
	sum    int64
	min    int64
	max    int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Quantile returns a bucketed upper-bound estimate of the q-quantile
// (0 ≤ q ≤ 1): the smallest bucket bound at or below which at least
// q·count observations fall. Observations past the last bound report
// the observed max (the histogram has no tighter bound there). Zero
// observations report 0. The estimate's resolution is the bucket
// layout — internal/server sizes latency buckets logarithmically so
// p50/p99 stay within a factor of ~2.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.counts {
		cum += n
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum }

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

type entry struct {
	name  string
	kind  kind
	value *int64 // counter or view
	gauge func() float64
	hist  *Histogram
}

// Registry holds named instruments for one engine. Registration panics on
// an invalid or duplicate name: both are programming errors in the
// instrumented subsystem, not run-time conditions.
type Registry struct {
	byName map[string]int
	ents   []entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// validName reports whether name is a nonempty dotted path of
// [a-z0-9_] segments, e.g. "sm0.mem.l1_hits".
func validName(name string) bool {
	if name == "" || name[0] == '.' || name[len(name)-1] == '.' {
		return false
	}
	prevDot := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '.':
			if prevDot {
				return false
			}
			prevDot = true
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			prevDot = false
		default:
			return false
		}
	}
	return true
}

func (r *Registry) add(e entry) {
	if !validName(e.name) {
		panic(fmt.Sprintf("metrics: invalid instrument name %q", e.name))
	}
	if _, dup := r.byName[e.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate instrument name %q", e.name))
	}
	r.byName[e.name] = len(r.ents)
	r.ents = append(r.ents, e)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.add(entry{name: name, kind: kindCounter, value: &c.v})
	return c
}

// Int64 registers an existing int64 field as a counter view: the owner
// keeps incrementing its field directly and the registry reads it at
// snapshot time. This is how pre-existing hot-path counters (stats.Sim
// and friends) join the registry without any hot-path change.
func (r *Registry) Int64(name string, v *int64) {
	if v == nil {
		panic(fmt.Sprintf("metrics: nil value for %q", name))
	}
	r.add(entry{name: name, kind: kindCounter, value: v})
}

// Gauge registers a derived value (a rate, ratio, or current level)
// evaluated lazily at snapshot time.
func (r *Registry) Gauge(name string, fn func() float64) {
	if fn == nil {
		panic(fmt.Sprintf("metrics: nil gauge func for %q", name))
	}
	r.add(entry{name: name, kind: kindGauge, gauge: fn})
}

// Rate registers a gauge computing *num ÷ *den (0 when *den is 0).
func (r *Registry) Rate(name string, num, den *int64) {
	if num == nil || den == nil {
		panic(fmt.Sprintf("metrics: nil operand for rate %q", name))
	}
	r.Gauge(name, func() float64 {
		if *den == 0 {
			return 0
		}
		return float64(*num) / float64(*den)
	})
}

// Histogram registers and returns a histogram with the given ascending
// upper bucket bounds (an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
	r.add(entry{name: name, kind: kindHistogram, hist: h})
	return h
}

// Lookup returns the current value of the named counter (or counter
// view). The second result is false when the name is absent or not a
// counter.
func (r *Registry) Lookup(name string) (int64, bool) {
	i, ok := r.byName[name]
	if !ok || r.ents[i].kind != kindCounter {
		return 0, false
	}
	return *r.ents[i].value, true
}

// Names returns every registered instrument name, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.ents))
	for _, e := range r.ents {
		out = append(out, e.name)
	}
	sort.Strings(out)
	return out
}

// Snapshot is a point-in-time dump of a registry: exact integer counters
// (compared exactly by the golden harness) and derived float gauges
// (compared within tolerance). Histograms flatten into the counter map as
// name.count, name.sum, name.min, name.max and per-bucket name.le_<bound>
// / name.le_inf entries.
type Snapshot struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// Snapshot reads every instrument. Gauges returning NaN or ±Inf are
// recorded as 0 so snapshots always marshal to valid JSON.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Counters: make(map[string]int64, len(r.ents))}
	for _, e := range r.ents {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = *e.value
		case kindGauge:
			v := e.gauge()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[e.name] = v
		case kindHistogram:
			h := e.hist
			s.Counters[e.name+".count"] = h.count
			s.Counters[e.name+".sum"] = h.sum
			s.Counters[e.name+".min"] = h.min
			s.Counters[e.name+".max"] = h.max
			for i, b := range h.bounds {
				s.Counters[e.name+".le_"+strconv.FormatInt(b, 10)] = h.counts[i]
			}
			s.Counters[e.name+".le_inf"] = h.counts[len(h.bounds)]
		}
	}
	return s
}

// Sum returns the summed value of every counter whose name matches
// prefix after stripping its first dotted segment — e.g.
// Sum(snapshot, "mem.l1_hits") totals sm0.mem.l1_hits, sm1.mem.l1_hits,
// ... across SMs. A name with no dot never matches.
func (s *Snapshot) Sum(suffix string) int64 {
	var tot int64
	for name, v := range s.Counters {
		if i := strings.IndexByte(name, '.'); i >= 0 && name[i+1:] == suffix {
			tot += v
		}
	}
	return tot
}
