// Run manifests: the machine-readable artifact every cmd/warpsim and
// cmd/experiments invocation can emit (-stats-json <path>). A manifest
// records the tool and its configuration (with a stable hash), the git
// revision the binary was built from, wall time, and one RunRecord per
// simulation with the full counter snapshot. internal/exp's golden-stats
// harness diffs manifests: integer counters exactly, derived floats
// within tolerance, wall times and revisions never.
package metrics

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime/debug"
	"sort"
	"strings"
)

// ManifestSchema is the current manifest schema version; bump on any
// incompatible change to the JSON layout. Schema 2 added the per-run
// experiment tag and the human-readable BOWS/DDOS parameter descriptors
// that internal/report joins on, plus the DDOS detection-quality
// counters.
const ManifestSchema = 2

// ErrSchemaMismatch is wrapped by ReadFile when a manifest on disk was
// written under a different schema version than this build understands.
// Callers that join several manifests (internal/report) test for it with
// errors.Is to distinguish "regenerate this file" from I/O failures.
var ErrSchemaMismatch = errors.New("manifest schema mismatch")

// RunRecord is one simulation's identity and counter dump.
type RunRecord struct {
	// Exp names the experiment that submitted the run (registry key,
	// e.g. "fig9"); internal/report groups a manifest's records by it.
	// Empty in manifests from tools without an experiment registry
	// (cmd/warpsim).
	Exp string `json:"exp,omitempty"`
	// Kernel, GPU, Sched, BOWS and DDOS identify the run for humans;
	// Variant is a stable hash over the full configuration (machine,
	// scheduler, BOWS and DDOS parameters, launch geometry and
	// parameters) that keeps runs distinct when the human-readable fields
	// coincide (e.g. the fig16 bucket sweep reuses kernel name "HT").
	Kernel string `json:"kernel"`
	GPU    string `json:"gpu"`
	Sched  string `json:"sched"`
	BOWS   string `json:"bows"`
	// DDOS is the detector parameter descriptor (e.g. "XOR-m8k8-t4-l8"),
	// the join key for the Table I sensitivity report.
	DDOS    string `json:"ddos,omitempty"`
	Variant string `json:"variant,omitempty"`
	// Cycles is the headline result (stats.Sim.Cycles).
	Cycles int64 `json:"cycles"`
	// Err is set when the run failed (e.g. watchdog abort); counters then
	// describe the partial state.
	Err string `json:"err,omitempty"`
	// WallMS is host wall time for this run (never golden-compared).
	WallMS float64 `json:"wall_ms"`
	// Counters and Derived are the run's metrics snapshot.
	Counters map[string]int64   `json:"counters"`
	Derived  map[string]float64 `json:"derived,omitempty"`
}

// Key returns the record's identity within a manifest.
func (r *RunRecord) Key() string {
	return strings.Join([]string{r.Exp, r.Kernel, r.GPU, r.Sched, r.BOWS, r.DDOS, r.Variant}, "|")
}

// Manifest is one tool invocation's machine-readable output.
type Manifest struct {
	Schema     int            `json:"schema"`
	Tool       string         `json:"tool"`
	GitRev     string         `json:"git_rev,omitempty"`
	ConfigHash string         `json:"config_hash,omitempty"`
	Config     map[string]any `json:"config,omitempty"`
	WallMS     float64        `json:"wall_ms"`
	Runs       []RunRecord    `json:"runs"`
}

// NewManifest returns an empty manifest for the named tool, stamped with
// the build's git revision and the hash of config.
func NewManifest(tool string, config map[string]any) *Manifest {
	return &Manifest{
		Schema:     ManifestSchema,
		Tool:       tool,
		GitRev:     GitRev(),
		Config:     config,
		ConfigHash: HashJSON(config),
	}
}

// Add appends a run record. Duplicate keys are verified rather than
// stored twice: the simulator is deterministic, so two runs of the same
// fully-hashed configuration must agree counter for counter — a mismatch
// means the Variant hash is missing a config dimension and is an error.
func (m *Manifest) Add(r RunRecord) error {
	for i := range m.Runs {
		if m.Runs[i].Key() != r.Key() {
			continue
		}
		if diffs := diffRun(&r, &m.Runs[i], 0); len(diffs) > 0 {
			return fmt.Errorf("metrics: duplicate run %s disagrees with earlier run (variant hash missing a config dimension?): %s",
				r.Key(), diffs[0])
		}
		return nil
	}
	m.Runs = append(m.Runs, r)
	return nil
}

// Sort orders runs by key so a manifest's JSON is independent of worker
// scheduling in the parallel runner.
func (m *Manifest) Sort() {
	sort.Slice(m.Runs, func(i, j int) bool { return m.Runs[i].Key() < m.Runs[j].Key() })
}

// Run returns the record with the given key, or nil.
func (m *Manifest) Run(key string) *RunRecord {
	for i := range m.Runs {
		if m.Runs[i].Key() == key {
			return &m.Runs[i]
		}
	}
	return nil
}

// WriteFile marshals the manifest (sorted, indented) to path.
func (m *Manifest) WriteFile(path string) error {
	m.Sort()
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("metrics: marshal manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a manifest written by WriteFile.
func ReadFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("metrics: parse manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("metrics: manifest %s has schema %d, want %d: %w",
			path, m.Schema, ManifestSchema, ErrSchemaMismatch)
	}
	return &m, nil
}

// DiffOptions tunes manifest comparison.
type DiffOptions struct {
	// FloatTol is the relative tolerance for Derived values (and an
	// absolute tolerance near zero). Zero means exact.
	FloatTol float64
	// RequireSameRuns also reports runs present in got but absent from
	// want. Off, Diff checks want ⊆ got — the mode the CI gate uses when
	// comparing a full -exp all manifest against the golden subset.
	RequireSameRuns bool
}

// Diff compares got against want and returns human-readable difference
// lines (empty when they match). Integer counters, cycles and error
// strings compare exactly; Derived values within opt.FloatTol; wall
// times, git revisions and config hashes are never compared.
func Diff(got, want *Manifest, opt DiffOptions) []string {
	var out []string
	for i := range want.Runs {
		w := &want.Runs[i]
		g := got.Run(w.Key())
		if g == nil {
			out = append(out, fmt.Sprintf("run %s: missing", w.Key()))
			continue
		}
		for _, d := range diffRun(g, w, opt.FloatTol) {
			out = append(out, fmt.Sprintf("run %s: %s", w.Key(), d))
		}
	}
	if opt.RequireSameRuns {
		for i := range got.Runs {
			if want.Run(got.Runs[i].Key()) == nil {
				out = append(out, fmt.Sprintf("run %s: unexpected (absent from golden)", got.Runs[i].Key()))
			}
		}
	}
	return out
}

// diffRun compares two records for the same key.
func diffRun(got, want *RunRecord, floatTol float64) []string {
	var out []string
	if got.Cycles != want.Cycles {
		out = append(out, fmt.Sprintf("cycles = %d, want %d", got.Cycles, want.Cycles))
	}
	if got.Err != want.Err {
		out = append(out, fmt.Sprintf("err = %q, want %q", got.Err, want.Err))
	}
	for _, name := range sortedKeys(want.Counters) {
		g, ok := got.Counters[name]
		if !ok {
			out = append(out, fmt.Sprintf("counter %s: missing", name))
			continue
		}
		if g != want.Counters[name] {
			out = append(out, fmt.Sprintf("counter %s = %d, want %d", name, g, want.Counters[name]))
		}
	}
	for _, name := range sortedKeys(got.Counters) {
		if _, ok := want.Counters[name]; !ok {
			out = append(out, fmt.Sprintf("counter %s: unexpected (absent from golden — regenerate with -update?)", name))
		}
	}
	for _, name := range sortedKeys(want.Derived) {
		g, ok := got.Derived[name]
		if !ok {
			out = append(out, fmt.Sprintf("derived %s: missing", name))
			continue
		}
		w := want.Derived[name]
		if !floatClose(g, w, floatTol) {
			out = append(out, fmt.Sprintf("derived %s = %g, want %g (tol %g)", name, g, w, floatTol))
		}
	}
	for _, name := range sortedKeys(got.Derived) {
		if _, ok := want.Derived[name]; !ok {
			out = append(out, fmt.Sprintf("derived %s: unexpected (absent from golden — regenerate with -update?)", name))
		}
	}
	return out
}

func floatClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HashJSON returns a short stable FNV-1a hash of v's JSON encoding; it
// keys configurations in manifests and golden files. Values must be
// JSON-marshalable (struct field order, and therefore the hash, is
// stable for a given type).
func HashJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Configurations are plain data; failure to marshal is a
		// programming error surfaced in tests, not a runtime condition.
		panic(fmt.Sprintf("metrics: hash: %v", err))
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// GitRev returns the VCS revision stamped into the running binary
// ("-dirty" suffixed when the worktree was modified), or "" when the
// build carries no VCS info (e.g. go test binaries).
func GitRev() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	return rev + modified
}
