package metrics

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleRun(kernel string, cycles int64) RunRecord {
	return RunRecord{
		Kernel: kernel, GPU: "GTX480/2SM", Sched: "GTO", BOWS: "ddos/adaptive",
		Variant: "abcd", Cycles: cycles, WallMS: 12.5,
		Counters: map[string]int64{"sm0.exec.warp_instrs": 100, "sm0.mem.l1_hits": 7},
		Derived:  map[string]float64{"sm0.energy.total_pj": 123.456},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("experiments", map[string]any{"quick": true, "exp": "all"})
	if err := m.Add(sampleRun("HT", 5000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(sampleRun("ATM", 7000)); err != nil {
		t.Fatal(err)
	}
	m.WallMS = 321

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Emit → parse → equal, modulo Config (JSON round-trips map values
	// through interface{}; compare its hash instead).
	if got.Schema != ManifestSchema || got.Tool != m.Tool || got.ConfigHash != m.ConfigHash {
		t.Errorf("header mismatch: %+v vs %+v", got, m)
	}
	if !reflect.DeepEqual(got.Runs, m.Runs) {
		t.Errorf("runs differ after round trip:\n%+v\n%+v", got.Runs, m.Runs)
	}
	if d := Diff(got, m, DiffOptions{RequireSameRuns: true}); len(d) > 0 {
		t.Errorf("round-tripped manifest diffs: %v", d)
	}
}

func TestManifestAddVerifiesDuplicates(t *testing.T) {
	m := NewManifest("test", nil)
	if err := m.Add(sampleRun("HT", 5000)); err != nil {
		t.Fatal(err)
	}
	// Identical duplicate: deduplicated silently.
	if err := m.Add(sampleRun("HT", 5000)); err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(m.Runs))
	}
	// Same key, different counters: the variant hash failed to separate
	// two configurations — must error.
	bad := sampleRun("HT", 5001)
	if err := m.Add(bad); err == nil {
		t.Fatal("conflicting duplicate accepted")
	}
}

func TestManifestDiff(t *testing.T) {
	golden := NewManifest("test", nil)
	if err := golden.Add(sampleRun("HT", 5000)); err != nil {
		t.Fatal(err)
	}

	// A superset manifest matches by default (want ⊆ got)...
	got := NewManifest("test", nil)
	if err := got.Add(sampleRun("HT", 5000)); err != nil {
		t.Fatal(err)
	}
	if err := got.Add(sampleRun("ATM", 7000)); err != nil {
		t.Fatal(err)
	}
	if d := Diff(got, golden, DiffOptions{}); len(d) > 0 {
		t.Errorf("superset should match golden subset: %v", d)
	}
	// ...but is flagged under RequireSameRuns.
	if d := Diff(got, golden, DiffOptions{RequireSameRuns: true}); len(d) != 1 || !strings.Contains(d[0], "unexpected") {
		t.Errorf("RequireSameRuns diff = %v", d)
	}

	// Any drifted counter fails.
	drift := NewManifest("test", nil)
	r := sampleRun("HT", 5000)
	r.Counters = map[string]int64{"sm0.exec.warp_instrs": 101, "sm0.mem.l1_hits": 7}
	if err := drift.Add(r); err != nil {
		t.Fatal(err)
	}
	d := Diff(drift, golden, DiffOptions{})
	if len(d) != 1 || !strings.Contains(d[0], "sm0.exec.warp_instrs") {
		t.Errorf("drift diff = %v", d)
	}

	// Missing and extra counters both fail (schema drift is drift).
	skew := NewManifest("test", nil)
	r = sampleRun("HT", 5000)
	r.Counters = map[string]int64{"sm0.exec.warp_instrs": 100, "sm0.new_counter": 1}
	if err := skew.Add(r); err != nil {
		t.Fatal(err)
	}
	d = Diff(skew, golden, DiffOptions{})
	if len(d) != 2 {
		t.Errorf("schema-skew diff = %v, want missing + unexpected", d)
	}

	// Derived values compare within tolerance.
	near := NewManifest("test", nil)
	r = sampleRun("HT", 5000)
	r.Derived = map[string]float64{"sm0.energy.total_pj": 123.456 * (1 + 1e-12)}
	if err := near.Add(r); err != nil {
		t.Fatal(err)
	}
	if d := Diff(near, golden, DiffOptions{FloatTol: 1e-9}); len(d) > 0 {
		t.Errorf("within-tolerance derived flagged: %v", d)
	}
	if d := Diff(near, golden, DiffOptions{}); len(d) == 0 {
		t.Error("exact-mode derived drift not flagged")
	}

	// Wall time differences never matter.
	slow := NewManifest("test", nil)
	r = sampleRun("HT", 5000)
	r.WallMS = 1e9
	if err := slow.Add(r); err != nil {
		t.Fatal(err)
	}
	if d := Diff(slow, golden, DiffOptions{}); len(d) > 0 {
		t.Errorf("wall time compared: %v", d)
	}
}

func TestHashJSONStable(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	h1 := HashJSON(cfg{1, "x"})
	h2 := HashJSON(cfg{1, "x"})
	h3 := HashJSON(cfg{2, "x"})
	if h1 != h2 {
		t.Error("hash not deterministic")
	}
	if h1 == h3 {
		t.Error("hash ignores field values")
	}
	if len(h1) != 16 {
		t.Errorf("hash length = %d, want 16", len(h1))
	}
}
