package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"warpsched/internal/metrics"
)

// TestGoldenShardedFastForward re-runs the golden sweep with sharded SM
// execution and diffs it against the same committed snapshot as the
// serial gate: sharding (like fast-forward, which is on by default here
// and in TestGoldenQuickStats) must not move a single golden-compared
// number.
func TestGoldenShardedFastForward(t *testing.T) {
	got, err := GoldenManifest(Cfg{Quick: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := metrics.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden snapshot (regenerate with -update): %v", err)
	}
	diffs := metrics.Diff(got, want, metrics.DiffOptions{FloatTol: 1e-9, RequireSameRuns: true})
	for _, d := range diffs {
		t.Error(d)
	}
	if len(diffs) > 0 {
		t.Errorf("%d difference(s): sharded execution diverged from the serial golden snapshot", len(diffs))
	}
}

// manifestBytes serializes a manifest with every wall-time field zeroed —
// the only fields that legitimately vary between two runs of the same
// sweep (the manifest carries no timestamps by design).
func manifestBytes(t *testing.T, m *metrics.Manifest) []byte {
	t.Helper()
	m.Sort()
	m.WallMS = 0
	for i := range m.Runs {
		m.Runs[i].WallMS = 0
	}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestManifestByteIdenticalAcrossShards is the strongest determinism
// claim the harness can make: modulo wall times, the serialized manifest
// of the quick golden sweep — which since the scheduler zoo includes
// WASP-scheduled and TAGE-detected variants — is byte-for-byte identical
// across worker counts, shard counts and both clock implementations —
// config hash included, because none of those knobs participates in
// variant hashing.
func TestManifestByteIdenticalAcrossShards(t *testing.T) {
	base, err := GoldenManifest(Cfg{Quick: true, NoFastForward: true})
	if err != nil {
		t.Fatal(err)
	}
	want := manifestBytes(t, base)
	for _, c := range []Cfg{
		{Quick: true},
		{Quick: true, Jobs: 8},
		{Quick: true, Shards: 2},
		{Quick: true, Shards: 8},
		{Quick: true, Jobs: 4, Shards: 8, NoFastForward: true},
	} {
		label := fmt.Sprintf("jobs=%d shards=%d noff=%v", c.Jobs, c.Shards, c.NoFastForward)
		m, err := GoldenManifest(c)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got := manifestBytes(t, m); !bytes.Equal(want, got) {
			t.Errorf("%s: manifest bytes diverged from the per-cycle serial sweep", label)
		}
	}
}
