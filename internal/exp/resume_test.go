package exp

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"warpsched/internal/metrics"
)

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestRunnerResumeByteIdentical is the crash-recovery contract end to
// end: run a sweep journaled, tear the journal the way a killed process
// would (drop the last entry, leave a truncated append), resume, and
// require byte-identical manifests with only the lost spec re-simulated.
func TestRunnerResumeByteIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	specs := []runSpec{testSpec(16), testSpec(32), testSpec(64), testSpec(128)}

	sweep := func(j *Journal) ([]metrics.RunRecord, []runOut) {
		col := NewCollector("test", nil)
		c := Cfg{Jobs: 2, Collect: col, Journal: j}
		outs := c.runAll(specs)
		if err := firstErr(outs); err != nil {
			t.Fatal(err)
		}
		runs := append([]metrics.RunRecord(nil), col.Manifest().Runs...)
		for i := range runs {
			runs[i].WallMS = 0 // the one legitimately nondeterministic field
		}
		return runs, outs
	}

	j1 := openTestJournal(t, path)
	full, outs1 := sweep(j1)
	if j1.Len() != len(specs) || j1.Hits() != 0 {
		t.Fatalf("first pass journaled %d entries with %d hits, want %d/0", j1.Len(), j1.Hits(), len(specs))
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the journal: lose the final entry, leave a torn half-line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	if len(lines) != len(specs) {
		t.Fatalf("journal has %d lines, want %d", len(lines), len(specs))
	}
	torn := append(bytes.Join(lines[:3], []byte("\n")), '\n')
	torn = append(torn, []byte(`{"key":"deadbeef","res":{"stats":{"cy`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, path)
	defer j2.Close()
	if j2.Len() != 3 {
		t.Fatalf("torn journal loaded %d entries, want 3", j2.Len())
	}
	resumed, outs2 := sweep(j2)
	if j2.Hits() != 3 {
		t.Errorf("resume replayed %d runs, want 3", j2.Hits())
	}
	if j2.Len() != len(specs) {
		t.Errorf("resume left %d journal entries, want %d (lost spec re-journaled)", j2.Len(), len(specs))
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Errorf("resumed manifest differs from uninterrupted run:\n%+v\nvs\n%+v", full, resumed)
	}
	for i := range outs1 {
		if !reflect.DeepEqual(outs1[i].res.Stats, outs2[i].res.Stats) {
			t.Errorf("spec %d: resumed stats differ", i)
		}
	}
}

// TestRunnerResumeRendersIdenticalTable runs a real experiment once
// normally and once resumed from a complete journal, requiring the
// rendered table — the artifact the user actually reads — to be
// byte-identical.
func TestRunnerResumeRendersIdenticalTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	render := func(j *Journal) string {
		r, err := Fig3(Cfg{Quick: true, Jobs: 4, Journal: j})
		if err != nil {
			t.Fatal(err)
		}
		return r.String()
	}
	j1 := openTestJournal(t, path)
	fresh := render(j1)
	entries := j1.Len()
	if entries == 0 {
		t.Fatal("experiment journaled nothing")
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, path)
	defer j2.Close()
	replayed := render(j2)
	if j2.Hits() != entries {
		t.Errorf("replay hit %d of %d entries", j2.Hits(), entries)
	}
	if fresh != replayed {
		t.Errorf("resumed table differs:\n--- fresh ---\n%s--- replayed ---\n%s", fresh, replayed)
	}
}

// TestRunnerResumeReplaysFailures: failed runs are journaled too — a
// resumed sweep reproduces the exact error string without re-executing
// the failing configuration.
func TestRunnerResumeReplaysFailures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	runs := 0
	sp := testSpec(64)
	k := panicKernel()
	k.Verify = func([]uint32) error { runs++; panic("deterministic bug") }
	sp.k = k

	j1 := openTestJournal(t, path)
	o1 := Cfg{Journal: j1}.runOne(&sp, 0, 1, nil)
	if o1.err == nil {
		t.Fatal("sabotaged spec succeeded")
	}
	j1.Close()
	if runs != 1 {
		t.Fatalf("spec executed %d times, want 1", runs)
	}

	j2 := openTestJournal(t, path)
	defer j2.Close()
	o2 := Cfg{Journal: j2}.runOne(&sp, 0, 1, nil)
	if runs != 1 {
		t.Errorf("resume re-executed a journaled failure (%d executions)", runs)
	}
	if o2.err == nil || o2.err.Error() != o1.err.Error() {
		t.Errorf("replayed error differs:\n%v\nvs\n%v", o2.err, o1.err)
	}
}

// TestOpenJournalRejectsMidFileCorruption: only the final line may be
// torn; corruption earlier in the file must fail loudly rather than
// silently re-running work.
func TestOpenJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"key":"aaaa"}` + "\n" + `garbage not json` + "\n" + `{"key":"bbbb"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
	var pathErr *os.PathError
	if j, err := OpenJournal(filepath.Join(t.TempDir(), "fresh.jsonl")); err != nil {
		if !errors.As(err, &pathErr) {
			t.Fatalf("fresh journal open failed: %v", err)
		}
	} else {
		j.Close()
	}
}
