package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
	"warpsched/internal/stats"
)

// Fig2Result reproduces Figure 2: the distribution of lock-acquire and
// wait-exit outcomes per kernel under LRR, GTO and CAWA (no BOWS), with
// each scheduler's total attempts normalized to LRR's.
type Fig2Result struct {
	Kernels []string
	// Events[kernel][schedIdx] in config.Schedulers order.
	Events map[string][]stats.SyncEvents
}

// Fig2 runs the distribution study.
func Fig2(c Cfg) (*Fig2Result, error) {
	gpu := c.fermi()
	r := &Fig2Result{Events: map[string][]stats.SyncEvents{}}
	suite := c.syncSuite()
	var specs []runSpec
	for _, k := range suite {
		for _, kind := range config.Schedulers {
			specs = append(specs, runSpec{gpu: gpu, sched: kind, bows: bowsOff(), ddos: config.DefaultDDOS(), k: k})
		}
	}
	outs := c.runAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	i := 0
	for _, k := range suite {
		r.Kernels = append(r.Kernels, k.Name)
		var evs []stats.SyncEvents
		for _, kind := range config.Schedulers {
			res := outs[i].res
			i++
			evs = append(evs, res.Stats.Sync)
			c.note("fig2 %s %s: attempts=%d", k.Name, kind,
				res.Stats.Sync.LockAttempts()+res.Stats.Sync.WaitAttempts())
		}
		r.Events[k.Name] = evs
	}
	return r, nil
}

// String renders the Figure 2 table in the harness's text format.
func (r *Fig2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 2 — synchronization status distribution (bars: LRR, GTO, CAWA; totals normalized to LRR)\n\n")
	t := &table{header: []string{"kernel", "sched", "lock-success", "inter-warp fail", "intra-warp fail",
		"wait-exit ok", "wait-exit fail", "total/LRR"}}
	for _, k := range r.Kernels {
		evs := r.Events[k]
		base := float64(evs[0].LockAttempts() + evs[0].WaitAttempts())
		if base == 0 {
			base = 1
		}
		for i, kind := range config.Schedulers {
			e := evs[i]
			tot := float64(e.LockAttempts() + e.WaitAttempts())
			t.add(k, string(kind),
				fmt.Sprintf("%d", e.LockSuccess),
				fmt.Sprintf("%d", e.InterWarpFail),
				fmt.Sprintf("%d", e.IntraWarpFail),
				fmt.Sprintf("%d", e.WaitExitSuccess),
				fmt.Sprintf("%d", e.WaitExitFail),
				f2(tot/base))
		}
	}
	sb.WriteString(t.String())
	sb.WriteString("paper: most lock failures are inter-warp, and the failure volume depends strongly on the scheduler\n")
	return sb.String()
}
