// Crash-tolerant sweep resumption. A Journal is an append-only JSONL
// file with one entry per finished simulation, keyed by the spec's
// variant hash (collect.go). Interrupting a sweep — a crash, a kill, a
// power cut mid-write — loses at most the entry being appended; on the
// next invocation finished specs replay from the journal (their results
// were verified before journaling) and only unfinished work simulates.
// Because replay restores the exact Result fields and error strings the
// original run produced, a resumed sweep renders byte-identical tables
// and manifests.
package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"warpsched/internal/core"
	"warpsched/internal/metrics"
	"warpsched/internal/sim"
	"warpsched/internal/stats"
)

// journalResult is the JSON-serializable subset of sim.Result a table can
// consume. Memory is deliberately omitted: kernel output is verified
// before an entry is written, so replay never needs it.
type journalResult struct {
	Stats            stats.Sim               `json:"stats"`
	PerSM            []stats.Sim             `json:"per_sm,omitempty"`
	Detection        core.DetectionMetrics   `json:"detection"`
	PerSMDetection   []core.DetectionMetrics `json:"per_sm_detection,omitempty"`
	ConfirmedSIBs    []int32                 `json:"confirmed_sibs,omitempty"`
	MaxSIBPTEntries  int                     `json:"max_sibpt_entries,omitempty"`
	FinalDelayLimits []int64                 `json:"final_delay_limits,omitempty"`
	Metrics          *metrics.Snapshot       `json:"metrics,omitempty"`
}

func toJournalResult(r *sim.Result) *journalResult {
	if r == nil {
		return nil
	}
	return &journalResult{
		Stats:            r.Stats,
		PerSM:            r.PerSM,
		Detection:        r.Detection,
		PerSMDetection:   r.PerSMDetection,
		ConfirmedSIBs:    r.ConfirmedSIBs,
		MaxSIBPTEntries:  r.MaxSIBPTEntries,
		FinalDelayLimits: r.FinalDelayLimits,
		Metrics:          r.Metrics,
	}
}

func (jr *journalResult) toResult() *sim.Result {
	if jr == nil {
		return nil
	}
	return &sim.Result{
		Stats:            jr.Stats,
		PerSM:            jr.PerSM,
		Detection:        jr.Detection,
		PerSMDetection:   jr.PerSMDetection,
		ConfirmedSIBs:    jr.ConfirmedSIBs,
		MaxSIBPTEntries:  jr.MaxSIBPTEntries,
		FinalDelayLimits: jr.FinalDelayLimits,
		Metrics:          jr.Metrics,
	}
}

// journalEntry is one JSONL line: the spec's variant hash, the run's
// error string (empty on success — replay restores it verbatim so
// manifests compare equal), and the result.
type journalEntry struct {
	Key string         `json:"key"`
	Err string         `json:"err,omitempty"`
	Res *journalResult `json:"res,omitempty"`
}

// Journal is a crash-tolerant store of finished runs. One Journal serves
// a whole parallel sweep; lookup and record are safe under Jobs > 1.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	entries map[string]journalEntry
	hits    int
}

// OpenJournal loads (or creates) the journal at path. A truncated final
// line — the signature of a run killed mid-append — is dropped silently;
// corruption anywhere else is an error, since dropping a complete entry
// would silently re-simulate work the user believes finished.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("exp: reading journal: %w", err)
	}
	entries := make(map[string]journalEntry)
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if jerr := json.Unmarshal(line, &e); jerr != nil || e.Key == "" {
			if i == len(lines)-1 || allBlank(lines[i+1:]) {
				break // torn final append: resume re-runs that one spec
			}
			return nil, fmt.Errorf("exp: journal %s line %d corrupt: %v", path, i+1, jerr)
		}
		entries[e.Key] = e
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exp: opening journal for append: %w", err)
	}
	return &Journal{path: path, f: f, entries: entries}, nil
}

func allBlank(lines [][]byte) bool {
	for _, l := range lines {
		if len(bytes.TrimSpace(l)) != 0 {
			return false
		}
	}
	return true
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Len returns the number of loaded + appended entries; Hits the number of
// lookups served from the journal this invocation.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Hits reports how many runs were satisfied from the journal instead of
// being re-simulated.
func (j *Journal) Hits() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// lookup replays a finished run. The restored error is a plain string —
// typed detail (hang reports, panic stacks) lives only in the original
// invocation — but its message is verbatim, so records and tables built
// from a replay match the original byte for byte.
func (j *Journal) lookup(key string) (runOut, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return runOut{}, false
	}
	j.hits++
	o := runOut{res: e.Res.toResult()}
	if e.Err != "" {
		o.err = errors.New(e.Err)
	}
	return o, true
}

// record journals one finished run (success or deterministic failure).
// Appends are serialized; each entry is a single JSONL line, so a crash
// mid-append corrupts at most the file's tail, which OpenJournal drops.
func (j *Journal) record(key string, o runOut) error {
	e := journalEntry{Key: key, Res: toJournalResult(o.res)}
	if o.err != nil {
		e.Err = o.err.Error()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("exp: journaling %s: %w", key, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("exp: journal %s already closed", j.path)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("exp: journaling %s: %w", key, err)
	}
	j.entries[key] = e
	return nil
}
