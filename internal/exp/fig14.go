package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
)

// Fig14Result reproduces Figure 14: overhead of DDOS detection errors on
// synchronization-free benchmarks under MODULO hashing with BOWS at a
// large fixed delay (5000 cycles). With XOR hashing there are no false
// detections, so BOWS must match the baseline; with MODULO hashing the
// MS/HL loop shapes are misclassified and get throttled.
type Fig14Result struct {
	Kernels []string
	// NormTime[kernel] = {XOR+BOWS, MODULO+BOWS} normalized to GTO.
	NormXOR  map[string]float64
	NormMOD  map[string]float64
	FalseXOR map[string]int
	FalseMOD map[string]int
	GmeanXOR float64
	GmeanMOD float64
}

// Fig14 runs the detection-error overhead study.
func Fig14(c Cfg) (*Fig14Result, error) {
	gpu := c.fermi()
	r := &Fig14Result{
		NormXOR:  map[string]float64{},
		NormMOD:  map[string]float64{},
		FalseXOR: map[string]int{},
		FalseMOD: map[string]int{},
	}
	modDDOS := config.DefaultDDOS()
	modDDOS.Hash = config.HashModulo
	var xs, ms []float64
	suite := c.syncFreeSuite()
	var specs []runSpec
	for _, k := range suite {
		specs = append(specs,
			runSpec{gpu: gpu, sched: config.GTO, bows: bowsOff(), ddos: config.DefaultDDOS(), k: k},
			runSpec{gpu: gpu, sched: config.GTO, bows: config.FixedBOWS(5000), ddos: config.DefaultDDOS(), k: k},
			runSpec{gpu: gpu, sched: config.GTO, bows: config.FixedBOWS(5000), ddos: modDDOS, k: k})
	}
	outs := c.runAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	for i, k := range suite {
		r.Kernels = append(r.Kernels, k.Name)
		base, xor, mod := outs[3*i].res, outs[3*i+1].res, outs[3*i+2].res
		r.NormXOR[k.Name] = float64(xor.Stats.Cycles) / float64(base.Stats.Cycles)
		r.NormMOD[k.Name] = float64(mod.Stats.Cycles) / float64(base.Stats.Cycles)
		r.FalseXOR[k.Name] = xor.Detection.FalseDetected
		r.FalseMOD[k.Name] = mod.Detection.FalseDetected
		xs = append(xs, r.NormXOR[k.Name])
		ms = append(ms, r.NormMOD[k.Name])
		c.note("fig14 %s: base=%d xor=%d mod=%d", k.Name, base.Stats.Cycles, xor.Stats.Cycles, mod.Stats.Cycles)
	}
	r.GmeanXOR = gmean(xs)
	r.GmeanMOD = gmean(ms)
	return r, nil
}

// String renders the Figure 14 table in the harness's text format.
func (r *Fig14Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 14 — overheads due to detection errors on sync-free kernels\n")
	sb.WriteString("(execution time under GTO+BOWS(5000) normalized to GTO; falseDet = falsely confirmed SIBs)\n\n")
	t := &table{header: []string{"kernel", "XOR time", "XOR falseDet", "MODULO time", "MODULO falseDet"}}
	for _, k := range r.Kernels {
		t.add(k, f2(r.NormXOR[k]), fmt.Sprintf("%d", r.FalseXOR[k]),
			f2(r.NormMOD[k]), fmt.Sprintf("%d", r.FalseMOD[k]))
	}
	t.add("gmean", f2(r.GmeanXOR), "", f2(r.GmeanMOD), "")
	sb.WriteString(t.String())
	sb.WriteString("paper: XOR — identical to baseline (no false detections, reproduced exactly); MODULO — only MS\n")
	sb.WriteString("       and HL slow down (2.1% avg over Rodinia). Our suite false-detects more kernels under\n")
	sb.WriteString("       MODULO because its grid-stride loops all advance by power-of-two strides — the exact\n")
	sb.WriteString("       mechanism the paper diagnoses for MS/HL (increments invisible to low-order-bit hashing)\n")
	return sb.String()
}
