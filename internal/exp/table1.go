package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
	"warpsched/internal/core"
)

// Table1Row is one configuration of the DDOS sensitivity study: average
// true/false spin detection rates and detection phase ratios over the
// benchmark suite.
type Table1Row struct {
	Label     string
	TSDR      float64
	TrueDPR   float64
	FSDR      float64
	FalseDPR  float64
	Benchmark int // benchmarks contributing
}

// Table1Result reproduces Table I: DDOS sensitivity to hashing function,
// hash width, confidence threshold, history length and time sharing.
type Table1Result struct {
	Sections map[string][]Table1Row
	Order    []string
}

type ddosKey struct {
	hash      config.HashKind
	width     int
	threshold int
	length    int
	share     bool
}

// Table1 runs the sensitivity sweep over the sync and sync-free suites.
// Detection-quality rates are insensitive to input scale (loops only need
// enough iterations to exercise the history FSM), so the sweep always
// uses the quick suite sizes: 20 configurations x 14 kernels is the
// largest run matrix in the harness.
func Table1(c Cfg) (*Table1Result, error) {
	c.Quick = true
	gpu := c.fermi()
	suite := append(c.syncSuite(), c.syncFreeSuite()...)

	cache := map[ddosKey]Table1Row{}
	eval := func(label string, key ddosKey) (Table1Row, error) {
		if row, ok := cache[key]; ok {
			row.Label = label
			return row, nil
		}
		d := config.DefaultDDOS()
		d.Hash = key.hash
		d.PathBits, d.ValueBits = key.width, key.width
		d.ConfidenceThreshold = key.threshold
		d.HistoryLen = key.length
		d.TimeShare = key.share
		var agg core.DetectionMetrics
		var tsdrs, fsdrs, tdprs, fdprs []float64
		for _, k := range suite {
			res, err := run(gpu, config.GTO, bowsOff(), d, k)
			if err != nil {
				return Table1Row{}, fmt.Errorf("table1 %s on %s: %w", label, k.Name, err)
			}
			det := res.Detection
			agg.Add(det)
			if det.TrueSeen > 0 {
				tsdrs = append(tsdrs, det.TSDR())
				if det.TrueDetected > 0 {
					tdprs = append(tdprs, det.TrueDPR())
				}
			}
			if det.FalseSeen > 0 {
				fsdrs = append(fsdrs, det.FSDR())
				if det.FalseDetected > 0 {
					fdprs = append(fdprs, det.FalseDPR())
				}
			}
		}
		row := Table1Row{
			Label: label, Benchmark: len(suite),
			TSDR: mean(tsdrs), TrueDPR: mean(tdprs),
			FSDR: mean(fsdrs), FalseDPR: mean(fdprs),
		}
		cache[key] = row
		c.note("table1 %s: TSDR=%.3f FSDR=%.3f", label, row.TSDR, row.FSDR)
		return row, nil
	}

	res := &Table1Result{Sections: map[string][]Table1Row{}}
	addSection := func(name string, rows []Table1Row) {
		res.Order = append(res.Order, name)
		res.Sections[name] = rows
	}

	base := ddosKey{hash: config.HashXOR, width: 8, threshold: 4, length: 8}

	// Hashing function at t=4, l=8.
	var rows []Table1Row
	for _, cfg := range []struct {
		label string
		hash  config.HashKind
		width int
	}{
		{"XOR, m=k=4", config.HashXOR, 4},
		{"XOR, m=k=8", config.HashXOR, 8},
		{"MODULO, m=k=4", config.HashModulo, 4},
		{"MODULO, m=k=8", config.HashModulo, 8},
	} {
		key := base
		key.hash, key.width = cfg.hash, cfg.width
		row, err := eval(cfg.label, key)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	addSection("hashing function (t=4, l=8)", rows)

	// Hash width with XOR.
	rows = nil
	for _, w := range []int{2, 3, 4, 8} {
		key := base
		key.width = w
		row, err := eval(fmt.Sprintf("m=k=%d", w), key)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	addSection("hashed path/value width (XOR, t=4, l=8)", rows)

	// Confidence threshold at m=k=4.
	rows = nil
	for _, t := range []int{2, 4, 8, 12} {
		key := base
		key.width, key.threshold = 4, t
		row, err := eval(fmt.Sprintf("t=%d", t), key)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	addSection("confidence threshold (XOR, m=k=4, l=8)", rows)

	// History length at m=k=8.
	rows = nil
	for _, l := range []int{1, 2, 4, 8} {
		key := base
		key.length = l
		row, err := eval(fmt.Sprintf("l=%d", l), key)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	addSection("history registers length (XOR, m=k=8, t=4)", rows)

	// Time sharing.
	rows = nil
	for _, share := range []bool{false, true} {
		for _, w := range []int{4, 8} {
			key := base
			key.width, key.share = w, share
			sh := 0
			if share {
				sh = 1
			}
			row, err := eval(fmt.Sprintf("sh=%d, m=k=%d", sh, w), key)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	addSection("time sharing of history registers (XOR, t=4, l=8, epoch=1000)", rows)

	return res, nil
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func (r *Table1Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table I — DDOS sensitivity to design parameters (averaged over the benchmark suite)\n\n")
	for _, name := range r.Order {
		fmt.Fprintf(&sb, "· Sensitivity to %s\n", name)
		t := &table{header: []string{"config", "avg TSDR", "avg DPR (true)", "avg FSDR", "avg DPR (false)"}}
		for _, row := range r.Sections[name] {
			t.add(row.Label, f3(row.TSDR), f3(row.TrueDPR), f3(row.FSDR), f3(row.FalseDPR))
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("paper: TSDR=1 for all XOR configs; FSDR=0 at XOR m=k=8; MODULO false-detects (0.17/0.104 at 4/8 bits);\n")
	sb.WriteString("       higher thresholds trade detection delay for fewer false positives; l≥8 needed for full TSDR;\n")
	sb.WriteString("       time sharing reduces TSDR to 0.642 and lengthens the detection phase\n")
	return sb.String()
}
