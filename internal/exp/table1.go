package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
)

// Table1Row is one configuration of the DDOS sensitivity study: average
// true/false spin detection rates and detection phase ratios over the
// benchmark suite.
type Table1Row struct {
	Label     string
	TSDR      float64
	TrueDPR   float64
	FSDR      float64
	FalseDPR  float64
	Benchmark int // benchmarks contributing
}

// Table1Result reproduces Table I: DDOS sensitivity to hashing function,
// hash width, confidence threshold, history length and time sharing.
type Table1Result struct {
	Sections map[string][]Table1Row
	Order    []string
}

type ddosKey struct {
	hash      config.HashKind
	width     int
	threshold int
	length    int
	share     bool
}

// Table1 runs the sensitivity sweep over the sync and sync-free suites.
// Detection-quality rates are insensitive to input scale (loops only need
// enough iterations to exercise the history FSM), so the sweep always
// uses the quick suite sizes: 20 configurations x 14 kernels is the
// largest run matrix in the harness.
func Table1(c Cfg) (*Table1Result, error) {
	c.Quick = true
	gpu := c.fermi()
	suite := append(c.syncSuite(), c.syncFreeSuite()...)

	// Assemble the section layout first; duplicate keys (the base config
	// appears in several sections) are simulated once and the cached row
	// is relabeled per section, exactly as the serial version did.
	type req struct {
		label string
		key   ddosKey
	}
	type section struct {
		name string
		reqs []req
	}
	var sections []section
	base := ddosKey{hash: config.HashXOR, width: 8, threshold: 4, length: 8}

	// Hashing function at t=4, l=8.
	var reqs []req
	for _, cfg := range []struct {
		label string
		hash  config.HashKind
		width int
	}{
		{"XOR, m=k=4", config.HashXOR, 4},
		{"XOR, m=k=8", config.HashXOR, 8},
		{"MODULO, m=k=4", config.HashModulo, 4},
		{"MODULO, m=k=8", config.HashModulo, 8},
	} {
		key := base
		key.hash, key.width = cfg.hash, cfg.width
		reqs = append(reqs, req{cfg.label, key})
	}
	sections = append(sections, section{"hashing function (t=4, l=8)", reqs})

	// Hash width with XOR.
	reqs = nil
	for _, w := range []int{2, 3, 4, 8} {
		key := base
		key.width = w
		reqs = append(reqs, req{fmt.Sprintf("m=k=%d", w), key})
	}
	sections = append(sections, section{"hashed path/value width (XOR, t=4, l=8)", reqs})

	// Confidence threshold at m=k=4.
	reqs = nil
	for _, t := range []int{2, 4, 8, 12} {
		key := base
		key.width, key.threshold = 4, t
		reqs = append(reqs, req{fmt.Sprintf("t=%d", t), key})
	}
	sections = append(sections, section{"confidence threshold (XOR, m=k=4, l=8)", reqs})

	// History length at m=k=8.
	reqs = nil
	for _, l := range []int{1, 2, 4, 8} {
		key := base
		key.length = l
		reqs = append(reqs, req{fmt.Sprintf("l=%d", l), key})
	}
	sections = append(sections, section{"history registers length (XOR, m=k=8, t=4)", reqs})

	// Time sharing.
	reqs = nil
	for _, share := range []bool{false, true} {
		for _, w := range []int{4, 8} {
			key := base
			key.width, key.share = w, share
			sh := 0
			if share {
				sh = 1
			}
			reqs = append(reqs, req{fmt.Sprintf("sh=%d, m=k=%d", sh, w), key})
		}
	}
	sections = append(sections, section{"time sharing of history registers (XOR, t=4, l=8, epoch=1000)", reqs})

	// Unique keys in first-appearance order; each expands to one run per
	// suite kernel. This is the harness's largest matrix, so the dedup
	// matters (20 requests collapse to 19 keys x 14 kernels).
	var order []ddosKey
	firstLabel := map[ddosKey]string{}
	for _, sec := range sections {
		for _, rq := range sec.reqs {
			if _, ok := firstLabel[rq.key]; !ok {
				firstLabel[rq.key] = rq.label
				order = append(order, rq.key)
			}
		}
	}
	var specs []runSpec
	for _, key := range order {
		d := config.DefaultDDOS()
		d.Hash = key.hash
		d.PathBits, d.ValueBits = key.width, key.width
		d.ConfidenceThreshold = key.threshold
		d.HistoryLen = key.length
		d.TimeShare = key.share
		for _, k := range suite {
			specs = append(specs, runSpec{gpu, config.GTO, bowsOff(), d, k})
		}
	}
	outs := c.runAll(specs)

	cache := map[ddosKey]Table1Row{}
	for i, key := range order {
		label := firstLabel[key]
		var tsdrs, fsdrs, tdprs, fdprs []float64
		for j, k := range suite {
			o := outs[i*len(suite)+j]
			if o.err != nil {
				return nil, fmt.Errorf("table1 %s on %s: %w", label, k.Name, o.err)
			}
			det := o.res.Detection
			if det.TrueSeen > 0 {
				tsdrs = append(tsdrs, det.TSDR())
				if det.TrueDetected > 0 {
					tdprs = append(tdprs, det.TrueDPR())
				}
			}
			if det.FalseSeen > 0 {
				fsdrs = append(fsdrs, det.FSDR())
				if det.FalseDetected > 0 {
					fdprs = append(fdprs, det.FalseDPR())
				}
			}
		}
		row := Table1Row{
			Label: label, Benchmark: len(suite),
			TSDR: mean(tsdrs), TrueDPR: mean(tdprs),
			FSDR: mean(fsdrs), FalseDPR: mean(fdprs),
		}
		cache[key] = row
		c.note("table1 %s: TSDR=%.3f FSDR=%.3f", label, row.TSDR, row.FSDR)
	}

	res := &Table1Result{Sections: map[string][]Table1Row{}}
	for _, sec := range sections {
		var rows []Table1Row
		for _, rq := range sec.reqs {
			row := cache[rq.key]
			row.Label = rq.label
			rows = append(rows, row)
		}
		res.Order = append(res.Order, sec.name)
		res.Sections[sec.name] = rows
	}
	return res, nil
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func (r *Table1Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table I — DDOS sensitivity to design parameters (averaged over the benchmark suite)\n\n")
	for _, name := range r.Order {
		fmt.Fprintf(&sb, "· Sensitivity to %s\n", name)
		t := &table{header: []string{"config", "avg TSDR", "avg DPR (true)", "avg FSDR", "avg DPR (false)"}}
		for _, row := range r.Sections[name] {
			t.add(row.Label, f3(row.TSDR), f3(row.TrueDPR), f3(row.FSDR), f3(row.FalseDPR))
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("paper: TSDR=1 for all XOR configs; FSDR=0 at XOR m=k=8; MODULO false-detects (0.17/0.104 at 4/8 bits);\n")
	sb.WriteString("       higher thresholds trade detection delay for fewer false positives; l≥8 needed for full TSDR;\n")
	sb.WriteString("       time sharing reduces TSDR to 0.642 and lengthens the detection phase\n")
	return sb.String()
}
