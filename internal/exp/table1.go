package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
)

// Table1Row is one configuration of the DDOS sensitivity study: average
// true/false spin detection rates and detection phase ratios over the
// benchmark suite.
type Table1Row struct {
	Label     string
	TSDR      float64
	TrueDPR   float64
	FSDR      float64
	FalseDPR  float64
	Benchmark int // benchmarks contributing
}

// Table1Result reproduces Table I: DDOS sensitivity to hashing function,
// hash width, confidence threshold, history length and time sharing.
type Table1Result struct {
	Sections map[string][]Table1Row
	Order    []string
}

// Table1Spec is one point of the Table I sensitivity sweep: a row label
// and the detector configuration it evaluates.
type Table1Spec struct {
	// Label is the row label, e.g. "XOR, m=k=8".
	Label string
	// DDOS is the full detector configuration of the point.
	DDOS config.DDOS
}

// Table1Section is one block of Table I, varying a single detector
// dimension around the base XOR m=k=8, t=4, l=8 configuration.
type Table1Section struct {
	// Name is the section heading, e.g. "hashing function (t=4, l=8)".
	Name string
	// Specs are the section's rows in display order.
	Specs []Table1Spec
}

// Table1Layout returns the section layout of the Table I sensitivity
// sweep. The same configuration may appear in several sections (the base
// configuration appears in four); runs are deduplicated by DDOS.Desc(),
// which is also how internal/report rebuilds the table from manifest
// records, so layout and join key cannot drift apart.
func Table1Layout() []Table1Section {
	mk := func(f func(*config.DDOS)) config.DDOS {
		d := config.DefaultDDOS()
		f(&d)
		return d
	}
	var sections []Table1Section

	// Hashing function at t=4, l=8.
	var specs []Table1Spec
	for _, p := range []struct {
		label string
		hash  config.HashKind
		width int
	}{
		{"XOR, m=k=4", config.HashXOR, 4},
		{"XOR, m=k=8", config.HashXOR, 8},
		{"MODULO, m=k=4", config.HashModulo, 4},
		{"MODULO, m=k=8", config.HashModulo, 8},
	} {
		p := p
		specs = append(specs, Table1Spec{p.label, mk(func(d *config.DDOS) {
			d.Hash = p.hash
			d.PathBits, d.ValueBits = p.width, p.width
		})})
	}
	sections = append(sections, Table1Section{"hashing function (t=4, l=8)", specs})

	// Hash width with XOR.
	specs = nil
	for _, w := range []int{2, 3, 4, 8} {
		w := w
		specs = append(specs, Table1Spec{fmt.Sprintf("m=k=%d", w), mk(func(d *config.DDOS) {
			d.PathBits, d.ValueBits = w, w
		})})
	}
	sections = append(sections, Table1Section{"hashed path/value width (XOR, t=4, l=8)", specs})

	// Confidence threshold at m=k=4.
	specs = nil
	for _, t := range []int{2, 4, 8, 12} {
		t := t
		specs = append(specs, Table1Spec{fmt.Sprintf("t=%d", t), mk(func(d *config.DDOS) {
			d.PathBits, d.ValueBits = 4, 4
			d.ConfidenceThreshold = t
		})})
	}
	sections = append(sections, Table1Section{"confidence threshold (XOR, m=k=4, l=8)", specs})

	// History length at m=k=8.
	specs = nil
	for _, l := range []int{1, 2, 4, 8} {
		l := l
		specs = append(specs, Table1Spec{fmt.Sprintf("l=%d", l), mk(func(d *config.DDOS) {
			d.HistoryLen = l
		})})
	}
	sections = append(sections, Table1Section{"history registers length (XOR, m=k=8, t=4)", specs})

	// Time sharing.
	specs = nil
	for _, share := range []bool{false, true} {
		for _, w := range []int{4, 8} {
			share, w := share, w
			sh := 0
			if share {
				sh = 1
			}
			specs = append(specs, Table1Spec{fmt.Sprintf("sh=%d, m=k=%d", sh, w), mk(func(d *config.DDOS) {
				d.PathBits, d.ValueBits = w, w
				d.TimeShare = share
			})})
		}
	}
	sections = append(sections, Table1Section{"time sharing of history registers (XOR, t=4, l=8, epoch=1000)", specs})
	return sections
}

// Table1 runs the sensitivity sweep over the sync and sync-free suites.
// Detection-quality rates are insensitive to input scale (loops only need
// enough iterations to exercise the history FSM), so the sweep always
// uses the quick suite sizes: 20 configurations x 14 kernels is the
// largest run matrix in the harness.
func Table1(c Cfg) (*Table1Result, error) {
	c.Quick = true
	gpu := c.fermi()
	suite := append(c.syncSuite(), c.syncFreeSuite()...)
	sections := Table1Layout()

	// Unique configurations in first-appearance order (keyed by
	// descriptor); each expands to one run per suite kernel. Duplicate
	// points (the base config appears in several sections) are simulated
	// once and the cached row is relabeled per section. This is the
	// harness's largest matrix, so the dedup matters (20 requests
	// collapse to 19 configs x 14 kernels).
	var order []config.DDOS
	firstLabel := map[string]string{}
	for _, sec := range sections {
		for _, sp := range sec.Specs {
			if _, ok := firstLabel[sp.DDOS.Desc()]; !ok {
				firstLabel[sp.DDOS.Desc()] = sp.Label
				order = append(order, sp.DDOS)
			}
		}
	}
	var specs []runSpec
	for _, d := range order {
		for _, k := range suite {
			specs = append(specs, runSpec{gpu: gpu, sched: config.GTO, bows: bowsOff(), ddos: d, k: k})
		}
	}
	outs := c.runAll(specs)

	cache := map[string]Table1Row{}
	for i, d := range order {
		label := firstLabel[d.Desc()]
		var tsdrs, fsdrs, tdprs, fdprs []float64
		for j, k := range suite {
			o := outs[i*len(suite)+j]
			if o.err != nil {
				return nil, fmt.Errorf("table1 %s on %s: %w", label, k.Name, o.err)
			}
			det := o.res.Detection
			if det.TrueSeen > 0 {
				tsdrs = append(tsdrs, det.TSDR())
				if det.TrueDetected > 0 {
					tdprs = append(tdprs, det.TrueDPR())
				}
			}
			if det.FalseSeen > 0 {
				fsdrs = append(fsdrs, det.FSDR())
				if det.FalseDetected > 0 {
					fdprs = append(fdprs, det.FalseDPR())
				}
			}
		}
		row := Table1Row{
			Label: label, Benchmark: len(suite),
			TSDR: mean(tsdrs), TrueDPR: mean(tdprs),
			FSDR: mean(fsdrs), FalseDPR: mean(fdprs),
		}
		cache[d.Desc()] = row
		c.note("table1 %s: TSDR=%.3f FSDR=%.3f", label, row.TSDR, row.FSDR)
	}

	res := &Table1Result{Sections: map[string][]Table1Row{}}
	for _, sec := range sections {
		var rows []Table1Row
		for _, sp := range sec.Specs {
			row := cache[sp.DDOS.Desc()]
			row.Label = sp.Label
			rows = append(rows, row)
		}
		res.Order = append(res.Order, sec.Name)
		res.Sections[sec.Name] = rows
	}
	return res, nil
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// String renders Table I in the harness's text format.
func (r *Table1Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table I — DDOS sensitivity to design parameters (averaged over the benchmark suite)\n\n")
	for _, name := range r.Order {
		fmt.Fprintf(&sb, "· Sensitivity to %s\n", name)
		t := &table{header: []string{"config", "avg TSDR", "avg DPR (true)", "avg FSDR", "avg DPR (false)"}}
		for _, row := range r.Sections[name] {
			t.add(row.Label, f3(row.TSDR), f3(row.TrueDPR), f3(row.FSDR), f3(row.FalseDPR))
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("paper: TSDR=1 for all XOR configs; FSDR=0 at XOR m=k=8; MODULO false-detects (0.17/0.104 at 4/8 bits);\n")
	sb.WriteString("       higher thresholds trade detection delay for fewer false positives; l≥8 needed for full TSDR;\n")
	sb.WriteString("       time sharing reduces TSDR to 0.642 and lengthens the detection phase\n")
	return sb.String()
}
