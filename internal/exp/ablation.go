package exp

import (
	"strings"

	"warpsched/internal/config"
)

// AblationResult isolates the contributions of BOWS's parts, a study the
// paper motivates but does not tabulate:
//
//   - deprioritization only (BOWS with a zero delay limit),
//   - fixed minimum delay (1000) without adaptivity,
//   - the full adaptive system,
//   - and detection source: DDOS-driven versus oracle static annotations
//     (the paper's "identified by programmer or compiler" mode), which
//     bounds the cost of dynamic detection.
type AblationResult struct {
	Kernels []string
	Columns []string
	// Time[kernel][column] normalized to GTO.
	Time map[string][]float64
	Gm   []float64
}

// AblationColumn is one arm of the component study: a display label and
// the BOWS configuration it evaluates (on GTO, Fermi). internal/report
// rebuilds the ablation table from manifest records through the same
// list, joining on BOWS.Desc().
type AblationColumn struct {
	// Label is the column heading, e.g. "deprioritize-only".
	Label string
	// BOWS is the arm's scheduler-extension configuration.
	BOWS config.BOWS
}

// AblationLayout returns the ablation arms in display order: baseline
// GTO, deprioritization only (zero delay limit), a fixed 1000-cycle
// minimum interval, the full adaptive system, and adaptive BOWS driven by
// oracle static annotations instead of DDOS.
func AblationLayout() []AblationColumn {
	return []AblationColumn{
		{"GTO", bowsOff()},
		{"deprioritize-only", config.FixedBOWS(0)},
		{"fixed-1000", config.FixedBOWS(1000)},
		{"adaptive(DDOS)", config.DefaultBOWS()},
		{"adaptive(static)", func() config.BOWS {
			b := config.DefaultBOWS()
			b.Mode = config.BOWSStatic
			return b
		}()},
	}
}

// Ablation runs the component study on GTO.
func Ablation(c Cfg) (*AblationResult, error) {
	gpu := c.fermi()
	layout := AblationLayout()
	r := &AblationResult{Time: map[string][]float64{}}
	var configs []config.BOWS
	for _, col := range layout {
		r.Columns = append(r.Columns, col.Label)
		configs = append(configs, col.BOWS)
	}
	suite := c.syncSuite()
	var specs []runSpec
	for _, k := range suite {
		for _, bows := range configs {
			specs = append(specs, runSpec{gpu: gpu, sched: config.GTO, bows: bows, ddos: config.DefaultDDOS(), k: k})
		}
	}
	outs := c.runAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	gm := make([][]float64, len(configs))
	idx := 0
	for _, k := range suite {
		r.Kernels = append(r.Kernels, k.Name)
		var times []float64
		for i := range configs {
			res := outs[idx].res
			idx++
			times = append(times, float64(res.Stats.Cycles))
			c.note("ablation %s %s: %d cycles", k.Name, r.Columns[i], res.Stats.Cycles)
		}
		base := times[0]
		for i := range times {
			times[i] /= base
			gm[i] = append(gm[i], times[i])
		}
		r.Time[k.Name] = times
	}
	for _, vs := range gm {
		r.Gm = append(r.Gm, gmean(vs))
	}
	return r, nil
}

// String renders the ablation table in the harness's text format.
func (r *AblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — BOWS component contributions (normalized execution time, GTO = 1.00)\n\n")
	t := &table{header: append([]string{"kernel"}, r.Columns...)}
	for _, k := range r.Kernels {
		row := []string{k}
		for _, v := range r.Time[k] {
			row = append(row, f2(v))
		}
		t.add(row...)
	}
	row := []string{"gmean"}
	for _, v := range r.Gm {
		row = append(row, f2(v))
	}
	t.add(row...)
	sb.WriteString(t.String())
	sb.WriteString("reading: deprioritize-only isolates the priority-queue change; fixed-1000 adds the minimum\n")
	sb.WriteString("interval; adaptive(static) bounds what a compiler-annotated BOWS could do over DDOS\n")
	return sb.String()
}
