package exp

import (
	"strings"

	"warpsched/internal/config"
)

// AblationResult isolates the contributions of BOWS's parts, a study the
// paper motivates but does not tabulate:
//
//   - deprioritization only (BOWS with a zero delay limit),
//   - fixed minimum delay (1000) without adaptivity,
//   - the full adaptive system,
//   - and detection source: DDOS-driven versus oracle static annotations
//     (the paper's "identified by programmer or compiler" mode), which
//     bounds the cost of dynamic detection.
type AblationResult struct {
	Kernels []string
	Columns []string
	// Time[kernel][column] normalized to GTO.
	Time map[string][]float64
	Gm   []float64
}

var ablationColumns = []string{
	"GTO", "deprioritize-only", "fixed-1000", "adaptive(DDOS)", "adaptive(static)",
}

// Ablation runs the component study on GTO.
func Ablation(c Cfg) (*AblationResult, error) {
	gpu := c.fermi()
	r := &AblationResult{Columns: ablationColumns, Time: map[string][]float64{}}
	configs := []config.BOWS{
		bowsOff(),
		config.FixedBOWS(0),
		config.FixedBOWS(1000),
		config.DefaultBOWS(),
		func() config.BOWS {
			b := config.DefaultBOWS()
			b.Mode = config.BOWSStatic
			return b
		}(),
	}
	suite := c.syncSuite()
	var specs []runSpec
	for _, k := range suite {
		for _, bows := range configs {
			specs = append(specs, runSpec{gpu, config.GTO, bows, config.DefaultDDOS(), k})
		}
	}
	outs := c.runAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	gm := make([][]float64, len(configs))
	idx := 0
	for _, k := range suite {
		r.Kernels = append(r.Kernels, k.Name)
		var times []float64
		for i := range configs {
			res := outs[idx].res
			idx++
			times = append(times, float64(res.Stats.Cycles))
			c.note("ablation %s %s: %d cycles", k.Name, r.Columns[i], res.Stats.Cycles)
		}
		base := times[0]
		for i := range times {
			times[i] /= base
			gm[i] = append(gm[i], times[i])
		}
		r.Time[k.Name] = times
	}
	for _, vs := range gm {
		r.Gm = append(r.Gm, gmean(vs))
	}
	return r, nil
}

func (r *AblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — BOWS component contributions (normalized execution time, GTO = 1.00)\n\n")
	t := &table{header: append([]string{"kernel"}, r.Columns...)}
	for _, k := range r.Kernels {
		row := []string{k}
		for _, v := range r.Time[k] {
			row = append(row, f2(v))
		}
		t.add(row...)
	}
	row := []string{"gmean"}
	for _, v := range r.Gm {
		row = append(row, f2(v))
	}
	t.add(row...)
	sb.WriteString(t.String())
	sb.WriteString("reading: deprioritize-only isolates the priority-queue change; fixed-1000 adds the minimum\n")
	sb.WriteString("interval; adaptive(static) bounds what a compiler-annotated BOWS could do over DDOS\n")
	return sb.String()
}
