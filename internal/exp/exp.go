// Package exp is the reproduction harness: one experiment per table and
// figure of the paper's evaluation (Figures 1-3 and 9-16, Tables I-III),
// each returning a typed result that renders as a text table next to the
// paper's reported numbers. cmd/experiments and the repository's
// bench_test.go both drive this package.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"warpsched/internal/config"
	"warpsched/internal/kernels"
	"warpsched/internal/mem"
	"warpsched/internal/sim"
	"warpsched/internal/stats"
)

// Cfg scales the harness.
type Cfg struct {
	// SMs overrides the SM count (0 keeps the full Table II machine).
	// Experiments default to a scaled machine so a sweep finishes in
	// minutes; the scaling preserves per-SM structure and the
	// compute:memory balance (config.GPU.Scaled).
	SMs int
	// Quick selects the reduced kernel sizes (used by tests/benches).
	Quick bool
	// Jobs bounds the worker pool running an experiment's independent
	// simulations concurrently (cmd/experiments -j). 0 means GOMAXPROCS;
	// 1 runs strictly serially. Results and rendered tables are
	// byte-identical for every value (see runAll).
	Jobs int
	// Progress, when non-nil, receives one line per completed run. It is
	// never called from more than one goroutine at a time.
	Progress func(string)
	// Collect, when non-nil, receives one manifest record per completed
	// simulation (see NewCollector). A Collector is safe under Jobs > 1.
	Collect *Collector
	// Exp tags collected records with the experiment that submitted them
	// (the registry key, e.g. "fig9"); cmd/experiments sets it per
	// experiment so internal/report can group a manifest's runs.
	Exp string
	// Tracer, when non-nil, supplies the tracer for the run at submission
	// index i. Each concurrently running engine must get its own tracer
	// instance — use trace.Buffers; sharing one Ring across engines is a
	// data race under Jobs > 1.
	Tracer func(i int) sim.Tracer
	// Check enables the engine's runtime invariant checker and early hang
	// aborts for every run (cmd/experiments -check). Checked runs simulate
	// cycle-identically to unchecked ones — they only fail faster and with
	// a diagnosis when something is wrong.
	Check bool
	// Faults, when non-nil, wires the deterministic memory fault injector
	// into every run (see mem.FaultConfig). Used by the robustness test
	// suite; injected runs are deterministic per seed but differ from
	// clean runs, so never combine with golden comparisons.
	Faults *mem.FaultConfig
	// Journal, when non-nil, makes the sweep crash-tolerant and resumable
	// (cmd/experiments -resume): specs whose results are already journaled
	// are replayed instead of re-simulated, and freshly finished specs are
	// appended, so an interrupted sweep picks up where it died and renders
	// byte-identical tables.
	Journal *Journal
	// Retries bounds re-runs of a spec whose simulation panicked (the
	// panic is recovered into the run record either way). Deterministic
	// failures — watchdog aborts, verification mismatches, invariant
	// violations — are never retried.
	Retries int
	// Shards runs each simulation's SM phase on that many worker
	// goroutines (cmd/experiments -shards; see sim.Options.Shards).
	// Results are cycle-identical for every value, so — like Jobs — it is
	// deliberately excluded from collected manifests' config hashes.
	Shards int
	// NoFastForward disables the event-driven clock and ticks every cycle
	// (cmd/experiments -no-ff; see sim.Options.NoFastForward). Results
	// are cycle-identical either way; the flag exists for A/B timing and
	// for auditing the fast-forward path itself.
	NoFastForward bool
	// Remote, when non-nil, is consulted before each fresh simulation
	// (after journal replay): it receives the run's exported spec and
	// returns the outcome plus true when a warpsimd daemon served it, or
	// false to run on the local engine — the universal fallback for specs
	// that cannot go on the wire (host-side Setup/Verify closures outside
	// the registered suites, non-default detector parameterizations) and
	// for daemon outages. Remote outcomes carry cycles and manifest
	// counters only (see Experiment.RemoteSafe) and are never journaled:
	// a resume journal must hold only full-fidelity local records.
	// Ignored when Tracer or Faults is set — both need the local engine.
	Remote func(Spec) (Outcome, bool)
}

func (c Cfg) note(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

func (c Cfg) fermi() config.GPU {
	g := config.GTX480()
	if c.SMs > 0 {
		g = g.Scaled(c.SMs)
	} else if c.Quick {
		g = g.Scaled(2)
	} else {
		g = g.Scaled(4)
	}
	return g
}

func (c Cfg) pascal() config.GPU {
	g := config.GTX1080Ti()
	switch {
	case c.SMs > 0:
		g = g.Scaled(c.SMs)
	case c.Quick:
		g = g.Scaled(2)
	default:
		g = g.Scaled(7) // same 15:28 ratio as the 4-SM Fermi scale
	}
	return g
}

func (c Cfg) syncSuite() []*kernels.Kernel {
	if c.Quick {
		return kernels.QuickSyncSuite()
	}
	return kernels.SyncSuite()
}

func (c Cfg) syncFreeSuite() []*kernels.Kernel {
	if c.Quick {
		return kernels.QuickSyncFreeSuite()
	}
	return kernels.SyncFreeSuite()
}

// run simulates one kernel and verifies its output. Experiments cap
// runaway configurations (a pathologically scheduled baseline can
// approach livelock, e.g. DS on the oversubscribed Pascal — an effect
// the paper itself reports in §VI-D) at expMaxCycles; the partial result
// is returned alongside the error so sweeps can record "at least this
// slow" instead of aborting. Specs submitted through Execute may carry
// their own explicit cycle ceiling (sp.maxCycles), which replaces the
// experiment clamp — the submitter (internal/server admission control)
// owns the bound.
func (c Cfg) run(sp *runSpec, tr sim.Tracer) (*sim.Result, error) {
	gpu := sp.gpu
	if sp.maxCycles > 0 {
		gpu.MaxCycles = sp.maxCycles
	} else if gpu.MaxCycles > expMaxCycles {
		gpu.MaxCycles = expMaxCycles
	}
	opt := sim.Options{GPU: gpu, Sched: sp.sched, BOWS: sp.bows, DDOS: sp.ddos,
		Detector: sp.det, TAGE: sp.tage, WaSP: sp.wasp, Tracer: tr,
		Faults: c.Faults, Shards: c.Shards, NoFastForward: c.NoFastForward,
		Progress: sp.progress}
	if c.Check {
		opt.Check = true
		opt.HangWindow = sim.DefaultHangWindow
	}
	eng, err := sim.New(opt, sp.k.Launch)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return res, err // res is the partial state on a watchdog abort
	}
	if sp.k.Verify != nil {
		if err := sp.k.Verify(res.Memory); err != nil {
			return nil, fmt.Errorf("%s under %s: %w", sp.k.Name, sp.sched, err)
		}
	}
	return res, nil
}

// expMaxCycles bounds one experiment run; configurations that exceed it
// are reported as lower bounds.
const expMaxCycles = 10_000_000

func bowsOff() config.BOWS { return config.BOWS{Mode: config.BOWSOff} }

// gmean is shorthand for stats.Gmean, the geometric mean the paper's
// normalized figures summarize with.
func gmean(vs []float64) float64 { return stats.Gmean(vs) }

// Experiment is a registry entry.
type Experiment struct {
	Name  string // registry key, e.g. "fig9"
	Title string
	Run   func(Cfg) (fmt.Stringer, error)
}

// remoteUnsafe lists experiments whose analysis consumes engine outputs
// beyond the service manifest (cycles plus aggregated counters): DDOS
// detection-quality metrics (table1, fig14, tagesib) and per-SM final
// delay limits (delaysweep). Offloading them would silently zero those
// columns, so cmd/experiments -remote runs them locally instead. wasp
// is listed because the wire format does not carry WASP knobs (the
// runner additionally guards per spec, see runOne).
var remoteUnsafe = map[string]bool{"table1": true, "fig14": true, "delaysweep": true,
	"tagesib": true, "wasp": true}

// RemoteSafe reports whether the experiment's analysis survives the
// service wire format, i.e. whether Cfg.Remote may serve its runs.
func (e Experiment) RemoteSafe() bool { return !remoteUnsafe[e.Name] }

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Fig. 1: fine-grained synchronization on current GPUs (hashtable motivation)", func(c Cfg) (fmt.Stringer, error) { return Fig1(c) }},
		{"fig2", "Fig. 2: synchronization status distribution under LRR/GTO/CAWA", func(c Cfg) (fmt.Stringer, error) { return Fig2(c) }},
		{"fig3", "Fig. 3: software back-off delay on GPUs", func(c Cfg) (fmt.Stringer, error) { return Fig3(c) }},
		{"table1", "Table I: DDOS sensitivity to design parameters", func(c Cfg) (fmt.Stringer, error) { return Table1(c) }},
		{"fig9", "Fig. 9: performance and energy savings on GTX480 (Fermi)", func(c Cfg) (fmt.Stringer, error) { return ExecEnergy(c, c.fermi(), "Fig. 9") }},
		{"delaysweep", "Figs. 10-13: back-off delay limit sweep (exec time, warp distribution, lock status, overheads)", func(c Cfg) (fmt.Stringer, error) { return DelaySweep(c) }},
		{"fig14", "Fig. 14: overheads due to detection errors (MODULO hashing)", func(c Cfg) (fmt.Stringer, error) { return Fig14(c) }},
		{"fig15", "Fig. 15: performance and energy savings on Pascal (GTX1080Ti)", func(c Cfg) (fmt.Stringer, error) { return ExecEnergy(c, c.pascal(), "Fig. 15") }},
		{"fig16", "Fig. 16: sensitivity to contention (hashtable buckets sweep)", func(c Cfg) (fmt.Stringer, error) { return Fig16(c) }},
		{"ablation", "Ablation: BOWS component contributions (deprioritize / fixed delay / adaptive / static annotations)", func(c Cfg) (fmt.Stringer, error) { return Ablation(c) }},
		{"wasp", "Scheduler zoo: WaSP priority-group scheduling vs GTO/CAWA (time and energy)", func(c Cfg) (fmt.Stringer, error) { return Wasp(c) }},
		{"tagesib", "Scheduler zoo: TAGE-SIB vs DDOS detection accuracy (Table I grid)", func(c Cfg) (fmt.Stringer, error) { return TageSIB(c) }},
		{"table2", "Table II: simulated configurations", func(c Cfg) (fmt.Stringer, error) { return Table2(c) }},
		{"table3", "Table III: DDOS and BOWS implementation costs", func(c Cfg) (fmt.Stringer, error) { return Table3(c) }},
	}
}

// ByName resolves a registry key.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	var names []string
	for _, e := range All() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have: %s)", name, strings.Join(names, ", "))
}

// table is a minimal fixed-width text table renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
