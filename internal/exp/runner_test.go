package exp

import (
	"fmt"
	"reflect"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/kernels"
	"warpsched/internal/metrics"
	"warpsched/internal/sim"
	"warpsched/internal/trace"
)

// testSpec builds a small hashtable run for runner tests.
func testSpec(buckets int) runSpec {
	g := config.GTX480().Scaled(2)
	k := kernels.NewHashTable(kernels.HashTableConfig{
		Items: 1024, Buckets: buckets, CTAs: 4, CTAThreads: 64,
	})
	return runSpec{gpu: g, sched: config.GTO, bows: config.DefaultBOWS(), ddos: config.DefaultDDOS(), k: k}
}

// TestRunnerRepeatDeterminism runs the same kernel with the same options
// twice and requires identical statistics and confirmed-SIB sets: the
// simulator must be a pure function of its inputs, the property the
// parallel runner's byte-identical-output guarantee rests on.
func TestRunnerRepeatDeterminism(t *testing.T) {
	sp := testSpec(64)
	a, err := Cfg{}.run(&sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp2 := testSpec(64)
	b, err := Cfg{}.run(&sp2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("Stats differ between identical runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.ConfirmedSIBs, b.ConfirmedSIBs) {
		t.Errorf("ConfirmedSIBs differ: %v vs %v", a.ConfirmedSIBs, b.ConfirmedSIBs)
	}
}

// TestRunnerJobsByteIdentical renders a full experiment at Jobs=1 and
// Jobs=8 and requires byte-identical tables — the runner's core contract
// (and the -j flag's documented guarantee).
func TestRunnerJobsByteIdentical(t *testing.T) {
	render := func(jobs int) string {
		r, err := Fig3(Cfg{Quick: true, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return r.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("rendered tables differ between -j1 and -j8:\n--- j1 ---\n%s--- j8 ---\n%s", serial, parallel)
	}
}

// TestRunnerSubmissionOrder checks that runAll places each spec's result
// at the spec's submission index regardless of worker count and timing.
func TestRunnerSubmissionOrder(t *testing.T) {
	// Distinct bucket counts give distinct cycle counts; heavier runs
	// first so completion order differs from submission order.
	buckets := []int{16, 32, 64, 128}
	specs := make([]runSpec, len(buckets))
	want := make([]int64, len(buckets))
	for i, bk := range buckets {
		specs[i] = testSpec(bk)
		res, err := Cfg{}.run(&specs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Stats.Cycles
	}
	for _, jobs := range []int{1, 2, 8} {
		outs := Cfg{Jobs: jobs}.runAll(specs)
		if err := firstErr(outs); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range outs {
			if outs[i].res.Stats.Cycles != want[i] {
				t.Errorf("jobs=%d: out[%d] = %d cycles, want %d (order scrambled?)",
					jobs, i, outs[i].res.Stats.Cycles, want[i])
			}
		}
	}
}

// TestRunnerProgressSerialized exercises the progress funnel under the
// race detector: the callback appends to an unsynchronized slice, which
// is only safe if Cfg.Progress honors its never-called-concurrently
// contract.
func TestRunnerProgressSerialized(t *testing.T) {
	specs := make([]runSpec, 6)
	for i := range specs {
		specs[i] = testSpec(32 << (i % 3))
	}
	var lines []string
	c := Cfg{Jobs: 4, Progress: func(s string) { lines = append(lines, s) }}
	outs := c.runAll(specs)
	if err := firstErr(outs); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(specs) {
		t.Fatalf("progress lines = %d, want %d:\n%v", len(lines), len(specs), lines)
	}
	// Each submission index appears exactly once (completion order varies).
	seen := map[string]bool{}
	for _, l := range lines {
		seen[l[:len(fmt.Sprintf("[%d/%d]", 1, len(specs)))]] = true
	}
	if len(seen) != len(specs) {
		t.Errorf("duplicate or missing progress indices:\n%v", lines)
	}
}

// TestRunnerTracerPerEngine exercises tracing under the parallel runner
// with the race detector: trace.Buffers must give each engine its own
// ring (one shared Ring would race), and per-run event totals must not
// depend on the worker count.
func TestRunnerTracerPerEngine(t *testing.T) {
	specs := []runSpec{testSpec(16), testSpec(32), testSpec(64), testSpec(128)}
	totals := func(jobs int) []int64 {
		bufs := trace.NewBuffers(256, 0)
		c := Cfg{Jobs: jobs, Tracer: func(i int) sim.Tracer { return bufs.For(i) }}
		outs := c.runAll(specs)
		if err := firstErr(outs); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		out := make([]int64, len(specs))
		for i := range specs {
			out[i] = bufs.For(i).Total()
		}
		return out
	}
	serial := totals(1)
	parallel := totals(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("per-run trace totals differ between -j1 and -j4: %v vs %v", serial, parallel)
	}
	for i, n := range serial {
		if n == 0 {
			t.Errorf("run %d recorded no events", i)
		}
	}
}

// TestRunnerCollectorJobsInvariant checks that a sweep's manifest is
// independent of the worker count: same keys, same counters.
func TestRunnerCollectorJobsInvariant(t *testing.T) {
	specs := []runSpec{testSpec(16), testSpec(32), testSpec(64)}
	collect := func(jobs int) []metrics.RunRecord {
		col := NewCollector("test", map[string]any{"jobs": "varies"})
		c := Cfg{Jobs: jobs, Collect: col}
		if err := firstErr(c.runAll(specs)); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		m := col.Manifest()
		if len(m.Runs) != len(specs) {
			t.Fatalf("jobs=%d: %d records, want %d", jobs, len(m.Runs), len(specs))
		}
		// Wall time is the one legitimately nondeterministic field.
		runs := append([]metrics.RunRecord(nil), m.Runs...)
		for i := range runs {
			runs[i].WallMS = 0
		}
		return runs
	}
	if a, b := collect(1), collect(4); !reflect.DeepEqual(a, b) {
		t.Errorf("manifests differ between -j1 and -j4:\n%v\nvs\n%v", a, b)
	}
}

// TestRunnerFirstErr verifies errors surface at the failing spec's
// submission position, mirroring the serial loops the runner replaced.
func TestRunnerFirstErr(t *testing.T) {
	specs := []runSpec{testSpec(64), testSpec(64), testSpec(64)}
	// Sabotage the middle spec: zero CTAs is rejected by sim.New.
	bad := kernels.NewHashTable(kernels.HashTableConfig{
		Items: 64, Buckets: 16, CTAs: 1, CTAThreads: 64,
	})
	bad.Launch.GridCTAs = 0
	specs[1].k = bad
	outs := Cfg{Jobs: 3}.runAll(specs)
	if err := firstErr(outs); err == nil {
		t.Fatal("expected an error from the sabotaged spec")
	}
	if outs[0].err != nil || outs[2].err != nil {
		t.Errorf("healthy specs errored: %v / %v", outs[0].err, outs[2].err)
	}
	if outs[1].err == nil {
		t.Error("sabotaged spec did not error")
	}
}
