package exp

import (
	"fmt"
	"math"
	"strings"

	"warpsched/internal/config"
	"warpsched/internal/cpuref"
	"warpsched/internal/kernels"
)

// Fig1Result reproduces the motivation figure: hashtable insertion across
// bucket counts on the simulated GPU versus a serial CPU cost model
// (1b), the dynamic-instruction overhead split (1c), the memory-traffic
// split (1d), and SIMD efficiency for a single warp versus a full launch
// (1e).
type Fig1Result struct {
	Buckets []int
	GPUms   []float64
	CPUms   []float64
	// SyncInstrFrac / SyncMemFrac per bucket count (1c/1d).
	SyncInstrFrac []float64
	SyncMemFrac   []float64
	// SIMD efficiency: single warp vs multiple warps (1e).
	SIMDSingle []float64
	SIMDMulti  []float64
	Items      int
}

// Fig1 runs the motivation experiment.
func Fig1(c Cfg) (*Fig1Result, error) {
	gpu := c.fermi()
	items, ctas, ctaThreads := 12288, 48, 128
	if c.Quick {
		items, ctas, ctaThreads = 6144, 24, 128
	}
	cpu := cpuref.DefaultCPU()
	r := &Fig1Result{Items: items}
	// Two runs per bucket count: the full launch and a single-warp launch
	// for the SIMD comparison (1e), the latter with items scaled down so
	// the run stays small.
	var specs []runSpec
	for _, buckets := range Fig16Buckets {
		k := kernels.NewHashTable(kernels.HashTableConfig{
			Items: items, Buckets: buckets, CTAs: ctas, CTAThreads: ctaThreads,
		})
		k1 := kernels.NewHashTable(kernels.HashTableConfig{
			Items: items / 8, Buckets: buckets, CTAs: 1, CTAThreads: 32,
		})
		specs = append(specs,
			runSpec{gpu: gpu, sched: config.GTO, bows: bowsOff(), ddos: config.DefaultDDOS(), k: k},
			runSpec{gpu: gpu, sched: config.GTO, bows: bowsOff(), ddos: config.DefaultDDOS(), k: k1})
	}
	outs := c.runAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	for i, buckets := range Fig16Buckets {
		res, res1 := outs[2*i].res, outs[2*i+1].res
		// CPU reference uses the same key stream length.
		keys := make([]uint32, items)
		for j := range keys {
			keys[j] = uint32(j * 2654435761) // any stream; cost model only
		}
		cres := cpu.RunHashtable(keys, buckets)

		r.Buckets = append(r.Buckets, buckets)
		r.GPUms = append(r.GPUms, float64(res.Stats.Cycles)/(float64(gpu.CoreClockMHz)*1000))
		r.CPUms = append(r.CPUms, cres.Millis)
		r.SyncInstrFrac = append(r.SyncInstrFrac, res.Stats.SyncInstrFraction())
		r.SyncMemFrac = append(r.SyncMemFrac, res.Stats.SyncMemFraction())
		r.SIMDSingle = append(r.SIMDSingle, res1.Stats.SIMDEfficiency())
		r.SIMDMulti = append(r.SIMDMulti, res.Stats.SIMDEfficiency())
		c.note("fig1 buckets=%d: gpu=%d cycles cpu=%.3fms", buckets, res.Stats.Cycles, cres.Millis)
	}
	return r, nil
}

// String renders the Figure 1 table in the harness's text format.
func (r *Fig1Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 1 — fine-grained synchronization on GPUs (hashtable, %d insertions)\n\n", r.Items)
	t := &table{header: []string{"buckets", "GPU ms (1b)", "CPU ms (1b)", "log10 GPU/CPU",
		"sync instr (1c)", "sync mem (1d)", "SIMD 1-warp (1e)", "SIMD multi (1e)"}}
	for i, b := range r.Buckets {
		ratio := math.Log10(r.GPUms[i] / r.CPUms[i])
		t.add(fmt.Sprintf("%d", b), fmt.Sprintf("%.3f", r.GPUms[i]), fmt.Sprintf("%.3f", r.CPUms[i]),
			f2(ratio), pct(r.SyncInstrFrac[i]), pct(r.SyncMemFrac[i]),
			pct(r.SIMDSingle[i]), pct(r.SIMDMulti[i]))
	}
	sb.WriteString(t.String())
	sb.WriteString("paper: GPU beats the serial CPU at low contention (9.77x at 4096 buckets on GTX1080);\n")
	sb.WriteString("       sync overhead 61-98% of instructions and 41-96% of memory traffic at high contention;\n")
	sb.WriteString("       SIMD efficiency 87-99% single-warp but 16-47% with many warps\n")
	return sb.String()
}
