package exp

import (
	"sync/atomic"

	"warpsched/internal/config"
	"warpsched/internal/kernels"
	"warpsched/internal/sim"
)

// Spec is one externally submitted simulation: the exported form of the
// runner's internal spec, used by internal/server to run daemon jobs on
// the same bounded worker pool (panic barrier, bounded retries, hang
// classification) that experiment sweeps use.
type Spec struct {
	// GPU, Sched, BOWS and DDOS select the machine and policies, exactly
	// as an experiment sweep would.
	GPU   config.GPU
	Sched config.SchedulerKind
	BOWS  config.BOWS
	DDOS  config.DDOS
	// Kernel is the program plus launch (and, when registered, verifier).
	// A nil Verify skips functional verification — the case for inline
	// user-submitted programs, which have no golden output.
	Kernel *kernels.Kernel
	// MaxCycles, when positive, replaces the harness's experiment cycle
	// clamp as the watchdog budget; the submitter owns the ceiling
	// (internal/server admission control bounds it per job).
	MaxCycles int64
	// Progress, when non-nil, is handed to the engine (sim.Options.Progress)
	// so the submitter can poll cycles simulated while the job runs.
	Progress *atomic.Int64
}

// Normalized returns the spec with the watchdog budget resolved exactly
// as a local run resolves it (Cfg.run): an explicit MaxCycles overrides
// the machine's, otherwise the experiment clamp applies; the effective
// budget lands in both MaxCycles and GPU.MaxCycles. Remote submitters
// (internal/server.SpecRequest) need the normalized form because the
// budget keys the result's content address.
func (s Spec) Normalized() Spec {
	switch {
	case s.MaxCycles > 0:
		s.GPU.MaxCycles = s.MaxCycles
	case s.GPU.MaxCycles > expMaxCycles:
		s.GPU.MaxCycles = expMaxCycles
	}
	s.MaxCycles = s.GPU.MaxCycles
	return s
}

// Outcome pairs a spec's result with its error, in the same convention
// as the runner: on a watchdog abort Res holds the partial state.
type Outcome struct {
	Res *sim.Result
	Err error
}

// Execute runs the specs on the harness's bounded worker pool (Cfg.Jobs)
// and returns outcomes in submission order. Panics are recovered into
// *PanicError records with Cfg.Retries re-runs, identically to
// experiment sweeps. Cfg.Collect and Cfg.Journal are not consulted —
// callers that cache or persist results (internal/server) own that
// layer.
func (c Cfg) Execute(specs []Spec) []Outcome {
	rs := make([]runSpec, len(specs))
	for i, s := range specs {
		rs[i] = runSpec{gpu: s.GPU, sched: s.Sched, bows: s.BOWS, ddos: s.DDOS,
			k: s.Kernel, maxCycles: s.MaxCycles, progress: s.Progress}
	}
	c.Collect, c.Journal = nil, nil
	outs := c.runAll(rs)
	res := make([]Outcome, len(outs))
	for i, o := range outs {
		res[i] = Outcome{Res: o.res, Err: o.err}
	}
	return res
}

// VariantHash fingerprints a spec's full configuration — machine,
// scheduler, BOWS and DDOS parameters, launch geometry and parameters —
// with the same hash experiment manifests key runs by, so a daemon job
// and a sweep run of the same configuration produce the same variant
// identity. Deliberately excluded, like Cfg.Jobs/Shards/NoFastForward:
// anything that cannot change simulation results.
func VariantHash(s Spec) string {
	sp := runSpec{gpu: s.GPU, sched: s.Sched, bows: s.BOWS, ddos: s.DDOS, k: s.Kernel}
	return variantHash(&sp)
}
