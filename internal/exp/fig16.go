package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
	"warpsched/internal/kernels"
)

// Fig16Result reproduces Figure 16: sensitivity to contention via a
// hashtable bucket sweep. For each bucket count it reports BOWS's speedup
// over GTO (16a) and BOWS's dynamic instruction count normalized to GTO
// next to the "ideal blocking" instruction count — the useful-instruction
// count a perfect queuing lock (an idealized HQL) would execute (16b).
type Fig16Result struct {
	Buckets    []int
	Speedup    []float64
	BOWSInstr  []float64 // normalized to GTO
	IdealInstr []float64 // measured with the blocking queue-lock unit
	IdealSpeed []float64 // queue-lock speedup over GTO
}

// Fig16Buckets is the paper's contention sweep.
var Fig16Buckets = []int{128, 256, 512, 1024, 2048, 4096}

// Fig16 runs the contention sweep.
func Fig16(c Cfg) (*Fig16Result, error) {
	gpu := c.fermi()
	// Same machine-saturating geometry as the suite's HT instance.
	items, ctas, ctaThreads := 12288, 48, 128
	if c.Quick {
		items, ctas, ctaThreads = 6144, 24, 128
	}
	r := &Fig16Result{}
	// Per bucket count: GTO baseline, GTO+BOWS, and ideal blocking (the
	// paper's HQL proxy, Fig. 16b) — the same kernel on the machine with
	// the blocking queue-lock unit enabled, where acquires park at the L2
	// and never retry.
	qGPU := gpu
	qGPU.Mem.QueueLocks = true
	var specs []runSpec
	for _, buckets := range Fig16Buckets {
		k := kernels.NewHashTable(kernels.HashTableConfig{
			Items: items, Buckets: buckets, CTAs: ctas, CTAThreads: ctaThreads,
		})
		specs = append(specs,
			runSpec{gpu: gpu, sched: config.GTO, bows: bowsOff(), ddos: config.DefaultDDOS(), k: k},
			runSpec{gpu: gpu, sched: config.GTO, bows: config.DefaultBOWS(), ddos: config.DefaultDDOS(), k: k},
			runSpec{gpu: qGPU, sched: config.GTO, bows: bowsOff(), ddos: config.DefaultDDOS(), k: k})
	}
	outs := c.runAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	for i, buckets := range Fig16Buckets {
		base, bows, ideal := outs[3*i].res, outs[3*i+1].res, outs[3*i+2].res
		r.Buckets = append(r.Buckets, buckets)
		r.Speedup = append(r.Speedup, float64(base.Stats.Cycles)/float64(bows.Stats.Cycles))
		r.BOWSInstr = append(r.BOWSInstr, float64(bows.Stats.ThreadInstrs)/float64(base.Stats.ThreadInstrs))
		r.IdealInstr = append(r.IdealInstr, float64(ideal.Stats.ThreadInstrs)/float64(base.Stats.ThreadInstrs))
		r.IdealSpeed = append(r.IdealSpeed, float64(base.Stats.Cycles)/float64(ideal.Stats.Cycles))
		c.note("fig16 buckets=%d: GTO=%d BOWS=%d ideal=%d cycles", buckets, base.Stats.Cycles, bows.Stats.Cycles, ideal.Stats.Cycles)
	}
	return r, nil
}

// String renders the Figure 16 table in the harness's text format.
func (r *Fig16Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 16 — sensitivity to contention (hashtable; fewer buckets = higher contention)\n\n")
	t := &table{header: []string{"buckets", "BOWS speedup over GTO (16a)", "BOWS inst. count / GTO (16b)", "ideal blocking inst. count / GTO", "ideal blocking speedup"}}
	for i, b := range r.Buckets {
		t.add(fmt.Sprintf("%d", b), f2(r.Speedup[i]), f2(r.BOWSInstr[i]), f2(r.IdealInstr[i]), f2(r.IdealSpeed[i]))
	}
	sb.WriteString(t.String())
	sb.WriteString("paper: speedup ~5x at 128 buckets down to ~1.2x at 4096; instruction savings 3.7x→1.3x;\n")
	sb.WriteString("       the gap to ideal blocking narrows as buckets increase\n")
	return sb.String()
}
