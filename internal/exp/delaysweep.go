package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
	"warpsched/internal/stats"
)

// DelayPoint is one bar of Figures 10-13: a kernel under GTO+BOWS at a
// given back-off delay limit (or plain GTO / adaptive BOWS).
type DelayPoint struct {
	Cycles       int64
	ThreadInstrs int64
	MemTrans     int64
	SIMD         float64
	BackedOff    float64 // average fraction of resident warps backed off
	Sync         stats.SyncEvents
	FinalLimit   int64
}

// DelaySweepResult holds the shared sweep behind Figures 10, 11, 12, 13.
type DelaySweepResult struct {
	Kernels []string
	Columns []string // GTO, BOWS(0), BOWS(500), ..., BOWS(Adaptive)
	Points  map[string][]DelayPoint
}

// DelayLimits is the paper's Figure 10 sweep.
var DelayLimits = []int64{0, 500, 1000, 3000, 5000}

// DelaySweep runs the Figures 10-13 sweep: GTO baseline, GTO+BOWS at
// fixed delay limits, and GTO+BOWS with the adaptive controller, all with
// DDOS-driven detection.
func DelaySweep(c Cfg) (*DelaySweepResult, error) {
	gpu := c.fermi()
	r := &DelaySweepResult{Points: map[string][]DelayPoint{}}
	r.Columns = []string{"GTO"}
	for _, d := range DelayLimits {
		r.Columns = append(r.Columns, fmt.Sprintf("BOWS(%d)", d))
	}
	r.Columns = append(r.Columns, "BOWS(Adaptive)")

	// Per kernel: GTO baseline, each fixed limit, then adaptive.
	bowsCols := []config.BOWS{bowsOff()}
	for _, d := range DelayLimits {
		bowsCols = append(bowsCols, config.FixedBOWS(d))
	}
	bowsCols = append(bowsCols, config.DefaultBOWS())

	suite := c.syncSuite()
	var specs []runSpec
	for _, k := range suite {
		for _, bows := range bowsCols {
			specs = append(specs, runSpec{gpu: gpu, sched: config.GTO, bows: bows, ddos: config.DefaultDDOS(), k: k})
		}
	}
	outs := c.runAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	idx := 0
	for _, k := range suite {
		r.Kernels = append(r.Kernels, k.Name)
		var pts []DelayPoint
		for _, bows := range bowsCols {
			res := outs[idx].res
			idx++
			var limit int64
			for _, fl := range res.FinalDelayLimits {
				if fl > limit {
					limit = fl
				}
			}
			pts = append(pts, DelayPoint{
				Cycles:       res.Stats.Cycles,
				ThreadInstrs: res.Stats.ThreadInstrs,
				MemTrans:     res.Stats.Mem.Transactions,
				SIMD:         res.Stats.SIMDEfficiency(),
				BackedOff:    res.Stats.BackedOffFraction(),
				Sync:         res.Stats.Sync,
				FinalLimit:   limit,
			})
			c.note("delaysweep %s %s: %d cycles", k.Name, bows.Mode, res.Stats.Cycles)
		}
		r.Points[k.Name] = pts
	}
	return r, nil
}

// String renders the Figures 10-13 tables in the harness's text format.
func (r *DelaySweepResult) String() string {
	var sb strings.Builder

	sb.WriteString("Fig. 10 — normalized execution time under GTO+BOWS at fixed/adaptive delay limits (GTO = 1.00)\n\n")
	t := &table{header: append([]string{"kernel"}, r.Columns...)}
	var gm = make([][]float64, len(r.Columns))
	for _, k := range r.Kernels {
		pts := r.Points[k]
		base := float64(pts[0].Cycles)
		row := []string{k}
		for i, p := range pts {
			v := float64(p.Cycles) / base
			row = append(row, f2(v))
			gm[i] = append(gm[i], v)
		}
		t.add(row...)
	}
	row := []string{"gmean"}
	for _, vs := range gm {
		row = append(row, f2(gmean(vs)))
	}
	t.add(row...)
	sb.WriteString(t.String())
	sb.WriteString("paper: BOWS improves over GTO across limits; very large limits hurt TSP (Fig. 10)\n")

	sb.WriteString("\nFig. 11 — average fraction of resident warps in the backed-off state\n\n")
	t = &table{header: append([]string{"kernel"}, r.Columns...)}
	for _, k := range r.Kernels {
		row := []string{k}
		for _, p := range r.Points[k] {
			row = append(row, pct(p.BackedOff))
		}
		t.add(row...)
	}
	sb.WriteString(t.String())
	sb.WriteString("paper: backed-off share grows with the delay limit once it exceeds a per-benchmark threshold (Fig. 11)\n")

	sb.WriteString("\nFig. 12 — lock acquire / wait exit outcome distribution (per-lane attempts, normalized to the GTO bar's total)\n\n")
	t = &table{header: []string{"kernel", "column", "success", "interwarp-fail", "intrawarp-fail", "wait-ok", "wait-fail", "total/GTO"}}
	for _, k := range r.Kernels {
		base := float64(r.Points[k][0].Sync.LockAttempts() + r.Points[k][0].Sync.WaitAttempts())
		if base == 0 {
			base = 1
		}
		for i, p := range r.Points[k] {
			tot := float64(p.Sync.LockAttempts() + p.Sync.WaitAttempts())
			t.add(k, r.Columns[i],
				fmt.Sprintf("%d", p.Sync.LockSuccess),
				fmt.Sprintf("%d", p.Sync.InterWarpFail),
				fmt.Sprintf("%d", p.Sync.IntraWarpFail),
				fmt.Sprintf("%d", p.Sync.WaitExitSuccess),
				fmt.Sprintf("%d", p.Sync.WaitExitFail),
				f2(tot/base))
		}
	}
	sb.WriteString(t.String())
	sb.WriteString("paper: BOWS sharply cuts failed acquires (e.g. 10.8x fewer lock failures on HT vs GTO)\n")

	sb.WriteString("\nFig. 13a — normalized dynamic (thread) instruction count (GTO = 1.00)\n\n")
	sb.WriteString(r.normTable(func(p DelayPoint) float64 { return float64(p.ThreadInstrs) }))
	sb.WriteString("paper: BOWS reduces dynamic instructions 2.1x on average vs GTO\n")

	sb.WriteString("\nFig. 13b — normalized memory transactions (GTO = 1.00)\n\n")
	sb.WriteString(r.normTable(func(p DelayPoint) float64 { return float64(p.MemTrans) }))
	sb.WriteString("paper: BOWS reduces memory transactions ~19% vs GTO\n")

	sb.WriteString("\nFig. 13c — SIMD efficiency\n\n")
	t = &table{header: append([]string{"kernel"}, r.Columns...)}
	for _, k := range r.Kernels {
		row := []string{k}
		for _, p := range r.Points[k] {
			row = append(row, pct(p.SIMD))
		}
		t.add(row...)
	}
	sb.WriteString(t.String())
	sb.WriteString("paper: BOWS improves SIMD efficiency on HT (3.4x) and ATM (1.85x) vs GTO\n")

	sb.WriteString("\nAdaptive final delay limits per kernel: ")
	for i, k := range r.Kernels {
		if i > 0 {
			sb.WriteString(", ")
		}
		pts := r.Points[k]
		fmt.Fprintf(&sb, "%s=%d", k, pts[len(pts)-1].FinalLimit)
	}
	sb.WriteByte('\n')
	return sb.String()
}

func (r *DelaySweepResult) normTable(metric func(DelayPoint) float64) string {
	t := &table{header: append([]string{"kernel"}, r.Columns...)}
	gm := make([][]float64, len(r.Columns))
	for _, k := range r.Kernels {
		pts := r.Points[k]
		base := metric(pts[0])
		if base == 0 {
			base = 1
		}
		row := []string{k}
		for i, p := range pts {
			v := metric(p) / base
			row = append(row, f2(v))
			gm[i] = append(gm[i], v)
		}
		t.add(row...)
	}
	row := []string{"gmean"}
	for _, vs := range gm {
		row = append(row, f2(gmean(vs)))
	}
	t.add(row...)
	return t.String()
}
