package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
)

// Table2Result renders the simulated configurations (paper Table II).
type Table2Result struct {
	Fermi  config.GPU
	Pascal config.GPU
	BOWS   config.BOWS
	DDOS   config.DDOS
}

// Table2 collects the configuration constants.
func Table2(Cfg) (*Table2Result, error) {
	return &Table2Result{
		Fermi:  config.GTX480(),
		Pascal: config.GTX1080Ti(),
		BOWS:   config.DefaultBOWS(),
		DDOS:   config.DefaultDDOS(),
	}, nil
}

// String renders Table II in the harness's text format.
func (r *Table2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table II — configurations\n\n")
	sb.WriteString("· BOWS specific\n")
	fmt.Fprintf(&sb, "  baseline schedulers: GTO (age rotation every 50,000 cycles), LRR, CAWA\n")
	fmt.Fprintf(&sb, "  window T=%d cycles, delay step=%d, min limit=%d, max limit=%d, FRAC1=%.1f, FRAC2=%.1f\n",
		r.BOWS.WindowCycles, r.BOWS.DelayStep, r.BOWS.MinLimit, r.BOWS.MaxLimit, r.BOWS.Frac1, r.BOWS.Frac2)
	sb.WriteString("  (paper lists max limit 1000, inconsistent with its 14-bit delay counters; we use 10000 — see DESIGN.md)\n")
	sb.WriteString("· DDOS specific\n")
	fmt.Fprintf(&sb, "  hashing=%s, history width m=k=%d, history length l=%d, confidence threshold t=%d, time sharing=%v\n",
		r.DDOS.Hash, r.DDOS.PathBits, r.DDOS.HistoryLen, r.DDOS.ConfidenceThreshold, r.DDOS.TimeShare)
	sb.WriteString("· Baseline GPUs\n")
	t := &table{header: []string{"parameter", "GTX480 (Fermi)", "GTX1080Ti (Pascal)"}}
	f, p := r.Fermi, r.Pascal
	t.add("SMs", fmt.Sprint(f.NumSMs), fmt.Sprint(p.NumSMs))
	t.add("threads/SM", fmt.Sprint(f.WarpsPerSM*32), fmt.Sprint(p.WarpsPerSM*32))
	t.add("warp schedulers/SM", fmt.Sprint(f.SchedulersPerSM), fmt.Sprint(p.SchedulersPerSM))
	t.add("L1 data cache", fmt.Sprintf("%d KB, %d-way", f.Mem.L1KB, f.Mem.L1Assoc), fmt.Sprintf("%d KB, %d-way", p.Mem.L1KB, p.Mem.L1Assoc))
	t.add("L2 cache (total)", fmt.Sprintf("%d KB, %d-way", f.Mem.L2KB, f.Mem.L2Assoc), fmt.Sprintf("%d KB, %d-way", p.Mem.L2KB, p.Mem.L2Assoc))
	t.add("core clock (MHz)", fmt.Sprint(f.CoreClockMHz), fmt.Sprint(p.CoreClockMHz))
	t.add("memory clock (MHz)", fmt.Sprint(f.MemClockMHz), fmt.Sprint(p.MemClockMHz))
	sb.WriteString(t.String())
	return sb.String()
}

// Table3Result computes the hardware budget of Table III from the active
// configuration.
type Table3Result struct {
	Warps int
	DDOS  config.DDOS

	HistoryBitsPerWarp int
	HistoryBitsTotal   int
	SIBPTBits          int
	PendingDelayBits   int
	BackedOffQueueBits int
}

// Table3 computes implementation costs for the Fermi SM.
func Table3(Cfg) (*Table3Result, error) {
	g := config.GTX480()
	d := config.DefaultDDOS()
	r := &Table3Result{Warps: g.WarpsPerSM, DDOS: d}
	// Path history: l entries of m bits; value history: 2l entries of k
	// bits (two source operands per setp record).
	r.HistoryBitsPerWarp = d.HistoryLen*d.PathBits + 2*d.HistoryLen*d.ValueBits
	r.HistoryBitsTotal = r.HistoryBitsPerWarp * g.WarpsPerSM
	// SIB-PT entry: 32-bit PC tag (paper stores a compressed tag; it
	// budgets 35 bits/entry total) + confidence + prediction.
	r.SIBPTBits = d.TableSize * 35
	// 14-bit pending delay counters (up to 10,000 cycles) per warp.
	r.PendingDelayBits = 14 * g.WarpsPerSM
	// Backed-off queue: one 5-bit (log2 48 rounded up... 6 for 48 warps;
	// the paper budgets 5) slot id per warp.
	r.BackedOffQueueBits = 5 * g.WarpsPerSM
	return r, nil
}

// String renders Table III in the harness's text format.
func (r *Table3Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table III — DDOS and BOWS implementation costs per SM (GTX480, 48 warps)\n\n")
	t := &table{header: []string{"component", "storage", "paper"}}
	t.add("DDOS history registers",
		fmt.Sprintf("%d warps x %d bits = %d bits", r.Warps, r.HistoryBitsPerWarp, r.HistoryBitsTotal),
		"48 x 192 bits = 9216 bits")
	t.add("DDOS SIB-PT",
		fmt.Sprintf("%d entries x 35 bits = %d bits", r.DDOS.TableSize, r.SIBPTBits),
		"16 x 35 = 560 bits")
	t.add("DDOS comparison", "8-bit comparator + 8:1 8-bit mux (shared per SM)", "same")
	t.add("DDOS hashing", "8 4-bit XOR trees (shared per SM)", "same")
	t.add("DDOS FSM", fmt.Sprintf("%d x 4-state FSM", r.Warps), "48 x 4-state")
	t.add("BOWS pending delay counters",
		fmt.Sprintf("%d x 14 bits = %d bits", r.Warps, r.PendingDelayBits), "672 bits")
	t.add("BOWS backed-off queue",
		fmt.Sprintf("%d x 5 bits = %d bits", r.Warps, r.BackedOffQueueBits), "240 bits")
	t.add("BOWS arbitration/adaptive logic", "reuses idle functional units for the divide", "same")
	sb.WriteString(t.String())
	return sb.String()
}
