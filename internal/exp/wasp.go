package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
	"warpsched/internal/energy"
)

// WaspResult is the scheduler-zoo head-to-head: execution time and
// dynamic energy for every synchronization kernel under GTO, CAWA and
// WaSP with and without BOWS, normalized to GTO. It answers the two
// questions the zoo exists for — does prefetch-mimicking priority
// grouping beat the paper's baselines on spin-heavy kernels, and does
// BOWS compose with it the way it composes with GTO/CAWA.
type WaspResult struct {
	GPUName string
	Kernels []string
	// Time[kernel][column] and Energy[kernel][column] follow Columns.
	Columns []string
	Time    map[string][]float64
	Energy  map[string][]float64
	// GmeanTime/GmeanEnergy are geometric means per column.
	GmeanTime   []float64
	GmeanEnergy []float64
	// WaSP records the knobs the WASP columns ran with.
	WaSP config.WaSP
}

// WaspSchedulers is the sweep's scheduler order: the paper's two
// strongest baselines, then the zoo contender.
var WaspSchedulers = []config.SchedulerKind{config.GTO, config.CAWA, config.WASP}

// WaspColumns is the bar order of the WaSP head-to-head figures.
var WaspColumns = []string{"GTO", "GTO+BOWS", "CAWA", "CAWA+BOWS", "WASP", "WASP+BOWS"}

// Wasp runs the WaSP-vs-baselines sweep on the Fermi machine: the sync
// suite under each of WaspSchedulers with and without BOWS, the same
// shape as the Figure 9 sweep but anchored at GTO (WaSP targets the
// strongest baselines, so LRR would only flatter it).
func Wasp(c Cfg) (*WaspResult, error) {
	gpu := c.fermi()
	r := &WaspResult{
		GPUName: gpu.Name,
		Columns: WaspColumns,
		Time:    map[string][]float64{},
		Energy:  map[string][]float64{},
		WaSP:    config.DefaultWaSP(),
	}
	coeff := energy.ByConfigName(gpu.Name)
	suite := c.syncSuite()
	var specs []runSpec
	for _, k := range suite {
		for _, kind := range WaspSchedulers {
			for _, withBOWS := range []bool{false, true} {
				bows := bowsOff()
				if withBOWS {
					bows = config.DefaultBOWS()
				}
				sp := runSpec{gpu: gpu, sched: kind, bows: bows, ddos: config.DefaultDDOS(), k: k}
				if kind == config.WASP {
					sp.wasp = r.WaSP
				}
				specs = append(specs, sp)
			}
		}
	}
	outs := c.runAll(specs)
	idx := 0
	for _, k := range suite {
		r.Kernels = append(r.Kernels, k.Name)
		times := make([]float64, len(r.Columns))
		energies := make([]float64, len(r.Columns))
		col := 0
		for _, kind := range WaspSchedulers {
			for _, withBOWS := range []bool{false, true} {
				o := outs[idx]
				idx++
				res := o.res
				if o.err != nil {
					if res == nil {
						return nil, fmt.Errorf("wasp %s/%v: %w", k.Name, kind, o.err)
					}
					// Watchdog abort: treat as "at least this many cycles".
					c.note("wasp %s %s: watchdog at %d cycles (lower bound)", k.Name, kind, res.Stats.Cycles)
				}
				times[col] = float64(res.Stats.Cycles)
				energies[col] = energy.Compute(coeff, &res.Stats).Total()
				c.note("wasp %s %s bows=%v: %d cycles", k.Name, kind, withBOWS, res.Stats.Cycles)
				col++
			}
		}
		// Normalize to GTO (column 0).
		base, baseE := times[0], energies[0]
		for i := range times {
			times[i] /= base
			energies[i] /= baseE
		}
		r.Time[k.Name] = times
		r.Energy[k.Name] = energies
	}
	r.GmeanTime = make([]float64, len(r.Columns))
	r.GmeanEnergy = make([]float64, len(r.Columns))
	for i := range r.Columns {
		var ts, es []float64
		for _, k := range r.Kernels {
			ts = append(ts, r.Time[k][i])
			es = append(es, r.Energy[k][i])
		}
		r.GmeanTime[i] = gmean(ts)
		r.GmeanEnergy[i] = gmean(es)
	}
	return r, nil
}

// col returns the index of the named column, or -1.
func (r *WaspResult) col(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// TimeVs returns the geometric-mean execution-time ratio base/WASP (how
// many times faster WaSP is than the named baseline; >1 means WaSP
// wins).
func (r *WaspResult) TimeVs(base config.SchedulerKind) float64 {
	bi, wi := r.col(string(base)), r.col(string(config.WASP))
	if bi < 0 || wi < 0 || r.GmeanTime[wi] == 0 {
		return 0
	}
	return r.GmeanTime[bi] / r.GmeanTime[wi]
}

// BOWSSpeedup returns the geometric-mean speedup of base+BOWS over base
// within this sweep.
func (r *WaspResult) BOWSSpeedup(base config.SchedulerKind) float64 {
	bi, wi := r.col(string(base)), r.col(string(base)+"+BOWS")
	if bi < 0 || wi < 0 || r.GmeanTime[wi] == 0 {
		return 0
	}
	return r.GmeanTime[bi] / r.GmeanTime[wi]
}

// String renders the head-to-head tables in the harness's text format.
func (r *WaspResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "WaSP head-to-head — normalized execution time on %s (lower is better, GTO = 1.00; WASP %s)\n\n",
		r.GPUName, r.WaSP.Desc())
	t := &table{header: append([]string{"kernel"}, r.Columns...)}
	for _, k := range r.Kernels {
		row := []string{k}
		for _, v := range r.Time[k] {
			row = append(row, f2(v))
		}
		t.add(row...)
	}
	gm := []string{"gmean"}
	for _, v := range r.GmeanTime {
		gm = append(gm, f2(v))
	}
	t.add(gm...)
	sb.WriteString(t.String())

	fmt.Fprintf(&sb, "\nWaSP head-to-head — normalized dynamic energy on %s\n\n", r.GPUName)
	t2 := &table{header: append([]string{"kernel"}, r.Columns...)}
	for _, k := range r.Kernels {
		row := []string{k}
		for _, v := range r.Energy[k] {
			row = append(row, f2(v))
		}
		t2.add(row...)
	}
	gm = []string{"gmean"}
	for _, v := range r.GmeanEnergy {
		gm = append(gm, f2(v))
	}
	t2.add(gm...)
	sb.WriteString(t2.String())

	fmt.Fprintf(&sb, "\nWaSP time vs baselines: %.2fx vs GTO, %.2fx vs CAWA (>1 means WaSP faster)\n",
		r.TimeVs(config.GTO), r.TimeVs(config.CAWA))
	fmt.Fprintf(&sb, "BOWS speedup within sweep: %.2fx on GTO, %.2fx on CAWA, %.2fx on WASP\n",
		r.BOWSSpeedup(config.GTO), r.BOWSSpeedup(config.CAWA), r.BOWSSpeedup(config.WASP))
	sb.WriteString("WaSP reference (Joseph et al., arXiv 2404.06156): priority grouping buys most on cache-sensitive kernels;\n")
	sb.WriteString("spin-heavy kernels are expected to favor GTO/CAWA+BOWS — the point of running the head-to-head\n")
	return sb.String()
}
