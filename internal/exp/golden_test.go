package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"warpsched/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden stats files under testdata/golden")

const goldenPath = "testdata/golden/quick.json"

// TestGoldenQuickStats is the golden-stats regression gate: it re-runs
// the quick golden sweep and diffs the resulting manifest against the
// committed snapshot — cycles and event counters exactly, derived floats
// within tolerance, wall times never. Any change to simulation behavior,
// however small, fails here and forces a conscious regeneration:
//
//	go test ./internal/exp -run Golden -update
func TestGoldenQuickStats(t *testing.T) {
	got, err := GoldenManifest(Cfg{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := got.WriteFile(goldenPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d runs)", goldenPath, len(got.Runs))
		return
	}
	want, err := metrics.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden snapshot (regenerate with -update): %v", err)
	}
	diffs := metrics.Diff(got, want, metrics.DiffOptions{FloatTol: 1e-9, RequireSameRuns: true})
	for _, d := range diffs {
		t.Error(d)
	}
	if len(diffs) > 0 {
		t.Errorf("%d difference(s) against %s — if the simulation change is intended, regenerate with `go test ./internal/exp -run Golden -update`",
			len(diffs), goldenPath)
	}
}
