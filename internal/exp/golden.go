package exp

import (
	"warpsched/internal/config"
	"warpsched/internal/metrics"
)

// goldenSpecs is the sweep pinned by the golden-stats regression test:
// the sync suite under the paper's two strongest baselines (GTO, CAWA)
// with and without BOWS on the Fermi machine. Every spec is built exactly
// like the fig9 sweep (same c.fermi() machine, DefaultBOWS, DefaultDDOS),
// so the committed golden counters mirror the fig9 records of the
// manifest a `cmd/experiments -exp all` run emits (differing only in the
// per-record experiment tag) — simulation drift there fails here too.
func goldenSpecs(c Cfg) []runSpec {
	gpu := c.fermi()
	var specs []runSpec
	for _, k := range c.syncSuite() {
		for _, kind := range []config.SchedulerKind{config.GTO, config.CAWA} {
			specs = append(specs,
				runSpec{gpu: gpu, sched: kind, bows: bowsOff(), ddos: config.DefaultDDOS(), k: k},
				runSpec{gpu: gpu, sched: kind, bows: config.DefaultBOWS(), ddos: config.DefaultDDOS(), k: k})
		}
	}
	// Scheduler-zoo variants pin WaSP scheduling and TAGE-SIB detection the
	// same way; appended after the original sweep so the pre-existing record
	// order — and every pre-existing variant hash — is untouched.
	for _, k := range c.syncSuite() {
		specs = append(specs,
			runSpec{gpu: gpu, sched: config.WASP, bows: config.DefaultBOWS(),
				ddos: config.DefaultDDOS(), wasp: config.DefaultWaSP(), k: k},
			runSpec{gpu: gpu, sched: config.GTO, bows: config.DefaultBOWS(),
				ddos: config.DefaultDDOS(), det: config.DetectTAGE, tage: config.DefaultTAGE(), k: k})
	}
	return specs
}

// GoldenManifest runs the golden sweep and returns its manifest.
func GoldenManifest(c Cfg) (*metrics.Manifest, error) {
	col := NewCollector("golden", map[string]any{"quick": c.Quick, "sms": c.SMs})
	c.Collect = col
	c.Exp = "golden"
	outs := c.runAll(goldenSpecs(c))
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	return col.Manifest(), nil
}
