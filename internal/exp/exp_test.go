package exp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGmean(t *testing.T) {
	if g := gmean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("gmean(2,8) = %f", g)
	}
	if gmean(nil) != 0 {
		t.Fatal("empty gmean should be 0")
	}
	if gmean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive values should yield 0")
	}
}

func TestGmeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		var vs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r%1000) + 1
			vs = append(vs, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(vs) == 0 {
			return true
		}
		g := gmean(vs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRenderer(t *testing.T) {
	tb := &table{header: []string{"a", "long-header"}}
	tb.add("x", "1")
	tb.add("longer-cell", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestRegistryCoversPaperEvaluation(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "table1", "fig9", "delaysweep",
		"fig14", "fig15", "fig16", "table2", "table3"}
	got := map[string]bool{}
	for _, e := range All() {
		got[e.Name] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
}

func TestTable2RendersConfigs(t *testing.T) {
	r, err := Table2(Cfg{})
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"GTX480", "GTX1080Ti", "FRAC1", "XOR"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II rendering missing %q", want)
		}
	}
}

func TestTable3MatchesPaperBudget(t *testing.T) {
	r, err := Table3(Cfg{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 48 warps × 192 bits history, 560-bit SIB-PT, 672-bit counters.
	if r.HistoryBitsPerWarp != 192 {
		t.Errorf("history bits/warp = %d, want 192", r.HistoryBitsPerWarp)
	}
	if r.HistoryBitsTotal != 9216 {
		t.Errorf("history bits total = %d, want 9216", r.HistoryBitsTotal)
	}
	if r.SIBPTBits != 560 {
		t.Errorf("SIB-PT bits = %d, want 560", r.SIBPTBits)
	}
	if r.PendingDelayBits != 672 {
		t.Errorf("pending delay bits = %d, want 672", r.PendingDelayBits)
	}
	if !strings.Contains(r.String(), "9216") {
		t.Error("rendering missing history budget")
	}
}

func TestCfgScaling(t *testing.T) {
	if g := (Cfg{Quick: true}).fermi(); g.NumSMs != 2 {
		t.Errorf("quick fermi SMs = %d", g.NumSMs)
	}
	if g := (Cfg{}).fermi(); g.NumSMs != 4 {
		t.Errorf("default fermi SMs = %d", g.NumSMs)
	}
	if g := (Cfg{SMs: 8}).fermi(); g.NumSMs != 8 {
		t.Errorf("override fermi SMs = %d", g.NumSMs)
	}
	if g := (Cfg{}).pascal(); g.NumSMs != 7 {
		t.Errorf("default pascal SMs = %d", g.NumSMs)
	}
}
