package exp

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/kernels"
	"warpsched/internal/mem"
)

// TestRunnerFaultInjectionStress runs the quick synchronization suite
// under seeded memory faults — latency spikes, response reordering,
// atomic retry storms — with GTO and GTO+BOWS, invariant checking and
// hang aborts armed. Every kernel must still produce verified output:
// fault injection perturbs timing, never correctness.
func TestRunnerFaultInjectionStress(t *testing.T) {
	suite := kernels.QuickSyncSuite()
	if len(suite) > 2 {
		suite = suite[:2] // HT + ATM keep the stress matrix affordable
	}
	g := config.GTX480().Scaled(2)
	for _, seed := range []uint64{1, 99} {
		for _, bows := range []config.BOWS{bowsOff(), config.DefaultBOWS()} {
			var specs []runSpec
			for _, k := range suite {
				specs = append(specs, runSpec{gpu: g, sched: config.GTO, bows: bows, ddos: config.DefaultDDOS(), k: k})
			}
			faults := mem.DefaultFaults(seed)
			c := Cfg{Jobs: 2, Check: true, Faults: &faults}
			outs := c.runAll(specs)
			for i, o := range outs {
				if o.err != nil {
					t.Errorf("seed=%d bows=%s %s: %v", seed, bows.Mode, specs[i].k.Name, o.err)
				}
			}
		}
	}
}

// TestRunnerFaultDeterminism: the same fault seed twice gives identical
// statistics; a different seed gives a different timing profile.
func TestRunnerFaultDeterminism(t *testing.T) {
	sp := testSpec(64)
	run := func(seed uint64) *runOut {
		faults := mem.DefaultFaults(seed)
		c := Cfg{Check: true, Faults: &faults}
		o := c.guardedRun(&sp, nil)
		if o.err != nil {
			t.Fatalf("seed=%d: %v", seed, o.err)
		}
		return &o
	}
	a, b := run(5), run(5)
	if !reflect.DeepEqual(a.res.Stats, b.res.Stats) {
		t.Errorf("same fault seed produced different stats:\n%+v\n%+v", a.res.Stats, b.res.Stats)
	}
	if c := run(6); reflect.DeepEqual(a.res.Stats, c.res.Stats) {
		t.Error("different fault seeds produced identical stats (injector inert?)")
	}
}

// panicKernel returns a healthy launch whose Verify closure panics —
// standing in for any bug that escapes the engine's own recovery.
func panicKernel() *kernels.Kernel {
	k := kernels.NewHashTable(kernels.HashTableConfig{
		Items: 256, Buckets: 16, CTAs: 2, CTAThreads: 64,
	})
	k.Verify = func([]uint32) error { panic("synthetic verifier bug") }
	return k
}

// TestRunnerPanicRecovered: a panicking run becomes a *PanicError record
// carrying the panic value and stack; sibling specs complete untouched.
func TestRunnerPanicRecovered(t *testing.T) {
	specs := []runSpec{testSpec(64), testSpec(64), testSpec(64)}
	specs[1].k = panicKernel()
	outs := Cfg{Jobs: 3}.runAll(specs)
	if outs[0].err != nil || outs[2].err != nil {
		t.Errorf("healthy specs errored: %v / %v", outs[0].err, outs[2].err)
	}
	var pe *PanicError
	if !errors.As(outs[1].err, &pe) {
		t.Fatalf("expected *PanicError, got %v", outs[1].err)
	}
	if pe.Value != "synthetic verifier bug" || pe.Kernel == "" {
		t.Errorf("panic record incomplete: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "goroutine") {
		t.Error("panic record carries no stack trace")
	}
	if strings.Contains(pe.Brief(), "goroutine") {
		t.Error("Brief should omit the stack")
	}
}

// TestRunnerRetryPolicy: panicking runs are retried up to Cfg.Retries;
// deterministic failures are not retried.
func TestRunnerRetryPolicy(t *testing.T) {
	attempts := 0
	sp := testSpec(64)
	k := panicKernel()
	k.Verify = func([]uint32) error { attempts++; panic(attempts) }
	sp.k = k
	o := Cfg{Retries: 2}.runOne(&sp, 0, 1, nil)
	if attempts != 3 {
		t.Errorf("ran %d attempts, want 3 (1 + 2 retries)", attempts)
	}
	var pe *PanicError
	if !errors.As(o.err, &pe) {
		t.Fatalf("expected *PanicError after exhausted retries, got %v", o.err)
	}

	// A deterministic failure (sim.New rejects the launch) must not retry.
	calls := 0
	bad := testSpec(64)
	badK := kernels.NewHashTable(kernels.HashTableConfig{
		Items: 64, Buckets: 16, CTAs: 1, CTAThreads: 64,
	})
	badK.Launch.GridCTAs = 0
	badK.Verify = func([]uint32) error { calls++; return nil }
	bad.k = badK
	o = Cfg{Retries: 5}.runOne(&bad, 0, 1, nil)
	if o.err == nil {
		t.Fatal("sabotaged launch succeeded")
	}
	if errors.As(o.err, &pe) {
		t.Errorf("deterministic failure surfaced as a panic: %v", o.err)
	}
	if calls != 0 {
		t.Errorf("verifier ran %d times on a rejected launch", calls)
	}
}
