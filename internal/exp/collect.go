package exp

import (
	"sync"

	"warpsched/internal/config"
	"warpsched/internal/energy"
	"warpsched/internal/metrics"
	"warpsched/internal/stats"
)

// Collector accumulates one metrics.RunRecord per completed simulation
// into a run manifest. A single Collector serves a whole parallel sweep:
// it is safe for concurrent use from runAll workers, and the resulting
// manifest is independent of the worker count (records are keyed, and
// WriteFile sorts).
type Collector struct {
	mu sync.Mutex
	m  *metrics.Manifest
}

// NewCollector starts a manifest for tool (e.g. "experiments") with the
// given invocation configuration (flag values and the like).
func NewCollector(tool string, cfg map[string]any) *Collector {
	return &Collector{m: metrics.NewManifest(tool, cfg)}
}

func (c *Collector) add(r metrics.RunRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Add(r)
}

// Manifest returns the accumulated manifest, sorted by run key.
func (c *Collector) Manifest() *metrics.Manifest {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.Sort()
	return c.m
}

// buildRecord converts one finished run into a manifest record tagged
// with the submitting experiment (Cfg.Exp).
func buildRecord(exp string, sp *runSpec, o runOut, wallMS float64) metrics.RunRecord {
	r := metrics.RunRecord{
		Exp:     exp,
		Kernel:  sp.k.Name,
		GPU:     sp.gpu.Name,
		Sched:   string(sp.sched),
		BOWS:    sp.bows.Desc(),
		DDOS:    detectorDesc(sp),
		Variant: variantHash(sp),
		WallMS:  wallMS,
	}
	if o.err != nil {
		r.Err = o.err.Error()
	}
	res := o.res
	if res == nil {
		return r
	}
	st := &res.Stats
	r.Cycles = st.Cycles
	r.Counters = aggregateCounters(res.Metrics)
	r.Derived = map[string]float64{
		"simd_efficiency":     st.SIMDEfficiency(),
		"sync_instr_fraction": st.SyncInstrFraction(),
		"sync_mem_fraction":   st.SyncMemFraction(),
		"backed_off_fraction": st.BackedOffFraction(),
		"energy_total_pj":     energy.Compute(energy.ByConfigName(sp.gpu.Name), st).Total(),
	}
	// Detection quality (Table I inputs), from whichever detector the
	// spec selected; the counter family keeps its historical "ddos."
	// names so every consumer joins one schema. Counts only appear when
	// the detector observed at least one backward branch, so records from
	// branch-free kernels stay compact; the DPR means only exist when a
	// branch of that class was actually confirmed.
	det := res.Detection
	if det.TrueSeen > 0 || det.FalseSeen > 0 {
		r.Counters["ddos.true_sibs_seen"] = int64(det.TrueSeen)
		r.Counters["ddos.true_sibs_detected"] = int64(det.TrueDetected)
		r.Counters["ddos.false_sibs_seen"] = int64(det.FalseSeen)
		r.Counters["ddos.false_sibs_detected"] = int64(det.FalseDetected)
	}
	if det.TrueDetected > 0 {
		r.Derived["ddos_true_dpr"] = det.TrueDPR()
	}
	if det.FalseDetected > 0 {
		r.Derived["ddos_false_dpr"] = det.FalseDPR()
	}
	return r
}

// detectorDesc renders the spec's detector descriptor for the record's
// DDOS column (the manifest's detector-configuration join key): the
// DDOS parameter descriptor for DDOS specs, the TAGE descriptor —
// disjoint by construction — for TAGE specs. Reusing the column keeps
// the manifest schema stable while the tagesib sensitivity table joins
// both detector families on one key.
func detectorDesc(sp *runSpec) string {
	if sp.det == config.DetectTAGE {
		return sp.tage.Desc()
	}
	return sp.ddos.Desc()
}

// variantHash fingerprints everything that can distinguish two runs
// sharing a kernel/GPU/scheduler name: the full machine configuration
// (fig16's queue-lock comparator differs only in Mem.QueueLocks), the
// BOWS and DDOS parameter sets (table1 and the delay sweep vary these),
// the detector selection with its TAGE parameters and the WASP knobs
// (the scheduler-zoo sweeps vary these), and the launch geometry and
// parameters (fig16 reuses kernel names across bucket counts).
// Manifest.Add cross-checks records that still collide, so a dimension
// missed here surfaces as an error, not a silent overwrite.
//
// The zoo dimensions are omitted from the JSON when they are inactive
// (empty detector kind, nil pointers), so every pre-existing variant
// hash — including the committed golden and report manifests — is
// byte-identical to what it was before the zoo existed.
func variantHash(sp *runSpec) string {
	var tage *config.TAGE
	var det config.DetectorKind
	if sp.det == config.DetectTAGE {
		det, tage = sp.det, &sp.tage
	}
	var wasp *config.WaSP
	if sp.sched == config.WASP {
		wasp = &sp.wasp
	}
	return metrics.HashJSON(struct {
		GPU      config.GPU
		Sched    config.SchedulerKind
		BOWS     config.BOWS
		DDOS     config.DDOS
		Detector config.DetectorKind `json:",omitempty"`
		TAGE     *config.TAGE        `json:",omitempty"`
		WaSP     *config.WaSP        `json:",omitempty"`
		Kernel   string
		Grid     int
		Threads  int
		MemWords int
		Params   []uint32
	}{sp.gpu, sp.sched, sp.bows, sp.ddos, det, tage, wasp, sp.k.Name,
		sp.k.Launch.GridCTAs, sp.k.Launch.CTAThreads, sp.k.Launch.MemWords,
		sp.k.Launch.Params})
}

// aggregateCounters folds a per-SM snapshot into machine totals: names
// under an "sm<i>." prefix are summed across SMs under the remainder of
// the name; engine-scoped names pass through. engine.cycles is dropped —
// RunRecord.Cycles carries it.
func aggregateCounters(s *metrics.Snapshot) map[string]int64 {
	if s == nil {
		return nil
	}
	out := make(map[string]int64, len(s.Counters))
	for name, v := range s.Counters {
		if name == "engine.cycles" {
			continue
		}
		out[stats.FoldCounterName(name)] += v
	}
	return out
}
