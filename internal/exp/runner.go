package exp

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"warpsched/internal/config"
	"warpsched/internal/kernels"
	"warpsched/internal/sim"
)

// runSpec is one fully-specified simulation: machine, scheduler, BOWS,
// detector and kernel. Every experiment's sweep is a slice of these.
// maxCycles and progress only carry values for specs submitted through
// the exported Execute path (see service.go); experiment sweeps leave
// them zero. det selects the spin detector (empty means DDOS, matching
// sim.Options); tage and wasp only carry values for TAGE-detector and
// WASP-scheduler specs respectively, so the variant hashes of every
// pre-existing spec are unchanged.
type runSpec struct {
	gpu       config.GPU
	sched     config.SchedulerKind
	bows      config.BOWS
	ddos      config.DDOS
	det       config.DetectorKind
	tage      config.TAGE
	wasp      config.WaSP
	k         *kernels.Kernel
	maxCycles int64
	progress  *atomic.Int64
}

// runOut pairs a spec's result with its error. On a watchdog abort res
// holds the partial state (see run), mirroring the serial path.
type runOut struct {
	res *sim.Result
	err error
}

// firstErr returns the first error in submission order, or nil. Using
// submission order keeps the reported error independent of worker timing.
func firstErr(outs []runOut) error {
	for _, o := range outs {
		if o.err != nil {
			return o.err
		}
	}
	return nil
}

// runAll executes the specs on a bounded worker pool and returns results
// in submission order. Each sim.Engine is self-contained (own memory
// system, own SM state) and every kernel's Setup/Verify closures only
// read their captured inputs, so runs are independent: parallelism is
// across engines, never within one, and each run's cycle-level
// determinism is untouched. Results — and therefore every table rendered
// from them — are byte-identical for any worker count.
//
// Progress lines are funneled through a single channel drained by one
// goroutine, so Cfg.Progress is never called concurrently. Completion
// lines arrive in completion order (that much is timing-dependent);
// per-run detail lines that experiments emit while collecting results
// stay in submission order.
func (c Cfg) runAll(specs []runSpec) []runOut {
	out := make([]runOut, len(specs))
	jobs := c.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}
	if jobs <= 1 {
		for i := range specs {
			out[i] = c.runOne(&specs[i], i, len(specs), nil)
		}
		return out
	}

	var progress chan string
	drained := make(chan struct{})
	if c.Progress != nil {
		progress = make(chan string, jobs)
		go func() {
			for line := range progress {
				c.Progress(line)
			}
			close(drained)
		}()
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = c.runOne(&specs[i], i, len(specs), progress)
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	if progress != nil {
		close(progress)
		<-drained
	}
	return out
}

// PanicError records a simulation that panicked: the spec it was running,
// the panic value, and the goroutine stack at recovery time. The runner
// converts panics into failed-run records (bounded retries first, see
// Cfg.Retries) so one crashing configuration cannot take down a sweep.
type PanicError struct {
	Kernel string
	Sched  config.SchedulerKind
	Value  string
	Stack  string
}

// Error includes the stack so manifests and journals carry the full
// diagnosis; progress lines use Brief.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic during %s/%s: %s\n%s", e.Kernel, e.Sched, e.Value, e.Stack)
}

// Brief is the one-line form (panic value without the stack).
func (e *PanicError) Brief() string {
	return fmt.Sprintf("panic: %s", e.Value)
}

// guardedRun executes one simulation with a panic barrier: a panic that
// escapes the engine (its own recovery handles known fault types) becomes
// a *PanicError instead of crashing the sweep.
func (c Cfg) guardedRun(sp *runSpec, tr sim.Tracer) (o runOut) {
	defer func() {
		if r := recover(); r != nil {
			o = runOut{err: &PanicError{Kernel: sp.k.Name, Sched: sp.sched,
				Value: fmt.Sprint(r), Stack: string(debug.Stack())}}
		}
	}()
	res, err := c.run(sp, tr)
	return runOut{res: res, err: err}
}

// runOne executes a single spec and reports its completion. With a nil
// progress channel the line goes directly to c.note (serial path). With a
// journal attached, finished specs replay instead of re-simulating, and
// fresh outcomes are journaled for the next invocation.
func (c Cfg) runOne(sp *runSpec, i, n int, progress chan<- string) runOut {
	var key, suffix string
	if c.Journal != nil {
		key = variantHash(sp)
		if o, ok := c.Journal.lookup(key); ok {
			c.collect(sp, &o, 0)
			c.report(sp, o, i, n, " (from journal)", progress)
			return o
		}
	}
	start := time.Now()
	// Remote offload: a daemon serves the run when the spec maps onto the
	// wire format (see server.SpecRequest); anything else — and any
	// daemon failure — falls through to the local engine below. Tracer
	// and fault-injection runs always stay local: both reach inside the
	// engine. So do specs with a non-default detector or WASP knobs —
	// the wire format does not carry those dimensions, and a daemon
	// would silently simulate the default machine instead. Remote
	// outcomes are never journaled (see Cfg.Remote).
	if c.Remote != nil && c.Tracer == nil && c.Faults == nil &&
		sp.det == "" && sp.wasp == (config.WaSP{}) {
		spec := Spec{GPU: sp.gpu, Sched: sp.sched, BOWS: sp.bows, DDOS: sp.ddos,
			Kernel: sp.k, MaxCycles: sp.maxCycles, Progress: sp.progress}
		if ro, ok := c.Remote(spec); ok {
			o := runOut{res: ro.Res, err: ro.Err}
			c.collect(sp, &o, float64(time.Since(start).Microseconds())/1e3)
			c.report(sp, o, i, n, " (remote)", progress)
			return o
		}
	}
	var tr sim.Tracer
	if c.Tracer != nil {
		tr = c.Tracer(i)
	}
	o := c.guardedRun(sp, tr)
	for attempt := 0; attempt < c.Retries; attempt++ {
		var pe *PanicError
		if !errors.As(o.err, &pe) {
			break // deterministic outcome: retrying would repeat it
		}
		suffix = fmt.Sprintf(" (retry %d)", attempt+1)
		o = c.guardedRun(sp, tr)
	}
	if c.Journal != nil {
		if jerr := c.Journal.record(key, o); jerr != nil && o.err == nil {
			// A run whose result cannot be journaled must not be reported
			// as resumable work; surface the write failure.
			o.err = jerr
		}
	}
	c.collect(sp, &o, float64(time.Since(start).Microseconds())/1e3)
	c.report(sp, o, i, n, suffix, progress)
	return o
}

// collect adds the run to the manifest collector, if any.
func (c Cfg) collect(sp *runSpec, o *runOut, wallMS float64) {
	if c.Collect == nil {
		return
	}
	rec := buildRecord(c.Exp, sp, *o, wallMS)
	// A collection failure means two specs hashed to one manifest key
	// with different counters — a determinism violation worth failing
	// the sweep over, but never one that masks a simulation error.
	if cerr := c.Collect.add(rec); cerr != nil && o.err == nil {
		o.err = cerr
	}
}

// report emits the run's one-line completion to Cfg.Progress.
func (c Cfg) report(sp *runSpec, o runOut, i, n int, suffix string, progress chan<- string) {
	if c.Progress == nil {
		return
	}
	line := fmt.Sprintf("[%d/%d] %s %s%s on %s: %s%s", i+1, n,
		sp.k.Name, sp.sched, bowsTag(sp.bows), sp.gpu.Name, outcome(o), suffix)
	if progress != nil {
		progress <- line
	} else {
		c.Progress(line)
	}
}

func bowsTag(b config.BOWS) string {
	if b.Mode == config.BOWSOff {
		return ""
	}
	return "+BOWS"
}

func outcome(o runOut) string {
	var he *sim.HangError
	var pe *PanicError
	switch {
	case errors.As(o.err, &he):
		// Hang diagnosis: classification plus the top stuck warps.
		return he.Summary()
	case errors.As(o.err, &pe):
		return pe.Brief()
	case o.err != nil && o.res != nil:
		return fmt.Sprintf("watchdog at %d cycles", o.res.Stats.Cycles)
	case o.err != nil:
		// First line only: journal-replayed panic records carry stacks.
		return strings.SplitN(o.err.Error(), "\n", 2)[0]
	default:
		return fmt.Sprintf("%d cycles", o.res.Stats.Cycles)
	}
}
