package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"warpsched/internal/config"
	"warpsched/internal/kernels"
	"warpsched/internal/sim"
)

// runSpec is one fully-specified simulation: machine, scheduler, BOWS,
// DDOS and kernel. Every experiment's sweep is a slice of these.
type runSpec struct {
	gpu   config.GPU
	sched config.SchedulerKind
	bows  config.BOWS
	ddos  config.DDOS
	k     *kernels.Kernel
}

// runOut pairs a spec's result with its error. On a watchdog abort res
// holds the partial state (see run), mirroring the serial path.
type runOut struct {
	res *sim.Result
	err error
}

// firstErr returns the first error in submission order, or nil. Using
// submission order keeps the reported error independent of worker timing.
func firstErr(outs []runOut) error {
	for _, o := range outs {
		if o.err != nil {
			return o.err
		}
	}
	return nil
}

// runAll executes the specs on a bounded worker pool and returns results
// in submission order. Each sim.Engine is self-contained (own memory
// system, own SM state) and every kernel's Setup/Verify closures only
// read their captured inputs, so runs are independent: parallelism is
// across engines, never within one, and each run's cycle-level
// determinism is untouched. Results — and therefore every table rendered
// from them — are byte-identical for any worker count.
//
// Progress lines are funneled through a single channel drained by one
// goroutine, so Cfg.Progress is never called concurrently. Completion
// lines arrive in completion order (that much is timing-dependent);
// per-run detail lines that experiments emit while collecting results
// stay in submission order.
func (c Cfg) runAll(specs []runSpec) []runOut {
	out := make([]runOut, len(specs))
	jobs := c.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}
	if jobs <= 1 {
		for i := range specs {
			out[i] = c.runOne(&specs[i], i, len(specs), nil)
		}
		return out
	}

	var progress chan string
	drained := make(chan struct{})
	if c.Progress != nil {
		progress = make(chan string, jobs)
		go func() {
			for line := range progress {
				c.Progress(line)
			}
			close(drained)
		}()
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = c.runOne(&specs[i], i, len(specs), progress)
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	if progress != nil {
		close(progress)
		<-drained
	}
	return out
}

// runOne executes a single spec and reports its completion. With a nil
// progress channel the line goes directly to c.note (serial path).
func (c Cfg) runOne(sp *runSpec, i, n int, progress chan<- string) runOut {
	var tr sim.Tracer
	if c.Tracer != nil {
		tr = c.Tracer(i)
	}
	start := time.Now()
	res, err := run(sp.gpu, sp.sched, sp.bows, sp.ddos, sp.k, tr)
	o := runOut{res: res, err: err}
	if c.Collect != nil {
		rec := buildRecord(sp, o, float64(time.Since(start).Microseconds())/1e3)
		// A collection failure means two specs hashed to one manifest key
		// with different counters — a determinism violation worth failing
		// the sweep over, but never one that masks a simulation error.
		if cerr := c.Collect.add(rec); cerr != nil && o.err == nil {
			o.err = cerr
		}
	}
	if c.Progress != nil {
		line := fmt.Sprintf("[%d/%d] %s %s%s on %s: %s", i+1, n,
			sp.k.Name, sp.sched, bowsTag(sp.bows), sp.gpu.Name, outcome(o))
		if progress != nil {
			progress <- line
		} else {
			c.Progress(line)
		}
	}
	return o
}

func bowsTag(b config.BOWS) string {
	if b.Mode == config.BOWSOff {
		return ""
	}
	return "+BOWS"
}

func outcome(o runOut) string {
	switch {
	case o.err != nil && o.res != nil:
		return fmt.Sprintf("watchdog at %d cycles", o.res.Stats.Cycles)
	case o.err != nil:
		return o.err.Error()
	default:
		return fmt.Sprintf("%d cycles", o.res.Stats.Cycles)
	}
}
