package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
	"warpsched/internal/kernels"
)

// Fig3Result reproduces Figure 3: the hashtable kernel augmented with the
// software back-off delay loop of Figure 3a, swept over DELAY_FACTOR.
// The delay loop burns issue slots, so on most contention levels software
// back-off *hurts* — the observation motivating a hardware mechanism.
type Fig3Result struct {
	Buckets []int
	Factors []int
	// Cycles[bucketIdx][factorIdx].
	Cycles [][]int64
}

// Fig3Factors is the paper's sweep (0 = no delay code).
var Fig3Factors = []int{0, 50, 100, 500, 1000}

// Fig3 runs the software back-off study.
func Fig3(c Cfg) (*Fig3Result, error) {
	gpu := c.fermi()
	items, ctas, ctaThreads := 8192, 16, 128
	buckets := []int{128, 512, 2048}
	if c.Quick {
		items, ctas, ctaThreads = 2048, 4, 64
		buckets = []int{128, 512}
	}
	r := &Fig3Result{Factors: Fig3Factors}
	var specs []runSpec
	for _, bk := range buckets {
		for _, df := range Fig3Factors {
			k := kernels.NewHashTable(kernels.HashTableConfig{
				Items: items, Buckets: bk, CTAs: ctas, CTAThreads: ctaThreads,
				DelayFactor: df,
			})
			specs = append(specs, runSpec{gpu: gpu, sched: config.GTO, bows: bowsOff(), ddos: config.DefaultDDOS(), k: k})
		}
	}
	outs := c.runAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	i := 0
	for _, bk := range buckets {
		var row []int64
		for _, df := range Fig3Factors {
			res := outs[i].res
			i++
			row = append(row, res.Stats.Cycles)
			c.note("fig3 buckets=%d delay=%d: %d cycles", bk, df, res.Stats.Cycles)
		}
		r.Buckets = append(r.Buckets, bk)
		r.Cycles = append(r.Cycles, row)
	}
	return r, nil
}

// String renders the Figure 3 table in the harness's text format.
func (r *Fig3Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 3 — software back-off delay on the hashtable (execution cycles; normalized to no-delay)\n\n")
	header := []string{"buckets"}
	for _, f := range r.Factors {
		header = append(header, fmt.Sprintf("factor=%d", f))
	}
	t := &table{header: header}
	for i, bk := range r.Buckets {
		row := []string{fmt.Sprintf("%d", bk)}
		base := float64(r.Cycles[i][0])
		for _, cyc := range r.Cycles[i] {
			row = append(row, fmt.Sprintf("%d (%.2fx)", cyc, float64(cyc)/base))
		}
		t.add(row...)
	}
	sb.WriteString(t.String())
	sb.WriteString("paper: adding a software back-off delay degrades performance on recent GPUs except at\n")
	sb.WriteString("       very high contention — wasted issue slots outweigh the memory-traffic savings\n")
	return sb.String()
}
