package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
	"warpsched/internal/energy"
)

// ExecEnergyResult reproduces Figure 9 (Fermi) / Figure 15 (Pascal):
// execution time and dynamic energy for every synchronization kernel
// under LRR, GTO and CAWA with and without BOWS, normalized to LRR.
type ExecEnergyResult struct {
	Label   string
	GPUName string
	Kernels []string
	// Time[kernel][column] and Energy[kernel][column] follow Columns.
	Columns []string
	Time    map[string][]float64
	Energy  map[string][]float64
	// GmeanTime/GmeanEnergy are geometric means per column.
	GmeanTime   []float64
	GmeanEnergy []float64
}

// ExecEnergyColumns is the paper's bar order.
var ExecEnergyColumns = []string{"LRR", "LRR+BOWS", "GTO", "GTO+BOWS", "CAWA", "CAWA+BOWS"}

// ExecEnergy runs the Figure 9/15 sweep on the given GPU configuration.
func ExecEnergy(c Cfg, gpu config.GPU, label string) (*ExecEnergyResult, error) {
	r := &ExecEnergyResult{
		Label:   label,
		GPUName: gpu.Name,
		Columns: ExecEnergyColumns,
		Time:    map[string][]float64{},
		Energy:  map[string][]float64{},
	}
	coeff := energy.ByConfigName(gpu.Name)
	suite := c.syncSuite()
	var specs []runSpec
	for _, k := range suite {
		for _, kind := range config.Schedulers {
			for _, withBOWS := range []bool{false, true} {
				bows := bowsOff()
				if withBOWS {
					bows = config.DefaultBOWS()
				}
				specs = append(specs, runSpec{gpu: gpu, sched: kind, bows: bows, ddos: config.DefaultDDOS(), k: k})
			}
		}
	}
	outs := c.runAll(specs)
	idx := 0
	for _, k := range suite {
		r.Kernels = append(r.Kernels, k.Name)
		times := make([]float64, len(r.Columns))
		energies := make([]float64, len(r.Columns))
		col := 0
		for _, kind := range config.Schedulers {
			for _, withBOWS := range []bool{false, true} {
				o := outs[idx]
				idx++
				res := o.res
				if o.err != nil {
					if res == nil {
						return nil, fmt.Errorf("%s %s/%v: %w", label, k.Name, kind, o.err)
					}
					// Watchdog abort: treat as "at least this many cycles".
					c.note("%s %s %s: watchdog at %d cycles (lower bound)", label, k.Name, kind, res.Stats.Cycles)
				}
				times[col] = float64(res.Stats.Cycles)
				energies[col] = energy.Compute(coeff, &res.Stats).Total()
				c.note("%s %s %s bows=%v: %d cycles", label, k.Name, kind, withBOWS, res.Stats.Cycles)
				col++
			}
		}
		// Normalize to LRR (column 0), as in the paper.
		base, baseE := times[0], energies[0]
		for i := range times {
			times[i] /= base
			energies[i] /= baseE
		}
		r.Time[k.Name] = times
		r.Energy[k.Name] = energies
	}
	r.GmeanTime = make([]float64, len(r.Columns))
	r.GmeanEnergy = make([]float64, len(r.Columns))
	for i := range r.Columns {
		var ts, es []float64
		for _, k := range r.Kernels {
			ts = append(ts, r.Time[k][i])
			es = append(es, r.Energy[k][i])
		}
		r.GmeanTime[i] = gmean(ts)
		r.GmeanEnergy[i] = gmean(es)
	}
	return r, nil
}

// Speedup returns the geometric-mean speedup of base+BOWS over base.
func (r *ExecEnergyResult) Speedup(base config.SchedulerKind) float64 {
	bi, wi := -1, -1
	for i, c := range r.Columns {
		if c == string(base) {
			bi = i
		}
		if c == string(base)+"+BOWS" {
			wi = i
		}
	}
	if bi < 0 || wi < 0 || r.GmeanTime[wi] == 0 {
		return 0
	}
	return r.GmeanTime[bi] / r.GmeanTime[wi]
}

// EnergySaving returns the geometric-mean energy reduction factor of
// base+BOWS versus base.
func (r *ExecEnergyResult) EnergySaving(base config.SchedulerKind) float64 {
	bi, wi := -1, -1
	for i, c := range r.Columns {
		if c == string(base) {
			bi = i
		}
		if c == string(base)+"+BOWS" {
			wi = i
		}
	}
	if bi < 0 || wi < 0 || r.GmeanEnergy[wi] == 0 {
		return 0
	}
	return r.GmeanEnergy[bi] / r.GmeanEnergy[wi]
}

// String renders the Figure 9/15 tables in the harness's text format.
func (r *ExecEnergyResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — normalized execution time on %s (lower is better, LRR = 1.00)\n\n", r.Label, r.GPUName)
	t := &table{header: append([]string{"kernel"}, r.Columns...)}
	for _, k := range r.Kernels {
		row := []string{k}
		for _, v := range r.Time[k] {
			row = append(row, f2(v))
		}
		t.add(row...)
	}
	gm := []string{"gmean"}
	for _, v := range r.GmeanTime {
		gm = append(gm, f2(v))
	}
	t.add(gm...)
	sb.WriteString(t.String())

	fmt.Fprintf(&sb, "\n%s — normalized dynamic energy on %s\n\n", r.Label, r.GPUName)
	t2 := &table{header: append([]string{"kernel"}, r.Columns...)}
	for _, k := range r.Kernels {
		row := []string{k}
		for _, v := range r.Energy[k] {
			row = append(row, f2(v))
		}
		t2.add(row...)
	}
	gm = []string{"gmean"}
	for _, v := range r.GmeanEnergy {
		gm = append(gm, f2(v))
	}
	t2.add(gm...)
	sb.WriteString(t2.String())

	fmt.Fprintf(&sb, "\nBOWS speedup: %.2fx vs LRR, %.2fx vs GTO, %.2fx vs CAWA\n",
		r.Speedup(config.LRR), r.Speedup(config.GTO), r.Speedup(config.CAWA))
	fmt.Fprintf(&sb, "BOWS energy saving: %.2fx vs LRR, %.2fx vs GTO, %.2fx vs CAWA\n",
		r.EnergySaving(config.LRR), r.EnergySaving(config.GTO), r.EnergySaving(config.CAWA))
	if r.Label == "Fig. 9" {
		sb.WriteString("paper (GTX480): speedup 2.2x/1.4x/1.5x and energy 2.3x/1.7x/1.6x vs LRR/GTO/CAWA\n")
	} else {
		sb.WriteString("paper (Pascal): speedup 1.9x/1.7x/1.5x vs LRR/GTO/CAWA\n")
	}
	return sb.String()
}
