package exp

import (
	"fmt"
	"strings"

	"warpsched/internal/config"
)

// TageSIBSpec is one point of the detector head-to-head grid: a row
// label plus the full detector selection it evaluates.
type TageSIBSpec struct {
	// Label is the row label, e.g. "TAGE n=4, h=4..32".
	Label string
	// Det selects the detector; DDOS or TAGE carries its parameters.
	Det  config.DetectorKind
	DDOS config.DDOS
	TAGE config.TAGE
}

// Desc returns the spec's detector descriptor — the same string the
// run's manifest records carry in their DDOS column, so the report
// pipeline rebuilds the table by joining on it.
func (s TageSIBSpec) Desc() string {
	if s.Det == config.DetectTAGE {
		return s.TAGE.Desc()
	}
	return s.DDOS.Desc()
}

// TageSIBLayout returns the detector head-to-head grid: the two Table I
// anchor points for DDOS (the paper's best and its MODULO false-
// detection case) followed by a TAGE-SIB sensitivity sweep over table
// count, history geometry, tag width and confirmation threshold around
// the default 4-table 4..32-history configuration.
func TageSIBLayout() []TageSIBSpec {
	mkTage := func(f func(*config.TAGE)) config.TAGE {
		t := config.DefaultTAGE()
		f(&t)
		return t
	}
	modulo := config.DefaultDDOS()
	modulo.Hash = config.HashModulo
	return []TageSIBSpec{
		{Label: "DDOS XOR, m=k=8", Det: config.DetectDDOS, DDOS: config.DefaultDDOS()},
		{Label: "DDOS MODULO, m=k=8", Det: config.DetectDDOS, DDOS: modulo},
		{Label: "TAGE n=4, h=4..32", Det: config.DetectTAGE, DDOS: config.DefaultDDOS(), TAGE: config.DefaultTAGE()},
		{Label: "TAGE n=3, h=4..16", Det: config.DetectTAGE, DDOS: config.DefaultDDOS(),
			TAGE: mkTage(func(t *config.TAGE) { t.Tables = 3 })},
		{Label: "TAGE n=2, h=4..8", Det: config.DetectTAGE, DDOS: config.DefaultDDOS(),
			TAGE: mkTage(func(t *config.TAGE) { t.Tables = 2 })},
		{Label: "TAGE h=2..16", Det: config.DetectTAGE, DDOS: config.DefaultDDOS(),
			TAGE: mkTage(func(t *config.TAGE) { t.BaseHist = 2 })},
		{Label: "TAGE tag=4", Det: config.DetectTAGE, DDOS: config.DefaultDDOS(),
			TAGE: mkTage(func(t *config.TAGE) { t.TagBits = 4 })},
		{Label: "TAGE t=2", Det: config.DetectTAGE, DDOS: config.DefaultDDOS(),
			TAGE: mkTage(func(t *config.TAGE) { t.ConfidenceThreshold = 2 })},
		{Label: "TAGE t=8", Det: config.DetectTAGE, DDOS: config.DefaultDDOS(),
			TAGE: mkTage(func(t *config.TAGE) { t.ConfidenceThreshold = 8 })},
	}
}

// TageSIBRow is one grid point's detection quality averaged over the
// benchmark suite, plus suite-aggregate precision/recall over confirmed
// SIBs (the head-to-head accuracy columns).
type TageSIBRow struct {
	Label string
	// Desc is the detector descriptor the row's records carry.
	Desc string
	// Suite-mean rates and detection phase ratios, as in Table I.
	TSDR     float64
	TrueDPR  float64
	FSDR     float64
	FalseDPR float64
	// Precision/Recall aggregate confirmations across the whole suite:
	// precision = true detections / all detections, recall = true
	// detections / true SIBs seen.
	Precision float64
	Recall    float64
}

// TageSIBResult is the detector head-to-head: DDOS anchors versus the
// TAGE-SIB sensitivity grid, all other dimensions held at the Table I
// evaluation point (GTO, BOWS off, quick suite sizes).
type TageSIBResult struct {
	Rows []TageSIBRow
}

// TageSIB runs the detector head-to-head over the sync and sync-free
// suites. Like Table1, detection-quality rates are insensitive to input
// scale, so the sweep always uses the quick suite sizes.
func TageSIB(c Cfg) (*TageSIBResult, error) {
	c.Quick = true
	gpu := c.fermi()
	suite := append(c.syncSuite(), c.syncFreeSuite()...)
	layout := TageSIBLayout()

	var specs []runSpec
	for _, gp := range layout {
		for _, k := range suite {
			sp := runSpec{gpu: gpu, sched: config.GTO, bows: bowsOff(), ddos: gp.DDOS, k: k}
			if gp.Det == config.DetectTAGE {
				sp.det, sp.tage = config.DetectTAGE, gp.TAGE
			}
			specs = append(specs, sp)
		}
	}
	outs := c.runAll(specs)

	res := &TageSIBResult{}
	for i, gp := range layout {
		var tsdrs, fsdrs, tdprs, fdprs []float64
		var trueSeen, trueDet, falseDet int
		for j, k := range suite {
			o := outs[i*len(suite)+j]
			if o.err != nil {
				return nil, fmt.Errorf("tagesib %s on %s: %w", gp.Label, k.Name, o.err)
			}
			det := o.res.Detection
			trueSeen += det.TrueSeen
			trueDet += det.TrueDetected
			falseDet += det.FalseDetected
			if det.TrueSeen > 0 {
				tsdrs = append(tsdrs, det.TSDR())
				if det.TrueDetected > 0 {
					tdprs = append(tdprs, det.TrueDPR())
				}
			}
			if det.FalseSeen > 0 {
				fsdrs = append(fsdrs, det.FSDR())
				if det.FalseDetected > 0 {
					fdprs = append(fdprs, det.FalseDPR())
				}
			}
		}
		row := TageSIBRow{
			Label: gp.Label, Desc: gp.Desc(),
			TSDR: mean(tsdrs), TrueDPR: mean(tdprs),
			FSDR: mean(fsdrs), FalseDPR: mean(fdprs),
			Precision: ratio(trueDet, trueDet+falseDet),
			Recall:    ratio(trueDet, trueSeen),
		}
		res.Rows = append(res.Rows, row)
		c.note("tagesib %s: precision=%.3f recall=%.3f FSDR=%.3f", gp.Label, row.Precision, row.Recall, row.FSDR)
	}
	return res, nil
}

// ratio returns num/den, or 0 for an empty denominator.
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// String renders the head-to-head in the harness's text format.
func (r *TageSIBResult) String() string {
	var sb strings.Builder
	sb.WriteString("TAGE-SIB vs DDOS — detection accuracy over the Table I evaluation point (GTO, BOWS off)\n\n")
	t := &table{header: []string{"config", "precision", "recall", "avg TSDR", "avg DPR (true)", "avg FSDR", "avg DPR (false)"}}
	for _, row := range r.Rows {
		t.add(row.Label, f3(row.Precision), f3(row.Recall),
			f3(row.TSDR), f3(row.TrueDPR), f3(row.FSDR), f3(row.FalseDPR))
	}
	sb.WriteString(t.String())
	sb.WriteString("\nreading: DDOS XOR m=k=8 is the paper's anchor (TSDR=1, FSDR=0); MODULO shows its false-detection mode.\n")
	sb.WriteString("TAGE-SIB trades table capacity for path-signature detection; smaller geometries and looser thresholds\n")
	sb.WriteString("show where tagged-table aliasing starts to cost precision\n")
	return sb.String()
}
