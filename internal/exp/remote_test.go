package exp

import (
	"path/filepath"
	"testing"

	"warpsched/internal/sim"
	"warpsched/internal/stats"
)

// TestRunnerRemoteServes: a Remote hook that serves the run replaces the
// engine, and the served outcome is never journaled (a resume journal
// must hold only full-fidelity local records).
func TestRunnerRemoteServes(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	sp := testSpec(64)
	fake := &sim.Result{Stats: stats.Sim{Cycles: 42}}
	var got Spec
	c := Cfg{Journal: j, Remote: func(s Spec) (Outcome, bool) {
		got = s
		return Outcome{Res: fake}, true
	}}
	out := c.runAll([]runSpec{sp})
	if out[0].err != nil || out[0].res != fake {
		t.Fatalf("remote outcome not used: %+v", out[0])
	}
	if got.Kernel != sp.k || got.Sched != sp.sched {
		t.Errorf("remote hook saw wrong spec: %+v", got)
	}
	if j.Len() != 0 {
		t.Errorf("remote outcome was journaled (%d records)", j.Len())
	}
}

// TestRunnerRemoteFallback: a Remote hook declining the run (unmappable
// spec, daemon outage) falls through to the local engine.
func TestRunnerRemoteFallback(t *testing.T) {
	calls := 0
	c := Cfg{Remote: func(Spec) (Outcome, bool) {
		calls++
		return Outcome{}, false
	}}
	out := c.runAll([]runSpec{testSpec(64)})
	if calls != 1 {
		t.Errorf("remote hook consulted %d times, want 1", calls)
	}
	if out[0].err != nil || out[0].res == nil || out[0].res.Stats.Cycles == 0 {
		t.Errorf("local fallback did not run: %+v", out[0])
	}
}

// TestRunnerRemoteSkippedForTracer: tracer runs reach inside the engine
// and must never be offloaded.
func TestRunnerRemoteSkippedForTracer(t *testing.T) {
	c := Cfg{
		Tracer: func(int) sim.Tracer { return nil },
		Remote: func(Spec) (Outcome, bool) {
			t.Error("remote hook consulted for a tracer run")
			return Outcome{}, false
		},
	}
	out := c.runAll([]runSpec{testSpec(64)})
	if out[0].err != nil || out[0].res == nil {
		t.Errorf("tracer run failed: %+v", out[0])
	}
}

// TestRemoteSafeRegistry: the remote-unsafe set names real experiments
// and everything else is offloadable.
func TestRemoteSafeRegistry(t *testing.T) {
	byName := map[string]bool{}
	for _, e := range All() {
		byName[e.Name] = true
	}
	for name := range remoteUnsafe {
		if !byName[name] {
			t.Errorf("remoteUnsafe names unknown experiment %q", name)
		}
	}
	for _, e := range All() {
		want := !remoteUnsafe[e.Name]
		if e.RemoteSafe() != want {
			t.Errorf("%s.RemoteSafe() = %v, want %v", e.Name, e.RemoteSafe(), want)
		}
	}
}
