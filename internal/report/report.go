// Package report turns run manifests (the -stats-json output of
// cmd/experiments) into the paper-facing reproduction document:
// REPRODUCTION.md plus self-contained SVG figures. Everything the
// document states — per-benchmark and mean speedups normalized to the
// paper's baselines, normalized dynamic energy, issue-slot and
// spin-overhead breakdowns, and the Table I detection-quality rates — is
// *derived here* from manifest counters, never hand-entered, so the
// published numbers cannot drift from the code that produced them (a CI
// job regenerates the document from the checked-in manifest and fails on
// any diff).
//
// The pipeline is strictly offline: it consumes manifests, it never
// simulates. Rendering is deterministic — byte-identical output for the
// same manifests on every run, any -j, and every platform — which is
// what makes the drift gate a plain file diff.
package report

import (
	"errors"
	"fmt"
	"sort"

	"warpsched/internal/metrics"
)

// Load reads and joins one or more manifest files into a single Set.
// Manifests must agree on schema (enforced by metrics.ReadFile) and on
// their scale configuration hash: joining a -quick manifest with a
// full-scale one would silently mix incomparable runs, so it is a
// *JoinError instead.
func Load(paths ...string) (*Set, error) {
	if len(paths) == 0 {
		return nil, errors.New("report: no manifest paths given")
	}
	var ms []*metrics.Manifest
	for _, p := range paths {
		m, err := metrics.ReadFile(p)
		if err != nil {
			if errors.Is(err, metrics.ErrSchemaMismatch) {
				return nil, &JoinError{Path: p, Reason: ReasonSchema, Err: err}
			}
			return nil, err
		}
		ms = append(ms, m)
	}
	return Join(ms...)
}

// Join merges already-parsed manifests into a Set, verifying that they
// describe the same experiment scale (equal config hashes) and that
// records appearing in several manifests agree counter for counter.
func Join(ms ...*metrics.Manifest) (*Set, error) {
	if len(ms) == 0 {
		return nil, errors.New("report: no manifests given")
	}
	joined := &metrics.Manifest{
		Schema:     ms[0].Schema,
		Tool:       ms[0].Tool,
		ConfigHash: ms[0].ConfigHash,
		Config:     ms[0].Config,
	}
	for _, m := range ms {
		if m.ConfigHash != joined.ConfigHash {
			return nil, &JoinError{
				Reason: ReasonConfig,
				Err: fmt.Errorf("config hash %s (config %v) does not match %s (config %v) — manifests from different scales cannot be joined",
					m.ConfigHash, m.Config, joined.ConfigHash, joined.Config),
			}
		}
		for _, r := range m.Runs {
			if err := joined.Add(r); err != nil {
				return nil, &JoinError{Reason: ReasonConflict, Err: err}
			}
		}
	}
	joined.Sort()
	return &Set{m: joined, byExp: groupByExp(joined)}, nil
}

// JoinReason classifies why manifests could not be joined.
type JoinReason string

const (
	// ReasonSchema: a manifest was written under a different schema
	// version (regenerate it with the current tools).
	ReasonSchema JoinReason = "schema"
	// ReasonConfig: manifests come from different scale configurations
	// (e.g. -quick vs full) and their runs are not comparable.
	ReasonConfig JoinReason = "config"
	// ReasonConflict: two manifests contain the same fully-hashed run
	// with different counters — a determinism violation.
	ReasonConflict JoinReason = "conflict"
)

// JoinError is the structured failure of Load/Join.
type JoinError struct {
	// Path is the offending manifest file, when known.
	Path string
	// Reason classifies the failure.
	Reason JoinReason
	// Err carries the detail.
	Err error
}

// Error implements error.
func (e *JoinError) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("report: join %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("report: join: %s: %v", e.Reason, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JoinError) Unwrap() error { return e.Err }

// Set is a joined, grouped collection of run records ready for
// derivation: records are grouped by the experiment that produced them
// and looked up by their human-readable coordinates.
type Set struct {
	m     *metrics.Manifest
	byExp map[string][]*metrics.RunRecord
}

// Manifest returns the joined manifest backing the set (e.g. to rebuild
// a Report from an already-loaded Set, or to write the join back out).
func (s *Set) Manifest() *metrics.Manifest { return s.m }

// ConfigHash returns the joined manifests' shared scale-configuration
// hash (stamped into the generated document header).
func (s *Set) ConfigHash() string { return s.m.ConfigHash }

// Config returns the shared invocation configuration (e.g. quick, sms).
func (s *Set) Config() map[string]any { return s.m.Config }

// Runs returns the records of one experiment, in manifest (key) order.
func (s *Set) Runs(exp string) []*metrics.RunRecord { return s.byExp[exp] }

// Experiments lists the experiment tags present, sorted.
func (s *Set) Experiments() []string {
	var out []string
	for e := range s.byExp {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Find returns the unique record with the given coordinates, or a
// *MissingRunError if absent, or an error if several variants match
// (meaning the coordinates under-specify the run — e.g. the fig16 bucket
// sweep, whose points differ only in launch parameters).
func (s *Set) Find(exp, kernel, sched, bows string) (*metrics.RunRecord, error) {
	var found *metrics.RunRecord
	for _, r := range s.byExp[exp] {
		if r.Kernel != kernel || r.Sched != sched || r.BOWS != bows {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("report: %s/%s/%s/%s is ambiguous (variants %s and %s)",
				exp, kernel, sched, bows, found.Variant, r.Variant)
		}
		found = r
	}
	if found == nil {
		return nil, &MissingRunError{Exp: exp, Kernel: kernel, Sched: sched, BOWS: bows}
	}
	return found, nil
}

// FindDDOS is Find with the detector descriptor as a fifth coordinate,
// needed where runs differ only in DDOS parameters (the fig14 hashing
// comparison, the Table I sweep).
func (s *Set) FindDDOS(exp, kernel, sched, bows, ddos string) (*metrics.RunRecord, error) {
	var found *metrics.RunRecord
	for _, r := range s.byExp[exp] {
		if r.Kernel != kernel || r.Sched != sched || r.BOWS != bows || r.DDOS != ddos {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("report: %s/%s/%s/%s/%s is ambiguous (variants %s and %s)",
				exp, kernel, sched, bows, ddos, found.Variant, r.Variant)
		}
		found = r
	}
	if found == nil {
		return nil, &MissingRunError{Exp: exp, Kernel: kernel, Sched: sched, BOWS: bows, DDOS: ddos}
	}
	return found, nil
}

// MissingRunError reports a run the report needed but the manifests do
// not contain (e.g. a sweep that was interrupted before the BOWS variant
// of a kernel ran).
type MissingRunError struct {
	// Exp, Kernel, Sched and BOWS are the missing run's coordinates.
	Exp, Kernel, Sched, BOWS string
	// DDOS is the detector descriptor, when the lookup needed one.
	DDOS string
}

// Error implements error.
func (e *MissingRunError) Error() string {
	coord := fmt.Sprintf("%s/%s/%s/%s", e.Exp, e.Kernel, e.Sched, e.BOWS)
	if e.DDOS != "" {
		coord += "/" + e.DDOS
	}
	return fmt.Sprintf("report: manifest has no run %s (sweep incomplete or wrong -exp selection?)", coord)
}

func groupByExp(m *metrics.Manifest) map[string][]*metrics.RunRecord {
	out := map[string][]*metrics.RunRecord{}
	for i := range m.Runs {
		r := &m.Runs[i]
		out[r.Exp] = append(out[r.Exp], r)
	}
	return out
}
