package report

import (
	"fmt"
	"math"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/energy"
	"warpsched/internal/exp"
	"warpsched/internal/metrics"
	"warpsched/internal/stats"
)

// table1Fixture builds a two-kernel table1 manifest with hand-picked
// detection counts for the base configuration and zeroed counts for
// every other sweep point, so the derived precision/recall can be
// checked against arithmetic done by hand.
func table1Fixture(t *testing.T) *metrics.Manifest {
	t.Helper()
	m := metrics.NewManifest("test", nil)
	seen := map[string]bool{}
	base := config.DefaultDDOS().Desc()
	for _, sec := range exp.Table1Layout() {
		for _, sp := range sec.Specs {
			desc := sp.DDOS.Desc()
			if seen[desc] {
				continue
			}
			seen[desc] = true
			for i, kernel := range []string{"HT", "MS"} {
				r := metrics.RunRecord{
					Exp: "table1", Kernel: kernel, GPU: "GTX480/4SM",
					Sched: "GTO", BOWS: "off", DDOS: desc,
					Variant: fmt.Sprintf("v-%s-%d", desc, i),
					Cycles:  1000,
					Counters: map[string]int64{
						"ddos.true_sibs_seen": 0, "ddos.true_sibs_detected": 0,
						"ddos.false_sibs_seen": 0, "ddos.false_sibs_detected": 0,
					},
					Derived: map[string]float64{},
				}
				if desc == base {
					if kernel == "HT" {
						// TSDR 3/4, precision contribution 3 true + 1 false.
						r.Counters["ddos.true_sibs_seen"] = 4
						r.Counters["ddos.true_sibs_detected"] = 3
						r.Counters["ddos.false_sibs_seen"] = 2
						r.Counters["ddos.false_sibs_detected"] = 1
						r.Derived["ddos_true_dpr"] = 0.5
						r.Derived["ddos_false_dpr"] = 0.25
					} else {
						// TSDR 1/2.
						r.Counters["ddos.true_sibs_seen"] = 2
						r.Counters["ddos.true_sibs_detected"] = 1
						r.Derived["ddos_true_dpr"] = 0.3
					}
				}
				if err := m.Add(r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	m.Sort()
	return m
}

func TestTable1PrecisionRecall(t *testing.T) {
	rep, err := Build(table1Fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Table1 == nil {
		t.Fatal("no Table1 section derived")
	}
	var baseRow *Table1Row
	for bi := range rep.Table1.Blocks {
		b := &rep.Table1.Blocks[bi]
		if b.Name != "hashing function (t=4, l=8)" {
			continue
		}
		for ri := range b.Rows {
			if b.Rows[ri].Label == "XOR, m=k=8" {
				baseRow = &b.Rows[ri]
			}
		}
	}
	if baseRow == nil {
		t.Fatal("base configuration row not found")
	}
	// Hand-computed from the fixture counts:
	//   TSDR  = mean(3/4, 1/2)           = 0.625
	//   FSDR  = mean(1/2)                = 0.5   (only HT saw false SIBs)
	//   DPRs  = mean(0.5, 0.3) and mean(0.25)
	//   precision = (3+1 true)/(4+1... ) = 4/5 = 0.8
	//   recall    = 4 detected / 6 seen  = 0.6667
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"TSDR", baseRow.TSDR, 0.625},
		{"FSDR", baseRow.FSDR, 0.5},
		{"TrueDPR", baseRow.TrueDPR, 0.4},
		{"FalseDPR", baseRow.FalseDPR, 0.25},
		{"Precision", baseRow.Precision, 0.8},
		{"Recall", baseRow.Recall, 4.0 / 6.0},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// TestEnergyMatchesOnlineDerived locks the offline energy path
// (stats.FromCounters + energy.Compute over manifest counters) to the
// value the simulator derived online at collection time: if the counter
// name mapping or the energy model drifts, the full manifest exposes it.
func TestEnergyMatchesOnlineDerived(t *testing.T) {
	s, err := Load("testdata/full.json")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range s.Experiments() {
		for _, r := range s.Runs(e) {
			want, ok := r.Derived["energy_total_pj"]
			if !ok || r.Counters == nil {
				continue
			}
			sim := stats.FromCounters(r.Cycles, r.Counters)
			got := energy.Compute(energy.ByConfigName(r.GPU), sim).Total()
			if math.Abs(got-want) > math.Max(1e-6, want*1e-9) {
				t.Fatalf("run %s: offline energy %v != online derived %v", r.Key(), got, want)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d runs carried energy_total_pj; manifest suspiciously sparse", checked)
	}
}

// TestDerivedMatchesOnline does the same for the other derived ratios.
func TestDerivedMatchesOnline(t *testing.T) {
	s, err := Load("testdata/full.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Experiments() {
		for _, r := range s.Runs(e) {
			if r.Counters == nil {
				continue
			}
			sim := stats.FromCounters(r.Cycles, r.Counters)
			for name, got := range map[string]float64{
				"simd_efficiency":     sim.SIMDEfficiency(),
				"sync_instr_fraction": sim.SyncInstrFraction(),
				"backed_off_fraction": sim.BackedOffFraction(),
			} {
				want, ok := r.Derived[name]
				if !ok {
					continue
				}
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("run %s: offline %s %v != online %v", r.Key(), name, got, want)
				}
			}
		}
	}
}

func TestNormalizedTo(t *testing.T) {
	base := energy.Breakdown{Core: 50, L1: 30, L2: 20}
	b := energy.Breakdown{Core: 25, L1: 15, L2: 10}
	if got := b.NormalizedTo(base); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("NormalizedTo = %v, want 0.5", got)
	}
	if got := b.NormalizedTo(energy.Breakdown{}); got != 0 {
		t.Fatalf("NormalizedTo(empty) = %v, want 0", got)
	}
}
