package report

import (
	"warpsched/internal/metrics"
)

// Report is a fully derived reproduction report, ready to render. A
// section field is nil when the manifests contain no records for its
// experiment, and the document simply omits it.
type Report struct {
	set *Set
	// Fig9 and Fig15 are the Fermi and Pascal performance/energy sweeps.
	Fig9, Fig15 *ExecEnergySection
	// Delay is the Figures 10-13 delay-limit sweep.
	Delay *DelaySection
	// Fig14 is the detection-error overhead study.
	Fig14 *Fig14Section
	// Table1 is the DDOS sensitivity table.
	Table1 *Table1Section
	// Ablation is the BOWS component study.
	Ablation *AblationSection
	// Wasp is the scheduler-zoo head-to-head (WaSP vs GTO/CAWA).
	Wasp *WaspSection
	// TageSIB is the detector head-to-head (TAGE-SIB vs DDOS).
	TageSIB *TageSIBSection
}

// Build joins the manifests and derives every report section present in
// them (sections whose experiment has no records are omitted; incomplete
// sweeps inside a present section are a *MissingRunError).
func Build(ms ...*metrics.Manifest) (*Report, error) {
	s, err := Join(ms...)
	if err != nil {
		return nil, err
	}
	r := &Report{set: s}
	if err := r.deriveAll(); err != nil {
		return nil, err
	}
	return r, nil
}

// Set exposes the joined record set the report was derived from.
func (r *Report) Set() *Set { return r.set }

// Write renders the report: the Markdown document at mdPath and the SVG
// figures under svgDir. It returns the paths written.
func (r *Report) Write(mdPath, svgDir string) ([]string, error) {
	return r.write(mdPath, svgDir)
}
