package report

import (
	"fmt"
	"sort"

	"warpsched/internal/config"
	"warpsched/internal/energy"
	"warpsched/internal/exp"
	"warpsched/internal/metrics"
	"warpsched/internal/stats"
)

// Bar is one derived data point. Runs aborted by the simulation watchdog
// still carry their counters, so their values are rendered as lower
// bounds ("≥") instead of being dropped — the paper's DS-on-LRR case
// livelocks by design.
type Bar struct {
	// Value is the derived quantity (normalized time, energy, ...).
	Value float64
	// LowerBound marks a watchdog-aborted run: Value is a floor, not
	// the converged result.
	LowerBound bool
}

// ExecEnergySection is the derived Figure 9 / Figure 15 content:
// execution time and dynamic energy for every synchronization kernel
// under LRR, GTO and CAWA with and without BOWS, normalized to LRR, plus
// the mean speedups and energy savings the paper quotes and an
// issue-slot breakdown of where the baseline's cycles go.
type ExecEnergySection struct {
	// Exp is the experiment tag ("fig9" or "fig15").
	Exp string
	// Title is the paper-facing heading.
	Title string
	// GPU is the machine configuration name the sweep ran on.
	GPU string
	// Kernels lists the benchmarks, sorted.
	Kernels []string
	// Columns is the paper's bar order (LRR, LRR+BOWS, ...).
	Columns []string
	// Time[kernel] and Energy[kernel] are normalized to the kernel's
	// LRR baseline, following Columns.
	Time   map[string][]Bar
	Energy map[string][]Bar
	// GmeanTime and GmeanEnergy are per-column geometric means.
	GmeanTime   []float64
	GmeanEnergy []float64
	// Speedup and EnergySaving map a baseline scheduler name to the
	// geometric-mean improvement of baseline+BOWS over it; HmeanSpeedup
	// is the harmonic mean of the per-kernel speedups.
	Speedup      map[string]float64
	HmeanSpeedup map[string]float64
	EnergySaving map[string]float64
	// Slots breaks down each kernel's baseline-GTO issue slots.
	Slots map[string]SlotBreakdown
}

// SlotBreakdown classifies a run's issue slots (one per scheduler per
// cycle, summed over all SMs) by what the scheduler did with them, plus
// how much of the issued work was synchronization: the spin-overhead
// view of Figure 2.
type SlotBreakdown struct {
	// Issue and Idle are the fractions of issue slots in which the
	// scheduler issued an instruction versus had no ready warp; they
	// sum to 1.
	Issue, Idle float64
	// SyncInstr is the fraction of issued thread instructions that were
	// synchronization operations — work a spin-free machine would not do.
	SyncInstr float64
	// BackedOff is the average fraction of resident warps BOWS held in
	// the backed-off state (0 for baseline runs).
	BackedOff float64
}

// DelaySection is the derived Figures 10-13 content: the GTO+BOWS
// delay-limit sweep with its side metrics.
type DelaySection struct {
	// Kernels lists the benchmarks, sorted.
	Kernels []string
	// Columns is GTO, BOWS(0), ..., BOWS(Adaptive).
	Columns []string
	// Time[kernel] is execution time normalized to GTO.
	Time map[string][]Bar
	// GmeanTime is the per-column geometric mean of Time.
	GmeanTime []float64
	// BackedOff[kernel] is the average backed-off warp fraction.
	BackedOff map[string][]float64
	// Instrs and MemTrans are dynamic thread instructions and memory
	// transactions normalized to GTO; SIMD is raw SIMD efficiency.
	Instrs   map[string][]float64
	MemTrans map[string][]float64
	SIMD     map[string][]float64
	// GmeanInstrs and GmeanMemTrans are per-column geometric means.
	GmeanInstrs   []float64
	GmeanMemTrans []float64
}

// Fig14Section is the derived Figure 14 content: overhead of detection
// errors on synchronization-free kernels under BOWS(5000).
type Fig14Section struct {
	// Kernels lists the sync-free benchmarks, sorted.
	Kernels []string
	// XOR and MOD are execution time normalized to GTO under XOR and
	// MODULO hashing; FalseXOR/FalseMOD count falsely confirmed SIBs.
	XOR, MOD           map[string]Bar
	FalseXOR, FalseMOD map[string]int64
	// GmeanXOR and GmeanMOD are geometric means over Kernels.
	GmeanXOR, GmeanMOD float64
}

// Table1Section is the derived Table I content: DDOS detection quality
// under parameter sensitivity, with suite-aggregate precision and recall
// per configuration.
type Table1Section struct {
	// Blocks are the table's sections in display order.
	Blocks []Table1Block
}

// Table1Block is one section of Table I (one varied dimension).
type Table1Block struct {
	// Name is the section heading.
	Name string
	// Rows are the section's configurations in display order.
	Rows []Table1Row
}

// Table1Row is one detector configuration's detection quality, averaged
// or aggregated over the benchmark suite.
type Table1Row struct {
	// Label is the configuration label, e.g. "XOR, m=k=8".
	Label string
	// TSDR/FSDR are mean true/false SIB detection rates over kernels
	// that saw such branches; TrueDPR/FalseDPR are the mean detection
	// phase ratios over kernels with confirmed detections.
	TSDR, TrueDPR, FSDR, FalseDPR float64
	// Precision and Recall aggregate raw counts over the whole suite:
	// precision = ΣTrueDetected / (ΣTrueDetected + ΣFalseDetected),
	// recall = ΣTrueDetected / ΣTrueSeen.
	Precision, Recall float64
}

// WaspSection is the derived scheduler-zoo head-to-head: execution time
// and dynamic energy under GTO, CAWA and WaSP with and without BOWS,
// normalized to GTO.
type WaspSection struct {
	// GPU is the machine configuration name the sweep ran on.
	GPU string
	// Kernels lists the benchmarks, sorted.
	Kernels []string
	// Columns is exp.WaspColumns (GTO, GTO+BOWS, ..., WASP+BOWS).
	Columns []string
	// Time[kernel] and Energy[kernel] follow Columns, normalized to the
	// kernel's GTO baseline.
	Time   map[string][]Bar
	Energy map[string][]Bar
	// GmeanTime and GmeanEnergy are per-column geometric means.
	GmeanTime   []float64
	GmeanEnergy []float64
	// TimeVsGTO and TimeVsCAWA are the geometric-mean time ratios
	// baseline/WASP (>1 means WaSP is faster); BOWSSpeedup maps each
	// scheduler name to the gmean speedup its +BOWS column buys.
	TimeVsGTO, TimeVsCAWA float64
	BOWSSpeedup           map[string]float64
}

// TageSIBSection is the derived detector head-to-head: DDOS anchors
// versus the TAGE-SIB sensitivity grid, each row's detection quality
// averaged or aggregated over the benchmark suite exactly as in Table I.
type TageSIBSection struct {
	// Rows are the grid points in exp.TageSIBLayout order; the Table1Row
	// shape is reused because the columns are identical.
	Rows []TageSIBRow
}

// TageSIBRow is one detector configuration of the head-to-head grid.
type TageSIBRow struct {
	Table1Row
	// TAGE marks rows evaluating the TAGE-SIB detector (false = DDOS
	// anchor rows).
	TAGE bool
}

// AblationSection is the derived BOWS component study: normalized
// execution time per arm, GTO = 1.
type AblationSection struct {
	// Kernels lists the benchmarks, sorted.
	Kernels []string
	// Columns are the arm labels from exp.AblationLayout.
	Columns []string
	// Time[kernel] follows Columns, normalized to the GTO arm.
	Time map[string][]Bar
	// Gmean is the per-column geometric mean.
	Gmean []float64
}

// deriveAll fills the report's sections from the joined set, skipping
// experiments that are absent entirely (a -quick fig9-only manifest still
// renders a fig9-only document).
func (r *Report) deriveAll() error {
	s := r.set
	for _, e := range s.Experiments() {
		var err error
		switch e {
		case "fig9":
			r.Fig9, err = deriveExecEnergy(s, "fig9", "Figure 9 — performance and energy on Fermi (GTX480)")
		case "fig15":
			r.Fig15, err = deriveExecEnergy(s, "fig15", "Figure 15 — performance and energy on Pascal (GTX1080Ti)")
		case "delaysweep":
			r.Delay, err = deriveDelay(s)
		case "fig14":
			r.Fig14, err = deriveFig14(s)
		case "table1":
			r.Table1, err = deriveTable1(s)
		case "ablation":
			r.Ablation, err = deriveAblation(s)
		case "wasp":
			r.Wasp, err = deriveWasp(s)
		case "tagesib":
			r.TageSIB, err = deriveTageSIB(s)
		default:
			// Other experiments (fig1-3, fig16, tables 2-3) publish
			// through their own harness output; the report has no
			// section for them.
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// kernelsOf returns the distinct kernel names in an experiment's
// records, sorted — the deterministic row order of every table.
func kernelsOf(s *Set, exp string) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range s.Runs(exp) {
		if !seen[r.Kernel] {
			seen[r.Kernel] = true
			out = append(out, r.Kernel)
		}
	}
	sort.Strings(out)
	return out
}

// barOf converts a record's cycle count to a Bar, marking watchdog
// lower bounds; a failed run with no counters is a hard error.
func barOf(rec *metrics.RunRecord) (Bar, error) {
	if rec.Cycles == 0 {
		return Bar{}, fmt.Errorf("report: run %s failed without counters: %s", rec.Key(), rec.Err)
	}
	return Bar{Value: float64(rec.Cycles), LowerBound: rec.Err != ""}, nil
}

// energyOf recomputes a run's dynamic energy from its manifest counters
// through the same internal/energy model the simulator used online.
func energyOf(rec *metrics.RunRecord) energy.Breakdown {
	sim := stats.FromCounters(rec.Cycles, rec.Counters)
	return energy.Compute(energy.ByConfigName(rec.GPU), sim)
}

func deriveExecEnergy(s *Set, tag, title string) (*ExecEnergySection, error) {
	sec := &ExecEnergySection{
		Exp:          tag,
		Title:        title,
		Columns:      exp.ExecEnergyColumns,
		Kernels:      kernelsOf(s, tag),
		Time:         map[string][]Bar{},
		Energy:       map[string][]Bar{},
		Speedup:      map[string]float64{},
		HmeanSpeedup: map[string]float64{},
		EnergySaving: map[string]float64{},
		Slots:        map[string]SlotBreakdown{},
	}
	adaptive := config.DefaultBOWS().Desc()
	gmT := make([][]float64, len(sec.Columns))
	gmE := make([][]float64, len(sec.Columns))
	perKernelSpeedup := map[string][]float64{}
	for _, k := range sec.Kernels {
		var times []Bar
		var energies []Bar
		for _, kind := range config.Schedulers {
			for _, bows := range []string{"off", adaptive} {
				rec, err := s.Find(tag, k, string(kind), bows)
				if err != nil {
					return nil, err
				}
				if sec.GPU == "" {
					sec.GPU = rec.GPU
				}
				b, err := barOf(rec)
				if err != nil {
					return nil, err
				}
				times = append(times, b)
				energies = append(energies, Bar{Value: energyOf(rec).Total(), LowerBound: b.LowerBound})
				if kind == config.GTO && bows == "off" {
					sec.Slots[k] = slotsOf(rec)
				}
			}
		}
		// Normalize to LRR (column 0), as in the paper; per-baseline
		// speedups come from the unnormalized pairs.
		for i, kind := range config.Schedulers {
			base, with := times[2*i], times[2*i+1]
			if with.Value > 0 && !base.LowerBound && !with.LowerBound {
				perKernelSpeedup[string(kind)] = append(perKernelSpeedup[string(kind)], base.Value/with.Value)
			}
		}
		baseT, baseE := times[0].Value, energies[0].Value
		for i := range times {
			times[i].Value /= baseT
			energies[i].Value /= baseE
			gmT[i] = append(gmT[i], times[i].Value)
			gmE[i] = append(gmE[i], energies[i].Value)
		}
		sec.Time[k] = times
		sec.Energy[k] = energies
	}
	for i := range sec.Columns {
		sec.GmeanTime = append(sec.GmeanTime, stats.Gmean(gmT[i]))
		sec.GmeanEnergy = append(sec.GmeanEnergy, stats.Gmean(gmE[i]))
	}
	for i, kind := range config.Schedulers {
		name := string(kind)
		sec.Speedup[name] = ratioOrZero(sec.GmeanTime[2*i], sec.GmeanTime[2*i+1])
		sec.EnergySaving[name] = ratioOrZero(sec.GmeanEnergy[2*i], sec.GmeanEnergy[2*i+1])
		sec.HmeanSpeedup[name] = stats.Hmean(perKernelSpeedup[name])
	}
	return sec, nil
}

func ratioOrZero(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// slotsOf derives the issue-slot breakdown from a record's scheduler and
// execution counters.
func slotsOf(rec *metrics.RunRecord) SlotBreakdown {
	c := rec.Counters
	var b SlotBreakdown
	if slots := c["sched.issue_cycles"] + c["sched.idle_cycles"]; slots > 0 {
		b.Issue = float64(c["sched.issue_cycles"]) / float64(slots)
		b.Idle = float64(c["sched.idle_cycles"]) / float64(slots)
	}
	if ti := c["exec.thread_instrs"]; ti > 0 {
		b.SyncInstr = float64(c["exec.sync_thread_instrs"]) / float64(ti)
	}
	if sam := c["sched.sample_cycles"]; sam > 0 && c["sched.resident_sum"] > 0 {
		b.BackedOff = float64(c["sched.backed_off_sum"]) / float64(c["sched.resident_sum"])
	}
	return b
}

func deriveDelay(s *Set) (*DelaySection, error) {
	sec := &DelaySection{
		Kernels:   kernelsOf(s, "delaysweep"),
		Time:      map[string][]Bar{},
		BackedOff: map[string][]float64{},
		Instrs:    map[string][]float64{},
		MemTrans:  map[string][]float64{},
		SIMD:      map[string][]float64{},
	}
	bowsCols := []string{"off"}
	sec.Columns = []string{"GTO"}
	for _, d := range exp.DelayLimits {
		bowsCols = append(bowsCols, config.FixedBOWS(d).Desc())
		sec.Columns = append(sec.Columns, fmt.Sprintf("BOWS(%d)", d))
	}
	bowsCols = append(bowsCols, config.DefaultBOWS().Desc())
	sec.Columns = append(sec.Columns, "BOWS(Adaptive)")

	gmT := make([][]float64, len(sec.Columns))
	gmI := make([][]float64, len(sec.Columns))
	gmM := make([][]float64, len(sec.Columns))
	for _, k := range sec.Kernels {
		var times []Bar
		var backed, instrs, mems, simd []float64
		for _, bows := range bowsCols {
			rec, err := s.Find("delaysweep", k, string(config.GTO), bows)
			if err != nil {
				return nil, err
			}
			b, err := barOf(rec)
			if err != nil {
				return nil, err
			}
			times = append(times, b)
			backed = append(backed, rec.Derived["backed_off_fraction"])
			simd = append(simd, rec.Derived["simd_efficiency"])
			instrs = append(instrs, float64(rec.Counters["exec.thread_instrs"]))
			mems = append(mems, float64(rec.Counters["mem.transactions"]))
		}
		baseT, baseI, baseM := times[0].Value, instrs[0], mems[0]
		if baseI == 0 {
			baseI = 1
		}
		if baseM == 0 {
			baseM = 1
		}
		for i := range times {
			times[i].Value /= baseT
			instrs[i] /= baseI
			mems[i] /= baseM
			gmT[i] = append(gmT[i], times[i].Value)
			gmI[i] = append(gmI[i], instrs[i])
			gmM[i] = append(gmM[i], mems[i])
		}
		sec.Time[k] = times
		sec.BackedOff[k] = backed
		sec.Instrs[k] = instrs
		sec.MemTrans[k] = mems
		sec.SIMD[k] = simd
	}
	for i := range sec.Columns {
		sec.GmeanTime = append(sec.GmeanTime, stats.Gmean(gmT[i]))
		sec.GmeanInstrs = append(sec.GmeanInstrs, stats.Gmean(gmI[i]))
		sec.GmeanMemTrans = append(sec.GmeanMemTrans, stats.Gmean(gmM[i]))
	}
	return sec, nil
}

func deriveFig14(s *Set) (*Fig14Section, error) {
	sec := &Fig14Section{
		Kernels:  kernelsOf(s, "fig14"),
		XOR:      map[string]Bar{},
		MOD:      map[string]Bar{},
		FalseXOR: map[string]int64{},
		FalseMOD: map[string]int64{},
	}
	xorDesc := config.DefaultDDOS().Desc()
	modCfg := config.DefaultDDOS()
	modCfg.Hash = config.HashModulo
	modDesc := modCfg.Desc()
	big := config.FixedBOWS(5000).Desc()
	var xs, ms []float64
	for _, k := range sec.Kernels {
		base, err := s.Find("fig14", k, string(config.GTO), "off")
		if err != nil {
			return nil, err
		}
		xor, err := s.FindDDOS("fig14", k, string(config.GTO), big, xorDesc)
		if err != nil {
			return nil, err
		}
		mod, err := s.FindDDOS("fig14", k, string(config.GTO), big, modDesc)
		if err != nil {
			return nil, err
		}
		bb, err := barOf(base)
		if err != nil {
			return nil, err
		}
		for _, pair := range []struct {
			rec  *metrics.RunRecord
			bar  map[string]Bar
			fdet map[string]int64
			gm   *[]float64
		}{
			{xor, sec.XOR, sec.FalseXOR, &xs},
			{mod, sec.MOD, sec.FalseMOD, &ms},
		} {
			b, err := barOf(pair.rec)
			if err != nil {
				return nil, err
			}
			b.Value /= bb.Value
			b.LowerBound = b.LowerBound || bb.LowerBound
			pair.bar[k] = b
			pair.fdet[k] = pair.rec.Counters["ddos.false_sibs_detected"]
			*pair.gm = append(*pair.gm, b.Value)
		}
	}
	sec.GmeanXOR = stats.Gmean(xs)
	sec.GmeanMOD = stats.Gmean(ms)
	return sec, nil
}

func deriveTable1(s *Set) (*Table1Section, error) {
	kernels := kernelsOf(s, "table1")
	byCfg := byDetector(s, "table1")
	sec := &Table1Section{}
	for _, block := range exp.Table1Layout() {
		b := Table1Block{Name: block.Name}
		for _, sp := range block.Specs {
			row, err := detectionRow("table1", sp.Label, sp.DDOS.Desc(), kernels, byCfg)
			if err != nil {
				return nil, err
			}
			b.Rows = append(b.Rows, row)
		}
		sec.Blocks = append(sec.Blocks, b)
	}
	return sec, nil
}

// detectionRow aggregates one detector configuration's Table I columns
// over the suite: per-kernel TSDR/FSDR and DPR means, plus aggregate
// precision/recall from the raw confirmation counts. The counter family
// keeps its historical "ddos." names for every detector (see
// exp.buildRecord), so the same aggregation serves DDOS and TAGE rows.
func detectionRow(tag, label, desc string, kernels []string, byCfg map[string]map[string]*metrics.RunRecord) (Table1Row, error) {
	recs := byCfg[desc]
	row := Table1Row{Label: label}
	var tsdrs, fsdrs, tdprs, fdprs []float64
	var trueSeen, trueDet, falseDet int64
	for _, k := range kernels {
		rec := recs[k]
		if rec == nil {
			return row, &MissingRunError{Exp: tag, Kernel: k,
				Sched: string(config.GTO), BOWS: "off", DDOS: desc}
		}
		ts := rec.Counters["ddos.true_sibs_seen"]
		td := rec.Counters["ddos.true_sibs_detected"]
		fs := rec.Counters["ddos.false_sibs_seen"]
		fd := rec.Counters["ddos.false_sibs_detected"]
		trueSeen += ts
		trueDet += td
		falseDet += fd
		if ts > 0 {
			tsdrs = append(tsdrs, float64(td)/float64(ts))
			if td > 0 {
				tdprs = append(tdprs, rec.Derived["ddos_true_dpr"])
			}
		}
		if fs > 0 {
			fsdrs = append(fsdrs, float64(fd)/float64(fs))
			if fd > 0 {
				fdprs = append(fdprs, rec.Derived["ddos_false_dpr"])
			}
		}
	}
	row.TSDR, row.TrueDPR = mean(tsdrs), mean(tdprs)
	row.FSDR, row.FalseDPR = mean(fsdrs), mean(fdprs)
	if trueDet+falseDet > 0 {
		row.Precision = float64(trueDet) / float64(trueDet+falseDet)
	}
	if trueSeen > 0 {
		row.Recall = float64(trueDet) / float64(trueSeen)
	}
	return row, nil
}

// byDetector indexes an experiment's records by detector descriptor (the
// record's DDOS column) and kernel.
func byDetector(s *Set, tag string) map[string]map[string]*metrics.RunRecord {
	byCfg := map[string]map[string]*metrics.RunRecord{}
	for _, rec := range s.Runs(tag) {
		if byCfg[rec.DDOS] == nil {
			byCfg[rec.DDOS] = map[string]*metrics.RunRecord{}
		}
		byCfg[rec.DDOS][rec.Kernel] = rec
	}
	return byCfg
}

func deriveTageSIB(s *Set) (*TageSIBSection, error) {
	kernels := kernelsOf(s, "tagesib")
	byCfg := byDetector(s, "tagesib")
	sec := &TageSIBSection{}
	for _, sp := range exp.TageSIBLayout() {
		row, err := detectionRow("tagesib", sp.Label, sp.Desc(), kernels, byCfg)
		if err != nil {
			return nil, err
		}
		sec.Rows = append(sec.Rows, TageSIBRow{Table1Row: row, TAGE: sp.Det == config.DetectTAGE})
	}
	return sec, nil
}

func deriveWasp(s *Set) (*WaspSection, error) {
	sec := &WaspSection{
		Kernels:     kernelsOf(s, "wasp"),
		Columns:     exp.WaspColumns,
		Time:        map[string][]Bar{},
		Energy:      map[string][]Bar{},
		BOWSSpeedup: map[string]float64{},
	}
	adaptive := config.DefaultBOWS().Desc()
	gmT := make([][]float64, len(sec.Columns))
	gmE := make([][]float64, len(sec.Columns))
	for _, k := range sec.Kernels {
		var times []Bar
		var energies []Bar
		for _, kind := range exp.WaspSchedulers {
			for _, bows := range []string{"off", adaptive} {
				rec, err := s.Find("wasp", k, string(kind), bows)
				if err != nil {
					return nil, err
				}
				if sec.GPU == "" {
					sec.GPU = rec.GPU
				}
				b, err := barOf(rec)
				if err != nil {
					return nil, err
				}
				times = append(times, b)
				energies = append(energies, Bar{Value: energyOf(rec).Total(), LowerBound: b.LowerBound})
			}
		}
		// Normalize to GTO (column 0), matching exp.Wasp.
		baseT, baseE := times[0].Value, energies[0].Value
		for i := range times {
			times[i].Value /= baseT
			energies[i].Value /= baseE
			gmT[i] = append(gmT[i], times[i].Value)
			gmE[i] = append(gmE[i], energies[i].Value)
		}
		sec.Time[k] = times
		sec.Energy[k] = energies
	}
	for i := range sec.Columns {
		sec.GmeanTime = append(sec.GmeanTime, stats.Gmean(gmT[i]))
		sec.GmeanEnergy = append(sec.GmeanEnergy, stats.Gmean(gmE[i]))
	}
	// Column layout: [GTO, GTO+BOWS, CAWA, CAWA+BOWS, WASP, WASP+BOWS].
	sec.TimeVsGTO = ratioOrZero(sec.GmeanTime[0], sec.GmeanTime[4])
	sec.TimeVsCAWA = ratioOrZero(sec.GmeanTime[2], sec.GmeanTime[4])
	for i, kind := range exp.WaspSchedulers {
		sec.BOWSSpeedup[string(kind)] = ratioOrZero(sec.GmeanTime[2*i], sec.GmeanTime[2*i+1])
	}
	return sec, nil
}

func deriveAblation(s *Set) (*AblationSection, error) {
	layout := exp.AblationLayout()
	sec := &AblationSection{
		Kernels: kernelsOf(s, "ablation"),
		Time:    map[string][]Bar{},
	}
	for _, col := range layout {
		sec.Columns = append(sec.Columns, col.Label)
	}
	gm := make([][]float64, len(layout))
	for _, k := range sec.Kernels {
		var times []Bar
		for _, col := range layout {
			rec, err := s.Find("ablation", k, string(config.GTO), col.BOWS.Desc())
			if err != nil {
				return nil, err
			}
			b, err := barOf(rec)
			if err != nil {
				return nil, err
			}
			times = append(times, b)
		}
		base := times[0].Value
		for i := range times {
			times[i].Value /= base
			gm[i] = append(gm[i], times[i].Value)
		}
		sec.Time[k] = times
	}
	for i := range layout {
		sec.Gmean = append(sec.Gmean, stats.Gmean(gm[i]))
	}
	return sec, nil
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
