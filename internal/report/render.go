package report

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Files renders the whole report in memory: the Markdown document plus
// every SVG figure, keyed by the absolute path each would be written to.
// Figure references inside the document are relative to the document's
// directory, so the rendered bytes depend only on the manifests and the
// mdPath→svgDir relationship — not on where the tree is checked out.
func (r *Report) Files(mdPath, svgDir string) map[string][]byte {
	out := map[string][]byte{mdPath: r.markdown(relFig(mdPath, svgDir))}
	for name, svg := range r.figures() {
		out[filepath.Join(svgDir, name)] = svg
	}
	return out
}

// write renders and writes every output file, returning the sorted list
// of paths written.
func (r *Report) write(mdPath, svgDir string) ([]string, error) {
	files := r.Files(mdPath, svgDir)
	var paths []string
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(p, files[p], 0o644); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// Check re-renders the report and compares it byte for byte against the
// files on disk, returning a *DriftError naming every stale or missing
// path. It is the docs-drift gate run by scripts/check.sh and CI.
func (r *Report) Check(mdPath, svgDir string) error {
	files := r.Files(mdPath, svgDir)
	var paths []string
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var drift []string
	for _, p := range paths {
		got, err := os.ReadFile(p)
		if err != nil {
			drift = append(drift, p+" (missing)")
			continue
		}
		if !bytes.Equal(got, files[p]) {
			drift = append(drift, p)
		}
	}
	if len(drift) > 0 {
		return &DriftError{Paths: drift}
	}
	return nil
}

// DriftError reports generated files that no longer match what the
// manifest derives — REPRODUCTION.md or a figure was edited by hand, or
// the derivation changed without regenerating.
type DriftError struct {
	// Paths lists the stale or missing files.
	Paths []string
}

// Error implements error.
func (e *DriftError) Error() string {
	return fmt.Sprintf("report: generated files drifted from the manifest (regenerate with cmd/warpreport): %v", e.Paths)
}
