package report

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/exp"
	"warpsched/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden rendering files")

// goldenFixture builds a compact manifest covering every report section
// with formulaic (but realistic-looking) counters, so the golden files
// stay small and reviewable while still exercising each renderer.
func goldenFixture(t *testing.T) *metrics.Manifest {
	t.Helper()
	m := table1Fixture(t)
	add := func(r metrics.RunRecord) {
		t.Helper()
		if err := m.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	mkRec := func(e, kernel, sched, bows, ddos string, i int) metrics.RunRecord {
		cycles := int64(10000 + 777*i)
		return metrics.RunRecord{
			Exp: e, Kernel: kernel, GPU: "GTX480/4SM", Sched: sched,
			BOWS: bows, DDOS: ddos, Variant: fmt.Sprintf("g-%s-%d", e, i),
			Cycles: cycles,
			Counters: map[string]int64{
				"exec.warp_instrs":        cycles / 4,
				"exec.thread_instrs":      cycles * 4,
				"exec.sync_thread_instrs": cycles,
				"exec.active_lane_sum":    cycles * 8,
				"mem.transactions":        cycles / 2,
				"mem.l1_accesses":         cycles / 2,
				"mem.l1_hits":             cycles / 3,
				"sched.issue_cycles":      cycles / 4,
				"sched.idle_cycles":       cycles * 8 * 3 / 4,
				"sched.sample_cycles":     cycles,
				"sched.resident_sum":      cycles * 16,
				"sched.backed_off_sum":    cycles * int64(i),
			},
			Derived: map[string]float64{
				"simd_efficiency":     0.25,
				"backed_off_fraction": float64(i) / 16,
			},
		}
	}
	xor := config.DefaultDDOS().Desc()
	adaptive := config.DefaultBOWS().Desc()
	i := 0
	for _, kernel := range []string{"ATM", "HT"} {
		for _, sched := range []string{"LRR", "GTO", "CAWA"} {
			for _, bows := range []string{"off", adaptive} {
				add(mkRec("fig9", kernel, sched, bows, xor, i))
				i++
			}
		}
	}
	bowsCols := []string{"off"}
	for _, d := range exp.DelayLimits {
		bowsCols = append(bowsCols, config.FixedBOWS(d).Desc())
	}
	bowsCols = append(bowsCols, adaptive)
	for _, bows := range bowsCols {
		add(mkRec("delaysweep", "HT", "GTO", bows, xor, i))
		i++
	}
	mod := config.DefaultDDOS()
	mod.Hash = config.HashModulo
	add(mkRec("fig14", "MS", "GTO", "off", xor, i))
	add(mkRec("fig14", "MS", "GTO", config.FixedBOWS(5000).Desc(), xor, i+1))
	r := mkRec("fig14", "MS", "GTO", config.FixedBOWS(5000).Desc(), mod.Desc(), i+2)
	r.Counters["ddos.false_sibs_detected"] = 2
	add(r)
	i += 3
	for _, col := range exp.AblationLayout() {
		add(mkRec("ablation", "HT", "GTO", col.BOWS.Desc(), xor, i))
		i++
	}
	// One watchdog lower bound, to pin the "≥" rendering.
	lb := mkRec("fig15", "DS", "GTO", "off", xor, i)
	lb.Err = "watchdog: no forward progress"
	add(lb)
	for _, sched := range []string{"LRR", "GTO", "CAWA"} {
		for _, bows := range []string{"off", adaptive} {
			if sched == "GTO" && bows == "off" {
				continue
			}
			add(mkRec("fig15", "DS", sched, bows, xor, i+1))
			i++
		}
	}
	m.Sort()
	return m
}

// TestGoldenRendering locks the rendered document and figures byte for
// byte. Regenerate with: go test ./internal/report -run Golden -update
func TestGoldenRendering(t *testing.T) {
	rep, err := Build(goldenFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	files := rep.Files("REPRODUCTION.md", "figures")
	if len(files) < 5 {
		t.Fatalf("rendered only %d files: %v", len(files), files)
	}
	dir := filepath.Join("testdata", "golden")
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for path, got := range files {
		name := strings.ReplaceAll(path, "/", "_")
		gp := filepath.Join(dir, name)
		if *update {
			if err := os.WriteFile(gp, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(gp)
		if err != nil {
			t.Fatalf("missing golden file for %s (run with -update): %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden rendering (re-run with -update and review the diff)", path)
		}
	}
}

// TestWriteCheckRoundTrip writes a report to disk and verifies Check
// passes on the result and fails after tampering.
func TestWriteCheckRoundTrip(t *testing.T) {
	rep, err := Build(goldenFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	md := filepath.Join(dir, "REPRODUCTION.md")
	svg := filepath.Join(dir, "figures")
	if _, err := rep.Write(md, svg); err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(md, svg); err != nil {
		t.Fatalf("Check after Write: %v", err)
	}
	if err := os.WriteFile(md, []byte("edited by hand\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = rep.Check(md, svg)
	var de *DriftError
	if !asDrift(err, &de) || len(de.Paths) != 1 {
		t.Fatalf("Check after tamper: want DriftError with 1 path, got %v", err)
	}
}

func asDrift(err error, target **DriftError) bool {
	de, ok := err.(*DriftError)
	if ok {
		*target = de
	}
	return ok
}
