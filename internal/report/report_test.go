package report

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"warpsched/internal/metrics"
)

func miniManifest(cfg map[string]any, runs ...metrics.RunRecord) *metrics.Manifest {
	m := metrics.NewManifest("test", cfg)
	for _, r := range runs {
		if err := m.Add(r); err != nil {
			panic(err)
		}
	}
	m.Sort()
	return m
}

func rec(exp, kernel, sched, bows, variant string, cycles int64) metrics.RunRecord {
	return metrics.RunRecord{
		Exp: exp, Kernel: kernel, GPU: "GTX480/4SM", Sched: sched,
		BOWS: bows, DDOS: "XOR-m8k8-t4-l8", Variant: variant, Cycles: cycles,
		Counters: map[string]int64{"exec.thread_instrs": 100},
	}
}

func TestJoinConfigMismatch(t *testing.T) {
	a := miniManifest(map[string]any{"quick": true})
	b := miniManifest(map[string]any{"quick": false})
	_, err := Join(a, b)
	var je *JoinError
	if !errors.As(err, &je) || je.Reason != ReasonConfig {
		t.Fatalf("want JoinError{ReasonConfig}, got %v", err)
	}
}

func TestJoinConflict(t *testing.T) {
	a := miniManifest(nil, rec("fig9", "HT", "GTO", "off", "v1", 100))
	b := miniManifest(nil, rec("fig9", "HT", "GTO", "off", "v1", 200))
	_, err := Join(a, b)
	var je *JoinError
	if !errors.As(err, &je) || je.Reason != ReasonConflict {
		t.Fatalf("want JoinError{ReasonConflict}, got %v", err)
	}
}

func TestJoinMergesDisjointShards(t *testing.T) {
	a := miniManifest(nil, rec("fig9", "HT", "GTO", "off", "v1", 100))
	b := miniManifest(nil, rec("fig9", "HT", "LRR", "off", "v2", 150))
	s, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(s.Runs("fig9")); n != 2 {
		t.Fatalf("joined set has %d fig9 runs, want 2", n)
	}
	// Identical records in both shards are deduplicated, not conflicts.
	if _, err := Join(a, a); err != nil {
		t.Fatalf("self-join: %v", err)
	}
}

func TestLoadSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "old.json")
	if err := os.WriteFile(p, []byte(`{"schema":1,"tool":"experiments","runs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(p)
	var je *JoinError
	if !errors.As(err, &je) || je.Reason != ReasonSchema {
		t.Fatalf("want JoinError{ReasonSchema}, got %v", err)
	}
	if !errors.Is(err, metrics.ErrSchemaMismatch) {
		t.Fatalf("error %v does not unwrap to ErrSchemaMismatch", err)
	}
	if je.Path != p {
		t.Fatalf("JoinError.Path = %q, want %q", je.Path, p)
	}
}

func TestFindMissingAndAmbiguous(t *testing.T) {
	r2 := rec("fig16", "HT", "GTO", "off", "v2", 120)
	s, err := Join(miniManifest(nil,
		rec("fig9", "HT", "GTO", "off", "v1", 100),
		r2,
		rec("fig16", "HT", "GTO", "off", "v3", 130)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Find("fig9", "HT", "GTO", "off"); err != nil {
		t.Fatalf("Find existing: %v", err)
	}
	_, err = s.Find("fig9", "HT", "CAWA", "off")
	var mre *MissingRunError
	if !errors.As(err, &mre) {
		t.Fatalf("want MissingRunError, got %v", err)
	}
	if mre.Sched != "CAWA" {
		t.Fatalf("MissingRunError coordinates wrong: %+v", mre)
	}
	// fig16 reuses kernel/sched/bows across launch variants: ambiguous.
	if _, err := s.Find("fig16", "HT", "GTO", "off"); err == nil {
		t.Fatal("Find on ambiguous coordinates should error")
	}
	// FindDDOS disambiguates by detector only, not launch: still ambiguous.
	if _, err := s.FindDDOS("fig16", "HT", "GTO", "off", "XOR-m8k8-t4-l8"); err == nil {
		t.Fatal("FindDDOS on launch-ambiguous coordinates should error")
	}
	_, err = s.FindDDOS("fig9", "HT", "GTO", "off", "MODULO-m8k8-t4-l8")
	if !errors.As(err, &mre) || mre.DDOS == "" {
		t.Fatalf("want MissingRunError with DDOS set, got %v", err)
	}
}

func TestLoadFullManifest(t *testing.T) {
	s, err := Load("testdata/full.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Build(s.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	for name, sec := range map[string]bool{
		"fig9": rep.Fig9 != nil, "fig15": rep.Fig15 != nil,
		"delay": rep.Delay != nil, "fig14": rep.Fig14 != nil,
		"table1": rep.Table1 != nil, "ablation": rep.Ablation != nil,
	} {
		if !sec {
			t.Errorf("full manifest did not derive section %s", name)
		}
	}
	if rep.Fig9 != nil && len(rep.Fig9.Kernels) == 0 {
		t.Error("fig9 section has no kernels")
	}
}
