package report

import (
	"fmt"
	"math"
	"strings"
)

// The figures are self-contained SVGs following the repo's chart rules:
// categorical hues assigned in fixed palette order (never cycled), thin
// bars with a 2px surface gap, one y axis, recessive hairline grid,
// text in ink tokens (never the series color), a legend whenever two or
// more series share a plot, native <title> tooltips on every mark, and
// a dark variant selected via prefers-color-scheme rather than derived
// by inversion. Coordinates are emitted at fixed precision so output is
// byte-identical across runs and platforms.

// svgSeries is one legend entry of a grouped bar chart: a palette slot
// plus one value per group. Tinted series render at reduced opacity —
// the baseline member of a baseline/+BOWS pair shares its hue with the
// solid treatment series.
type svgSeries struct {
	label string
	slot  int // palette slot index
	tint  bool
	vals  []Bar
}

// palette is the validated categorical palette, light and dark steps.
var palette = []struct{ light, dark string }{
	{"#2a78d6", "#3987e5"}, // blue
	{"#eb6834", "#d95926"}, // orange
	{"#1baf7a", "#199e70"}, // aqua
	{"#eda100", "#c98500"}, // yellow
	{"#e87ba4", "#d55181"}, // magenta
}

func c1(v float64) string { return fmt.Sprintf("%.1f", v) }

// svgStyle emits the chart's CSS: ink/surface/series tokens for both
// color schemes. Text wears ink tokens; only marks wear series colors.
func svgStyle(slots []int) string {
	var sb strings.Builder
	sb.WriteString("<style>\n")
	sb.WriteString("  svg{color-scheme:light dark;font-family:system-ui,-apple-system,\"Segoe UI\",sans-serif}\n")
	sb.WriteString("  .surface{fill:#fcfcfb}.ink{fill:#0b0b0b}.ink2{fill:#52514e}.muted{fill:#898781}\n")
	sb.WriteString("  .grid{stroke:#e1e0d9}.axis{stroke:#c3c2b7}\n")
	for _, s := range slots {
		fmt.Fprintf(&sb, "  .s%d{fill:%s}\n", s, palette[s].light)
	}
	sb.WriteString("  @media (prefers-color-scheme:dark){\n")
	sb.WriteString("    .surface{fill:#1a1a19}.ink{fill:#ffffff}.ink2{fill:#c3c2b7}\n")
	sb.WriteString("    .grid{stroke:#2c2c2a}.axis{stroke:#383835}\n")
	for _, s := range slots {
		fmt.Fprintf(&sb, "    .s%d{fill:%s}\n", s, palette[s].dark)
	}
	sb.WriteString("  }\n</style>\n")
	return sb.String()
}

// niceMax rounds v up to a tidy axis maximum.
func niceMax(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.2, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10} {
		if m*mag >= v {
			return m * mag
		}
	}
	return 10 * mag
}

// groupedBars renders a grouped bar chart: one group per label, one bar
// per series inside each group.
func groupedBars(title, yLabel string, groups []string, series []svgSeries) []byte {
	const (
		barW     = 9
		barGap   = 2 // surface gap between adjacent bars
		groupGap = 16
		plotH    = 190
		marginL  = 44
		marginR  = 12
		marginT  = 56 // title + legend
		marginB  = 30
	)
	groupW := len(series)*(barW+barGap) - barGap
	plotW := len(groups)*(groupW+groupGap) + groupGap
	w := marginL + plotW + marginR
	h := marginT + plotH + marginB

	var ymax float64
	for _, s := range series {
		for _, b := range s.vals {
			if b.Value > ymax {
				ymax = b.Value
			}
		}
	}
	ymax = niceMax(ymax)
	y := func(v float64) float64 { return float64(marginT+plotH) - v/ymax*plotH }

	slotSet := map[int]bool{}
	var slots []int
	for _, s := range series {
		if !slotSet[s.slot] {
			slotSet[s.slot] = true
			slots = append(slots, s.slot)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"%s\">\n",
		w, h, w, h, xmlEscape(title))
	sb.WriteString(svgStyle(slots))
	fmt.Fprintf(&sb, "<rect class=\"surface\" width=\"%d\" height=\"%d\"/>\n", w, h)
	fmt.Fprintf(&sb, "<text class=\"ink\" x=\"%d\" y=\"16\" font-size=\"12\" font-weight=\"600\">%s</text>\n", marginL, xmlEscape(title))

	// Legend: one swatch per series (tint rendered as in the plot).
	lx := marginL
	for _, s := range series {
		op := ""
		if s.tint {
			op = " fill-opacity=\"0.35\""
		}
		fmt.Fprintf(&sb, "<rect class=\"s%d\"%s x=\"%d\" y=\"26\" width=\"9\" height=\"9\" rx=\"2\"/>\n", s.slot, op, lx)
		fmt.Fprintf(&sb, "<text class=\"ink2\" x=\"%d\" y=\"34\" font-size=\"10\">%s</text>\n", lx+13, xmlEscape(s.label))
		lx += 13 + 7*len(s.label) + 14
	}

	// Grid + y axis ticks at quarters.
	for i := 0; i <= 4; i++ {
		v := ymax * float64(i) / 4
		yy := y(v)
		fmt.Fprintf(&sb, "<line class=\"grid\" x1=\"%d\" y1=\"%s\" x2=\"%d\" y2=\"%s\" stroke-width=\"1\"/>\n",
			marginL, c1(yy), marginL+plotW, c1(yy))
		fmt.Fprintf(&sb, "<text class=\"muted\" x=\"%d\" y=\"%s\" font-size=\"9\" text-anchor=\"end\">%s</text>\n",
			marginL-6, c1(yy+3), c1(v))
	}
	if yLabel != "" {
		fmt.Fprintf(&sb, "<text class=\"ink2\" x=\"%d\" y=\"%d\" font-size=\"9\" transform=\"rotate(-90 12 %d)\" text-anchor=\"middle\">%s</text>\n",
			12, marginT+plotH/2, marginT+plotH/2, xmlEscape(yLabel))
	}

	// Bars.
	for gi, g := range groups {
		gx := marginL + groupGap + gi*(groupW+groupGap)
		for si, s := range series {
			b := s.vals[gi]
			x := gx + si*(barW+barGap)
			top := y(b.Value)
			op := ""
			if s.tint {
				op = " fill-opacity=\"0.35\""
			}
			fmt.Fprintf(&sb, "<rect class=\"s%d\"%s x=\"%d\" y=\"%s\" width=\"%d\" height=\"%s\" rx=\"2\"><title>%s · %s: %s</title></rect>\n",
				s.slot, op, x, c1(top), barW, c1(float64(marginT+plotH)-top),
				xmlEscape(g), xmlEscape(s.label), fbar(b))
			if b.LowerBound {
				fmt.Fprintf(&sb, "<text class=\"muted\" x=\"%s\" y=\"%s\" font-size=\"8\" text-anchor=\"middle\">≥</text>\n",
					c1(float64(x)+float64(barW)/2), c1(top-3))
			}
		}
		fmt.Fprintf(&sb, "<text class=\"ink2\" x=\"%s\" y=\"%d\" font-size=\"10\" text-anchor=\"middle\">%s</text>\n",
			c1(float64(gx)+float64(groupW)/2), marginT+plotH+16, xmlEscape(g))
	}
	// Baseline axis on top of the bars' feet.
	fmt.Fprintf(&sb, "<line class=\"axis\" x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke-width=\"1\"/>\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	sb.WriteString("</svg>\n")
	return []byte(sb.String())
}

// lineChart renders a single-series line over categorical x labels (no
// legend: the title names the series).
func lineChart(title, yLabel string, xs []string, ys []float64) []byte {
	const (
		stepW   = 74
		plotH   = 170
		marginL = 44
		marginR = 16
		marginT = 34
		marginB = 34
	)
	plotW := stepW * (len(xs) - 1)
	w := marginL + plotW + marginR
	h := marginT + plotH + marginB

	var ymax float64
	for _, v := range ys {
		if v > ymax {
			ymax = v
		}
	}
	ymax = niceMax(ymax)
	y := func(v float64) float64 { return float64(marginT+plotH) - v/ymax*plotH }
	x := func(i int) float64 { return float64(marginL + i*stepW) }

	var sb strings.Builder
	fmt.Fprintf(&sb, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"%s\">\n",
		w, h, w, h, xmlEscape(title))
	sb.WriteString(svgStyle([]int{0}))
	fmt.Fprintf(&sb, "<rect class=\"surface\" width=\"%d\" height=\"%d\"/>\n", w, h)
	fmt.Fprintf(&sb, "<text class=\"ink\" x=\"%d\" y=\"16\" font-size=\"12\" font-weight=\"600\">%s</text>\n", marginL, xmlEscape(title))
	for i := 0; i <= 4; i++ {
		v := ymax * float64(i) / 4
		yy := y(v)
		fmt.Fprintf(&sb, "<line class=\"grid\" x1=\"%d\" y1=\"%s\" x2=\"%d\" y2=\"%s\" stroke-width=\"1\"/>\n",
			marginL, c1(yy), marginL+plotW, c1(yy))
		fmt.Fprintf(&sb, "<text class=\"muted\" x=\"%d\" y=\"%s\" font-size=\"9\" text-anchor=\"end\">%s</text>\n",
			marginL-6, c1(yy+3), c1(v))
	}
	if yLabel != "" {
		fmt.Fprintf(&sb, "<text class=\"ink2\" x=\"12\" y=\"%d\" font-size=\"9\" transform=\"rotate(-90 12 %d)\" text-anchor=\"middle\">%s</text>\n",
			marginT+plotH/2, marginT+plotH/2, xmlEscape(yLabel))
	}
	var pts []string
	for i, v := range ys {
		pts = append(pts, c1(x(i))+","+c1(y(v)))
	}
	// The polyline wears the series color via stroke; class fill is
	// reused for the markers.
	fmt.Fprintf(&sb, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n",
		strings.Join(pts, " "), palette[0].light)
	for i, v := range ys {
		fmt.Fprintf(&sb, "<circle class=\"s0\" cx=\"%s\" cy=\"%s\" r=\"4\"><title>%s: %s</title></circle>\n",
			c1(x(i)), c1(y(v)), xmlEscape(xs[i]), f2(v))
		fmt.Fprintf(&sb, "<text class=\"ink2\" x=\"%s\" y=\"%d\" font-size=\"10\" text-anchor=\"middle\">%s</text>\n",
			c1(x(i)), marginT+plotH+16, xmlEscape(xs[i]))
		fmt.Fprintf(&sb, "<text class=\"ink2\" x=\"%s\" y=\"%s\" font-size=\"9\" text-anchor=\"middle\">%s</text>\n",
			c1(x(i)), c1(y(v)-8), f2(v))
	}
	fmt.Fprintf(&sb, "<line class=\"axis\" x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke-width=\"1\"/>\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	sb.WriteString("</svg>\n")
	return []byte(sb.String())
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", "\"", "&quot;")
	return r.Replace(s)
}

// figures renders every SVG the document references, keyed by base name.
func (r *Report) figures() map[string][]byte {
	out := map[string][]byte{}
	for _, s := range []*ExecEnergySection{r.Fig9, r.Fig15} {
		if s == nil {
			continue
		}
		out[s.Exp+"-time.svg"] = execEnergySVG(s, s.Time, s.GmeanTime,
			fmt.Sprintf("%s: execution time on %s (normalized to LRR)", s.Exp, s.GPU))
		out[s.Exp+"-energy.svg"] = execEnergySVG(s, s.Energy, s.GmeanEnergy,
			fmt.Sprintf("%s: dynamic energy on %s (normalized to LRR)", s.Exp, s.GPU))
	}
	if s := r.Delay; s != nil {
		out["delaysweep-time.svg"] = lineChart(
			"Delay-limit sweep: gmean execution time (GTO = 1)",
			"normalized time", s.Columns, s.GmeanTime)
	}
	if s := r.Fig14; s != nil {
		groups := append(append([]string{}, s.Kernels...), "gmean")
		xor := svgSeries{label: "XOR+BOWS(5000)", slot: 0}
		mod := svgSeries{label: "MODULO+BOWS(5000)", slot: 1}
		for _, k := range s.Kernels {
			xor.vals = append(xor.vals, s.XOR[k])
			mod.vals = append(mod.vals, s.MOD[k])
		}
		xor.vals = append(xor.vals, Bar{Value: s.GmeanXOR})
		mod.vals = append(mod.vals, Bar{Value: s.GmeanMOD})
		out["fig14.svg"] = groupedBars("fig14: detection-error overhead (GTO = 1)",
			"normalized time", groups, []svgSeries{xor, mod})
	}
	if s := r.Wasp; s != nil {
		out["wasp-time.svg"] = waspSVG(s, s.Time, s.GmeanTime,
			fmt.Sprintf("WaSP head-to-head: execution time on %s (normalized to GTO)", s.GPU))
		out["wasp-energy.svg"] = waspSVG(s, s.Energy, s.GmeanEnergy,
			fmt.Sprintf("WaSP head-to-head: dynamic energy on %s (normalized to GTO)", s.GPU))
	}
	if s := r.Ablation; s != nil {
		groups := append(append([]string{}, s.Kernels...), "gmean")
		var series []svgSeries
		for ci, col := range s.Columns {
			sv := svgSeries{label: col, slot: ci % len(palette)}
			for _, k := range s.Kernels {
				sv.vals = append(sv.vals, s.Time[k][ci])
			}
			sv.vals = append(sv.vals, Bar{Value: s.Gmean[ci]})
			series = append(series, sv)
		}
		out["ablation.svg"] = groupedBars("Ablation: BOWS components (GTO = 1)",
			"normalized time", groups, series)
	}
	return out
}

// waspSVG renders one WaSP head-to-head panel: per-kernel groups plus a
// gmean group, one hue per scheduler with the baseline member of each
// baseline/+BOWS pair tinted (the Figure 9 treatment, anchored at GTO).
func waspSVG(s *WaspSection, data map[string][]Bar, gmean []float64, title string) []byte {
	groups := append(append([]string{}, s.Kernels...), "gmean")
	var series []svgSeries
	for ci, col := range s.Columns {
		sv := svgSeries{label: col, slot: ci / 2, tint: ci%2 == 0}
		for _, k := range s.Kernels {
			sv.vals = append(sv.vals, data[k][ci])
		}
		sv.vals = append(sv.vals, Bar{Value: gmean[ci]})
		series = append(series, sv)
	}
	return groupedBars(title, "normalized to GTO", groups, series)
}

// execEnergySVG renders one Figure 9/15 panel: per-kernel groups plus a
// gmean group, scheduler hue carried by the pair, baseline tinted and
// +BOWS solid.
func execEnergySVG(s *ExecEnergySection, data map[string][]Bar, gmean []float64, title string) []byte {
	groups := append(append([]string{}, s.Kernels...), "gmean")
	var series []svgSeries
	for ci, col := range s.Columns {
		sv := svgSeries{label: col, slot: ci / 2, tint: ci%2 == 0}
		for _, k := range s.Kernels {
			sv.vals = append(sv.vals, data[k][ci])
		}
		sv.vals = append(sv.vals, Bar{Value: gmean[ci]})
		series = append(series, sv)
	}
	return groupedBars(title, "normalized to LRR", groups, series)
}
