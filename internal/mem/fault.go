package mem

import (
	"fmt"

	"warpsched/internal/isa"
)

// AddrFault describes a functional access outside the memory image. The
// memory system panics with an *AddrFault instead of a bare string so the
// engine can recover it into a structured, context-carrying error that
// propagates to the run record (instead of killing the whole process, or
// in a parallel sweep, every run sharing it).
type AddrFault struct {
	// Addr is the offending word address; Size the memory image capacity.
	Addr uint32
	Size int
	// The remaining fields locate the access when the fault occurred while
	// servicing a warp transaction (HasCtx); functional Read/Write faults
	// from outside the timed pipeline carry no context.
	HasCtx   bool
	SM       int
	WarpSlot int
	Op       isa.Op
}

func (f *AddrFault) Error() string {
	if f.HasCtx {
		return fmt.Sprintf("mem: address %d out of range (size %d words) servicing %v from sm%d/w%d",
			f.Addr, f.Size, f.Op, f.SM, f.WarpSlot)
	}
	return fmt.Sprintf("mem: address %d out of range (size %d words)", f.Addr, f.Size)
}
