package mem

import (
	"testing"
	"testing/quick"

	"warpsched/internal/config"
	"warpsched/internal/isa"
	"warpsched/internal/stats"
)

func testMemCfg() config.Memory {
	return config.Memory{
		L1KB: 16, L1Assoc: 4, L1HitLat: 8, L1MSHRs: 8,
		L2KB: 64, L2Assoc: 8, L2Lat: 20, L2Banks: 2,
		DRAMLat: 50, DRAMBw: 2, AtomLat: 4, AtomCost: 1,
		LSQDepth: 16, MaxPerWarp: 2,
	}
}

func newTestSystem(words int) *System {
	return NewSystem(testMemCfg(), 2, 8, words)
}

// runUntil ticks the system until the condition holds or maxCycles pass.
func runUntil(t *testing.T, s *System, cond func() bool, maxCycles int64) int64 {
	t.Helper()
	for c := int64(0); c < maxCycles; c++ {
		s.Tick(c)
		if cond() {
			return c
		}
	}
	t.Fatalf("condition not reached in %d cycles", maxCycles)
	return 0
}

func TestLoadReturnsStoredData(t *testing.T) {
	s := newTestSystem(1024)
	s.Write(100, 42)
	done := false
	req := &Request{
		SM: 0, WarpSlot: 0, Op: isa.OpLd,
		Accesses: []Access{{Lane: 0, Addr: 100}},
		Done:     func(*Request) { done = true },
	}
	s.Port(0).Enqueue(req)
	lat := runUntil(t, s, func() bool { return done }, 1000)
	if req.Accesses[0].Result != 42 {
		t.Fatalf("load result = %d, want 42", req.Accesses[0].Result)
	}
	// A cold load must cost at least L2 latency.
	if lat < testMemCfg().L2Lat {
		t.Fatalf("cold load completed in %d cycles, faster than L2", lat)
	}
}

func TestL1HitIsFasterAndReturnsData(t *testing.T) {
	s := newTestSystem(1024)
	s.Write(64, 7)
	load := func() (int64, uint32) {
		done := false
		req := &Request{
			SM: 0, Op: isa.OpLd,
			Accesses: []Access{{Lane: 0, Addr: 64}},
			Done:     func(*Request) { done = true },
		}
		start := int64(0)
		s.Port(0).Enqueue(req)
		var c int64
		for c = start; !done && c-start < 1000; c++ {
			s.Tick(c)
		}
		return c - start, req.Accesses[0].Result
	}
	cold, v1 := load()
	warm, v2 := load()
	if v1 != 7 || v2 != 7 {
		t.Fatalf("load values %d %d, want 7", v1, v2)
	}
	if warm >= cold {
		t.Fatalf("L1 hit (%d cycles) not faster than cold miss (%d)", warm, cold)
	}
	if got := s.Stats(0).L1Hits; got != 1 {
		t.Fatalf("L1 hits = %d, want 1", got)
	}
}

func TestVolatileLoadBypassesL1(t *testing.T) {
	s := newTestSystem(1024)
	s.Write(64, 1)
	run := func(vol bool) uint32 {
		done := false
		req := &Request{
			SM: 0, Op: isa.OpLd, Vol: vol,
			Accesses: []Access{{Lane: 0, Addr: 64}},
			Done:     func(*Request) { done = true },
		}
		s.Port(0).Enqueue(req)
		runUntil(t, s, func() bool { return done }, 1000)
		return req.Accesses[0].Result
	}
	run(false) // warm L1 on SM 0
	// Another SM's store goes straight to L2 — SM 0's L1 is now stale.
	doneSt := false
	st := &Request{
		SM: 1, Op: isa.OpSt,
		Accesses: []Access{{Lane: 0, Addr: 64, V1: 99}},
		Done:     func(*Request) { doneSt = true },
	}
	s.Port(1).Enqueue(st)
	runUntil(t, s, func() bool { return doneSt }, 1000)
	if got := run(true); got != 99 {
		t.Fatalf("volatile load = %d, want fresh 99", got)
	}
	if hits := s.Stats(0).L1Hits; hits != 0 {
		t.Fatalf("volatile load must not hit L1 (hits=%d)", hits)
	}
}

func TestStoreInvalidatesLocalL1(t *testing.T) {
	s := newTestSystem(1024)
	s.Write(64, 1)
	done := false
	ld := &Request{SM: 0, Op: isa.OpLd,
		Accesses: []Access{{Lane: 0, Addr: 64}},
		Done:     func(*Request) { done = true }}
	s.Port(0).Enqueue(ld)
	runUntil(t, s, func() bool { return done }, 1000)

	done = false
	st := &Request{SM: 0, Op: isa.OpSt,
		Accesses: []Access{{Lane: 0, Addr: 64, V1: 5}},
		Done:     func(*Request) { done = true }}
	s.Port(0).Enqueue(st)
	runUntil(t, s, func() bool { return done }, 1000)
	if s.Read(64) != 5 {
		t.Fatalf("store did not commit: %d", s.Read(64))
	}

	done = false
	ld2 := &Request{SM: 0, Op: isa.OpLd,
		Accesses: []Access{{Lane: 0, Addr: 64}},
		Done:     func(*Request) { done = true }}
	s.Port(0).Enqueue(ld2)
	runUntil(t, s, func() bool { return done }, 1000)
	if ld2.Accesses[0].Result != 5 {
		t.Fatalf("post-store load = %d, want 5 (write-evict violated)", ld2.Accesses[0].Result)
	}
}

func TestCoalescing(t *testing.T) {
	accs := make([]Access, 32)
	for i := range accs {
		accs[i] = Access{Lane: i, Addr: uint32(i)} // one line
	}
	if got := Coalesce(accs); got != 1 {
		t.Fatalf("fully coalesced = %d segments, want 1", got)
	}
	for i := range accs {
		accs[i].Addr = uint32(i * isa.LineWords) // one line each
	}
	if got := Coalesce(accs); got != 32 {
		t.Fatalf("fully diverged = %d segments, want 32", got)
	}
}

func TestAtomicCASLaneOrderAndSerialization(t *testing.T) {
	// All 32 lanes CAS the same lock word: exactly the lowest lane wins.
	s := newTestSystem(1024)
	accs := make([]Access, 32)
	for i := range accs {
		accs[i] = Access{Lane: i, Addr: 512, V1: 0, V2: uint32(100 + i), GTID: int32(i)}
	}
	done := false
	req := &Request{SM: 0, Op: isa.OpAtomCAS, Ann: isa.AnnLockAcquire,
		Accesses: accs, Done: func(*Request) { done = true }}
	var ev stats.SyncEvents
	s.AttachSync(0, &ev)
	s.Port(0).Enqueue(req)
	runUntil(t, s, func() bool { return done }, 1000)
	if s.Read(512) != 100 {
		t.Fatalf("lock word = %d, want lane 0's swap 100", s.Read(512))
	}
	for i, a := range req.Accesses {
		want := uint32(0)
		if i > 0 {
			want = 100 // later lanes observe lane 0's value
		}
		if a.Result != want {
			t.Fatalf("lane %d old = %d, want %d", i, a.Result, want)
		}
	}
	if ev.LockSuccess != 1 || ev.IntraWarpFail != 31 || ev.InterWarpFail != 0 {
		t.Fatalf("classification = %+v, want 1 success, 31 intra-warp fails", ev)
	}
	if s.LockOwner(512) != 0 {
		t.Fatalf("lock owner = %d, want 0", s.LockOwner(512))
	}
}

func TestInterWarpFailClassification(t *testing.T) {
	s := newTestSystem(1024)
	var ev0, ev1 stats.SyncEvents
	s.AttachSync(0, &ev0)
	s.AttachSync(1, &ev1)
	acquire := func(sm int, gtid int32) {
		done := false
		req := &Request{SM: sm, Op: isa.OpAtomCAS, Ann: isa.AnnLockAcquire,
			Accesses: []Access{{Lane: 0, Addr: 512, V1: 0, V2: 1, GTID: gtid}},
			Done:     func(*Request) { done = true }}
		s.Port(sm).Enqueue(req)
		runUntil(t, s, func() bool { return done }, 1000)
	}
	acquire(0, 0)  // wins
	acquire(1, 64) // different warp (gtid 64/32 = warp 2) → inter-warp fail
	if ev0.LockSuccess != 1 {
		t.Fatalf("first acquire should succeed: %+v", ev0)
	}
	if ev1.InterWarpFail != 1 || ev1.IntraWarpFail != 0 {
		t.Fatalf("second acquire should inter-warp fail: %+v", ev1)
	}
}

func TestAtomicExchReleaseClearsOwner(t *testing.T) {
	s := newTestSystem(1024)
	var ev stats.SyncEvents
	s.AttachSync(0, &ev)
	do := func(op isa.Op, ann isa.Ann, v1 uint32) {
		done := false
		req := &Request{SM: 0, Op: op, Ann: ann,
			Accesses: []Access{{Lane: 0, Addr: 512, V1: v1, V2: 1, GTID: 5}},
			Done:     func(*Request) { done = true }}
		s.Port(0).Enqueue(req)
		runUntil(t, s, func() bool { return done }, 1000)
	}
	do(isa.OpAtomCAS, isa.AnnLockAcquire, 0)
	if s.LockOwner(512) != 5 {
		t.Fatalf("owner = %d", s.LockOwner(512))
	}
	do(isa.OpAtomExch, isa.AnnLockRelease, 0)
	if s.LockOwner(512) != -1 {
		t.Fatalf("owner after release = %d, want -1", s.LockOwner(512))
	}
	if ev.LockRelease != 1 {
		t.Fatalf("releases = %d", ev.LockRelease)
	}
}

func TestAtomicAddAndMax(t *testing.T) {
	s := newTestSystem(1024)
	do := func(op isa.Op, v1 uint32) uint32 {
		done := false
		req := &Request{SM: 0, Op: op,
			Accesses: []Access{{Lane: 0, Addr: 700, V1: v1}},
			Done:     func(*Request) { done = true }}
		s.Port(0).Enqueue(req)
		runUntil(t, s, func() bool { return done }, 1000)
		return req.Accesses[0].Result
	}
	if old := do(isa.OpAtomAdd, 5); old != 0 {
		t.Fatalf("atomAdd old = %d", old)
	}
	if s.Read(700) != 5 {
		t.Fatalf("after add: %d", s.Read(700))
	}
	do(isa.OpAtomMax, 3) // 3 < 5: unchanged
	if s.Read(700) != 5 {
		t.Fatalf("max(5,3) = %d", s.Read(700))
	}
	do(isa.OpAtomMax, 9)
	if s.Read(700) != 9 {
		t.Fatalf("max(5,9) = %d", s.Read(700))
	}
}

func TestOutstandingAndQuiescent(t *testing.T) {
	s := newTestSystem(1024)
	if !s.Quiescent() {
		t.Fatal("fresh system should be quiescent")
	}
	done := false
	req := &Request{SM: 0, WarpSlot: 3, Op: isa.OpLd,
		Accesses: []Access{{Lane: 0, Addr: 0}},
		Done:     func(*Request) { done = true }}
	s.Port(0).Enqueue(req)
	if s.Port(0).Outstanding(3) != 1 {
		t.Fatal("outstanding not tracked")
	}
	if s.Quiescent() {
		t.Fatal("system with in-flight load cannot be quiescent")
	}
	runUntil(t, s, func() bool { return done }, 1000)
	if s.Port(0).Outstanding(3) != 0 {
		t.Fatal("outstanding not cleared")
	}
	if !s.Quiescent() {
		t.Fatal("drained system should be quiescent")
	}
}

func TestEmptyRequestCompletesImmediately(t *testing.T) {
	s := newTestSystem(64)
	done := false
	s.Port(0).Enqueue(&Request{SM: 0, Op: isa.OpLd, Done: func(*Request) { done = true }})
	if !done {
		t.Fatal("fully predicated-off request must complete at enqueue")
	}
}

// TestCacheVsReferenceModel property-checks the tag array against a map-
// based reference for an arbitrary access stream.
func TestCacheVsReferenceModel(t *testing.T) {
	f := func(lines []uint16) bool {
		c := newCache(4, 2) // 4 KB, 2-way: 32 lines, 16 sets
		type entry struct {
			line  uint32
			stamp int
		}
		ref := make(map[int][]entry) // set -> entries (≤ assoc)
		stamp := 0
		for _, l16 := range lines {
			line := uint32(l16 % 64)
			set := int(line) % 16
			stamp++
			// reference lookup
			refHit := false
			for i := range ref[set] {
				if ref[set][i].line == line {
					refHit = true
					ref[set][i].stamp = stamp
				}
			}
			hit := c.Lookup(line)
			if hit != refHit {
				return false
			}
			if !hit {
				c.Fill(line)
				es := ref[set]
				if len(es) < 2 {
					es = append(es, entry{line, stamp})
				} else {
					v := 0
					if es[1].stamp < es[0].stamp {
						v = 1
					}
					es[v] = entry{line, stamp}
				}
				ref[set] = es
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newCache(4, 2)
	c.Fill(5)
	if !c.Contains(5) {
		t.Fatal("fill failed")
	}
	c.Invalidate(5)
	if c.Contains(5) {
		t.Fatal("invalidate failed")
	}
	c.Invalidate(5) // idempotent
}

func TestMSHRMergesSameLine(t *testing.T) {
	s := newTestSystem(1024)
	var completions int
	mk := func() *Request {
		return &Request{SM: 0, Op: isa.OpLd,
			Accesses: []Access{{Lane: 0, Addr: 32}},
			Done:     func(*Request) { completions++ }}
	}
	s.Port(0).Enqueue(mk())
	s.Port(0).Enqueue(mk())
	runUntil(t, s, func() bool { return completions == 2 }, 1000)
	// Only one L2 access should have been made for the shared line.
	if got := s.Stats(0).L2Accesses; got != 1 {
		t.Fatalf("L2 accesses = %d, want 1 (MSHR merge)", got)
	}
}

func TestQueueLockBlocksAndGrantsFIFO(t *testing.T) {
	cfg := testMemCfg()
	cfg.QueueLocks = true
	s := NewSystem(cfg, 2, 8, 1024)
	var ev stats.SyncEvents
	s.AttachSync(0, &ev)
	s.AttachSync(1, &ev)

	results := make([]int, 3) // completion order markers
	orderN := 0
	acquire := func(sm int, gtid int32, idx int) *Request {
		req := &Request{SM: sm, Op: isa.OpAtomCAS, Ann: isa.AnnLockAcquire,
			Accesses: []Access{{Lane: 0, Addr: 512, V1: 0, V2: 1, GTID: gtid}},
			Done: func(*Request) {
				orderN++
				results[idx] = orderN
			}}
		s.Port(sm).Enqueue(req)
		return req
	}
	// First acquire wins immediately.
	a0 := acquire(0, 0, 0)
	runUntil(t, s, func() bool { return results[0] != 0 }, 1000)
	if a0.Accesses[0].Result != 0 {
		t.Fatal("first acquire should succeed")
	}
	// Two more acquires park (no failure, no completion).
	a1 := acquire(0, 32, 1)
	a2 := acquire(1, 64, 2)
	for c := int64(1000); c < 2000; c++ {
		s.Tick(c)
	}
	if results[1] != 0 || results[2] != 0 {
		t.Fatal("parked acquires must not complete before release")
	}
	if ev.InterWarpFail != 0 && ev.IntraWarpFail != 0 {
		t.Fatal("queue locks must not record failures")
	}
	if s.Quiescent() {
		t.Fatal("parked lanes must keep the system non-quiescent")
	}
	// Release: the oldest waiter (a1) is granted, then a2 on re-release.
	rel := func(sm int) {
		done := false
		req := &Request{SM: sm, Op: isa.OpAtomExch, Ann: isa.AnnLockRelease,
			Accesses: []Access{{Lane: 0, Addr: 512, V1: 0}},
			Done:     func(*Request) { done = true }}
		s.Port(sm).Enqueue(req)
		runUntil(t, s, func() bool { return done }, 2000)
	}
	rel(0)
	runUntil(t, s, func() bool { return results[1] != 0 }, 2000)
	if results[2] != 0 {
		t.Fatal("second waiter granted out of order")
	}
	if a1.Accesses[0].Result != 0 {
		t.Fatal("granted CAS must observe the free lock")
	}
	if s.LockOwner(512) != 32 {
		t.Fatalf("owner = %d, want 32", s.LockOwner(512))
	}
	rel(0)
	runUntil(t, s, func() bool { return results[2] != 0 }, 2000)
	if a2.Accesses[0].Result != 0 {
		t.Fatal("second grant must also succeed")
	}
	if ev.LockSuccess != 3 {
		t.Fatalf("successes = %d, want 3", ev.LockSuccess)
	}
}
