// Package mem models the GPU memory hierarchy the paper's effects depend
// on: per-SM L1 data caches (write-evict, no write-allocate), a shared
// banked L2, a DRAM bandwidth/latency model, a warp-level coalescer
// producing 128-byte segment transactions, and an L2 atomic unit that
// serializes read-modify-write operations per cache line — the reason
// failed lock-acquire retries consume memory bandwidth (paper §II).
//
// The package is also the functional memory: transactions commit their
// loads, stores and atomics against the word store at service time, so
// inter-warp interleaving of atomics follows simulated time. Lock
// ownership is tracked for annotated acquire/release operations to
// classify failed acquires as intra- vs inter-warp (Fig. 2).
package mem

import (
	"math"

	"warpsched/internal/config"
	"warpsched/internal/isa"
	"warpsched/internal/metrics"
	"warpsched/internal/stats"
)

// Access is one lane's memory access within a warp instruction.
type Access struct {
	Lane int
	Addr uint32
	// V1 is the store value / atomic operand (CAS compare).
	V1 uint32
	// V2 is the CAS swap value.
	V2 uint32
	// Result receives the loaded / atomic-returned value.
	Result uint32
	// GTID is the lane's global thread id (for lock-owner tracking).
	GTID int32
}

// Request is one warp memory instruction in flight.
type Request struct {
	SM       int
	WarpSlot int
	Op       isa.Op
	Ann      isa.Ann
	// Vol marks a volatile (L1-bypassing) load.
	Vol      bool
	Accesses []Access
	// Done is invoked exactly once when every segment has been serviced;
	// Accesses[i].Result fields are valid by then. The memory system never
	// touches the request after Done returns, so pooling callers may
	// recycle it there.
	Done func(*Request)
	// Dst, WritesReg and Owner carry the issuing core's register-writeback
	// state. They are opaque to the memory system; they exist so a single
	// long-lived Done function can service every request without a
	// per-request closure.
	Dst       isa.Reg
	WritesReg bool
	Owner     any

	remaining int
	// Queue-lock bookkeeping (QueueLocks mode): a request either acquires
	// locks (and never parks) or parks exactly one lane (and never
	// holds) — any other combination could block a warp while it holds a
	// lock and deadlock the queues, the races HQL papers over with NACKs.
	qlAcquired bool
	qlParked   bool
}

// segment is one coalesced 128-byte transaction.
type segment struct {
	req   *Request
	line  uint32
	lanes []int // indexes into req.Accesses
	// parked counts lanes waiting in a lock queue (QueueLocks mode);
	// the segment completes only when every parked lane is granted.
	parked int
}

// evKind tags a scheduled completion. Events carry a kind and a segment
// instead of a closure so that scheduling is allocation-free on the
// simulated hot path.
type evKind uint8

const (
	evFinish   evKind = iota // finish(seg)
	evL1Hit                  // applyLoads(seg); finish(seg)
	evDRAMDone               // dramDone(seg)
	evLoadFill               // loadFilled(seg)
	evVolFill                // volFilled(seg)
)

// event is a scheduled completion, ordered by (at, seq).
type event struct {
	at   int64
	seq  int64
	kind evKind
	seg  *segment
}

// eventHeap is a hand-rolled binary min-heap. container/heap is avoided
// because its any-typed interface boxes every event on Push.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// popRoot removes the minimum event. The caller must have checked len>0.
func (h *eventHeap) popRoot() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the segment pointer
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

func (h eventHeap) Peek() (int64, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// System is the shared memory system: functional store, L2, DRAM, atomic
// unit, and one port per SM.
type System struct {
	cfg   config.Memory
	words []uint32
	ports []*Port

	l2        *cache
	l2Queue   []*segment
	dramQueue []*segment
	events    eventHeap
	seq       int64
	cycle     int64

	// atomBusy serializes atomics per line at the L2 atomic unit.
	atomBusy map[uint32]int64
	// arbLFSR drives the rotating L2 service arbitration (see Tick).
	arbLFSR uint32
	// l2Tokens throttles L2 bank throughput: a plain access costs one
	// token, an atomic costs AtomLat tokens (the read-modify-write
	// occupies the bank's atomic ALU), so spin-loop CAS spam steals
	// bandwidth from all other traffic — the paper's §II observation.
	l2Tokens int64
	// l2StuckUntil caches the result of a service scan that NACKed every
	// queued segment: each was an atomic whose line stays busy until at
	// least this cycle (exclusive). Until then — provided nothing new is
	// enqueued (pushL2 clears it) — every scan is byte-for-byte the same
	// retry storm, so Tick replays the recorded per-SM retry counts in
	// l2StuckRetries instead of re-walking the queue. Lock-retry storms
	// (dozens of CASes parked on one line) otherwise make the scan O(queue)
	// per cycle; this makes those cycles O(SMs) with identical statistics.
	l2StuckUntil   int64
	l2StuckRetries []int64

	// lockOwner maps a lock word address to the global thread id of the
	// current holder (annotated acquires/releases only).
	lockOwner map[uint32]int32
	// lockQueues holds parked acquires per lock word (QueueLocks mode).
	lockQueues map[uint32][]lockWaiter
	// warpHolds counts tracked locks held per global warp id: a warp
	// that holds a lock is never parked (it gets a NACK-style failure
	// and retries), because parking blocks the whole warp and a blocked
	// holder would deadlock the queue — the race HQL resolves with
	// negative acknowledgements.
	warpHolds map[int32]int

	// inj, when non-nil, perturbs completion timing and the atomic unit
	// (see faultinject.go). Nil on every normal run: the hot path pays one
	// pointer test per scheduled event.
	inj *faultInjector
	// curSeg is the segment whose accesses are being applied, so an
	// address fault can name the SM, warp and operation it was servicing.
	curSeg *segment
}

// lockWaiter is one parked lock acquire: the segment and the index of
// the waiting lane within its request.
type lockWaiter struct {
	seg *segment
	li  int
}

// Port is an SM's private memory-side interface: L1 cache, load/store
// queue and MSHRs.
type Port struct {
	sys *System
	sm  int
	l1  *cache

	lsq []*segment // segments awaiting injection, FIFO
	// mshr maps line -> segments merged on an outstanding miss.
	mshr map[uint32][]*segment
	// outstanding counts in-flight memory instructions per warp slot
	// (for membar draining and per-warp issue limits).
	outstanding []int
	// segScratch is Enqueue's coalescing scratch (reused per call).
	segScratch []*segment
	// segFree pools retired segments (and their lane-index backing
	// arrays): the steady-state simulated cycle allocates nothing. The
	// pool is per-port rather than system-wide so Enqueue — which runs in
	// the engine's (possibly sharded) SM phase — touches only this SM's
	// state; finish returns segments here from the serial memory phase.
	segFree []*segment

	stats *stats.Mem
	// sync receives lock-acquire outcome classifications (Fig. 2); set
	// via AttachSync.
	sync *stats.SyncEvents
}

// AttachSync points SM sm's port at the engine's synchronization-event
// counters so the atomic unit can classify acquire outcomes at service
// time (when the lock-owner table is current).
func (s *System) AttachSync(sm int, ev *stats.SyncEvents) { s.ports[sm].sync = ev }

// NewSystem creates the memory system with the given word capacity.
func NewSystem(cfg config.Memory, numSMs, warpsPerSM int, sizeWords int) *System {
	s := &System{
		cfg:        cfg,
		words:      make([]uint32, sizeWords),
		l2:         newCache(cfg.L2KB, cfg.L2Assoc),
		atomBusy:   make(map[uint32]int64),
		lockOwner:  make(map[uint32]int32),
		lockQueues: make(map[uint32][]lockWaiter),
		warpHolds:  make(map[int32]int),
	}
	s.ports = make([]*Port, numSMs)
	for i := range s.ports {
		s.ports[i] = &Port{
			sys:         s,
			sm:          i,
			l1:          newCache(cfg.L1KB, cfg.L1Assoc),
			mshr:        make(map[uint32][]*segment),
			outstanding: make([]int, warpsPerSM),
			stats:       &stats.Mem{},
		}
	}
	return s
}

// Port returns SM sm's port.
func (s *System) Port(sm int) *Port { return s.ports[sm] }

// Size returns the functional store capacity in words.
func (s *System) Size() int { return len(s.words) }

// Read returns the word at addr (functional access, no timing).
func (s *System) Read(addr uint32) uint32 {
	s.check(addr)
	return s.words[addr]
}

// Write sets the word at addr (functional access, no timing).
func (s *System) Write(addr uint32, v uint32) {
	s.check(addr)
	s.words[addr] = v
}

// Words exposes the backing store for bulk kernel setup/verification.
func (s *System) Words() []uint32 { return s.words }

// check bounds-validates a functional access. An out-of-range address
// panics with a structured *AddrFault (carrying the servicing SM, warp
// and op when inside a transaction) that the engine recovers into a
// returned error — see sim.Engine.Run.
func (s *System) check(addr uint32) {
	if int(addr) >= len(s.words) {
		f := &AddrFault{Addr: addr, Size: len(s.words)}
		if seg := s.curSeg; seg != nil && seg.req != nil {
			f.HasCtx = true
			f.SM, f.WarpSlot, f.Op = seg.req.SM, seg.req.WarpSlot, seg.req.Op
		}
		panic(f)
	}
}

func (s *System) schedule(at int64, kind evKind, seg *segment) {
	if s.inj != nil {
		at += s.inj.delay()
	}
	s.seq++
	s.events.push(event{at: at, seq: s.seq, kind: kind, seg: seg})
}

func (s *System) dispatch(e event) {
	switch e.kind {
	case evFinish:
		s.finish(e.seg)
	case evL1Hit:
		s.applyLoads(e.seg)
		s.finish(e.seg)
	case evDRAMDone:
		s.dramDone(e.seg)
	case evLoadFill:
		s.loadFilled(e.seg)
	case evVolFill:
		s.volFilled(e.seg)
	}
}

// newSegment takes a segment from the port's pool (or allocates one) and
// initializes it for the request.
func (p *Port) newSegment(r *Request, line uint32) *segment {
	if n := len(p.segFree); n > 0 {
		seg := p.segFree[n-1]
		p.segFree[n-1] = nil
		p.segFree = p.segFree[:n-1]
		seg.req, seg.line, seg.lanes, seg.parked = r, line, seg.lanes[:0], 0
		return seg
	}
	return &segment{req: r, line: line, lanes: make([]int, 0, 8)}
}

// Stats returns the per-SM memory counters for SM sm.
func (s *System) Stats(sm int) *stats.Mem { return s.ports[sm].stats }

// RegisterMetrics registers SM sm's memory counters under prefix (e.g.
// "sm0.mem."). The counters are views of the live per-port stats.Mem
// fields, so registration adds no hot-path cost.
func (s *System) RegisterMetrics(r *metrics.Registry, sm int, prefix string) {
	p := s.ports[sm]
	st := p.stats
	r.Int64(prefix+"transactions", &st.Transactions)
	r.Int64(prefix+"sync_transactions", &st.SyncTransactions)
	r.Int64(prefix+"l1_accesses", &st.L1Accesses)
	r.Int64(prefix+"l1_hits", &st.L1Hits)
	r.Int64(prefix+"l2_accesses", &st.L2Accesses)
	r.Int64(prefix+"l2_hits", &st.L2Hits)
	r.Int64(prefix+"dram_accesses", &st.DRAMAccesses)
	r.Int64(prefix+"atomic_ops", &st.AtomicOps)
	r.Int64(prefix+"fence_ops", &st.FenceOps)
	r.Int64(prefix+"mshr_stalls", &st.MSHRStalls)
	r.Int64(prefix+"mshr_merges", &st.MSHRMerges)
	r.Int64(prefix+"atom_retries", &st.AtomRetries)
	r.Rate(prefix+"l1_hit_rate", &st.L1Hits, &st.L1Accesses)
	r.Rate(prefix+"l2_hit_rate", &st.L2Hits, &st.L2Accesses)
}

// LockOwner returns the tracked holder of the lock word at addr, or -1.
func (s *System) LockOwner(addr uint32) int32 {
	if o, ok := s.lockOwner[addr]; ok {
		return o
	}
	return -1
}

// --- port-side API used by the SM pipeline ---

// CanAccept reports whether the port can take another warp memory
// instruction (LSQ space for its segments).
func (p *Port) CanAccept(nSegments int) bool {
	return len(p.lsq)+nSegments <= p.sys.cfg.LSQDepth
}

// Outstanding returns in-flight memory instructions for a warp slot.
func (p *Port) Outstanding(warpSlot int) int { return p.outstanding[warpSlot] }

// LSQEmpty reports whether no segment awaits injection. While true and
// the SM issues nothing, CanAccept cannot flip, so port-side warp
// readiness can only change through a completion callback — the property
// the engine's SM dormancy optimization rests on.
func (p *Port) LSQEmpty() bool { return len(p.lsq) == 0 }

// Coalesce groups the request's lane accesses into 128-byte segments,
// returning the segment count without enqueuing (used for LSQ admission
// checks).
func Coalesce(accesses []Access) int {
	// A warp has at most 32 lanes, so a linear scan over the distinct
	// lines beats a map (and allocates nothing).
	var lines [32]uint32
	n := 0
scan:
	for i := range accesses {
		line := accesses[i].Addr / isa.LineWords
		for _, l := range lines[:n] {
			if l == line {
				continue scan
			}
		}
		lines[n] = line
		n++
	}
	return n
}

// Enqueue accepts a warp memory instruction. The caller must have checked
// CanAccept with the segment count from Coalesce.
func (p *Port) Enqueue(r *Request) {
	if len(r.Accesses) == 0 {
		// Fully predicated-off memory instruction: complete immediately.
		if r.Done != nil {
			r.Done(r)
		}
		return
	}
	// Pooled requests arrive with stale queue-lock state.
	r.qlAcquired, r.qlParked = false, false
	// Coalesce preserving lane order within each segment; first-appearance
	// order across segments. Linear scan: a warp has ≤32 lanes.
	segs := p.segScratch[:0]
	for i := range r.Accesses {
		line := r.Accesses[i].Addr / isa.LineWords
		var seg *segment
		for _, s := range segs {
			if s.line == line {
				seg = s
				break
			}
		}
		if seg == nil {
			seg = p.newSegment(r, line)
			segs = append(segs, seg)
		}
		seg.lanes = append(seg.lanes, i)
	}
	r.remaining = len(segs)
	p.outstanding[r.WarpSlot]++
	for i, seg := range segs {
		p.lsq = append(p.lsq, seg)
		p.stats.Transactions++
		if r.Ann&isa.AnnSync != 0 {
			p.stats.SyncTransactions++
		}
		segs[i] = nil
	}
	p.segScratch = segs[:0]
}

// --- cycle advance ---

// Tick advances the memory system to cycle: completes due events,
// services L2 and DRAM queues, and injects one LSQ segment per SM port.
func (s *System) Tick(cycle int64) {
	s.cycle = cycle
	// 1. Fire due completions.
	for {
		at, ok := s.events.Peek()
		if !ok || at > cycle {
			break
		}
		s.dispatch(s.events.popRoot())
	}
	// 2. Service the DRAM queue (bandwidth limited).
	n := s.cfg.DRAMBw
	for n > 0 && len(s.dramQueue) > 0 {
		seg := s.dramQueue[0]
		s.dramQueue = s.dramQueue[1:]
		n--
		s.ports[seg.req.SM].stats.DRAMAccesses++
		s.schedule(cycle+s.cfg.DRAMLat, evDRAMDone, seg)
	}
	// 3. Service the L2 queue (banked; atomics serialized per line and
	// charged AtomLat bank tokens).
	s.l2Tokens += int64(s.cfg.L2Banks)
	if s.l2Tokens > 4*int64(s.cfg.L2Banks) {
		s.l2Tokens = 4 * int64(s.cfg.L2Banks)
	}
	// The scan start rotates pseudo-randomly across cycles. A strictly
	// FIFO pick would make every transaction's queueing delay identical
	// round after round, letting symmetrically conflicting lock retries
	// (nested try-locks in ATM/DS) re-collide forever — a determinism
	// artifact real interconnect/DRAM arbitration does not have.
	if n := len(s.l2Queue); n > 0 {
		s.arbLFSR = s.arbLFSR*1103515245 + 12345
		if cycle < s.l2StuckUntil {
			// A previous scan NACKed every queued segment and nothing has
			// been enqueued since: each is an atomic whose line is still
			// busy, so this cycle's scan would charge the identical retry
			// set and service nothing. Replay the recorded counts. (The
			// LFSR above still advances once per non-empty-queue cycle,
			// exactly as the walk would.)
			for sm, k := range s.l2StuckRetries {
				if k != 0 {
					s.ports[sm].stats.AtomRetries += k
				}
			}
		} else {
			start := int(s.arbLFSR>>16) % n
			scanned := 0
			served := false
			minBusy := int64(math.MaxInt64)
			for i := start; scanned < len(s.l2Queue) && s.l2Tokens > 0; scanned++ {
				if i >= len(s.l2Queue) {
					i = 0
				}
				seg := s.l2Queue[i]
				cost := int64(1)
				if seg.req.Op.IsAtomic() {
					if busy, ok := s.atomBusy[seg.line]; ok && busy > cycle {
						s.ports[seg.req.SM].stats.AtomRetries++
						if busy < minBusy {
							minBusy = busy
						}
						i++ // line's atomic slot occupied; leave queued
						continue
					}
					if s.inj != nil && s.inj.forceAtomRetry() {
						// Injected retry storm: NACK the service attempt exactly
						// like a busy atomic slot would.
						s.ports[seg.req.SM].stats.AtomRetries++
						i++
						continue
					}
					cost = s.cfg.AtomCost
					s.atomBusy[seg.line] = cycle + s.cfg.AtomLat
				}
				s.l2Queue = append(s.l2Queue[:i], s.l2Queue[i+1:]...)
				s.l2Tokens -= cost
				s.serviceL2(seg)
				served = true
			}
			// If nothing was served, every scanned entry took the busy-NACK
			// path (non-atomics and free-line atomics are always serviced,
			// and NACKs cost no tokens, so the walk covered the full queue):
			// the scan is a pure function of the queue and atomBusy until
			// minBusy. Record it — unless fault injection is live, whose
			// forced NACKs draw from the RNG stream every walk.
			if !served && s.inj == nil {
				s.l2StuckUntil = minBusy
				if cap(s.l2StuckRetries) < len(s.ports) {
					s.l2StuckRetries = make([]int64, len(s.ports))
				}
				s.l2StuckRetries = s.l2StuckRetries[:len(s.ports)]
				for i := range s.l2StuckRetries {
					s.l2StuckRetries[i] = 0
				}
				for _, seg := range s.l2Queue {
					s.l2StuckRetries[seg.req.SM]++
				}
			}
		}
	}
	// 4. Inject one segment per SM port.
	for _, p := range s.ports {
		p.inject()
	}
	// Opportunistically trim the atomic-busy map.
	if len(s.atomBusy) > 64 {
		for line, busy := range s.atomBusy {
			if busy <= cycle {
				delete(s.atomBusy, line)
			}
		}
	}
}

// NextEventAt returns the timestamp of the earliest scheduled completion
// event, or false when none is pending.
func (s *System) NextEventAt() (int64, bool) { return s.events.Peek() }

// Idle reports whether Tick currently has no per-cycle work: the DRAM and
// L2 service queues and every port's LSQ are empty. While idle, a Tick
// that fires no due event changes nothing observable except the L2 token
// bucket (MSHR maps, parked lock waiters and the atomic-busy table are
// passive — they only change when an event fires or a new segment is
// injected), so the engine's event-driven clock may skip idle cycles and
// settle the token bucket through FastForward.
func (s *System) Idle() bool {
	if len(s.l2Queue) > 0 || len(s.dramQueue) > 0 {
		return false
	}
	for _, p := range s.ports {
		if len(p.lsq) > 0 {
			return false
		}
	}
	return true
}

// FastForward credits delta skipped idle cycles to the only time-driven
// state Tick advances while Idle: the L2 token bucket. Per-cycle Tick
// refills l2Tokens by L2Banks and caps at 4×L2Banks before any
// consumption; with the L2 queue empty nothing consumes, so delta
// iterations of (add, cap) equal one capped bulk add — the skip is
// cycle-exact.
func (s *System) FastForward(delta int64) {
	s.l2Tokens += int64(s.cfg.L2Banks) * delta
	if lim := 4 * int64(s.cfg.L2Banks); s.l2Tokens > lim {
		s.l2Tokens = lim
	}
}

// Quiescent reports whether no transactions are in flight anywhere.
func (s *System) Quiescent() bool {
	if len(s.events) > 0 || len(s.l2Queue) > 0 || len(s.dramQueue) > 0 || len(s.lockQueues) > 0 {
		return false
	}
	for _, p := range s.ports {
		if len(p.lsq) > 0 || len(p.mshr) > 0 {
			return false
		}
	}
	return true
}

// pushL2 is the only way segments enter the L2 service queue: the append
// invalidates the stuck-scan cache, because a fresh segment (even another
// blocked atomic) changes what the next scan charges and may be
// serviceable.
func (s *System) pushL2(seg *segment) {
	s.l2Queue = append(s.l2Queue, seg)
	s.l2StuckUntil = 0
}

func (p *Port) inject() {
	if len(p.lsq) == 0 {
		return
	}
	seg := p.lsq[0]
	s := p.sys
	switch {
	case seg.req.Op.IsAtomic():
		// Atomics bypass (and invalidate) L1 and go to the L2 atomic unit.
		p.l1.Invalidate(seg.line)
		p.stats.AtomicOps++
		s.pushL2(seg)
	case seg.req.Op == isa.OpSt:
		// Write-through, no write-allocate: evict from L1, send to L2.
		p.l1.Invalidate(seg.line)
		p.stats.L1Accesses++
		s.pushL2(seg)
	case seg.req.Vol:
		// Volatile load: bypass and invalidate the non-coherent L1.
		p.l1.Invalidate(seg.line)
		s.pushL2(seg)
	default: // load
		p.stats.L1Accesses++
		if p.l1.Lookup(seg.line) {
			p.stats.L1Hits++
			s.schedule(s.cycle+s.cfg.L1HitLat, evL1Hit, seg)
		} else {
			if waiting, ok := p.mshr[seg.line]; ok {
				// Merge with the outstanding miss.
				p.stats.MSHRMerges++
				p.mshr[seg.line] = append(waiting, seg)
			} else {
				if len(p.mshr) >= s.cfg.L1MSHRs {
					p.stats.MSHRStalls++
					return // no MSHR free: stall injection this cycle
				}
				p.mshr[seg.line] = []*segment{seg}
				s.pushL2(seg)
			}
		}
	}
	p.lsq = p.lsq[1:]
}

func (s *System) serviceL2(seg *segment) {
	p := s.ports[seg.req.SM]
	switch {
	case seg.req.Op.IsAtomic():
		p.stats.L2Accesses++
		s.l2.Fill(seg.line)
		// The atomic executes here, at its position in simulated time.
		s.applyAtomics(seg)
		if seg.parked > 0 {
			break // completes via grantNext when the lock is released
		}
		s.schedule(s.cycle+s.cfg.L2Lat, evFinish, seg)
	case seg.req.Op == isa.OpSt:
		p.stats.L2Accesses++
		s.l2.Fill(seg.line)
		s.applyStores(seg)
		s.schedule(s.cycle+s.cfg.L2Lat, evFinish, seg)
	default: // load (L1 miss or volatile)
		p.stats.L2Accesses++
		if s.l2.Lookup(seg.line) {
			p.stats.L2Hits++
			if seg.req.Vol {
				s.schedule(s.cycle+s.cfg.L2Lat, evVolFill, seg)
			} else {
				s.schedule(s.cycle+s.cfg.L2Lat, evLoadFill, seg)
			}
		} else {
			s.dramQueue = append(s.dramQueue, seg)
		}
	}
}

func (s *System) dramDone(seg *segment) {
	s.l2.Fill(seg.line)
	if seg.req.Vol {
		s.volFilled(seg)
		return
	}
	s.loadFilled(seg)
}

// volFilled completes a volatile load without touching L1 or MSHRs.
func (s *System) volFilled(seg *segment) {
	s.applyLoads(seg)
	s.finish(seg)
}

// loadFilled commits a load fill: fill L1, read data for every merged
// segment, release the MSHR.
func (s *System) loadFilled(seg *segment) {
	p := s.ports[seg.req.SM]
	p.l1.Fill(seg.line)
	merged := p.mshr[seg.line]
	delete(p.mshr, seg.line)
	if merged == nil {
		merged = []*segment{seg}
	}
	for _, m := range merged {
		s.applyLoads(m)
		s.finish(m)
	}
}

func (s *System) applyLoads(seg *segment) {
	s.curSeg = seg
	defer func() { s.curSeg = nil }()
	for _, li := range seg.lanes {
		a := &seg.req.Accesses[li]
		a.Result = s.Read(a.Addr)
	}
}

func (s *System) applyStores(seg *segment) {
	s.curSeg = seg
	defer func() { s.curSeg = nil }()
	for _, li := range seg.lanes {
		a := &seg.req.Accesses[li]
		s.Write(a.Addr, a.V1)
		if seg.req.Ann&isa.AnnLockRelease != 0 {
			s.releaseOwner(a.Addr)
			s.grantNext(a.Addr)
		}
	}
}

// releaseOwner clears ownership tracking for the lock word at addr.
func (s *System) releaseOwner(addr uint32) {
	if owner, ok := s.lockOwner[addr]; ok {
		delete(s.lockOwner, addr)
		if n := s.warpHolds[owner/32]; n > 1 {
			s.warpHolds[owner/32] = n - 1
		} else {
			delete(s.warpHolds, owner/32)
		}
	}
}

// grantNext hands a just-released lock to the oldest parked acquirer
// (QueueLocks mode): the parked CAS completes as if it had observed the
// free lock. Requires the release-to-zero mutex convention (the grant
// replays cmp/swap of the parked access).
func (s *System) grantNext(addr uint32) {
	q := s.lockQueues[addr]
	if len(q) == 0 {
		return
	}
	w := q[0]
	if len(q) == 1 {
		delete(s.lockQueues, addr)
	} else {
		s.lockQueues[addr] = q[1:]
	}
	a := &w.seg.req.Accesses[w.li]
	s.Write(a.Addr, a.V2)
	s.lockOwner[a.Addr] = a.GTID
	s.warpHolds[a.GTID/32]++
	a.Result = a.V1 // the CAS observes the free value: success
	if sync := s.ports[w.seg.req.SM].sync; sync != nil {
		sync.LockSuccess++
	}
	w.seg.parked--
	if w.seg.parked == 0 {
		s.schedule(s.cycle+s.cfg.L2Lat, evFinish, w.seg)
	}
}

// applyAtomics performs the read-modify-write for every lane of the
// segment in lane order — the intra-warp serialization order of real
// hardware — and maintains lock-owner tracking for annotated operations.
func (s *System) applyAtomics(seg *segment) {
	s.curSeg = seg
	defer func() { s.curSeg = nil }()
	r := seg.req
	sync := s.ports[r.SM].sync
	for _, li := range seg.lanes {
		a := &r.Accesses[li]
		old := s.Read(a.Addr)
		a.Result = old
		switch r.Op {
		case isa.OpAtomCAS:
			if old == a.V1 {
				if s.cfg.QueueLocks && r.Ann&isa.AnnLockAcquire != 0 && r.qlParked {
					// The request already parked a lane: taking a lock now
					// would block a holder. NACK instead (lane retries).
					a.Result = a.V2
					continue
				}
				s.Write(a.Addr, a.V2)
				if r.Ann&isa.AnnLockAcquire != 0 {
					s.lockOwner[a.Addr] = a.GTID
					s.warpHolds[a.GTID/32]++
					r.qlAcquired = true
					if sync != nil {
						sync.LockSuccess++
					}
				}
			} else if r.Ann&isa.AnnLockAcquire != 0 {
				if s.cfg.QueueLocks && s.warpHolds[a.GTID/32] == 0 && !r.qlAcquired && !r.qlParked {
					// Idealized blocking lock (HQL-style): park the lane;
					// it is granted, in FIFO order, when the holder
					// releases — the acquire never retries.
					s.lockQueues[a.Addr] = append(s.lockQueues[a.Addr], lockWaiter{seg: seg, li: li})
					seg.parked++
					r.qlParked = true
					continue
				}
				if sync != nil {
					// Failed acquire: classify by the holder's warp.
					if owner, ok := s.lockOwner[a.Addr]; ok && owner/32 == a.GTID/32 {
						sync.IntraWarpFail++
					} else {
						sync.InterWarpFail++
					}
				}
			}
		case isa.OpAtomExch:
			s.Write(a.Addr, a.V1)
			if r.Ann&isa.AnnLockRelease != 0 {
				s.releaseOwner(a.Addr)
				if sync != nil {
					sync.LockRelease++
				}
				s.grantNext(a.Addr)
			}
		case isa.OpAtomAdd:
			s.Write(a.Addr, old+a.V1)
		case isa.OpAtomMax:
			if int32(a.V1) > int32(old) {
				s.Write(a.Addr, a.V1)
			}
		}
	}
}

// finish retires one segment; when it is the request's last, the request
// completes. finish is every segment's unique end of life, so the segment
// returns to the issuing port's pool here.
func (s *System) finish(seg *segment) {
	r := seg.req
	seg.req = nil
	p := s.ports[r.SM]
	p.segFree = append(p.segFree, seg)
	r.remaining--
	if r.remaining == 0 {
		s.ports[r.SM].outstanding[r.WarpSlot]--
		if r.Done != nil {
			r.Done(r)
		}
	}
}
