package mem

import "testing"

// TestInjectorDeterminism: the same seed yields the same decision and
// delay stream — the property that keeps fault-injected simulations
// reproducible.
func TestInjectorDeterminism(t *testing.T) {
	mk := func(seed uint64) []int64 {
		fi := &faultInjector{cfg: DefaultFaults(seed)}
		fi.rng = fi.cfg.Seed
		var out []int64
		for i := 0; i < 1000; i++ {
			out = append(out, fi.delay())
			if fi.forceAtomRetry() {
				out = append(out, -1)
			}
		}
		return out
	}
	a, b := mk(42), mk(42)
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := mk(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

// TestInjectorRates sanity-checks that injected event frequencies track
// the configured probabilities (loose bounds; the generator is uniform).
func TestInjectorRates(t *testing.T) {
	cfg := DefaultFaults(7)
	fi := &faultInjector{cfg: cfg}
	fi.rng = cfg.Seed
	const n = 100_000
	var spikes int
	for i := 0; i < n; i++ {
		if fi.delay() > 0 {
			spikes++
		}
	}
	// LatencyProb + ReorderProb = 0.06 of draws should perturb latency.
	frac := float64(spikes) / n
	if frac < 0.03 || frac > 0.12 {
		t.Errorf("latency perturbation rate %.4f far from configured 0.06", frac)
	}
}

// TestScaleAndEnabled covers the FaultConfig helpers.
func TestScaleAndEnabled(t *testing.T) {
	var zero FaultConfig
	if zero.enabled() {
		t.Error("zero config reports enabled")
	}
	cfg := DefaultFaults(1)
	if !cfg.enabled() {
		t.Error("default config reports disabled")
	}
	doubled := cfg.Scale(2)
	if doubled.LatencyProb != 2*cfg.LatencyProb || doubled.AtomRetryProb != 2*cfg.AtomRetryProb {
		t.Errorf("Scale(2) did not double probabilities: %+v", doubled)
	}
	if doubled.Seed != cfg.Seed {
		t.Error("Scale changed the seed")
	}
}

// TestInjectFaultsWiring: injecting into a System is a no-op for a
// disabled config and records counters for an enabled one.
func TestInjectFaultsWiring(t *testing.T) {
	s := NewSystem(testMemCfg(), 1, 4, 256)
	s.InjectFaults(FaultConfig{}) // disabled: must stay nil
	if s.inj != nil {
		t.Error("disabled fault config installed an injector")
	}
	s.InjectFaults(DefaultFaults(9))
	if s.inj == nil {
		t.Fatal("enabled fault config did not install an injector")
	}
	if l, r, a := s.InjectedFaults(); l != 0 || r != 0 || a != 0 {
		t.Errorf("fresh injector reports nonzero counts: %d %d %d", l, r, a)
	}
}
