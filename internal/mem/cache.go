package mem

// cache is a set-associative tag array with LRU replacement. It tracks
// tags only; data always lives in the functional word store, which is
// valid because the simulator is single-clock and transactions commit
// their functional effects at service time.
type cache struct {
	sets  int
	assoc int
	tags  []uint32 // sets*assoc entries; line index stored directly
	valid []bool
	lru   []int64 // last-touch stamp
	stamp int64
}

// newCache builds a cache of capacityKB kilobytes with 128-byte lines.
func newCache(capacityKB, assoc int) *cache {
	lines := capacityKB * 1024 / 128
	if lines < assoc {
		lines = assoc
	}
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	return &cache{
		sets:  sets,
		assoc: assoc,
		tags:  make([]uint32, sets*assoc),
		valid: make([]bool, sets*assoc),
		lru:   make([]int64, sets*assoc),
	}
}

func (c *cache) way(line uint32) (int, bool) {
	set := int(line) % c.sets
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return base + w, true
		}
	}
	return base, false
}

// Lookup probes for line and updates LRU on hit.
func (c *cache) Lookup(line uint32) bool {
	idx, hit := c.way(line)
	if hit {
		c.stamp++
		c.lru[idx] = c.stamp
	}
	return hit
}

// Contains probes without touching LRU state.
func (c *cache) Contains(line uint32) bool {
	_, hit := c.way(line)
	return hit
}

// Fill inserts line, evicting the LRU way of its set.
func (c *cache) Fill(line uint32) {
	idx, hit := c.way(line)
	c.stamp++
	if hit {
		c.lru[idx] = c.stamp
		return
	}
	base := idx // way() returned the set base on miss
	victim := base
	for w := 0; w < c.assoc; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.lru[victim] = c.stamp
}

// Invalidate drops line if present (write-evict / atomic bypass).
func (c *cache) Invalidate(line uint32) {
	if idx, hit := c.way(line); hit {
		c.valid[idx] = false
	}
}
