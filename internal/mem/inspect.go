// Read-only inspection of in-flight memory-system state, consumed by the
// engine's hang diagnosis (internal/sim/hang.go) and runtime invariant
// checker (internal/sim/invariants.go). Nothing here mutates simulation
// state, so inspection cannot perturb a run.
package mem

import (
	"fmt"
	"sort"
)

// InFlightSummary counts the memory system's in-flight work by where it
// is queued. A hang with everything zero except LockWaiters is the
// classic queue-lock deadlock: every remaining transaction is a parked
// acquire that no release will ever grant.
type InFlightSummary struct {
	// Events is the number of scheduled completions; L2Queue and DRAMQueue
	// the segments awaiting service there.
	Events    int
	L2Queue   int
	DRAMQueue int
	// LSQ sums segments waiting for injection across all SM ports; MSHR
	// sums outstanding L1 miss lines.
	LSQ  int
	MSHR int
	// LockWaiters is the number of parked lock acquires (QueueLocks mode).
	LockWaiters int
}

// Total returns all in-flight work items (parked waiters included).
func (f InFlightSummary) Total() int {
	return f.Events + f.L2Queue + f.DRAMQueue + f.LSQ + f.MSHR + f.LockWaiters
}

// OnlyParked reports whether the only in-flight work is parked lock
// acquires — transactions that complete only if some warp releases the
// lock, i.e. a deadlock once no warp can.
func (f InFlightSummary) OnlyParked() bool {
	return f.LockWaiters > 0 && f.Total() == f.LockWaiters
}

// InFlight summarizes the system's in-flight work.
func (s *System) InFlight() InFlightSummary {
	var f InFlightSummary
	f.Events = len(s.events)
	f.L2Queue = len(s.l2Queue)
	f.DRAMQueue = len(s.dramQueue)
	for _, q := range s.lockQueues {
		f.LockWaiters += len(q)
	}
	for _, p := range s.ports {
		f.LSQ += len(p.lsq)
		f.MSHR += len(p.mshr)
	}
	return f
}

// MSHRLines returns the port's outstanding L1 miss-line count.
func (p *Port) MSHRLines() int { return len(p.mshr) }

// LSQLen returns the port's pending segment count.
func (p *Port) LSQLen() int { return len(p.lsq) }

// ParkedWaiter is one parked lock acquire (QueueLocks mode): the lock
// word it waits on and the warp that issued it.
type ParkedWaiter struct {
	Addr     uint32
	SM       int
	WarpSlot int
	GTID     int32
}

// ParkedWaiters returns every parked lock acquire, sorted by (Addr, queue
// position) so output is deterministic.
func (s *System) ParkedWaiters() []ParkedWaiter {
	var out []ParkedWaiter
	addrs := make([]uint32, 0, len(s.lockQueues))
	for addr := range s.lockQueues {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		for _, w := range s.lockQueues[addr] {
			a := &w.seg.req.Accesses[w.li]
			out = append(out, ParkedWaiter{Addr: addr, SM: w.seg.req.SM,
				WarpSlot: w.seg.req.WarpSlot, GTID: a.GTID})
		}
	}
	return out
}

// ForEachInFlightRequest calls fn once per distinct in-flight Request —
// every request that has been Enqueued but whose Done has not fired. The
// engine's invariant checker cross-checks these against its scoreboards
// and request-pool accounting. Iteration order is unspecified.
func (s *System) ForEachInFlightRequest(fn func(*Request)) {
	seen := make(map[*Request]struct{})
	visit := func(seg *segment) {
		if seg == nil || seg.req == nil {
			return
		}
		if _, ok := seen[seg.req]; ok {
			return
		}
		seen[seg.req] = struct{}{}
		fn(seg.req)
	}
	for i := range s.events {
		visit(s.events[i].seg)
	}
	for _, seg := range s.l2Queue {
		visit(seg)
	}
	for _, seg := range s.dramQueue {
		visit(seg)
	}
	for _, q := range s.lockQueues {
		for _, w := range q {
			visit(w.seg)
		}
	}
	for _, p := range s.ports {
		for _, seg := range p.lsq {
			visit(seg)
		}
		for _, merged := range p.mshr {
			for _, seg := range merged {
				visit(seg)
			}
		}
	}
}

// Audit runs the memory system's internal consistency checks and returns
// one human-readable line per violation (nil when clean). It validates
// state the engine cannot see from outside: MSHR table shape, segment
// pool hygiene, lock-queue/parked-count agreement, and lock-hold
// accounting.
func (s *System) Audit() []string {
	var out []string
	for _, p := range s.ports {
		if len(p.mshr) > s.cfg.L1MSHRs {
			out = append(out, fmt.Sprintf("sm%d: %d MSHR lines exceed capacity %d",
				p.sm, len(p.mshr), s.cfg.L1MSHRs))
		}
		for line, merged := range p.mshr {
			if len(merged) == 0 {
				out = append(out, fmt.Sprintf("sm%d: empty MSHR entry for line %d", p.sm, line))
			}
		}
		for slot, n := range p.outstanding {
			if n < 0 {
				out = append(out, fmt.Sprintf("sm%d/w%d: negative outstanding count %d", p.sm, slot, n))
			}
		}
		for i, seg := range p.segFree {
			if seg != nil && seg.req != nil {
				out = append(out, fmt.Sprintf("sm%d: segment pool entry %d still references a request", p.sm, i))
			}
		}
	}
	// Each parked lane is counted exactly once by its segment.
	parkedPerSeg := make(map[*segment]int)
	for addr, q := range s.lockQueues {
		if len(q) == 0 {
			out = append(out, fmt.Sprintf("empty lock queue for addr %d", addr))
		}
		for _, w := range q {
			parkedPerSeg[w.seg]++
		}
	}
	for seg, n := range parkedPerSeg {
		if seg.parked != n {
			out = append(out, fmt.Sprintf("segment for sm%d line %d: parked=%d but %d queued waiters",
				seg.req.SM, seg.line, seg.parked, n))
		}
	}
	for warp, n := range s.warpHolds {
		if n <= 0 {
			out = append(out, fmt.Sprintf("warp %d: non-positive lock-hold count %d", warp, n))
		}
	}
	return out
}
