// Deterministic fault injection for the memory system: a seeded
// pseudo-random injector that perturbs completion timing and the L2
// atomic unit without ever touching functional values. Tests use it to
// prove kernels still complete with correct output — and all runtime
// invariants holding — when the memory system misbehaves within its
// timing envelope: latency spikes (a slow DRAM bank), response reordering
// (interconnect jitter between same-cycle completions), and atomic-op
// retry storms (an overloaded atomic ALU NACKing service attempts).
//
// Injection is strictly timing-level, so every simulator correctness
// property (functional output, scoreboard conservation, request-pool
// balance) must survive it; only cycle counts change. A given
// (FaultConfig, workload) pair is fully deterministic: the injector draws
// from its own xorshift64* stream in simulation order.
package mem

// FaultConfig parameterizes the injector. Zero probabilities disable the
// corresponding fault class; a zero-valued config injects nothing.
type FaultConfig struct {
	// Seed initializes the injector's PRNG stream (0 is remapped so a
	// zero-valued seed still produces a valid stream).
	Seed uint64
	// LatencyProb is the per-scheduled-completion probability of a latency
	// spike of LatencySpike extra cycles (a slow bank / row conflict).
	LatencyProb  float64
	LatencySpike int64
	// ReorderProb is the per-scheduled-completion probability of adding a
	// small jitter of up to ReorderJitter cycles, reordering completions
	// that would otherwise retire in issue order.
	ReorderProb   float64
	ReorderJitter int64
	// AtomRetryProb is the per-service probability that the L2 atomic unit
	// NACKs an atomic, forcing AtomRetryBurst consecutive retries (a
	// retry storm on the contended line).
	AtomRetryProb  float64
	AtomRetryBurst int
}

// DefaultFaults returns the standard stress profile used by the fault
// injection test suites and warpsim's -fault-seed flag: frequent small
// jitter, occasional large spikes, and short atomic retry storms.
func DefaultFaults(seed uint64) FaultConfig {
	return FaultConfig{
		Seed:           seed,
		LatencyProb:    0.01,
		LatencySpike:   200,
		ReorderProb:    0.05,
		ReorderJitter:  3,
		AtomRetryProb:  0.02,
		AtomRetryBurst: 4,
	}
}

// Scale returns a copy of the config with every probability multiplied by
// f (clamped to 1), for dialing stress up or down from one profile.
func (c FaultConfig) Scale(f float64) FaultConfig {
	clamp := func(p float64) float64 {
		p *= f
		if p > 1 {
			return 1
		}
		return p
	}
	c.LatencyProb = clamp(c.LatencyProb)
	c.ReorderProb = clamp(c.ReorderProb)
	c.AtomRetryProb = clamp(c.AtomRetryProb)
	return c
}

// enabled reports whether the config injects anything at all.
func (c FaultConfig) enabled() bool {
	return c.LatencyProb > 0 || c.ReorderProb > 0 || c.AtomRetryProb > 0
}

// faultInjector is the runtime state: config plus PRNG and the current
// atomic retry-storm budget.
type faultInjector struct {
	cfg        FaultConfig
	rng        uint64
	retryBurst int
	// injected event counts (observability for tests; unregistered, so
	// metrics snapshots and golden stats are untouched).
	latencySpikes int64
	reorders      int64
	atomNACKs     int64
}

func newFaultInjector(cfg FaultConfig) *faultInjector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &faultInjector{cfg: cfg, rng: seed}
}

// next advances the xorshift64* stream.
func (fi *faultInjector) next() uint64 {
	x := fi.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	fi.rng = x
	return x * 0x2545f4914f6cdd1d
}

// chance draws one variate and reports whether it fell under p.
func (fi *faultInjector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	// 53-bit mantissa: uniform in [0,1).
	return float64(fi.next()>>11)/(1<<53) < p
}

// delay returns the extra completion latency for one scheduled event.
func (fi *faultInjector) delay() int64 {
	var d int64
	if fi.chance(fi.cfg.LatencyProb) {
		d += fi.cfg.LatencySpike
		fi.latencySpikes++
	}
	if fi.cfg.ReorderJitter > 0 && fi.chance(fi.cfg.ReorderProb) {
		d += int64(fi.next() % uint64(fi.cfg.ReorderJitter+1))
		fi.reorders++
	}
	return d
}

// forceAtomRetry reports whether the atomic unit must NACK this service
// attempt. A triggered storm forces the next AtomRetryBurst attempts too.
func (fi *faultInjector) forceAtomRetry() bool {
	if fi.retryBurst > 0 {
		fi.retryBurst--
		fi.atomNACKs++
		return true
	}
	if fi.chance(fi.cfg.AtomRetryProb) {
		if fi.cfg.AtomRetryBurst > 1 {
			fi.retryBurst = fi.cfg.AtomRetryBurst - 1
		}
		fi.atomNACKs++
		return true
	}
	return false
}

// InjectFaults attaches a deterministic fault injector to the memory
// system. Call before the first Tick; a config that injects nothing
// leaves the system untouched.
func (s *System) InjectFaults(cfg FaultConfig) {
	if !cfg.enabled() {
		return
	}
	s.inj = newFaultInjector(cfg)
}

// InjectedFaults reports how many faults of each class the injector has
// produced so far (zeros when no injector is attached).
func (s *System) InjectedFaults() (latencySpikes, reorders, atomNACKs int64) {
	if s.inj == nil {
		return 0, 0, 0
	}
	return s.inj.latencySpikes, s.inj.reorders, s.inj.atomNACKs
}
