package stats

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddMerges(t *testing.T) {
	a := Sim{Cycles: 100, WarpInstrs: 10, ThreadInstrs: 200, SyncThreadInstrs: 50,
		ActiveLaneSum: 200, BackedOffSum: 5, ResidentSum: 10, SampleCycles: 100}
	b := Sim{Cycles: 150, WarpInstrs: 20, ThreadInstrs: 100, SyncThreadInstrs: 25,
		ActiveLaneSum: 100, BackedOffSum: 15, ResidentSum: 30, SampleCycles: 100}
	a.Mem = Mem{Transactions: 7, SyncTransactions: 3, L1Accesses: 5, L1Hits: 2}
	b.Mem = Mem{Transactions: 3, SyncTransactions: 1, DRAMAccesses: 9}
	a.Sync = SyncEvents{LockSuccess: 1, InterWarpFail: 2}
	b.Sync = SyncEvents{LockSuccess: 3, IntraWarpFail: 4, WaitExitSuccess: 5, WaitExitFail: 6}

	a.Add(&b)
	if a.Cycles != 150 {
		t.Errorf("Cycles should take the max: %d", a.Cycles)
	}
	if a.WarpInstrs != 30 || a.ThreadInstrs != 300 || a.SyncThreadInstrs != 75 {
		t.Errorf("instruction counters wrong: %+v", a)
	}
	if a.Mem.Transactions != 10 || a.Mem.SyncTransactions != 4 || a.Mem.DRAMAccesses != 9 {
		t.Errorf("mem counters wrong: %+v", a.Mem)
	}
	if a.Sync.LockSuccess != 4 || a.Sync.InterWarpFail != 2 || a.Sync.IntraWarpFail != 4 {
		t.Errorf("sync counters wrong: %+v", a.Sync)
	}
}

// fillInt64s sets every int64 field (recursing into nested structs) to x.
func fillInt64s(v reflect.Value, x int64) {
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Int64:
			f.SetInt(x)
		case reflect.Struct:
			fillInt64s(f, x)
		}
	}
}

// TestAddCoversEveryField catches the classic drift bug: a counter added
// to Sim/Mem/SyncEvents but forgotten in the corresponding add method.
// Merging a fully populated Sim into a zero one must reproduce it exactly
// (sums add to the zero; Cycles takes the max with zero).
func TestAddCoversEveryField(t *testing.T) {
	var a, b Sim
	fillInt64s(reflect.ValueOf(&a).Elem(), 3)
	b.Add(&a)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Add dropped a field:\n got %+v\nwant %+v", b, a)
	}
}

func TestDerivedMetrics(t *testing.T) {
	s := Sim{WarpInstrs: 10, ActiveLaneSum: 160, ThreadInstrs: 160, SyncThreadInstrs: 40}
	if got := s.SIMDEfficiency(); got != 0.5 {
		t.Errorf("SIMD = %f, want 0.5", got)
	}
	if got := s.SyncInstrFraction(); got != 0.25 {
		t.Errorf("sync frac = %f", got)
	}
	if got := s.UsefulThreadInstrs(); got != 120 {
		t.Errorf("useful = %d", got)
	}
	s.Mem = Mem{Transactions: 10, SyncTransactions: 4}
	if got := s.SyncMemFraction(); got != 0.4 {
		t.Errorf("sync mem frac = %f", got)
	}
	s.BackedOffSum, s.ResidentSum = 25, 100
	if got := s.BackedOffFraction(); got != 0.25 {
		t.Errorf("backed-off frac = %f", got)
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	var s Sim
	if s.SIMDEfficiency() != 0 || s.SyncInstrFraction() != 0 ||
		s.SyncMemFraction() != 0 || s.BackedOffFraction() != 0 {
		t.Fatal("zero-value stats must not panic or return NaN")
	}
	var e SyncEvents
	if e.FailureRate() != 0 {
		t.Fatal("failure rate with no successes must be 0")
	}
}

func TestSyncEventTotals(t *testing.T) {
	e := SyncEvents{LockSuccess: 2, InterWarpFail: 3, IntraWarpFail: 1,
		WaitExitSuccess: 4, WaitExitFail: 6}
	if e.LockAttempts() != 6 {
		t.Errorf("lock attempts = %d", e.LockAttempts())
	}
	if e.WaitAttempts() != 10 {
		t.Errorf("wait attempts = %d", e.WaitAttempts())
	}
	if e.FailureRate() != 2 {
		t.Errorf("failure rate = %f", e.FailureRate())
	}
}

func TestAddCommutativeOnCounters(t *testing.T) {
	// Property: merging a then b equals merging b then a (Cycles uses max,
	// everything else sums — both commutative).
	f := func(a1, a2, b1, b2 uint16) bool {
		x := Sim{Cycles: int64(a1), ThreadInstrs: int64(a2)}
		y := Sim{Cycles: int64(b1), ThreadInstrs: int64(b2)}
		x1, y1 := x, y
		x1.Add(&y)
		y1.Add(&x)
		return x1.Cycles == y1.Cycles && x1.ThreadInstrs == y1.ThreadInstrs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringContainsHeadline(t *testing.T) {
	s := Sim{Cycles: 42, WarpInstrs: 7}
	if !strings.Contains(s.String(), "cycles=42") {
		t.Errorf("String() = %q", s.String())
	}
}
