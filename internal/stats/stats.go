// Package stats collects the execution statistics the paper reports:
// dynamic instruction counts split into useful vs synchronization overhead
// (Fig. 1c, 13a), memory transactions by class (Fig. 1d, 13b), SIMD
// efficiency (Fig. 1e, 13c), the lock-acquire / wait-exit outcome
// distribution (Fig. 2, 12), backed-off warp occupancy (Fig. 11), and the
// raw event counts the energy model weighs (Fig. 9b, 15b).
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Sim aggregates statistics for one simulation (summed over SMs).
type Sim struct {
	// Cycles is the kernel execution time in core cycles.
	Cycles int64

	// WarpInstrs counts issued warp instructions; ThreadInstrs counts
	// per-lane executions (active lanes summed over issued instructions).
	WarpInstrs   int64
	ThreadInstrs int64
	// SyncThreadInstrs is the subset of ThreadInstrs annotated AnnSync
	// (busy-wait / acquire / release code); the remainder is useful work.
	SyncThreadInstrs int64
	// SIBInstrs counts warp executions of spin-inducing branches (taken,
	// i.e. spin iterations), using the active BOWS trigger source.
	SIBInstrs int64
	// ActiveLaneSum accumulates active lanes per issued instruction for
	// SIMD efficiency: ActiveLaneSum / (32 * WarpInstrs).
	ActiveLaneSum int64

	// Issue accounting.
	IssueCycles   int64 // scheduler-cycles with an instruction issued
	IdleCycles    int64 // scheduler-cycles with no ready warp
	StallTotal    int64 // warp-cycles where a resident warp was unready
	BackedOffSum  int64 // per-cycle sum of warps in backed-off state
	ResidentSum   int64 // per-cycle sum of resident (unfinished) warps
	SampleCycles  int64 // cycles over which the two sums were sampled
	BackoffBlocks int64 // issue attempts rejected because pending delay > 0

	Mem  Mem
	Sync SyncEvents
}

// Mem counts memory-system events.
type Mem struct {
	// Transactions is the number of coalesced 128-byte segment accesses
	// generated; SyncTransactions is the subset from AnnSync
	// instructions (Fig. 1d).
	Transactions     int64
	SyncTransactions int64
	L1Accesses       int64
	L1Hits           int64
	L2Accesses       int64
	L2Hits           int64
	DRAMAccesses     int64
	AtomicOps        int64
	FenceOps         int64
	// MSHRStalls counts cycles an SM's segment injection stalled because
	// every L1 MSHR was occupied; MSHRMerges counts loads merged onto an
	// already-outstanding miss.
	MSHRStalls int64
	MSHRMerges int64
	// AtomRetries counts L2 atomic-unit service attempts deferred because
	// the target line's atomic slot was busy — the contention the paper's
	// §II bandwidth argument rests on.
	AtomRetries int64
}

// SyncEvents counts the per-lane synchronization outcomes of Figure 2 /
// Figure 12.
type SyncEvents struct {
	LockSuccess     int64 // acquire CAS returned 0 (lock taken)
	InterWarpFail   int64 // acquire failed; holder in a different warp
	IntraWarpFail   int64 // acquire failed; holder in the same warp
	WaitExitSuccess int64 // wait condition satisfied, lane leaves loop
	WaitExitFail    int64 // wait condition unsatisfied, lane spins again
	LockRelease     int64
}

// Add merges o into s.
func (s *Sim) Add(o *Sim) {
	s.Cycles = max64(s.Cycles, o.Cycles)
	s.WarpInstrs += o.WarpInstrs
	s.ThreadInstrs += o.ThreadInstrs
	s.SyncThreadInstrs += o.SyncThreadInstrs
	s.SIBInstrs += o.SIBInstrs
	s.ActiveLaneSum += o.ActiveLaneSum
	s.IssueCycles += o.IssueCycles
	s.IdleCycles += o.IdleCycles
	s.StallTotal += o.StallTotal
	s.BackedOffSum += o.BackedOffSum
	s.ResidentSum += o.ResidentSum
	s.SampleCycles += o.SampleCycles
	s.BackoffBlocks += o.BackoffBlocks
	s.Mem.add(&o.Mem)
	s.Sync.add(&o.Sync)
}

func (m *Mem) add(o *Mem) {
	m.Transactions += o.Transactions
	m.SyncTransactions += o.SyncTransactions
	m.L1Accesses += o.L1Accesses
	m.L1Hits += o.L1Hits
	m.L2Accesses += o.L2Accesses
	m.L2Hits += o.L2Hits
	m.DRAMAccesses += o.DRAMAccesses
	m.AtomicOps += o.AtomicOps
	m.FenceOps += o.FenceOps
	m.MSHRStalls += o.MSHRStalls
	m.MSHRMerges += o.MSHRMerges
	m.AtomRetries += o.AtomRetries
}

func (e *SyncEvents) add(o *SyncEvents) {
	e.LockSuccess += o.LockSuccess
	e.InterWarpFail += o.InterWarpFail
	e.IntraWarpFail += o.IntraWarpFail
	e.WaitExitSuccess += o.WaitExitSuccess
	e.WaitExitFail += o.WaitExitFail
	e.LockRelease += o.LockRelease
}

// SIMDEfficiency returns average active lanes per issued instruction as a
// fraction of warp width.
func (s *Sim) SIMDEfficiency() float64 {
	if s.WarpInstrs == 0 {
		return 0
	}
	return float64(s.ActiveLaneSum) / float64(32*s.WarpInstrs)
}

// SyncInstrFraction returns the Figure 1c overhead fraction.
func (s *Sim) SyncInstrFraction() float64 {
	if s.ThreadInstrs == 0 {
		return 0
	}
	return float64(s.SyncThreadInstrs) / float64(s.ThreadInstrs)
}

// UsefulThreadInstrs returns ThreadInstrs minus synchronization overhead.
func (s *Sim) UsefulThreadInstrs() int64 { return s.ThreadInstrs - s.SyncThreadInstrs }

// SyncMemFraction returns the Figure 1d traffic fraction.
func (s *Sim) SyncMemFraction() float64 {
	if s.Mem.Transactions == 0 {
		return 0
	}
	return float64(s.Mem.SyncTransactions) / float64(s.Mem.Transactions)
}

// BackedOffFraction returns the average fraction of resident warps in the
// backed-off state (Fig. 11).
func (s *Sim) BackedOffFraction() float64 {
	if s.ResidentSum == 0 {
		return 0
	}
	return float64(s.BackedOffSum) / float64(s.ResidentSum)
}

// LockAttempts returns total lock-acquire lane attempts.
func (e *SyncEvents) LockAttempts() int64 {
	return e.LockSuccess + e.InterWarpFail + e.IntraWarpFail
}

// WaitAttempts returns total wait-exit lane attempts.
func (e *SyncEvents) WaitAttempts() int64 { return e.WaitExitSuccess + e.WaitExitFail }

// FailureRate returns failed acquire attempts per successful acquire.
func (e *SyncEvents) FailureRate() float64 {
	if e.LockSuccess == 0 {
		return 0
	}
	return float64(e.InterWarpFail+e.IntraWarpFail) / float64(e.LockSuccess)
}

// String summarizes headline numbers for logging.
func (s *Sim) String() string {
	return fmt.Sprintf("cycles=%d warpInstrs=%d threadInstrs=%d (sync %.1f%%) simd=%.1f%% mem=%d (sync %.1f%%) locks[s=%d interF=%d intraF=%d] wait[s=%d f=%d]",
		s.Cycles, s.WarpInstrs, s.ThreadInstrs, 100*s.SyncInstrFraction(),
		100*s.SIMDEfficiency(), s.Mem.Transactions, 100*s.SyncMemFraction(),
		s.Sync.LockSuccess, s.Sync.InterWarpFail, s.Sync.IntraWarpFail,
		s.Sync.WaitExitSuccess, s.Sync.WaitExitFail)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Gmean returns the geometric mean of vs, or 0 if vs is empty or any
// value is non-positive. The harness and report use it wherever the paper
// reports a mean over normalized ratios.
func Gmean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	prod := 1.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		prod *= v
	}
	return math.Pow(prod, 1/float64(len(vs)))
}

// Hmean returns the harmonic mean of vs, or 0 if vs is empty or any
// value is non-positive. Speedup summaries in internal/report use it
// (the conservative mean for rates: dominated by the slowest benchmark).
func Hmean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var inv float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		inv += 1 / v
	}
	return float64(len(vs)) / inv
}

// FromCounters reconstructs a Sim from a run manifest's counter map
// plus the record's headline cycle count. It accepts both machine-total
// names (internal/exp's aggregated manifests, e.g. "exec.warp_instrs")
// and per-SM names (warpsimd's manifests, e.g. "sm0.exec.warp_instrs"),
// folding the latter by summing across SMs. It is the inverse of the
// engine's metric registration as seen through manifest aggregation, and
// lets offline consumers (internal/report, the remote-offload client)
// reuse every derived-metric method — SIMDEfficiency, SyncInstrFraction,
// energy.Compute — without a live simulation. Names absent from the map
// leave their field zero; the golden-manifest round-trip test in
// internal/exp pins the coupling.
func FromCounters(cycles int64, c map[string]int64) *Sim {
	s := &Sim{Cycles: cycles}
	fields := counterFields(s)
	for name, v := range c {
		if dst, ok := fields[FoldCounterName(name)]; ok {
			*dst += v
		}
	}
	return s
}

// FoldCounterName maps a per-SM counter name ("sm<i>.<rest>") onto its
// machine-total name ("<rest>"); names without the prefix — aggregated
// counters, engine-scoped counters — pass through unchanged.
func FoldCounterName(name string) string {
	if !strings.HasPrefix(name, "sm") {
		return name
	}
	rest := name[2:]
	i := 0
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		i++
	}
	if i == 0 || i >= len(rest) || rest[i] != '.' {
		return name
	}
	return rest[i+1:]
}

// counterFields maps the manifest's aggregated counter names onto the
// fields of s. Kept next to FromCounters so adding a Sim field prompts
// adding its name here.
func counterFields(s *Sim) map[string]*int64 {
	return map[string]*int64{
		"exec.warp_instrs":          &s.WarpInstrs,
		"exec.thread_instrs":        &s.ThreadInstrs,
		"exec.sync_thread_instrs":   &s.SyncThreadInstrs,
		"exec.sib_instrs":           &s.SIBInstrs,
		"exec.active_lane_sum":      &s.ActiveLaneSum,
		"sched.issue_cycles":        &s.IssueCycles,
		"sched.idle_cycles":         &s.IdleCycles,
		"sched.stall_warp_cycles":   &s.StallTotal,
		"sched.backed_off_sum":      &s.BackedOffSum,
		"sched.resident_sum":        &s.ResidentSum,
		"sched.sample_cycles":       &s.SampleCycles,
		"sched.backoff_blocks":      &s.BackoffBlocks,
		"mem.transactions":          &s.Mem.Transactions,
		"mem.sync_transactions":     &s.Mem.SyncTransactions,
		"mem.l1_accesses":           &s.Mem.L1Accesses,
		"mem.l1_hits":               &s.Mem.L1Hits,
		"mem.l2_accesses":           &s.Mem.L2Accesses,
		"mem.l2_hits":               &s.Mem.L2Hits,
		"mem.dram_accesses":         &s.Mem.DRAMAccesses,
		"mem.atomic_ops":            &s.Mem.AtomicOps,
		"mem.fence_ops":             &s.Mem.FenceOps,
		"mem.mshr_stalls":           &s.Mem.MSHRStalls,
		"mem.mshr_merges":           &s.Mem.MSHRMerges,
		"mem.atom_retries":          &s.Mem.AtomRetries,
		"sync.lock_success":         &s.Sync.LockSuccess,
		"sync.lock_fail_inter_warp": &s.Sync.InterWarpFail,
		"sync.lock_fail_intra_warp": &s.Sync.IntraWarpFail,
		"sync.wait_exit_success":    &s.Sync.WaitExitSuccess,
		"sync.wait_exit_fail":       &s.Sync.WaitExitFail,
		"sync.lock_release":         &s.Sync.LockRelease,
	}
}
