package core

import (
	"sort"

	"warpsched/internal/metrics"
)

// SIBEntry is one Spin-inducing Branch Prediction Table entry: the branch
// PC, its confidence counter and its prediction (paper Figure 7b).
// Confirmation is sticky: once a branch's confidence reaches the
// threshold it remains classified as a SIB, matching the paper's use of
// the table to drive BOWS for the remainder of the kernel.
type SIBEntry struct {
	PC          int32
	conf        int
	confirmed   bool
	confirmedAt int64
}

// Confidence returns the entry's current confidence value.
func (e *SIBEntry) Confidence() int { return e.conf }

// Confirmed reports whether the entry is a confirmed SIB.
func (e *SIBEntry) Confirmed() bool { return e.confirmed }

// SIBPT is the per-SM Spin-inducing Branch Prediction Table, shared
// between the warps executing on the SM.
type SIBPT struct {
	size      int
	threshold int
	entries   map[int32]*SIBEntry
	// evictions counts entries displaced because the table was full; a
	// nonzero value signals the 16-entry sizing was insufficient.
	evictions int64
	// promotions counts entries crossing the confidence threshold (the
	// SIB confirmations that arm BOWS); insertions counts new entries.
	promotions int64
	insertions int64
}

// NewSIBPT creates a table with the given capacity and confidence
// threshold t.
func NewSIBPT(size, threshold int) *SIBPT {
	return &SIBPT{size: size, threshold: threshold, entries: make(map[int32]*SIBEntry)}
}

func (t *SIBPT) entry(pc int32) *SIBEntry { return t.entries[pc] }

// Bump records an execution of the backward branch at pc by a spinning
// warp: insert with confidence 1 or increment; confirm at the threshold.
func (t *SIBPT) Bump(pc int32, cycle int64) {
	e := t.entries[pc]
	if e == nil {
		if len(t.entries) >= t.size && !t.evictOne() {
			return // table full of confirmed entries; drop the newcomer
		}
		e = &SIBEntry{PC: pc}
		t.entries[pc] = e
		t.insertions++
	}
	e.conf++
	if !e.confirmed && e.conf >= t.threshold {
		e.confirmed = true
		e.confirmedAt = cycle
		t.promotions++
	}
}

// Decay records an execution of the backward branch at pc by a
// non-spinning warp, decrementing nonzero confidence (the paper's guard
// against accumulated hash-aliasing errors).
func (t *SIBPT) Decay(pc int32) {
	if e := t.entries[pc]; e != nil && e.conf > 0 {
		e.conf--
	}
}

// evictOne removes the lowest-confidence unconfirmed entry; it returns
// false if every entry is confirmed.
func (t *SIBPT) evictOne() bool {
	var victim *SIBEntry
	for _, e := range t.entries {
		if e.confirmed {
			continue
		}
		if victim == nil || e.conf < victim.conf ||
			(e.conf == victim.conf && e.PC < victim.PC) {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	delete(t.entries, victim.PC)
	t.evictions++
	return true
}

// Confirmed reports whether pc is a confirmed SIB.
func (t *SIBPT) Confirmed(pc int32) bool {
	e := t.entries[pc]
	return e != nil && e.confirmed
}

// ConfirmedPCs returns every confirmed SIB PC (order unspecified).
func (t *SIBPT) ConfirmedPCs() []int32 {
	var out []int32
	for pc, e := range t.entries {
		if e.confirmed {
			out = append(out, pc)
		}
	}
	return out
}

// SIBView is one table entry's observable state (hang-report snapshots).
type SIBView struct {
	PC         int32
	Confidence int
	Confirmed  bool
}

// Snapshot returns a PC-sorted copy of the table's entries, for
// attaching to diagnostic reports without exposing live state.
func (t *SIBPT) Snapshot() []SIBView {
	out := make([]SIBView, 0, len(t.entries))
	for pc, e := range t.entries {
		out = append(out, SIBView{PC: pc, Confidence: e.conf, Confirmed: e.confirmed})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PC < out[j].PC })
	return out
}

// Len returns the current entry count; Evictions the displaced-entry
// count.
func (t *SIBPT) Len() int         { return len(t.entries) }
func (t *SIBPT) Evictions() int64 { return t.evictions }

// Promotions returns the number of SIB confirmations.
func (t *SIBPT) Promotions() int64 { return t.promotions }

// RegisterMetrics registers the table's counters under prefix (e.g.
// "sm0.ddos.sibpt.").
func (t *SIBPT) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Int64(prefix+"insertions", &t.insertions)
	r.Int64(prefix+"promotions", &t.promotions)
	r.Int64(prefix+"evictions", &t.evictions)
	r.Gauge(prefix+"entries", func() float64 { return float64(len(t.entries)) })
}
