package core

import (
	"sort"

	"warpsched/internal/metrics"
)

// Detector is the spin-detection contract BOWS and the engine consume.
// DDOS (the paper's hash-based history detector) and TAGE (the
// tagged-geometric path-history predictor) both implement it; the
// engine instantiates one per SM from config.DetectorKind, so every
// scheduling experiment can run atop either mechanism.
//
// The methods split into three groups. Event inputs: OnSetp feeds
// condition-evaluation operands and OnBranch feeds taken backward
// branches (the only events spin detection needs). Classification
// outputs: Spinning is the per-warp state BOWS consults on every issue,
// IsSIB the sticky per-PC confirmation that arms back-off. Clocking and
// observability: Tick/NextEpochBoundary integrate with the engine's
// event-driven fast-forward (a detector whose Tick is a no-op must
// return math.MaxInt64 so skipped cycles are provably unobservable),
// and the remaining methods expose the confirmation table to metrics,
// hang reports and the manifest pipeline.
type Detector interface {
	// Tick advances any cycle-driven internal state (e.g. DDOS
	// time-sharing epochs). Detectors with no such state make it a
	// no-op.
	Tick(cycle int64)
	// NextEpochBoundary returns the next cycle at which Tick has an
	// observable effect, or math.MaxInt64 if it never does; the
	// engine's fast-forward clock never skips past this boundary.
	NextEpochBoundary() int64
	// OnSetp records one condition evaluation by the warp in slot: pc
	// is the setp instruction address, lane the profiled (first
	// active) lane, and v1/v2 that lane's source operand values.
	OnSetp(slot int, pc int32, lane int, v1, v2 uint32)
	// OnBranch observes a taken backward branch at pc by the warp in
	// slot. isSIB is the ground-truth annotation, used only for
	// detection-quality metrics.
	OnBranch(slot int, pc int32, isSIB bool, cycle int64)
	// Spinning reports the detector's current spinning classification
	// for the warp in slot.
	Spinning(slot int) bool
	// IsSIB reports whether pc is a confirmed spin-inducing branch.
	IsSIB(pc int32) bool
	// Metrics computes the SM's detection-quality summary over all
	// backward branches observed so far.
	Metrics() DetectionMetrics
	// ConfirmedPCs returns every confirmed SIB PC (order unspecified).
	ConfirmedPCs() []int32
	// TableLen returns the confirmation table's current entry count
	// (the engine tracks its high-water mark).
	TableLen() int
	// TableSnapshot returns a PC-sorted copy of the confirmation
	// table, for attaching to hang reports.
	TableSnapshot() []SIBView
	// RegisterMetrics registers the detector's observability surface
	// under prefix (e.g. "sm0.ddos.").
	RegisterMetrics(r *metrics.Registry, prefix string)
}

// detectionFrom computes detection-quality metrics from a branch
// tracking map and the confirmation table. PCs are walked in sorted
// order so the floating-point DPR sums are identical across runs
// regardless of map iteration order.
func detectionFrom(branches map[int32]*branchTrack, table *SIBPT) DetectionMetrics {
	pcs := make([]int32, 0, len(branches))
	for pc := range branches {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	var m DetectionMetrics
	for _, pc := range pcs {
		bt := branches[pc]
		e := table.entry(pc)
		confirmed := e != nil && e.confirmed
		var dpr float64
		if confirmed {
			span := bt.lastSeen - bt.firstSeen
			if span < 1 {
				span = 1
			}
			dpr = float64(e.confirmedAt-bt.firstSeen) / float64(span)
		}
		if bt.isSIB {
			m.TrueSeen++
			if confirmed {
				m.TrueDetected++
				m.TrueDPRSum += dpr
			}
		} else {
			m.FalseSeen++
			if confirmed {
				m.FalseDetected++
				m.FalseDPRSum += dpr
			}
		}
	}
	return m
}
