// Package core implements the paper's two contributions:
//
//   - DDOS (Dynamic Detection Of Spinning, §IV): per-warp path/value
//     history registers fed by setp executions, a match-pointer FSM that
//     classifies a warp as spinning when its recent control-flow path and
//     the source operands of its exit-condition computations repeat, and
//     a per-SM Spin-inducing Branch Prediction Table (SIB-PT) that
//     promotes backward branches executed by spinning warps to confirmed
//     spin-inducing branches (SIBs) through a confidence counter.
//
//   - BOWS (Back-Off Warp Spinning, §III): a wrapper over any baseline
//     warp scheduling policy that pushes a warp executing a SIB to the
//     back of the scheduling priority (the backed-off state) and enforces
//     a minimum back-off delay between consecutive spin iterations, with
//     the adaptive delay-limit controller of Figure 5.
//
// One DDOS and one BOWS instance exist per SM; BOWS additionally has a
// thin per-scheduler wrapper because warps are partitioned among
// scheduler units (Figure 8).
package core

import (
	"fmt"
	"math"

	"warpsched/internal/config"
	"warpsched/internal/metrics"
)

// hashTo folds a 32-bit value to bits wide using the configured function.
func hashTo(kind config.HashKind, v uint32, bits int) uint16 {
	mask := uint32(1)<<bits - 1
	if kind == config.HashModulo {
		return uint16(v & mask)
	}
	// XOR folding over successive bit groups (paper §IV-B).
	var h uint32
	for {
		h ^= v & mask
		v >>= bits
		if v == 0 {
			break
		}
	}
	return uint16(h & mask)
}

// history is one warp's path/value history register pair plus the match
// FSM (Figure 7b). Entries are stored newest-first; index i holds the
// record inserted i+1 insertions ago after the current insertion shifts.
type history struct {
	path []uint16 // hashed setp PCs
	valA []uint16 // hashed first source operands
	valB []uint16 // hashed second source operands
	n    int      // valid entries (≤ l)

	mp        int  // match pointer
	fixed     bool // match pointer frozen (loop period candidate found)
	remaining int
	spinning  bool
	// lastLane identifies the profiled thread the history belongs to; a
	// change of profiled lane resets the FSM so values from different
	// threads are never chained into a false repetition (see the note in
	// DESIGN.md — with per-lane lock winners retiring in lane order, the
	// "first active thread" changes every iteration and its success
	// values would otherwise repeat).
	lastLane int
}

func (h *history) reset(l int) {
	if h.path == nil {
		h.path = make([]uint16, l)
		h.valA = make([]uint16, l)
		h.valB = make([]uint16, l)
	}
	h.n, h.mp, h.remaining = 0, 0, 0
	h.fixed, h.spinning = false, false
	h.lastLane = -1
}

// insert records one setp execution and updates the spinning state.
func (h *history) insert(l int, pe, va, vb uint16) {
	matchAt := func(i int) bool {
		return i < h.n && h.path[i] == pe && h.valA[i] == va && h.valB[i] == vb
	}
	if !h.fixed {
		if h.n > 0 {
			if matchAt(h.mp) {
				// Loop of period mp+1 setp records found: freeze the
				// pointer and demand mp more consecutive matches
				// (Figure 7b step 3: remaining = matchpointer − 1 after
				// the pointer advances past the matching entry).
				h.mp++
				h.fixed = true
				h.remaining = h.mp - 1
				if h.remaining <= 0 {
					h.remaining = 0
					h.spinning = true
				}
			} else {
				h.mp++
				if h.mp >= l {
					h.mp = 0
				}
			}
		}
	} else {
		if matchAt(h.mp - 1) {
			if h.remaining > 0 {
				h.remaining--
			}
			if h.remaining == 0 {
				h.spinning = true
			}
		} else {
			// Figure 7b step 5: any mismatch clears the spinning state
			// and restarts the search.
			h.mp = 0
			h.fixed = false
			h.remaining = 0
			h.spinning = false
		}
	}
	// Shift the new record in at index 0.
	copy(h.path[1:], h.path[:l-1])
	copy(h.valA[1:], h.valA[:l-1])
	copy(h.valB[1:], h.valB[:l-1])
	h.path[0], h.valA[0], h.valB[0] = pe, va, vb
	if h.n < l {
		h.n++
	}
}

// branchTrack records encounter times of one backward branch for the
// detection-phase-ratio metric (Table I).
type branchTrack struct {
	firstSeen int64
	lastSeen  int64
	isSIB     bool // ground truth (AnnSIB)
}

// DebugBranchHook, when set, observes every backward-branch event
// (development aid; nil in production).
var DebugBranchHook func(slot int, pc int32, isSIB, spinning bool, state string)

// DebugString renders the history FSM state (development aid).
func (h *history) DebugString() string {
	return fmt.Sprintf("n=%d mp=%d fixed=%v rem=%d spin=%v path=%v valA=%v valB=%v",
		h.n, h.mp, h.fixed, h.remaining, h.spinning, h.path, h.valA, h.valB)
}

// DDOS is one SM's detector.
type DDOS struct {
	cfg   config.DDOS
	hists []history // per warp slot; single shared entry when TimeShare
	table *SIBPT

	// Time-sharing state: the slot currently owning the shared registers.
	owner      int
	numSlots   int
	epochStart int64

	branches map[int32]*branchTrack
}

// NewDDOS builds a detector for an SM with numSlots warp slots.
func NewDDOS(cfg config.DDOS, numSlots int) *DDOS {
	d := &DDOS{
		cfg:      cfg,
		table:    NewSIBPT(cfg.TableSize, cfg.ConfidenceThreshold),
		numSlots: numSlots,
		branches: make(map[int32]*branchTrack),
	}
	n := numSlots
	if cfg.TimeShare {
		n = 1
	}
	d.hists = make([]history, n)
	for i := range d.hists {
		d.hists[i].reset(cfg.HistoryLen)
	}
	return d
}

// Table exposes the SIB-PT (shared with BOWS and reporting).
func (d *DDOS) Table() *SIBPT { return d.table }

// RegisterMetrics registers the detector's observability surface under
// prefix (e.g. "sm0.ddos."): the SIB-PT counters plus detection-quality
// gauges evaluated lazily at snapshot time (Metrics walks the branch map,
// so it must stay off the per-cycle path).
func (d *DDOS) RegisterMetrics(r *metrics.Registry, prefix string) {
	d.table.RegisterMetrics(r, prefix+"sibpt.")
	r.Gauge(prefix+"branches_tracked", func() float64 { return float64(len(d.branches)) })
	r.Gauge(prefix+"tsdr", func() float64 { m := d.Metrics(); return m.TSDR() })
	r.Gauge(prefix+"fsdr", func() float64 { m := d.Metrics(); return m.FSDR() })
}

func (d *DDOS) hist(slot int) *history {
	if d.cfg.TimeShare {
		if slot != d.owner {
			return nil
		}
		return &d.hists[0]
	}
	return &d.hists[slot]
}

// Tick advances time-sharing epochs.
func (d *DDOS) Tick(cycle int64) {
	if !d.cfg.TimeShare {
		return
	}
	if cycle-d.epochStart >= d.cfg.TimeShareEpoch {
		d.epochStart = cycle
		d.owner = (d.owner + 1) % d.numSlots
		d.hists[0].reset(d.cfg.HistoryLen)
	}
}

// NextEpochBoundary returns the next cycle at which Tick rotates the
// time-shared history ownership, or math.MaxInt64 when time-sharing is
// off (Tick is then a no-op and the engine's event-driven clock may skip
// past it freely).
func (d *DDOS) NextEpochBoundary() int64 {
	if !d.cfg.TimeShare {
		return math.MaxInt64
	}
	return d.epochStart + d.cfg.TimeShareEpoch
}

// OnSetp records a setp execution: pc is the instruction address, lane
// the profiled (first active) lane, and v1/v2 that lane's source operand
// values.
func (d *DDOS) OnSetp(slot int, pc int32, lane int, v1, v2 uint32) {
	h := d.hist(slot)
	if h == nil {
		return
	}
	if lane != h.lastLane {
		l := d.cfg.HistoryLen
		h.reset(l)
		h.lastLane = lane
	}
	pe := hashTo(d.cfg.Hash, uint32(pc), d.cfg.PathBits)
	va := hashTo(d.cfg.Hash, v1, d.cfg.ValueBits)
	vb := hashTo(d.cfg.Hash, v2, d.cfg.ValueBits)
	h.insert(d.cfg.HistoryLen, pe, va, vb)
}

// Spinning reports the detector's current spinning classification for the
// warp in slot (false when the slot does not own history registers).
func (d *DDOS) Spinning(slot int) bool {
	h := d.hist(slot)
	return h != nil && h.spinning
}

// OnBranch observes a taken backward branch at pc executed by the warp in
// slot and updates the SIB-PT: spinning warps build confidence,
// non-spinning warps decay it (aliasing guard). isSIB is the ground-truth
// annotation, used only for metrics.
func (d *DDOS) OnBranch(slot int, pc int32, isSIB bool, cycle int64) {
	bt := d.branches[pc]
	if bt == nil {
		bt = &branchTrack{firstSeen: cycle, isSIB: isSIB}
		d.branches[pc] = bt
	}
	bt.lastSeen = cycle
	h := d.hist(slot)
	if h == nil {
		return // time sharing: unobserved warps neither build nor decay
	}
	if DebugBranchHook != nil {
		DebugBranchHook(slot, pc, isSIB, h.spinning, h.DebugString())
	}
	if h.spinning {
		d.table.Bump(pc, cycle)
	} else {
		d.table.Decay(pc)
	}
}

// IsSIB reports whether pc is a confirmed spin-inducing branch.
func (d *DDOS) IsSIB(pc int32) bool { return d.table.Confirmed(pc) }

// DetectionMetrics summarizes one SM's detection quality (Table I).
type DetectionMetrics struct {
	// TrueSeen/TrueDetected: ground-truth SIBs encountered / confirmed.
	TrueSeen     int
	TrueDetected int
	// FalseSeen/FalseDetected: non-SIB backward branches encountered /
	// wrongly confirmed.
	FalseSeen     int
	FalseDetected int
	// TrueDPRSum/FalseDPRSum accumulate detection phase ratios over the
	// detected branches of each class.
	TrueDPRSum  float64
	FalseDPRSum float64
}

// TSDR returns the true spin detection rate.
func (m *DetectionMetrics) TSDR() float64 {
	if m.TrueSeen == 0 {
		return 0
	}
	return float64(m.TrueDetected) / float64(m.TrueSeen)
}

// FSDR returns the false spin detection rate.
func (m *DetectionMetrics) FSDR() float64 {
	if m.FalseSeen == 0 {
		return 0
	}
	return float64(m.FalseDetected) / float64(m.FalseSeen)
}

// TrueDPR returns the mean detection phase ratio over detected true SIBs.
func (m *DetectionMetrics) TrueDPR() float64 {
	if m.TrueDetected == 0 {
		return 0
	}
	return m.TrueDPRSum / float64(m.TrueDetected)
}

// FalseDPR returns the mean detection phase ratio over false detections.
func (m *DetectionMetrics) FalseDPR() float64 {
	if m.FalseDetected == 0 {
		return 0
	}
	return m.FalseDPRSum / float64(m.FalseDetected)
}

// Add merges o into m (cross-SM aggregation).
func (m *DetectionMetrics) Add(o DetectionMetrics) {
	m.TrueSeen += o.TrueSeen
	m.TrueDetected += o.TrueDetected
	m.FalseSeen += o.FalseSeen
	m.FalseDetected += o.FalseDetected
	m.TrueDPRSum += o.TrueDPRSum
	m.FalseDPRSum += o.FalseDPRSum
}

// Metrics computes the SM's detection metrics over all backward branches
// it observed.
func (d *DDOS) Metrics() DetectionMetrics {
	return detectionFrom(d.branches, d.table)
}

// ConfirmedPCs returns every confirmed SIB PC (order unspecified).
func (d *DDOS) ConfirmedPCs() []int32 { return d.table.ConfirmedPCs() }

// TableLen returns the SIB-PT's current entry count.
func (d *DDOS) TableLen() int { return d.table.Len() }

// TableSnapshot returns a PC-sorted copy of the SIB-PT for hang
// reports.
func (d *DDOS) TableSnapshot() []SIBView { return d.table.Snapshot() }
