package core

import (
	"math"

	"warpsched/internal/config"
	"warpsched/internal/isa"
	"warpsched/internal/metrics"
	"warpsched/internal/sched"
)

// DebugAdaptive, when set, observes each adaptive-controller window
// (development aid; nil in production).
var DebugAdaptive func(cycle, tot, sib, limit int64)

// BOWS is one SM's Back-Off Warp Spinning state: per-warp backed-off
// flags, pending back-off delay expiries, and the adaptive delay-limit
// controller of Figure 5. Scheduler units attach through Wrap.
type BOWS struct {
	cfg   config.BOWS
	det   Detector // nil in static (annotation-driven) mode
	limit int64

	backedOff    []bool
	pendingUntil []int64
	// inSpinLoop tracks whether a warp's most recent taken backward
	// branch was a confirmed SIB; instructions issued while it holds are
	// the controller's "SIB instructions" (see onIssue).
	inSpinLoop []bool

	// Adaptive controller window counters.
	windowStart int64
	totInstr    int64
	sibInstr    int64
	prevRatio   float64
	havePrev    bool

	// lfsr drives the back-off jitter (see onIssue).
	lfsr uint32

	// stats
	sibExecutions int64
	// Adaptive delay-limit controller trajectory: evaluated windows,
	// raise/cut decisions, and the highest limit reached. limitHist, when
	// attached (RegisterMetrics), observes the limit after each window
	// evaluation — off the issue path by construction.
	windowsEvaluated int64
	limitRaises      int64
	limitCuts        int64
	limitPeak        int64
	limitHist        *metrics.Histogram
}

// NewBOWS creates the SM-wide BOWS state. det is the spin detector
// driving SIB confirmation (DDOS or TAGE-SIB); it may be nil when
// cfg.Mode is BOWSStatic.
func NewBOWS(cfg config.BOWS, det Detector, numSlots int) *BOWS {
	limit := cfg.DelayLimit
	if cfg.Adaptive {
		limit = cfg.MinLimit
	}
	return &BOWS{
		cfg:          cfg,
		det:          det,
		limit:        limit,
		limitPeak:    limit,
		backedOff:    make([]bool, numSlots),
		pendingUntil: make([]int64, numSlots),
		inSpinLoop:   make([]bool, numSlots),
	}
}

// RegisterMetrics registers the SM's BOWS counters under prefix (e.g.
// "sm0.bows.") and attaches the delay-limit trajectory histogram.
func (b *BOWS) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Int64(prefix+"sib_executions", &b.sibExecutions)
	r.Int64(prefix+"controller_windows", &b.windowsEvaluated)
	r.Int64(prefix+"delay_limit_raises", &b.limitRaises)
	r.Int64(prefix+"delay_limit_cuts", &b.limitCuts)
	r.Int64(prefix+"delay_limit_peak", &b.limitPeak)
	r.Gauge(prefix+"delay_limit", func() float64 { return float64(b.limit) })
	if b.cfg.Adaptive {
		// Bounds track the Table II controller range (min 1000, step 250,
		// max 10000); out-of-range configurations land in the inf bucket.
		b.limitHist = r.Histogram(prefix+"delay_limit_window",
			[]int64{1000, 2000, 4000, 6000, 8000, 10000})
	}
}

// DelayLimit returns the current back-off delay limit.
func (b *BOWS) DelayLimit() int64 { return b.limit }

// BackedOff reports whether the warp in slot is in the backed-off state.
func (b *BOWS) BackedOff(slot int) bool { return b.backedOff[slot] }

// SIBExecutions returns the number of warp SIB executions observed.
func (b *BOWS) SIBExecutions() int64 { return b.sibExecutions }

// IsSIB resolves the active trigger source for a branch instruction.
func (b *BOWS) IsSIB(pc int32, in *isa.Instr) bool {
	switch b.cfg.Mode {
	case config.BOWSStatic:
		return in.HasAnn(isa.AnnSIB)
	case config.BOWSDDOS:
		return b.det != nil && b.det.IsSIB(pc)
	}
	return false
}

// OnSIB records that the warp in slot executed (took) a spin-inducing
// branch: it enters the backed-off state (Figure 4, step 6).
func (b *BOWS) OnSIB(slot int) {
	b.sibExecutions++
	b.backedOff[slot] = true
	b.inSpinLoop[slot] = true
}

// OnBackwardNonSIB records a taken backward branch that is not a SIB: the
// warp has moved to a different (non-spin) loop.
func (b *BOWS) OnBackwardNonSIB(slot int) { b.inSpinLoop[slot] = false }

// onIssue accounts an issued instruction and handles backed-off exit: the
// warp leaves the state and its pending back-off delay restarts at the
// current limit (Figure 4, steps 3-4), plus a small LFSR-derived jitter.
//
// The jitter is an implementation addition: with a perfectly uniform
// delay, warps whose critical sections symmetrically conflict (e.g. the
// nested try-locks of ATM/DS, where A holds account X wanting Y while B
// holds Y wanting X) are re-released in lockstep and can retry-collide
// forever — a convoy livelock that real machines escape through timing
// noise the simulator does not otherwise model. A per-SM 16-bit LFSR
// (trivial hardware) spreads retries over [limit, 1.5·limit + 32), which
// preserves the paper's minimum-interval semantics.
func (b *BOWS) onIssue(slot int, cycle int64) {
	b.totInstr++
	// Figure 5's "SIB Instructions": the dynamic instructions attributable
	// to busy waiting. We attribute an issued instruction to spinning when
	// the issuing warp is inside a confirmed spin loop (its most recent
	// taken backward branch was a SIB) AND the detector currently
	// classifies it as spinning — the only reading under which the
	// FRAC1=0.5 threshold of Table II can ever trigger (the SIB branch
	// itself is at most ~20% of a spin iteration), while productive
	// polling loops (wait-and-signal kernels whose values change) do not
	// drive the limit up.
	if b.inSpinLoop[slot] && (b.det == nil || b.det.Spinning(slot)) {
		b.sibInstr++
	}
	if b.backedOff[slot] {
		b.backedOff[slot] = false
		b.pendingUntil[slot] = cycle + b.limit + b.jitter()
	}
}

func (b *BOWS) jitter() int64 {
	// 16-bit Galois LFSR, taps 0xB400.
	if b.lfsr == 0 {
		b.lfsr = 0xACE1
	}
	lsb := b.lfsr & 1
	b.lfsr >>= 1
	if lsb != 0 {
		b.lfsr ^= 0xB400
	}
	span := b.limit/2 + 32
	return int64(b.lfsr) % span
}

// eligible reports whether a backed-off warp may issue: its pending
// back-off delay must have expired.
func (b *BOWS) eligible(slot int, cycle int64) bool {
	return cycle >= b.pendingUntil[slot]
}

// minWindowInstrs is the minimum issued-instruction sample an adaptive
// window must contain before the Figure 5 conditions are evaluated. The
// paper evaluates every T=1000 cycles on SMs issuing ~2 IPC (≈2000
// instructions per window); a lightly loaded or heavily backed-off SM in
// this simulator can see under a hundred, making the window-over-window
// ratio test fire on sampling noise and pin the limit at the minimum.
// Accumulating windows until the sample matches the paper's effective
// window size preserves the controller's semantics across load levels.
const minWindowInstrs = 512

// Tick advances the adaptive delay-limit controller (Figure 5). Called
// once per SM cycle.
func (b *BOWS) Tick(cycle int64) {
	if !b.cfg.Adaptive {
		return
	}
	if cycle-b.windowStart < b.cfg.WindowCycles {
		return
	}
	if b.totInstr < minWindowInstrs {
		return // keep accumulating until the sample is meaningful
	}
	b.windowStart = cycle
	tot, sib := b.totInstr, b.sibInstr
	b.totInstr, b.sibInstr = 0, 0
	if DebugAdaptive != nil {
		DebugAdaptive(cycle, tot, sib, b.limit)
	}
	b.windowsEvaluated++
	if float64(sib) > b.cfg.Frac1*float64(tot) {
		b.limit += b.cfg.DelayStep
		b.limitRaises++
	}
	if sib > 0 {
		ratio := float64(tot) / float64(sib)
		if b.havePrev && ratio < b.cfg.Frac2*b.prevRatio {
			b.limit -= 2 * b.cfg.DelayStep
			b.limitCuts++
		}
		b.prevRatio = ratio
		b.havePrev = true
	}
	if b.limit > b.cfg.MaxLimit {
		b.limit = b.cfg.MaxLimit
	}
	if b.limit < b.cfg.MinLimit {
		b.limit = b.cfg.MinLimit
	}
	if b.limit > b.limitPeak {
		b.limitPeak = b.limit
	}
	if b.limitHist != nil {
		b.limitHist.Observe(b.limit)
	}
}

// NextWindowBoundary returns the next cycle at which Tick's adaptive
// delay-limit controller can fire, for the engine's event-driven clock:
// math.MaxInt64 when Tick is currently a pure no-op (fixed limit, or the
// window has not yet accumulated minWindowInstrs — issue events, not the
// passage of time, unblock that case), otherwise the end of the window in
// progress. When the returned boundary is in the past the controller is
// instead gated on instructions, which cannot arrive while the whole
// machine is stalled — the engine treats such a value as "do not skip".
func (b *BOWS) NextWindowBoundary() int64 {
	if !b.cfg.Adaptive || b.totInstr < minWindowInstrs {
		return math.MaxInt64
	}
	return b.windowStart + b.cfg.WindowCycles
}

// Wrapped is the per-scheduler-unit BOWS arbitration of Figure 8: the
// base policy chooses among ready, non-backed-off warps; only when none
// exists may a ready backed-off warp whose pending delay has expired
// issue, in backed-off queue (FIFO) order.
type Wrapped struct {
	base  sched.Policy
	bows  *BOWS
	queue []int // backed-off FIFO for this unit's slots

	// curReady is the ready predicate of the Pick in progress; filtered
	// is the backed-off-excluding wrapper built once at Wrap time so Pick
	// allocates no closure per cycle.
	curReady func(int) bool
	filtered func(int) bool

	// stats: backed-off queue pushes, its high-water mark, and issue
	// attempts rejected because a ready backed-off warp's pending delay
	// had not expired (the Figure 4 back-off stalls).
	enqueues     int64
	queuePeak    int64
	blockedPicks int64
}

var _ sched.Policy = (*Wrapped)(nil)

// Wrap attaches BOWS arbitration to a base policy for one scheduler unit.
func Wrap(base sched.Policy, b *BOWS) *Wrapped {
	w := &Wrapped{base: base, bows: b}
	w.filtered = func(slot int) bool {
		return !w.bows.backedOff[slot] && w.curReady(slot)
	}
	return w
}

// Name implements sched.Policy.
func (w *Wrapped) Name() string { return w.base.Name() + "+BOWS" }

// Pick implements sched.Policy.
func (w *Wrapped) Pick(cycle int64, ready func(int) bool) int {
	w.curReady = ready
	if s := w.base.Pick(cycle, w.filtered); s >= 0 {
		return s
	}
	for _, s := range w.queue {
		if ready(s) {
			if w.bows.eligible(s, cycle) {
				return s
			}
			w.blockedPicks++
		}
	}
	return -1
}

// OnIssue implements sched.Policy.
func (w *Wrapped) OnIssue(slot int, cycle int64) {
	if w.bows.backedOff[slot] {
		for i, s := range w.queue {
			if s == slot {
				w.queue = append(w.queue[:i], w.queue[i+1:]...)
				break
			}
		}
	}
	w.bows.onIssue(slot, cycle)
	w.base.OnIssue(slot, cycle)
}

// OnBranch implements sched.Policy.
func (w *Wrapped) OnBranch(slot int, backwardTaken bool) {
	w.base.OnBranch(slot, backwardTaken)
}

// OnSIB pushes the warp to the back of this unit's backed-off queue.
func (w *Wrapped) OnSIB(slot int) {
	if !w.bows.backedOff[slot] {
		w.queue = append(w.queue, slot)
		w.enqueues++
		if n := int64(len(w.queue)); n > w.queuePeak {
			w.queuePeak = n
		}
	}
	w.bows.OnSIB(slot)
}

// QueueLen returns the backed-off queue occupancy (for tests).
func (w *Wrapped) QueueLen() int { return len(w.queue) }

// BackoffStall supports the engine's event-driven clock. It reports, for
// the current all-stalled machine state, the earliest back-off expiry
// among this unit's ready backed-off warps (math.MaxInt64 when none is
// ready) and how many ready backed-off warps a failing Pick walks past.
// While every warp is stalled, each skipped cycle's Pick would scan the
// whole queue and count one blocked pick per ready warp (none is eligible,
// or the machine would not be stalled), so the engine bulk-credits
// readyBlocked × skipped cycles through CreditBlockedPicks.
func (w *Wrapped) BackoffStall(ready func(int) bool) (nextWake int64, readyBlocked int64) {
	nextWake = math.MaxInt64
	for _, s := range w.queue {
		if !ready(s) {
			continue
		}
		readyBlocked++
		if pu := w.bows.pendingUntil[s]; pu < nextWake {
			nextWake = pu
		}
	}
	return nextWake, readyBlocked
}

// CreditBlockedPicks bulk-credits blocked pick attempts for cycles the
// engine's event-driven clock skipped (see BackoffStall).
func (w *Wrapped) CreditBlockedPicks(n int64) { w.blockedPicks += n }

// BlockedPicks returns issue attempts rejected by an unexpired back-off
// delay.
func (w *Wrapped) BlockedPicks() int64 { return w.blockedPicks }

// RegisterMetrics registers the scheduler unit's back-off arbitration
// counters under prefix (e.g. "sm0.sched.u1.") and forwards to the base
// policy when it is instrumented.
func (w *Wrapped) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Int64(prefix+"backoff_enqueues", &w.enqueues)
	r.Int64(prefix+"backoff_queue_peak", &w.queuePeak)
	r.Int64(prefix+"backoff_blocked_picks", &w.blockedPicks)
	r.Gauge(prefix+"backoff_queue_len", func() float64 { return float64(len(w.queue)) })
	if ins, ok := w.base.(sched.Instrumented); ok {
		ins.RegisterMetrics(r, prefix)
	}
}
