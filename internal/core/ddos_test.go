package core

import (
	"testing"
	"testing/quick"

	"warpsched/internal/config"
)

func ddosCfg() config.DDOS { return config.DefaultDDOS() }

// feedSpin drives one warp through n iterations of a two-setp spin loop
// with constant operand values, executing the backward branch at pc 24
// after each iteration.
func feedSpin(d *DDOS, slot int, n int, cycle *int64) {
	for i := 0; i < n; i++ {
		d.OnSetp(slot, 15, 0, 1, 0) // CAS result vs 0: constant failure
		d.OnSetp(slot, 23, 0, 0, 0) // done flag vs 0: constant
		d.OnBranch(slot, 24, true, *cycle)
		*cycle += 100
	}
}

func TestDDOSDetectsConstantSpin(t *testing.T) {
	d := NewDDOS(ddosCfg(), 4)
	var cycle int64
	feedSpin(d, 0, 10, &cycle)
	if !d.Spinning(0) {
		t.Fatal("warp with repeating path+values must be classified spinning")
	}
	if !d.IsSIB(24) {
		t.Fatal("branch must be confirmed after threshold bumps")
	}
	m := d.Metrics()
	if m.TrueSeen != 1 || m.TrueDetected != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestDDOSIgnoresChangingValues(t *testing.T) {
	// A counted loop: the induction operand changes every iteration.
	d := NewDDOS(ddosCfg(), 4)
	var cycle int64
	for i := 0; i < 50; i++ {
		d.OnSetp(0, 58, 0, uint32(i), 100) // i vs limit
		d.OnBranch(0, 60, false, cycle)
		cycle += 50
	}
	if d.Spinning(0) {
		t.Fatal("counted loop misclassified as spinning")
	}
	if d.IsSIB(60) {
		t.Fatal("counted loop branch must not be confirmed")
	}
	m := d.Metrics()
	if m.FalseSeen != 1 || m.FalseDetected != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestDDOSModuloMissesHighBits(t *testing.T) {
	// MS/HL shape (Fig. 14): induction increments of 4096 are invisible
	// to 8-bit MODULO hashing but visible to XOR.
	for _, tc := range []struct {
		hash config.HashKind
		want bool // spinning misclassification expected?
	}{
		{config.HashModulo, true},
		{config.HashXOR, false},
	} {
		cfg := ddosCfg()
		cfg.Hash = tc.hash
		d := NewDDOS(cfg, 4)
		var cycle int64
		for i := 0; i < 20; i++ {
			d.OnSetp(0, 7, 0, uint32(i*4096), 32768)
			d.OnBranch(0, 9, false, cycle)
			cycle += 50
		}
		if got := d.Spinning(0); got != tc.want {
			t.Errorf("%s hashing: spinning = %v, want %v", tc.hash, got, tc.want)
		}
	}
}

func TestDDOSSpinningClearsOnValueChange(t *testing.T) {
	d := NewDDOS(ddosCfg(), 4)
	var cycle int64
	feedSpin(d, 0, 8, &cycle)
	if !d.Spinning(0) {
		t.Fatal("precondition: spinning")
	}
	// Lock acquired: CAS now returns 0 — value history mismatch.
	d.OnSetp(0, 15, 0, 0, 0)
	if d.Spinning(0) {
		t.Fatal("spinning state must clear on value mismatch (Figure 7b step 5)")
	}
}

func TestDDOSProfiledLaneChangeResetsHistory(t *testing.T) {
	d := NewDDOS(ddosCfg(), 4)
	var cycle int64
	// Alternate profiled lanes with identical values: must never be
	// classified spinning because no single thread repeats.
	for i := 0; i < 20; i++ {
		d.OnSetp(0, 15, i%2, 1, 0)
		d.OnSetp(0, 23, i%2, 0, 0)
		d.OnBranch(0, 24, true, cycle)
		cycle += 100
	}
	if d.Spinning(0) {
		t.Fatal("alternating profiled lanes must not chain into spin detection")
	}
}

func TestDDOSConfidenceDecay(t *testing.T) {
	cfg := ddosCfg()
	cfg.ConfidenceThreshold = 8
	d := NewDDOS(cfg, 4)
	var cycle int64
	// Two spinning bumps...
	feedSpin(d, 0, 6, &cycle) // history warm-up + bumps
	pre := d.Table().entry(24)
	if pre == nil || pre.Confirmed() {
		t.Fatalf("branch should be tracked but not yet confirmed (conf=%v)", pre)
	}
	conf := pre.Confidence()
	// ...then a non-spinning warp takes the branch: confidence decays.
	d.OnBranch(1, 24, true, cycle)
	if got := d.Table().entry(24).Confidence(); got != conf-1 {
		t.Fatalf("confidence = %d, want %d", got, conf-1)
	}
}

func TestDDOSConfirmationThreshold(t *testing.T) {
	for _, thr := range []int{2, 4, 8} {
		cfg := ddosCfg()
		cfg.ConfidenceThreshold = thr
		d := NewDDOS(cfg, 1)
		var cycle int64
		bumps := 0
		for i := 0; i < 40 && !d.IsSIB(24); i++ {
			d.OnSetp(0, 15, 0, 1, 0)
			d.OnSetp(0, 23, 0, 0, 0)
			if d.Spinning(0) {
				bumps++
			}
			d.OnBranch(0, 24, true, cycle)
			cycle += 100
		}
		if !d.IsSIB(24) {
			t.Fatalf("t=%d: never confirmed", thr)
		}
		if bumps != thr {
			t.Errorf("t=%d: confirmed after %d spinning bumps", thr, bumps)
		}
	}
}

func TestDDOSHistoryLengthLimits(t *testing.T) {
	// A loop whose period exceeds the history length cannot be detected.
	cfg := ddosCfg()
	cfg.HistoryLen = 4
	d := NewDDOS(cfg, 1)
	var cycle int64
	for i := 0; i < 30; i++ {
		// 6 setp records per iteration > l=4.
		for pc := int32(0); pc < 6; pc++ {
			d.OnSetp(0, 10+pc, 0, 1, 0)
		}
		d.OnBranch(0, 20, true, cycle)
		cycle += 100
	}
	if d.Spinning(0) {
		t.Fatal("period longer than history must not be detected")
	}
}

func TestDDOSTimeSharing(t *testing.T) {
	cfg := ddosCfg()
	cfg.TimeShare = true
	cfg.TimeShareEpoch = 100
	d := NewDDOS(cfg, 4)
	var cycle int64
	// Slot 0 owns the registers initially.
	feedSpin(d, 0, 8, &cycle)
	if !d.Spinning(0) {
		t.Fatal("owner slot should be tracked")
	}
	// Non-owner slots are invisible.
	d.OnSetp(1, 15, 0, 1, 0)
	if d.Spinning(1) {
		t.Fatal("non-owner slot must not be tracked")
	}
	// After the epoch advances, ownership rotates and history resets.
	d.Tick(cycle + 200)
	if d.Spinning(0) {
		t.Fatal("history must reset on epoch rotation")
	}
}

func TestHashToXORFolds(t *testing.T) {
	if hashTo(config.HashXOR, 0x12345678, 8) != uint16(0x12^0x34^0x56^0x78) {
		t.Fatal("XOR fold wrong")
	}
	if hashTo(config.HashModulo, 0x12345678, 8) != 0x78 {
		t.Fatal("MODULO wrong")
	}
	if hashTo(config.HashModulo, 0x1234, 4) != 4 {
		t.Fatal("MODULO 4-bit wrong")
	}
}

func TestHashToBounded(t *testing.T) {
	f := func(v uint32) bool {
		for _, bits := range []int{2, 3, 4, 8} {
			if int(hashTo(config.HashXOR, v, bits)) >= 1<<bits {
				return false
			}
			if int(hashTo(config.HashModulo, v, bits)) >= 1<<bits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSIBPTEviction(t *testing.T) {
	pt := NewSIBPT(2, 100) // tiny table, unreachable threshold
	pt.Bump(1, 0)
	pt.Bump(2, 0)
	pt.Bump(2, 0)
	pt.Bump(3, 0) // must evict PC 1 (lowest confidence)
	if pt.entry(1) != nil {
		t.Fatal("lowest-confidence entry should have been evicted")
	}
	if pt.entry(3) == nil || pt.entry(2) == nil {
		t.Fatal("wrong eviction victim")
	}
	if pt.Evictions() != 1 {
		t.Fatalf("evictions = %d", pt.Evictions())
	}
}

func TestSIBPTConfirmedSticky(t *testing.T) {
	pt := NewSIBPT(4, 2)
	pt.Bump(7, 0)
	pt.Bump(7, 1)
	if !pt.Confirmed(7) {
		t.Fatal("should confirm at threshold")
	}
	for i := 0; i < 10; i++ {
		pt.Decay(7)
	}
	if !pt.Confirmed(7) {
		t.Fatal("confirmation must be sticky")
	}
	if got := pt.entry(7).Confidence(); got != 0 {
		t.Fatalf("confidence should decay to 0, got %d", got)
	}
	pcs := pt.ConfirmedPCs()
	if len(pcs) != 1 || pcs[0] != 7 {
		t.Fatalf("ConfirmedPCs = %v", pcs)
	}
}

func TestDetectionMetricsMath(t *testing.T) {
	var m DetectionMetrics
	m.Add(DetectionMetrics{TrueSeen: 2, TrueDetected: 1, FalseSeen: 4, FalseDetected: 1,
		TrueDPRSum: 0.5, FalseDPRSum: 0.2})
	m.Add(DetectionMetrics{TrueSeen: 2, TrueDetected: 2, TrueDPRSum: 0.1})
	if m.TSDR() != 0.75 {
		t.Fatalf("TSDR = %f", m.TSDR())
	}
	if m.FSDR() != 0.25 {
		t.Fatalf("FSDR = %f", m.FSDR())
	}
	if d := m.TrueDPR() - 0.2; d > 1e-9 || d < -1e-9 {
		t.Fatalf("TrueDPR = %f", m.TrueDPR())
	}
	var zero DetectionMetrics
	if zero.TSDR() != 0 || zero.FSDR() != 0 || zero.TrueDPR() != 0 || zero.FalseDPR() != 0 {
		t.Fatal("zero metrics must not divide by zero")
	}
}
