package core

import (
	"math"
	"testing"

	"warpsched/internal/config"
)

func tageCfg() config.TAGE { return config.DefaultTAGE() }

// feedTageSpin drives one warp through n iterations of a two-setp spin
// loop with constant operand values, mirroring feedSpin for DDOS.
func feedTageSpin(t *TAGESIB, slot int, n int, cycle *int64) {
	for i := 0; i < n; i++ {
		t.OnSetp(slot, 15, 0, 1, 0)
		t.OnSetp(slot, 23, 0, 0, 0)
		t.OnBranch(slot, 24, true, *cycle)
		*cycle += 100
	}
}

func TestTAGEDetectsConstantSpin(t *testing.T) {
	d := NewTAGESIB(tageCfg(), 4)
	var cycle int64
	feedTageSpin(d, 0, 10, &cycle)
	if !d.Spinning(0) {
		t.Fatal("warp with repeating path+values must be classified spinning")
	}
	if !d.IsSIB(24) {
		t.Fatal("branch must be confirmed after threshold bumps")
	}
	m := d.Metrics()
	if m.TrueSeen != 1 || m.TrueDetected != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestTAGEIgnoresCountedLoop(t *testing.T) {
	d := NewTAGESIB(tageCfg(), 4)
	var cycle int64
	for i := 0; i < 50; i++ {
		d.OnSetp(0, 58, 0, uint32(i), 100)
		d.OnBranch(0, 60, false, cycle)
		cycle += 50
	}
	if d.Spinning(0) {
		t.Fatal("counted loop misclassified as spinning")
	}
	if d.IsSIB(60) {
		t.Fatal("counted loop branch must not be confirmed")
	}
	m := d.Metrics()
	if m.FalseSeen != 1 || m.FalseDetected != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestTAGELaneChangeResets(t *testing.T) {
	// A change of profiled lane must reset the slot: values from
	// different threads never chain into a false operand repeat.
	d := NewTAGESIB(tageCfg(), 4)
	for i := 0; i < 20; i++ {
		d.OnSetp(0, 15, i%2, 1, 0) // alternating lanes, constant values
	}
	if d.slots[0].streak > 0 {
		t.Fatalf("streak = %d after lane flip, want 0", d.slots[0].streak)
	}
	if d.Spinning(0) {
		t.Fatal("lane-alternating warp must not be classified spinning")
	}
}

// seededHistory drives slot 0 through a deterministic pseudo-random mix
// of setp PCs and operand patterns (xorshift-seeded, no wall clock), so
// allocation-path tests exercise a rich set of folded histories.
func seededHistory(d *TAGESIB, seed uint64, events int) {
	x := seed
	for i := 0; i < events; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pc := int32(4 * (1 + x%32))
		v := uint32(0)
		if x&0x100 != 0 {
			v = uint32(x >> 16 & 0xff) // changing operand: breaks repeats
		}
		d.OnSetp(0, pc, 0, v, 0)
	}
}

func TestTAGEAllocatesOnMispredict(t *testing.T) {
	cfg := tageCfg()
	d := NewTAGESIB(cfg, 1)
	seededHistory(d, 0x9e3779b97f4a7c15, 2000)
	if d.allocs == 0 {
		t.Fatal("mispredictions over a varied history must allocate tagged entries")
	}
	if d.predHits+d.predMisses != 2000 {
		t.Fatalf("every OnSetp must score the prediction: hits+misses = %d",
			d.predHits+d.predMisses)
	}
}

func TestTAGEUsefulDecayFreesEntries(t *testing.T) {
	// Tiny tables and a short decay period: sustained allocation pressure
	// must trigger the global useful decay instead of wedging forever.
	cfg := config.TAGE{Tables: 2, BaseHist: 2, Ratio: 2, IndexBits: 2,
		TagBits: 8, ConfidenceThreshold: 4, UsefulDecayPeriod: 4}
	d := NewTAGESIB(cfg, 1)
	seededHistory(d, 0xdeadbeefcafef00d, 5000)
	if d.allocFails == 0 {
		t.Skip("workload produced no allocation failures; decay not exercised")
	}
	if d.usefulDecays == 0 {
		t.Fatalf("allocFails = %d without a useful decay (period %d)",
			d.allocFails, cfg.UsefulDecayPeriod)
	}
}

func TestTAGEAliasedIndexCannotFakeSpin(t *testing.T) {
	// PCs 15 and 79 share a base index at IndexBits=4 ((pc>>2) & 15 == 3
	// for both). Training a spin on one warp at pc 15 must not classify
	// another warp's counted loop at pc 79 as spinning: the spin
	// classification requires the current observation to be an operand
	// repeat, so tag or index aliasing alone can never fake a spin.
	cfg := tageCfg()
	cfg.IndexBits = 4
	d := NewTAGESIB(cfg, 2)
	var cycle int64
	feedTageSpin(d, 0, 20, &cycle)
	for i := 0; i < 50; i++ {
		d.OnSetp(1, 79, 0, uint32(i), 100)
		d.OnBranch(1, 80, false, cycle)
		cycle += 50
	}
	if !d.Spinning(0) {
		t.Fatal("trained spin warp must stay classified")
	}
	if d.Spinning(1) {
		t.Fatal("aliased counted loop misclassified as spinning")
	}
	if d.IsSIB(80) {
		t.Fatal("aliased counted-loop branch must not be confirmed")
	}
}

func TestTAGEDeterministic(t *testing.T) {
	// Two predictors fed the same event stream must agree bit for bit on
	// every observable: the engine's determinism gate rests on this.
	a := NewTAGESIB(tageCfg(), 2)
	b := NewTAGESIB(tageCfg(), 2)
	for _, d := range []*TAGESIB{a, b} {
		seededHistory(d, 42, 3000)
		var cycle int64
		feedTageSpin(d, 1, 10, &cycle)
	}
	if a.allocs != b.allocs || a.allocFails != b.allocFails ||
		a.usefulDecays != b.usefulDecays ||
		a.predHits != b.predHits || a.predMisses != b.predMisses {
		t.Fatalf("counter divergence: %+v vs %+v",
			[]int64{a.allocs, a.allocFails, a.usefulDecays, a.predHits, a.predMisses},
			[]int64{b.allocs, b.allocFails, b.usefulDecays, b.predHits, b.predMisses})
	}
	for slot := 0; slot < 2; slot++ {
		if a.Spinning(slot) != b.Spinning(slot) {
			t.Fatalf("slot %d classification diverged", slot)
		}
	}
	am, bm := a.Metrics(), b.Metrics()
	if am != bm {
		t.Fatalf("metrics diverged: %+v vs %+v", am, bm)
	}
}

func TestTAGEFastForwardContract(t *testing.T) {
	// The engine's event-driven fast-forward is exact only because Tick
	// is a no-op; the boundary must advertise that.
	d := NewTAGESIB(tageCfg(), 1)
	if got := d.NextEpochBoundary(); got != math.MaxInt64 {
		t.Fatalf("NextEpochBoundary = %d, want MaxInt64", got)
	}
}
