package core

import (
	"math"

	"warpsched/internal/config"
	"warpsched/internal/metrics"
)

// tageSIBPTSize sizes the TAGE confirmation table; it matches the
// paper's conservative 16-entry SIB-PT so DDOS and TAGE-SIB rows of the
// sensitivity table differ only in their detection front-end.
const tageSIBPTSize = 16

// tageEntry is one tagged-table entry: a partial tag, a 3-bit spin
// confidence counter (predict spinning when >= 4) and a 2-bit useful
// counter governing allocation victims.
type tageEntry struct {
	valid  bool
	tag    uint16
	ctr    uint8
	useful uint8
}

// tageSlot is one warp slot's predictor-side state: the raw path
// history ring the per-table folded histories are computed from, the
// last-seen operand signature per setp PC (the training oracle), and
// the latched spinning classification.
type tageSlot struct {
	ring []uint16 // hashed setp records, newest at head
	head int
	n    int

	lastVal map[int32]uint64 // setp pc -> packed (v1, v2) of last execution
	streak  int              // consecutive operand-repeat observations
	spin    bool
	// lastLane mirrors DDOS: a change of profiled lane resets the slot
	// so values from different threads never chain into a false repeat.
	lastLane int
}

func (s *tageSlot) reset(maxHist int) {
	if s.ring == nil {
		s.ring = make([]uint16, maxHist)
	}
	s.head, s.n, s.streak = 0, 0, 0
	s.spin = false
	s.lastLane = -1
	s.lastVal = make(map[int32]uint64)
}

// push shifts one record into the history ring.
func (s *tageSlot) push(rec uint16) {
	s.head = (s.head + 1) % len(s.ring)
	s.ring[s.head] = rec
	if s.n < len(s.ring) {
		s.n++
	}
}

// fold compresses the newest length records into width bits by
// rotate-and-XOR, oldest first so the newest record lands unrotated.
func (s *tageSlot) fold(length, width int) uint32 {
	mask := uint32(1)<<width - 1
	rot := 3 % width
	var h uint32
	for j := length - 1; j >= 0; j-- {
		if rot > 0 {
			h = ((h << rot) | (h >> (width - rot))) & mask
		}
		if j < s.n {
			h ^= uint32(s.ring[(s.head-j+len(s.ring))%len(s.ring)]) & mask
		}
	}
	return h
}

// TAGESIB is one SM's tagged-geometric-history spin predictor. It
// implements the same Detector contract as DDOS but replaces the
// history-register match FSM with a TAGE-style lookup: each warp keeps
// a global path history of its setp executions, and 3-4 tagged tables
// with geometrically-spaced history lengths learn which path contexts
// lead to spin iterations (an execution of a setp whose source operands
// are unchanged since its previous execution — the defining property of
// a spin-wait re-check). A warp is classified as spinning when the
// longest matching table predicts spin and the current observation
// confirms it, or — before the tables are trained — when it has
// observed ConfidenceThreshold consecutive operand repeats. Confirmed
// spin-inducing branches then accumulate in a SIB-PT exactly as in
// DDOS, so BOWS consumes either detector unchanged.
//
// The predictor is event-count-driven: Tick is a no-op and
// NextEpochBoundary returns math.MaxInt64, so the engine's event-driven
// fast-forward stays cycle-exact atop it.
type TAGESIB struct {
	cfg   config.TAGE
	hists []int // per-table history lengths, shortest first

	tables [][]tageEntry
	base   []uint8 // tagless bimodal base, 2-bit counters
	slots  []tageSlot
	table  *SIBPT

	branches map[int32]*branchTrack

	// Observability counters.
	allocs       int64
	allocFails   int64
	usefulDecays int64
	predHits     int64
	predMisses   int64
	failStreak   int
}

var (
	_ Detector = (*DDOS)(nil)
	_ Detector = (*TAGESIB)(nil)
)

// NewTAGESIB builds a predictor for an SM with numSlots warp slots.
func NewTAGESIB(cfg config.TAGE, numSlots int) *TAGESIB {
	t := &TAGESIB{
		cfg:      cfg,
		table:    NewSIBPT(tageSIBPTSize, cfg.ConfidenceThreshold),
		branches: make(map[int32]*branchTrack),
		base:     make([]uint8, 1<<cfg.IndexBits),
	}
	h := cfg.BaseHist
	for i := 0; i < cfg.Tables; i++ {
		if h < i+1 {
			h = i + 1
		}
		t.hists = append(t.hists, h)
		t.tables = append(t.tables, make([]tageEntry, 1<<cfg.IndexBits))
		h *= cfg.Ratio
	}
	maxHist := t.hists[len(t.hists)-1]
	t.slots = make([]tageSlot, numSlots)
	for i := range t.slots {
		t.slots[i].reset(maxHist)
	}
	return t
}

// index computes table i's index and partial tag for the warp in s
// executing the setp at pc, from the history preceding the current
// event.
func (t *TAGESIB) index(s *tageSlot, i int, pc int32) (uint32, uint16) {
	pcBits := uint32(pc) >> 2
	idxMask := uint32(1)<<t.cfg.IndexBits - 1
	tagMask := uint32(1)<<t.cfg.TagBits - 1
	idx := (s.fold(t.hists[i], t.cfg.IndexBits) ^ pcBits ^ uint32(i)) & idxMask
	tag := (s.fold(t.hists[i], t.cfg.TagBits) ^ pcBits ^ (pcBits >> t.cfg.TagBits)) & tagMask
	return idx, uint16(tag)
}

// Tick is a no-op: the predictor advances on setp/branch events only.
func (t *TAGESIB) Tick(cycle int64) {}

// NextEpochBoundary returns math.MaxInt64: Tick never has an observable
// effect, so the engine's fast-forward clock may skip freely.
func (t *TAGESIB) NextEpochBoundary() int64 { return math.MaxInt64 }

// OnSetp records one condition evaluation: it derives the training bit
// (operands unchanged since this PC's previous execution by this warp),
// looks up the tagged tables on the pre-event path history, updates the
// provider and useful bits, allocates on misprediction, refreshes the
// warp's spinning classification, and finally pushes the event into the
// path history.
func (t *TAGESIB) OnSetp(slot int, pc int32, lane int, v1, v2 uint32) {
	s := &t.slots[slot]
	if lane != s.lastLane {
		s.reset(t.hists[len(t.hists)-1])
		s.lastLane = lane
	}
	key := uint64(v1)<<32 | uint64(v2)
	prev, seen := s.lastVal[pc]
	repeat := seen && prev == key
	s.lastVal[pc] = key

	// Lookup: longest matching table provides the prediction, the next
	// match (or the base table) the alternate.
	baseIdx := (uint32(pc) >> 2) & (uint32(1)<<t.cfg.IndexBits - 1)
	basePred := t.base[baseIdx] >= 2
	pred, altPred := basePred, basePred
	provider, provIdx := -1, uint32(0)
	for i := t.cfg.Tables - 1; i >= 0; i-- {
		idx, tag := t.index(s, i, pc)
		e := &t.tables[i][idx]
		if !e.valid || e.tag != tag {
			continue
		}
		if provider < 0 {
			provider, provIdx = i, idx
			pred = e.ctr >= 4
			continue
		}
		altPred = e.ctr >= 4
		break
	}

	correct := pred == repeat
	if correct {
		t.predHits++
	} else {
		t.predMisses++
	}
	if provider >= 0 {
		e := &t.tables[provider][provIdx]
		if repeat {
			if e.ctr < 7 {
				e.ctr++
			}
		} else if e.ctr > 0 {
			e.ctr--
		}
		// The useful counter tracks whether the provider beats its
		// alternate, in the classic TAGE style.
		if pred != altPred {
			if correct && e.useful < 3 {
				e.useful++
			} else if !correct && e.useful > 0 {
				e.useful--
			}
		}
	} else {
		if repeat {
			if t.base[baseIdx] < 3 {
				t.base[baseIdx]++
			}
		} else if t.base[baseIdx] > 0 {
			t.base[baseIdx]--
		}
	}

	// Allocation: a misprediction tries to claim a not-useful entry in
	// one longer-history table; repeated failures age every useful bit
	// so stale entries eventually free up (graceful decay).
	if !correct && provider < t.cfg.Tables-1 {
		allocated := false
		for i := provider + 1; i < t.cfg.Tables; i++ {
			idx, tag := t.index(s, i, pc)
			e := &t.tables[i][idx]
			if e.valid && e.useful > 0 {
				continue
			}
			ctr := uint8(3)
			if repeat {
				ctr = 4
			}
			*e = tageEntry{valid: true, tag: tag, ctr: ctr}
			t.allocs++
			allocated = true
			break
		}
		if allocated {
			if t.failStreak > 0 {
				t.failStreak--
			}
		} else {
			t.allocFails++
			t.failStreak++
			if t.failStreak >= t.cfg.UsefulDecayPeriod {
				t.failStreak = 0
				t.usefulDecays++
				for i := range t.tables {
					for j := range t.tables[i] {
						if t.tables[i][j].useful > 0 {
							t.tables[i][j].useful--
						}
					}
				}
			}
		}
	}

	// Classification: a trained path signature confirmed by the current
	// observation, or a cold-start streak of operand repeats.
	if repeat {
		s.streak++
	} else {
		s.streak = 0
	}
	s.spin = (pred && repeat) || s.streak >= t.cfg.ConfidenceThreshold

	rec := uint16(uint32(pc)>>2) << 1
	if repeat {
		rec |= 1
	}
	s.push(rec)
}

// Spinning reports the predictor's current classification for the warp
// in slot.
func (t *TAGESIB) Spinning(slot int) bool { return t.slots[slot].spin }

// OnBranch observes a taken backward branch at pc by the warp in slot
// and updates the confirmation table exactly as DDOS does: spinning
// warps build confidence, non-spinning warps decay it.
func (t *TAGESIB) OnBranch(slot int, pc int32, isSIB bool, cycle int64) {
	bt := t.branches[pc]
	if bt == nil {
		bt = &branchTrack{firstSeen: cycle, isSIB: isSIB}
		t.branches[pc] = bt
	}
	bt.lastSeen = cycle
	if t.slots[slot].spin {
		t.table.Bump(pc, cycle)
	} else {
		t.table.Decay(pc)
	}
}

// IsSIB reports whether pc is a confirmed spin-inducing branch.
func (t *TAGESIB) IsSIB(pc int32) bool { return t.table.Confirmed(pc) }

// Metrics computes the SM's detection metrics over all backward
// branches it observed.
func (t *TAGESIB) Metrics() DetectionMetrics {
	return detectionFrom(t.branches, t.table)
}

// ConfirmedPCs returns every confirmed SIB PC (order unspecified).
func (t *TAGESIB) ConfirmedPCs() []int32 { return t.table.ConfirmedPCs() }

// TableLen returns the confirmation table's current entry count.
func (t *TAGESIB) TableLen() int { return t.table.Len() }

// TableSnapshot returns a PC-sorted copy of the confirmation table for
// hang reports.
func (t *TAGESIB) TableSnapshot() []SIBView { return t.table.Snapshot() }

// RegisterMetrics registers the predictor's observability surface under
// prefix (e.g. "sm0.tage."): the confirmation-table counters, the
// predictor's allocation/decay/accuracy counters, and the same lazy
// detection-quality gauges DDOS exposes.
func (t *TAGESIB) RegisterMetrics(r *metrics.Registry, prefix string) {
	t.table.RegisterMetrics(r, prefix+"sibpt.")
	r.Int64(prefix+"allocations", &t.allocs)
	r.Int64(prefix+"allocation_failures", &t.allocFails)
	r.Int64(prefix+"useful_decays", &t.usefulDecays)
	r.Int64(prefix+"predict_hits", &t.predHits)
	r.Int64(prefix+"predict_misses", &t.predMisses)
	r.Gauge(prefix+"branches_tracked", func() float64 { return float64(len(t.branches)) })
	r.Gauge(prefix+"tsdr", func() float64 { m := t.Metrics(); return m.TSDR() })
	r.Gauge(prefix+"fsdr", func() float64 { m := t.Metrics(); return m.FSDR() })
}
