package core

import (
	"testing"
	"testing/quick"

	"warpsched/internal/config"
	"warpsched/internal/isa"
	"warpsched/internal/sched"
)

func fixedBOWS(limit int64) *BOWS {
	return NewBOWS(config.FixedBOWS(limit), nil, 8)
}

func allReady(int) bool { return true }

func TestBOWSBackedOffDeprioritized(t *testing.T) {
	b := fixedBOWS(100)
	base := sched.NewLRR([]int{0, 1, 2})
	w := Wrap(base, b)
	// Warp 1 executes a SIB: it must lose priority to 0 and 2.
	w.OnSIB(1)
	if !b.BackedOff(1) {
		t.Fatal("warp 1 should be backed off")
	}
	picks := map[int]bool{}
	for c := int64(0); c < 3; c++ {
		s := w.Pick(c, allReady)
		picks[s] = true
		w.OnIssue(s, c)
		if s == 1 && (c == 0) {
			t.Fatal("backed-off warp picked while others ready")
		}
	}
	if !picks[0] || !picks[2] {
		t.Fatalf("non-backed-off warps should issue first: %v", picks)
	}
}

func TestBOWSBackedOffIssuesWhenAlone(t *testing.T) {
	b := fixedBOWS(0) // no minimum delay
	base := sched.NewLRR([]int{0, 1})
	w := Wrap(base, b)
	w.OnSIB(0)
	only0 := func(s int) bool { return s == 0 }
	got := w.Pick(5, only0)
	if got != 0 {
		t.Fatalf("lone ready backed-off warp should issue, got %d", got)
	}
	w.OnIssue(0, 5)
	if b.BackedOff(0) {
		t.Fatal("issuing must exit the backed-off state")
	}
}

func TestBOWSPendingDelayGatesNextIteration(t *testing.T) {
	limit := int64(1000)
	b := fixedBOWS(limit)
	base := sched.NewLRR([]int{0})
	w := Wrap(base, b)

	// Iteration 1: warp backs off, issues at cycle 10 (exits, delay arms).
	w.OnSIB(0)
	if got := w.Pick(10, allReady); got != 0 {
		t.Fatalf("pick = %d", got)
	}
	w.OnIssue(0, 10)
	// It hits the SIB again quickly.
	w.OnSIB(0)
	// Before expiry it must not be eligible even with a free slot.
	if got := w.Pick(200, allReady); got != -1 {
		t.Fatalf("warp issued at cycle 200 with pending delay, got %d", got)
	}
	// After limit + max jitter it must be eligible.
	late := 10 + limit + limit/2 + 32 + 1
	if got := w.Pick(late, allReady); got != 0 {
		t.Fatalf("warp not released after delay expiry, got %d", got)
	}
}

func TestBOWSMinimumIntervalProperty(t *testing.T) {
	// Property: consecutive backed-off exits are at least `limit` apart.
	f := func(limitRaw uint16, gaps []uint8) bool {
		limit := int64(limitRaw%5000) + 1
		b := fixedBOWS(limit)
		base := sched.NewLRR([]int{0})
		w := Wrap(base, b)
		cycle := int64(0)
		lastExit := int64(-1 << 30)
		for _, g := range gaps {
			w.OnSIB(0)
			// Advance until eligible.
			cycle += int64(g)
			for w.Pick(cycle, allReady) != 0 {
				cycle++
				if cycle > 1<<40 {
					return false
				}
			}
			if cycle-lastExit < limit && lastExit >= 0 {
				return false
			}
			w.OnIssue(0, cycle)
			lastExit = cycle
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBOWSQueueFIFO(t *testing.T) {
	b := fixedBOWS(0)
	base := sched.NewLRR([]int{0, 1, 2})
	w := Wrap(base, b)
	w.OnSIB(2)
	w.OnSIB(0)
	w.OnSIB(1)
	if w.QueueLen() != 3 {
		t.Fatalf("queue len = %d", w.QueueLen())
	}
	// All backed off: released in SIB order 2, 0, 1. Released warps are
	// made unready so each pick must come from the queue.
	issued := map[int]bool{}
	ready := func(s int) bool { return !issued[s] }
	var order []int
	for c := int64(0); c < 3; c++ {
		s := w.Pick(c, ready)
		order = append(order, s)
		w.OnIssue(s, c)
		issued[s] = true
	}
	want := []int{2, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("release order = %v, want %v", order, want)
		}
	}
	if w.QueueLen() != 0 {
		t.Fatalf("queue should drain, len = %d", w.QueueLen())
	}
}

func TestBOWSDoubleSIBNoDuplicate(t *testing.T) {
	b := fixedBOWS(0)
	w := Wrap(sched.NewLRR([]int{0}), b)
	w.OnSIB(0)
	w.OnSIB(0)
	if w.QueueLen() != 1 {
		t.Fatalf("duplicate queue entries: %d", w.QueueLen())
	}
}

func TestBOWSStaticTrigger(t *testing.T) {
	b := NewBOWS(config.BOWS{Mode: config.BOWSStatic, DelayLimit: 0}, nil, 4)
	sib := &isa.Instr{Op: isa.OpBra, Ann: isa.AnnSIB}
	plain := &isa.Instr{Op: isa.OpBra}
	if !b.IsSIB(10, sib) {
		t.Fatal("static mode must trigger on AnnSIB")
	}
	if b.IsSIB(10, plain) {
		t.Fatal("static mode must not trigger on unannotated branches")
	}
}

func TestBOWSDDOSTrigger(t *testing.T) {
	d := NewDDOS(config.DefaultDDOS(), 4)
	b := NewBOWS(config.DefaultBOWS(), d, 4)
	plain := &isa.Instr{Op: isa.OpBra}
	if b.IsSIB(24, plain) {
		t.Fatal("unconfirmed branch must not trigger")
	}
	var cycle int64
	feedSpin(d, 0, 10, &cycle)
	if !b.IsSIB(24, plain) {
		t.Fatal("confirmed branch must trigger regardless of annotation")
	}
}

func TestAdaptiveClimbsUnderSpin(t *testing.T) {
	cfg := config.DefaultBOWS()
	b := NewBOWS(cfg, nil, 4)
	start := b.DelayLimit()
	cycle := int64(0)
	// Saturate windows with spin-attributed instructions.
	for w := 0; w < 20; w++ {
		b.OnSIB(0)
		for i := 0; i < int(minWindowInstrs)+1; i++ {
			b.onIssue(0, cycle)
			b.OnSIB(0) // stay in spin loop
		}
		cycle += cfg.WindowCycles
		b.Tick(cycle)
	}
	if b.DelayLimit() <= start {
		t.Fatalf("limit should climb under pure spinning: %d", b.DelayLimit())
	}
	if b.DelayLimit() > cfg.MaxLimit {
		t.Fatalf("limit exceeds max: %d", b.DelayLimit())
	}
}

func TestAdaptiveStaysAtMinWithoutSpin(t *testing.T) {
	cfg := config.DefaultBOWS()
	b := NewBOWS(cfg, nil, 4)
	cycle := int64(0)
	for w := 0; w < 20; w++ {
		for i := 0; i < int(minWindowInstrs)+1; i++ {
			b.onIssue(0, cycle) // never in a spin loop
		}
		cycle += cfg.WindowCycles
		b.Tick(cycle)
	}
	if b.DelayLimit() != cfg.MinLimit {
		t.Fatalf("limit moved without spinning: %d", b.DelayLimit())
	}
}

func TestAdaptiveClampProperty(t *testing.T) {
	// Whatever the issue pattern, the limit stays within [Min, Max].
	f := func(pattern []bool) bool {
		cfg := config.DefaultBOWS()
		b := NewBOWS(cfg, nil, 2)
		cycle := int64(0)
		for _, spin := range pattern {
			for i := 0; i < int(minWindowInstrs)+1; i++ {
				if spin {
					b.OnSIB(0)
				} else {
					b.OnBackwardNonSIB(0)
				}
				b.onIssue(0, cycle)
			}
			cycle += cfg.WindowCycles
			b.Tick(cycle)
			if b.DelayLimit() < cfg.MinLimit || b.DelayLimit() > cfg.MaxLimit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJitterBounded(t *testing.T) {
	b := fixedBOWS(1000)
	for i := 0; i < 10000; i++ {
		j := b.jitter()
		if j < 0 || j >= 1000/2+32 {
			t.Fatalf("jitter %d out of bounds", j)
		}
	}
}

func TestWrappedName(t *testing.T) {
	w := Wrap(sched.NewGTO([]int{0}, 0), fixedBOWS(0))
	if w.Name() != "GTO+BOWS" {
		t.Fatalf("name = %q", w.Name())
	}
}
