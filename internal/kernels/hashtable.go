package kernels

import (
	"fmt"

	"warpsched/internal/isa"
	"warpsched/internal/sim"
)

// HashTableConfig parameterizes the chained-hashtable insertion kernel
// (paper Figure 1a): Items random keys are inserted into Buckets chains
// by CTAs×CTAThreads threads in a grid-stride loop. DelayFactor > 0 adds
// the software back-off delay code of Figure 3a to the lock-failure path.
type HashTableConfig struct {
	Items       int
	Buckets     int
	CTAs        int
	CTAThreads  int
	DelayFactor int
	Seed        int64
}

// Hashtable memory layout parameter indices.
const (
	htParamItems = iota
	htParamBuckets
	htParamKeys
	htParamLocks
	htParamHeads
	htParamNexts
	htParamDelay
)

// NewHashTable builds the HT kernel. The PTX shape follows Figure 7a: a
// bottom-tested busy-wait loop whose backward branch is the ground-truth
// SIB, an atomicCAS acquire, the insertion critical section, and an
// atomicExch release inside the loop (the SIMT-deadlock-free idiom of
// Figure 1a).
func NewHashTable(c HashTableConfig) *Kernel {
	if c.Seed == 0 {
		c.Seed = 1
	}
	var l layout
	keys := l.array(c.Items)
	l.alignLine()
	locks := l.array(c.Buckets)
	l.alignLine()
	heads := l.array(c.Buckets)
	l.alignLine()
	nexts := l.array(c.Items)

	const (
		rN, rB, rKeys, rLocks, rHeads, rNexts = 10, 11, 12, 13, 14, 15
		rStride, rI, rKey, rH, rDone          = 16, 2, 4, 5, 6
		rCas, rHead, rTmp                     = 7, 8, 9
		rClk0, rClk1, rElapsed, rLimit        = 20, 21, 22, 23
		pLoop, pGot, pSpin, pDelay            = 0, 1, 2, 3
	)

	b := isa.NewBuilder("HT")
	b.LdParam(rN, htParamItems)
	b.LdParam(rB, htParamBuckets)
	b.LdParam(rKeys, htParamKeys)
	b.LdParam(rLocks, htParamLocks)
	b.LdParam(rHeads, htParamHeads)
	b.LdParam(rNexts, htParamNexts)
	b.Mov(rI, isa.S(isa.SpecGTID))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	if c.DelayFactor > 0 {
		// DELAY_FACTOR * blockIdx.x (Figure 3a line 6).
		b.LdParam(rLimit, htParamDelay)
		b.Mul(rLimit, isa.R(rLimit), isa.S(isa.SpecCTAID))
	}
	b.While(pLoop, false,
		func() { b.Setp(isa.LT, pLoop, isa.R(rI), isa.R(rN)) },
		func() {
			b.Ld(rKey, isa.R(rKeys), isa.R(rI))
			b.Rem(rH, isa.R(rKey), isa.R(rB))
			b.Annotate(isa.AnnSync, func() { b.Mov(rDone, isa.I(0)) })
			b.DoWhile(pSpin, false, true,
				func() {
					b.Annotate(isa.AnnSync, func() {
						b.AtomCAS(rCas, isa.R(rLocks), isa.R(rH), isa.I(0), isa.I(1))
						b.AnnotateLast(isa.AnnLockAcquire)
						b.Setp(isa.EQ, pGot, isa.R(rCas), isa.I(0))
					})
					b.If(pGot, false, func() {
						// Critical section: the useful insertion work.
						b.LdVol(rHead, isa.R(rHeads), isa.R(rH))
						b.St(isa.R(rNexts), isa.R(rI), isa.R(rHead))
						b.St(isa.R(rHeads), isa.R(rH), isa.R(rI))
						b.Annotate(isa.AnnSync, func() {
							b.Mov(rDone, isa.I(1))
							b.Membar()
							b.AtomExch(rTmp, isa.R(rLocks), isa.R(rH), isa.I(0))
							b.AnnotateLast(isa.AnnLockRelease)
						})
					})
					if c.DelayFactor > 0 {
						// Figure 3a back-off delay on the failure path.
						b.Annotate(isa.AnnSync, func() {
							b.If(pGot, true, func() {
								b.Clock(rClk0)
								b.DoWhile(pDelay, false, false,
									func() {
										b.Clock(rClk1)
										b.Sub(rElapsed, isa.R(rClk1), isa.R(rClk0))
									},
									func() {
										b.Setp(isa.LT, pDelay, isa.R(rElapsed), isa.R(rLimit))
									})
							})
						})
					}
				},
				func() {
					b.Annotate(isa.AnnSync, func() {
						b.Setp(isa.EQ, pSpin, isa.R(rDone), isa.I(0))
					})
				})
			b.AnnotateLast(isa.AnnSync)
			b.Add(rI, isa.R(rI), isa.R(rStride))
		})
	b.Exit()
	prog := b.MustBuild()

	params := make([]uint32, 7)
	params[htParamItems] = uint32(c.Items)
	params[htParamBuckets] = uint32(c.Buckets)
	params[htParamKeys] = keys
	params[htParamLocks] = locks
	params[htParamHeads] = heads
	params[htParamNexts] = nexts
	params[htParamDelay] = uint32(c.DelayFactor)

	keyVals := make([]uint32, c.Items)
	r := rng(c.Seed)
	for i := range keyVals {
		keyVals[i] = uint32(r.Intn(1 << 24))
	}

	setup := func(w []uint32) {
		copy(w[keys:], keyVals)
		for i := 0; i < c.Buckets; i++ {
			w[heads+uint32(i)] = 0xFFFFFFFF // empty chain
		}
	}

	verify := func(w []uint32) error {
		seen := make([]bool, c.Items)
		total := 0
		for bkt := 0; bkt < c.Buckets; bkt++ {
			cur := w[heads+uint32(bkt)]
			steps := 0
			for cur != 0xFFFFFFFF {
				if cur >= uint32(c.Items) {
					return fmt.Errorf("HT: bucket %d: bad entry index %d", bkt, cur)
				}
				if seen[cur] {
					return fmt.Errorf("HT: entry %d linked twice", cur)
				}
				seen[cur] = true
				if got := keyVals[cur] % uint32(c.Buckets); got != uint32(bkt) {
					return fmt.Errorf("HT: entry %d (key %d) in bucket %d, want %d", cur, keyVals[cur], bkt, got)
				}
				total++
				cur = w[nexts+cur]
				if steps++; steps > c.Items {
					return fmt.Errorf("HT: cycle in bucket %d chain", bkt)
				}
			}
		}
		if total != c.Items {
			return fmt.Errorf("HT: %d entries linked, want %d", total, c.Items)
		}
		return nil
	}

	name := "HT"
	if c.DelayFactor > 0 {
		name = fmt.Sprintf("HT/delay%d", c.DelayFactor)
	}
	return &Kernel{
		Name:  name,
		Class: ClassSync,
		Desc:  fmt.Sprintf("chained hashtable: %d inserts, %d buckets", c.Items, c.Buckets),
		Launch: sim.Launch{
			Prog:       prog,
			GridCTAs:   c.CTAs,
			CTAThreads: c.CTAThreads,
			Params:     params,
			MemWords:   l.size(),
			Setup:      setup,
		},
		Verify: verify,
	}
}
