package kernels

import (
	"fmt"

	"warpsched/internal/isa"
	"warpsched/internal/sim"
)

// NW scoring parameters.
const (
	nwMatch    = 3
	nwMismatch = -2
	nwGap      = 1
)

// NewNW builds the Needleman-Wunsch wavefront kernel (paper §V, the
// lock/flag-based dataflow implementation of Li et al. [16]): the DP
// matrix is partitioned into 32-row bands, one warp per band. Within a
// band the warp sweeps an anti-diagonal (lane l computes row l of the
// band at column t−l on step t), so intra-band dependencies are satisfied
// by SIMT lockstep plus a fence per step. Across bands, lane 0 busy-waits
// on the previous band's per-column progress flag — the fine-grained
// wait-and-signal synchronization the paper studies. Band b depends on
// band b−1, so older warps unblock younger ones (why NW prefers GTO,
// paper §VI).
//
// direction 1 (NW1) fills the matrix top-left to bottom-right; direction
// 2 (NW2) computes the reverse DP, traversing the matrix in the opposite
// direction with the same synchronization structure.
//
// g is the DP dimension; the launch uses exactly g threads, so g must be
// a multiple of 32 and of ctaThreads.
func NewNW(direction, g, ctaThreads int) *Kernel {
	if g%ctaThreads != 0 || g%32 != 0 {
		panic(fmt.Sprintf("NW: g=%d must be a multiple of 32 and of ctaThreads=%d", g, ctaThreads))
	}
	ctas := g / ctaThreads
	bands := g / 32
	stride := g + 1 // DP matrix row stride

	var l layout
	matrix := l.array((g + 1) * (g + 1))
	l.alignLine()
	seqA := l.array(g)
	seqB := l.array(g)
	l.alignLine()
	progress := l.array(bands)

	const (
		rG, rMatB, rAB, rBB, rProgB    = 10, 11, 12, 13, 14
		rRow, rBand, rLane, rT, rCol   = 2, 4, 5, 6, 7
		rDiag, rLeft, rUp, rChA, rChB  = 8, 9, 15, 16, 17
		rScore, rV, rTmp, rFlag, rPr   = 18, 19, 20, 21, 22
		rOwnOff, rUpOff, rPrevBand, rC = 23, 24, 25, 26
		pT, pGe0, pLtG, pDep, pWait    = 0, 1, 2, 3, 4
		pEq, pSig                      = 5, 6
	)

	name := fmt.Sprintf("NW%d", direction)
	b := isa.NewBuilder(name)
	b.LdParam(rG, 0)
	b.LdParam(rMatB, 1)
	b.LdParam(rAB, 2)
	b.LdParam(rBB, 3)
	b.LdParam(rProgB, 4)
	b.Mov(rLane, isa.S(isa.SpecLaneID))
	b.Mov(rTmp, isa.S(isa.SpecGTID))
	b.Shr(rBand, isa.R(rTmp), isa.I(5)) // global warp id = band
	if direction == 1 {
		b.Mov(rRow, isa.R(rTmp)) // DP row rRow+1
	} else {
		// NW2: lane l of band w owns DP row g-1-gtid; band 0 holds the
		// dependency-free bottom rows.
		b.Sub(rRow, isa.R(rG), isa.I(1))
		b.Sub(rRow, isa.R(rRow), isa.R(rTmp)) // DP row rRow
	}
	b.Sub(rPrevBand, isa.R(rBand), isa.I(1))
	// hasDep ⇔ lane == 0 && band > 0: flag = (band==0 ? 1 : lane).
	b.Setp(isa.EQ, pDep, isa.R(rBand), isa.I(0))
	b.Selp(rFlag, pDep, isa.I(1), isa.R(rLane))
	b.Setp(isa.EQ, pDep, isa.R(rFlag), isa.I(0))
	// Row offsets and boundary-initialized diag/left registers.
	if direction == 1 {
		b.Mul(rUpOff, isa.R(rRow), isa.I(int32(stride))) // dependency DP row
		b.Add(rTmp, isa.R(rRow), isa.I(1))
		b.Mul(rOwnOff, isa.R(rTmp), isa.I(int32(stride))) // own DP row
		b.Ld(rDiag, isa.R(rMatB), isa.R(rUpOff))          // M[row][0]
		b.Ld(rLeft, isa.R(rMatB), isa.R(rOwnOff))         // M[row+1][0]
		b.Ld(rChA, isa.R(rAB), isa.R(rRow))
	} else {
		b.Mul(rOwnOff, isa.R(rRow), isa.I(int32(stride))) // own DP row
		b.Add(rTmp, isa.R(rRow), isa.I(1))
		b.Mul(rUpOff, isa.R(rTmp), isa.I(int32(stride))) // dependency DP row
		b.Add(rTmp, isa.R(rUpOff), isa.I(int32(g)))
		b.Ld(rDiag, isa.R(rMatB), isa.R(rTmp)) // M[row+1][g]
		b.Add(rTmp, isa.R(rOwnOff), isa.I(int32(g)))
		b.Ld(rLeft, isa.R(rMatB), isa.R(rTmp)) // M[row][g]
		b.Ld(rChA, isa.R(rAB), isa.R(rRow))
	}

	// Anti-diagonal sweep: step t activates lane l on column t-l.
	b.For(rT, isa.I(0), isa.I(int32(g+31)), 1, pT, func() {
		b.Sub(rCol, isa.R(rT), isa.R(rLane))
		b.Setp(isa.GE, pGe0, isa.R(rCol), isa.I(0))
		b.If(pGe0, false, func() {
			b.Setp(isa.LT, pLtG, isa.R(rCol), isa.R(rG))
			b.If(pLtG, false, func() {
				// Cross-band wait: lane 0 spins until the previous band
				// has published this column (Figure 6c-style polling).
				b.If(pDep, false, func() {
					b.Annotate(isa.AnnSync, func() {
						b.DoWhile(pWait, false, true,
							func() { b.LdVol(rPr, isa.R(rProgB), isa.R(rPrevBand)) },
							func() { b.Setp(isa.LE, pWait, isa.R(rPr), isa.R(rCol)) })
						b.AnnotateLast(isa.AnnWaitCheck)
					})
				})
				// Column index within the matrix row.
				if direction == 1 {
					b.Add(rC, isa.R(rCol), isa.I(1)) // store col+1
					b.Add(rTmp, isa.R(rUpOff), isa.R(rC))
					b.LdVol(rUp, isa.R(rMatB), isa.R(rTmp)) // M[row][col+1]
					b.Ld(rChB, isa.R(rBB), isa.R(rCol))
				} else {
					b.Sub(rC, isa.R(rG), isa.I(1))
					b.Sub(rC, isa.R(rC), isa.R(rCol)) // store col' = g-1-col
					b.Add(rTmp, isa.R(rUpOff), isa.R(rC))
					b.LdVol(rUp, isa.R(rMatB), isa.R(rTmp)) // M[row+1][col']
					b.Ld(rChB, isa.R(rBB), isa.R(rC))
				}
				b.Setp(isa.EQ, pEq, isa.R(rChA), isa.R(rChB))
				b.Selp(rScore, pEq, isa.I(nwMatch), isa.I(nwMismatch))
				b.Add(rV, isa.R(rDiag), isa.R(rScore))
				b.Sub(rTmp, isa.R(rUp), isa.I(nwGap))
				b.Max(rV, isa.R(rV), isa.R(rTmp))
				b.Sub(rTmp, isa.R(rLeft), isa.I(nwGap))
				b.Max(rV, isa.R(rV), isa.R(rTmp))
				b.Add(rTmp, isa.R(rOwnOff), isa.R(rC))
				// Each lane owns one DP row (rOwnOff = row*stride with row
				// an affine function of gtid); the dependency-row loads read
				// the neighbouring band's row, one stride away. The
				// row-times-stride product and loop-carried column make the
				// separation non-affine for warprace, and the cross-band
				// ordering itself is enforced by the progress flag spin.
				b.St(isa.R(rMatB), isa.R(rTmp), isa.R(rV))
				b.NoLintLast("race")
				b.Mov(rLeft, isa.R(rV))
				b.Mov(rDiag, isa.R(rUp))
				// Publish: lane 31 signals the band's progress after its
				// cell store has drained.
				b.Annotate(isa.AnnSync, func() {
					b.Membar()
					b.Setp(isa.EQ, pSig, isa.R(rLane), isa.I(31))
					b.If(pSig, false, func() {
						b.Add(rTmp, isa.R(rCol), isa.I(1))
						// Only lane 31 of each band publishes, and bands map
						// one-to-one onto progress words; the lane==31 guard
						// plus the spin-read pairing is a release/acquire
						// protocol warprace's pair rule does not model.
						b.St(isa.R(rProgB), isa.R(rBand), isa.R(rTmp))
						b.NoLintLast("race")
					})
				})
			})
		})
	})
	b.Exit()
	prog := b.MustBuild()

	r := rng(int64(17 + direction))
	aV := make([]uint32, g)
	bV := make([]uint32, g)
	for i := 0; i < g; i++ {
		aV[i] = uint32(r.Intn(4)) // nucleotide alphabet
		bV[i] = uint32(r.Intn(4))
	}

	// Reference DP in Go.
	ref := make([]int32, (g+1)*(g+1))
	if direction == 1 {
		for j := 0; j <= g; j++ {
			ref[j] = int32(-j * nwGap)
		}
		for i := 1; i <= g; i++ {
			ref[i*stride] = int32(-i * nwGap)
			for j := 1; j <= g; j++ {
				s := int32(nwMismatch)
				if aV[i-1] == bV[j-1] {
					s = nwMatch
				}
				v := ref[(i-1)*stride+j-1] + s
				if w := ref[(i-1)*stride+j] - nwGap; w > v {
					v = w
				}
				if w := ref[i*stride+j-1] - nwGap; w > v {
					v = w
				}
				ref[i*stride+j] = v
			}
		}
	} else {
		for j := 0; j <= g; j++ {
			ref[g*stride+j] = int32(-(g - j) * nwGap)
		}
		for i := g - 1; i >= 0; i-- {
			ref[i*stride+g] = int32(-(g - i) * nwGap)
			for j := g - 1; j >= 0; j-- {
				s := int32(nwMismatch)
				if aV[i] == bV[j] {
					s = nwMatch
				}
				v := ref[(i+1)*stride+j+1] + s
				if w := ref[(i+1)*stride+j] - nwGap; w > v {
					v = w
				}
				if w := ref[i*stride+j+1] - nwGap; w > v {
					v = w
				}
				ref[i*stride+j] = v
			}
		}
	}

	setup := func(w []uint32) {
		copy(w[seqA:], aV)
		copy(w[seqB:], bV)
		if direction == 1 {
			for j := 0; j <= g; j++ {
				w[matrix+uint32(j)] = uint32(int32(-j * nwGap))
			}
			for i := 1; i <= g; i++ {
				w[matrix+uint32(i*stride)] = uint32(int32(-i * nwGap))
			}
		} else {
			for j := 0; j <= g; j++ {
				w[matrix+uint32(g*stride+j)] = uint32(int32(-(g - j) * nwGap))
			}
			for i := 0; i < g; i++ {
				w[matrix+uint32(i*stride+g)] = uint32(int32(-(g - i) * nwGap))
			}
		}
	}

	verify := func(w []uint32) error {
		for i := 0; i <= g; i++ {
			for j := 0; j <= g; j++ {
				got := int32(w[matrix+uint32(i*stride+j)])
				if got != ref[i*stride+j] {
					return fmt.Errorf("%s: M[%d][%d] = %d, want %d", name, i, j, got, ref[i*stride+j])
				}
			}
		}
		return nil
	}

	return &Kernel{
		Name:  name,
		Class: ClassSync,
		Desc:  fmt.Sprintf("Needleman-Wunsch wavefront %dx%d, direction %d", g, g, direction),
		Launch: sim.Launch{
			Prog:       prog,
			GridCTAs:   ctas,
			CTAThreads: ctaThreads,
			Params:     []uint32{uint32(g), matrix, seqA, seqB, progress},
			MemWords:   l.size(),
			Setup:      setup,
		},
		Verify: verify,
	}
}
