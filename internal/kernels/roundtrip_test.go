package kernels

import (
	"reflect"
	"testing"

	"warpsched/internal/isa"
)

// TestAssemblyRoundTrip re-parses the textual assembly of every registered
// kernel and requires the resulting program to be instruction-for-
// instruction identical to the built one. This pins Assembly and Parse to
// each other: any operand, annotation, guard or reconvergence point that
// one side emits and the other drops shows up as a mismatch here.
func TestAssemblyRoundTrip(t *testing.T) {
	for _, k := range allRegistered() {
		t.Run(k.Name, func(t *testing.T) {
			p := k.Launch.Prog
			p2, err := isa.Parse(p.Name, p.Assembly())
			if err != nil {
				t.Fatalf("Parse(Assembly()) failed: %v", err)
			}
			if len(p2.Code) != len(p.Code) {
				t.Fatalf("round trip changed length: %d -> %d", len(p.Code), len(p2.Code))
			}
			for pc := range p.Code {
				if !reflect.DeepEqual(p2.Code[pc], p.Code[pc]) {
					t.Errorf("pc %d differs:\n built: %s\nparsed: %s",
						pc, isa.Disasm(&p.Code[pc]), isa.Disasm(&p2.Code[pc]))
				}
			}
			if len(p2.TrueSIBs) != len(p.TrueSIBs) {
				t.Fatalf("round trip changed TrueSIBs: %v -> %v", p.TrueSIBs, p2.TrueSIBs)
			}
			for i := range p.TrueSIBs {
				if p2.TrueSIBs[i] != p.TrueSIBs[i] {
					t.Fatalf("round trip changed TrueSIBs: %v -> %v", p.TrueSIBs, p2.TrueSIBs)
				}
			}
		})
	}
}
