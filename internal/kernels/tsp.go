package kernels

import (
	"fmt"

	"warpsched/internal/isa"
	"warpsched/internal/sim"
)

// NewTSP builds the Travelling-Salesman kernel (paper §V, Figure 6b):
// each thread is a hill climber that evaluates candidate tours (the
// dominant, synchronization-free compute), then publishes its best cost
// under a single global lock, serializing threads within a warp with the
// `for (i = 0; i < 32; i++) if (laneid == i)` idiom and spinning on
// `while (atomicCAS(mutex,0,1) != 0)` — the classic single-setp spin
// loop. Synchronization instructions are a tiny fraction of the total,
// matching the paper's observation (<0.03%).
func NewTSP(climbers, cities, ctas, ctaThreads int) *Kernel {
	const passes = 12
	var l layout
	dist := l.array(cities * cities)
	l.alignLine()
	lock := l.array(1)
	l.alignLine()
	best := l.array(1)
	bestIdx := l.array(1)

	const (
		rM, rDistB, rLockB, rBestB, rIdxB = 10, 11, 12, 13, 14
		rCost, rK, rP, rIdx, rD, rLane    = 2, 4, 5, 6, 7, 8
		rCas, rCur, rSer, rTmp, rM2       = 9, 15, 16, 17, 18
		pKLoop, pPLoop, pSer, pSpin, pBet = 0, 1, 2, 3, 4
	)

	b := isa.NewBuilder("TSP")
	b.LdParam(rM, 0)
	b.LdParam(rDistB, 1)
	b.LdParam(rLockB, 2)
	b.LdParam(rBestB, 3)
	b.LdParam(rIdxB, 4)
	b.Mul(rM2, isa.R(rM), isa.R(rM))
	b.Mov(rCost, isa.I(0))
	b.Mov(rLane, isa.S(isa.SpecLaneID))
	// Hill-climbing passes: accumulate pseudo-tour edge weights. The
	// index pattern depends on gtid and pass so different climbers read
	// different distance entries.
	b.For(rP, isa.I(0), isa.I(passes), 1, pPLoop, func() {
		b.For(rK, isa.I(0), isa.R(rM), 1, pKLoop, func() {
			// idx = (k*31 + gtid*7 + p*13) % (M*M)
			b.Mul(rIdx, isa.R(rK), isa.I(31))
			b.Mov(rTmp, isa.S(isa.SpecGTID))
			b.Mul(rTmp, isa.R(rTmp), isa.I(7))
			b.Add(rIdx, isa.R(rIdx), isa.R(rTmp))
			b.Mul(rTmp, isa.R(rP), isa.I(13))
			b.Add(rIdx, isa.R(rIdx), isa.R(rTmp))
			b.Rem(rIdx, isa.R(rIdx), isa.R(rM2))
			b.Ld(rD, isa.R(rDistB), isa.R(rIdx))
			b.Xor(rTmp, isa.R(rD), isa.R(rK))
			b.Add(rCost, isa.R(rCost), isa.R(rTmp))
		})
	})
	b.And(rCost, isa.R(rCost), isa.I(0x7FFFFFFF)) // keep cost non-negative
	// Unlocked pre-check (double-checked locking): only climbers whose
	// candidate beats the published best contend for the global lock —
	// this is why synchronization is a vanishing fraction of TSP's
	// instructions (paper: <0.03%).
	b.LdVol(rCur, isa.R(rBestB), isa.I(0))
	b.Setp(isa.LT, pBet, isa.R(rCost), isa.R(rCur))
	b.If(pBet, false, func() {
		// Publish under the global lock, one lane at a time (Figure 6b).
		b.For(rSer, isa.I(0), isa.I(32), 1, pSer, func() {
			b.Setp(isa.EQ, pSpin, isa.R(rLane), isa.R(rSer))
			b.If(pSpin, false, func() {
				b.Annotate(isa.AnnSync, func() {
					b.DoWhile(pSpin, false, true,
						func() {
							b.AtomCAS(rCas, isa.R(rLockB), isa.I(0), isa.I(0), isa.I(1))
							b.AnnotateLast(isa.AnnLockAcquire)
						},
						func() { b.Setp(isa.NE, pSpin, isa.R(rCas), isa.I(0)) })
				})
				// critical section: re-check under the lock
				b.LdVol(rCur, isa.R(rBestB), isa.I(0))
				b.Setp(isa.LT, pBet, isa.R(rCost), isa.R(rCur))
				b.If(pBet, false, func() {
					b.St(isa.R(rBestB), isa.I(0), isa.R(rCost))
					b.Mov(rTmp, isa.S(isa.SpecGTID))
					b.St(isa.R(rIdxB), isa.I(0), isa.R(rTmp))
				})
				b.Annotate(isa.AnnSync, func() {
					b.Membar()
					b.AtomExch(rTmp, isa.R(rLockB), isa.I(0), isa.I(0))
					b.AnnotateLast(isa.AnnLockRelease)
				})
			})
		})
	})
	b.Exit()
	prog := b.MustBuild()

	r := rng(13)
	distV := make([]uint32, cities*cities)
	for i := range distV {
		distV[i] = uint32(1 + r.Intn(1000))
	}
	// Mirror the kernel's cost function for verification.
	costOf := func(gtid int) uint32 {
		var cost uint32
		for p := 0; p < passes; p++ {
			for k := 0; k < cities; k++ {
				idx := (k*31 + gtid*7 + p*13) % (cities * cities)
				cost += distV[idx] ^ uint32(k)
			}
		}
		return cost & 0x7FFFFFFF
	}
	minCost := uint32(0x7FFFFFFF)
	for t := 0; t < climbers; t++ {
		if c := costOf(t); c < minCost {
			minCost = c
		}
	}

	if climbers != ctas*ctaThreads {
		panic(fmt.Sprintf("TSP: climbers (%d) must equal ctas*ctaThreads (%d)", climbers, ctas*ctaThreads))
	}

	return &Kernel{
		Name:  "TSP",
		Class: ClassSync,
		Desc:  fmt.Sprintf("TSP hill climbing: %d climbers, %d cities, one global lock", climbers, cities),
		Launch: sim.Launch{
			Prog:       prog,
			GridCTAs:   ctas,
			CTAThreads: ctaThreads,
			Params:     []uint32{uint32(cities), dist, lock, best, bestIdx},
			MemWords:   l.size(),
			Setup: func(w []uint32) {
				copy(w[dist:], distV)
				w[best] = 0x7FFFFFFF
			},
		},
		Verify: func(w []uint32) error {
			if w[lock] != 0 {
				return fmt.Errorf("TSP: global lock still held")
			}
			if w[best] != minCost {
				return fmt.Errorf("TSP: best cost %d, want %d", w[best], minCost)
			}
			winner := w[bestIdx]
			if winner >= uint32(climbers) {
				return fmt.Errorf("TSP: best index %d out of range", winner)
			}
			if costOf(int(winner)) != minCost {
				return fmt.Errorf("TSP: winner %d has cost %d, not the minimum %d",
					winner, costOf(int(winner)), minCost)
			}
			return nil
		},
	}
}
