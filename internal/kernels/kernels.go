// Package kernels defines the benchmark suite of the paper's Section V —
// the eight fine-grained-synchronization kernels (TB, ST, DS, ATM, HT,
// TSP, NW1, NW2) and a set of synchronization-free kernels standing in
// for Rodinia (including the two loop shapes, MS and HL, that trigger
// MODULO-hash false detections in Figure 14) — each with a deterministic
// input generator and a functional verifier that checks the final memory
// image, so scheduler changes can never silently break program semantics.
package kernels

import (
	"fmt"
	"math/rand"

	"warpsched/internal/sim"
)

// Class partitions the suite for experiment selection.
type Class string

const (
	// ClassSync kernels use busy-wait synchronization.
	ClassSync Class = "sync"
	// ClassSyncFree kernels have no inter-thread synchronization (barriers
	// at most) and must be unaffected by a correct detector.
	ClassSyncFree Class = "sync-free"
)

// Kernel bundles a launch with its verifier.
type Kernel struct {
	Name  string
	Class Class
	Desc  string
	// Launch is the simulator input.
	Launch sim.Launch
	// Verify inspects the final memory image and returns an error on any
	// functional violation.
	Verify func(words []uint32) error
}

// layout is a bump allocator for laying out arrays in the flat word
// memory.
type layout struct{ next uint32 }

// array reserves n words and returns the base address.
func (l *layout) array(n int) uint32 {
	base := l.next
	l.next += uint32(n)
	return base
}

// alignLine advances to the next 128-byte line boundary.
func (l *layout) alignLine() {
	const lw = 32
	if r := l.next % lw; r != 0 {
		l.next += lw - r
	}
}

// size returns the total words allocated (with slack for safety).
func (l *layout) size() int { return int(l.next) + 64 }

// rng returns a deterministic generator for input synthesis.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SyncSuite returns the paper's eight synchronization kernels in the
// order of Figure 2 (TB, ST, DS, ATM, HT, TSP, NW1, NW2) at the default
// scaled sizes documented in EXPERIMENTS.md. Sizes are chosen to
// saturate the default 4-SM scaled Fermi (192 warp slots = 6144 threads)
// at thread:lock contention ratios comparable to the paper's inputs —
// BOWS's effects only appear when spinning warps compete with useful
// work for issue slots and memory bandwidth.
func SyncSuite() []*Kernel {
	return []*Kernel{
		NewBHTB(12288, 8, 8, 128), // CTA count limited, as in the real TB
		NewBHST(16383, 32, 128),
		NewClothDS(12288, 384, 48, 128),
		NewATM(12288, 256, 48, 128),
		NewHashTable(HashTableConfig{Items: 12288, Buckets: 256, CTAs: 48, CTAThreads: 128}),
		NewTSP(6144, 64, 48, 128),
		NewNW(1, 512, 128),
		NewNW(2, 512, 128),
	}
}

// SyncFreeSuite returns the Rodinia-standin kernels used for the
// false-detection studies (Table I denominators, Figure 14).
func SyncFreeSuite() []*Kernel {
	return []*Kernel{
		NewKmeansCopy(16384, 8, 128),
		NewVecAdd(32768, 16, 128),
		NewReduce(64, 256),
		NewMergeSortPass(131072, 8, 128),
		NewHeartwall(32768, 8, 128),
		NewStencil(16384, 8, 128),
		NewBFS(1024, 4, 256),
		NewHotspot(64, 4, 128),
		NewPathfinder(64, 256),
		NewBackprop(128, 1024, 8, 128),
		NewSRAD(8192, 4, 128),
		NewLUD(32, 256),
		NewNN(1024, 32, 8, 128),
		NewGaussian(48, 3, 4, 128),
	}
}

// QuickSyncSuite returns reduced-size instances of the synchronization
// suite for tests and testing.B benchmarks (same structure, smaller
// inputs; see EXPERIMENTS.md for the scaling rationale).
func QuickSyncSuite() []*Kernel {
	return []*Kernel{
		NewBHTB(6144, 7, 4, 128),
		NewBHST(8191, 16, 128),
		NewClothDS(3072, 128, 24, 128),
		NewATM(3072, 128, 24, 128),
		NewHashTable(HashTableConfig{Items: 6144, Buckets: 128, CTAs: 24, CTAThreads: 128}),
		NewTSP(3072, 48, 24, 128),
		NewNW(1, 256, 128),
		NewNW(2, 256, 128),
	}
}

// QuickSyncFreeSuite returns reduced-size sync-free kernels.
func QuickSyncFreeSuite() []*Kernel {
	return []*Kernel{
		NewKmeansCopy(2048, 2, 64),
		NewVecAdd(2048, 2, 64),
		NewReduce(8, 128),
		NewMergeSortPass(65536, 2, 64),
		NewHeartwall(8192, 2, 64),
		NewStencil(2048, 2, 64),
		NewBFS(512, 3, 128),
		NewHotspot(32, 2, 64),
		NewPathfinder(32, 128),
		NewBackprop(64, 256, 2, 128),
		NewSRAD(2048, 2, 64),
		NewLUD(24, 128),
		NewNN(256, 16, 2, 128),
		NewGaussian(32, 2, 2, 64),
	}
}

// ByName returns the kernel with the given name from both suites.
func ByName(name string) (*Kernel, error) {
	for _, k := range append(SyncSuite(), SyncFreeSuite()...) {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q", name)
}

// Names lists all kernel names, sync suite first.
func Names() []string {
	var out []string
	for _, k := range append(SyncSuite(), SyncFreeSuite()...) {
		out = append(out, k.Name)
	}
	return out
}
