package kernels

import (
	"strings"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/sim"
)

// goldenMemory runs k once and returns the verified final memory image.
func goldenMemory(t *testing.T, k *Kernel) []uint32 {
	t.Helper()
	g := config.GTX480().Scaled(2)
	g.MaxCycles = 100_000_000
	eng, err := sim.New(sim.Options{GPU: g, Sched: config.GTO,
		BOWS: config.BOWS{Mode: config.BOWSOff}, DDOS: config.DefaultDDOS()}, k.Launch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Verify(res.Memory); err != nil {
		t.Fatal(err)
	}
	return res.Memory
}

// TestVerifiersCatchCorruption flips words in an otherwise correct memory
// image and checks each kernel's verifier notices — a verifier that
// cannot fail would make the whole integration suite vacuous.
func TestVerifiersCatchCorruption(t *testing.T) {
	cases := []struct {
		kernel *Kernel
		// corrupt mutates the golden image in a way the verifier must flag.
		corrupt func(w []uint32)
		wantErr string
	}{
		{
			kernel:  NewHashTable(HashTableConfig{Items: 512, Buckets: 64, CTAs: 2, CTAThreads: 64}),
			corrupt: func(w []uint32) { w[512+64] = 0xFFFFFFFF }, // first lock words region? use heads: drop a chain
			wantErr: "",
		},
	}
	_ = cases
	// Table-driven with per-kernel targeted corruption:
	t.Run("HT-droppedChain", func(t *testing.T) {
		k := NewHashTable(HashTableConfig{Items: 512, Buckets: 64, CTAs: 2, CTAThreads: 64})
		w := goldenMemory(t, k)
		// heads base is params[4]
		heads := k.Launch.Params[4]
		w[heads] = 0xFFFFFFFF // empty out bucket 0's chain
		if err := k.Verify(w); err == nil {
			t.Fatal("verifier must catch a dropped chain")
		}
	})
	t.Run("HT-doubleLink", func(t *testing.T) {
		k := NewHashTable(HashTableConfig{Items: 512, Buckets: 64, CTAs: 2, CTAThreads: 64})
		w := goldenMemory(t, k)
		nexts := k.Launch.Params[5]
		// Create a self-loop.
		w[nexts] = 0
		heads := k.Launch.Params[4]
		keys := k.Launch.Params[2]
		w[heads+w[keys]%64] = 0
		if err := k.Verify(w); err == nil {
			t.Fatal("verifier must catch cycles/double links")
		}
	})
	t.Run("ATM-lostMoney", func(t *testing.T) {
		k := NewATM(256, 64, 2, 64)
		w := goldenMemory(t, k)
		bal := k.Launch.Params[5]
		w[bal] -= 1
		if err := k.Verify(w); err == nil || !strings.Contains(err.Error(), "balance") {
			t.Fatalf("verifier must catch a lost unit: %v", err)
		}
	})
	t.Run("ATM-heldLock", func(t *testing.T) {
		k := NewATM(256, 64, 2, 64)
		w := goldenMemory(t, k)
		locks := k.Launch.Params[4]
		w[locks+3] = 1
		if err := k.Verify(w); err == nil || !strings.Contains(err.Error(), "lock") {
			t.Fatalf("verifier must catch a held lock: %v", err)
		}
	})
	t.Run("DS-unsolved", func(t *testing.T) {
		k := NewClothDS(256, 64, 2, 64)
		w := goldenMemory(t, k)
		done := k.Launch.Params[5]
		w[done+7] = 0
		if err := k.Verify(w); err == nil || !strings.Contains(err.Error(), "not solved") {
			t.Fatalf("verifier must catch an unsolved constraint: %v", err)
		}
	})
	t.Run("DS-driftedSum", func(t *testing.T) {
		k := NewClothDS(256, 64, 2, 64)
		w := goldenMemory(t, k)
		pos := k.Launch.Params[4]
		w[pos+5] += 3
		if err := k.Verify(w); err == nil || !strings.Contains(err.Error(), "conserved") {
			t.Fatalf("verifier must catch sum drift: %v", err)
		}
	})
	t.Run("TSP-wrongBest", func(t *testing.T) {
		k := NewTSP(128, 16, 2, 64)
		w := goldenMemory(t, k)
		best := k.Launch.Params[3]
		w[best]++
		if err := k.Verify(w); err == nil || !strings.Contains(err.Error(), "best") {
			t.Fatalf("verifier must catch a wrong optimum: %v", err)
		}
	})
	t.Run("TB-lostBody", func(t *testing.T) {
		k := NewBHTB(512, 5, 2, 64)
		w := goldenMemory(t, k)
		child := k.Launch.Params[4]
		w[child] = 0xFFFFFFFF
		if err := k.Verify(w); err == nil {
			t.Fatal("verifier must catch dropped bodies")
		}
	})
	t.Run("TB-countMismatch", func(t *testing.T) {
		k := NewBHTB(512, 5, 2, 64)
		w := goldenMemory(t, k)
		cnt := k.Launch.Params[6]
		w[cnt+2]++
		if err := k.Verify(w); err == nil || !strings.Contains(err.Error(), "count") {
			t.Fatalf("verifier must catch aggregate/chain mismatch: %v", err)
		}
	})
	t.Run("ST-misplacedLeaf", func(t *testing.T) {
		k := NewBHST(1023, 2, 64)
		w := goldenMemory(t, k)
		out := k.Launch.Params[3]
		w[out], w[out+1] = w[out+1], w[out]
		if err := k.Verify(w); err == nil {
			t.Fatal("verifier must catch misordered output")
		}
	})
	t.Run("NW1-wrongCell", func(t *testing.T) {
		k := NewNW(1, 64, 64)
		w := goldenMemory(t, k)
		matrix := k.Launch.Params[1]
		w[matrix+65*30+17] += 2
		if err := k.Verify(w); err == nil {
			t.Fatal("verifier must catch a wrong DP cell")
		}
	})
	t.Run("VECADD-wrongSum", func(t *testing.T) {
		k := NewVecAdd(512, 1, 64)
		w := goldenMemory(t, k)
		c := k.Launch.Params[3]
		w[c+100]++
		if err := k.Verify(w); err == nil {
			t.Fatal("verifier must catch a wrong element")
		}
	})
}

// TestSuiteShapes sanity-checks suite composition and metadata.
func TestSuiteShapes(t *testing.T) {
	syncSuite := SyncSuite()
	if len(syncSuite) != 8 {
		t.Fatalf("sync suite size = %d, want the paper's 8 kernels", len(syncSuite))
	}
	order := []string{"TB", "ST", "DS", "ATM", "HT", "TSP", "NW1", "NW2"}
	for i, k := range syncSuite {
		if k.Name != order[i] {
			t.Errorf("suite[%d] = %s, want %s (paper's Figure 2 order)", i, k.Name, order[i])
		}
		if k.Class != ClassSync {
			t.Errorf("%s should be ClassSync", k.Name)
		}
		if len(k.Launch.Prog.TrueSIBs) == 0 {
			t.Errorf("%s has no ground-truth SIB annotation", k.Name)
		}
		if k.Verify == nil || k.Desc == "" {
			t.Errorf("%s missing verifier or description", k.Name)
		}
	}
	for _, k := range SyncFreeSuite() {
		if k.Class != ClassSyncFree {
			t.Errorf("%s should be ClassSyncFree", k.Name)
		}
		if len(k.Launch.Prog.TrueSIBs) != 0 {
			t.Errorf("sync-free kernel %s has a SIB annotation", k.Name)
		}
	}
	if _, err := ByName("HT"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("missing"); err == nil {
		t.Error("unknown name must error")
	}
	if len(Names()) != len(syncSuite)+len(SyncFreeSuite()) {
		t.Error("Names() incomplete")
	}
}
