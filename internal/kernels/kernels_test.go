package kernels

import (
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/sim"
)

// runKernel simulates k and verifies functional correctness.
func runKernel(t *testing.T, k *Kernel, opt sim.Options) *sim.Result {
	t.Helper()
	eng, err := sim.New(opt, k.Launch)
	if err != nil {
		t.Fatalf("%s: New: %v", k.Name, err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("%s: Run: %v", k.Name, err)
	}
	if err := k.Verify(res.Memory); err != nil {
		t.Fatalf("%s: verify: %v", k.Name, err)
	}
	return res
}

// smallOpt builds a 2-SM test configuration.
func smallOpt(kind config.SchedulerKind, bows config.BOWSMode) sim.Options {
	g := config.GTX480().Scaled(2)
	g.MaxCycles = 30_000_000
	b := config.BOWS{Mode: config.BOWSOff}
	if bows != config.BOWSOff {
		b = config.DefaultBOWS()
		b.Mode = bows
	}
	return sim.Options{GPU: g, Sched: kind, BOWS: b, DDOS: config.DefaultDDOS()}
}

// The quick suites keep the full cross-product affordable in CI.
func smallSuite() []*Kernel    { return QuickSyncSuite() }
func smallSyncFree() []*Kernel { return QuickSyncFreeSuite() }

// TestSyncKernelsCorrectUnderAllSchedulers is the central integration
// test: every synchronization kernel must produce a functionally correct
// result under every baseline policy, with and without BOWS.
func TestSyncKernelsCorrectUnderAllSchedulers(t *testing.T) {
	for _, k := range smallSuite() {
		for _, kind := range config.Schedulers {
			for _, mode := range []config.BOWSMode{config.BOWSOff, config.BOWSDDOS} {
				name := k.Name + "/" + string(kind)
				if mode != config.BOWSOff {
					name += "+BOWS"
				}
				k := k
				t.Run(name, func(t *testing.T) {
					runKernel(t, k, smallOpt(kind, mode))
				})
			}
		}
	}
}

// TestSyncFreeKernelsCorrect verifies the sync-free suite under GTO and
// GTO+BOWS (where a correct detector must change nothing functionally).
func TestSyncFreeKernelsCorrect(t *testing.T) {
	for _, k := range smallSyncFree() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			runKernel(t, k, smallOpt(config.GTO, config.BOWSOff))
			runKernel(t, k, smallOpt(config.GTO, config.BOWSDDOS))
		})
	}
}

// TestDDOSDetectsHTSpinLoop checks the headline detection claim on HT:
// the ground-truth SIB is confirmed with zero false detections under the
// default (XOR) configuration.
func TestDDOSDetectsHTSpinLoop(t *testing.T) {
	k := NewHashTable(HashTableConfig{Items: 2048, Buckets: 64, CTAs: 4, CTAThreads: 64})
	res := runKernel(t, k, smallOpt(config.GTO, config.BOWSOff))
	det := res.Detection
	if det.TSDR() != 1 {
		t.Errorf("TSDR = %.2f, want 1 (true=%d/%d)", det.TSDR(), det.TrueDetected, det.TrueSeen)
	}
	if det.FSDR() != 0 {
		t.Errorf("FSDR = %.2f, want 0 (false=%d/%d)", det.FSDR(), det.FalseDetected, det.FalseSeen)
	}
}

// TestQueueLockHashtable runs HT on the idealized blocking-lock machine
// (the Fig. 16b comparator): it must be functionally identical and must
// record no failed acquires from parked warps.
func TestQueueLockHashtable(t *testing.T) {
	k := NewHashTable(HashTableConfig{Items: 2048, Buckets: 64, CTAs: 8, CTAThreads: 128})
	opt := smallOpt(config.GTO, config.BOWSOff)
	opt.GPU.Mem.QueueLocks = true
	res := runKernel(t, k, opt)
	base := runKernel(t, k, smallOpt(config.GTO, config.BOWSOff))
	if res.Stats.ThreadInstrs >= base.Stats.ThreadInstrs {
		t.Errorf("blocking locks should remove spin instructions: %d vs %d",
			res.Stats.ThreadInstrs, base.Stats.ThreadInstrs)
	}
	fails := res.Stats.Sync.InterWarpFail + res.Stats.Sync.IntraWarpFail
	baseFails := base.Stats.Sync.InterWarpFail + base.Stats.Sync.IntraWarpFail
	if fails >= baseFails {
		t.Errorf("blocking locks should cut failures: %d vs %d", fails, baseFails)
	}
}
