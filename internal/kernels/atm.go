package kernels

import (
	"fmt"

	"warpsched/internal/isa"
	"warpsched/internal/sim"
)

// NewATM builds the bank-transfer kernel (paper §V, Figure 6a): each
// transaction locks two account mutexes with the nested try-lock idiom —
// acquire lock1; try lock2; on failure release lock1 and retry the whole
// sequence — which is SIMT-deadlock-free because no thread spins while
// holding a lock.
func NewATM(txns, accounts, ctas, ctaThreads int) *Kernel {
	var l layout
	src := l.array(txns)
	dst := l.array(txns)
	amt := l.array(txns)
	l.alignLine()
	locks := l.array(accounts)
	l.alignLine()
	bal := l.array(accounts)

	const (
		rN, rSrcB, rDstB, rAmtB, rLockB, rBalB = 10, 11, 12, 13, 14, 15
		rStride, rT, rS, rD, rA, rDone         = 16, 2, 4, 5, 6, 7
		rCas1, rCas2, rB1, rB2, rTmp           = 8, 9, 17, 18, 19
		pLoop, pGot1, pGot2, pSpin             = 0, 1, 2, 3
	)

	b := isa.NewBuilder("ATM")
	b.LdParam(rN, 0)
	b.LdParam(rSrcB, 1)
	b.LdParam(rDstB, 2)
	b.LdParam(rAmtB, 3)
	b.LdParam(rLockB, 4)
	b.LdParam(rBalB, 5)
	b.Mov(rT, isa.S(isa.SpecGTID))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	b.While(pLoop, false,
		func() { b.Setp(isa.LT, pLoop, isa.R(rT), isa.R(rN)) },
		func() {
			b.Ld(rS, isa.R(rSrcB), isa.R(rT))
			b.Ld(rD, isa.R(rDstB), isa.R(rT))
			b.Ld(rA, isa.R(rAmtB), isa.R(rT))
			b.Annotate(isa.AnnSync, func() { b.Mov(rDone, isa.I(0)) })
			b.DoWhile(pSpin, false, true,
				func() {
					// try lock 1 (source account)
					b.Annotate(isa.AnnSync, func() {
						b.AtomCAS(rCas1, isa.R(rLockB), isa.R(rS), isa.I(0), isa.I(1))
						b.AnnotateLast(isa.AnnLockAcquire)
						b.Setp(isa.EQ, pGot1, isa.R(rCas1), isa.I(0))
					})
					b.If(pGot1, false, func() {
						// try lock 2 (destination account)
						b.Annotate(isa.AnnSync, func() {
							b.AtomCAS(rCas2, isa.R(rLockB), isa.R(rD), isa.I(0), isa.I(1))
							b.AnnotateLast(isa.AnnLockAcquire)
							b.Setp(isa.EQ, pGot2, isa.R(rCas2), isa.I(0))
						})
						b.IfElse(pGot2, false,
							func() {
								// critical section: the transfer
								b.LdVol(rB1, isa.R(rBalB), isa.R(rS))
								b.Sub(rB1, isa.R(rB1), isa.R(rA))
								b.St(isa.R(rBalB), isa.R(rS), isa.R(rB1))
								b.LdVol(rB2, isa.R(rBalB), isa.R(rD))
								b.Add(rB2, isa.R(rB2), isa.R(rA))
								b.St(isa.R(rBalB), isa.R(rD), isa.R(rB2))
								b.Annotate(isa.AnnSync, func() {
									b.Membar()
									b.AtomExch(rTmp, isa.R(rLockB), isa.R(rD), isa.I(0))
									b.AnnotateLast(isa.AnnLockRelease)
									b.AtomExch(rTmp, isa.R(rLockB), isa.R(rS), isa.I(0))
									b.AnnotateLast(isa.AnnLockRelease)
									b.Mov(rDone, isa.I(1))
								})
							},
							func() {
								// lock 2 busy: back out of lock 1 (Figure 6a line 10)
								b.Annotate(isa.AnnSync, func() {
									b.AtomExch(rTmp, isa.R(rLockB), isa.R(rS), isa.I(0))
									b.AnnotateLast(isa.AnnLockRelease)
								})
							})
					})
				},
				func() {
					b.Annotate(isa.AnnSync, func() {
						b.Setp(isa.EQ, pSpin, isa.R(rDone), isa.I(0))
					})
				})
			b.AnnotateLast(isa.AnnSync)
			b.Add(rT, isa.R(rT), isa.R(rStride))
		})
	b.Exit()
	prog := b.MustBuild()

	r := rng(7)
	srcV := make([]uint32, txns)
	dstV := make([]uint32, txns)
	amtV := make([]uint32, txns)
	for i := 0; i < txns; i++ {
	retry:
		s := r.Intn(accounts)
		d := r.Intn(accounts - 1)
		if d >= s {
			d++ // distinct accounts: same-account transfers would self-livelock
		}
		// Reject anti-symmetric pairs within the same warp's 32-txn group:
		// two lanes of one warp running (x→y, y→x) acquire their first
		// locks in SIMT lockstep and retry-collide forever — the unordered
		// try-lock of Figure 6a cannot terminate on such inputs on any
		// SIMT machine, so valid inputs must exclude them.
		for j := i - i%32; j < i; j++ {
			if srcV[j] == uint32(d) && dstV[j] == uint32(s) {
				goto retry
			}
		}
		srcV[i] = uint32(s)
		dstV[i] = uint32(d)
		amtV[i] = uint32(1 + r.Intn(100))
	}
	const initBal = 1 << 20
	expected := make([]int64, accounts)
	for i := range expected {
		expected[i] = initBal
	}
	for i := 0; i < txns; i++ {
		expected[srcV[i]] -= int64(amtV[i])
		expected[dstV[i]] += int64(amtV[i])
	}

	return &Kernel{
		Name:  "ATM",
		Class: ClassSync,
		Desc:  fmt.Sprintf("bank transfers: %d txns over %d accounts, nested locks", txns, accounts),
		Launch: sim.Launch{
			Prog:       prog,
			GridCTAs:   ctas,
			CTAThreads: ctaThreads,
			Params:     []uint32{uint32(txns), src, dst, amt, locks, bal},
			MemWords:   l.size(),
			Setup: func(w []uint32) {
				copy(w[src:], srcV)
				copy(w[dst:], dstV)
				copy(w[amt:], amtV)
				for a := 0; a < accounts; a++ {
					w[bal+uint32(a)] = initBal
				}
			},
		},
		Verify: func(w []uint32) error {
			var total int64
			for a := 0; a < accounts; a++ {
				got := int64(int32(w[bal+uint32(a)]))
				total += got
				if got != expected[a] {
					return fmt.Errorf("ATM: account %d balance %d, want %d", a, got, expected[a])
				}
				if w[locks+uint32(a)] != 0 {
					return fmt.Errorf("ATM: lock %d still held", a)
				}
			}
			if want := int64(accounts) * initBal; total != want {
				return fmt.Errorf("ATM: total balance %d, want %d", total, want)
			}
			return nil
		},
	}
}

// NewClothDS builds the cloth-physics Distance Solver kernel (paper §V,
// CP): each distance constraint between two particles is relaxed inside a
// critical section protected by the two particles' locks, using the same
// nested try-lock pattern as ATM but with a symmetric position update
// whose sum is conserved regardless of processing order.
func NewClothDS(constraints, particles, ctas, ctaThreads int) *Kernel {
	var l layout
	ia := l.array(constraints)
	ib := l.array(constraints)
	l.alignLine()
	locks := l.array(particles)
	l.alignLine()
	pos := l.array(particles)
	done := l.array(constraints)

	const (
		rN, rIaB, rIbB, rLockB, rPosB, rDoneB = 10, 11, 12, 13, 14, 15
		rStride, rT, rI, rJ, rFlag            = 16, 2, 4, 5, 7
		rCas1, rCas2, rPi, rPj, rDelta, rTmp  = 8, 9, 17, 18, 19, 20
		pLoop, pGot1, pGot2, pSpin            = 0, 1, 2, 3
	)

	b := isa.NewBuilder("DS")
	b.LdParam(rN, 0)
	b.LdParam(rIaB, 1)
	b.LdParam(rIbB, 2)
	b.LdParam(rLockB, 3)
	b.LdParam(rPosB, 4)
	b.LdParam(rDoneB, 5)
	b.Mov(rT, isa.S(isa.SpecGTID))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	b.While(pLoop, false,
		func() { b.Setp(isa.LT, pLoop, isa.R(rT), isa.R(rN)) },
		func() {
			b.Ld(rI, isa.R(rIaB), isa.R(rT))
			b.Ld(rJ, isa.R(rIbB), isa.R(rT))
			b.Annotate(isa.AnnSync, func() { b.Mov(rFlag, isa.I(0)) })
			b.DoWhile(pSpin, false, true,
				func() {
					b.Annotate(isa.AnnSync, func() {
						b.AtomCAS(rCas1, isa.R(rLockB), isa.R(rI), isa.I(0), isa.I(1))
						b.AnnotateLast(isa.AnnLockAcquire)
						b.Setp(isa.EQ, pGot1, isa.R(rCas1), isa.I(0))
					})
					b.If(pGot1, false, func() {
						b.Annotate(isa.AnnSync, func() {
							b.AtomCAS(rCas2, isa.R(rLockB), isa.R(rJ), isa.I(0), isa.I(1))
							b.AnnotateLast(isa.AnnLockAcquire)
							b.Setp(isa.EQ, pGot2, isa.R(rCas2), isa.I(0))
						})
						b.IfElse(pGot2, false,
							func() {
								// Relax the constraint: move both particles
								// a quarter of their signed separation
								// toward each other (sum-conserving).
								b.LdVol(rPi, isa.R(rPosB), isa.R(rI))
								b.LdVol(rPj, isa.R(rPosB), isa.R(rJ))
								b.Sub(rDelta, isa.R(rPi), isa.R(rPj))
								b.Div(rDelta, isa.R(rDelta), isa.I(4))
								b.Sub(rPi, isa.R(rPi), isa.R(rDelta))
								b.Add(rPj, isa.R(rPj), isa.R(rDelta))
								b.St(isa.R(rPosB), isa.R(rI), isa.R(rPi))
								b.St(isa.R(rPosB), isa.R(rJ), isa.R(rPj))
								b.St(isa.R(rDoneB), isa.R(rT), isa.I(1))
								b.Annotate(isa.AnnSync, func() {
									b.Membar()
									b.AtomExch(rTmp, isa.R(rLockB), isa.R(rJ), isa.I(0))
									b.AnnotateLast(isa.AnnLockRelease)
									b.AtomExch(rTmp, isa.R(rLockB), isa.R(rI), isa.I(0))
									b.AnnotateLast(isa.AnnLockRelease)
									b.Mov(rFlag, isa.I(1))
								})
							},
							func() {
								b.Annotate(isa.AnnSync, func() {
									b.AtomExch(rTmp, isa.R(rLockB), isa.R(rI), isa.I(0))
									b.AnnotateLast(isa.AnnLockRelease)
								})
							})
					})
				},
				func() {
					b.Annotate(isa.AnnSync, func() {
						b.Setp(isa.EQ, pSpin, isa.R(rFlag), isa.I(0))
					})
				})
			b.AnnotateLast(isa.AnnSync)
			b.Add(rT, isa.R(rT), isa.R(rStride))
		})
	b.Exit()
	prog := b.MustBuild()

	r := rng(11)
	iaV := make([]uint32, constraints)
	ibV := make([]uint32, constraints)
	posV := make([]uint32, particles)
	var posSum int64
	for i := 0; i < constraints; i++ {
	retry:
		a := r.Intn(particles)
		c := r.Intn(particles - 1)
		if c >= a {
			c++
		}
		// As in ATM, anti-symmetric pairs within one warp's group would
		// livelock under lockstep retry; real constraint sets are built
		// without them.
		for j := i - i%32; j < i; j++ {
			if iaV[j] == uint32(c) && ibV[j] == uint32(a) {
				goto retry
			}
		}
		iaV[i] = uint32(a)
		ibV[i] = uint32(c)
	}
	for p := 0; p < particles; p++ {
		posV[p] = uint32(r.Intn(1 << 16))
		posSum += int64(posV[p])
	}

	return &Kernel{
		Name:  "DS",
		Class: ClassSync,
		Desc:  fmt.Sprintf("cloth distance solver: %d constraints over %d particles", constraints, particles),
		Launch: sim.Launch{
			Prog:       prog,
			GridCTAs:   ctas,
			CTAThreads: ctaThreads,
			Params:     []uint32{uint32(constraints), ia, ib, locks, pos, done},
			MemWords:   l.size(),
			Setup: func(w []uint32) {
				copy(w[ia:], iaV)
				copy(w[ib:], ibV)
				copy(w[pos:], posV)
			},
		},
		Verify: func(w []uint32) error {
			for c := 0; c < constraints; c++ {
				if w[done+uint32(c)] != 1 {
					return fmt.Errorf("DS: constraint %d not solved", c)
				}
			}
			var total int64
			for p := 0; p < particles; p++ {
				total += int64(int32(w[pos+uint32(p)]))
				if w[locks+uint32(p)] != 0 {
					return fmt.Errorf("DS: lock %d still held", p)
				}
			}
			if total != posSum {
				return fmt.Errorf("DS: position sum %d, want %d (not conserved)", total, posSum)
			}
			return nil
		},
	}
}
