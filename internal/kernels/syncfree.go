package kernels

import (
	"fmt"

	"warpsched/internal/isa"
	"warpsched/internal/sim"
)

// NewKmeansCopy builds the Kmeans invert_mapping loop of paper Figure 7c:
// a regular grid-stride copy whose induction variable changes every
// iteration, the canonical "normal loop" DDOS must not flag.
func NewKmeansCopy(n, ctas, ctaThreads int) *Kernel {
	var l layout
	in := l.array(n)
	out := l.array(n)

	const (
		rN, rInB, rOutB, rI, rStride, rV = 10, 11, 12, 2, 16, 4
		pLoop                            = 0
	)
	b := isa.NewBuilder("KMEANS")
	b.LdParam(rN, 0)
	b.LdParam(rInB, 1)
	b.LdParam(rOutB, 2)
	b.Mov(rI, isa.S(isa.SpecGTID))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	b.While(pLoop, false,
		func() { b.Setp(isa.LT, pLoop, isa.R(rI), isa.R(rN)) },
		func() {
			b.Ld(rV, isa.R(rInB), isa.R(rI))
			b.St(isa.R(rOutB), isa.R(rI), isa.R(rV))
			b.Add(rI, isa.R(rI), isa.R(rStride))
		})
	b.Exit()
	prog := b.MustBuild()

	inV := make([]uint32, n)
	r := rng(31)
	for i := range inV {
		inV[i] = uint32(r.Intn(1 << 30))
	}
	return &Kernel{
		Name:  "KMEANS",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("kmeans invert_mapping copy, %d elements", n),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(n), in, out},
			MemWords: l.size(),
			Setup:    func(w []uint32) { copy(w[in:], inV) },
		},
		Verify: func(w []uint32) error {
			for i := 0; i < n; i++ {
				if w[out+uint32(i)] != inV[i] {
					return fmt.Errorf("KMEANS: out[%d] = %d, want %d", i, w[out+uint32(i)], inV[i])
				}
			}
			return nil
		},
	}
}

// NewVecAdd builds c = a + b, grid-stride.
func NewVecAdd(n, ctas, ctaThreads int) *Kernel {
	var l layout
	a := l.array(n)
	bb := l.array(n)
	c := l.array(n)
	const (
		rN, rAB, rBB, rCB, rI, rStride, rX, rY = 10, 11, 12, 13, 2, 16, 4, 5
		pLoop                                  = 0
	)
	b := isa.NewBuilder("VECADD")
	b.LdParam(rN, 0)
	b.LdParam(rAB, 1)
	b.LdParam(rBB, 2)
	b.LdParam(rCB, 3)
	b.Mov(rI, isa.S(isa.SpecGTID))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	b.While(pLoop, false,
		func() { b.Setp(isa.LT, pLoop, isa.R(rI), isa.R(rN)) },
		func() {
			b.Ld(rX, isa.R(rAB), isa.R(rI))
			b.Ld(rY, isa.R(rBB), isa.R(rI))
			b.Add(rX, isa.R(rX), isa.R(rY))
			b.St(isa.R(rCB), isa.R(rI), isa.R(rX))
			b.Add(rI, isa.R(rI), isa.R(rStride))
		})
	b.Exit()
	prog := b.MustBuild()

	return &Kernel{
		Name:  "VECADD",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("vector add, %d elements", n),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(n), a, bb, c},
			MemWords: l.size(),
			Setup: func(w []uint32) {
				for i := 0; i < n; i++ {
					w[a+uint32(i)] = uint32(i)
					w[bb+uint32(i)] = uint32(2 * i)
				}
			},
		},
		Verify: func(w []uint32) error {
			for i := 0; i < n; i++ {
				if w[c+uint32(i)] != uint32(3*i) {
					return fmt.Errorf("VECADD: c[%d] = %d, want %d", i, w[c+uint32(i)], 3*i)
				}
			}
			return nil
		},
	}
}

// NewReduce builds a per-CTA tree reduction with bar.sync between halving
// steps — barrier synchronization only, which must never register as
// busy-wait. ctaThreads must be a power of two.
func NewReduce(ctas, ctaThreads int) *Kernel {
	if ctaThreads&(ctaThreads-1) != 0 {
		panic("REDUCE: ctaThreads must be a power of two")
	}
	n := ctas * ctaThreads
	var l layout
	in := l.array(n)
	buf := l.array(n)
	out := l.array(ctas)

	const (
		rInB, rBufB, rOutB, rTid, rBase, rS = 10, 11, 12, 2, 4, 5
		rV, rW, rIdx, rCta                  = 6, 7, 8, 9
		pLoop, pHalf, pZero                 = 0, 1, 2
	)
	b := isa.NewBuilder("REDUCE")
	b.LdParam(rInB, 0)
	b.LdParam(rBufB, 1)
	b.LdParam(rOutB, 2)
	b.Mov(rTid, isa.S(isa.SpecTID))
	b.Mov(rCta, isa.S(isa.SpecCTAID))
	b.Mul(rBase, isa.R(rCta), isa.S(isa.SpecNTID))
	// buf[base+tid] = in[base+tid]
	b.Add(rIdx, isa.R(rBase), isa.R(rTid))
	b.Ld(rV, isa.R(rInB), isa.R(rIdx))
	b.St(isa.R(rBufB), isa.R(rIdx), isa.R(rV))
	b.Membar()
	b.Bar()
	b.Mov(rS, isa.S(isa.SpecNTID))
	b.DoWhile(pLoop, false, false,
		func() {
			b.Shr(rS, isa.R(rS), isa.I(1))
			b.Setp(isa.LT, pHalf, isa.R(rTid), isa.R(rS))
			b.If(pHalf, false, func() {
				b.Add(rIdx, isa.R(rBase), isa.R(rTid))
				b.Ld(rV, isa.R(rBufB), isa.R(rIdx))
				b.Add(rIdx, isa.R(rIdx), isa.R(rS))
				b.Ld(rW, isa.R(rBufB), isa.R(rIdx))
				b.Add(rV, isa.R(rV), isa.R(rW))
				b.Sub(rIdx, isa.R(rIdx), isa.R(rS))
				b.St(isa.R(rBufB), isa.R(rIdx), isa.R(rV))
			})
			b.Membar()
			b.Bar()
		},
		func() { b.Setp(isa.GT, pLoop, isa.R(rS), isa.I(1)) })
	b.Setp(isa.EQ, pZero, isa.R(rTid), isa.I(0))
	b.If(pZero, false, func() {
		b.Ld(rV, isa.R(rBufB), isa.R(rBase))
		b.St(isa.R(rOutB), isa.R(rCta), isa.R(rV))
	})
	b.Exit()
	prog := b.MustBuild()

	inV := make([]uint32, n)
	r := rng(37)
	for i := range inV {
		inV[i] = uint32(r.Intn(1000))
	}
	return &Kernel{
		Name:  "REDUCE",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("per-CTA tree reduction, %d CTAs × %d threads", ctas, ctaThreads),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{in, buf, out},
			MemWords: l.size(),
			Setup:    func(w []uint32) { copy(w[in:], inV) },
		},
		Verify: func(w []uint32) error {
			for c := 0; c < ctas; c++ {
				var want uint32
				for t := 0; t < ctaThreads; t++ {
					want += inV[c*ctaThreads+t]
				}
				if got := w[out+uint32(c)]; got != want {
					return fmt.Errorf("REDUCE: out[%d] = %d, want %d", c, got, want)
				}
			}
			return nil
		},
	}
}

// NewMergeSortPass builds the MergeSort stand-in (paper Figure 14's MS):
// a strided pass whose only loop setp compares an induction variable
// incremented by 4096 against a limit that is a multiple of 256, so the
// least-significant-8-bit MODULO hash sees constant operands and falsely
// classifies the loop as spinning, while XOR hashing does not. Each
// thread copies the elements congruent to its gtid modulo 4096.
func NewMergeSortPass(n, ctas, ctaThreads int) *Kernel {
	const step = 4096
	if n%step != 0 {
		panic("MS: n must be a multiple of 4096")
	}
	var l layout
	in := l.array(n)
	out := l.array(n)
	const (
		rN, rInB, rOutB, rBase, rIdx, rV = 10, 11, 12, 2, 4, 5
		pLoop                            = 0
	)
	b := isa.NewBuilder("MS")
	b.LdParam(rN, 0)
	b.LdParam(rInB, 1)
	b.LdParam(rOutB, 2)
	// for base = 0; base < n; base += 4096 — the false-positive shape.
	b.For(rBase, isa.I(0), isa.R(rN), step, pLoop, func() {
		b.Mov(rIdx, isa.S(isa.SpecGTID))
		b.Add(rIdx, isa.R(rIdx), isa.R(rBase))
		b.Ld(rV, isa.R(rInB), isa.R(rIdx))
		b.St(isa.R(rOutB), isa.R(rIdx), isa.R(rV))
	})
	b.Exit()
	prog := b.MustBuild()

	threads := ctas * ctaThreads
	if threads > step {
		panic("MS: thread count must be ≤ 4096")
	}
	inV := make([]uint32, n)
	r := rng(41)
	for i := range inV {
		inV[i] = uint32(r.Intn(1 << 30))
	}
	return &Kernel{
		Name:  "MS",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("merge-sort pass stand-in: stride-%d loop over %d elements", step, n),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(n), in, out},
			MemWords: l.size(),
			Setup:    func(w []uint32) { copy(w[in:], inV) },
		},
		Verify: func(w []uint32) error {
			for base := 0; base < n; base += step {
				for t := 0; t < threads; t++ {
					i := base + t
					if w[out+uint32(i)] != inV[i] {
						return fmt.Errorf("MS: out[%d] = %d, want %d", i, w[out+uint32(i)], inV[i])
					}
				}
			}
			return nil
		},
	}
}

// NewHeartwall builds the HeartWall stand-in (paper Figure 14's HL): an
// accumulation loop whose induction variable advances by 256 per
// iteration — invisible to 8-bit (and 4-bit) MODULO hashing.
func NewHeartwall(n, ctas, ctaThreads int) *Kernel {
	const step = 256
	if n%step != 0 {
		panic("HL: n must be a multiple of 256")
	}
	var l layout
	in := l.array(n)
	out := l.array(ctas * ctaThreads)
	const (
		rN, rInB, rOutB, rOff, rIdx, rV, rAcc, rT = 10, 11, 12, 2, 4, 5, 6, 7
		pLoop                                     = 0
	)
	b := isa.NewBuilder("HL")
	b.LdParam(rN, 0)
	b.LdParam(rInB, 1)
	b.LdParam(rOutB, 2)
	b.Mov(rAcc, isa.I(0))
	b.Mov(rT, isa.S(isa.SpecGTID))
	b.And(rT, isa.R(rT), isa.I(step-1))
	b.For(rOff, isa.I(0), isa.R(rN), step, pLoop, func() {
		b.Add(rIdx, isa.R(rOff), isa.R(rT))
		b.Ld(rV, isa.R(rInB), isa.R(rIdx))
		b.Add(rAcc, isa.R(rAcc), isa.R(rV))
	})
	b.Mov(rIdx, isa.S(isa.SpecGTID))
	b.St(isa.R(rOutB), isa.R(rIdx), isa.R(rAcc))
	b.Exit()
	prog := b.MustBuild()

	inV := make([]uint32, n)
	r := rng(43)
	for i := range inV {
		inV[i] = uint32(r.Intn(1000))
	}
	threads := ctas * ctaThreads
	return &Kernel{
		Name:  "HL",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("heartwall stand-in: stride-%d accumulation over %d elements", step, n),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(n), in, out},
			MemWords: l.size(),
			Setup:    func(w []uint32) { copy(w[in:], inV) },
		},
		Verify: func(w []uint32) error {
			for t := 0; t < threads; t++ {
				var want uint32
				for off := 0; off < n; off += step {
					want += inV[off+(t&(step-1))]
				}
				if got := w[out+uint32(t)]; got != want {
					return fmt.Errorf("HL: out[%d] = %d, want %d", t, got, want)
				}
			}
			return nil
		},
	}
}

// NewStencil builds a 3-point 1D stencil, grid-stride over the interior.
func NewStencil(n, ctas, ctaThreads int) *Kernel {
	var l layout
	in := l.array(n)
	out := l.array(n)
	const (
		rN, rInB, rOutB, rI, rStride, rA, rB, rC = 10, 11, 12, 2, 16, 4, 5, 6
		pLoop                                    = 0
	)
	b := isa.NewBuilder("STENCIL")
	b.LdParam(rN, 0)
	b.LdParam(rInB, 1)
	b.LdParam(rOutB, 2)
	b.Mov(rI, isa.S(isa.SpecGTID))
	b.Add(rI, isa.R(rI), isa.I(1))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	b.Sub(rC, isa.R(rN), isa.I(1))
	b.While(pLoop, false,
		func() { b.Setp(isa.LT, pLoop, isa.R(rI), isa.R(rC)) },
		func() {
			b.Sub(rA, isa.R(rI), isa.I(1))
			b.Ld(rA, isa.R(rInB), isa.R(rA))
			b.Ld(rB, isa.R(rInB), isa.R(rI))
			b.Add(rA, isa.R(rA), isa.R(rB))
			b.Add(rB, isa.R(rI), isa.I(1))
			b.Ld(rB, isa.R(rInB), isa.R(rB))
			b.Add(rA, isa.R(rA), isa.R(rB))
			b.Div(rA, isa.R(rA), isa.I(3))
			b.St(isa.R(rOutB), isa.R(rI), isa.R(rA))
			b.Add(rI, isa.R(rI), isa.R(rStride))
		})
	b.Exit()
	prog := b.MustBuild()

	inV := make([]uint32, n)
	r := rng(47)
	for i := range inV {
		inV[i] = uint32(r.Intn(10000))
	}
	return &Kernel{
		Name:  "STENCIL",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("3-point stencil, %d elements", n),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(n), in, out},
			MemWords: l.size(),
			Setup:    func(w []uint32) { copy(w[in:], inV) },
		},
		Verify: func(w []uint32) error {
			for i := 1; i < n-1; i++ {
				want := (inV[i-1] + inV[i] + inV[i+1]) / 3
				if got := w[out+uint32(i)]; got != want {
					return fmt.Errorf("STENCIL: out[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
	}
}
