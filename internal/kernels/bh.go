package kernels

import (
	"fmt"

	"warpsched/internal/isa"
	"warpsched/internal/sim"
)

// NewBHTB builds the BarnesHut Tree Building kernel (paper §V, from
// Burtscher & Pingali [6]): bodies are inserted into tree leaf cells by
// locking the leaf pointer itself — atomicCAS swaps the observed child
// value for the LOCKED sentinel, the insertion links the body, and a
// plain store releases. A body index that does not advance on failure
// makes the outer loop the spin loop, and a CTA-wide barrier per attempt
// throttles contention — the structure the paper credits for BOWS's
// minimal impact on TB.
//
// depth is the tree depth: 2^depth leaf cells. bodies must be ≥ the
// thread count so every thread has work.
func NewBHTB(bodies, depth, ctas, ctaThreads int) *Kernel {
	leaves := 1 << depth
	const (
		empty  = 0xFFFFFFFF // -1: end of chain
		locked = 0xFFFFFFFE // -2: cell locked
	)
	var l layout
	keys := l.array(bodies)
	l.alignLine()
	nodes := l.array(2 * leaves) // internal-node array touched on the walk
	l.alignLine()
	child := l.array(leaves) // leaf cell heads (lock word = the pointer)
	l.alignLine()
	next := l.array(bodies)
	l.alignLine()
	cnt := l.array(leaves) // per-cell body count (critical-section update)

	const (
		rN, rD, rKeysB, rNodesB, rChildB, rNextB = 10, 11, 12, 13, 14, 15
		rStride, rI, rKey, rNode, rLvl, rBit     = 16, 2, 4, 5, 6, 7
		rLeaf, rCh, rCas, rTmp, rCntB            = 8, 9, 17, 18, 19
		pLoop, pWork, pFree, pGot, pLvl          = 0, 1, 2, 3, 4
	)

	b := isa.NewBuilder("TB")
	b.LdParam(rN, 0)
	// The tree depth is consumed at build time (the walk below is unrolled
	// over `depth` levels), so %r11 is never read by the instruction
	// stream. The load stays for parameter-layout fidelity with the CUDA
	// kernel, which does read its depth argument; nolint silences the
	// dead-write finding without perturbing the golden cycle counts.
	b.LdParam(rD, 1)
	b.AnnotateLast(isa.AnnNoLint)
	b.LdParam(rKeysB, 2)
	b.LdParam(rNodesB, 3)
	b.LdParam(rChildB, 4)
	b.LdParam(rNextB, 5)
	b.LdParam(rCntB, 6)
	b.Mov(rI, isa.S(isa.SpecGTID))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	b.DoWhile(pLoop, false, true,
		func() {
			// Throttle: all warps of the CTA rendezvous between attempts.
			b.Bar()
			b.Setp(isa.LT, pWork, isa.R(rI), isa.R(rN))
			b.If(pWork, false, func() {
				b.Ld(rKey, isa.R(rKeysB), isa.R(rI))
				// Walk the tree: one node load per level (useful work).
				// Unrolled (depth is a launch constant) so the busy-wait
				// path stays within DDOS's l=8 setp history window, as in
				// the real TB kernel whose retry path re-executes only
				// the loop-head tests.
				b.Mov(rNode, isa.I(1))
				for lvl := 0; lvl < depth; lvl++ {
					b.Shr(rBit, isa.R(rKey), isa.I(int32(lvl)))
					b.And(rBit, isa.R(rBit), isa.I(1))
					b.Shl(rNode, isa.R(rNode), isa.I(1))
					b.Or(rNode, isa.R(rNode), isa.R(rBit))
					b.Ld(rTmp, isa.R(rNodesB), isa.R(rNode))
				}
				b.Sub(rLeaf, isa.R(rNode), isa.I(int32(leaves)))
				// Try-lock the leaf pointer (skip if already locked).
				b.Annotate(isa.AnnSync, func() {
					b.LdVol(rCh, isa.R(rChildB), isa.R(rLeaf))
					b.Setp(isa.NE, pFree, isa.R(rCh), isa.I(-2))
				})
				b.If(pFree, false, func() {
					b.Annotate(isa.AnnSync, func() {
						b.AtomCAS(rCas, isa.R(rChildB), isa.R(rLeaf), isa.R(rCh), isa.I(-2))
						b.AnnotateLast(isa.AnnLockAcquire)
						b.Setp(isa.EQ, pGot, isa.R(rCas), isa.R(rCh))
					})
					b.If(pGot, false, func() {
						// Insert: link body at the chain head, then update
						// the cell's aggregate (mass / center-of-mass in
						// the real TB) — the long critical section that
						// keeps contended cells visibly LOCKED to
						// retrying warps.
						b.St(isa.R(rNextB), isa.R(rI), isa.R(rCh))
						b.LdVol(rTmp, isa.R(rNodesB), isa.R(rLeaf))
						b.Add(rTmp, isa.R(rTmp), isa.R(rKey))
						// The two aggregate updates below are protected by
						// the per-leaf try-lock, but warprace cannot credit
						// the lock: the CAS success test compares two
						// registers (old head vs. the CAS result) and the
						// lockset classifier only resolves
						// register-vs-immediate predicates.
						b.St(isa.R(rNodesB), isa.R(rLeaf), isa.R(rTmp))
						b.NoLintLast("race")
						b.LdVol(rTmp, isa.R(rCntB), isa.R(rLeaf))
						b.Add(rTmp, isa.R(rTmp), isa.I(1))
						b.St(isa.R(rCntB), isa.R(rLeaf), isa.R(rTmp))
						b.NoLintLast("race")
						b.Annotate(isa.AnnSync, func() {
							b.Membar()
							// Release by publishing the new head.
							b.St(isa.R(rChildB), isa.R(rLeaf), isa.R(rI))
							b.AnnotateLast(isa.AnnLockRelease)
						})
						// Advance to this thread's next body.
						b.Add(rI, isa.R(rI), isa.R(rStride))
					})
				})
			})
		},
		func() {
			b.Annotate(isa.AnnSync, func() {
				b.Setp(isa.LT, pLoop, isa.R(rI), isa.R(rN))
			})
		})
	b.AnnotateLast(isa.AnnSync)
	b.Exit()
	prog := b.MustBuild()

	if bodies < ctas*ctaThreads {
		panic(fmt.Sprintf("TB: bodies (%d) must be ≥ thread count (%d)", bodies, ctas*ctaThreads))
	}

	r := rng(23)
	keyV := make([]uint32, bodies)
	for i := range keyV {
		keyV[i] = uint32(r.Intn(1 << 30))
	}
	leafOf := func(key uint32) uint32 {
		node := uint32(1)
		for lvl := 0; lvl < depth; lvl++ {
			node = node<<1 | (key >> lvl & 1)
		}
		return node - uint32(leaves)
	}

	return &Kernel{
		Name:  "TB",
		Class: ClassSync,
		Desc:  fmt.Sprintf("BarnesHut tree build: %d bodies into %d leaf cells, barrier-throttled", bodies, leaves),
		Launch: sim.Launch{
			Prog:       prog,
			GridCTAs:   ctas,
			CTAThreads: ctaThreads,
			Params:     []uint32{uint32(bodies), uint32(depth), keys, nodes, child, next, cnt},
			MemWords:   l.size(),
			Setup: func(w []uint32) {
				copy(w[keys:], keyV)
				for c := 0; c < leaves; c++ {
					w[child+uint32(c)] = empty
				}
				for n := 0; n < 2*leaves; n++ {
					w[nodes+uint32(n)] = uint32(n)
				}
			},
		},
		Verify: func(w []uint32) error {
			seen := make([]bool, bodies)
			total := 0
			for c := 0; c < leaves; c++ {
				cur := w[child+uint32(c)]
				if cur == locked {
					return fmt.Errorf("TB: leaf %d still locked", c)
				}
				steps := 0
				for cur != empty {
					if cur >= uint32(bodies) {
						return fmt.Errorf("TB: leaf %d: bad body index %d", c, cur)
					}
					if seen[cur] {
						return fmt.Errorf("TB: body %d linked twice", cur)
					}
					seen[cur] = true
					if got := leafOf(keyV[cur]); got != uint32(c) {
						return fmt.Errorf("TB: body %d in leaf %d, want %d", cur, c, got)
					}
					total++
					cur = w[next+cur]
					if steps++; steps > bodies {
						return fmt.Errorf("TB: cycle in leaf %d chain", c)
					}
				}
			}
			if total != bodies {
				return fmt.Errorf("TB: %d bodies linked, want %d", total, bodies)
			}
			// The locked aggregate update must agree with the chains.
			for c := 0; c < leaves; c++ {
				chainLen := uint32(0)
				for cur := w[child+uint32(c)]; cur != empty; cur = w[next+cur] {
					chainLen++
				}
				if got := w[cnt+uint32(c)]; got != chainLen {
					return fmt.Errorf("TB: leaf %d count %d != chain length %d (lost update)", c, got, chainLen)
				}
			}
			return nil
		},
	}
}

// NewBHST builds the BarnesHut Sort kernel (paper §V, Figure 6c): a
// wait-and-signal pattern over a complete binary tree of m = 2^d − 1
// nodes. Like the real BarnesHut kernels, the launch must be
// cooperative: every CTA has to be co-resident (CTAs ≤ SMs ×
// MaxCTAsPerSM), because threads of early CTAs wait on signals produced
// by threads of late ones. Threads poll cells in descending k order; a cell whose start
// offset has been signalled by its parent propagates offsets to its
// children (internal nodes) or writes its position in the sorted output
// (leaves). A cell whose start is not yet set simply loops — the Figure
// 6c busy-wait that never blocks progress of ready lanes.
func NewBHST(m, ctas, ctaThreads int) *Kernel {
	if (m+1)&m != 0 {
		panic(fmt.Sprintf("ST: m=%d must be 2^d − 1", m))
	}
	threads := ctas * ctaThreads
	if m < threads {
		panic(fmt.Sprintf("ST: m=%d must be ≥ thread count %d", m, threads))
	}
	leafStart := m / 2 // ids ≥ leafStart are leaves
	nLeaves := m - leafStart

	var l layout
	start := l.array(m)
	l.alignLine()
	size := l.array(m)
	l.alignLine()
	out := l.array(nLeaves)
	aux := l.array(m)

	const (
		rM, rStartB, rSizeB, rOutB, rAuxB = 10, 11, 12, 13, 14
		rStride, rK, rID, rS, rLeafStart  = 16, 2, 4, 5, 6
		rL, rSzL, rTmp, rTmp2             = 7, 8, 9, 15
		pLoop, pReady, pLeaf              = 0, 1, 2
	)

	b := isa.NewBuilder("ST")
	b.LdParam(rM, 0)
	b.LdParam(rStartB, 1)
	b.LdParam(rSizeB, 2)
	b.LdParam(rOutB, 3)
	b.LdParam(rAuxB, 4)
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	b.Mov(rLeafStart, isa.I(int32(leafStart)))
	// k runs from m-1-gtid downward; the node id is m-1-k.
	b.Mov(rTmp, isa.S(isa.SpecGTID))
	b.Sub(rK, isa.R(rM), isa.I(1))
	b.Sub(rK, isa.R(rK), isa.R(rTmp))
	b.Mov(rID, isa.S(isa.SpecGTID))
	b.DoWhile(pLoop, false, true,
		func() {
			b.Annotate(isa.AnnSync, func() {
				b.LdVol(rS, isa.R(rStartB), isa.R(rID))
				b.Setp(isa.GE, pReady, isa.R(rS), isa.I(0))
			})
			b.IfA(pReady, false, isa.AnnWaitCheck|isa.AnnSync, func() {
				// Useful per-node work.
				b.Mul(rTmp, isa.R(rS), isa.I(2))
				b.Add(rTmp, isa.R(rTmp), isa.R(rID))
				b.St(isa.R(rAuxB), isa.R(rID), isa.R(rTmp))
				b.Setp(isa.GE, pLeaf, isa.R(rID), isa.R(rLeafStart))
				b.IfElse(pLeaf, false,
					func() {
						// Leaf: place in the sorted output. Each leaf's start
						// offset is unique (the offsets are a prefix sum of
						// the subtree sizes), so no two threads store to the
						// same out[s] — a fact about the signalled values
						// that warprace's affine address domain cannot see.
						b.Sub(rTmp, isa.R(rID), isa.R(rLeafStart))
						b.St(isa.R(rOutB), isa.R(rS), isa.R(rTmp))
						b.NoLintLast("race")
					},
					func() {
						// Internal: signal children (left gets s, right
						// gets s + size(left)).
						b.Mul(rL, isa.R(rID), isa.I(2))
						b.Add(rL, isa.R(rL), isa.I(1))
						b.Ld(rSzL, isa.R(rSizeB), isa.R(rL))
						b.St(isa.R(rStartB), isa.R(rL), isa.R(rS))
						b.Add(rTmp, isa.R(rS), isa.R(rSzL))
						b.Add(rTmp2, isa.R(rL), isa.I(1))
						b.St(isa.R(rStartB), isa.R(rTmp2), isa.R(rTmp))
					})
				// Move to this thread's next cell.
				b.Sub(rK, isa.R(rK), isa.R(rStride))
				b.Add(rID, isa.R(rID), isa.R(rStride))
			})
		},
		func() {
			b.Annotate(isa.AnnSync, func() {
				b.Setp(isa.GE, pLoop, isa.R(rK), isa.I(0))
			})
		})
	b.AnnotateLast(isa.AnnSync)
	b.Exit()
	prog := b.MustBuild()

	// Subtree sizes (leaf count under each node).
	sizeV := make([]uint32, m)
	for id := m - 1; id >= 0; id-- {
		if id >= leafStart {
			sizeV[id] = 1
		} else {
			sizeV[id] = sizeV[2*id+1] + sizeV[2*id+2]
		}
	}

	return &Kernel{
		Name:  "ST",
		Class: ClassSync,
		Desc:  fmt.Sprintf("BarnesHut sort: wait-and-signal over %d tree nodes", m),
		Launch: sim.Launch{
			Prog:       prog,
			GridCTAs:   ctas,
			CTAThreads: ctaThreads,
			Params:     []uint32{uint32(m), start, size, out, aux},
			MemWords:   l.size(),
			Setup: func(w []uint32) {
				for i := 0; i < m; i++ {
					w[start+uint32(i)] = 0xFFFFFFFF // -1: not signalled
				}
				w[start] = 0 // root
				copy(w[size:], sizeV)
			},
		},
		Verify: func(w []uint32) error {
			// In-order propagation places leaf (leafStart+i) at output i.
			for i := 0; i < nLeaves; i++ {
				if got := w[out+uint32(i)]; got != uint32(i) {
					return fmt.Errorf("ST: out[%d] = %d, want %d", i, got, i)
				}
			}
			for id := 0; id < m; id++ {
				if int32(w[start+uint32(id)]) < 0 {
					return fmt.Errorf("ST: node %d never signalled", id)
				}
			}
			return nil
		},
	}
}
