package kernels

import (
	"testing"

	"warpsched/internal/analysis"
)

// allRegistered returns every kernel instance from the four registered
// suites. Full and quick variants of a kernel are distinct programs (loop
// trip counts and parameters differ), so both are analyzed.
func allRegistered() []*Kernel {
	var all []*Kernel
	all = append(all, SyncSuite()...)
	all = append(all, SyncFreeSuite()...)
	all = append(all, QuickSyncSuite()...)
	all = append(all, QuickSyncFreeSuite()...)
	return all
}

// TestKernelsPassStaticAnalysis gates every registered kernel on the full
// analyzer: CFG/IPDOM reconvergence verification, def-use dataflow and the
// synchronization-discipline checks. Suppressions must be explicit
// (AnnNoLint in the kernel source, with a comment); silent findings fail.
func TestKernelsPassStaticAnalysis(t *testing.T) {
	for _, k := range allRegistered() {
		t.Run(k.Name, func(t *testing.T) {
			rep := analysis.Analyze(k.Launch.Prog)
			for _, f := range rep.Findings {
				t.Errorf("%s", f.String())
			}
			for _, f := range rep.Suppressed {
				t.Logf("suppressed: %s", f.String())
			}
		})
	}
}
