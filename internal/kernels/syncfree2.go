package kernels

// Additional synchronization-free kernels rounding the Rodinia stand-in
// suite out to the paper's 14 benchmarks. Each exercises a loop or
// divergence shape DDOS must classify correctly: data-dependent inner
// loops (BFS), barrier-phased dynamic programming (PATHFINDER, LUD,
// GAUSSIAN), reduction via atomics that are *not* locks (NN), and
// conditional stencils (SRAD).

import (
	"fmt"

	"warpsched/internal/isa"
	"warpsched/internal/sim"
)

// NewBFS builds a frontier-based breadth-first search over a random
// sparse graph inside one CTA (bar.sync separates levels, a global
// changed-counter read decides termination). The neighbour scan is a
// variable-trip-count inner loop whose bounds change per node — a shape
// that must never register as spinning. The per-level outer loop *reads
// a value written by other threads* (the changed flag), making it the
// closest sync-free cousin of a wait loop.
func NewBFS(nodes, degree, ctaThreads int) *Kernel {
	if nodes%ctaThreads != 0 {
		panic("BFS: nodes must be a multiple of ctaThreads")
	}
	edges := nodes * degree
	var l layout
	rowptr := l.array(nodes + 1)
	cols := l.array(edges)
	l.alignLine()
	level := l.array(nodes)
	changed := l.array(1)
	l.alignLine()

	const (
		rN, rRowB, rColB, rLevB, rChgB = 10, 11, 12, 13, 14
		rTid, rNode, rL, rEi, rEnd     = 2, 4, 5, 6, 7
		rNb, rCur, rTmp, rStride, rChg = 8, 9, 15, 16, 17
		pOuter, pMine, pEdge, pUnseen  = 0, 1, 2, 3
	)

	b := isa.NewBuilder("BFS")
	b.LdParam(rN, 0)
	b.LdParam(rRowB, 1)
	b.LdParam(rColB, 2)
	b.LdParam(rLevB, 3)
	b.LdParam(rChgB, 4)
	b.Mov(rTid, isa.S(isa.SpecTID))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mov(rL, isa.I(0)) // current level
	b.DoWhile(pOuter, false, false,
		func() {
			// Expand every frontier node owned by this thread.
			b.Mov(rNode, isa.R(rTid))
			b.While(pMine, false,
				func() { b.Setp(isa.LT, pMine, isa.R(rNode), isa.R(rN)) },
				func() {
					b.Ld(rCur, isa.R(rLevB), isa.R(rNode))
					b.Setp(isa.EQ, pMine, isa.R(rCur), isa.R(rL))
					b.If(pMine, false, func() {
						b.Ld(rEi, isa.R(rRowB), isa.R(rNode))
						b.Add(rTmp, isa.R(rNode), isa.I(1))
						b.Ld(rEnd, isa.R(rRowB), isa.R(rTmp))
						b.While(pEdge, false,
							func() { b.Setp(isa.LT, pEdge, isa.R(rEi), isa.R(rEnd)) },
							func() {
								b.Ld(rNb, isa.R(rColB), isa.R(rEi))
								b.LdVol(rCur, isa.R(rLevB), isa.R(rNb))
								b.Setp(isa.EQ, pUnseen, isa.R(rCur), isa.I(-1))
								b.If(pUnseen, false, func() {
									b.Add(rTmp, isa.R(rL), isa.I(1))
									// Benign same-value race: several parents
									// may discover the same neighbour in one
									// level, but all of them store the
									// identical value L+1 (classic
									// level-synchronous BFS). warprace has no
									// notion of value-equal writes.
									b.St(isa.R(rLevB), isa.R(rNb), isa.R(rTmp))
									b.NoLintLast("race")
									b.AtomAdd(rCur, isa.R(rChgB), isa.I(0), isa.I(1))
								})
								b.Add(rEi, isa.R(rEi), isa.I(1))
							})
					})
					// re-evaluate the thread's loop condition predicate
					b.Add(rNode, isa.R(rNode), isa.R(rStride))
				})
			b.Membar()
			b.Bar()
			b.LdVol(rChg, isa.R(rChgB), isa.I(0))
			// Drain the read before the barrier: the reset store below
			// must not be serviced while this load is still in flight
			// (barriers order execution, not memory).
			b.Membar()
			b.Bar()
			// Thread 0 resets the counter for the next level.
			b.Setp(isa.EQ, pMine, isa.R(rTid), isa.I(0))
			b.If(pMine, false, func() {
				b.St(isa.R(rChgB), isa.I(0), isa.I(0))
			})
			b.Membar()
			b.Bar()
			b.Add(rL, isa.R(rL), isa.I(1))
		},
		func() { b.Setp(isa.GT, pOuter, isa.R(rChg), isa.I(0)) })
	b.Exit()
	prog := b.MustBuild()

	// Random graph (deterministic), guaranteed connected via a ring.
	r := rng(53)
	adj := make([][]uint32, nodes)
	for v := 0; v < nodes; v++ {
		adj[v] = append(adj[v], uint32((v+1)%nodes))
		for d := 1; d < degree; d++ {
			adj[v] = append(adj[v], uint32(r.Intn(nodes)))
		}
	}
	// Reference BFS from node 0.
	want := make([]int32, nodes)
	for i := range want {
		want[i] = -1
	}
	want[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range adj[v] {
			if want[nb] == -1 {
				want[nb] = want[v] + 1
				queue = append(queue, int(nb))
			}
		}
	}

	return &Kernel{
		Name:  "BFS",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("frontier BFS: %d nodes, degree %d, one CTA", nodes, degree),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: 1, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(nodes), rowptr, cols, level, changed},
			MemWords: l.size(),
			Setup: func(w []uint32) {
				e := uint32(0)
				for v := 0; v < nodes; v++ {
					w[rowptr+uint32(v)] = e
					for _, nb := range adj[v] {
						w[cols+e] = nb
						e++
					}
				}
				w[rowptr+uint32(nodes)] = e
				for v := 0; v < nodes; v++ {
					w[level+uint32(v)] = 0xFFFFFFFF
				}
				w[level] = 0
				w[changed] = 1 // enter the first level
			},
		},
		Verify: func(w []uint32) error {
			// The GPU's level assignment may differ from serial BFS when a
			// node is reachable at the same level via several parents, but
			// the level VALUES must match exactly (BFS level is unique).
			for v := 0; v < nodes; v++ {
				if got := int32(w[level+uint32(v)]); got != want[v] {
					return fmt.Errorf("BFS: level[%d] = %d, want %d", v, got, want[v])
				}
			}
			return nil
		},
	}
}

// NewHotspot builds a HotSpot-like 2D 5-point stencil step on an
// integer temperature grid.
func NewHotspot(dim, ctas, ctaThreads int) *Kernel {
	n := dim * dim
	var l layout
	in := l.array(n)
	out := l.array(n)

	const (
		rDim, rInB, rOutB, rI, rStride = 10, 11, 12, 2, 16
		rX, rY, rC, rAcc, rTmp, rN     = 4, 5, 6, 7, 8, 9
		pLoop, pIn                     = 0, 1
	)

	b := isa.NewBuilder("HOTSPOT")
	b.LdParam(rDim, 0)
	b.LdParam(rInB, 1)
	b.LdParam(rOutB, 2)
	b.Mul(rN, isa.R(rDim), isa.R(rDim))
	b.Mov(rI, isa.S(isa.SpecGTID))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	b.While(pLoop, false,
		func() { b.Setp(isa.LT, pLoop, isa.R(rI), isa.R(rN)) },
		func() {
			b.Rem(rX, isa.R(rI), isa.R(rDim))
			b.Div(rY, isa.R(rI), isa.R(rDim))
			b.Ld(rC, isa.R(rInB), isa.R(rI))
			// Interior cells diffuse; boundary copies through.
			b.Setp(isa.GT, pIn, isa.R(rX), isa.I(0))
			b.If(pIn, false, func() {
				b.Add(rTmp, isa.R(rX), isa.I(1))
				b.Setp(isa.LT, pIn, isa.R(rTmp), isa.R(rDim))
				b.If(pIn, false, func() {
					b.Setp(isa.GT, pIn, isa.R(rY), isa.I(0))
					b.If(pIn, false, func() {
						b.Add(rTmp, isa.R(rY), isa.I(1))
						b.Setp(isa.LT, pIn, isa.R(rTmp), isa.R(rDim))
						b.If(pIn, false, func() {
							// acc = left + right + up + down
							b.Sub(rTmp, isa.R(rI), isa.I(1))
							b.Ld(rAcc, isa.R(rInB), isa.R(rTmp))
							b.Add(rTmp, isa.R(rI), isa.I(1))
							b.Ld(rTmp, isa.R(rInB), isa.R(rTmp))
							b.Add(rAcc, isa.R(rAcc), isa.R(rTmp))
							b.Sub(rTmp, isa.R(rI), isa.R(rDim))
							b.Ld(rTmp, isa.R(rInB), isa.R(rTmp))
							b.Add(rAcc, isa.R(rAcc), isa.R(rTmp))
							b.Add(rTmp, isa.R(rI), isa.R(rDim))
							b.Ld(rTmp, isa.R(rInB), isa.R(rTmp))
							b.Add(rAcc, isa.R(rAcc), isa.R(rTmp))
							// c += (acc - 4c) / 8
							b.Mul(rTmp, isa.R(rC), isa.I(4))
							b.Sub(rAcc, isa.R(rAcc), isa.R(rTmp))
							b.Div(rAcc, isa.R(rAcc), isa.I(8))
							b.Add(rC, isa.R(rC), isa.R(rAcc))
						})
					})
				})
			})
			// in and out are distinct arrays, and the neighbour loads fold
			// the dim scalar (param 0) into the address, so the prover's
			// single-param-base disjointness rule cannot separate them.
			b.St(isa.R(rOutB), isa.R(rI), isa.R(rC))
			b.NoLintLast("race")
			b.Add(rI, isa.R(rI), isa.R(rStride))
		})
	b.Exit()
	prog := b.MustBuild()

	r := rng(59)
	inV := make([]uint32, n)
	for i := range inV {
		inV[i] = uint32(300 + r.Intn(700))
	}
	ref := func(i int) uint32 {
		x, y := i%dim, i/dim
		c := int32(inV[i])
		if x == 0 || x == dim-1 || y == 0 || y == dim-1 {
			return uint32(c)
		}
		acc := int32(inV[i-1]) + int32(inV[i+1]) + int32(inV[i-dim]) + int32(inV[i+dim])
		return uint32(c + (acc-4*c)/8)
	}

	return &Kernel{
		Name:  "HOTSPOT",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("hotspot 5-point diffusion step, %dx%d grid", dim, dim),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(dim), in, out},
			MemWords: l.size(),
			Setup:    func(w []uint32) { copy(w[in:], inV) },
		},
		Verify: func(w []uint32) error {
			for i := 0; i < n; i++ {
				if got, want := w[out+uint32(i)], ref(i); got != want {
					return fmt.Errorf("HOTSPOT: out[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
	}
}

// NewPathfinder builds a PathFinder-like dynamic program: R rows of
// minimum-path cost, barrier-synchronized per row, one CTA wide.
func NewPathfinder(rows, ctaThreads int) *Kernel {
	width := ctaThreads
	var l layout
	data := l.array(rows * width)
	bufA := l.array(width)
	bufB := l.array(width)

	const (
		rRows, rDataB, rA, rB, rW     = 10, 11, 12, 13, 14
		rTid, rRow, rBest, rTmp, rIdx = 2, 4, 5, 6, 7
		rSrc, rDst, rSwap             = 8, 9, 15
		pLoop, pEdge                  = 0, 1
	)

	b := isa.NewBuilder("PATHFINDER")
	b.LdParam(rRows, 0)
	b.LdParam(rDataB, 1)
	b.LdParam(rA, 2)
	b.LdParam(rB, 3)
	b.Mov(rW, isa.S(isa.SpecNTID))
	b.Mov(rTid, isa.S(isa.SpecTID))
	// buf[tid] = data[0][tid]
	b.Ld(rTmp, isa.R(rDataB), isa.R(rTid))
	b.St(isa.R(rA), isa.R(rTid), isa.R(rTmp))
	b.Membar()
	b.Bar()
	b.Mov(rSrc, isa.R(rA))
	b.Mov(rDst, isa.R(rB))
	b.For(rRow, isa.I(1), isa.R(rRows), 1, pLoop, func() {
		// best = src[tid]
		b.Ld(rBest, isa.R(rSrc), isa.R(rTid))
		// left neighbour
		b.Setp(isa.GT, pEdge, isa.R(rTid), isa.I(0))
		b.If(pEdge, false, func() {
			b.Sub(rTmp, isa.R(rTid), isa.I(1))
			b.Ld(rTmp, isa.R(rSrc), isa.R(rTmp))
			b.Min(rBest, isa.R(rBest), isa.R(rTmp))
		})
		// right neighbour
		b.Add(rTmp, isa.R(rTid), isa.I(1))
		b.Setp(isa.LT, pEdge, isa.R(rTmp), isa.R(rW))
		b.If(pEdge, false, func() {
			b.Add(rTmp, isa.R(rTid), isa.I(1))
			b.Ld(rTmp, isa.R(rSrc), isa.R(rTmp))
			b.Min(rBest, isa.R(rBest), isa.R(rTmp))
		})
		// dst[tid] = best + data[row][tid]
		b.Mul(rIdx, isa.R(rRow), isa.R(rW))
		b.Add(rIdx, isa.R(rIdx), isa.R(rTid))
		b.Ld(rTmp, isa.R(rDataB), isa.R(rIdx))
		b.Add(rBest, isa.R(rBest), isa.R(rTmp))
		// src and dst ping-pong between bufA and bufB, so within any one
		// barrier interval the loads and this store hit distinct arrays.
		// The swap joins collapse both registers to one abstract value,
		// which warprace cannot tell apart per interval.
		b.St(isa.R(rDst), isa.R(rTid), isa.R(rBest))
		b.NoLintLast("race")
		b.Membar()
		b.Bar()
		// swap buffers
		b.Mov(rSwap, isa.R(rSrc))
		b.Mov(rSrc, isa.R(rDst))
		b.Mov(rDst, isa.R(rSwap))
	})
	b.Exit()
	prog := b.MustBuild()

	r := rng(61)
	dataV := make([]uint32, rows*width)
	for i := range dataV {
		dataV[i] = uint32(r.Intn(100))
	}
	// Reference DP.
	cur := make([]uint32, width)
	copy(cur, dataV[:width])
	for row := 1; row < rows; row++ {
		next := make([]uint32, width)
		for j := 0; j < width; j++ {
			best := cur[j]
			if j > 0 && cur[j-1] < best {
				best = cur[j-1]
			}
			if j+1 < width && cur[j+1] < best {
				best = cur[j+1]
			}
			next[j] = best + dataV[row*width+j]
		}
		cur = next
	}
	// After an odd number of swaps the result sits in bufA or bufB.
	finalBuf := bufA
	if rows%2 == 0 {
		finalBuf = bufB
	}
	_ = finalBuf

	return &Kernel{
		Name:  "PATHFINDER",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("pathfinder DP: %d rows x %d columns", rows, width),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: 1, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(rows), data, bufA, bufB},
			MemWords: l.size(),
			Setup:    func(w []uint32) { copy(w[data:], dataV) },
		},
		Verify: func(w []uint32) error {
			// rows-1 iterations: the last write lands in bufB when rows-1
			// is odd, bufA when even.
			buf := bufB
			if (rows-1)%2 == 0 {
				buf = bufA
			}
			for j := 0; j < width; j++ {
				if got := w[buf+uint32(j)]; got != cur[j] {
					return fmt.Errorf("PATHFINDER: cost[%d] = %d, want %d", j, got, cur[j])
				}
			}
			return nil
		},
	}
}

// NewBackprop builds a BackProp-like dense layer: out[j] =
// (Σ_i in[i]·w[i][j]) >> 8, one output neuron per thread.
func NewBackprop(inputs, outputs, ctas, ctaThreads int) *Kernel {
	if outputs != ctas*ctaThreads {
		panic("BACKPROP: outputs must equal thread count")
	}
	var l layout
	in := l.array(inputs)
	wgt := l.array(inputs * outputs)
	out := l.array(outputs)

	const (
		rIn, rInB, rWB, rOutB, rJ     = 10, 11, 12, 13, 2
		rAcc, rI, rTmp, rV, rOutCount = 4, 5, 6, 7, 14
		pLoop                         = 0
	)

	b := isa.NewBuilder("BACKPROP")
	b.LdParam(rIn, 0)
	b.LdParam(rInB, 1)
	b.LdParam(rWB, 2)
	b.LdParam(rOutB, 3)
	b.LdParam(rOutCount, 4)
	b.Mov(rJ, isa.S(isa.SpecGTID))
	b.Mov(rAcc, isa.I(0))
	b.For(rI, isa.I(0), isa.R(rIn), 1, pLoop, func() {
		b.Ld(rV, isa.R(rInB), isa.R(rI))
		// w[i][j] at i*outputs + j
		b.Mul(rTmp, isa.R(rI), isa.R(rOutCount))
		b.Add(rTmp, isa.R(rTmp), isa.R(rJ))
		b.Ld(rTmp, isa.R(rWB), isa.R(rTmp))
		b.Mul(rV, isa.R(rV), isa.R(rTmp))
		b.Add(rAcc, isa.R(rAcc), isa.R(rV))
	})
	b.Shr(rAcc, isa.R(rAcc), isa.I(8))
	b.St(isa.R(rOutB), isa.R(rJ), isa.R(rAcc))
	b.Exit()
	prog := b.MustBuild()

	r := rng(67)
	inV := make([]uint32, inputs)
	wV := make([]uint32, inputs*outputs)
	for i := range inV {
		inV[i] = uint32(r.Intn(64))
	}
	for i := range wV {
		wV[i] = uint32(r.Intn(64))
	}

	return &Kernel{
		Name:  "BACKPROP",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("dense layer forward pass: %d inputs -> %d outputs", inputs, outputs),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(inputs), in, wgt, out, uint32(outputs)},
			MemWords: l.size(),
			Setup: func(w []uint32) {
				copy(w[in:], inV)
				copy(w[wgt:], wV)
			},
		},
		Verify: func(w []uint32) error {
			for j := 0; j < outputs; j++ {
				var acc uint32
				for i := 0; i < inputs; i++ {
					acc += inV[i] * wV[i*outputs+j]
				}
				if got := w[out+uint32(j)]; got != acc>>8 {
					return fmt.Errorf("BACKPROP: out[%d] = %d, want %d", j, got, acc>>8)
				}
			}
			return nil
		},
	}
}

// NewSRAD builds an SRAD-like conditional stencil: cells update with a
// data-dependent branch (the diffusion coefficient saturates), giving
// per-lane divergence inside a regular loop.
func NewSRAD(n, ctas, ctaThreads int) *Kernel {
	var l layout
	in := l.array(n)
	out := l.array(n)

	const (
		rN, rInB, rOutB, rI, rStride = 10, 11, 12, 2, 16
		rC, rL, rR, rG, rTmp         = 4, 5, 6, 7, 8
		pLoop, pSat                  = 0, 1
	)

	b := isa.NewBuilder("SRAD")
	b.LdParam(rN, 0)
	b.LdParam(rInB, 1)
	b.LdParam(rOutB, 2)
	b.Mov(rI, isa.S(isa.SpecGTID))
	b.Add(rI, isa.R(rI), isa.I(1))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	b.Sub(rTmp, isa.R(rN), isa.I(1))
	b.While(pLoop, false,
		func() { b.Setp(isa.LT, pLoop, isa.R(rI), isa.R(rTmp)) },
		func() {
			b.Ld(rC, isa.R(rInB), isa.R(rI))
			b.Sub(rG, isa.R(rI), isa.I(1))
			b.Ld(rL, isa.R(rInB), isa.R(rG))
			b.Add(rG, isa.R(rI), isa.I(1))
			b.Ld(rR, isa.R(rInB), isa.R(rG))
			// gradient = |l - r|
			b.Sub(rG, isa.R(rL), isa.R(rR))
			b.Setp(isa.LT, pSat, isa.R(rG), isa.I(0))
			b.If(pSat, false, func() {
				b.Sub(rG, isa.I(0), isa.R(rG))
			})
			// Data-dependent diffusion: strong gradients clamp.
			b.Setp(isa.GT, pSat, isa.R(rG), isa.I(64))
			b.IfElse(pSat, false,
				func() { b.Mov(rG, isa.I(64)) },
				func() { b.Div(rG, isa.R(rG), isa.I(2)) })
			b.Add(rC, isa.R(rC), isa.R(rG))
			b.St(isa.R(rOutB), isa.R(rI), isa.R(rC))
			b.Add(rI, isa.R(rI), isa.R(rStride))
		})
	b.Exit()
	prog := b.MustBuild()

	r := rng(71)
	inV := make([]uint32, n)
	for i := range inV {
		inV[i] = uint32(r.Intn(1000))
	}
	ref := func(i int) uint32 {
		g := int32(inV[i-1]) - int32(inV[i+1])
		if g < 0 {
			g = -g
		}
		if g > 64 {
			g = 64
		} else {
			g = g / 2
		}
		return inV[i] + uint32(g)
	}

	return &Kernel{
		Name:  "SRAD",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("SRAD conditional stencil, %d cells", n),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(n), in, out},
			MemWords: l.size(),
			Setup:    func(w []uint32) { copy(w[in:], inV) },
		},
		Verify: func(w []uint32) error {
			for i := 1; i < n-1; i++ {
				if got, want := w[out+uint32(i)], ref(i); got != want {
					return fmt.Errorf("SRAD: out[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
	}
}

// NewLUD builds a LUD-like barrier-phased Gaussian elimination on an
// integer matrix: per step k, threads compute row factors, barrier, then
// eliminate the trailing submatrix, barrier. One CTA.
func NewLUD(dim, ctaThreads int) *Kernel {
	n := dim * dim
	var l layout
	mat := l.array(n)
	factor := l.array(dim)

	const (
		rDim, rMatB, rFacB, rK, rTid = 10, 11, 12, 2, 4
		rI, rJ, rIdx, rTmp, rF       = 5, 6, 7, 8, 9
		rStride, rPivot, rCell       = 16, 17, 18
		pK, pRow, pCell              = 0, 1, 2
	)

	b := isa.NewBuilder("LUD")
	b.LdParam(rDim, 0)
	b.LdParam(rMatB, 1)
	b.LdParam(rFacB, 2)
	b.Mov(rTid, isa.S(isa.SpecTID))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Sub(rTmp, isa.R(rDim), isa.I(1))
	b.For(rK, isa.I(0), isa.R(rTmp), 1, pK, func() {
		// factors: rows i > k, strided over threads
		b.Mul(rIdx, isa.R(rK), isa.R(rDim))
		b.Add(rIdx, isa.R(rIdx), isa.R(rK))
		b.Ld(rPivot, isa.R(rMatB), isa.R(rIdx)) // A[k][k]
		b.Add(rI, isa.R(rK), isa.I(1))
		b.Add(rI, isa.R(rI), isa.R(rTid))
		b.While(pRow, false,
			func() { b.Setp(isa.LT, pRow, isa.R(rI), isa.R(rDim)) },
			func() {
				b.Mul(rIdx, isa.R(rI), isa.R(rDim))
				b.Add(rIdx, isa.R(rIdx), isa.R(rK))
				b.Ld(rF, isa.R(rMatB), isa.R(rIdx)) // A[i][k]
				b.Div(rF, isa.R(rF), isa.R(rPivot))
				// Rows are partitioned i = k+1+tid+m*NTID, so threads never
				// share a factor slot; the k and m loop increments fold into
				// a single gcd-1 stride term in the abstract address, which
				// erases the Δtid separation warprace would need.
				b.St(isa.R(rFacB), isa.R(rI), isa.R(rF))
				b.NoLintLast("race")
				b.Add(rI, isa.R(rI), isa.R(rStride))
			})
		b.Membar()
		// warplint conservatively marks this barrier divergent: %r8 (rTmp)
		// is rewritten inside the thread-varying While body above, which
		// taints %p0 and hence the outer For's top test. Every lane writes
		// the same value (dim-k with uniform k), so the For trip count is
		// CTA-uniform and the barrier is safe; nolint records that.
		b.Bar()
		b.AnnotateLast(isa.AnnNoLint)
		// eliminate: cells (i, j) with i > k, j >= k, strided 1D
		b.Sub(rTmp, isa.R(rDim), isa.R(rK))
		b.Sub(rCell, isa.R(rTmp), isa.I(1))
		b.Mul(rCell, isa.R(rCell), isa.R(rTmp)) // (dim-k-1) * (dim-k) cells
		b.Mov(rJ, isa.R(rTid))
		b.While(pCell, false,
			func() { b.Setp(isa.LT, pCell, isa.R(rJ), isa.R(rCell)) },
			func() {
				// i = k+1 + j / (dim-k), col = k + j % (dim-k)
				b.Div(rI, isa.R(rJ), isa.R(rTmp))
				b.Add(rI, isa.R(rI), isa.R(rK))
				b.Add(rI, isa.R(rI), isa.I(1))
				b.Rem(rIdx, isa.R(rJ), isa.R(rTmp))
				b.Add(rIdx, isa.R(rIdx), isa.R(rK))
				// A[i][col] -= factor[i] * A[k][col]
				b.Ld(rF, isa.R(rFacB), isa.R(rI))
				b.Mul(rCell, isa.R(rK), isa.R(rDim)) // reuse as scratch
				b.Add(rCell, isa.R(rCell), isa.R(rIdx))
				b.Ld(rCell, isa.R(rMatB), isa.R(rCell)) // A[k][col]
				b.Mul(rF, isa.R(rF), isa.R(rCell))
				b.Mul(rCell, isa.R(rI), isa.R(rDim))
				b.Add(rCell, isa.R(rCell), isa.R(rIdx))
				b.Ld(rIdx, isa.R(rMatB), isa.R(rCell))
				b.Sub(rIdx, isa.R(rIdx), isa.R(rF))
				// Cell ownership comes from j = tid+m*NTID via div/rem by
				// dim-k — non-affine arithmetic the abstract domain tops
				// out on, so the per-thread partition is invisible.
				b.St(isa.R(rMatB), isa.R(rCell), isa.R(rIdx))
				b.NoLintLast("race")
				// restore loop state
				b.Sub(rTmp, isa.R(rDim), isa.R(rK))
				b.Sub(rCell, isa.R(rTmp), isa.I(1))
				b.Mul(rCell, isa.R(rCell), isa.R(rTmp))
				b.Add(rJ, isa.R(rJ), isa.R(rStride))
			})
		b.Membar()
		// Same conservatism as the factor-phase barrier above: %p0 is
		// tainted through %r8 but the For trip count is CTA-uniform.
		b.Bar()
		b.AnnotateLast(isa.AnnNoLint)
		b.Sub(rTmp, isa.R(rDim), isa.I(1)) // restore For scratch
	})
	b.Exit()
	prog := b.MustBuild()

	r := rng(73)
	matV := make([]uint32, n)
	for i := range matV {
		matV[i] = uint32(16 + r.Intn(240))
	}
	for d := 0; d < dim; d++ {
		matV[d*dim+d] = uint32(512 + r.Intn(512)) // dominant pivots
	}
	// Reference elimination with identical integer arithmetic.
	ref := make([]int32, n)
	for i, v := range matV {
		ref[i] = int32(v)
	}
	for k := 0; k < dim-1; k++ {
		piv := ref[k*dim+k]
		for i := k + 1; i < dim; i++ {
			f := ref[i*dim+k] / piv
			for j := k; j < dim; j++ {
				ref[i*dim+j] -= f * ref[k*dim+j]
			}
		}
	}

	return &Kernel{
		Name:  "LUD",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("barrier-phased elimination, %dx%d matrix", dim, dim),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: 1, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(dim), mat, factor},
			MemWords: l.size(),
			Setup:    func(w []uint32) { copy(w[mat:], matV) },
		},
		Verify: func(w []uint32) error {
			for i := 0; i < n; i++ {
				if got := int32(w[mat+uint32(i)]); got != ref[i] {
					return fmt.Errorf("LUD: A[%d][%d] = %d, want %d", i/dim, i%dim, got, ref[i])
				}
			}
			return nil
		},
	}
}

// NewNN builds a nearest-neighbour search: each thread computes a
// Manhattan distance over the feature dimensions and publishes the
// global minimum with atomicMax on the negated distance — an atomic
// reduction that is *not* a lock and must not confuse the detector.
func NewNN(records, features, ctas, ctaThreads int) *Kernel {
	if records != ctas*ctaThreads {
		panic("NN: records must equal thread count")
	}
	var l layout
	data := l.array(records * features)
	query := l.array(features)
	l.alignLine()
	best := l.array(1) // holds max of -distance
	dist := l.array(records)

	const (
		rF, rDataB, rQB, rBestB, rDistB = 10, 11, 12, 13, 14
		rT, rAcc, rI, rA, rB, rTmp      = 2, 4, 5, 6, 7, 8
		pLoop, pNeg                     = 0, 1
	)

	b := isa.NewBuilder("NN")
	b.LdParam(rF, 0)
	b.LdParam(rDataB, 1)
	b.LdParam(rQB, 2)
	b.LdParam(rBestB, 3)
	b.LdParam(rDistB, 4)
	b.Mov(rT, isa.S(isa.SpecGTID))
	b.Mov(rAcc, isa.I(0))
	b.For(rI, isa.I(0), isa.R(rF), 1, pLoop, func() {
		b.Mul(rTmp, isa.R(rT), isa.R(rF))
		b.Add(rTmp, isa.R(rTmp), isa.R(rI))
		b.Ld(rA, isa.R(rDataB), isa.R(rTmp))
		b.Ld(rB, isa.R(rQB), isa.R(rI))
		b.Sub(rA, isa.R(rA), isa.R(rB))
		b.Setp(isa.LT, pNeg, isa.R(rA), isa.I(0))
		b.If(pNeg, false, func() { b.Sub(rA, isa.I(0), isa.R(rA)) })
		b.Add(rAcc, isa.R(rAcc), isa.R(rA))
	})
	b.St(isa.R(rDistB), isa.R(rT), isa.R(rAcc))
	b.Sub(rAcc, isa.I(0), isa.R(rAcc))
	b.AtomMax(rTmp, isa.R(rBestB), isa.I(0), isa.R(rAcc))
	b.Exit()
	prog := b.MustBuild()

	r := rng(79)
	dataV := make([]uint32, records*features)
	queryV := make([]uint32, features)
	for i := range dataV {
		dataV[i] = uint32(r.Intn(256))
	}
	for i := range queryV {
		queryV[i] = uint32(r.Intn(256))
	}
	distOf := func(t int) int32 {
		var acc int32
		for i := 0; i < features; i++ {
			d := int32(dataV[t*features+i]) - int32(queryV[i])
			if d < 0 {
				d = -d
			}
			acc += d
		}
		return acc
	}
	minDist := distOf(0)
	for t := 1; t < records; t++ {
		if d := distOf(t); d < minDist {
			minDist = d
		}
	}

	return &Kernel{
		Name:  "NN",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("nearest neighbour: %d records x %d features", records, features),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(features), data, query, best, dist},
			MemWords: l.size(),
			Setup: func(w []uint32) {
				copy(w[data:], dataV)
				copy(w[query:], queryV)
				sentinel := int32(-1 << 30)
				w[best] = uint32(sentinel)
			},
		},
		Verify: func(w []uint32) error {
			if got := -int32(w[best]); got != minDist {
				return fmt.Errorf("NN: min distance %d, want %d", got, minDist)
			}
			for t := 0; t < records; t++ {
				if got := int32(w[dist+uint32(t)]); got != distOf(t) {
					return fmt.Errorf("NN: dist[%d] = %d, want %d", t, got, distOf(t))
				}
			}
			return nil
		},
	}
}

// NewGaussian builds one Gaussian-elimination column step (the Rodinia
// Gaussian Fan1/Fan2 pair for a fixed k): distinct from LUD in that it is
// a single phase with no inner k loop, exercising wide short-lived
// launches.
func NewGaussian(dim, k, ctas, ctaThreads int) *Kernel {
	n := dim * dim
	var l layout
	mat := l.array(n)
	out := l.array(n)

	const (
		rDim, rMatB, rOutB, rK  = 10, 11, 12, 13
		rI, rStride, rRow, rCol = 2, 16, 4, 5
		rPiv, rF, rTmp, rIdx    = 6, 7, 8, 9
		pLoop, pBelow           = 0, 1
	)

	b := isa.NewBuilder("GAUSSIAN")
	b.LdParam(rDim, 0)
	b.LdParam(rMatB, 1)
	b.LdParam(rOutB, 2)
	b.LdParam(rK, 3)
	b.Mov(rI, isa.S(isa.SpecGTID))
	b.Mov(rStride, isa.S(isa.SpecNTID))
	b.Mul(rStride, isa.R(rStride), isa.S(isa.SpecNCTAID))
	b.Mul(rTmp, isa.R(rDim), isa.R(rDim))
	b.While(pLoop, false,
		func() { b.Setp(isa.LT, pLoop, isa.R(rI), isa.R(rTmp)) },
		func() {
			b.Div(rRow, isa.R(rI), isa.R(rDim))
			b.Rem(rCol, isa.R(rI), isa.R(rDim))
			b.Ld(rIdx, isa.R(rMatB), isa.R(rI))
			// Rows below k eliminate with the row-k pivot factor.
			b.Setp(isa.GT, pBelow, isa.R(rRow), isa.R(rK))
			b.If(pBelow, false, func() {
				b.Mul(rPiv, isa.R(rK), isa.R(rDim))
				b.Add(rPiv, isa.R(rPiv), isa.R(rK))
				b.Ld(rPiv, isa.R(rMatB), isa.R(rPiv)) // A[k][k]
				b.Mul(rF, isa.R(rRow), isa.R(rDim))
				b.Add(rF, isa.R(rF), isa.R(rK))
				b.Ld(rF, isa.R(rMatB), isa.R(rF)) // A[row][k]
				b.Div(rF, isa.R(rF), isa.R(rPiv))
				b.Mul(rPiv, isa.R(rK), isa.R(rDim))
				b.Add(rPiv, isa.R(rPiv), isa.R(rCol))
				b.Ld(rPiv, isa.R(rMatB), isa.R(rPiv)) // A[k][col]
				b.Mul(rF, isa.R(rF), isa.R(rPiv))
				b.Sub(rIdx, isa.R(rIdx), isa.R(rF))
			})
			// in and out are distinct arrays; the pivot-row loads mix the
			// k scalar (param 3) and dim products into their addresses, so
			// the single-param-base disjointness rule cannot apply.
			b.St(isa.R(rOutB), isa.R(rI), isa.R(rIdx))
			b.NoLintLast("race")
			b.Add(rI, isa.R(rI), isa.R(rStride))
			b.Mul(rTmp, isa.R(rDim), isa.R(rDim)) // restore loop bound
		})
	b.Exit()
	prog := b.MustBuild()

	r := rng(83)
	matV := make([]uint32, n)
	for i := range matV {
		matV[i] = uint32(16 + r.Intn(240))
	}
	for d := 0; d < dim; d++ {
		matV[d*dim+d] = uint32(512 + r.Intn(512))
	}
	ref := func(i int) int32 {
		row, col := i/dim, i%dim
		v := int32(matV[i])
		if row > k {
			f := int32(matV[row*dim+k]) / int32(matV[k*dim+k])
			v -= f * int32(matV[k*dim+col])
		}
		return v
	}

	return &Kernel{
		Name:  "GAUSSIAN",
		Class: ClassSyncFree,
		Desc:  fmt.Sprintf("gaussian elimination step k=%d, %dx%d matrix", k, dim, dim),
		Launch: sim.Launch{
			Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads,
			Params:   []uint32{uint32(dim), mat, out, uint32(k)},
			MemWords: l.size(),
			Setup:    func(w []uint32) { copy(w[mat:], matV) },
		},
		Verify: func(w []uint32) error {
			for i := 0; i < n; i++ {
				if got := int32(w[out+uint32(i)]); got != ref(i) {
					return fmt.Errorf("GAUSSIAN: out[%d] = %d, want %d", i, got, ref(i))
				}
			}
			return nil
		},
	}
}
