package race

import "warpsched/internal/isa"

// The conflict prover decides whether two memory accesses, performed by
// two distinct threads, can touch the same word. It reduces the question
// to integer-linear feasibility: the two effective addresses are
// instantiated over per-thread variables (lane, warp, cta of each side)
// and the abstract symbols of their values — shared between the sides
// exactly when the symbol kind licenses it — and the system
//
//	addr₁ − addr₂ = 0  ∧  guard constraints  ∧  geometry bounds
//	∧  thread₁ ≠ thread₂ (case-split into < and >)
//
// is refuted with Fourier–Motzkin elimination over the rationals plus
// integer tightening. Refutation is sound: rational infeasibility (of a
// system whose every integer solution is preserved) implies no two
// threads can collide. Feasibility only means "cannot prove disjoint".

// lin is one linear row: Σ coef·x + c ≥ 0, or = 0 when eq is set.
type lin struct {
	coef map[int]int64
	c    int64
	eq   bool
}

func newLin() lin { return lin{coef: map[int]int64{}} }

func (l lin) clone() lin {
	m := make(map[int]int64, len(l.coef))
	for k, v := range l.coef {
		m[k] = v
	}
	return lin{coef: m, c: l.c, eq: l.eq}
}

const coefLimit = int64(1) << 50

// normalize divides the row by the gcd of its coefficients, tightening
// the constant toward feasibility-preservation for integer solutions.
// Returns false if the row is already unsatisfiable.
func (l *lin) normalize() (ok, sat bool) {
	var g int64
	for k, v := range l.coef {
		if v == 0 {
			delete(l.coef, k)
			continue
		}
		if v > coefLimit || v < -coefLimit {
			return false, true
		}
		g = gcd64(g, v)
	}
	if len(l.coef) == 0 {
		if l.eq {
			return true, l.c == 0
		}
		return true, l.c >= 0
	}
	if g > 1 {
		if l.eq {
			if l.c%g != 0 {
				return true, false // Σ g·aᵢxᵢ = -c has no integer solution
			}
			l.c /= g
		} else {
			// floor division keeps every integer solution.
			c := l.c / g
			if l.c%g != 0 && l.c < 0 {
				c--
			}
			l.c = c
		}
		for k := range l.coef {
			l.coef[k] /= g
		}
	}
	return true, true
}

// feasible reports whether the system may have an integer solution.
// false is definitive (no integer solution); true is "could not refute".
func feasible(rows []lin) bool {
	work := make([]lin, 0, len(rows))
	for _, r := range rows {
		r = r.clone()
		ok, sat := r.normalize()
		if !ok {
			return true // overflow: give up, assume feasible
		}
		if !sat {
			return false
		}
		if len(r.coef) > 0 {
			work = append(work, r)
		}
	}

	// Substitute out equalities first.
	for {
		ei := -1
		for i, r := range work {
			if r.eq {
				ei = i
				break
			}
		}
		if ei < 0 {
			break
		}
		e := work[ei]
		work = append(work[:ei], work[ei+1:]...)
		// Pick the variable with the smallest |coef| as pivot.
		pv, pc := -1, int64(0)
		for k, v := range e.coef {
			av := v
			if av < 0 {
				av = -av
			}
			if pv < 0 || av < pc {
				pv, pc = k, av
			}
		}
		next := work[:0]
		for _, r := range work {
			b := r.coef[pv]
			if b != 0 {
				a := e.coef[pv]
				// r' = a·r − b·e keeps direction only if a > 0; flip e.
				scaleE := e
				if a < 0 {
					scaleE = e.clone()
					for k := range scaleE.coef {
						scaleE.coef[k] = -scaleE.coef[k]
					}
					scaleE.c = -scaleE.c
					a = -a
				}
				nr := newLin()
				nr.eq = r.eq
				for k, v := range r.coef {
					nr.coef[k] = v * a
				}
				nr.c = r.c * a
				for k, v := range scaleE.coef {
					nr.coef[k] -= v * b
				}
				nr.c -= scaleE.c * b
				r = nr
			}
			ok, sat := r.normalize()
			if !ok {
				return true
			}
			if !sat {
				return false
			}
			if len(r.coef) > 0 {
				next = append(next, r)
			}
		}
		work = next
	}

	// Fourier–Motzkin on the remaining inequalities.
	for len(work) > 0 {
		// Pick the variable minimizing pos·neg fill-in.
		counts := map[int][2]int{}
		for _, r := range work {
			for k, v := range r.coef {
				c := counts[k]
				if v > 0 {
					c[0]++
				} else {
					c[1]++
				}
				counts[k] = c
			}
		}
		best, bestCost := -1, 1<<30
		for k, c := range counts {
			cost := c[0] * c[1]
			if cost < bestCost {
				best, bestCost = k, cost
			}
		}
		if best < 0 {
			break
		}
		var pos, neg, rest []lin
		for _, r := range work {
			switch v := r.coef[best]; {
			case v > 0:
				pos = append(pos, r)
			case v < 0:
				neg = append(neg, r)
			default:
				rest = append(rest, r)
			}
		}
		for _, p := range pos {
			a := p.coef[best]
			for _, n := range neg {
				b := -n.coef[best]
				nr := newLin()
				for k, v := range p.coef {
					nr.coef[k] = v * b
				}
				nr.c = p.c * b
				for k, v := range n.coef {
					nr.coef[k] += v * a
				}
				nr.c += n.c * a
				delete(nr.coef, best)
				ok, sat := nr.normalize()
				if !ok {
					return true
				}
				if !sat {
					return false
				}
				if len(nr.coef) > 0 {
					rest = append(rest, nr)
				}
			}
		}
		if len(rest) > 600 {
			return true // blowup guard: give up
		}
		work = rest
	}
	return true
}

// Variable ids used by the instantiation. Symbol instances are allocated
// past varSymBase.
const (
	varLane1 = iota
	varWarp1
	varCTA1
	varLane2
	varWarp2
	varCTA2
	varSymBase
)

// prover instantiates accesses into linear systems.
type prover struct {
	t   *symtab
	geo geometry
}

// inst is one pair-instantiation context: variable allocation for the
// symbols of both sides plus the accumulated bound rows.
type inst struct {
	pr      *prover
	sameCTA bool
	next    int
	vars    map[[2]int32]int // (sym, side) -> var; side 0 means shared
	rows    []lin
}

func (pr *prover) newInst(sameCTA bool) *inst {
	in := &inst{pr: pr, sameCTA: sameCTA, next: varSymBase, vars: map[[2]int32]int{}}
	// Geometry bounds for both sides.
	g := pr.geo
	bound := func(v int, lo, hi int64) {
		r := newLin()
		r.coef[v] = 1
		r.c = -lo
		in.rows = append(in.rows, r) // v ≥ lo
		r2 := newLin()
		r2.coef[v] = -1
		r2.c = hi
		in.rows = append(in.rows, r2) // v ≤ hi
	}
	for side := 0; side < 2; side++ {
		lane, warp, cta := sideVars(side)
		bound(lane, 0, 31)
		bound(warp, 0, g.warps-1)
		bound(cta, 0, g.ctas-1)
		// Partial last warp: tid = 32·warp + lane < threads.
		r := newLin()
		r.coef[warp] = -32
		r.coef[lane] = -1
		r.c = g.threads - 1
		in.rows = append(in.rows, r)
	}
	if sameCTA {
		r := newLin()
		r.coef[varCTA1] = 1
		r.coef[varCTA2] = -1
		r.eq = true
		in.rows = append(in.rows, r)
	}
	return in
}

func sideVars(side int) (lane, warp, cta int) {
	if side == 0 {
		return varLane1, varWarp1, varCTA1
	}
	return varLane2, varWarp2, varCTA2
}

// symVar returns the variable for a symbol on the given side (1 or 2),
// sharing it across sides when the symbol kind licenses it, and emits
// the symbol's bound rows on first allocation.
func (in *inst) symVar(sym int32, side int) int {
	info := in.pr.t.info(sym)
	key := [2]int32{sym, int32(side)}
	if info.kind == symParam || (info.kind == symStable && in.sameCTA) {
		key[1] = 0
	}
	if v, ok := in.vars[key]; ok {
		return v
	}
	v := in.next
	in.next++
	in.vars[key] = v
	if info.lo != negInf {
		r := newLin()
		r.coef[v] = 1
		r.c = -info.lo
		in.rows = append(in.rows, r)
	}
	if info.hi != posInf {
		r := newLin()
		r.coef[v] = -1
		r.c = info.hi
		in.rows = append(in.rows, r)
	}
	return v
}

// lincomb instantiates value v for side (1 or 2) into row r with the
// given scale, excluding the stride component (handled by the caller).
func (in *inst) lincomb(r *lin, v AbsVal, side int, scale int64) {
	lane, warp, cta := sideVars(side - 1)
	r.c += scale * v.C
	r.coef[lane] += scale * v.Lane
	r.coef[warp] += scale * v.Warp
	r.coef[cta] += scale * v.CTA
	for _, tm := range v.Terms {
		r.coef[in.symVar(tm.Sym, side)] += scale * tm.Coef
	}
}

// addGuard emits the linear row for "a cmp b" on the given side.
// Unrepresentable comparisons (NE) are skipped.
func (in *inst) addGuard(a, b AbsVal, cmp isa.Cmp, side int) {
	if a.Top || b.Top || a.Stride != 0 || b.Stride != 0 {
		return
	}
	r := newLin()
	switch cmp {
	case isa.EQ:
		in.lincomb(&r, a, side, 1)
		in.lincomb(&r, b, side, -1)
		r.eq = true
	case isa.LT: // b - a - 1 ≥ 0
		in.lincomb(&r, b, side, 1)
		in.lincomb(&r, a, side, -1)
		r.c--
	case isa.LE:
		in.lincomb(&r, b, side, 1)
		in.lincomb(&r, a, side, -1)
	case isa.GT:
		in.lincomb(&r, a, side, 1)
		in.lincomb(&r, b, side, -1)
		r.c--
	case isa.GE:
		in.lincomb(&r, a, side, 1)
		in.lincomb(&r, b, side, -1)
	default:
		return
	}
	in.rows = append(in.rows, r)
}

// intervalOf evaluates the row's range under the bound rows accumulated
// so far (simple interval arithmetic over the per-variable bounds).
func (in *inst) intervalOf(r lin) (int64, int64) {
	// Collect per-variable bounds from the single-variable rows.
	lo := map[int]int64{}
	hi := map[int]int64{}
	for v := 0; v < in.next; v++ {
		lo[v], hi[v] = negInf, posInf
	}
	for _, b := range in.rows {
		if len(b.coef) != 1 || b.eq {
			continue
		}
		for v, k := range b.coef {
			switch {
			case k == 1:
				if -b.c > lo[v] {
					lo[v] = -b.c
				}
			case k == -1:
				if b.c < hi[v] {
					hi[v] = b.c
				}
			}
		}
	}
	l, h := r.c, r.c
	for v, k := range r.coef {
		if k >= 0 {
			l, h = addB(l, mulB(k, lo[v])), addB(h, mulB(k, hi[v]))
		} else {
			l, h = addB(l, mulB(k, hi[v])), addB(h, mulB(k, lo[v]))
		}
	}
	return l, h
}

// disjoint proves that accesses a1 and a2 (by two distinct threads, in
// the same barrier interval when sameCTA) can never touch the same word.
func (pr *prover) disjoint(a1, a2 *access, sameCTA bool) bool {
	if a1.addr.Top || a2.addr.Top {
		return false
	}
	// Distinct array bases: parameters are assumed to point to disjoint
	// in-bounds allocations (documented in DESIGN.md §6.14). Only applies
	// when each address is cleanly based on a single parameter.
	b1, ok1 := a1.addr.paramBase(pr.t)
	b2, ok2 := a2.addr.paramBase(pr.t)
	if ok1 && ok2 && b1 != b2 {
		return true
	}

	splits := [2][2]int64{{1, -1}, {-1, 1}} // thread1 < thread2, thread1 > thread2
	for _, sp := range splits {
		in := pr.newInst(sameCTA)

		// Distinctness row: for same-CTA pairs the CTA-local tids differ;
		// across CTAs the cta ids differ.
		d := newLin()
		if sameCTA {
			d.coef[varWarp1] = 32 * sp[0]
			d.coef[varLane1] = sp[0]
			d.coef[varWarp2] = 32 * sp[1]
			d.coef[varLane2] = sp[1]
		} else {
			d.coef[varCTA1] = sp[0]
			d.coef[varCTA2] = sp[1]
		}
		d.c = -1 // difference ≥ 1
		in.rows = append(in.rows, d)

		for _, gc := range a1.guards {
			in.addGuard(gc.a, gc.b, gc.cmp, 1)
		}
		for _, gc := range a2.guards {
			in.addGuard(gc.a, gc.b, gc.cmp, 2)
		}

		// The address-equality row P = addr1 − addr2 (strides excluded).
		eqr := newLin()
		in.lincomb(&eqr, a1.addr, 1, 1)
		in.lincomb(&eqr, a2.addr, 2, -1)

		g := gcd64(a1.addr.Stride, a2.addr.Stride)
		if g != 0 {
			// addr1 − addr2 = P + (stride steps); a collision needs
			// P ≡ 0 (mod g). Two refutations:
			//  (a) interval: |P| < g forces P = 0 — prove P = 0 infeasible;
			//  (b) residue: every variable coefficient of P divisible by g
			//      but the constant is not.
			lo, hi := in.intervalOf(eqr)
			if lo > -g && hi < g {
				// fall through to the FM check with P = 0
			} else {
				allDiv := true
				for _, v := range eqr.coef {
					if v%g != 0 {
						allDiv = false
						break
					}
				}
				if allDiv && eqr.c%g != 0 {
					continue // this split refuted
				}
				return false // cannot prove
			}
		}
		eqr.eq = true
		in.rows = append(in.rows, eqr)

		if feasible(in.rows) {
			return false
		}
	}
	return true
}
