package race

import (
	"warpsched/internal/analysis"
	"warpsched/internal/isa"
)

// regs is one abstract register file.
type regs [isa.NumRegs]AbsVal

// setpRel records what a setp compares, evaluated in the abstract state
// at the setp itself. The conflict prover turns these into linear
// constraints on the accesses the predicate guards.
type setpRel struct {
	a, b AbsVal
	cmp  isa.Cmp
}

// interp is the whole-program abstract interpretation state.
type interp struct {
	p   *isa.Program
	g   *analysis.CFG
	t   *symtab
	geo geometry

	varyR uint64
	varyP uint8
	// divergent marks nodes inside the divergent region of some branch
	// with a CTA-varying guard: definitions there are thread-varying
	// regardless of their operands.
	divergent []bool
	// onBarFreeCycle marks PCs that can re-execute without an intervening
	// bar.sync — their uniform definitions are not interval-stable.
	onBarFreeCycle []bool

	in      []regs
	reached []bool

	setps []setpRel // indexed by PC; cmp is valid only for setp PCs
}

func newInterp(p *isa.Program, g *analysis.CFG, geo geometry) *interp {
	it := &interp{
		p: p, g: g, t: newSymtab(), geo: geo,
		in:      make([]regs, g.N+1),
		reached: make([]bool, g.N+1),
		setps:   make([]setpRel, g.N),
	}
	it.varyR, it.varyP = analysis.VaryingSets(g)
	it.divergent = make([]bool, g.N+1)
	for pc := int32(0); pc < g.N; pc++ {
		in := p.At(pc)
		if in.Op != isa.OpBra || !in.Guarded() || it.varyP&(1<<uint8(in.Guard)) == 0 {
			continue
		}
		for v, inR := range g.DivergentRegion(pc) {
			if inR {
				it.divergent[v] = true
			}
		}
	}
	it.onBarFreeCycle = barFreeCycles(p, g)
	return it
}

// barFreeCycles marks nodes lying on a CFG cycle that avoids every
// bar.sync: such a node can execute twice inside one barrier interval.
func barFreeCycles(p *isa.Program, g *analysis.CFG) []bool {
	out := make([]bool, g.N+1)
	isBar := func(v int32) bool { return v < g.N && p.At(v).Op == isa.OpBar }
	for pc := int32(0); pc < g.N; pc++ {
		if isBar(pc) {
			continue
		}
		// BFS from successors, never passing through a barrier node.
		seen := make([]bool, g.N+1)
		stack := []int32{}
		for _, s := range g.Succ[pc] {
			if !isBar(s) && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
		found := false
		for len(stack) > 0 && !found {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == pc {
				found = true
				break
			}
			for _, s := range g.Succ[v] {
				if !isBar(s) && !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		out[pc] = found
	}
	return out
}

// freshKind classifies a symbol minted at pc from the given operand
// values: varying under divergent control or varying inputs, otherwise
// uniform, and interval-stable when the definition cannot repeat within
// a barrier interval.
func (it *interp) freshKind(pc int32, ops ...AbsVal) symKind {
	in := it.p.At(pc)
	if it.divergent[pc] || (in.Guarded() && it.varyP&(1<<uint8(in.Guard)) != 0) {
		return symVarying
	}
	for _, o := range ops {
		if !o.uniform(it.t) {
			return symVarying
		}
	}
	if it.onBarFreeCycle[pc] {
		return symUniform
	}
	return symStable
}

// fresh mints (or re-interns) the canonical definition symbol for pc.
func (it *interp) fresh(pc int32, reg isa.Reg, kind symKind, lo, hi int64) AbsVal {
	return symV(it.t.intern(symKey{pc: pc, reg: reg, param: -1}, kind, lo, hi))
}

// widen replaces an unmergeable join with the canonical widening symbol
// of (pc, reg).
func (it *interp) widen(pc int32, reg isa.Reg, a, b AbsVal) AbsVal {
	kind := symVarying
	if a.uniform(it.t) && b.uniform(it.t) && !it.divergent[pc] {
		if it.onBarFreeCycle[pc] {
			kind = symUniform
		} else {
			kind = symStable
		}
	}
	alo, ahi := a.bounds(it.t, it.geo)
	blo, bhi := b.bounds(it.t, it.geo)
	return symV(it.t.intern(symKey{pc: pc, reg: reg, widen: true, param: -1},
		kind, min(alo, blo), max(ahi, bhi)))
}

// joinVal merges two abstract values flowing into pc for register r.
// Equal shapes merge by folding the constant difference into a stride
// (the shape of a loop induction variable advancing by a uniform step);
// different shapes widen to the canonical symbol of (pc, r), whose
// interned identity makes the fixpoint terminate.
func (it *interp) joinVal(pc int32, r isa.Reg, a, b AbsVal) AbsVal {
	if a.equal(b) {
		return a
	}
	if a.Top || b.Top {
		return top()
	}
	if a.sameShape(b) {
		if a.Stride == 0 && b.Stride == 0 && b.C < a.C {
			// A decreasing constant sequence (halving loop counters): the
			// stride shape is unbounded above and would lose the upper
			// bound, so widen to an interval symbol instead.
			return it.widen(pc, r, a, b)
		}
		c := min(a.C, b.C)
		st := gcd64(gcd64(a.Stride, b.Stride), a.C-b.C)
		out := a
		out.C, out.Stride = c, st
		return out
	}
	return it.widen(pc, r, a, b)
}

// evalOperand evaluates a source operand in state s at pc.
func (it *interp) evalOperand(pc int32, s *regs, o isa.Operand) AbsVal {
	switch o.Kind {
	case isa.OpdImm:
		return constV(int64(o.Imm))
	case isa.OpdReg:
		return s[o.Reg]
	case isa.OpdSpecial:
		switch o.Spec {
		case isa.SpecTID:
			return AbsVal{Lane: 1, Warp: 32}
		case isa.SpecNTID:
			return constV(it.geo.threads)
		case isa.SpecCTAID:
			return AbsVal{CTA: 1}
		case isa.SpecNCTAID:
			return constV(it.geo.ctas)
		case isa.SpecLaneID:
			return AbsVal{Lane: 1}
		case isa.SpecWarpID:
			return AbsVal{Warp: 1}
		case isa.SpecGTID:
			return AbsVal{Lane: 1, Warp: 32, CTA: it.geo.threads}
		case isa.SpecSMID:
			// Keyed past the register space so special-operand symbols
			// never collide with a definition symbol at the same PC.
			return it.fresh(pc, isa.Reg(isa.NumRegs)+isa.Reg(o.Spec), symStable, 0, posInf)
		default: // SpecClock and anything future: per-thread noise
			return it.fresh(pc, isa.Reg(isa.NumRegs)+isa.Reg(o.Spec), symVarying, negInf, posInf)
		}
	}
	return top()
}

// shrConst models a logical right shift by k of v, exploiting exact
// divisibility (including the gtid>>5 global-warp-index idiom, where the
// lane component vanishes under the shift).
func (it *interp) shrConst(pc int32, dst isa.Reg, v AbsVal, k int64) AbsVal {
	if k <= 0 || k >= 32 {
		if k == 0 {
			return v
		}
		return constV(0)
	}
	lo, vhi := v.bounds(it.t, it.geo)
	if v.IsConst() && v.C >= 0 {
		return constV(v.C >> uint(k))
	}
	m := int64(1) << uint(k)
	divisible := func(x int64) bool { return x%m == 0 }
	allDiv := divisible(v.C) && divisible(v.Warp) && divisible(v.CTA) && divisible(v.Stride)
	for _, tm := range v.Terms {
		allDiv = allDiv && divisible(tm.Coef)
	}
	if !v.Top && lo >= 0 && allDiv {
		switch {
		case v.Lane == 0:
			return v.mulConstExactDiv(m)
		case v.Lane == 1 && k == 5:
			// (32·q + lane) >> 5 == q for lane in [0,32).
			out := v
			out.Lane = 0
			return out.mulConstExactDiv(m)
		}
	}
	// Fallback: logical shift keeps the result non-negative.
	hi := posInf
	if vhi != posInf && lo >= 0 {
		hi = vhi >> uint(k)
	}
	return it.fresh(pc, dst, it.freshKind(pc, v), 0, hi)
}

// mulConstExactDiv divides every component by m (callers have verified
// divisibility of all non-lane components).
func (v AbsVal) mulConstExactDiv(m int64) AbsVal {
	out := v
	out.C /= m
	out.Warp /= m
	out.CTA /= m
	out.Stride /= m
	out.Terms = make([]Term, len(v.Terms))
	for i, tm := range v.Terms {
		out.Terms[i] = Term{Sym: tm.Sym, Coef: tm.Coef / m}
	}
	return out
}

// transfer computes the out-state of pc from a copy of its in-state.
func (it *interp) transfer(pc int32, s *regs) {
	in := it.p.At(pc)
	set := func(v AbsVal) {
		if in.Guarded() {
			// Lanes failing the guard keep the old value.
			v = it.joinVal(pc, in.Dst, s[in.Dst], v)
		}
		s[in.Dst] = v
	}
	a := func() AbsVal { return it.evalOperand(pc, s, in.A) }
	b := func() AbsVal { return it.evalOperand(pc, s, in.B) }

	switch in.Op {
	case isa.OpMov:
		set(a())
	case isa.OpLdParam:
		set(symV(it.t.paramSym(in.Param)))
	case isa.OpAdd:
		set(a().add(b()))
	case isa.OpSub:
		set(a().sub(b()))
	case isa.OpMul:
		av, bv := a(), b()
		switch {
		case av.IsConst():
			set(bv.mulConst(av.C))
		case bv.IsConst():
			set(av.mulConst(bv.C))
		default:
			set(it.fresh(pc, in.Dst, it.freshKind(pc, av, bv), negInf, posInf))
		}
	case isa.OpShl:
		av, bv := a(), b()
		if bv.IsConst() && bv.C >= 0 && bv.C < 32 {
			set(av.mulConst(int64(1) << uint(bv.C)))
		} else {
			set(it.fresh(pc, in.Dst, it.freshKind(pc, av, bv), negInf, posInf))
		}
	case isa.OpShr:
		av, bv := a(), b()
		if bv.IsConst() {
			set(it.shrConst(pc, in.Dst, av, bv.C))
		} else {
			set(it.fresh(pc, in.Dst, it.freshKind(pc, av, bv), 0, posInf))
		}
	case isa.OpRem:
		av, bv := a(), b()
		if bv.IsConst() && bv.C > 0 {
			lo, _ := av.bounds(it.t, it.geo)
			l := int64(0)
			if lo < 0 {
				l = -(bv.C - 1)
			}
			set(it.fresh(pc, in.Dst, it.freshKind(pc, av), l, bv.C-1))
		} else {
			set(it.fresh(pc, in.Dst, it.freshKind(pc, av, bv), negInf, posInf))
		}
	case isa.OpDiv:
		av, bv := a(), b()
		lo, hi := av.bounds(it.t, it.geo)
		if bv.IsConst() && bv.C > 0 && lo >= 0 {
			h := hi
			if h != posInf {
				h /= bv.C
			}
			set(it.fresh(pc, in.Dst, it.freshKind(pc, av), 0, h))
		} else {
			set(it.fresh(pc, in.Dst, it.freshKind(pc, av, bv), negInf, posInf))
		}
	case isa.OpAnd:
		av, bv := a(), b()
		if c, v := bv, av; c.IsConst() || av.IsConst() {
			if av.IsConst() {
				c, v = av, bv
			}
			if c.C >= 0 {
				if lane, ok := laneExtract(v, c.C); ok {
					set(lane)
					break
				}
				set(it.fresh(pc, in.Dst, it.freshKind(pc, av, bv), 0, c.C))
				break
			}
		}
		set(it.fresh(pc, in.Dst, it.freshKind(pc, av, bv), negInf, posInf))
	case isa.OpOr, isa.OpXor:
		av, bv := a(), b()
		alo, _ := av.bounds(it.t, it.geo)
		blo, _ := bv.bounds(it.t, it.geo)
		lo := int64(negInf)
		if alo >= 0 && blo >= 0 {
			lo = 0
		}
		set(it.fresh(pc, in.Dst, it.freshKind(pc, av, bv), lo, posInf))
	case isa.OpMin, isa.OpMax:
		av, bv := a(), b()
		alo, ahi := av.bounds(it.t, it.geo)
		blo, bhi := bv.bounds(it.t, it.geo)
		var lo, hi int64
		if in.Op == isa.OpMin {
			lo, hi = min(alo, blo), min(ahi, bhi)
		} else {
			lo, hi = max(alo, blo), max(ahi, bhi)
		}
		set(it.fresh(pc, in.Dst, it.freshKind(pc, av, bv), lo, hi))
	case isa.OpSelp:
		av, bv := a(), b()
		if it.varyP&(1<<in.PSrc) != 0 {
			alo, ahi := av.bounds(it.t, it.geo)
			blo, bhi := bv.bounds(it.t, it.geo)
			s[in.Dst] = it.fresh(pc, in.Dst, symVarying, min(alo, blo), max(ahi, bhi))
		} else {
			set(it.joinVal(pc, in.Dst, av, bv))
		}
	case isa.OpSetp:
		it.setps[pc] = setpRel{a: a(), b: b(), cmp: in.Cmp}
	case isa.OpLd, isa.OpAtomCAS, isa.OpAtomExch, isa.OpAtomAdd, isa.OpAtomMax:
		// Loaded/returned values are arbitrary other-thread data.
		set(it.fresh(pc, in.Dst, symVarying, negInf, posInf))
	}
}

// laneExtract recognizes v & mask as an exact lane extraction: mask 31
// applied to a value of shape 32·q + lane.
func laneExtract(v AbsVal, mask int64) (AbsVal, bool) {
	if mask != 31 || v.Top || v.Lane != 1 {
		return AbsVal{}, false
	}
	div := func(x int64) bool { return x%32 == 0 }
	if !div(v.C) || !div(v.Warp) || !div(v.CTA) || !div(v.Stride) {
		return AbsVal{}, false
	}
	for _, tm := range v.Terms {
		if !div(tm.Coef) {
			return AbsVal{}, false
		}
	}
	return AbsVal{Lane: 1}, true
}

// run iterates the transfer functions to a fixpoint, then snapshots the
// setp relations under the final states.
//
// In-states are recomputed each sweep as the join of the current
// predecessor out-states rather than accumulated against their own
// history: the first sweeps of a loop see transient constants (the loop
// head evaluated before its back edge), and folding those into the
// in-state permanently would widen every downstream node to a node-local
// symbol, destroying the affine address structure. Recomputing from outs
// lets transients wash out once the back edge stabilizes; termination
// still holds because widening symbols are interned per (pc, reg) with
// monotone bounds, so repeated joins reproduce identical values. A sweep
// cap backstops the argument: on overrun every state is forced to top,
// which is sound (everything is reported).
func (it *interp) run() {
	n := it.g.N
	it.reached[0] = true
	out := make([]regs, n)
	evaluated := make([]bool, n)
	const maxSweeps = 500
	converged := false
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for pc := int32(0); pc < n; pc++ {
			if !it.reached[pc] {
				continue
			}
			var iv regs
			first := pc != 0 // entry's in-state is all-zero registers
			for _, q := range it.g.Pred[pc] {
				if q >= n || !evaluated[q] {
					continue
				}
				if first {
					iv = out[q]
					first = false
					continue
				}
				for r := 0; r < isa.NumRegs; r++ {
					iv[r] = it.joinVal(pc, isa.Reg(r), iv[r], out[q][r])
				}
			}
			if first && pc != 0 {
				continue // no predecessor evaluated yet
			}
			it.in[pc] = iv
			o := iv
			it.transfer(pc, &o)
			if !evaluated[pc] || !regsEqual(&o, &out[pc]) {
				evaluated[pc] = true
				out[pc] = o
				changed = true
			}
			for _, s := range it.g.Succ[pc] {
				if s < n && !it.reached[s] {
					it.reached[s] = true
					changed = true
				}
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if !converged {
		for pc := int32(0); pc < n; pc++ {
			for r := range it.in[pc] {
				it.in[pc][r] = top()
			}
		}
	}
	// Final snapshot of setp relations under the fixpoint in-states.
	for pc := int32(0); pc < n; pc++ {
		if it.reached[pc] && it.p.At(pc).Op == isa.OpSetp {
			o := it.in[pc]
			it.transfer(pc, &o)
		}
	}
}

func regsEqual(a, b *regs) bool {
	for r := range a {
		if !a[r].equal(b[r]) {
			return false
		}
	}
	return true
}

// addr evaluates the effective address A+B of the memory op at pc in its
// fixpoint in-state.
func (it *interp) addr(pc int32) AbsVal {
	s := it.in[pc]
	return it.evalOperand(pc, &s, it.p.At(pc).A).add(it.evalOperand(pc, &s, it.p.At(pc).B))
}
