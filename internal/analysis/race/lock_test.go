package race

import (
	"testing"

	"warpsched/internal/analysis"
)

// lockSetup parses src, runs the interpreter and the lockset DFS.
func lockSetup(t *testing.T, src string) (*lockResult, *interp) {
	t.Helper()
	p := mustParse(t, "t", src)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := analysis.BuildCFG(p)
	it := newInterp(p, g, geometry{ctas: 2, threads: 64, warps: 2})
	it.run()
	return analyzeLocks(it, g), it
}

// spin-acquire of lock word [param0+0]; PCs 1..3, body starts at 4.
const acquirePrefix = `
  ld.param %r2, 0
spin:
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync
  setp.ne %p0, %r1, 0
  @%p0 bra spin  !sib,sync
`

// TestLocksetSuccessClassification: the spin exit edge proves the CAS
// returned 0, so the lock must be held (resolved, not pending) on every
// path reaching the critical section.
func TestLocksetSuccessClassification(t *testing.T) {
	res, _ := lockSetup(t, acquirePrefix+`
  ld.param %r3, 1
  st.global [%r3+0], %r1       // 5: critical section
  atom.exch %r1, [%r2+0], 0    !release,sync
  exit
`)
	held := res.mustHeld[5]
	if len(held) != 1 || held[0].acqPC != 1 || held[0].pending {
		t.Fatalf("mustHeld[5] = %+v, want the resolved acquire from pc 1", held)
	}
	if len(res.findings) != 0 {
		t.Fatalf("unexpected findings: %v", res.findings)
	}
}

// TestLocksetDiamondMerge: a branch inside the critical section must not
// lose the lock — both arms and the join keep the same resolved entry.
func TestLocksetDiamondMerge(t *testing.T) {
	res, _ := lockSetup(t, acquirePrefix+`
  ld.param %r3, 1
  mov %r4, %tid
  setp.lt %p1, %r4, 16
  @!%p1 bra other reconv=join  // 7
  add %r4, %r4, 1              // 8: then-arm
  bra join
other:
  add %r4, %r4, 2              // 10: else-arm
join:
  st.global [%r3+0], %r4       // 11: still inside the critical section
  atom.exch %r1, [%r2+0], 0    !release,sync
  exit
`)
	for _, pc := range []int32{8, 10, 11} {
		held := res.mustHeld[pc]
		if len(held) != 1 || held[0].acqPC != 1 || held[0].pending {
			t.Fatalf("mustHeld[%d] = %+v, want the acquire from pc 1", pc, held)
		}
	}
	if len(res.findings) != 0 {
		t.Fatalf("unexpected findings: %v", res.findings)
	}
}

// TestLocksetConditionalAcquireNotMerged: when only one path through a
// diamond acquires (and releases before the join), the join's must-held
// set is the intersection — empty — while the critical section keeps it.
func TestLocksetConditionalAcquireNotMerged(t *testing.T) {
	res, _ := lockSetup(t, `
  ld.param %r2, 0
  ld.param %r3, 1
  mov %r4, %tid
  setp.lt %p1, %r4, 16
  @!%p1 bra join reconv=join   // 4
spin:
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync
  setp.ne %p0, %r1, 0
  @%p0 bra spin  !sib,sync
  st.global [%r3+0], %r4       // 8: critical section, lock held
  atom.exch %r1, [%r2+0], 0    !release,sync
join:
  st.global [%r3+4], %r4       // 10: lock held on no path here
  exit
`)
	if held := res.mustHeld[8]; len(held) != 1 || held[0].acqPC != 5 {
		t.Fatalf("mustHeld[8] = %+v, want the acquire from pc 5", held)
	}
	if held := res.mustHeld[10]; len(held) != 0 {
		t.Fatalf("mustHeld[10] = %+v, want empty after the join", held)
	}
	if len(res.findings) != 0 {
		t.Fatalf("unexpected findings: %v", res.findings)
	}
}

// TestLocksetUnclassifiableAcquireStaysPending: with no branch proving
// the CAS succeeded, the entry must stay out of mustHeld.
func TestLocksetUnclassifiableAcquireStaysPending(t *testing.T) {
	res, _ := lockSetup(t, `
  ld.param %r2, 0
  ld.param %r3, 1
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync  // 2: success never tested
  st.global [%r3+0], %r1       // 3
  atom.exch %r1, [%r2+0], 0    !release,sync
  exit
`)
	if held := res.mustHeld[3]; len(held) != 0 {
		t.Fatalf("mustHeld[3] = %+v, want empty (acquire success unproven)", held)
	}
}

// TestLocksetDstOverwriteDeclassifies: clobbering the CAS result register
// before the success test makes the spin-exit edge meaningless.
func TestLocksetDstOverwriteDeclassifies(t *testing.T) {
	res, _ := lockSetup(t, `
  ld.param %r2, 0
  ld.param %r3, 1
spin:
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync  // 2
  mov %r1, 0                   // 3: clobbers the result
  setp.ne %p0, %r1, 0
  @%p0 bra spin  !sib,sync
  st.global [%r3+0], %r1       // 6
  atom.exch %r1, [%r2+0], 0    !release,sync
  exit
`)
	if held := res.mustHeld[6]; len(held) != 0 {
		t.Fatalf("mustHeld[6] = %+v, want empty (result clobbered)", held)
	}
}
