package race

import (
	"testing"

	"warpsched/internal/analysis"
	"warpsched/internal/isa"
)

func mustParse(t *testing.T, name, src string) *isa.Program {
	t.Helper()
	p, err := isa.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// interpFor runs the abstract interpreter over src at the given geometry
// and returns it for inspection.
func interpFor(t *testing.T, src string, ctas, threads int64) *interp {
	t.Helper()
	p := mustParse(t, "t", src)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := analysis.BuildCFG(p)
	it := newInterp(p, g, geometry{ctas: ctas, threads: threads, warps: (threads + 31) / 32})
	it.run()
	return it
}

func TestAbsValAlgebra(t *testing.T) {
	tab := newSymtab()
	s1 := symV(tab.intern(symKey{pc: 3, reg: 4}, symStable, 0, 100))
	s2 := symV(tab.intern(symKey{pc: 7, reg: 5}, symVarying, negInf, posInf))

	cases := []struct {
		name string
		got  AbsVal
		want AbsVal
	}{
		{"const-add", constV(3).add(constV(4)), constV(7)},
		{"sub-self-cancels", s1.add(constV(5)).sub(s1), constV(5)},
		{"mul-distributes",
			AbsVal{C: 2, Lane: 1, Warp: 32}.mulConst(3),
			AbsVal{C: 6, Lane: 3, Warp: 96}},
		{"mul-zero", s2.mulConst(0), constV(0)},
		{"term-merge",
			s1.mulConst(2).add(s1),
			s1.mulConst(3)},
		{"top-absorbs", top().add(constV(1)), top()},
		{"neg-stride-tops",
			AbsVal{Stride: 4}.mulConst(-1),
			top()},
		{"stride-gcd",
			AbsVal{Stride: 6}.add(AbsVal{Stride: 4}),
			AbsVal{Stride: 2}},
	}
	for _, c := range cases {
		if !c.got.equal(c.want) {
			t.Errorf("%s: got %+v, want %+v", c.name, c.got, c.want)
		}
	}

	if !s1.add(constV(9)).sameShape(s1) {
		t.Error("sameShape must ignore the constant part")
	}
	if s1.sameShape(s2) {
		t.Error("different symbols are not the same shape")
	}

	// Kind/bounds queries.
	if !s1.uniform(tab) || s2.uniform(tab) {
		t.Error("uniform: stable sym is uniform, varying sym is not")
	}
	if !s1.stableUniform(tab) {
		t.Error("stableUniform: stable sym qualifies")
	}
	pv := symV(tab.paramSym(2))
	if !pv.add(constV(8)).globalConst(tab) {
		t.Error("globalConst: param+const qualifies")
	}
	if s1.globalConst(tab) {
		t.Error("globalConst: non-param sym does not qualify")
	}
	if idx, ok := pv.paramBase(tab); !ok || idx != 2 {
		t.Errorf("paramBase = %d,%v want 2,true", idx, ok)
	}

	lo, hi := s1.mulConst(2).add(constV(1)).bounds(tab, geometry{ctas: 2, threads: 64, warps: 2})
	if lo != 1 || hi != 201 {
		t.Errorf("bounds(2*s1+1) = [%d,%d], want [1,201]", lo, hi)
	}
}

// TestAddressAbstraction pins the abstract address shapes the interpreter
// derives for the idioms the kernels use, via their rendered form.
func TestAddressAbstraction(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		pc      int32 // the memory access to inspect
		threads int64
		want    string
	}{
		{
			name: "tid-indexed",
			src: `
  ld.param %r2, 0
  mov %r1, %tid
  st.global [%r2+%r1], %r1
  exit
`,
			pc: 2, threads: 64, want: "param0+lane+32*warp",
		},
		{
			name: "gtid-indexed",
			src: `
  ld.param %r2, 0
  mov %r1, %gtid
  st.global [%r2+%r1], %r1
  exit
`,
			pc: 2, threads: 64, want: "param0+lane+32*warp+64*cta",
		},
		{
			name: "warp-of-gtid-shift",
			src: `
  ld.param %r2, 0
  mov %r1, %gtid
  shr %r3, %r1, 5
  st.global [%r2+%r3], %r1
`,
			pc: 3, threads: 64, want: "param0+warp+2*cta",
		},
		{
			name: "affine-scale-offset",
			src: `
  ld.param %r2, 0
  mov %r1, %tid
  mul %r3, %r1, 4
  add %r3, %r3, 100
  st.global [%r2+%r3], %r1
`,
			pc: 4, threads: 64, want: "param0+4*lane+128*warp+100",
		},
		{
			name: "grid-stride-loop",
			src: `
  ld.param %r2, 0
  mov %r1, %tid
loop:
  st.global [%r2+%r1], %r1
  add %r1, %r1, 64
  setp.lt %p0, %r1, 1024
  @%p0 bra loop
  exit
`,
			pc: 2, threads: 64, want: "param0+lane+32*warp+64*n",
		},
		{
			name: "loaded-index-is-opaque",
			src: `
  ld.param %r2, 0
  mov %r1, %tid
  ld.global %r3, [%r2+%r1]
  st.global [%r2+%r3], %r1
`,
			pc: 3, threads: 64, want: "param0+v@pc2",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			it := interpFor(t, c.src+"\n  exit\n", 2, c.threads)
			got := it.addr(c.pc).describe(it.t)
			if got != c.want {
				t.Errorf("addr(pc %d) = %q, want %q", c.pc, got, c.want)
			}
		})
	}
}

// TestInternWidening checks the landmark widening policy: a lower bound
// first drops to zero (if it stays non-negative) and only then to -inf,
// and an upper bound jumps straight to +inf.
func TestInternWidening(t *testing.T) {
	tab := newSymtab()
	key := symKey{pc: 5, reg: 3}
	id := tab.intern(key, symStable, 10, 20)
	if s := tab.info(id); s.lo != 10 || s.hi != 20 {
		t.Fatalf("initial bounds [%d,%d]", s.lo, s.hi)
	}
	tab.intern(key, symStable, 4, 20) // shrinking lo, still >= 0
	if s := tab.info(id); s.lo != 0 || s.hi != 20 {
		t.Fatalf("after lo-widen: [%d,%d], want [0,20]", s.lo, s.hi)
	}
	tab.intern(key, symStable, -1, 30)
	if s := tab.info(id); s.lo != negInf || s.hi != posInf {
		t.Fatalf("after full widen: [%d,%d], want [-inf,+inf]", s.lo, s.hi)
	}
	// Kind may only weaken.
	tab.intern(key, symVarying, 0, 0)
	if tab.info(id).kind != symVarying {
		t.Fatal("kind did not weaken to varying")
	}
	tab.intern(key, symStable, 0, 0)
	if tab.info(id).kind != symVarying {
		t.Fatal("kind must not strengthen back")
	}
}
