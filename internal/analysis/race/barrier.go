package race

import (
	"fmt"

	"warpsched/internal/analysis"
	"warpsched/internal/isa"
)

// intervals captures barrier-interval co-membership: two same-CTA
// accesses can only race if some execution places them between the same
// pair of adjacent bar.syncs. Interval starts are the program entry and
// every successor of a bar; an access belongs to the interval of start s
// when it is reachable from s without crossing another bar.
type intervals struct {
	member [][]bool // member[k][pc]
}

func buildIntervals(p *isa.Program, g *analysis.CFG) *intervals {
	isBar := func(v int32) bool { return v < g.N && p.At(v).Op == isa.OpBar }
	var starts []int32
	seenStart := make(map[int32]bool)
	addStart := func(v int32) {
		if v < g.N && !seenStart[v] {
			seenStart[v] = true
			starts = append(starts, v)
		}
	}
	addStart(0)
	for pc := int32(0); pc < g.N; pc++ {
		if isBar(pc) {
			for _, s := range g.Succ[pc] {
				addStart(s)
			}
		}
	}
	iv := &intervals{}
	for _, s := range starts {
		m := make([]bool, g.N+1)
		stack := []int32{s}
		m[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if isBar(v) {
				continue // the interval ends at the next barrier
			}
			for _, w := range g.Succ[v] {
				if w < g.N && !m[w] {
					m[w] = true
					stack = append(stack, w)
				}
			}
		}
		iv.member = append(iv.member, m)
	}
	return iv
}

// same reports whether some barrier interval contains both PCs.
func (iv *intervals) same(u, v int32) bool {
	for _, m := range iv.member {
		if m[u] && m[v] {
			return true
		}
	}
	return false
}

// firstBars collects the bar.sync PCs reachable from start without
// crossing another bar — the set of "next barriers" on that edge.
func firstBars(p *isa.Program, g *analysis.CFG, start int32) map[int32]bool {
	out := map[int32]bool{}
	if start >= g.N {
		return out
	}
	seen := make([]bool, g.N+1)
	stack := []int32{start}
	seen[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v < g.N && p.At(v).Op == isa.OpBar {
			out[v] = true
			continue
		}
		for _, w := range g.Succ[v] {
			if w < g.N && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return out
}

// threadVaryingSets computes a "strictly thread-identity-derived"
// divergence analysis, deliberately tighter than analysis.VaryingSets:
// loads taint their destination only when the *address* is varying.
// A load from a uniform address (the BFS frontier flag, a producer/
// consumer mailbox) yields the same word to every thread issuing it at
// that moment, so branching on it cannot split the CTA's warps across
// different barriers — whereas tid-indexed data genuinely can.
func threadVaryingSets(g *analysis.CFG) (uint64, uint8) {
	p := g.Prog
	var varyR uint64
	var varyP uint8

	specVarying := func(s isa.Special) bool {
		switch s {
		case isa.SpecTID, isa.SpecLaneID, isa.SpecWarpID, isa.SpecGTID:
			return true
		}
		return false
	}
	opdVarying := func(o isa.Operand) bool {
		switch o.Kind {
		case isa.OpdReg:
			return varyR&(1<<o.Reg) != 0
		case isa.OpdSpecial:
			return specVarying(o.Spec)
		}
		return false
	}

	for {
		divergent := make([]bool, g.N+1)
		for pc := int32(0); pc < g.N; pc++ {
			in := p.At(pc)
			if in.Op != isa.OpBra || !in.Guarded() || varyP&(1<<uint8(in.Guard)) == 0 {
				continue
			}
			for v, inRegion := range g.DivergentRegion(pc) {
				if inRegion {
					divergent[v] = true
				}
			}
		}
		changed := false
		for pc := int32(0); pc < g.N; pc++ {
			in := p.At(pc)
			v := divergent[pc] || (in.Guarded() && varyP&(1<<uint8(in.Guard)) != 0)
			if !v {
				switch {
				case in.Op == isa.OpLd:
					v = opdVarying(in.A) || opdVarying(in.B)
				case in.Op.IsAtomic():
					v = true // each thread receives a distinct old value
				case in.Op == isa.OpLdParam:
					v = false
				case in.Op == isa.OpSelp:
					v = opdVarying(in.A) || opdVarying(in.B) || varyP&(1<<in.PSrc) != 0
				default:
					v = opdVarying(in.A) || opdVarying(in.B) || opdVarying(in.C) || opdVarying(in.D)
				}
			}
			if !v {
				continue
			}
			if in.WritesReg() && varyR&(1<<in.Dst) == 0 {
				varyR |= 1 << in.Dst
				changed = true
			}
			if in.Op == isa.OpSetp && varyP&(1<<in.PDst) == 0 {
				varyP |= 1 << in.PDst
				changed = true
			}
		}
		if !changed {
			return varyR, varyP
		}
	}
}

// checkBarrierReachability flags forward branches whose guard is derived
// from the thread's identity and whose two edges proceed to *different*
// next barriers: threads of one CTA then arrive at bar.syncs of distinct
// program phases in the same dynamic round, silently pairing mismatched
// phases (or, with a spin on the far side, deadlocking the CTA). An edge
// whose barrier set is empty is exempt — threads that exit are released
// from the barrier count, so skipping straight to exit cannot wedge the
// others. Backward branches are exempt for the same reason as in the
// divergent-barrier check: loop-exit lanes wait at reconvergence.
func checkBarrierReachability(p *isa.Program, g *analysis.CFG) []analysis.Finding {
	hasBar := false
	for pc := int32(0); pc < g.N; pc++ {
		if p.At(pc).Op == isa.OpBar {
			hasBar = true
			break
		}
	}
	if !hasBar {
		return nil
	}
	_, varyP := threadVaryingSets(g)
	var fs []analysis.Finding
	for pc := int32(0); pc < g.N; pc++ {
		in := p.At(pc)
		if in.Op != isa.OpBra || !in.Guarded() || in.Target <= pc || !g.Reachable[pc] {
			continue
		}
		if varyP&(1<<uint8(in.Guard)) == 0 {
			continue
		}
		taken := firstBars(p, g, in.Target)
		fall := map[int32]bool{}
		if pc+1 < g.N {
			fall = firstBars(p, g, pc+1)
		}
		if len(taken) == 0 || len(fall) == 0 || sameBarSet(taken, fall) {
			continue
		}
		fs = append(fs, analysis.Finding{
			Program: p.Name, PC: pc, Category: analysis.CatBarrierDeadlock,
			Message: fmt.Sprintf(
				"thread-dependent branch: the taken edge next reaches bar.sync at %s but the fall-through reaches %s; threads of one CTA would pair barriers of different phases",
				barList(taken), barList(fall)),
		})
	}
	return fs
}

func sameBarSet(a, b map[int32]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func barList(m map[int32]bool) string {
	lo := int32(-1)
	for k := range m {
		if lo < 0 || k < lo {
			lo = k
		}
	}
	s := fmt.Sprintf("pc %d", lo)
	if len(m) > 1 {
		s += fmt.Sprintf(" (+%d more)", len(m)-1)
	}
	return s
}
