// Package race implements a static inter-warp data-race, barrier-phase
// and lock-discipline analysis over isa.Program, layered on the CFG and
// dataflow infrastructure of internal/analysis.
//
// The core is an abstract interpretation of each thread's register file
// in a relational address domain: every register value is abstracted as
//
//	c + a·laneid + b·warpid + e·ctaid + Σ coefᵢ·σᵢ  (+ stride·n, n ≥ 0)
//
// where the σᵢ are opaque symbols introduced for values the affine part
// cannot express (loads, div/rem results, widened loop variables, kernel
// parameters). Each symbol carries a uniformity kind — thread-varying,
// CTA-uniform, CTA-uniform and barrier-interval-stable, or grid-constant
// (parameter) — plus an interval bound, both of which the conflict
// prover (conflict.go) exploits: stable symbols are shared between two
// threads of one CTA inside one barrier interval, parameters are shared
// always, everything else is existentially distinct per thread.
//
// Launch geometry (CTA count, threads per CTA) is substituted concretely,
// matching how the analysis is consumed: warplint analyzes registered
// kernels at their recorded launch configuration and warpsimd admission
// analyzes the requested launch.
package race

import (
	"fmt"
	"sort"

	"warpsched/internal/isa"
)

// Bounds use saturating sentinels far from the int64 edges so sums of a
// few bounds can never overflow.
const (
	negInf = int64(-1) << 56
	posInf = int64(1) << 56
)

func clampBound(v int64) int64 {
	if v <= negInf {
		return negInf
	}
	if v >= posInf {
		return posInf
	}
	return v
}

// addB adds two bounds with infinity saturation.
func addB(a, b int64) int64 {
	if a == negInf || b == negInf {
		return negInf
	}
	if a == posInf || b == posInf {
		return posInf
	}
	return clampBound(a + b)
}

// mulB multiplies a finite coefficient k into a bound.
func mulB(k, b int64) int64 {
	if k == 0 {
		return 0
	}
	if b == negInf {
		if k > 0 {
			return negInf
		}
		return posInf
	}
	if b == posInf {
		if k > 0 {
			return posInf
		}
		return negInf
	}
	return clampBound(k * b)
}

// symKind classifies how an opaque symbol's value relates across threads.
type symKind uint8

const (
	// symVarying: each thread may hold a different value.
	symVarying symKind = iota
	// symUniform: CTA-uniform, but may take several values inside one
	// barrier interval (its definition sits on a barrier-free cycle), so
	// two threads of one interval cannot be assumed to agree on it.
	symUniform
	// symStable: CTA-uniform and interval-stable — the defining
	// instruction executes at most once per barrier interval, so every
	// thread of the CTA observing it inside one interval sees the same
	// value. Shared between same-CTA sides in the conflict prover.
	symStable
	// symParam: a kernel parameter — one value for the whole grid.
	symParam
)

// symInfo is the per-symbol record of the interner.
type symInfo struct {
	kind   symKind
	lo, hi int64
	// origin describes where the symbol was introduced, for messages and
	// for the constraint-freshness check (a guard constraint mentioning a
	// symbol is dropped if the symbol can be redefined between the setp
	// and the guarded access).
	originPC int32 // -1 for parameters
	param    uint8
}

type symKey struct {
	pc    int32
	reg   isa.Reg
	widen bool
	param int16 // >= 0 for parameter symbols
}

// symtab interns symbols so the same definition site always yields the
// same symbol identity across fixpoint iterations (required both for
// termination and for sharing symbols between the two sides of a pair).
type symtab struct {
	syms  []symInfo
	byKey map[symKey]int32
}

func newSymtab() *symtab {
	return &symtab{byKey: make(map[symKey]int32)}
}

func (t *symtab) info(id int32) *symInfo { return &t.syms[id] }

// intern returns the symbol for key, creating it with the given
// attributes on first sight. On re-interning, the kind may only weaken
// (varying absorbs uniform absorbs stable) and bounds widen monotonically
// so the enclosing fixpoint terminates.
func (t *symtab) intern(key symKey, kind symKind, lo, hi int64) int32 {
	if id, ok := t.byKey[key]; ok {
		s := &t.syms[id]
		if kind < s.kind && s.kind != symParam {
			s.kind = kind
		}
		// Widening: a bound that moves past its recorded value jumps to a
		// landmark rather than chasing the sequence — zero first for lower
		// bounds (loop counters shrink toward zero; keeping lo ≥ 0 keeps
		// logical-shift reasoning exact), then infinity.
		if lo < s.lo {
			if lo >= 0 {
				s.lo = 0
			} else {
				s.lo = negInf
			}
		}
		if hi > s.hi {
			s.hi = posInf
		}
		return id
	}
	id := int32(len(t.syms))
	s := symInfo{kind: kind, lo: clampBound(lo), hi: clampBound(hi), originPC: key.pc}
	if key.param >= 0 {
		s.originPC = -1
		s.param = uint8(key.param)
	}
	t.syms = append(t.syms, s)
	t.byKey[key] = id
	return id
}

func (t *symtab) paramSym(idx uint8) int32 {
	return t.intern(symKey{pc: -1, reg: 0, param: int16(idx)}, symParam, negInf, posInf)
}

// Term is one opaque-symbol component of an abstract value.
type Term struct {
	Sym  int32
	Coef int64
}

// maxTerms caps the symbolic part of a value; beyond it the value goes
// to top (an unknown address, reported as a potential conflict).
const maxTerms = 6

// AbsVal is one abstract register value (see the package comment).
type AbsVal struct {
	Top             bool
	C               int64
	Lane, Warp, CTA int64
	Terms           []Term
	// Stride != 0 means the value additionally includes Stride·n for some
	// unknown n ≥ 0 — the shape of a loop induction variable advancing by
	// a constant step. Always > 0 when set.
	Stride int64
}

func top() AbsVal           { return AbsVal{Top: true} }
func constV(c int64) AbsVal { return AbsVal{C: c} }

func symV(id int32) AbsVal { return AbsVal{Terms: []Term{{Sym: id, Coef: 1}}} }

// IsConst reports whether the value is a known constant.
func (v AbsVal) IsConst() bool {
	return !v.Top && v.Lane == 0 && v.Warp == 0 && v.CTA == 0 && len(v.Terms) == 0 && v.Stride == 0
}

// equal reports exact structural equality.
func (v AbsVal) equal(w AbsVal) bool {
	if v.Top != w.Top || v.C != w.C || v.Lane != w.Lane || v.Warp != w.Warp ||
		v.CTA != w.CTA || v.Stride != w.Stride || len(v.Terms) != len(w.Terms) {
		return false
	}
	for i := range v.Terms {
		if v.Terms[i] != w.Terms[i] {
			return false
		}
	}
	return true
}

// sameShape reports whether v and w differ at most in the constant part.
func (v AbsVal) sameShape(w AbsVal) bool {
	if v.Top || w.Top || v.Lane != w.Lane || v.Warp != w.Warp ||
		v.CTA != w.CTA || len(v.Terms) != len(w.Terms) {
		return false
	}
	for i := range v.Terms {
		if v.Terms[i] != w.Terms[i] {
			return false
		}
	}
	return true
}

func addTerms(a, b []Term, bScale int64) ([]Term, bool) {
	out := make([]Term, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i].Sym < b[j].Sym):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j].Sym < a[i].Sym:
			out = append(out, Term{Sym: b[j].Sym, Coef: bScale * b[j].Coef})
			j++
		default:
			c := a[i].Coef + bScale*b[j].Coef
			if c != 0 {
				out = append(out, Term{Sym: a[i].Sym, Coef: c})
			}
			i++
			j++
		}
	}
	if len(out) > maxTerms {
		return nil, false
	}
	return out, true
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// addScaled returns v + k·w.
func addScaled(v, w AbsVal, k int64) AbsVal {
	if v.Top || w.Top {
		return top()
	}
	terms, ok := addTerms(v.Terms, w.Terms, k)
	if !ok {
		return top()
	}
	r := AbsVal{
		C:     v.C + k*w.C,
		Lane:  v.Lane + k*w.Lane,
		Warp:  v.Warp + k*w.Warp,
		CTA:   v.CTA + k*w.CTA,
		Terms: terms,
	}
	// Strided components combine into the gcd of the steps. A negatively
	// scaled stride no longer advances upward, so it degrades to top via
	// the caller-side widening (kept simple: treat as unknown).
	switch {
	case w.Stride != 0 && k < 0:
		return top()
	case v.Stride != 0 && w.Stride != 0:
		r.Stride = gcd64(v.Stride, w.Stride*k)
	case v.Stride != 0:
		r.Stride = v.Stride
	case w.Stride != 0:
		r.Stride = w.Stride * k
	}
	return r
}

func (v AbsVal) add(w AbsVal) AbsVal { return addScaled(v, w, 1) }
func (v AbsVal) sub(w AbsVal) AbsVal { return addScaled(v, w, -1) }

// mulConst returns k·v.
func (v AbsVal) mulConst(k int64) AbsVal {
	if v.Top {
		return top()
	}
	if k == 0 {
		return constV(0)
	}
	if v.Stride != 0 && k < 0 {
		return top()
	}
	terms := make([]Term, len(v.Terms))
	for i, t := range v.Terms {
		terms[i] = Term{Sym: t.Sym, Coef: t.Coef * k}
	}
	return AbsVal{C: v.C * k, Lane: v.Lane * k, Warp: v.Warp * k, CTA: v.CTA * k,
		Terms: terms, Stride: v.Stride * k}
}

// geometry is the concrete launch shape the analysis runs at.
type geometry struct {
	ctas, threads int64 // gridDim.x, blockDim.x
	warps         int64 // warps per CTA
}

// bounds evaluates the value's interval at the given geometry.
func (v AbsVal) bounds(t *symtab, g geometry) (int64, int64) {
	if v.Top {
		return negInf, posInf
	}
	lo, hi := v.C, v.C
	rng := func(k, vlo, vhi int64) {
		if k >= 0 {
			lo, hi = addB(lo, mulB(k, vlo)), addB(hi, mulB(k, vhi))
		} else {
			lo, hi = addB(lo, mulB(k, vhi)), addB(hi, mulB(k, vlo))
		}
	}
	rng(v.Lane, 0, 31)
	rng(v.Warp, 0, g.warps-1)
	rng(v.CTA, 0, g.ctas-1)
	for _, tm := range v.Terms {
		s := t.info(tm.Sym)
		rng(tm.Coef, s.lo, s.hi)
	}
	if v.Stride != 0 {
		hi = posInf
	}
	return lo, hi
}

// uniform reports whether the value is CTA-uniform: no per-thread
// component and only non-varying symbols. A ctaid component is allowed —
// it is constant within a CTA.
func (v AbsVal) uniform(t *symtab) bool {
	if v.Top || v.Lane != 0 || v.Warp != 0 {
		return false
	}
	for _, tm := range v.Terms {
		if t.info(tm.Sym).kind == symVarying {
			return false
		}
	}
	return true
}

// stableUniform additionally requires every symbol to be shareable
// within a barrier interval.
func (v AbsVal) stableUniform(t *symtab) bool {
	if !v.uniform(t) {
		return false
	}
	for _, tm := range v.Terms {
		if k := t.info(tm.Sym).kind; k != symStable && k != symParam {
			return false
		}
	}
	return true
}

// globalConst reports whether the value is identical for every thread of
// the grid: constants and parameter symbols only.
func (v AbsVal) globalConst(t *symtab) bool {
	if v.Top || v.Lane != 0 || v.Warp != 0 || v.CTA != 0 || v.Stride != 0 {
		return false
	}
	for _, tm := range v.Terms {
		if t.info(tm.Sym).kind != symParam {
			return false
		}
	}
	return true
}

// paramBase returns the parameter index the value is based on, if the
// value contains exactly one parameter symbol with coefficient 1.
func (v AbsVal) paramBase(t *symtab) (uint8, bool) {
	var idx uint8
	found := false
	for _, tm := range v.Terms {
		s := t.info(tm.Sym)
		if s.kind != symParam {
			continue
		}
		if found || tm.Coef != 1 {
			return 0, false
		}
		idx, found = s.param, true
	}
	return idx, found
}

// key renders a canonical identity string; used to name lock addresses.
func (v AbsVal) key(t *symtab) string {
	if v.Top {
		return "top"
	}
	s := fmt.Sprintf("c%d,l%d,w%d,b%d,s%d", v.C, v.Lane, v.Warp, v.CTA, v.Stride)
	for _, tm := range v.Terms {
		if in := t.info(tm.Sym); in.kind == symParam {
			s += fmt.Sprintf("+%d*p%d", tm.Coef, in.param)
		} else {
			s += fmt.Sprintf("+%d*y%d", tm.Coef, tm.Sym)
		}
	}
	return s
}

// describe renders the value for finding messages.
func (v AbsVal) describe(t *symtab) string {
	if v.Top {
		return "<unknown>"
	}
	out := ""
	emit := func(k int64, name string) {
		if k == 0 {
			return
		}
		if out != "" {
			out += "+"
		}
		if k == 1 {
			out += name
		} else {
			out += fmt.Sprintf("%d*%s", k, name)
		}
	}
	for _, tm := range v.Terms {
		if in := t.info(tm.Sym); in.kind == symParam {
			emit(tm.Coef, fmt.Sprintf("param%d", in.param))
		} else {
			emit(tm.Coef, fmt.Sprintf("v@pc%d", in.originPC))
		}
	}
	emit(v.Lane, "lane")
	emit(v.Warp, "warp")
	emit(v.CTA, "cta")
	if v.Stride != 0 {
		if out != "" {
			out += "+"
		}
		out += fmt.Sprintf("%d*n", v.Stride)
	}
	if v.C != 0 || out == "" {
		if out != "" {
			out += fmt.Sprintf("%+d", v.C)
		} else {
			out = fmt.Sprintf("%d", v.C)
		}
	}
	return out
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Sym < ts[j].Sym })
}
