package race_test

import (
	"testing"

	"warpsched/internal/analysis/race"
	"warpsched/internal/config"
	"warpsched/internal/isa"
	"warpsched/internal/kernels"
	"warpsched/internal/sim"
	"warpsched/internal/simt"
)

// shadowRec is one deduplicated memory access: which thread touched the
// word, from which instruction, in which barrier interval of its CTA.
type shadowRec struct {
	cta    int32
	epoch  int
	pc     int32
	write  bool // non-atomic store
	atomic bool
	gtid   int32
}

// shadowLog is a sim.Observer that builds a per-word access log with
// per-CTA barrier epochs. To bound memory it keeps at most two records
// (with distinct threads) per (addr, cta, epoch, pc) — two witnesses are
// enough to exhibit any conflicting pair.
type shadowLog struct {
	epochs map[int32]int
	recs   map[uint32][]shadowRec
	kept   map[shadowKey]int32 // first gtid kept for the key, or -1 when two are
}

type shadowKey struct {
	addr  uint32
	cta   int32
	epoch int
	pc    int32
}

func newShadowLog() *shadowLog {
	return &shadowLog{
		epochs: map[int32]int{},
		recs:   map[uint32][]shadowRec{},
		kept:   map[shadowKey]int32{},
	}
}

func (l *shadowLog) Access(w *simt.Warp, pc int32, in *isa.Instr, accs []simt.MemAccess) {
	cta := w.CTA.ID
	epoch := l.epochs[cta]
	for _, a := range accs {
		key := shadowKey{addr: a.Addr, cta: cta, epoch: epoch, pc: pc}
		prev, seen := l.kept[key]
		if seen && (prev == -1 || prev == a.GTID) {
			continue
		}
		if seen {
			l.kept[key] = -1
		} else {
			l.kept[key] = a.GTID
		}
		l.recs[a.Addr] = append(l.recs[a.Addr], shadowRec{
			cta: cta, epoch: epoch, pc: pc,
			write:  in.Op == isa.OpSt,
			atomic: in.Op.IsAtomic(),
			gtid:   a.GTID,
		})
	}
}

func (l *shadowLog) BarrierRelease(cta *simt.CTA) {
	l.epochs[cta.ID]++
}

// TestSoundnessAgainstDynamic is the dynamic validation of the static
// analyzer: every registered quick-suite kernel runs under a shadow
// access log, and every observed pair of accesses to one word from two
// threads with at least one non-atomic store is checked against the
// prover's disjointness claims. A same-CTA same-interval collision on a
// pair in DisjointSameCTA, or a cross-CTA collision on a pair in
// DisjointCrossCTA, means the static pass proved apart two accesses
// that demonstrably met — a soundness bug, not a tuning matter.
//
// Pairs the analyzer exempts (volatile spin reads, lock releases,
// lock-protected and !nolint-suppressed accesses) are absent from both
// maps, so collisions on them — expected for the lock-based kernels —
// do not trip the check.
func TestSoundnessAgainstDynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed harness")
	}
	suite := append(kernels.QuickSyncSuite(), kernels.QuickSyncFreeSuite()...)
	for _, k := range suite {
		t.Run(k.Name, func(t *testing.T) {
			sres := race.Analyze(k.Launch.Prog, race.Options{
				GridCTAs:   int32(k.Launch.GridCTAs),
				CTAThreads: int32(k.Launch.CTAThreads),
			})

			log := newShadowLog()
			eng, err := sim.New(sim.Options{
				GPU:      config.GTX480().Scaled(2),
				Sched:    config.GTO,
				BOWS:     config.BOWS{Mode: config.BOWSOff},
				DDOS:     config.DefaultDDOS(),
				Observer: log,
			}, k.Launch)
			if err != nil {
				t.Fatalf("sim.New: %v", err)
			}
			if _, err := eng.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(log.recs) == 0 {
				t.Fatal("shadow log observed no memory accesses")
			}

			checked := 0
			for addr, rs := range log.recs {
				for i := 0; i < len(rs); i++ {
					for j := i + 1; j < len(rs); j++ {
						a, b := rs[i], rs[j]
						if a.gtid == b.gtid || (!a.write && !b.write) {
							continue
						}
						key := [2]int32{a.pc, b.pc}
						if key[0] > key[1] {
							key[0], key[1] = key[1], key[0]
						}
						checked++
						if a.cta == b.cta {
							if a.epoch == b.epoch && sres.DisjointSameCTA[key] {
								t.Errorf("soundness: word %d touched by gtid %d (pc %d) and gtid %d (pc %d) in interval %d of CTA %d, but the prover claims same-CTA disjointness",
									addr, a.gtid, a.pc, b.gtid, b.pc, a.epoch, a.cta)
							}
						} else if sres.DisjointCrossCTA[key] {
							t.Errorf("soundness: word %d touched by gtid %d (pc %d, CTA %d) and gtid %d (pc %d, CTA %d), but the prover claims cross-CTA disjointness",
								addr, a.gtid, a.pc, a.cta, b.gtid, b.pc, b.cta)
						}
					}
				}
			}
			t.Logf("%s: %d words, %d conflicting pairs checked", k.Name, len(log.recs), checked)
		})
	}
}

// TestSoundnessHarnessCatchesMisses turns the harness on itself: a
// seeded racy program (neighbouring-lane store/store overlap that the
// static pass correctly reports) must also produce observed same-
// interval collisions, proving the shadow log can see the races the
// static analyzer is being audited for.
func TestSoundnessHarnessCatchesMisses(t *testing.T) {
	src := `
  ld.param %r2, 0
  mov %r1, %tid
  st.global [%r2+%r1], %r1
  shr %r3, %r1, 1
  st.global [%r2+%r3], %r1   // lanes 2k and 2k+1 collide on word k
  exit
`
	p, err := isa.Parse("seeded", src)
	if err != nil {
		t.Fatal(err)
	}
	sres := race.Analyze(p, race.Options{GridCTAs: 1, CTAThreads: 64})
	if len(sres.Report.Findings) == 0 {
		t.Fatal("static pass missed the seeded race")
	}

	log := newShadowLog()
	eng, err := sim.New(sim.Options{
		GPU:      config.GTX480().Scaled(2),
		Sched:    config.GTO,
		BOWS:     config.BOWS{Mode: config.BOWSOff},
		DDOS:     config.DefaultDDOS(),
		Observer: log,
	}, sim.Launch{Prog: p, GridCTAs: 1, CTAThreads: 64, Params: []uint32{0}, MemWords: 128})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	collisions := 0
	for _, rs := range log.recs {
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				a, b := rs[i], rs[j]
				if a.gtid != b.gtid && a.write && b.write && a.epoch == b.epoch {
					collisions++
				}
			}
		}
	}
	if collisions == 0 {
		t.Fatal("shadow log observed no collision on a known-racy program")
	}
}
