package race

import (
	"fmt"
	"sort"
	"strings"

	"warpsched/internal/analysis"
	"warpsched/internal/isa"
)

// heldLock is one lockset entry: an AnnLockAcquire site together with
// the abstract address it locked. An entry is pending until a branch on
// the acquire's result register proves the acquire succeeded on the
// current path (the atomicCAS spin idiom: cas; setp.eq p,old,0; @!p bra).
type heldLock struct {
	acqPC int32
	key   string
	addr  AbsVal

	pending      bool
	classifiable bool
	dst          isa.Reg // acquire result register
	succVal      int64   // dst value that means "lock taken"
}

// predCmp is the last path-local "reg cmp imm" setp per predicate,
// used to classify acquire success edges.
type predCmp struct {
	valid bool
	reg   isa.Reg
	k     int64
	cmp   isa.Cmp
}

// lockResult is everything the lockset DFS learned.
type lockResult struct {
	findings []analysis.Finding
	// mustHeld[pc]: locks held (resolved) on every path reaching pc.
	mustHeld map[int32][]heldLock
}

// lockState is one DFS configuration.
type lockState struct {
	pc    int32
	locks []heldLock
	setps [isa.NumPreds]predCmp
}

// maxLocksetsPerPC caps distinct locksets explored per program point;
// beyond it the point is saturated and its must-held set cleared (sound:
// fewer exemptions).
const maxLocksetsPerPC = 16

func (s *lockState) signature() string {
	keys := make([]string, len(s.locks))
	for i, h := range s.locks {
		p := "h"
		if h.pending {
			p = "p"
		}
		keys[i] = fmt.Sprintf("%d:%s:%s", h.acqPC, p, h.key)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

func cloneLocks(ls []heldLock) []heldLock {
	out := make([]heldLock, len(ls))
	copy(out, ls)
	return out
}

// flipCmp mirrors a comparison across its operands (imm cmp reg →
// reg flip cmp imm).
func flipCmp(c isa.Cmp) isa.Cmp {
	switch c {
	case isa.LT:
		return isa.GT
	case isa.LE:
		return isa.GE
	case isa.GT:
		return isa.LT
	case isa.GE:
		return isa.LE
	}
	return c // EQ, NE symmetric
}

// analyzeLocks runs a path-sensitive lockset exploration, reporting
// double acquires, releases without a matching acquire, locks still held
// at thread exit, and acquisition-order cycles between blocking locks.
func analyzeLocks(it *interp, g *analysis.CFG) *lockResult {
	p := it.p
	res := &lockResult{mustHeld: map[int32][]heldLock{}}
	blocking := blockingAcquires(p, g)

	// Per-PC exploration bookkeeping.
	seen := make([]map[string]bool, g.N+1)
	saturated := make([]bool, g.N+1)
	haveMust := make([]bool, g.N+1)

	type lockEdge struct {
		from, to      string
		heldPC, acqPC int32
	}
	edges := map[string]lockEdge{}

	dedup := map[string]bool{}
	report := func(f analysis.Finding) {
		k := fmt.Sprintf("%s|%d|%d", f.Category, f.PC, f.OtherPC)
		if !dedup[k] {
			dedup[k] = true
			res.findings = append(res.findings, f)
		}
	}

	intersectMust := func(pc int32, locks []heldLock) {
		if saturated[pc] {
			return
		}
		var resolved []heldLock
		for _, h := range locks {
			if !h.pending {
				resolved = append(resolved, h)
			}
		}
		if !haveMust[pc] {
			haveMust[pc] = true
			res.mustHeld[pc] = cloneLocks(resolved)
			return
		}
		cur := res.mustHeld[pc]
		var kept []heldLock
		for _, h := range cur {
			for _, r := range resolved {
				if r.acqPC == h.acqPC && r.key == h.key {
					kept = append(kept, h)
					break
				}
			}
		}
		res.mustHeld[pc] = kept
	}

	stack := []lockState{{pc: 0}}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pc := st.pc

		if pc >= g.N { // virtual exit
			continue
		}
		if seen[pc] == nil {
			seen[pc] = map[string]bool{}
		}
		sig := st.signature()
		if seen[pc][sig] {
			continue
		}
		if len(seen[pc]) >= maxLocksetsPerPC {
			if !saturated[pc] {
				saturated[pc] = true
				haveMust[pc] = true
				res.mustHeld[pc] = nil
			}
			continue
		}
		seen[pc][sig] = true
		intersectMust(pc, st.locks)

		in := p.At(pc)
		locks := cloneLocks(st.locks)
		setps := st.setps

		// A write to an acquire's result register after the acquire makes
		// the success test unclassifiable on this path.
		if in.WritesReg() && !in.HasAnn(isa.AnnLockAcquire) {
			for i := range locks {
				if locks[i].pending && locks[i].classifiable && locks[i].dst == in.Dst {
					locks[i].classifiable = false
				}
			}
		}

		switch {
		case in.HasAnn(isa.AnnLockAcquire) && in.Op.IsAtomic():
			addr := it.addr(pc)
			key := addr.key(it.t)
			for _, h := range locks {
				if !h.pending && h.key == key && addr.globalConst(it.t) {
					lo, hi := minMax(h.acqPC, pc)
					report(analysis.Finding{Program: p.Name, PC: lo, OtherPC: other(lo, hi),
						Category: analysis.CatDoubleAcquire,
						Message: fmt.Sprintf("lock [%s] acquired at pc %d is still held when re-acquired at pc %d — self-deadlock on a non-reentrant lock",
							addr.describe(it.t), h.acqPC, pc)})
				}
				if !h.pending && blocking[pc] {
					e := lockEdge{from: h.key, to: key, heldPC: h.acqPC, acqPC: pc}
					edges[e.from+"->"+e.to] = e
				}
			}
			ent := heldLock{acqPC: pc, key: key, addr: addr, pending: true}
			switch in.Op {
			case isa.OpAtomCAS:
				if in.C.Kind == isa.OpdImm {
					ent.classifiable, ent.dst, ent.succVal = true, in.Dst, int64(in.C.Imm)
				}
			case isa.OpAtomExch:
				ent.classifiable, ent.dst, ent.succVal = true, in.Dst, 0
			}
			if in.Guarded() {
				ent.classifiable = false
			}
			locks = append(locks, ent)

		case in.HasAnn(isa.AnnLockRelease):
			addr := it.addr(pc)
			key := addr.key(it.t)
			matched := -1
			for i, h := range locks {
				if h.key == key {
					matched = i
					break
				}
			}
			if matched >= 0 {
				locks = append(locks[:matched], locks[matched+1:]...)
			} else if !in.Guarded() {
				// Only report when the mismatch is provable: the released
				// address and every held key are precise.
				precise := addr.globalConst(it.t)
				for _, h := range locks {
					if !h.addr.globalConst(it.t) {
						precise = false
					}
				}
				if precise {
					report(analysis.Finding{Program: p.Name, PC: pc,
						Category: analysis.CatUnlockWithoutLock,
						Message: fmt.Sprintf("release of lock [%s] on a path where it is not held",
							addr.describe(it.t))})
				}
			}

		case in.Op == isa.OpSetp:
			pcInfo := predCmp{}
			if !in.Guarded() {
				switch {
				case in.A.Kind == isa.OpdReg && in.B.Kind == isa.OpdImm:
					pcInfo = predCmp{valid: true, reg: in.A.Reg, k: int64(in.B.Imm), cmp: in.Cmp}
				case in.A.Kind == isa.OpdImm && in.B.Kind == isa.OpdReg:
					pcInfo = predCmp{valid: true, reg: in.B.Reg, k: int64(in.A.Imm), cmp: flipCmp(in.Cmp)}
				}
			}
			setps[in.PDst] = pcInfo

		case in.Op == isa.OpExit:
			for _, h := range locks {
				if !h.pending {
					report(analysis.Finding{Program: p.Name, PC: h.acqPC,
						Category: analysis.CatLockLeak,
						Message: fmt.Sprintf("lock [%s] acquired here is still held when the thread exits at pc %d",
							h.addr.describe(it.t), pc)})
				}
			}
			continue
		}

		if in.Op == isa.OpBra && in.Guarded() {
			rel := setps[isa.Pred(in.Guard)]
			for _, s := range g.Succ[pc] {
				pval := s == in.Target // taken edge
				// taken ⟺ guard predicate matches: @p → p true, @!p → p false.
				predTrue := pval != in.GuardNeg
				el := cloneLocks(locks)
				el = classifyLocks(el, rel, predTrue)
				stack = append(stack, lockState{pc: s, locks: el, setps: setps})
			}
			continue
		}
		for _, s := range g.Succ[pc] {
			stack = append(stack, lockState{pc: s, locks: cloneLocks(locks), setps: setps})
		}
	}

	// Lock-order cycles: an edge k1→k2 (k2 acquired blocking while k1
	// held) participating in a cycle of the acquisition graph.
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to string) bool {
		seenK := map[string]bool{from: true}
		q := []string{from}
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			if v == to {
				return true
			}
			for _, w := range adj[v] {
				if !seenK[w] {
					seenK[w] = true
					q = append(q, w)
				}
			}
		}
		return false
	}
	for _, e := range edges {
		if reaches(e.to, e.from) {
			lo, hi := minMax(e.heldPC, e.acqPC)
			report(analysis.Finding{Program: p.Name, PC: lo, OtherPC: other(lo, hi),
				Category: analysis.CatLockOrder,
				Message: fmt.Sprintf("lock acquired at pc %d while the lock from pc %d is held, and the opposite order also occurs — AB/BA deadlock between blocking acquires",
					e.acqPC, e.heldPC)})
		}
	}
	return res
}

// classifyLocks resolves pending acquires along a branch edge where the
// guard predicate is known to be predTrue and was defined by rel.
func classifyLocks(locks []heldLock, rel predCmp, predTrue bool) []heldLock {
	if !rel.valid || (rel.cmp != isa.EQ && rel.cmp != isa.NE) {
		return locks
	}
	out := locks[:0]
	for _, h := range locks {
		if h.pending && h.classifiable && h.dst == rel.reg {
			// Predicate is (dst cmp k); what do we learn about dst==succVal?
			eq := rel.cmp == isa.EQ
			switch {
			case rel.k == h.succVal && eq == predTrue:
				h.pending = false // dst == succVal: acquire succeeded
			case rel.k == h.succVal && eq != predTrue:
				continue // dst != succVal: acquire failed, drop
			case rel.k != h.succVal && eq && predTrue:
				continue // dst == k ≠ succVal: failed
			}
		}
		out = append(out, h)
	}
	return out
}

// blockingAcquires marks acquire PCs that can re-execute without any
// AnnLockRelease in between: a failed attempt spins rather than backing
// out, which is the precondition for an acquisition-order deadlock.
// Try-lock-with-backout (the ATM idiom) releases on the failure path and
// is exempt.
func blockingAcquires(p *isa.Program, g *analysis.CFG) []bool {
	out := make([]bool, g.N)
	for pc := int32(0); pc < g.N; pc++ {
		if !p.At(pc).HasAnn(isa.AnnLockAcquire) {
			continue
		}
		seen := make([]bool, g.N+1)
		stack := []int32{}
		for _, s := range g.Succ[pc] {
			if s < g.N && !p.At(s).HasAnn(isa.AnnLockRelease) && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 && !out[pc] {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == pc {
				out[pc] = true
				break
			}
			for _, s := range g.Succ[v] {
				if s < g.N && !p.At(s).HasAnn(isa.AnnLockRelease) && !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	return out
}

func minMax(a, b int32) (int32, int32) {
	if a <= b {
		return a, b
	}
	return b, a
}

// other returns hi as the pair's OtherPC, or 0 for a self-pair.
func other(lo, hi int32) int32 {
	if hi > lo {
		return hi
	}
	return 0
}
