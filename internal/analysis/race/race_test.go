package race_test

import (
	"strings"
	"testing"

	"warpsched/internal/analysis"
	"warpsched/internal/analysis/race"
	"warpsched/internal/isa"
	"warpsched/internal/kernels"
)

func mustParse(t *testing.T, name, src string) *isa.Program {
	t.Helper()
	p, err := isa.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hasFinding(fs []analysis.Finding, cat analysis.Category, pc, other int32) bool {
	for _, f := range fs {
		if f.Category == cat && f.PC == pc && f.OtherPC == other {
			return true
		}
	}
	return false
}

// TestSeededRaceBugs feeds the analyzer known-bad programs and requires
// the expected finding category at the expected location. Unless a case
// says otherwise, programs run at 1 CTA x 64 threads so every report is
// a same-CTA, same-barrier-interval scenario.
func TestSeededRaceBugs(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		ctas  int32
		cat   analysis.Category
		pc    int32
		other int32
	}{
		{
			// Every thread stores the same word: the self-pair race.
			name: "shared-word-ww",
			src: `
  ld.param %r2, 0
  mov %r1, 1
  st.global [%r2+0], %r1    // 2
  exit
`,
			cat: analysis.CatRace, pc: 2,
		},
		{
			// Lost update: plain ld/add/st on a shared counter.
			name: "shared-counter-rmw",
			src: `
  ld.param %r2, 0
  ld.global %r1, [%r2+0]    // 1
  add %r1, %r1, 1
  st.global [%r2+0], %r1    // 3
  exit
`,
			cat: analysis.CatRace, pc: 1, other: 3,
		},
		{
			// Neighbour read against neighbour's write with no barrier
			// between them: the classic missing-bar.sync stencil.
			name: "neighbour-wr-no-barrier",
			src: `
  ld.param %r2, 0
  mov %r1, %tid
  add %r3, %r1, 1
  st.global [%r2+%r1], %r1  // 3: out[tid]
  ld.global %r4, [%r2+%r3]  // 4: out[tid+1], written by the neighbour
  st.global [%r2+%r1], %r4  // 5
  exit
`,
			cat: analysis.CatRace, pc: 3, other: 4,
		},
		{
			// Same stencil but the racing pair straddles a barrier the
			// *wrong* way: both accesses sit in the second interval.
			name: "race-within-second-interval",
			src: `
  ld.param %r2, 0
  mov %r1, %tid
  add %r3, %r1, 1
  bar.sync                  // 3
  st.global [%r2+%r1], %r1  // 4
  ld.global %r4, [%r2+%r3]  // 5
  st.global [%r2+%r1], %r4  // 6
  exit
`,
			cat: analysis.CatRace, pc: 4, other: 5,
		},
		{
			// tid-indexed stores are disjoint within a CTA but collide
			// across CTAs when the grid has more than one.
			name: "cross-cta-tid-store",
			src: `
  ld.param %r2, 0
  mov %r1, %tid
  st.global [%r2+%r1], %r1  // 2
  exit
`,
			ctas: 2, cat: analysis.CatRace, pc: 2,
		},
		{
			// Acquiring a non-reentrant lock twice on one path.
			name: "double-acquire",
			src: `
  ld.param %r2, 0
s1:
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync  // 1
  setp.ne %p0, %r1, 0
  @%p0 bra s1  !sib,sync
s2:
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync  // 4
  setp.ne %p0, %r1, 0
  @%p0 bra s2  !sib,sync
  atom.exch %r1, [%r2+0], 0  !release,sync
  atom.exch %r1, [%r2+0], 0  !release,sync
  exit
`,
			cat: analysis.CatDoubleAcquire, pc: 1, other: 4,
		},
		{
			name: "unlock-without-lock",
			src: `
  ld.param %r2, 0
  atom.exch %r1, [%r2+0], 0  !release,sync  // 1
  exit
`,
			cat: analysis.CatUnlockWithoutLock, pc: 1,
		},
		{
			// Lock held at thread exit.
			name: "lock-leak",
			src: `
  ld.param %r2, 0
spin:
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync  // 1
  setp.ne %p0, %r1, 0
  @%p0 bra spin  !sib,sync
  exit
`,
			cat: analysis.CatLockLeak, pc: 1,
		},
		{
			// Blocking acquires in both A-then-B and B-then-A order: the
			// acquisition graph has a cycle, so two threads can deadlock.
			name: "lock-order-cycle",
			src: `
  ld.param %r2, 0
  ld.param %r3, 1
a1:
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync  // 2
  setp.ne %p0, %r1, 0
  @%p0 bra a1  !sib,sync
b1:
  atom.cas %r1, [%r3+0], 0, 1  !acquire,sync  // 5
  setp.ne %p0, %r1, 0
  @%p0 bra b1  !sib,sync
  atom.exch %r1, [%r3+0], 0  !release,sync
  atom.exch %r1, [%r2+0], 0  !release,sync
b2:
  atom.cas %r1, [%r3+0], 0, 1  !acquire,sync  // 10
  setp.ne %p0, %r1, 0
  @%p0 bra b2  !sib,sync
a2:
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync  // 13
  setp.ne %p0, %r1, 0
  @%p0 bra a2  !sib,sync
  atom.exch %r1, [%r2+0], 0  !release,sync
  atom.exch %r1, [%r3+0], 0  !release,sync
  exit
`,
			cat: analysis.CatLockOrder, pc: 2, other: 5,
		},
		{
			// A thread-dependent branch whose two sides proceed to
			// different bar.syncs: one CTA pairs mismatched phases.
			name: "divergent-barrier-phases",
			src: `
  mov %r1, %tid
  setp.lt %p0, %r1, 16
  @%p0 bra fast reconv=end  // 2
  bar.sync                  // 3
  bar.sync                  // 4
  bra end
fast:
  bar.sync                  // 6
end:
  exit
`,
			cat: analysis.CatBarrierDeadlock, pc: 2,
		},
		{
			// The guard is derived from loaded *data* at a thread-varying
			// address, which is just as thread-dependent as tid itself.
			name: "divergent-barrier-data-guard",
			src: `
  ld.param %r2, 0
  mov %r1, %tid
  ld.global %r3, [%r2+%r1]
  setp.lt %p0, %r3, 16
  @%p0 bra fast reconv=end  // 4
  bar.sync                  // 5
  bar.sync                  // 6
  bra end
fast:
  bar.sync                  // 8
end:
  exit
`,
			cat: analysis.CatBarrierDeadlock, pc: 4,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ctas := c.ctas
			if ctas == 0 {
				ctas = 1
			}
			res := race.Analyze(mustParse(t, c.name, c.src),
				race.Options{GridCTAs: ctas, CTAThreads: 64})
			if !hasFinding(res.Report.Findings, c.cat, c.pc, c.other) {
				t.Errorf("want [%s] at pc %d other %d, got: %v",
					c.cat, c.pc, c.other, res.Report.Findings)
			}
		})
	}
}

// TestInvalidProgram: structurally broken programs must come back as a
// single CatInvalid finding instead of panicking inside the passes.
func TestInvalidProgram(t *testing.T) {
	p := &isa.Program{Name: "bad", Code: []isa.Instr{
		{Op: isa.OpSelp, Dst: 0, PSrc: isa.NumPreds, A: isa.I(1), B: isa.I(2), Guard: isa.NoGuard},
		{Op: isa.OpExit, Guard: isa.NoGuard},
	}}
	res := race.Analyze(p, race.Options{GridCTAs: 1, CTAThreads: 64})
	fs := res.Report.Findings
	if len(fs) != 1 || fs[0].Category != analysis.CatInvalid || fs[0].PC != -1 {
		t.Fatalf("want one CatInvalid finding at pc -1, got %v", fs)
	}
}

// TestCleanIdioms feeds the analyzer correct synchronization idioms and
// requires a clean report: these pin the exemptions and the prover's
// precision, and each one started life as a false positive.
func TestCleanIdioms(t *testing.T) {
	cases := []struct {
		name string
		src  string
		ctas int32
	}{
		{
			// Mutex-protected shared counter: the Eraser common-lock rule.
			name: "mutex-counter",
			ctas: 2,
			src: `
  ld.param %r2, 0
  ld.param %r3, 1
spin:
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync
  setp.ne %p0, %r1, 0
  @%p0 bra spin  !sib,sync
  ld.global %r4, [%r3+0]
  add %r4, %r4, 1
  st.global [%r3+0], %r4
  membar
  atom.exch %r1, [%r2+0], 0  !release,sync
  exit
`,
		},
		{
			// Lock-free CAS retry: no plain store, so nothing can race.
			name: "cas-retry-accumulate",
			ctas: 2,
			src: `
  ld.param %r2, 0
retry:
  ld.volatile %r1, [%r2+0]
  add %r3, %r1, 1
  atom.cas %r4, [%r2+0], %r1, %r3
  setp.ne %p0, %r4, %r1
  @%p0 bra retry  !sib,sync
  exit
`,
		},
		{
			// Producer/consumer mailbox behind a flag: the flag store is
			// single-writer (tid 0, proven by the guard constraint), the
			// spin read and the mailbox read are volatile by intent.
			name: "producer-consumer-flag",
			ctas: 1,
			src: `
  ld.param %r2, 0            // flag
  ld.param %r3, 1            // mailbox
  ld.param %r4, 2            // out
  mov %r1, %tid
  setp.eq %p0, %r1, 0
  @!%p0 bra consumer reconv=end
  mov %r5, 42
  st.global [%r3+0], %r5     // producer fills the mailbox
  membar
  mov %r5, 1
  st.global [%r2+0], %r5     // then raises the flag (tid 0 only)
  bra end
consumer:
spin:
  ld.volatile %r5, [%r2+0]
  setp.eq %p1, %r5, 0
  @%p1 bra spin  !sib,sync
  ld.volatile %r6, [%r3+0]
  st.global [%r4+%r1], %r6
end:
  exit
`,
		},
		{
			// Barrier-separated phases: write out[tid], bar.sync, read the
			// neighbour's slot. The store and the load share no interval.
			name: "barrier-separated-stencil",
			ctas: 1,
			src: `
  ld.param %r2, 0
  ld.param %r5, 1
  mov %r1, %tid
  add %r3, %r1, 1
  st.global [%r2+%r1], %r1
  membar
  bar.sync
  ld.global %r4, [%r2+%r3]
  st.global [%r5+%r1], %r4
  exit
`,
		},
		{
			// Distinct parameter bases never collide (the admission-time
			// aliasing contract): in-array reads vs out-array writes.
			name: "distinct-param-arrays",
			ctas: 2,
			src: `
  ld.param %r2, 0
  ld.param %r5, 1
  mov %r1, %gtid
  add %r3, %r1, 1
  ld.global %r4, [%r2+%r3]
  st.global [%r5+%r1], %r4
  exit
`,
		},
		{
			// Grid-stride loop: i = gtid + k*stride partitions the index
			// space across the whole grid.
			name: "grid-stride-loop",
			ctas: 2,
			src: `
  ld.param %r2, 0
  mov %r1, %gtid
loop:
  st.global [%r2+%r1], %r1
  add %r1, %r1, 128
  setp.lt %p0, %r1, 1024
  @%p0 bra loop
  exit
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := race.Analyze(mustParse(t, c.name, c.src),
				race.Options{GridCTAs: c.ctas, CTAThreads: 64})
			if len(res.Report.Findings) != 0 {
				t.Errorf("want clean, got: %v", res.Report.Findings)
			}
		})
	}
}

// TestNoLintClassSuppression: a `!nolint race` on either endpoint
// silences the pair, a non-matching class list does not, and suppressed
// findings stay visible in Report.Suppressed.
func TestNoLintClassSuppression(t *testing.T) {
	const tmpl = `
  ld.param %r2, 0
  ld.global %r1, [%r2+0]    // 1
  add %r1, %r1, 1
  st.global [%r2+0], %r1    NOLINT // 3
  exit
`
	run := func(ann string) *race.Result {
		src := strings.Replace(tmpl, "NOLINT", ann, 1)
		return race.Analyze(mustParse(t, "nolint", src),
			race.Options{GridCTAs: 1, CTAThreads: 64})
	}

	if res := run("!nolint race"); hasFinding(res.Report.Findings, analysis.CatRace, 1, 3) {
		t.Errorf("class-matched nolint on the store did not silence the pair: %v", res.Report.Findings)
	} else if !hasFinding(res.Report.Suppressed, analysis.CatRace, 1, 3) {
		t.Errorf("suppressed finding not recorded: %v", res.Report.Suppressed)
	}
	if res := run("!nolint lockorder"); !hasFinding(res.Report.Findings, analysis.CatRace, 1, 3) {
		t.Errorf("non-matching nolint class must not suppress: %v", res.Report.Findings)
	}
	if res := run("!nolint"); hasFinding(res.Report.Findings, analysis.CatRace, 1, 3) {
		t.Errorf("bare nolint must suppress everything at the site: %v", res.Report.Findings)
	}
}

// TestRegisteredKernelsClean: every registered kernel, analyzed at its
// recorded launch geometry, must produce zero unsuppressed findings.
// Suppressions must carry a class list (no blanket nolint for races).
func TestRegisteredKernelsClean(t *testing.T) {
	suites := [][]*kernels.Kernel{
		kernels.SyncSuite(), kernels.SyncFreeSuite(),
		kernels.QuickSyncSuite(), kernels.QuickSyncFreeSuite(),
	}
	n := 0
	for _, s := range suites {
		for _, k := range s {
			n++
			res := race.Analyze(k.Launch.Prog, race.Options{
				GridCTAs:   int32(k.Launch.GridCTAs),
				CTAThreads: int32(k.Launch.CTAThreads),
			})
			for _, f := range res.Report.Findings {
				t.Errorf("%s: unsuppressed finding: pc %d [%s] %s",
					k.Name, f.PC, f.Category, f.Message)
			}
		}
	}
	if n < 40 {
		t.Fatalf("only %d kernels registered; suites shrank?", n)
	}
}
