package race

import (
	"fmt"

	"warpsched/internal/analysis"
	"warpsched/internal/isa"
)

// Options configures an analysis run. The launch geometry is substituted
// concretely into the abstract domain; zero values default to 2 CTAs of
// 64 threads (the repo's canonical small launch).
type Options struct {
	GridCTAs   int32
	CTAThreads int32
	// Lint carries suppression options through to the report builder.
	Lint analysis.Options
}

// Result is the outcome of Analyze.
type Result struct {
	Report *analysis.Report
	// DisjointSameCTA / DisjointCrossCTA record access pairs (keyed
	// [lowPC, highPC]) that the prover claims can NEVER touch the same
	// word from two threads of one barrier interval / of different CTAs.
	// The dynamic soundness harness checks observed collisions against
	// these sets: membership of an observed racing pair is a soundness
	// bug in the analyzer. Exempted pairs (volatile spin reads, lock
	// releases, lock-protected accesses) are absent from both maps.
	DisjointSameCTA  map[[2]int32]bool
	DisjointCrossCTA map[[2]int32]bool
}

// guardCon is one linear fact known about the thread executing an
// access: the relation a cmp b held at the controlling setp.
type guardCon struct {
	a, b AbsVal
	cmp  isa.Cmp
}

// access is one reachable memory instruction with everything the pair
// stage needs.
type access struct {
	pc     int32
	in     *isa.Instr
	addr   AbsVal
	isSt   bool
	deadLd bool
	guards []guardCon
	held   []heldLock
}

// Analyze runs the full static race/lock/barrier analysis over p at the
// given launch geometry.
func Analyze(p *isa.Program, opt Options) *Result {
	res := &Result{
		DisjointSameCTA:  map[[2]int32]bool{},
		DisjointCrossCTA: map[[2]int32]bool{},
	}
	if err := p.Validate(); err != nil {
		res.Report = &analysis.Report{Program: p.Name, Findings: []analysis.Finding{{
			Program: p.Name, PC: -1,
			Category: analysis.CatInvalid, Class: analysis.CatInvalid.Class(),
			Message: err.Error(),
		}}}
		return res
	}
	geo := geometry{ctas: int64(opt.GridCTAs), threads: int64(opt.CTAThreads)}
	if geo.ctas <= 0 {
		geo.ctas = 2
	}
	if geo.threads <= 0 {
		geo.threads = 64
	}
	geo.warps = (geo.threads + 31) / 32

	g := analysis.BuildCFG(p)
	it := newInterp(p, g, geo)
	it.run()

	az := &analyzer{p: p, g: g, it: it, reach: map[int32][]bool{}}
	locks := analyzeLocks(it, g)
	iv := buildIntervals(p, g)
	deadLd := analysis.DeadLoadDests(g)

	var accs []*access
	for pc := int32(0); pc < g.N; pc++ {
		in := p.At(pc)
		if !in.Op.IsMem() || !it.reached[pc] {
			continue
		}
		accs = append(accs, &access{
			pc: pc, in: in,
			addr:   it.addr(pc),
			isSt:   in.Op == isa.OpSt,
			deadLd: deadLd[pc],
			guards: az.guardsFor(pc),
			held:   locks.mustHeld[pc],
		})
	}

	pr := &prover{t: it.t, geo: geo}
	all := append([]analysis.Finding{}, locks.findings...)
	all = append(all, checkBarrierReachability(p, g)...)

	for i, a1 := range accs {
		for _, a2 := range accs[i:] {
			if !a1.isSt && !a2.isSt {
				continue // at least one plain store, or no race
			}
			key := [2]int32{a1.pc, a2.pc}
			if exemptPair(a1, a2, it) {
				continue
			}
			sameConc := iv.same(a1.pc, a2.pc)
			crossConc := geo.ctas > 1
			sameRace := sameConc && !pr.disjoint(a1, a2, true)
			crossRace := crossConc && !pr.disjoint(a1, a2, false)
			if sameConc && !sameRace {
				res.DisjointSameCTA[key] = true
			}
			if crossConc && !crossRace {
				res.DisjointCrossCTA[key] = true
			}
			if sameRace || crossRace {
				all = append(all, raceFinding(p, a1, a2, it, sameRace, crossRace))
			}
		}
	}

	res.Report = analysis.BuildReport(p, opt.Lint, all)
	return res
}

// exemptPair filters intended racy-looking idioms before proving.
func exemptPair(a1, a2 *access, it *interp) bool {
	for _, a := range [2]*access{a1, a2} {
		if a.in.Op == isa.OpLd && a.in.Vol {
			return true // volatile spin read: synchronization by intent
		}
		if a.in.HasAnn(isa.AnnLockRelease) {
			return true // unlock publish
		}
		if a.deadLd {
			return true // timing-only touch load, value never used
		}
	}
	// Eraser-style common lock: both sides hold the same global lock word.
	for _, h1 := range a1.held {
		if !h1.addr.globalConst(it.t) {
			continue
		}
		for _, h2 := range a2.held {
			if h2.key == h1.key {
				return true
			}
		}
	}
	// Lock-delta: each side holds a lock at the same constant offset from
	// the data word (lock[i] protecting data[i]). Equal data addresses
	// would force equal lock addresses, and two threads cannot hold the
	// same lock word concurrently — so the accesses are mutually excluded
	// whenever they would collide.
	for _, h1 := range a1.held {
		for _, h2 := range a2.held {
			d1 := a1.addr.sub(h1.addr)
			d2 := a2.addr.sub(h2.addr)
			if d1.globalConst(it.t) && d2.globalConst(it.t) && d1.equal(d2) {
				return true
			}
		}
	}
	return false
}

func raceFinding(p *isa.Program, a1, a2 *access, it *interp, same, cross bool) analysis.Finding {
	scen := ""
	switch {
	case same && cross:
		scen = "within a barrier interval and across CTAs"
	case same:
		scen = "within one barrier interval"
	default:
		scen = "across CTAs"
	}
	lo, hi := minMax(a1.pc, a2.pc)
	var msg string
	if a1.pc == a2.pc {
		msg = fmt.Sprintf("possible data race: %s at pc %d [%s] may touch the same word from two threads %s, and at least one is a non-atomic store",
			a1.in.Op, a1.pc, a1.addr.describe(it.t), scen)
	} else {
		msg = fmt.Sprintf("possible data race: %s at pc %d [%s] and %s at pc %d [%s] may touch the same word %s, and at least one is a non-atomic store",
			a1.in.Op, a1.pc, a1.addr.describe(it.t), a2.in.Op, a2.pc, a2.addr.describe(it.t), scen)
	}
	return analysis.Finding{Program: p.Name, PC: lo, OtherPC: other(lo, hi),
		Category: analysis.CatRace, Message: msg}
}

// analyzer carries the per-program caches of the guard-constraint
// extraction.
type analyzer struct {
	p  *isa.Program
	g  *analysis.CFG
	it *interp
	// reach caches reachAvoid closures keyed by (start<<32 | avoid).
	reach map[int32][]bool
}

// reachAvoid returns the nodes reachable from start's successors-of-start
// ... precisely: reachable from start (exclusive) by expanding edges,
// never expanding out of node avoid. start itself is not marked.
func (az *analyzer) reachAvoid(start, avoid int32) []bool {
	key := start*(az.g.N+2) + avoid + 1
	if m, ok := az.reach[key]; ok {
		return m
	}
	m := make([]bool, az.g.N+1)
	var stack []int32
	expand := func(v int32) {
		if v == avoid {
			return
		}
		for _, s := range az.g.Succ[v] {
			if !m[s] {
				m[s] = true
				if s < az.g.N {
					stack = append(stack, s)
				}
			}
		}
	}
	if start < az.g.N {
		expand(start)
		// expand() skips avoid; if start == avoid we still want its
		// direct successors (the query is "from this node onward").
		if start == avoid {
			for _, s := range az.g.Succ[start] {
				if !m[s] {
					m[s] = true
					if s < az.g.N {
						stack = append(stack, s)
					}
				}
			}
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		expand(v)
	}
	az.reach[key] = m
	return m
}

// reachingSetps walks backwards from pc to the setps defining pred that
// reach it. ok is false when a path from entry carries no definition or
// a reaching setp is guarded (partial definition — unclassifiable).
func (az *analyzer) reachingSetps(pc int32, pred isa.Pred) ([]int32, bool) {
	var out []int32
	seen := make([]bool, az.g.N+1)
	var stack []int32
	for _, q := range az.g.Pred[pc] {
		if !seen[q] {
			seen[q] = true
			stack = append(stack, q)
		}
	}
	ok := true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := az.p.At(v)
		if in.Op == isa.OpSetp && in.PDst == pred {
			if in.Guarded() {
				return nil, false
			}
			out = append(out, v)
			continue
		}
		if v == 0 {
			ok = false // reached entry without a definition
		}
		for _, q := range az.g.Pred[v] {
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return out, ok
}

// fresh reports whether the setp's operand symbols are stable between
// the setp and the access: no symbol origin lies on a setp-avoiding path
// strictly between them (a redefinition there would make the constraint
// relate a stale instance).
func (az *analyzer) fresh(spc, accessPC int32, vals ...AbsVal) bool {
	fromSetp := az.reachAvoid(spc, spc)
	for _, v := range vals {
		for _, tm := range v.Terms {
			origin := az.it.t.info(tm.Sym).originPC
			if origin < 0 || !fromSetp[origin] {
				continue
			}
			if origin == accessPC || az.reachAvoid(origin, spc)[accessPC] {
				return false
			}
		}
	}
	return true
}

// negCmp returns the complement comparison.
func negCmp(c isa.Cmp) isa.Cmp {
	switch c {
	case isa.EQ:
		return isa.NE
	case isa.NE:
		return isa.EQ
	case isa.LT:
		return isa.GE
	case isa.LE:
		return isa.GT
	case isa.GT:
		return isa.LE
	}
	return isa.LT // GE
}

// constraintFrom builds the guard constraint of predicate pred holding
// value predTrue for the access at accessPC, anchored at the predicate's
// single reaching setp relative to position pos (the access itself, or
// the controlling branch).
func (az *analyzer) constraintFrom(pos, accessPC int32, pred isa.Pred, predTrue bool) (guardCon, bool) {
	setps, ok := az.reachingSetps(pos, pred)
	if !ok || len(setps) != 1 {
		return guardCon{}, false
	}
	spc := setps[0]
	if !az.it.reached[spc] {
		return guardCon{}, false
	}
	rel := az.it.setps[spc]
	if rel.a.Top || rel.b.Top {
		return guardCon{}, false
	}
	if !az.fresh(spc, accessPC, rel.a, rel.b) {
		return guardCon{}, false
	}
	cmp := rel.cmp
	if !predTrue {
		cmp = negCmp(cmp)
	}
	return guardCon{a: rel.a, b: rel.b, cmp: cmp}, true
}

// guardsFor extracts the linear facts known about any thread executing
// the access at pc: its own guard predicate, plus every guarded branch
// from which the access is reachable via exactly one edge (so the last
// execution of that branch determines the predicate's value).
func (az *analyzer) guardsFor(pc int32) []guardCon {
	var out []guardCon
	in := az.p.At(pc)
	if in.Guarded() {
		if c, ok := az.constraintFrom(pc, pc, isa.Pred(in.Guard), !in.GuardNeg); ok {
			out = append(out, c)
		}
	}
	for bpc := int32(0); bpc < az.g.N; bpc++ {
		bi := az.p.At(bpc)
		if bi.Op != isa.OpBra || !bi.Guarded() || !az.it.reached[bpc] || bpc == pc {
			continue
		}
		rTaken := az.reachAvoid(bi.Target, bpc)
		fall := bpc + 1
		var rFall []bool
		if fall < az.g.N {
			rFall = az.reachAvoid(fall, bpc)
		} else {
			rFall = make([]bool, az.g.N+1)
		}
		onTaken := rTaken[pc] || bi.Target == pc
		onFall := rFall[pc] || fall == pc
		if onTaken == onFall {
			continue // both or neither: the branch tells us nothing
		}
		// taken edge ⟺ predicate == !GuardNeg.
		predTrue := onTaken != bi.GuardNeg
		if c, ok := az.constraintFrom(bpc, pc, isa.Pred(bi.Guard), predTrue); ok {
			out = append(out, c)
		}
	}
	return out
}
