package analysis

import (
	"warpsched/internal/isa"
)

// Options controls suppression of findings.
type Options struct {
	// Allow suppresses findings by category. A nil entry value suppresses
	// the whole category; a non-empty PC list suppresses only findings at
	// those PCs. Findings at instructions carrying isa.AnnNoLint are
	// always suppressed regardless of Allow.
	Allow map[Category][]int32
}

func (o *Options) allows(f Finding) bool {
	pcs, ok := o.Allow[f.Category]
	if !ok {
		return false
	}
	if len(pcs) == 0 {
		return true
	}
	for _, pc := range pcs {
		if pc == f.PC {
			return true
		}
	}
	return false
}

// Analyze runs every pass over the program with default options.
func Analyze(p *isa.Program) *Report {
	return AnalyzeOpts(p, Options{})
}

// AnalyzeOpts runs the full analysis: structural validation, CFG/IPDOM
// reconvergence verification, def-use dataflow lints and the
// synchronization-discipline checks. Findings at instructions annotated
// AnnNoLint (or allowlisted in opt) are reported under Suppressed.
func AnalyzeOpts(p *isa.Program, opt Options) *Report {
	rep := &Report{Program: p.Name}
	if err := p.Validate(); err != nil {
		// Structural invariants are broken; the CFG passes would index
		// out of range, so report and stop.
		rep.Findings = []Finding{{Program: p.Name, PC: -1, Category: CatInvalid, Message: err.Error()}}
		return rep
	}
	g := BuildCFG(p)

	var all []Finding
	all = append(all, checkCFG(g)...)
	all = append(all, checkNeverWritten(g)...)
	all = append(all, checkPredDefiniteAssignment(g)...)
	all = append(all, checkDeadWrites(g)...)
	all = append(all, checkSyncDiscipline(g)...)
	sortFindings(all)

	for _, f := range all {
		suppressed := opt.allows(f)
		if !suppressed && f.PC >= 0 && f.PC < p.Len() && p.At(f.PC).HasAnn(isa.AnnNoLint) {
			suppressed = true
		}
		if suppressed {
			rep.Suppressed = append(rep.Suppressed, f)
		} else {
			rep.Findings = append(rep.Findings, f)
		}
	}
	return rep
}
