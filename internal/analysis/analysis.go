package analysis

import (
	"warpsched/internal/isa"
)

// Options controls suppression of findings.
type Options struct {
	// Allow suppresses findings by category. A nil entry value suppresses
	// the whole category; a non-empty PC list suppresses only findings at
	// those PCs. Findings at instructions carrying isa.AnnNoLint are
	// always suppressed regardless of Allow.
	Allow map[Category][]int32
}

func (o *Options) allows(f Finding) bool {
	pcs, ok := o.Allow[f.Category]
	if !ok {
		return false
	}
	if len(pcs) == 0 {
		return true
	}
	for _, pc := range pcs {
		if pc == f.PC {
			return true
		}
	}
	return false
}

// Analyze runs every pass over the program with default options.
func Analyze(p *isa.Program) *Report {
	return AnalyzeOpts(p, Options{})
}

// Suppressed reports whether finding f is silenced: allowlisted in opt,
// or anchored at an instruction whose !nolint annotation matches the
// finding's category or class. Pair findings (OtherPC > 0) are silenced
// when either endpoint carries a matching nolint — suppressing one
// access of a race suppresses the pair.
func (o *Options) Suppressed(p *isa.Program, f Finding) bool {
	if o.allows(f) {
		return true
	}
	match := func(pc int32) bool {
		return pc >= 0 && pc < p.Len() &&
			p.At(pc).Suppresses(string(f.Category), f.Category.Class())
	}
	return match(f.PC) || (f.OtherPC > 0 && match(f.OtherPC))
}

// BuildReport splits findings into Findings and Suppressed according to
// opt and per-instruction nolint annotations, fills each finding's Class
// from its category, and sorts for deterministic output. Shared by the
// core passes and internal/analysis/race.
func BuildReport(p *isa.Program, opt Options, all []Finding) *Report {
	rep := &Report{Program: p.Name}
	sortFindings(all)
	for _, f := range all {
		f.Class = f.Category.Class()
		if opt.Suppressed(p, f) {
			rep.Suppressed = append(rep.Suppressed, f)
		} else {
			rep.Findings = append(rep.Findings, f)
		}
	}
	return rep
}

// AnalyzeOpts runs the full analysis: structural validation, CFG/IPDOM
// reconvergence verification, def-use dataflow lints and the
// synchronization-discipline checks. Findings at instructions annotated
// AnnNoLint (or allowlisted in opt) are reported under Suppressed.
func AnalyzeOpts(p *isa.Program, opt Options) *Report {
	if err := p.Validate(); err != nil {
		// Structural invariants are broken; the CFG passes would index
		// out of range, so report and stop.
		return &Report{Program: p.Name, Findings: []Finding{{
			Program:  p.Name,
			PC:       -1,
			Category: CatInvalid,
			Class:    CatInvalid.Class(),
			Message:  err.Error(),
		}}}
	}
	g := BuildCFG(p)

	var all []Finding
	all = append(all, checkCFG(g)...)
	all = append(all, checkNeverWritten(g)...)
	all = append(all, checkPredDefiniteAssignment(g)...)
	all = append(all, checkDeadWrites(g)...)
	all = append(all, checkSyncDiscipline(g)...)
	return BuildReport(p, opt, all)
}
