package analysis

import (
	"fmt"
	"sort"

	"warpsched/internal/isa"
)

// checkSyncDiscipline verifies the synchronization idioms the paper's
// kernels depend on (cf. Stuart & Owens, "Efficient Synchronization
// Primitives for GPUs"): lock acquires must be able to reach a release,
// spin-tested values must bypass the non-coherent L1, backward branches
// in synchronization regions must carry the SIB ground-truth annotation,
// and CTA barriers must not sit under thread-divergent forward control
// flow.
func checkSyncDiscipline(g *CFG) []Finding {
	var fs []Finding
	fs = append(fs, checkLockPairing(g)...)
	fs = append(fs, checkSpinVolatile(g)...)
	fs = append(fs, checkSyncSIB(g)...)
	fs = append(fs, checkDivergentBarrier(g)...)
	return fs
}

// checkLockPairing flags acquires from which no release is reachable
// (the lock could never be dropped: a guaranteed livelock for every other
// contender) and releases that no acquire can reach (releasing a lock
// that is never taken on any path — almost always a mis-annotation).
// The check is existential, not path-universal, because the canonical
// SIMT-deadlock-free idiom (Figure 1a) retries a failed atomicCAS
// acquire, so the acquire→release pairing only holds on the success arm.
func checkLockPairing(g *CFG) []Finding {
	p := g.Prog
	isRel := func(v int32) bool {
		return v < g.N && p.At(v).HasAnn(isa.AnnLockRelease)
	}
	isAcq := func(v int32) bool {
		return v < g.N && p.At(v).HasAnn(isa.AnnLockAcquire)
	}
	var fs []Finding
	for pc := int32(0); pc < g.N; pc++ {
		if !g.Reachable[pc] {
			continue
		}
		in := p.At(pc)
		if in.HasAnn(isa.AnnLockAcquire) && !g.anyReachable(pc, isRel) {
			fs = append(fs, Finding{Program: p.Name, PC: pc, Category: CatUnpairedAcquire,
				Message: "lock acquire with no reachable AnnLockRelease on any path"})
		}
		if in.HasAnn(isa.AnnLockRelease) && len(g.reachingStops(pc, isAcq)) == 0 {
			fs = append(fs, Finding{Program: p.Name, PC: pc, Category: CatUnpairedRelease,
				Message: "lock release that no AnnLockAcquire reaches on any path"})
		}
	}
	return fs
}

// checkSpinVolatile slices the guard predicate of every spin-inducing
// (AnnSIB) and wait-check (AnnWaitCheck) branch back through setp and the
// ALU/mov/selp chain to the producing definitions. If the tested value is
// produced by a non-volatile load, the spin re-reads a potentially stale
// line from the non-coherent L1 and can livelock: the awaited word is by
// definition written by another thread, possibly on another SM. Volatile
// loads, atomics and ld.param terminate the slice cleanly.
func checkSpinVolatile(g *CFG) []Finding {
	p := g.Prog
	var fs []Finding
	flagged := make(map[int32]bool) // def PCs already reported

	type useSite struct {
		pc  int32
		reg isa.Reg
	}
	for pc := int32(0); pc < g.N; pc++ {
		in := p.At(pc)
		if !g.Reachable[pc] || in.Op != isa.OpBra || !in.Guarded() {
			continue
		}
		if !in.HasAnn(isa.AnnSIB) && !in.HasAnn(isa.AnnWaitCheck) {
			continue
		}
		guard := isa.Pred(in.Guard)
		setps := g.reachingStops(pc, func(v int32) bool {
			return v < g.N && p.At(v).Op == isa.OpSetp && p.At(v).PDst == guard
		})
		var work []useSite
		seen := make(map[useSite]bool)
		push := func(at int32, i *isa.Instr) {
			for _, o := range [...]isa.Operand{i.A, i.B, i.C, i.D} {
				if o.Kind != isa.OpdReg {
					continue
				}
				u := useSite{at, o.Reg}
				if !seen[u] {
					seen[u] = true
					work = append(work, u)
				}
			}
		}
		for _, s := range setps {
			push(s, p.At(s))
		}
		for len(work) > 0 {
			u := work[len(work)-1]
			work = work[:len(work)-1]
			defs := g.reachingStops(u.pc, func(v int32) bool {
				return v < g.N && p.At(v).WritesReg() && p.At(v).Dst == u.reg
			})
			for _, d := range defs {
				di := p.At(d)
				switch di.Op {
				case isa.OpLd:
					if !di.Vol && !flagged[d] {
						flagged[d] = true
						fs = append(fs, Finding{Program: p.Name, PC: d, Category: CatSpinLoadNotVolatile,
							Message: fmt.Sprintf("non-volatile load feeds the spin test of the branch at pc %d; the awaited word must bypass the L1 (ld.volatile)", pc)})
					}
				case isa.OpMov, isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
					isa.OpMin, isa.OpMax, isa.OpAnd, isa.OpOr, isa.OpXor,
					isa.OpShl, isa.OpShr, isa.OpSelp:
					push(d, di)
				}
				// Atomics and ld.param terminate the slice: atomics are
				// L1-bypassing by construction, parameters are constant.
			}
		}
	}
	return fs
}

// checkSyncSIB flags guarded backward branches inside AnnSync regions
// that lack the AnnSIB ground-truth annotation. The statistics layer
// counts AnnSync instructions as synchronization overhead, and DDOS's
// TSDR/FSDR metrics compare detections against TrueSIBs; a busy-wait
// backward branch marked sync but not SIB makes the two accountings
// silently disagree.
func checkSyncSIB(g *CFG) []Finding {
	p := g.Prog
	var fs []Finding
	for pc := int32(0); pc < g.N; pc++ {
		in := p.At(pc)
		if in.Op == isa.OpBra && in.Guarded() && in.Target <= pc &&
			in.HasAnn(isa.AnnSync) && !in.HasAnn(isa.AnnSIB) {
			fs = append(fs, Finding{Program: p.Name, PC: pc, Category: CatSyncBackwardNoSIB,
				Message: fmt.Sprintf("guarded backward branch (target %d) in an AnnSync region lacks the AnnSIB ground-truth annotation", in.Target)})
		}
	}
	return fs
}

// checkDivergentBarrier flags bar.sync instructions that can execute
// while the warp is diverged on a thread-varying forward branch — the
// classic barrier-in-one-arm-of-an-if deadlock — and barriers directly
// guarded by a varying predicate. Backward (loop) branches are exempt
// even when thread-varying: lanes leaving a loop early wait at the
// reconvergence point and exited threads are released from the barrier
// count, which the TB kernel's barrier-throttled retry loop (and real
// pre-Volta hardware) relies on.
func checkDivergentBarrier(g *CFG) []Finding {
	p := g.Prog

	// Any barriers at all? (Most sync kernels have none.)
	hasBar := false
	for pc := int32(0); pc < g.N; pc++ {
		if p.At(pc).Op == isa.OpBar {
			hasBar = true
			break
		}
	}
	if !hasBar {
		return nil
	}

	_, varyP := varyingSets(g)
	// Union of divergent regions of thread-varying forward branches,
	// remembering one responsible branch per node for the message.
	owner := make([]int32, g.N+1)
	for i := range owner {
		owner[i] = -1
	}
	for pc := int32(0); pc < g.N; pc++ {
		in := p.At(pc)
		if in.Op != isa.OpBra || !in.Guarded() || in.Target <= pc {
			continue
		}
		if varyP&(1<<uint8(in.Guard)) == 0 {
			continue
		}
		for v, inRegion := range g.DivergentRegion(pc) {
			if inRegion && owner[v] < 0 {
				owner[v] = pc
			}
		}
	}

	var fs []Finding
	for pc := int32(0); pc < g.N; pc++ {
		in := p.At(pc)
		if in.Op != isa.OpBar || !g.Reachable[pc] {
			continue
		}
		switch {
		case in.Guarded() && varyP&(1<<uint8(in.Guard)) != 0:
			fs = append(fs, Finding{Program: p.Name, PC: pc, Category: CatDivergentBarrier,
				Message: fmt.Sprintf("bar.sync guarded by thread-varying predicate %%p%d", in.Guard)})
		case owner[pc] >= 0:
			fs = append(fs, Finding{Program: p.Name, PC: pc, Category: CatDivergentBarrier,
				Message: fmt.Sprintf("bar.sync inside the divergent region of the thread-varying forward branch at pc %d", owner[pc])})
		}
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].PC < fs[j].PC })
	return fs
}
