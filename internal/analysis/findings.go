// Package analysis implements offline static analysis over isa.Program:
// CFG construction, dominator / immediate-post-dominator computation with
// verification that every divergent branch's reconvergence PC equals the
// branch's IPDOM (the property GPGPU-Sim's PTX front end guarantees by
// construction and the SIMT stack in internal/simt relies on), register
// and predicate def-use dataflow lints, and synchronization-discipline
// checks for the busy-wait idioms of the paper's kernels (volatile spin
// loads, acquire/release pairing, SIB ground-truth consistency, barriers
// under divergent control flow).
//
// The analysis never executes anything: it is purely structural, so it can
// gate kernel registration and CI without touching simulated cycle counts.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Category identifies a class of finding. Categories are stable strings
// so they can be used in allowlists and JSON output.
type Category string

const (
	// CatInvalid: isa.Program.Validate failed; deeper passes are skipped.
	CatInvalid Category = "invalid"
	// CatReconvMismatch: a guarded branch's Reconv PC differs from the
	// immediate post-dominator of the branch in the CFG.
	CatReconvMismatch Category = "reconv-mismatch"
	// CatNoExitPath: no path from a divergent branch to program exit, so
	// its post-dominator (and reconvergence point) is undefined.
	CatNoExitPath Category = "no-exit-path"
	// CatSIBNotBackward: an instruction annotated AnnSIB is not a guarded
	// backward branch (DDOS can only ever detect backward branches).
	CatSIBNotBackward Category = "sib-not-backward"
	// CatUnreachable: the instruction can never execute.
	CatUnreachable Category = "unreachable-code"
	// CatUninitReg: a general-purpose register is read somewhere but
	// written nowhere in the program.
	CatUninitReg Category = "uninit-reg-read"
	// CatUninitPred: a guard or selp source predicate may be used before
	// any setp defines it on some path from entry.
	CatUninitPred Category = "uninit-pred"
	// CatDeadWrite: a register or predicate write whose value can never
	// be observed (no read before every overwrite/exit). Memory ops are
	// exempt: loads and atomics have timing/memory side effects.
	CatDeadWrite Category = "dead-write"
	// CatUnpairedAcquire: an AnnLockAcquire from which no AnnLockRelease
	// is reachable — the lock could never be released.
	CatUnpairedAcquire Category = "unpaired-acquire"
	// CatUnpairedRelease: an AnnLockRelease no AnnLockAcquire can reach.
	CatUnpairedRelease Category = "unpaired-release"
	// CatSpinLoadNotVolatile: the value tested by a spin (AnnSIB) or
	// wait-check branch is produced by a non-volatile load; on the
	// non-coherent L1 the spin would re-read a stale line forever.
	CatSpinLoadNotVolatile Category = "spin-load-not-volatile"
	// CatSyncBackwardNoSIB: a guarded backward branch inside an AnnSync
	// region is not annotated AnnSIB, so DDOS ground truth (TSDR/FSDR
	// accounting) would drift from the sync-overhead accounting.
	CatSyncBackwardNoSIB Category = "sync-backward-missing-sib"
	// CatDivergentBarrier: a CTA barrier under divergent control flow —
	// guarded by a thread-varying predicate, or inside the arm of a
	// forward branch whose guard is thread-varying.
	CatDivergentBarrier Category = "divergent-barrier"

	// The categories below are produced by the inter-warp race analyzer
	// (internal/analysis/race); they share this taxonomy so suppression,
	// allowlists and JSON output treat every pass uniformly.

	// CatRace: two accesses in the same barrier interval may touch the
	// same word from different threads and at least one is a non-atomic
	// write. The finding is anchored at one access; OtherPC names the
	// second.
	CatRace Category = "race"
	// CatBarrierDeadlock: threads of one CTA can diverge to different
	// barrier sets — some warps arrive at a bar.sync other warps can
	// bypass while still running, so the barrier count may never close.
	CatBarrierDeadlock Category = "barrier-deadlock"
	// CatDoubleAcquire: a path re-acquires a lock address that is already
	// held (self-deadlock on a non-reentrant spin lock).
	CatDoubleAcquire Category = "double-acquire"
	// CatUnlockWithoutLock: a release on a path where the lock address is
	// not held.
	CatUnlockWithoutLock Category = "unlock-without-lock"
	// CatLockLeak: a program exit path on which an acquired lock is still
	// held (no release on the path).
	CatLockLeak Category = "lock-leak"
	// CatLockOrder: the static lock-order graph has a cycle — two paths
	// acquire the same pair of lock addresses in opposite orders while
	// blocking (AB/BA deadlock).
	CatLockOrder Category = "lockorder"
)

// Class groups categories for coarse suppression and the schema-2 JSON
// `class` field: "cfg" (structure/reconvergence), "dataflow" (def-use),
// "sync" (intra-warp sync discipline), "race" (inter-warp data races and
// barrier phasing) and "lock" (lockset and lock-order defects). A
// `!nolint <name>` annotation matches either the class or the exact
// category.
func (c Category) Class() string {
	switch c {
	case CatInvalid, CatReconvMismatch, CatNoExitPath, CatSIBNotBackward, CatUnreachable:
		return "cfg"
	case CatUninitReg, CatUninitPred, CatDeadWrite:
		return "dataflow"
	case CatUnpairedAcquire, CatUnpairedRelease, CatSpinLoadNotVolatile,
		CatSyncBackwardNoSIB, CatDivergentBarrier:
		return "sync"
	case CatRace, CatBarrierDeadlock:
		return "race"
	case CatDoubleAcquire, CatUnlockWithoutLock, CatLockLeak, CatLockOrder:
		return "lock"
	}
	return "other"
}

// Finding is one analysis diagnostic, anchored at a PC of the program.
type Finding struct {
	Program  string   `json:"program"`
	PC       int32    `json:"pc"`
	Category Category `json:"category"`
	// Class is the category's coarse group (Category.Class), emitted so
	// schema-2 consumers can bucket findings without the category table.
	Class   string `json:"class,omitempty"`
	Message string `json:"message"`
	// OtherPC names the second instruction of a pair finding (the other
	// access of a race). Pair findings are anchored at the lower PC with
	// OtherPC the strictly greater one, so a zero value (omitted in JSON)
	// always means "no second site" — self-pairs (one instruction racing
	// with itself across threads) carry the pairing in Message instead.
	OtherPC int32 `json:"other_pc,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Program, f.PC, f.Category, f.Message)
}

// Report is the result of analyzing one program. Suppressed holds
// findings whose instruction carries isa.AnnNoLint or whose (category,
// PC) pair is allowlisted.
type Report struct {
	Program    string    `json:"program"`
	Findings   []Finding `json:"findings"`
	Suppressed []Finding `json:"suppressed,omitempty"`
}

// Clean reports whether the program has no unsuppressed findings.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// MarshalJSON emits the report with empty finding slices rendered as []
// rather than null, for stable machine-readable output.
func (r *Report) MarshalJSON() ([]byte, error) {
	type alias Report
	a := alias(*r)
	if a.Findings == nil {
		a.Findings = []Finding{}
	}
	return json.Marshal(a)
}

// sortFindings orders findings by PC then category for deterministic
// output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].PC != fs[j].PC {
			return fs[i].PC < fs[j].PC
		}
		return fs[i].Category < fs[j].Category
	})
}
