// Package analysis implements offline static analysis over isa.Program:
// CFG construction, dominator / immediate-post-dominator computation with
// verification that every divergent branch's reconvergence PC equals the
// branch's IPDOM (the property GPGPU-Sim's PTX front end guarantees by
// construction and the SIMT stack in internal/simt relies on), register
// and predicate def-use dataflow lints, and synchronization-discipline
// checks for the busy-wait idioms of the paper's kernels (volatile spin
// loads, acquire/release pairing, SIB ground-truth consistency, barriers
// under divergent control flow).
//
// The analysis never executes anything: it is purely structural, so it can
// gate kernel registration and CI without touching simulated cycle counts.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Category identifies a class of finding. Categories are stable strings
// so they can be used in allowlists and JSON output.
type Category string

const (
	// CatInvalid: isa.Program.Validate failed; deeper passes are skipped.
	CatInvalid Category = "invalid"
	// CatReconvMismatch: a guarded branch's Reconv PC differs from the
	// immediate post-dominator of the branch in the CFG.
	CatReconvMismatch Category = "reconv-mismatch"
	// CatNoExitPath: no path from a divergent branch to program exit, so
	// its post-dominator (and reconvergence point) is undefined.
	CatNoExitPath Category = "no-exit-path"
	// CatSIBNotBackward: an instruction annotated AnnSIB is not a guarded
	// backward branch (DDOS can only ever detect backward branches).
	CatSIBNotBackward Category = "sib-not-backward"
	// CatUnreachable: the instruction can never execute.
	CatUnreachable Category = "unreachable-code"
	// CatUninitReg: a general-purpose register is read somewhere but
	// written nowhere in the program.
	CatUninitReg Category = "uninit-reg-read"
	// CatUninitPred: a guard or selp source predicate may be used before
	// any setp defines it on some path from entry.
	CatUninitPred Category = "uninit-pred"
	// CatDeadWrite: a register or predicate write whose value can never
	// be observed (no read before every overwrite/exit). Memory ops are
	// exempt: loads and atomics have timing/memory side effects.
	CatDeadWrite Category = "dead-write"
	// CatUnpairedAcquire: an AnnLockAcquire from which no AnnLockRelease
	// is reachable — the lock could never be released.
	CatUnpairedAcquire Category = "unpaired-acquire"
	// CatUnpairedRelease: an AnnLockRelease no AnnLockAcquire can reach.
	CatUnpairedRelease Category = "unpaired-release"
	// CatSpinLoadNotVolatile: the value tested by a spin (AnnSIB) or
	// wait-check branch is produced by a non-volatile load; on the
	// non-coherent L1 the spin would re-read a stale line forever.
	CatSpinLoadNotVolatile Category = "spin-load-not-volatile"
	// CatSyncBackwardNoSIB: a guarded backward branch inside an AnnSync
	// region is not annotated AnnSIB, so DDOS ground truth (TSDR/FSDR
	// accounting) would drift from the sync-overhead accounting.
	CatSyncBackwardNoSIB Category = "sync-backward-missing-sib"
	// CatDivergentBarrier: a CTA barrier under divergent control flow —
	// guarded by a thread-varying predicate, or inside the arm of a
	// forward branch whose guard is thread-varying.
	CatDivergentBarrier Category = "divergent-barrier"
)

// Finding is one analysis diagnostic, anchored at a PC of the program.
type Finding struct {
	Program  string   `json:"program"`
	PC       int32    `json:"pc"`
	Category Category `json:"category"`
	Message  string   `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Program, f.PC, f.Category, f.Message)
}

// Report is the result of analyzing one program. Suppressed holds
// findings whose instruction carries isa.AnnNoLint or whose (category,
// PC) pair is allowlisted.
type Report struct {
	Program    string    `json:"program"`
	Findings   []Finding `json:"findings"`
	Suppressed []Finding `json:"suppressed,omitempty"`
}

// Clean reports whether the program has no unsuppressed findings.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// MarshalJSON emits the report with empty finding slices rendered as []
// rather than null, for stable machine-readable output.
func (r *Report) MarshalJSON() ([]byte, error) {
	type alias Report
	a := alias(*r)
	if a.Findings == nil {
		a.Findings = []Finding{}
	}
	return json.Marshal(a)
}

// sortFindings orders findings by PC then category for deterministic
// output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].PC != fs[j].PC {
			return fs[i].PC < fs[j].PC
		}
		return fs[i].Category < fs[j].Category
	})
}
