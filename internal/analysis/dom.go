package analysis

import (
	"fmt"

	"warpsched/internal/isa"
)

// Dominators returns the immediate dominator of every node (length N+1),
// computed from the entry node. idom[0] = 0; nodes unreachable from entry
// have idom -1.
func (g *CFG) Dominators() []int32 {
	return computeIdom(int(g.N)+1, 0, g.Succ, g.Pred)
}

// PostDominators returns the immediate post-dominator of every node
// (length N+1), computed from the virtual exit over the reversed graph.
// ipdom[Exit] = Exit; nodes from which the exit is unreachable (pure
// infinite loops) have ipdom -1.
func (g *CFG) PostDominators() []int32 {
	return computeIdom(int(g.N)+1, g.N, g.Pred, g.Succ)
}

// computeIdom is the iterative dominator algorithm of Cooper, Harvey and
// Kennedy ("A Simple, Fast Dominance Algorithm") over an arbitrary graph:
// out[v] are the edges followed from root, in[v] their reverses. Programs
// are at most a few hundred instructions, so the O(N²) worst case is
// irrelevant and the simple algorithm wins on clarity.
func computeIdom(n int, root int32, out, in [][]int32) []int32 {
	// Reverse postorder from root.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make([]uint8, n)
	postIdx := make([]int32, n) // node -> postorder number, -1 if unreached
	for i := range postIdx {
		postIdx[i] = -1
	}
	var order []int32 // postorder
	type frame struct {
		v int32
		i int
	}
	stack := []frame{{root, 0}}
	state[root] = gray
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(out[f.v]) {
			s := out[f.v][f.i]
			f.i++
			if state[s] == white {
				state[s] = gray
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		state[f.v] = black
		postIdx[f.v] = int32(len(order))
		order = append(order, f.v)
		stack = stack[:len(stack)-1]
	}

	idom := make([]int32, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root

	intersect := func(a, b int32) int32 {
		for a != b {
			for postIdx[a] < postIdx[b] {
				a = idom[a]
			}
			for postIdx[b] < postIdx[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		// Reverse postorder = order reversed.
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if v == root {
				continue
			}
			var newIdom int32 = -1
			for _, p := range in[v] {
				if postIdx[p] < 0 || idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// checkCFG verifies the structural branch properties the SIMT stack
// relies on: every guarded branch reconverges exactly at its immediate
// post-dominator, every AnnSIB instruction is a guarded backward branch,
// TrueSIBs agrees with the AnnSIB annotations, and all code is reachable.
func checkCFG(g *CFG) []Finding {
	p := g.Prog
	var fs []Finding
	add := func(pc int32, cat Category, format string, args ...any) {
		fs = append(fs, Finding{Program: p.Name, PC: pc, Category: cat,
			Message: fmt.Sprintf(format, args...)})
	}

	ipdom := g.PostDominators()
	for pc := int32(0); pc < g.N; pc++ {
		in := p.At(pc)
		if !g.Reachable[pc] || in.Op != isa.OpBra || !in.Guarded() {
			continue
		}
		switch {
		case ipdom[pc] < 0:
			add(pc, CatNoExitPath,
				"divergent branch cannot reach program exit; reconvergence undefined")
		case ipdom[pc] != in.Reconv:
			add(pc, CatReconvMismatch,
				"reconvergence PC %d, but the branch's immediate post-dominator is %d",
				in.Reconv, ipdom[pc])
		}
	}

	// SIB ground truth: AnnSIB must mark guarded backward branches only,
	// and the TrueSIBs index must agree with the annotations.
	sibAnn := make(map[int32]bool)
	for pc := int32(0); pc < g.N; pc++ {
		in := p.At(pc)
		if !in.HasAnn(isa.AnnSIB) {
			continue
		}
		sibAnn[pc] = true
		switch {
		case in.Op != isa.OpBra:
			add(pc, CatSIBNotBackward, "AnnSIB on a non-branch instruction (%s)", in.Op)
		case !in.Guarded():
			add(pc, CatSIBNotBackward, "AnnSIB on an unconditional branch")
		case in.Target > pc:
			add(pc, CatSIBNotBackward,
				"AnnSIB on a forward branch (target %d > pc %d); spin-inducing branches are backward",
				in.Target, pc)
		}
	}
	inTrue := make(map[int32]bool)
	for _, pc := range p.TrueSIBs {
		inTrue[pc] = true
		if pc < 0 || pc >= g.N || !sibAnn[pc] {
			add(pc, CatSIBNotBackward, "TrueSIBs lists pc %d, which carries no AnnSIB annotation", pc)
		}
	}
	for pc := range sibAnn {
		if !inTrue[pc] {
			add(pc, CatSIBNotBackward, "AnnSIB instruction missing from TrueSIBs")
		}
	}

	// Unreachable code, one finding per maximal run.
	for pc := int32(0); pc < g.N; pc++ {
		if g.Reachable[pc] {
			continue
		}
		end := pc
		for end+1 < g.N && !g.Reachable[end+1] {
			end++
		}
		if end > pc {
			add(pc, CatUnreachable, "instructions %d..%d are unreachable", pc, end)
		} else {
			add(pc, CatUnreachable, "instruction is unreachable")
		}
		pc = end
	}
	return fs
}
