package analysis

import (
	"fmt"

	"warpsched/internal/isa"
)

// Register and predicate sets are bitmasks: NumRegs = 64 fits a uint64
// exactly, NumPreds = 8 fits a uint8.

// srcRegMask returns the set of GPRs read by the instruction.
func srcRegMask(in *isa.Instr) uint64 {
	var m uint64
	for _, o := range [...]isa.Operand{in.A, in.B, in.C, in.D} {
		if o.Kind == isa.OpdReg {
			m |= 1 << o.Reg
		}
	}
	return m
}

// predUseMask returns the set of predicates read by the instruction: the
// guard of any guarded instruction, selp's source predicate, and the
// guard of a conditional branch.
func predUseMask(in *isa.Instr) uint8 {
	var m uint8
	if in.Guarded() {
		m |= 1 << uint8(in.Guard)
	}
	if in.Op == isa.OpSelp {
		m |= 1 << in.PSrc
	}
	return m
}

// checkNeverWritten flags GPRs that are read somewhere but written
// nowhere in the whole program — there is no path on which the read
// could observe a defined value.
func checkNeverWritten(g *CFG) []Finding {
	p := g.Prog
	var written, read uint64
	firstRead := make(map[isa.Reg]int32)
	for pc := int32(0); pc < g.N; pc++ {
		in := p.At(pc)
		if m := srcRegMask(in); m != 0 {
			read |= m
			for r := isa.Reg(0); int(r) < isa.NumRegs; r++ {
				if m&(1<<r) != 0 {
					if _, ok := firstRead[r]; !ok {
						firstRead[r] = pc
					}
				}
			}
		}
		if in.WritesReg() {
			written |= 1 << in.Dst
		}
	}
	var fs []Finding
	for r := isa.Reg(0); int(r) < isa.NumRegs; r++ {
		if read&(1<<r) != 0 && written&(1<<r) == 0 {
			fs = append(fs, Finding{Program: p.Name, PC: firstRead[r], Category: CatUninitReg,
				Message: fmt.Sprintf("%%r%d is read but never written anywhere in the program", r)})
		}
	}
	return fs
}

// checkPredDefiniteAssignment runs a forward must-be-assigned dataflow
// over predicates (meet = intersection over predecessors) and flags every
// use — guard or selp source — of a predicate that is not defined by an
// unguarded setp on every path from entry. A guarded setp writes only the
// lanes whose guard holds, so it does not definitely assign.
func checkPredDefiniteAssignment(g *CFG) []Finding {
	p := g.Prog
	n := int(g.N)
	const all = ^uint8(0)
	out := make([]uint8, n+1)
	for i := range out {
		out[i] = all // optimistic init for the intersection meet
	}
	in := make([]uint8, n+1)
	for changed := true; changed; {
		changed = false
		for pc := 0; pc <= n; pc++ {
			if !g.Reachable[pc] {
				continue
			}
			iv := all
			if pc == 0 {
				iv = 0 // nothing assigned at entry
			} else {
				for _, pr := range g.Pred[pc] {
					if g.Reachable[pr] {
						iv &= out[pr]
					}
				}
			}
			ov := iv
			if pc < n {
				i := p.At(int32(pc))
				if i.Op == isa.OpSetp && !i.Guarded() {
					ov |= 1 << i.PDst
				}
			}
			if iv != in[pc] || ov != out[pc] {
				in[pc], out[pc] = iv, ov
				changed = true
			}
		}
	}
	var fs []Finding
	for pc := int32(0); pc < g.N; pc++ {
		if !g.Reachable[pc] {
			continue
		}
		i := p.At(pc)
		if missing := predUseMask(i) &^ in[pc]; missing != 0 {
			for pr := 0; pr < isa.NumPreds; pr++ {
				if missing&(1<<pr) != 0 {
					fs = append(fs, Finding{Program: p.Name, PC: pc, Category: CatUninitPred,
						Message: fmt.Sprintf("%%p%d may be used before any unguarded setp defines it", pr)})
				}
			}
		}
	}
	return fs
}

// checkDeadWrites runs backward liveness over GPRs and predicates and
// flags writes whose value can never be observed. Memory operations
// (loads, atomics) are exempt from reporting: in a timing simulator a
// load with an unused destination is still a deliberate memory access
// (e.g. the tree-walk touches in the TB kernel). Guarded writes do not
// kill liveness — lanes with a false guard keep the old value.
func checkDeadWrites(g *CFG) []Finding {
	p := g.Prog
	liveR, liveP := liveness(g)
	var fs []Finding
	for pc := int32(0); pc < g.N; pc++ {
		if !g.Reachable[pc] {
			continue
		}
		i := p.At(pc)
		var outR uint64
		var outP uint8
		for _, s := range g.Succ[pc] {
			outR |= liveR[s]
			outP |= liveP[s]
		}
		if i.WritesReg() && !i.Op.IsMem() && outR&(1<<i.Dst) == 0 {
			fs = append(fs, Finding{Program: p.Name, PC: pc, Category: CatDeadWrite,
				Message: fmt.Sprintf("%%r%d is written here but never read afterwards", i.Dst)})
		}
		if i.Op == isa.OpSetp && outP&(1<<i.PDst) == 0 {
			fs = append(fs, Finding{Program: p.Name, PC: pc, Category: CatDeadWrite,
				Message: fmt.Sprintf("%%p%d is set here but never used afterwards", i.PDst)})
		}
	}
	return fs
}

// liveness runs backward liveness over GPRs and predicates, returning
// live-in sets per node (index N is the virtual exit, always empty).
func liveness(g *CFG) (liveR []uint64, liveP []uint8) {
	p := g.Prog
	n := int(g.N)
	liveR = make([]uint64, n+1)
	liveP = make([]uint8, n+1)
	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			var outR uint64
			var outP uint8
			for _, s := range g.Succ[pc] {
				outR |= liveR[s]
				outP |= liveP[s]
			}
			i := p.At(int32(pc))
			inR, inP := outR, outP
			if !i.Guarded() {
				if i.WritesReg() {
					inR &^= 1 << i.Dst
				}
				if i.Op == isa.OpSetp {
					inP &^= 1 << i.PDst
				}
			}
			inR |= srcRegMask(i)
			inP |= predUseMask(i)
			if inR != liveR[pc] || inP != liveP[pc] {
				liveR[pc], liveP[pc] = inR, inP
				changed = true
			}
		}
	}
	return liveR, liveP
}

// DeadLoadDests reports, per PC, the loads whose destination register is
// never read on any path — deliberate "touch" loads issued only for
// their memory-timing side effect (e.g. the TB tree walk). The race
// analyzer exempts them from read/write pairing.
func DeadLoadDests(g *CFG) []bool {
	liveR, _ := liveness(g)
	out := make([]bool, g.N)
	for pc := int32(0); pc < g.N; pc++ {
		in := g.Prog.At(pc)
		if in.Op != isa.OpLd {
			continue
		}
		var outR uint64
		for _, s := range g.Succ[pc] {
			outR |= liveR[s]
		}
		out[pc] = outR&(1<<in.Dst) == 0
	}
	return out
}

// VaryingSets exposes the CTA-uniformity analysis to sibling packages
// (internal/analysis/race layers its address abstraction on it).
func VaryingSets(g *CFG) (regs uint64, preds uint8) { return varyingSets(g) }

// varyingSets computes a conservative CTA-level divergence analysis: a
// register/predicate is "varying" if threads of one CTA may hold
// different values for it. Sources of variance are the thread-indexed
// special registers (%tid, %laneid, %warpid, %gtid, %clock), every memory
// read (another thread may have written the word), and any definition
// under divergent control flow (inside the divergent region of a branch
// whose guard is varying, or itself guarded by a varying predicate).
// %ntid, %nctaid, %ctaid and %smid are uniform across a CTA, which is
// the granularity that matters for bar.sync. The analysis is
// flow-insensitive (one bit per register) and iterates to a fixpoint
// because control dependence feeds back into data dependence.
func varyingSets(g *CFG) (uint64, uint8) {
	p := g.Prog
	var varyR uint64
	var varyP uint8

	specVarying := func(s isa.Special) bool {
		switch s {
		case isa.SpecTID, isa.SpecLaneID, isa.SpecWarpID, isa.SpecGTID, isa.SpecClock:
			return true
		}
		return false
	}
	opdVarying := func(o isa.Operand) bool {
		switch o.Kind {
		case isa.OpdReg:
			return varyR&(1<<o.Reg) != 0
		case isa.OpdSpecial:
			return specVarying(o.Spec)
		}
		return false
	}

	for {
		// Nodes under divergent control: the divergent region of every
		// guarded branch whose guard is currently varying.
		divergent := make([]bool, g.N+1)
		for pc := int32(0); pc < g.N; pc++ {
			in := p.At(pc)
			if in.Op != isa.OpBra || !in.Guarded() || varyP&(1<<uint8(in.Guard)) == 0 {
				continue
			}
			for v, inRegion := range g.DivergentRegion(pc) {
				if inRegion {
					divergent[v] = true
				}
			}
		}
		changed := false
		for pc := int32(0); pc < g.N; pc++ {
			in := p.At(pc)
			v := divergent[pc] || (in.Guarded() && varyP&(1<<uint8(in.Guard)) != 0)
			if !v {
				switch {
				case in.Op.IsMem(): // loads and atomics produce varying values
					v = true
				case in.Op == isa.OpLdParam:
					v = false
				case in.Op == isa.OpSelp:
					v = opdVarying(in.A) || opdVarying(in.B) || varyP&(1<<in.PSrc) != 0
				default:
					v = opdVarying(in.A) || opdVarying(in.B) || opdVarying(in.C) || opdVarying(in.D)
				}
			}
			if !v {
				continue
			}
			if in.WritesReg() && varyR&(1<<in.Dst) == 0 {
				varyR |= 1 << in.Dst
				changed = true
			}
			if in.Op == isa.OpSetp && varyP&(1<<in.PDst) == 0 {
				varyP |= 1 << in.PDst
				changed = true
			}
		}
		if !changed {
			return varyR, varyP
		}
	}
}
