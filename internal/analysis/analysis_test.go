package analysis

import (
	"strings"
	"testing"

	"warpsched/internal/isa"
)

func mustParse(t *testing.T, name, src string) *isa.Program {
	t.Helper()
	p, err := isa.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hasFinding(fs []Finding, cat Category, pc int32) bool {
	for _, f := range fs {
		if f.Category == cat && f.PC == pc {
			return true
		}
	}
	return false
}

// TestSeededBugs feeds the analyzer known-bad programs, one defect each,
// and requires the expected category at the expected PC.
func TestSeededBugs(t *testing.T) {
	cases := []struct {
		name string
		src  string
		cat  Category
		pc   int32
	}{
		{
			// The branch declares reconvergence past the true join: the
			// property GPGPU-Sim guarantees by construction is violated,
			// and lanes would stay masked through the join block.
			name: "wrong-reconv",
			src: `
  mov %r1, %tid               // 0
  setp.lt %p0, %r1, 8         // 1
  @%p0 bra skip reconv=after  // 2: IPDOM is skip, not after
  add %r1, %r1, 1             // 3
skip:
  mov %r2, %r1                // 4
after:
  exit                        // 5
`,
			cat: CatReconvMismatch, pc: 2,
		},
		{
			// A divergent branch trapped in an infinite loop: no path to
			// exit, so reconvergence is undefined.
			name: "no-exit-path",
			src: `
  mov %r1, 0           // 0
loop:
  add %r1, %r1, 1      // 1
  setp.lt %p0, %r1, 9  // 2
  @%p0 bra loop        // 3
  bra loop             // 4
  exit                 // 5: unreachable
`,
			cat: CatNoExitPath, pc: 3,
		},
		{
			name: "unreachable-code",
			src: `
  bra end   // 0
  nop       // 1
  nop       // 2
end:
  exit      // 3
`,
			cat: CatUnreachable, pc: 1,
		},
		{
			name: "sib-on-forward-branch",
			src: `
  mov %r1, %tid
  setp.lt %p0, %r1, 8
  @%p0 bra end reconv=end  !sib  // 2
end:
  exit
`,
			cat: CatSIBNotBackward, pc: 2,
		},
		{
			name: "uninitialized-register",
			src: `
  ld.param %r2, 0
  add %r1, %r3, 1          // 1: %r3 is never written
  st.global [%r2+0], %r1
  exit
`,
			cat: CatUninitReg, pc: 1,
		},
		{
			name: "pred-used-before-definition",
			src: `
  mov %r1, 1
  @%p2 mov %r1, 2          // 1: no setp ever defines %p2
  exit
`,
			cat: CatUninitPred, pc: 1,
		},
		{
			// A guarded setp writes only lanes whose guard holds, so it
			// does not definitely assign its predicate.
			name: "guarded-setp-not-definite",
			src: `
  mov %r1, %tid
  setp.lt %p0, %r1, 8
  @%p0 setp.eq %p1, %r1, 0 // 2: guarded definition only
  @%p1 mov %r1, 0          // 3
  exit
`,
			cat: CatUninitPred, pc: 3,
		},
		{
			name: "dead-write",
			src: `
  ld.param %r2, 0
  mov %r1, 5               // 1: overwritten before any read
  mov %r1, 6
  st.global [%r2+0], %r1
  exit
`,
			cat: CatDeadWrite, pc: 1,
		},
		{
			// The spin test re-reads through the non-coherent L1: the
			// awaited word is written by another thread, so the loop can
			// spin on a stale line forever.
			name: "spin-load-not-volatile",
			src: `
  ld.param %r2, 0
top:
  ld.global %r1, [%r2+0]     // 1: must be ld.volatile
  setp.ne %p0, %r1, 0
  @%p0 bra top    !sib,sync
  exit
`,
			cat: CatSpinLoadNotVolatile, pc: 1,
		},
		{
			name: "unpaired-acquire",
			src: `
  ld.param %r2, 0
  atom.cas %r1, [%r2+0], 0, 1  !acquire,sync  // 1: never released
  exit
`,
			cat: CatUnpairedAcquire, pc: 1,
		},
		{
			name: "unpaired-release",
			src: `
  ld.param %r2, 0
  atom.exch %r1, [%r2+0], 0  !release,sync  // 1: never acquired
  exit
`,
			cat: CatUnpairedRelease, pc: 1,
		},
		{
			name: "sync-backward-branch-missing-sib",
			src: `
  ld.param %r2, 0
top:
  ld.volatile %r1, [%r2+0]
  setp.ne %p0, %r1, 0
  @%p0 bra top    !sync      // 3: busy-wait marked sync but not sib
  exit
`,
			cat: CatSyncBackwardNoSIB, pc: 3,
		},
		{
			// The classic barrier-in-one-arm-of-an-if deadlock: lanes that
			// skip the arm never arrive.
			name: "divergent-barrier-in-arm",
			src: `
  mov %r1, %tid
  setp.lt %p0, %r1, 16
  @!%p0 bra join reconv=join
  bar.sync                  // 3
join:
  exit
`,
			cat: CatDivergentBarrier, pc: 3,
		},
		{
			name: "divergent-barrier-guarded",
			src: `
  mov %r1, %tid
  setp.lt %p0, %r1, 16
  @%p0 bar.sync             // 2
  exit
`,
			cat: CatDivergentBarrier, pc: 2,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := Analyze(mustParse(t, c.name, c.src))
			if !hasFinding(rep.Findings, c.cat, c.pc) {
				t.Errorf("want [%s] at pc %d, got findings: %v", c.cat, c.pc, rep.Findings)
			}
		})
	}
}

// TestWrongReconvOnBuiltProgram mutates a builder-produced program's
// reconvergence point and requires the analyzer to notice: this is the
// invariant the SIMT stack trusts without checking.
func TestWrongReconvOnBuiltProgram(t *testing.T) {
	b := isa.NewBuilder("mut")
	b.Mov(2, isa.S(isa.SpecTID))
	b.Setp(isa.LT, 0, isa.R(2), isa.I(8))
	b.IfA(0, false, 0, func() { b.Add(2, isa.R(2), isa.I(1)) })
	b.St(isa.R(2), isa.I(0), isa.R(2))
	b.Exit()
	p := b.MustBuild()
	if !Analyze(p).Clean() {
		t.Fatalf("built program not clean: %v", Analyze(p).Findings)
	}
	var branch int32 = -1
	for pc := int32(0); pc < p.Len(); pc++ {
		if p.At(pc).Op == isa.OpBra && p.At(pc).Guarded() {
			branch = pc
		}
	}
	if branch < 0 {
		t.Fatal("no guarded branch in built program")
	}
	p.Code[branch].Reconv++ // push reconvergence past the true join
	rep := Analyze(p)
	if !hasFinding(rep.Findings, CatReconvMismatch, branch) {
		t.Fatalf("mutated reconv not detected: %v", rep.Findings)
	}
}

// TestInvalidProgramReported ensures structurally invalid programs come
// back as a single CatInvalid finding rather than a panic in the CFG
// passes.
func TestInvalidProgramReported(t *testing.T) {
	p := &isa.Program{Name: "bad", Code: []isa.Instr{
		{Op: isa.OpSelp, Dst: 0, PSrc: isa.NumPreds, A: isa.I(1), B: isa.I(2), Guard: isa.NoGuard},
		{Op: isa.OpExit, Guard: isa.NoGuard},
	}}
	rep := Analyze(p)
	if len(rep.Findings) != 1 || rep.Findings[0].Category != CatInvalid || rep.Findings[0].PC != -1 {
		t.Fatalf("want one CatInvalid finding at pc -1, got %v", rep.Findings)
	}
	if !strings.Contains(rep.Findings[0].Message, "selp source predicate") {
		t.Fatalf("message = %q", rep.Findings[0].Message)
	}
}

const srcSuppressable = `
  mov %r1, %tid
  setp.lt %p0, %r1, 16
  @!%p0 bra join reconv=join
  bar.sync                  !nolint   // 3: finding suppressed in source
join:
  exit
`

func TestSuppression(t *testing.T) {
	t.Run("ann-nolint", func(t *testing.T) {
		rep := Analyze(mustParse(t, "s", srcSuppressable))
		if !rep.Clean() {
			t.Fatalf("nolint not honored: %v", rep.Findings)
		}
		if !hasFinding(rep.Suppressed, CatDivergentBarrier, 3) {
			t.Fatalf("suppression must stay visible, got %v", rep.Suppressed)
		}
	})
	src := strings.ReplaceAll(srcSuppressable, "!nolint", "")
	t.Run("allow-category", func(t *testing.T) {
		rep := AnalyzeOpts(mustParse(t, "s", src),
			Options{Allow: map[Category][]int32{CatDivergentBarrier: nil}})
		if !rep.Clean() || !hasFinding(rep.Suppressed, CatDivergentBarrier, 3) {
			t.Fatalf("category allowlist not honored: %+v", rep)
		}
	})
	t.Run("allow-pc", func(t *testing.T) {
		rep := AnalyzeOpts(mustParse(t, "s", src),
			Options{Allow: map[Category][]int32{CatDivergentBarrier: {3}}})
		if !rep.Clean() {
			t.Fatalf("pc allowlist not honored: %v", rep.Findings)
		}
		rep = AnalyzeOpts(mustParse(t, "s", src),
			Options{Allow: map[Category][]int32{CatDivergentBarrier: {99}}})
		if rep.Clean() {
			t.Fatal("allowlist for pc 99 must not suppress the finding at 3")
		}
	})
}
