package analysis

import "warpsched/internal/isa"

// CFG is an instruction-granularity control-flow graph of a program. Node
// i (0 ≤ i < N) is the instruction at PC i; node N is a virtual exit that
// OpExit, fall-through past the last instruction, and reconvergence PCs
// one past the end all flow into. Instruction granularity (rather than
// basic blocks) keeps the IPDOM of a branch directly comparable to its
// Reconv field: both are PCs.
//
// Guards on non-branch instructions predicate lanes, not control flow, so
// they contribute no edges; only OpBra and OpExit shape the graph.
type CFG struct {
	Prog *isa.Program
	// N is the instruction count; the virtual exit node is N.
	N int32
	// Succ and Pred have length N+1; Succ[N] is empty.
	Succ [][]int32
	Pred [][]int32
	// Reachable[i] reports whether node i is reachable from entry (PC 0).
	Reachable []bool
}

// Exit returns the virtual exit node id.
func (g *CFG) Exit() int32 { return g.N }

// BuildCFG constructs the CFG of a validated program.
func BuildCFG(p *isa.Program) *CFG {
	n := p.Len()
	g := &CFG{
		Prog:      p,
		N:         n,
		Succ:      make([][]int32, n+1),
		Pred:      make([][]int32, n+1),
		Reachable: make([]bool, n+1),
	}
	for pc := int32(0); pc < n; pc++ {
		in := p.At(pc)
		switch {
		case in.Op == isa.OpExit:
			g.addEdge(pc, n)
		case in.Op == isa.OpBra && !in.Guarded():
			g.addEdge(pc, in.Target)
		case in.Op == isa.OpBra:
			g.addEdge(pc, in.Target)
			if in.Target != pc+1 {
				g.addEdge(pc, pc+1)
			}
		default:
			g.addEdge(pc, pc+1)
		}
	}
	// Entry reachability.
	stack := []int32{0}
	g.Reachable[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succ[v] {
			if !g.Reachable[s] {
				g.Reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	return g
}

func (g *CFG) addEdge(from, to int32) {
	g.Succ[from] = append(g.Succ[from], to)
	g.Pred[to] = append(g.Pred[to], from)
}

// DivergentRegion returns the set of nodes executed while the warp may be
// diverged on the guarded branch at pc: every node reachable from a
// successor of the branch without passing through its reconvergence PC.
// The result is nil for unguarded branches and non-branches.
func (g *CFG) DivergentRegion(pc int32) []bool {
	in := g.Prog.At(pc)
	if in.Op != isa.OpBra || !in.Guarded() || in.Reconv == isa.NoReconv {
		return nil
	}
	region := make([]bool, g.N+1)
	var stack []int32
	for _, s := range g.Succ[pc] {
		if s != in.Reconv && !region[s] {
			region[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succ[v] {
			if s != in.Reconv && !region[s] {
				region[s] = true
				stack = append(stack, s)
			}
		}
	}
	return region
}

// reachingStops walks the CFG backward from the predecessors of `from`
// and returns every node satisfying stop that is reachable without
// passing through an earlier stop node — i.e. the "nearest definitions"
// along each backward path. Used by the dataflow slices.
func (g *CFG) reachingStops(from int32, stop func(int32) bool) []int32 {
	var out []int32
	seen := make(map[int32]bool)
	stack := append([]int32(nil), g.Pred[from]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		if stop(v) {
			out = append(out, v)
			continue
		}
		stack = append(stack, g.Pred[v]...)
	}
	return out
}

// anyReachable reports whether a node satisfying want is reachable from
// pc by following successor edges (pc itself is not tested).
func (g *CFG) anyReachable(pc int32, want func(int32) bool) bool {
	seen := make(map[int32]bool)
	stack := append([]int32(nil), g.Succ[pc]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		if want(v) {
			return true
		}
		stack = append(stack, g.Succ[v]...)
	}
	return false
}
