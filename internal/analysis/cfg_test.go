package analysis

import (
	"testing"

	"warpsched/internal/isa"
)

// The structural shapes the builder emits (and the paper's kernels use),
// written as assembly so the tests are independent of the builder's own
// reconvergence computation. For each shape we pin the successor edges and
// the immediate (post-)dominators of the interesting nodes, and require
// checkCFG to agree that every reconvergence point is the branch's IPDOM.

const srcIfElse = `
  mov %r1, %tid                // 0
  setp.lt %p0, %r1, 16         // 1
  @!%p0 bra else reconv=join   // 2
  mov %r2, 1                   // 3
  bra join                     // 4
else:
  mov %r2, 2                   // 5
join:
  ld.param %r3, 0              // 6
  st.global [%r3+0], %r2       // 7
  exit                         // 8
`

const srcNestedLoops = `
  mov %r1, 0           // 0
outer:
  mov %r2, 0           // 1
inner:
  add %r2, %r2, 1      // 2
  setp.lt %p1, %r2, 4  // 3
  @%p1 bra inner       // 4
  add %r1, %r1, 1      // 5
  setp.lt %p0, %r1, 4  // 6
  @%p0 bra outer       // 7
  exit                 // 8
`

// Bottom-tested spin loop, the Figure 7a shape: the backward branch
// reconverges at its own fall-through.
const srcSpinLoop = `
  ld.param %r2, 0            // 0
top:
  ld.volatile %r1, [%r2+0]   // 1
  setp.ne %p0, %r1, 0        // 2
  @%p0 bra top    !sib,sync  // 3
  exit                       // 4
`

// An unstructured diamond the builder cannot emit: the first branch jumps
// into the middle of the region the second branch also reaches. Both still
// reconverge at the common join, which IPDOM must find.
const srcUnstructured = `
  mov %r1, %tid              // 0
  setp.lt %p0, %r1, 8        // 1
  setp.lt %p1, %r1, 4        // 2
  @%p0 bra mid reconv=join   // 3
  add %r1, %r1, 1            // 4
  @%p1 bra join reconv=join  // 5
mid:
  add %r1, %r1, 2            // 6
join:
  ld.param %r2, 0            // 7
  st.global [%r2+0], %r1     // 8
  exit                       // 9
`

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		succ map[int32][]int32 // spot-checked successor lists
		idom map[int32]int32   // spot-checked immediate dominators
		ipdo map[int32]int32   // spot-checked immediate post-dominators
	}{
		{
			name: "if-else",
			src:  srcIfElse,
			succ: map[int32][]int32{2: {5, 3}, 4: {6}, 8: {9}},
			idom: map[int32]int32{3: 2, 5: 2, 6: 2},
			ipdo: map[int32]int32{2: 6, 3: 4, 5: 6},
		},
		{
			name: "nested-loops",
			src:  srcNestedLoops,
			succ: map[int32][]int32{4: {2, 5}, 7: {1, 8}},
			idom: map[int32]int32{2: 1, 5: 4, 8: 7},
			ipdo: map[int32]int32{4: 5, 7: 8, 1: 2},
		},
		{
			name: "spin-loop",
			src:  srcSpinLoop,
			succ: map[int32][]int32{3: {1, 4}},
			idom: map[int32]int32{4: 3},
			ipdo: map[int32]int32{3: 4, 1: 2},
		},
		{
			name: "unstructured-diamond",
			src:  srcUnstructured,
			succ: map[int32][]int32{3: {6, 4}, 5: {7, 6}},
			idom: map[int32]int32{4: 3, 6: 3, 7: 3},
			ipdo: map[int32]int32{3: 7, 5: 7, 6: 7},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := isa.Parse(c.name, c.src)
			if err != nil {
				t.Fatal(err)
			}
			g := BuildCFG(p)
			for pc, want := range c.succ {
				got := g.Succ[pc]
				if len(got) != len(want) {
					t.Fatalf("Succ[%d] = %v, want %v", pc, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("Succ[%d] = %v, want %v", pc, got, want)
					}
				}
			}
			idom := g.Dominators()
			for pc, want := range c.idom {
				if idom[pc] != want {
					t.Errorf("idom[%d] = %d, want %d", pc, idom[pc], want)
				}
			}
			ipdom := g.PostDominators()
			for pc, want := range c.ipdo {
				if ipdom[pc] != want {
					t.Errorf("ipdom[%d] = %d, want %d", pc, ipdom[pc], want)
				}
			}
			// Every guarded branch's Reconv must equal its IPDOM, and the
			// shapes above are otherwise structurally clean.
			if fs := checkCFG(g); len(fs) != 0 {
				t.Errorf("checkCFG: unexpected findings %v", fs)
			}
		})
	}
}

func TestDivergentRegion(t *testing.T) {
	p, err := isa.Parse("ifelse", srcIfElse)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(p)
	region := g.DivergentRegion(2) // the @!%p0 branch, reconv at 6
	for pc := int32(0); pc <= g.N; pc++ {
		want := pc >= 3 && pc <= 5
		if region[pc] != want {
			t.Errorf("DivergentRegion(2)[%d] = %v, want %v", pc, region[pc], want)
		}
	}
}
