package config

import (
	"strings"
	"testing"
)

func TestTableIIParameters(t *testing.T) {
	f := GTX480()
	if f.NumSMs != 15 || f.WarpsPerSM != 48 || f.SchedulersPerSM != 2 {
		t.Fatalf("GTX480 core counts wrong: %+v", f)
	}
	if f.Mem.L1KB != 16 || f.Mem.L1Assoc != 4 {
		t.Fatalf("GTX480 L1 wrong: %+v", f.Mem)
	}
	if f.CoreClockMHz != 700 {
		t.Fatalf("GTX480 clock wrong: %d", f.CoreClockMHz)
	}
	p := GTX1080Ti()
	if p.NumSMs != 28 || p.WarpsPerSM != 64 || p.SchedulersPerSM != 4 {
		t.Fatalf("GTX1080Ti core counts wrong: %+v", p)
	}
	if p.Mem.L1KB != 48 {
		t.Fatalf("GTX1080Ti L1 wrong: %+v", p.Mem)
	}
	// Pascal atomics are much faster per the paper's §II observation.
	if p.Mem.AtomLat >= f.Mem.AtomLat {
		t.Fatal("Pascal atomic serialization must be below Fermi's")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaledKeepsPerSMStructure(t *testing.T) {
	g := GTX480().Scaled(4)
	if g.NumSMs != 4 {
		t.Fatalf("NumSMs = %d", g.NumSMs)
	}
	full := GTX480()
	if g.WarpsPerSM != full.WarpsPerSM || g.SchedulersPerSM != full.SchedulersPerSM {
		t.Fatal("scaling must not change per-SM structure")
	}
	if g.Mem.L2Banks >= full.Mem.L2Banks || g.Mem.L2Banks < 1 {
		t.Fatalf("L2 bandwidth should scale down but stay ≥ 1: %d", g.Mem.L2Banks)
	}
	if !strings.Contains(g.Name, "4SM") {
		t.Fatalf("scaled name = %q", g.Name)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degenerate scales are no-ops.
	if GTX480().Scaled(0).NumSMs != 15 || GTX480().Scaled(99).NumSMs != 15 {
		t.Fatal("invalid scale should be a no-op")
	}
}

func TestValidateRejectsBadGPU(t *testing.T) {
	mutations := []func(*GPU){
		func(g *GPU) { g.NumSMs = 0 },
		func(g *GPU) { g.WarpsPerSM = 0 },
		func(g *GPU) { g.SchedulersPerSM = 5 }, // 48 % 5 != 0
		func(g *GPU) { g.MaxCTAsPerSM = 0 },
		func(g *GPU) { g.ALULat = 0 },
		func(g *GPU) { g.Mem.L2Banks = 0 },
		func(g *GPU) { g.Mem.AtomLat = 0 },
		func(g *GPU) { g.Mem.LSQDepth = 0 },
		func(g *GPU) { g.MaxCycles = 0 },
	}
	for i, mut := range mutations {
		g := GTX480()
		mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestDDOSDefaultsMatchPaper(t *testing.T) {
	d := DefaultDDOS()
	if d.Hash != HashXOR || d.PathBits != 8 || d.ValueBits != 8 ||
		d.HistoryLen != 8 || d.ConfidenceThreshold != 4 || d.TimeShare {
		t.Fatalf("DDOS defaults diverge from the paper: %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDDOSValidate(t *testing.T) {
	d := DefaultDDOS()
	d.Hash = "CRC"
	if d.Validate() == nil {
		t.Fatal("unknown hash must fail")
	}
	d = DefaultDDOS()
	d.PathBits = 0
	if d.Validate() == nil {
		t.Fatal("zero path bits must fail")
	}
	d = DefaultDDOS()
	d.TimeShare = true
	d.TimeShareEpoch = 0
	if d.Validate() == nil {
		t.Fatal("time sharing without epoch must fail")
	}
}

func TestBOWSDefaultsMatchPaper(t *testing.T) {
	b := DefaultBOWS()
	if b.WindowCycles != 1000 || b.DelayStep != 250 || b.MinLimit != 1000 ||
		b.Frac1 != 0.5 || b.Frac2 != 0.8 {
		t.Fatalf("BOWS defaults diverge from Table II: %+v", b)
	}
	if !b.Adaptive || b.Mode != BOWSDDOS {
		t.Fatal("default BOWS should be adaptive and DDOS-driven")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFixedBOWS(t *testing.T) {
	b := FixedBOWS(3000)
	if b.Adaptive || b.DelayLimit != 3000 {
		t.Fatalf("FixedBOWS wrong: %+v", b)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBOWSValidate(t *testing.T) {
	b := DefaultBOWS()
	b.Mode = "banana"
	if b.Validate() == nil {
		t.Fatal("unknown mode must fail")
	}
	b = DefaultBOWS()
	b.MaxLimit = 10
	b.MinLimit = 100
	if b.Validate() == nil {
		t.Fatal("max < min must fail")
	}
	off := BOWS{Mode: BOWSOff}
	if off.Validate() != nil {
		t.Fatal("off mode needs no other fields")
	}
}
