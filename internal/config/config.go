// Package config defines simulator configurations: the GPU hardware
// parameters of the paper's Table II (GTX480 "Fermi" and GTX1080Ti
// "Pascal"), the BOWS scheduling parameters, and the DDOS detector
// parameters. Scaled variants keep each SM identical but instantiate
// fewer SMs so the full experiment sweep completes in seconds; scaling is
// documented per experiment in EXPERIMENTS.md.
package config

import "fmt"

// SchedulerKind names a baseline warp scheduling policy.
type SchedulerKind string

const (
	// LRR is loose round-robin.
	LRR SchedulerKind = "LRR"
	// GTO is greedy-then-oldest, with the paper's periodic age rotation
	// (Section IV-C) to avoid livelock on HT/ATM.
	GTO SchedulerKind = "GTO"
	// CAWA is Criticality-Aware Warp Acceleration (Lee et al., ISCA'15),
	// the paper's strongest baseline.
	CAWA SchedulerKind = "CAWA"
	// WASP is the prefetch-mimicking priority-group policy (Joseph et
	// al., arXiv 2404.06156): a small group of warps runs ahead of the
	// rest, warming caches for the trailing group, with phase-based
	// group rotation so every warp eventually leads.
	WASP SchedulerKind = "WASP"
)

// Schedulers lists the three baseline policies in paper order. The
// paper's sweeps (fig9, fig15, ...) iterate exactly this set; WASP is
// deliberately excluded so pre-existing experiments keep their run
// lists. Use AllSchedulers for enumeration in docs and CLI messages.
var Schedulers = []SchedulerKind{LRR, GTO, CAWA}

// AllSchedulers lists every scheduler kind the simulator implements,
// baselines first. CLI usage errors and docs/SCHEDULERS.md enumerate
// from here.
var AllSchedulers = []SchedulerKind{LRR, GTO, CAWA, WASP}

// WaSP holds the WASP policy knobs. Both dimensions are part of the
// variant hash, so sweeping either yields distinct manifest records.
type WaSP struct {
	// GroupSize is the number of warp slots (per scheduler unit) in the
	// priority group that runs ahead of the trailing warps.
	GroupSize int
	// RotatePeriod is the phase length in cycles: each period the
	// priority window advances by GroupSize slots, so leadership rotates
	// through the whole unit without any per-pick state.
	RotatePeriod int64
}

// DefaultWaSP returns the evaluation configuration: a 4-warp priority
// group rotated every 20,000 cycles (short enough that every warp of a
// 24-slot unit leads within ~120k cycles, long enough for the leaders'
// misses to resolve and become trailing-group hits).
func DefaultWaSP() WaSP {
	return WaSP{GroupSize: 4, RotatePeriod: 20000}
}

// Desc renders the WASP knobs as the stable descriptor experiment
// sweeps key their points on, e.g. "g4-r20000".
func (w WaSP) Desc() string {
	return fmt.Sprintf("g%d-r%d", w.GroupSize, w.RotatePeriod)
}

// Validate checks WaSP parameters.
func (w *WaSP) Validate() error {
	switch {
	case w.GroupSize < 1:
		return fmt.Errorf("config: wasp: GroupSize must be positive")
	case w.RotatePeriod < 1:
		return fmt.Errorf("config: wasp: RotatePeriod must be positive")
	}
	return nil
}

// DetectorKind selects the spin-detection mechanism BOWS learns
// spin-inducing branches from.
type DetectorKind string

const (
	// DetectDDOS is the paper's hash-based history detector (default).
	DetectDDOS DetectorKind = "DDOS"
	// DetectTAGE is the tagged-geometric path-history spin predictor
	// (TAGE-SIB): per-warp folded path history of synchronization PCs
	// indexes geometrically-spaced tagged tables with useful-bit
	// allocation, replacing DDOS's value-hash match with a
	// path-signature match.
	DetectTAGE DetectorKind = "TAGE"
)

// Detectors lists the implemented detector kinds, paper default first.
var Detectors = []DetectorKind{DetectDDOS, DetectTAGE}

// TAGE holds the TAGE-SIB predictor parameters. Like DDOS, the
// descriptor covers every dimension the sensitivity sweep varies.
type TAGE struct {
	// Tables is the number of tagged tables (3 or 4 in the classic
	// TAGE design space).
	Tables int
	// BaseHist is the shortest history length; table i uses a history
	// of BaseHist * Ratio^i setp records, rounded to at least i+1.
	BaseHist int
	// Ratio is the geometric spacing between successive table history
	// lengths.
	Ratio int
	// IndexBits sizes each tagged table at 2^IndexBits entries.
	IndexBits int
	// TagBits is the partial tag width stored per entry.
	TagBits int
	// ConfidenceThreshold is t: spin-consistent executions of a
	// backward branch needed before it is confirmed as a SIB (same
	// contract as DDOS.ConfidenceThreshold).
	ConfidenceThreshold int
	// UsefulDecayPeriod ages useful bits after this many failed
	// allocations, in the classic TAGE graceful-decay style.
	UsefulDecayPeriod int
}

// DefaultTAGE returns the evaluation configuration: 4 tables with
// histories 4/8/16/32, 64-entry tables, 8-bit tags, the paper's t=4
// confirmation threshold, and useful-bit decay every 64 failed
// allocations.
func DefaultTAGE() TAGE {
	return TAGE{
		Tables:              4,
		BaseHist:            4,
		Ratio:               2,
		IndexBits:           6,
		TagBits:             8,
		ConfidenceThreshold: 4,
		UsefulDecayPeriod:   64,
	}
}

// Desc renders the predictor parameters as the stable descriptor run
// manifests carry in their detector column, e.g. "TAGE-n4-h4x2-i6t8-t4".
// It is disjoint from every DDOS.Desc value, so DDOS and TAGE-SIB rows
// share the sensitivity table without colliding.
func (t TAGE) Desc() string {
	return fmt.Sprintf("TAGE-n%d-h%dx%d-i%dt%d-t%d",
		t.Tables, t.BaseHist, t.Ratio, t.IndexBits, t.TagBits,
		t.ConfidenceThreshold)
}

// Validate checks TAGE parameters.
func (t *TAGE) Validate() error {
	switch {
	case t.Tables < 1 || t.Tables > 8:
		return fmt.Errorf("config: tage: Tables %d out of range [1,8]", t.Tables)
	case t.BaseHist < 1:
		return fmt.Errorf("config: tage: BaseHist must be positive")
	case t.Ratio < 2:
		return fmt.Errorf("config: tage: Ratio must be at least 2")
	case t.IndexBits < 1 || t.IndexBits > 16:
		return fmt.Errorf("config: tage: IndexBits %d out of range [1,16]", t.IndexBits)
	case t.TagBits < 1 || t.TagBits > 16:
		return fmt.Errorf("config: tage: TagBits %d out of range [1,16]", t.TagBits)
	case t.ConfidenceThreshold < 1:
		return fmt.Errorf("config: tage: ConfidenceThreshold must be positive")
	case t.UsefulDecayPeriod < 1:
		return fmt.Errorf("config: tage: UsefulDecayPeriod must be positive")
	}
	return nil
}

// HashKind selects the DDOS history hashing function (Table I).
type HashKind string

const (
	// HashXOR folds the value by XORing m-bit groups (paper default).
	HashXOR HashKind = "XOR"
	// HashModulo keeps the least significant m bits (Figure 7's worked
	// example; causes the MS/HL false detections of Figure 14).
	HashModulo HashKind = "MODULO"
)

// DDOS holds the detector parameters (Table II, DDOS-specific rows).
type DDOS struct {
	// Hash selects XOR or MODULO hashing.
	Hash HashKind
	// PathBits is m, the hashed path entry width in bits.
	PathBits int
	// ValueBits is k, the hashed value entry width in bits.
	ValueBits int
	// HistoryLen is l, the number of setp records the history registers
	// hold.
	HistoryLen int
	// ConfidenceThreshold is t: executions of a backward branch by
	// spinning warps needed to confirm it as a SIB.
	ConfidenceThreshold int
	// TimeShare enables a single history register set per SM shared
	// between warps in epochs of TimeShareEpoch cycles (Table I, last
	// sub-table).
	TimeShare      bool
	TimeShareEpoch int64
	// TableSize is the number of SIB-PT entries (paper: conservative 16).
	TableSize int
}

// DefaultDDOS returns the paper's evaluation configuration:
// "h=XOR, t=4, m=k=8, l=8, time sharing disabled".
func DefaultDDOS() DDOS {
	return DDOS{
		Hash:                HashXOR,
		PathBits:            8,
		ValueBits:           8,
		HistoryLen:          8,
		ConfidenceThreshold: 4,
		TimeShare:           false,
		TimeShareEpoch:      1000,
		TableSize:           16,
	}
}

// BOWSMode selects how BOWS learns spin-inducing branches.
type BOWSMode string

const (
	// BOWSOff disables BOWS (baseline scheduling only).
	BOWSOff BOWSMode = "off"
	// BOWSDDOS drives BOWS from the DDOS SIB-PT (the paper's full
	// system).
	BOWSDDOS BOWSMode = "ddos"
	// BOWSStatic drives BOWS from the ground-truth AnnSIB annotations
	// (the paper's "identified by programmer or compiler" mode); used to
	// isolate scheduler effects from detection effects.
	BOWSStatic BOWSMode = "static"
)

// BOWS holds the scheduler-extension parameters (Table II, BOWS-specific
// rows).
type BOWS struct {
	Mode BOWSMode
	// Adaptive enables the Figure 5 delay-limit controller; otherwise
	// DelayLimit is used as a fixed back-off delay limit.
	Adaptive   bool
	DelayLimit int64
	// Adaptive controller parameters (Figure 5 / Table II).
	WindowCycles int64   // T
	DelayStep    int64   // Delay Step
	MinLimit     int64   // Min Limit
	MaxLimit     int64   // Maximum Limit (see note below)
	Frac1        float64 // FRAC1
	Frac2        float64 // FRAC2
}

// DefaultBOWS returns the paper's Table II BOWS configuration with the
// adaptive delay controller enabled.
//
// Note: Table II lists both Min Limit and Maximum Limit as 1000 cycles,
// which contradicts Table III's 14-bit pending-delay counters ("to enable
// back-off delay up to 10,000 cycles"). We use MaxLimit = 10000 and
// record the discrepancy in DESIGN.md.
func DefaultBOWS() BOWS {
	return BOWS{
		Mode:         BOWSDDOS,
		Adaptive:     true,
		DelayLimit:   1000,
		WindowCycles: 1000,
		DelayStep:    250,
		MinLimit:     1000,
		MaxLimit:     10000,
		Frac1:        0.5,
		Frac2:        0.8,
	}
}

// FixedBOWS returns a BOWS configuration with a fixed delay limit, as in
// the Figure 10 sweep.
func FixedBOWS(limit int64) BOWS {
	b := DefaultBOWS()
	b.Adaptive = false
	b.DelayLimit = limit
	return b
}

// Desc renders the configuration as the stable human-readable descriptor
// run manifests carry in their record keys: "off", "<mode>-adaptive" for
// the Figure 5 controller, or "<mode>-d<limit>" for a fixed delay limit
// (keeping the Figure 10 sweep's points distinguishable). internal/report
// joins manifest records on it.
func (b BOWS) Desc() string {
	if b.Mode == BOWSOff {
		return "off"
	}
	if b.Adaptive {
		return string(b.Mode) + "-adaptive"
	}
	return fmt.Sprintf("%s-d%d", b.Mode, b.DelayLimit)
}

// Desc renders the detector parameters as the stable descriptor run
// manifests carry, e.g. "XOR-m8k8-t4-l8" (+"-sh<epoch>" when time
// sharing is enabled). It covers exactly the dimensions Table I varies;
// internal/report joins the sensitivity table on it.
func (d DDOS) Desc() string {
	s := fmt.Sprintf("%s-m%dk%d-t%d-l%d", d.Hash, d.PathBits, d.ValueBits,
		d.ConfidenceThreshold, d.HistoryLen)
	if d.TimeShare {
		s += fmt.Sprintf("-sh%d", d.TimeShareEpoch)
	}
	return s
}

// Memory holds the memory-hierarchy parameters.
type Memory struct {
	// L1: per-SM data cache.
	L1KB     int
	L1Assoc  int
	L1HitLat int64 // cycles from issue to data for an L1 hit
	L1MSHRs  int   // outstanding missed lines per SM
	L2KB     int   // total L2 capacity
	L2Assoc  int
	L2Lat    int64 // additional cycles for an L2 hit
	L2Banks  int   // transactions serviceable per cycle
	DRAMLat  int64 // additional cycles for DRAM access
	DRAMBw   int   // DRAM transactions serviceable per cycle (all SMs)
	AtomLat  int64 // per-line atomic serialization occupancy at L2
	AtomCost int64 // L2 bank tokens consumed per atomic transaction
	// QueueLocks enables the idealized blocking queue-lock comparator
	// (an HQL-style mechanism, Yilmazer & Kaeli via paper §VII): an
	// annotated lock-acquire CAS that would fail parks at the L2 atomic
	// unit and is granted in FIFO order when the lock is released, so
	// acquires never spin. Used by the fig16 "ideal blocking" curve.
	QueueLocks bool
	LSQDepth   int // per-SM load/store queue entries
	MaxPerWarp int // outstanding memory instructions per warp
}

// GPU is a full simulator configuration.
type GPU struct {
	Name string
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// WarpsPerSM is the number of resident warp slots per SM
	// (threads/SM ÷ 32).
	WarpsPerSM int
	// SchedulersPerSM is the number of warp schedulers per SM; warps are
	// statically partitioned among them.
	SchedulersPerSM int
	// MaxCTAsPerSM bounds concurrently resident CTAs per SM.
	MaxCTAsPerSM int
	// ALULat is the ALU pipeline depth (issue to writeback).
	ALULat int64
	// GTORotatePeriod is the paper's anti-livelock age rotation period
	// for GTO, in cycles (Section IV-C: 50,000).
	GTORotatePeriod int64
	// MaxCycles aborts the simulation if exceeded (livelock watchdog).
	MaxCycles int64

	Mem Memory
	// CoreClockMHz and MemClockMHz are used only for reporting; the
	// simulator is single-clock with memory latencies expressed in core
	// cycles.
	CoreClockMHz int
	MemClockMHz  int
}

// GTX480 returns the paper's Fermi configuration (Table II): 15 SMs,
// 1536 threads/SM (48 warps), 2 schedulers/SM, 16 KB L1, 64 KB/channel L2
// (6 channels).
func GTX480() GPU {
	return GPU{
		Name:            "GTX480",
		NumSMs:          15,
		WarpsPerSM:      48,
		SchedulersPerSM: 2,
		MaxCTAsPerSM:    8,
		ALULat:          4,
		GTORotatePeriod: 50000,
		MaxCycles:       200_000_000,
		CoreClockMHz:    700,
		MemClockMHz:     924,
		Mem: Memory{
			L1KB: 16, L1Assoc: 4, L1HitLat: 28, L1MSHRs: 32,
			L2KB: 384, L2Assoc: 8, L2Lat: 120, L2Banks: 6,
			// Fermi-era atomics serialize heavily on a contended line
			// (the paper's §II notes atomic performance improved by
			// orders of magnitude in later generations).
			DRAMLat: 220, DRAMBw: 4, AtomLat: 32, AtomCost: 1,
			LSQDepth: 32, MaxPerWarp: 2,
		},
	}
}

// GTX1080Ti returns the paper's Pascal configuration (Table II): 28 SMs,
// 2048 threads/SM (64 warps), 4 schedulers/SM, 48 KB L1, 128 KB/channel
// L2. The paper notes Pascal's higher core:memory clock ratio; we model it
// with longer memory latencies in core cycles.
func GTX1080Ti() GPU {
	return GPU{
		Name:            "GTX1080Ti",
		NumSMs:          28,
		WarpsPerSM:      64,
		SchedulersPerSM: 4,
		MaxCTAsPerSM:    8,
		ALULat:          4,
		GTORotatePeriod: 50000,
		MaxCycles:       200_000_000,
		CoreClockMHz:    1481,
		MemClockMHz:     2750,
		Mem: Memory{
			L1KB: 48, L1Assoc: 6, L1HitLat: 32, L1MSHRs: 48,
			L2KB: 1408, L2Assoc: 16, L2Lat: 160, L2Banks: 11,
			// Pascal atomics are far faster per generation (paper §II).
			DRAMLat: 280, DRAMBw: 8, AtomLat: 8, AtomCost: 1,
			LSQDepth: 48, MaxPerWarp: 2,
		},
	}
}

// Scaled returns a copy of g with n SMs (and L2/DRAM bandwidth scaled
// proportionally, never below 1) so small experiment runs keep a
// comparable compute:memory balance. Per-SM structure is unchanged.
func (g GPU) Scaled(n int) GPU {
	if n <= 0 || n >= g.NumSMs {
		return g
	}
	s := g
	ratio := float64(n) / float64(g.NumSMs)
	s.Name = fmt.Sprintf("%s/%dSM", g.Name, n)
	s.NumSMs = n
	scale := func(v int) int {
		w := int(float64(v)*ratio + 0.5)
		if w < 1 {
			w = 1
		}
		return w
	}
	s.Mem.L2Banks = scale(g.Mem.L2Banks)
	s.Mem.DRAMBw = scale(g.Mem.DRAMBw)
	s.Mem.L2KB = scale(g.Mem.L2KB)
	return s
}

// Validate checks the configuration for internally consistent values.
func (g *GPU) Validate() error {
	switch {
	case g.NumSMs <= 0:
		return fmt.Errorf("config: %s: NumSMs must be positive", g.Name)
	case g.WarpsPerSM <= 0:
		return fmt.Errorf("config: %s: WarpsPerSM must be positive", g.Name)
	case g.SchedulersPerSM <= 0:
		return fmt.Errorf("config: %s: SchedulersPerSM must be positive", g.Name)
	case g.WarpsPerSM%g.SchedulersPerSM != 0:
		return fmt.Errorf("config: %s: WarpsPerSM (%d) must divide evenly among %d schedulers", g.Name, g.WarpsPerSM, g.SchedulersPerSM)
	case g.MaxCTAsPerSM <= 0:
		return fmt.Errorf("config: %s: MaxCTAsPerSM must be positive", g.Name)
	case g.ALULat <= 0:
		return fmt.Errorf("config: %s: ALULat must be positive", g.Name)
	case g.Mem.L1KB <= 0 || g.Mem.L1Assoc <= 0 || g.Mem.L2KB <= 0 || g.Mem.L2Assoc <= 0:
		return fmt.Errorf("config: %s: cache geometry must be positive", g.Name)
	case g.Mem.L2Banks <= 0 || g.Mem.DRAMBw <= 0:
		return fmt.Errorf("config: %s: memory bandwidth must be positive", g.Name)
	case g.Mem.AtomLat <= 0 || g.Mem.AtomCost <= 0:
		return fmt.Errorf("config: %s: atomic costs must be positive", g.Name)
	case g.Mem.LSQDepth <= 0 || g.Mem.MaxPerWarp <= 0 || g.Mem.L1MSHRs <= 0:
		return fmt.Errorf("config: %s: queue depths must be positive", g.Name)
	case g.MaxCycles <= 0:
		return fmt.Errorf("config: %s: MaxCycles must be positive", g.Name)
	}
	return nil
}

// Validate checks DDOS parameters.
func (d *DDOS) Validate() error {
	switch {
	case d.Hash != HashXOR && d.Hash != HashModulo:
		return fmt.Errorf("config: ddos: unknown hash %q", d.Hash)
	case d.PathBits < 1 || d.PathBits > 16:
		return fmt.Errorf("config: ddos: PathBits %d out of range [1,16]", d.PathBits)
	case d.ValueBits < 1 || d.ValueBits > 16:
		return fmt.Errorf("config: ddos: ValueBits %d out of range [1,16]", d.ValueBits)
	case d.HistoryLen < 1:
		return fmt.Errorf("config: ddos: HistoryLen must be positive")
	case d.ConfidenceThreshold < 1:
		return fmt.Errorf("config: ddos: ConfidenceThreshold must be positive")
	case d.TableSize < 1:
		return fmt.Errorf("config: ddos: TableSize must be positive")
	case d.TimeShare && d.TimeShareEpoch <= 0:
		return fmt.Errorf("config: ddos: TimeShareEpoch must be positive when TimeShare is on")
	}
	return nil
}

// Validate checks BOWS parameters.
func (b *BOWS) Validate() error {
	if b.Mode == BOWSOff {
		return nil
	}
	switch {
	case b.Mode != BOWSDDOS && b.Mode != BOWSStatic:
		return fmt.Errorf("config: bows: unknown mode %q", b.Mode)
	case b.DelayLimit < 0:
		return fmt.Errorf("config: bows: DelayLimit must be non-negative")
	case b.Adaptive && (b.WindowCycles <= 0 || b.DelayStep <= 0):
		return fmt.Errorf("config: bows: adaptive controller needs positive window and step")
	case b.Adaptive && (b.MinLimit < 0 || b.MaxLimit < b.MinLimit):
		return fmt.Errorf("config: bows: adaptive limits invalid (min %d, max %d)", b.MinLimit, b.MaxLimit)
	}
	return nil
}
