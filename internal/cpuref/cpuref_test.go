package cpuref

import "testing"

func TestHashtableMatchesReference(t *testing.T) {
	m := DefaultCPU()
	keys := []uint32{5, 13, 5, 21, 8}
	res := m.RunHashtable(keys, 8)
	// Bucket 5 holds keys 5, 13, 5, 21 (13%8 = 21%8 = 5), newest first.
	if res.Heads[5] != 3 {
		t.Fatalf("head[5] = %d, want newest insert 3", res.Heads[5])
	}
	if res.Nexts[3] != 2 || res.Nexts[2] != 1 || res.Nexts[1] != 0 || res.Nexts[0] != -1 {
		t.Fatalf("chain wrong: %v", res.Nexts)
	}
	if res.Heads[0] != 4 { // 8%8 = 0
		t.Fatalf("head[0] = %d", res.Heads[0])
	}
	if res.Cycles <= 0 || res.Millis <= 0 {
		t.Fatal("cost model must charge time")
	}
}

func TestCostFlatInBuckets(t *testing.T) {
	// The serial CPU cost is (nearly) independent of the bucket count —
	// the property Figure 1b relies on.
	m := DefaultCPU()
	keys := make([]uint32, 10000)
	for i := range keys {
		keys[i] = uint32(i * 7919)
	}
	a := m.RunHashtable(keys, 128).Cycles
	b := m.RunHashtable(keys, 4096).Cycles
	if a != b {
		t.Fatalf("CPU cost should be flat in bucket count: %d vs %d", a, b)
	}
}

func TestLLCPenalty(t *testing.T) {
	m := DefaultCPU()
	m.LLCWords = 10 // force the miss penalty
	small := DefaultCPU()
	keys := make([]uint32, 1000)
	if m.RunHashtable(keys, 8).Cycles <= small.RunHashtable(keys, 8).Cycles {
		t.Fatal("outgrowing the LLC must cost more")
	}
}
