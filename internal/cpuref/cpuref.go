// Package cpuref is the scalar CPU baseline of the paper's Figure 1b: a
// single-threaded hashtable insertion running the same algorithm as the
// GPU kernel, with a simple cost model (instructions × CPI plus a cache
// penalty that grows when the working set outgrows the modeled LLC). The
// paper measured an Intel i7-4770K at 3.5 GHz; only the *shape* of the
// comparison matters (GPU wins at low contention, CPU is flat in bucket
// count), so the model is deliberately simple and its parameters are
// documented constants.
package cpuref

// CPUModel holds the cost-model parameters.
type CPUModel struct {
	// ClockMHz converts cycles to time; 3500 models the i7-4770K.
	ClockMHz int
	// InsnPerInsert is the instruction path length of one serial
	// hashtable insertion (hash, load head, two stores, loop overhead).
	InsnPerInsert float64
	// CPI is the base cycles per instruction of the scalar core.
	CPI float64
	// MissPenalty is the extra cycles charged per insertion when the
	// table working set exceeds LLCWords.
	MissPenalty float64
	LLCWords    int
}

// DefaultCPU returns the i7-4770K-class model.
func DefaultCPU() CPUModel {
	return CPUModel{
		ClockMHz:      3500,
		InsnPerInsert: 30,
		CPI:           0.8,
		MissPenalty:   120,
		LLCWords:      2 << 20, // 8 MB LLC
	}
}

// HashtableResult reports the modeled serial run.
type HashtableResult struct {
	Cycles int64
	Millis float64
	// Heads is the resulting table (bucket → chain head), for parity
	// checks against the GPU kernel's verifier.
	Heads []int32
	Nexts []int32
}

// RunHashtable inserts keys into a buckets-sized chained hashtable
// serially and returns modeled time.
func (m CPUModel) RunHashtable(keys []uint32, buckets int) HashtableResult {
	heads := make([]int32, buckets)
	for i := range heads {
		heads[i] = -1
	}
	nexts := make([]int32, len(keys))
	for i, k := range keys {
		b := k % uint32(buckets)
		nexts[i] = heads[b]
		heads[b] = int32(i)
	}
	perInsert := m.InsnPerInsert * m.CPI
	if 2*len(keys)+buckets > m.LLCWords {
		perInsert += m.MissPenalty
	}
	cycles := int64(perInsert * float64(len(keys)))
	return HashtableResult{
		Cycles: cycles,
		Millis: float64(cycles) / (float64(m.ClockMHz) * 1000),
		Heads:  heads,
		Nexts:  nexts,
	}
}
