package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCmpEval(t *testing.T) {
	cases := []struct {
		cmp  Cmp
		a, b int32
		want bool
	}{
		{EQ, 5, 5, true}, {EQ, 5, 6, false},
		{NE, 5, 6, true}, {NE, 5, 5, false},
		{LT, -1, 0, true}, {LT, 0, -1, false}, {LT, 3, 3, false},
		{LE, 3, 3, true}, {LE, 4, 3, false},
		{GT, 0, -1, true}, {GT, -1, 0, false},
		{GE, 3, 3, true}, {GE, 2, 3, false},
		// Signedness: 0xFFFFFFFF is -1, less than 0.
		{LT, -1, 1, true}, {GT, 1, -1, true},
	}
	for _, c := range cases {
		if got := c.cmp.Eval(uint32(c.a), uint32(c.b)); got != c.want {
			t.Errorf("%v.Eval(%d, %d) = %v, want %v", c.cmp, c.a, c.b, got, c.want)
		}
	}
}

func TestCmpEvalComplementary(t *testing.T) {
	// LT and GE partition, as do GT/LE and EQ/NE (property-based).
	f := func(a, b uint32) bool {
		return LT.Eval(a, b) != GE.Eval(a, b) &&
			GT.Eval(a, b) != LE.Eval(a, b) &&
			EQ.Eval(a, b) != NE.Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpClassification(t *testing.T) {
	for _, op := range []Op{OpLd, OpSt, OpAtomCAS, OpAtomExch, OpAtomAdd, OpAtomMax} {
		if !op.IsMem() {
			t.Errorf("%v should be a memory op", op)
		}
	}
	for _, op := range []Op{OpAdd, OpBra, OpSetp, OpBar, OpMembar, OpExit, OpNop} {
		if op.IsMem() {
			t.Errorf("%v should not be a memory op", op)
		}
	}
	for _, op := range []Op{OpAtomCAS, OpAtomExch, OpAtomAdd, OpAtomMax} {
		if !op.IsAtomic() {
			t.Errorf("%v should be atomic", op)
		}
	}
	if OpLd.IsAtomic() || OpSt.IsAtomic() {
		t.Error("ld/st must not be atomic")
	}
}

func TestWritesReg(t *testing.T) {
	writes := []Op{OpMov, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpMin, OpMax,
		OpAnd, OpOr, OpXor, OpShl, OpShr, OpSelp, OpLd, OpAtomCAS,
		OpAtomExch, OpAtomAdd, OpAtomMax, OpLdParam}
	for _, op := range writes {
		in := Instr{Op: op}
		if !in.WritesReg() {
			t.Errorf("%v should write a register", op)
		}
	}
	for _, op := range []Op{OpSt, OpBra, OpSetp, OpBar, OpMembar, OpExit, OpNop} {
		in := Instr{Op: op}
		if in.WritesReg() {
			t.Errorf("%v should not write a register", op)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	in := Instr{Op: OpAtomCAS, A: R(1), B: I(3), C: R(2), D: R(7)}
	got := in.SrcRegs(nil)
	want := []Reg{1, 2, 7}
	if len(got) != len(want) {
		t.Fatalf("SrcRegs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SrcRegs = %v, want %v", got, want)
		}
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		want string
	}{
		{"empty", Program{Name: "e"}, "empty"},
		{"bad target", Program{Name: "b", Code: []Instr{
			{Op: OpBra, Target: 5, Reconv: NoReconv, Guard: NoGuard},
		}}, "out of range"},
		{"cond without reconv", Program{Name: "c", Code: []Instr{
			{Op: OpBra, Target: 0, Reconv: NoReconv, Guard: 0},
			{Op: OpExit, Guard: NoGuard},
		}}, "without reconvergence"},
		{"bad dest reg", Program{Name: "d", Code: []Instr{
			{Op: OpMov, Dst: NumRegs, A: I(0), Guard: NoGuard},
		}}, "out of range"},
		{"selp source pred out of range", Program{Name: "s", Code: []Instr{
			{Op: OpSelp, Dst: 0, PSrc: NumPreds, A: I(1), B: I(2), Guard: NoGuard},
			{Op: OpExit, Guard: NoGuard},
		}}, "selp source predicate"},
		{"guard pred out of range", Program{Name: "g", Code: []Instr{
			{Op: OpMov, Dst: 0, A: I(0), Guard: NumPreds},
			{Op: OpExit, Guard: NoGuard},
		}}, "guard predicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.prog.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestOperandString(t *testing.T) {
	if R(5).String() != "%r5" || I(-3).String() != "-3" || S(SpecTID).String() != "%tid" {
		t.Errorf("operand rendering wrong: %s %s %s", R(5), I(-3), S(SpecTID))
	}
}
