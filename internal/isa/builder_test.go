package isa

import (
	"strings"
	"testing"
)

func TestBuilderLabelsAndFixups(t *testing.T) {
	b := NewBuilder("t")
	b.Mov(1, I(0))
	b.Label("top")
	b.Add(1, R(1), I(1))
	b.Setp(LT, 0, R(1), I(10))
	b.BraP(0, false, "top", "")
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := p.At(3)
	if br.Target != 1 {
		t.Errorf("branch target = %d, want 1", br.Target)
	}
	if br.Reconv != 4 {
		t.Errorf("backward branch reconv = %d, want fall-through 4", br.Reconv)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Bra("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("Build() = %v, want undefined label error", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Exit()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("Build() = %v, want duplicate label error", err)
	}
}

func TestBuilderForwardCondNeedsReconv(t *testing.T) {
	b := NewBuilder("t")
	b.Setp(EQ, 0, I(0), I(0))
	b.BraP(0, false, "fwd", "")
	b.Nop()
	b.Label("fwd")
	b.Exit()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "reconvergence label") {
		t.Fatalf("Build() = %v, want reconvergence error", err)
	}
}

func TestBuilderIfShape(t *testing.T) {
	b := NewBuilder("t")
	b.Setp(EQ, 1, I(0), I(0))
	b.If(1, false, func() { b.Mov(2, I(7)) })
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := p.At(1)
	if br.Op != OpBra || !br.Guarded() || !br.GuardNeg {
		t.Fatalf("If should emit a negated guarded branch, got %s", Disasm(br))
	}
	if br.Target != 3 || br.Reconv != 3 {
		t.Fatalf("If branch target/reconv = %d/%d, want 3/3", br.Target, br.Reconv)
	}
}

func TestBuilderIfElseShape(t *testing.T) {
	b := NewBuilder("t")
	b.Setp(EQ, 1, I(0), I(0))
	b.IfElse(1, false,
		func() { b.Mov(2, I(1)) },
		func() { b.Mov(2, I(2)) })
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 0 setp; 1 @!p1 bra else(4) reconv end(5); 2 mov; 3 bra end; 4 mov; 5 exit
	br := p.At(1)
	if br.Target != 4 || br.Reconv != 5 {
		t.Fatalf("IfElse guard branch target/reconv = %d/%d, want 4/5", br.Target, br.Reconv)
	}
	skip := p.At(3)
	if skip.Guarded() || skip.Target != 5 {
		t.Fatalf("IfElse skip branch wrong: %s", Disasm(skip))
	}
}

func TestBuilderWhileShape(t *testing.T) {
	b := NewBuilder("t")
	b.Mov(1, I(0))
	b.While(0, false,
		func() { b.Setp(LT, 0, R(1), I(4)) },
		func() { b.Add(1, R(1), I(1)) })
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 0 mov; 1 setp; 2 @!p0 bra 5 (reconv 5); 3 add; 4 bra 1; 5 exit
	exitBr := p.At(2)
	if exitBr.Target != 5 || exitBr.Reconv != 5 {
		t.Fatalf("While exit branch target/reconv = %d/%d, want 5/5", exitBr.Target, exitBr.Reconv)
	}
	back := p.At(4)
	if back.Guarded() || back.Target != 1 {
		t.Fatalf("While backward branch wrong: %s", Disasm(back))
	}
}

func TestBuilderDoWhileSIBAnnotation(t *testing.T) {
	b := NewBuilder("t")
	b.DoWhile(0, false, true,
		func() { b.Nop() },
		func() { b.Setp(EQ, 0, I(0), I(0)) })
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TrueSIBs) != 1 || p.TrueSIBs[0] != 2 {
		t.Fatalf("TrueSIBs = %v, want [2]", p.TrueSIBs)
	}
	br := p.At(2)
	if !br.HasAnn(AnnSIB) || br.Target != 0 || br.Reconv != 3 {
		t.Fatalf("DoWhile SIB branch wrong: %s", Disasm(br))
	}
}

func TestBuilderForZeroTrip(t *testing.T) {
	b := NewBuilder("t")
	b.For(1, I(5), I(5), 1, 0, func() { b.Mov(2, I(1)) })
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The top guard must branch past the body when start >= limit.
	guard := p.At(2)
	if guard.Op != OpBra || !guard.Guarded() {
		t.Fatalf("For should emit a guarded top test, got %s", Disasm(guard))
	}
}

func TestBuilderAnnotateScope(t *testing.T) {
	b := NewBuilder("t")
	b.Nop()
	b.Annotate(AnnSync, func() {
		b.Nop()
		b.Annotate(AnnLockAcquire, func() { b.Nop() })
		b.Nop()
	})
	b.Nop()
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0).Ann != 0 || p.At(4).Ann != 0 {
		t.Error("annotation leaked outside Annotate scope")
	}
	if !p.At(1).HasAnn(AnnSync) || !p.At(3).HasAnn(AnnSync) {
		t.Error("AnnSync not applied inside scope")
	}
	if !p.At(2).HasAnn(AnnSync) || !p.At(2).HasAnn(AnnLockAcquire) {
		t.Error("nested annotations must combine")
	}
}

func TestBuilderALUBadOpcode(t *testing.T) {
	b := NewBuilder("t")
	b.ALU(OpSetp, 1, R(0), R(0))
	if _, err := b.Build(); err == nil {
		t.Fatal("ALU with non-ALU opcode must fail Build")
	}
}

func TestListingContainsLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Label("entry")
	b.Nop()
	b.Exit()
	p := b.MustBuild()
	if !strings.Contains(p.Listing(), "entry:") {
		t.Error("Listing should render labels")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on invalid program")
		}
	}()
	b := NewBuilder("t")
	b.Bra("missing")
	b.MustBuild()
}
