package isa

import (
	"strings"
	"testing"
)

const spinLockSrc = `
// Figure 7a-style spin lock: CAS acquire, critical section, in-loop release.
  ld.param %r10, 0        // lock base
  ld.param %r11, 1        // counter base
  mov %r6, 0              // done = 0
top:
  atom.cas %r7, [%r10+0], 0, 1   !acquire,sync
  setp.eq %p1, %r7, 0            !sync
  @!%p1 bra skip reconv=skip
  ld.volatile %r8, [%r11+0]
  add %r8, %r8, 1
  st.global [%r11+0], %r8
  mov %r6, 1
  membar                         !sync
  atom.exch %r9, [%r10+0], 0     !release,sync
skip:
  setp.eq %p2, %r6, 0            !sync
  @%p2 bra top                   !sib,sync
  exit
`

func TestParseSpinLock(t *testing.T) {
	p, err := Parse("spin", spinLockSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TrueSIBs) != 1 {
		t.Fatalf("TrueSIBs = %v", p.TrueSIBs)
	}
	sib := p.At(p.TrueSIBs[0])
	if sib.Op != OpBra || !sib.HasAnn(AnnSIB) || !sib.HasAnn(AnnSync) {
		t.Fatalf("SIB wrong: %s", Disasm(sib))
	}
	if sib.Target >= p.TrueSIBs[0] {
		t.Fatal("SIB must be a backward branch")
	}
	// CAS carries the acquire annotation and parses all four operands.
	var cas *Instr
	for pc := int32(0); pc < p.Len(); pc++ {
		if p.At(pc).Op == OpAtomCAS {
			cas = p.At(pc)
		}
	}
	if cas == nil || !cas.HasAnn(AnnLockAcquire) || cas.C.Imm != 0 || cas.D.Imm != 1 {
		t.Fatalf("CAS wrong: %v", cas)
	}
	// The volatile load must carry the Vol flag.
	foundVol := false
	for pc := int32(0); pc < p.Len(); pc++ {
		if in := p.At(pc); in.Op == OpLd && in.Vol {
			foundVol = true
		}
	}
	if !foundVol {
		t.Fatal("ld.volatile not parsed as volatile")
	}
}

func TestParseMatchesBuilder(t *testing.T) {
	// The same program written both ways must produce identical code.
	src := `
  mov %r1, %gtid
  mov %r2, 0
loop:
  add %r2, %r2, %r1
  setp.lt %p0, %r2, 100
  @%p0 bra loop
  st.global [%r1+64], %r2
  exit
`
	parsed, err := Parse("x", src)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("x")
	b.Mov(1, S(SpecGTID))
	b.Mov(2, I(0))
	b.Label("loop")
	b.Add(2, R(2), R(1))
	b.Setp(LT, 0, R(2), I(100))
	b.BraP(0, false, "loop", "")
	b.St(R(1), I(64), R(2))
	b.Exit()
	built := b.MustBuild()
	if parsed.Len() != built.Len() {
		t.Fatalf("lengths differ: %d vs %d", parsed.Len(), built.Len())
	}
	for pc := int32(0); pc < built.Len(); pc++ {
		if Disasm(parsed.At(pc)) != Disasm(built.At(pc)) {
			t.Fatalf("pc %d: %q vs %q", pc, Disasm(parsed.At(pc)), Disasm(built.At(pc)))
		}
	}
}

func TestParseSpecialsAndSelp(t *testing.T) {
	p, err := Parse("s", `
  mov %r1, %laneid
  mov %r2, %ntid
  mov %r3, %ctaid
  mov %r4, %clock
  setp.ge %p1, %r1, 16
  selp %r5, 1, 2, %p1
  ld.param %r6, 3
  exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(5).Op != OpSelp || p.At(5).PSrc != 1 {
		t.Fatalf("selp wrong: %s", Disasm(p.At(5)))
	}
	if p.At(6).Param != 3 {
		t.Fatal("ld.param index wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"frobnicate %r1, 2", "unknown opcode"},
		{"mov %r99, 1", "bad register"},
		{"setp.zz %p0, %r1, 2", "unknown comparison"},
		{"@%p0 bra fwd\nnop\nfwd:\nexit", "reconvergence"},
		{"bra nowhere", "undefined label"},
		{"atom.cas %r1, [%r2], 0", "atom.cas needs"},
		{"ld.global %r1, %r2", "expected [address]"},
		{"mov %r1, 1 !shiny", "unknown annotation"},
		{"add %r1, %r2", "needs dst, a, b"},
	}
	for _, c := range cases {
		_, err := Parse("bad", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestParseAddressForms(t *testing.T) {
	p, err := Parse("addr", `
  ld.global %r1, [128]
  ld.global %r2, [%r1]
  ld.global %r3, [%r1+%r2]
  ld.global %r4, [%r1+12]
  exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0).A.Imm != 128 || p.At(0).B.Imm != 0 {
		t.Fatal("[imm] form wrong")
	}
	if p.At(1).A.Reg != 1 || p.At(1).B.Imm != 0 {
		t.Fatal("[reg] form wrong")
	}
	if p.At(2).B.Reg != 2 || p.At(2).B.Kind != OpdReg {
		t.Fatal("[reg+reg] form wrong")
	}
	if p.At(3).B.Imm != 12 {
		t.Fatal("[reg+imm] form wrong")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad source")
		}
	}()
	MustParse("bad", "wat")
}
