package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Disasm renders one instruction in a PTX-flavoured syntax.
func Disasm(in *Instr) string {
	var sb strings.Builder
	if in.Guarded() {
		if in.GuardNeg {
			sb.WriteString(fmt.Sprintf("@!%%p%d ", in.Guard))
		} else {
			sb.WriteString(fmt.Sprintf("@%%p%d ", in.Guard))
		}
	}
	switch in.Op {
	case OpNop, OpExit, OpBar, OpMembar:
		sb.WriteString(in.Op.String())
	case OpMov:
		fmt.Fprintf(&sb, "mov %%r%d, %s", in.Dst, in.A)
	case OpSetp:
		fmt.Fprintf(&sb, "setp.%s %%p%d, %s, %s", in.Cmp, in.PDst, in.A, in.B)
	case OpSelp:
		fmt.Fprintf(&sb, "selp %%r%d, %s, %s, %%p%d", in.Dst, in.A, in.B, in.PSrc)
	case OpBra:
		fmt.Fprintf(&sb, "bra %d", in.Target)
		if in.Reconv != NoReconv {
			fmt.Fprintf(&sb, " (reconv %d)", in.Reconv)
		}
	case OpLd:
		fmt.Fprintf(&sb, "ld.global %%r%d, [%s+%s]", in.Dst, in.A, in.B)
	case OpSt:
		fmt.Fprintf(&sb, "st.global [%s+%s], %s", in.A, in.B, in.C)
	case OpAtomCAS:
		fmt.Fprintf(&sb, "atom.cas %%r%d, [%s+%s], %s, %s", in.Dst, in.A, in.B, in.C, in.D)
	case OpAtomExch:
		fmt.Fprintf(&sb, "atom.exch %%r%d, [%s+%s], %s", in.Dst, in.A, in.B, in.C)
	case OpAtomAdd:
		fmt.Fprintf(&sb, "atom.add %%r%d, [%s+%s], %s", in.Dst, in.A, in.B, in.C)
	case OpAtomMax:
		fmt.Fprintf(&sb, "atom.max %%r%d, [%s+%s], %s", in.Dst, in.A, in.B, in.C)
	case OpLdParam:
		fmt.Fprintf(&sb, "ld.param %%r%d, [param%d]", in.Dst, in.Param)
	default:
		fmt.Fprintf(&sb, "%s %%r%d, %s, %s", in.Op, in.Dst, in.A, in.B)
	}
	var anns []string
	for _, a := range [...]struct {
		bit  Ann
		name string
	}{
		{AnnSIB, "SIB"}, {AnnLockAcquire, "acquire"}, {AnnLockRelease, "release"},
		{AnnWaitCheck, "waitcheck"}, {AnnSync, "sync"},
	} {
		if in.HasAnn(a.bit) {
			anns = append(anns, a.name)
		}
	}
	if in.HasAnn(AnnNoLint) {
		anns = append(anns, nolintTokens(in)...)
	}
	if len(anns) > 0 {
		fmt.Fprintf(&sb, "  ; %s", strings.Join(anns, ","))
	}
	return sb.String()
}

// nolintTokens renders an instruction's nolint annotation in the comma
// list Parse accepts: bare "nolint", or "nolint <class>" followed by the
// remaining classes as their own tokens. Emitted last so the class list
// cannot swallow other annotation names.
func nolintTokens(in *Instr) []string {
	if len(in.NoLint) == 0 {
		return []string{"nolint"}
	}
	toks := []string{"nolint " + in.NoLint[0]}
	return append(toks, in.NoLint[1:]...)
}

// Assembly renders the program in the exact syntax accepted by Parse, so
// that Parse(name, p.Assembly()) rebuilds an equivalent program: same
// opcodes, operands, guards, branch targets, reconvergence PCs and
// annotations. Branch targets and reconvergence points become generated
// "L<pc>" labels; reconvergence is always emitted explicitly (reconv=L)
// so backward and forward conditional branches round-trip identically.
func (p *Program) Assembly() string {
	needLabel := make(map[int32]bool)
	for pc := range p.Code {
		in := &p.Code[pc]
		if in.Op != OpBra {
			continue
		}
		needLabel[in.Target] = true
		if in.Guarded() && in.Reconv != NoReconv {
			needLabel[in.Reconv] = true
		}
	}
	lbl := func(pc int32) string { return fmt.Sprintf("L%d", pc) }

	opd := func(o Operand) string { return o.String() } // "_" never reachable for used slots
	addr := func(in *Instr) string {
		if in.B.Kind == OpdNone {
			return fmt.Sprintf("[%s]", opd(in.A))
		}
		return fmt.Sprintf("[%s+%s]", opd(in.A), opd(in.B))
	}

	var sb strings.Builder
	for pc := range p.Code {
		if needLabel[int32(pc)] {
			fmt.Fprintf(&sb, "%s:\n", lbl(int32(pc)))
		}
		in := &p.Code[pc]
		sb.WriteString("  ")
		if in.Guarded() {
			if in.GuardNeg {
				fmt.Fprintf(&sb, "@!%%p%d ", in.Guard)
			} else {
				fmt.Fprintf(&sb, "@%%p%d ", in.Guard)
			}
		}
		switch in.Op {
		case OpNop, OpExit, OpBar, OpMembar:
			sb.WriteString(in.Op.String())
		case OpMov:
			fmt.Fprintf(&sb, "mov %%r%d, %s", in.Dst, opd(in.A))
		case OpSetp:
			fmt.Fprintf(&sb, "setp.%s %%p%d, %s, %s", in.Cmp, in.PDst, opd(in.A), opd(in.B))
		case OpSelp:
			fmt.Fprintf(&sb, "selp %%r%d, %s, %s, %%p%d", in.Dst, opd(in.A), opd(in.B), in.PSrc)
		case OpBra:
			fmt.Fprintf(&sb, "bra %s", lbl(in.Target))
			if in.Guarded() && in.Reconv != NoReconv {
				fmt.Fprintf(&sb, " reconv=%s", lbl(in.Reconv))
			}
		case OpLd:
			mn := "ld.global"
			if in.Vol {
				mn = "ld.volatile"
			}
			fmt.Fprintf(&sb, "%s %%r%d, %s", mn, in.Dst, addr(in))
		case OpSt:
			fmt.Fprintf(&sb, "st.global %s, %s", addr(in), opd(in.C))
		case OpAtomCAS:
			fmt.Fprintf(&sb, "atom.cas %%r%d, %s, %s, %s", in.Dst, addr(in), opd(in.C), opd(in.D))
		case OpAtomExch, OpAtomAdd, OpAtomMax:
			fmt.Fprintf(&sb, "%s %%r%d, %s, %s", in.Op, in.Dst, addr(in), opd(in.C))
		case OpLdParam:
			fmt.Fprintf(&sb, "ld.param %%r%d, %d", in.Dst, in.Param)
		default:
			fmt.Fprintf(&sb, "%s %%r%d, %s, %s", in.Op, in.Dst, opd(in.A), opd(in.B))
		}
		if in.Ann != 0 {
			var names []string
			for _, a := range [...]struct {
				bit  Ann
				name string
			}{
				{AnnSIB, "sib"}, {AnnLockAcquire, "acquire"},
				{AnnLockRelease, "release"}, {AnnWaitCheck, "waitcheck"},
				{AnnSync, "sync"},
			} {
				if in.HasAnn(a.bit) {
					names = append(names, a.name)
				}
			}
			if in.HasAnn(AnnNoLint) {
				// Always last: the class list consumes the rest of the line.
				names = append(names, nolintTokens(in)...)
			}
			fmt.Fprintf(&sb, " !%s", strings.Join(names, ","))
		}
		sb.WriteByte('\n')
	}
	// A reconvergence point one past the last instruction needs a label
	// at end of file; Parse accepts a trailing label with no instruction.
	if needLabel[int32(len(p.Code))] {
		fmt.Fprintf(&sb, "%s:\n", lbl(int32(len(p.Code))))
	}
	return sb.String()
}

// Listing renders the full program with PCs and label markers.
func (p *Program) Listing() string {
	byPC := make(map[int32][]string)
	for name, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], name)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "// kernel %s (%d instructions)\n", p.Name, len(p.Code))
	for pc := range p.Code {
		if names := byPC[int32(pc)]; len(names) > 0 {
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(&sb, "%s:\n", n)
			}
		}
		fmt.Fprintf(&sb, "  %04d: %s\n", pc, Disasm(&p.Code[pc]))
	}
	return sb.String()
}
