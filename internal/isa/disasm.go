package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Disasm renders one instruction in a PTX-flavoured syntax.
func Disasm(in *Instr) string {
	var sb strings.Builder
	if in.Guarded() {
		if in.GuardNeg {
			sb.WriteString(fmt.Sprintf("@!%%p%d ", in.Guard))
		} else {
			sb.WriteString(fmt.Sprintf("@%%p%d ", in.Guard))
		}
	}
	switch in.Op {
	case OpNop, OpExit, OpBar, OpMembar:
		sb.WriteString(in.Op.String())
	case OpMov:
		fmt.Fprintf(&sb, "mov %%r%d, %s", in.Dst, in.A)
	case OpSetp:
		fmt.Fprintf(&sb, "setp.%s %%p%d, %s, %s", in.Cmp, in.PDst, in.A, in.B)
	case OpSelp:
		fmt.Fprintf(&sb, "selp %%r%d, %s, %s, %%p%d", in.Dst, in.A, in.B, in.PSrc)
	case OpBra:
		fmt.Fprintf(&sb, "bra %d", in.Target)
		if in.Reconv != NoReconv {
			fmt.Fprintf(&sb, " (reconv %d)", in.Reconv)
		}
	case OpLd:
		fmt.Fprintf(&sb, "ld.global %%r%d, [%s+%s]", in.Dst, in.A, in.B)
	case OpSt:
		fmt.Fprintf(&sb, "st.global [%s+%s], %s", in.A, in.B, in.C)
	case OpAtomCAS:
		fmt.Fprintf(&sb, "atom.cas %%r%d, [%s+%s], %s, %s", in.Dst, in.A, in.B, in.C, in.D)
	case OpAtomExch:
		fmt.Fprintf(&sb, "atom.exch %%r%d, [%s+%s], %s", in.Dst, in.A, in.B, in.C)
	case OpAtomAdd:
		fmt.Fprintf(&sb, "atom.add %%r%d, [%s+%s], %s", in.Dst, in.A, in.B, in.C)
	case OpAtomMax:
		fmt.Fprintf(&sb, "atom.max %%r%d, [%s+%s], %s", in.Dst, in.A, in.B, in.C)
	case OpLdParam:
		fmt.Fprintf(&sb, "ld.param %%r%d, [param%d]", in.Dst, in.Param)
	default:
		fmt.Fprintf(&sb, "%s %%r%d, %s, %s", in.Op, in.Dst, in.A, in.B)
	}
	var anns []string
	for _, a := range [...]struct {
		bit  Ann
		name string
	}{
		{AnnSIB, "SIB"}, {AnnLockAcquire, "acquire"}, {AnnLockRelease, "release"},
		{AnnWaitCheck, "waitcheck"}, {AnnSync, "sync"},
	} {
		if in.HasAnn(a.bit) {
			anns = append(anns, a.name)
		}
	}
	if len(anns) > 0 {
		fmt.Fprintf(&sb, "  ; %s", strings.Join(anns, ","))
	}
	return sb.String()
}

// Listing renders the full program with PCs and label markers.
func (p *Program) Listing() string {
	byPC := make(map[int32][]string)
	for name, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], name)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "// kernel %s (%d instructions)\n", p.Name, len(p.Code))
	for pc := range p.Code {
		if names := byPC[int32(pc)]; len(names) > 0 {
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(&sb, "%s:\n", n)
			}
		}
		fmt.Fprintf(&sb, "  %04d: %s\n", pc, Disasm(&p.Code[pc]))
	}
	return sb.String()
}
