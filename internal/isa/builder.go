package isa

import "fmt"

// Builder assembles a Program from a sequence of emit calls. Labels may be
// referenced before they are defined; Build patches them. Structured
// helpers (If, IfElse, While, For, DoWhile) emit the branch shapes used by
// the paper's kernels with correct reconvergence PCs.
//
// The builder records errors internally and reports the first one from
// Build, so kernel definitions can be written without per-call error
// handling.
type Builder struct {
	name   string
	code   []Instr
	labels map[string]int32
	fixups []fixup
	anon   int
	ann    Ann // annotation bits ORed onto every emitted instruction
	err    error
}

type fixup struct {
	pc     int32
	label  string // branch target
	reconv string // reconvergence label ("" = none pending)
}

// NewBuilder returns an empty Builder for a kernel with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int32)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("isa: %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) pc() int32 { return int32(len(b.code)) }

// Label defines label name at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = b.pc()
}

func (b *Builder) anonLabel(prefix string) string {
	b.anon++
	return fmt.Sprintf(".%s%d", prefix, b.anon)
}

// Emit appends a raw instruction, applying the current annotation scope.
func (b *Builder) Emit(in Instr) *Builder {
	in.Ann |= b.ann
	if in.Guard == 0 && !in.Guarded() {
		// Zero value of Guard is 0, which is a valid predicate id; callers
		// of Emit must set NoGuard explicitly. All builder helpers do.
	}
	b.code = append(b.code, in)
	return b
}

func (b *Builder) emit(in Instr) *Builder {
	in.Guard = NoGuard
	return b.Emit(in)
}

// Annotate runs fn with annotation bits a ORed onto every instruction it
// emits. Used to mark synchronization regions (AnnSync).
func (b *Builder) Annotate(a Ann, fn func()) {
	prev := b.ann
	b.ann = prev | a
	fn()
	b.ann = prev
}

// AnnotateLast ORs annotation bits onto the most recently emitted
// instruction.
func (b *Builder) AnnotateLast(a Ann) {
	if len(b.code) == 0 {
		b.fail("AnnotateLast with no instructions")
		return
	}
	b.code[len(b.code)-1].Ann |= a
}

// NoLintLast marks the most recently emitted instruction AnnNoLint,
// restricted to the given finding classes (analysis category or class
// names). With no classes the suppression covers every class, matching
// AnnotateLast(AnnNoLint). Repeated calls accumulate classes.
func (b *Builder) NoLintLast(classes ...string) {
	if len(b.code) == 0 {
		b.fail("NoLintLast with no instructions")
		return
	}
	in := &b.code[len(b.code)-1]
	in.Ann |= AnnNoLint
	in.NoLint = append(in.NoLint, classes...)
}

// --- straight-line emitters ---

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// Mov emits dst <- a.
func (b *Builder) Mov(dst Reg, a Operand) *Builder {
	return b.emit(Instr{Op: OpMov, Dst: dst, A: a})
}

// ALU emits dst <- a <op> b for any two-source ALU opcode.
func (b *Builder) ALU(op Op, dst Reg, a, c Operand) *Builder {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpMin, OpMax, OpAnd, OpOr, OpXor, OpShl, OpShr:
	default:
		b.fail("ALU called with non-ALU opcode %v", op)
	}
	return b.emit(Instr{Op: op, Dst: dst, A: a, B: c})
}

// Add emits dst <- a + c; the remaining arithmetic helpers are analogous.
func (b *Builder) Add(dst Reg, a, c Operand) *Builder { return b.ALU(OpAdd, dst, a, c) }
func (b *Builder) Sub(dst Reg, a, c Operand) *Builder { return b.ALU(OpSub, dst, a, c) }
func (b *Builder) Mul(dst Reg, a, c Operand) *Builder { return b.ALU(OpMul, dst, a, c) }
func (b *Builder) Div(dst Reg, a, c Operand) *Builder { return b.ALU(OpDiv, dst, a, c) }
func (b *Builder) Rem(dst Reg, a, c Operand) *Builder { return b.ALU(OpRem, dst, a, c) }
func (b *Builder) Min(dst Reg, a, c Operand) *Builder { return b.ALU(OpMin, dst, a, c) }
func (b *Builder) Max(dst Reg, a, c Operand) *Builder { return b.ALU(OpMax, dst, a, c) }
func (b *Builder) And(dst Reg, a, c Operand) *Builder { return b.ALU(OpAnd, dst, a, c) }
func (b *Builder) Or(dst Reg, a, c Operand) *Builder  { return b.ALU(OpOr, dst, a, c) }
func (b *Builder) Xor(dst Reg, a, c Operand) *Builder { return b.ALU(OpXor, dst, a, c) }
func (b *Builder) Shl(dst Reg, a, c Operand) *Builder { return b.ALU(OpShl, dst, a, c) }
func (b *Builder) Shr(dst Reg, a, c Operand) *Builder { return b.ALU(OpShr, dst, a, c) }

// Setp emits pd <- a <cmp> c.
func (b *Builder) Setp(cmp Cmp, pd Pred, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpSetp, Cmp: cmp, PDst: pd, A: a, B: c})
}

// Selp emits dst <- p ? a : c.
func (b *Builder) Selp(dst Reg, p Pred, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpSelp, Dst: dst, PSrc: p, A: a, B: c})
}

// Ld emits dst <- mem[base + off].
func (b *Builder) Ld(dst Reg, base, off Operand) *Builder {
	return b.emit(Instr{Op: OpLd, Dst: dst, A: base, B: off})
}

// LdVol emits a volatile load that bypasses the L1 (required for data
// mutated by other SMs, e.g. lock-protected values and wait flags).
func (b *Builder) LdVol(dst Reg, base, off Operand) *Builder {
	return b.emit(Instr{Op: OpLd, Dst: dst, A: base, B: off, Vol: true})
}

// St emits mem[base + off] <- val.
func (b *Builder) St(base, off, val Operand) *Builder {
	return b.emit(Instr{Op: OpSt, A: base, B: off, C: val})
}

// AtomCAS emits dst <- atomicCAS(&mem[base+off], cmp, val).
func (b *Builder) AtomCAS(dst Reg, base, off, cmp, val Operand) *Builder {
	return b.emit(Instr{Op: OpAtomCAS, Dst: dst, A: base, B: off, C: cmp, D: val})
}

// AtomExch emits dst <- atomicExch(&mem[base+off], val).
func (b *Builder) AtomExch(dst Reg, base, off, val Operand) *Builder {
	return b.emit(Instr{Op: OpAtomExch, Dst: dst, A: base, B: off, C: val})
}

// AtomAdd emits dst <- atomicAdd(&mem[base+off], val).
func (b *Builder) AtomAdd(dst Reg, base, off, val Operand) *Builder {
	return b.emit(Instr{Op: OpAtomAdd, Dst: dst, A: base, B: off, C: val})
}

// AtomMax emits dst <- atomicMax(&mem[base+off], val).
func (b *Builder) AtomMax(dst Reg, base, off, val Operand) *Builder {
	return b.emit(Instr{Op: OpAtomMax, Dst: dst, A: base, B: off, C: val})
}

// LdParam emits dst <- kernel parameter idx.
func (b *Builder) LdParam(dst Reg, idx uint8) *Builder {
	return b.emit(Instr{Op: OpLdParam, Dst: dst, Param: idx})
}

// Bar emits a CTA barrier.
func (b *Builder) Bar() *Builder { return b.emit(Instr{Op: OpBar}) }

// Membar emits a memory fence.
func (b *Builder) Membar() *Builder { return b.emit(Instr{Op: OpMembar}) }

// Exit emits thread exit.
func (b *Builder) Exit() *Builder { return b.emit(Instr{Op: OpExit}) }

// Clock emits dst <- %clock.
func (b *Builder) Clock(dst Reg) *Builder { return b.Mov(dst, S(SpecClock)) }

// --- branches ---

// Bra emits an unconditional branch to label.
func (b *Builder) Bra(label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: b.pc(), label: label})
	return b.emit(Instr{Op: OpBra, Target: -1, Reconv: NoReconv})
}

// BraP emits a conditional branch guarded by predicate p (negated when neg
// is true) to label. reconv names the reconvergence label; if empty the
// branch must be backward and reconverges at the fall-through instruction
// (the paper's bottom-tested spin-loop shape, Figure 7a), which Build
// verifies.
func (b *Builder) BraP(p Pred, neg bool, label, reconv string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: b.pc(), label: label, reconv: reconv})
	in := Instr{Op: OpBra, Target: -1, Reconv: NoReconv, Guard: int8(p), GuardNeg: neg}
	in.Ann |= b.ann
	b.code = append(b.code, in)
	return b
}

// --- structured control flow ---

// If emits: if (pred (neg? !:)) { then() }, reconverging after the body.
func (b *Builder) If(p Pred, neg bool, then func()) {
	end := b.anonLabel("endif")
	// Branch around the body when the condition is false.
	b.BraP(p, !neg, end, end)
	then()
	b.Label(end)
}

// IfA is If with annotation bits applied to the guarding branch (e.g.
// AnnWaitCheck: the branch is taken when the condition fails, so taken
// lanes are wait-exit failures).
func (b *Builder) IfA(p Pred, neg bool, ann Ann, then func()) {
	end := b.anonLabel("endif")
	b.BraP(p, !neg, end, end)
	b.AnnotateLast(ann)
	then()
	b.Label(end)
}

// IfElse emits a two-armed conditional, reconverging after both arms.
func (b *Builder) IfElse(p Pred, neg bool, then, els func()) {
	elseL := b.anonLabel("else")
	end := b.anonLabel("endif")
	b.BraP(p, !neg, elseL, end)
	then()
	b.Bra(end)
	b.Label(elseL)
	els()
	b.Label(end)
}

// While emits a top-tested loop: cond() must set predicate p; the loop
// body runs while p (negated when neg is true) holds.
func (b *Builder) While(p Pred, neg bool, cond, body func()) {
	top := b.anonLabel("while")
	end := b.anonLabel("endwhile")
	b.Label(top)
	cond()
	b.BraP(p, !neg, end, end)
	body()
	b.Bra(top)
	b.Label(end)
}

// DoWhile emits the paper's bottom-tested loop shape (Figure 7a): the body
// runs at least once; cond() sets predicate p; the backward branch taken
// while p (negated when neg) holds is the loop's spin-inducing-branch
// position. If sib is true the backward branch is annotated AnnSIB.
func (b *Builder) DoWhile(p Pred, neg bool, sib bool, body, cond func()) {
	top := b.anonLabel("do")
	b.Label(top)
	body()
	cond()
	b.BraP(p, neg, top, "")
	if sib {
		b.AnnotateLast(AnnSIB)
	}
}

// For emits a counted loop: cnt runs from start to limit-1 in steps of
// step, with the bottom-tested backward-branch shape of the Kmeans loop in
// paper Figure 7c. The body must not clobber cnt or the scratch predicate.
func (b *Builder) For(cnt Reg, start, limit Operand, step int32, p Pred, body func()) {
	b.Mov(cnt, start)
	top := b.anonLabel("for")
	end := b.anonLabel("endfor")
	// Guard against zero-trip loops with a top test.
	b.Setp(LT, p, R(cnt), limit)
	b.BraP(p, true, end, end)
	b.Label(top)
	body()
	b.Add(cnt, R(cnt), I(step))
	b.Setp(LT, p, R(cnt), limit)
	b.BraP(p, false, top, "")
	b.Label(end)
}

// Build resolves labels and reconvergence points, validates the program
// and returns it.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		t, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: %q: undefined label %q", b.name, f.label)
		}
		in := &b.code[f.pc]
		in.Target = t
		if !in.Guarded() {
			continue
		}
		if f.reconv != "" {
			r, ok := b.labels[f.reconv]
			if !ok {
				return nil, fmt.Errorf("isa: %q: undefined reconvergence label %q", b.name, f.reconv)
			}
			in.Reconv = r
		} else {
			if t > f.pc {
				return nil, fmt.Errorf("isa: %q pc=%d: forward conditional branch to %q needs an explicit reconvergence label", b.name, f.pc, f.label)
			}
			in.Reconv = f.pc + 1
		}
	}
	p := &Program{Name: b.name, Code: b.code, Labels: b.labels}
	for pc := range p.Code {
		if p.Code[pc].HasAnn(AnnSIB) {
			p.TrueSIBs = append(p.TrueSIBs, int32(pc))
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; kernel definitions are static
// so a failure is a programming bug.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
