package isa

import (
	"strings"
	"testing"
)

func TestDisasmForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpMov, Dst: 3, A: I(7), Guard: NoGuard}, "mov %r3, 7"},
		{Instr{Op: OpSetp, Cmp: LT, PDst: 2, A: R(1), B: I(5), Guard: NoGuard}, "setp.lt %p2, %r1, 5"},
		{Instr{Op: OpBra, Target: 4, Reconv: 9, Guard: 1, GuardNeg: true}, "@!%p1 bra 4 (reconv 9)"},
		{Instr{Op: OpLd, Dst: 2, A: R(10), B: R(3), Guard: NoGuard}, "ld.global %r2, [%r10+%r3]"},
		{Instr{Op: OpSt, A: R(10), B: I(0), C: R(4), Guard: NoGuard}, "st.global [%r10+0], %r4"},
		{Instr{Op: OpAtomCAS, Dst: 5, A: R(8), B: R(9), C: I(0), D: I(1), Guard: NoGuard},
			"atom.cas %r5, [%r8+%r9], 0, 1"},
		{Instr{Op: OpBar, Guard: NoGuard}, "bar.sync"},
		{Instr{Op: OpExit, Guard: NoGuard}, "exit"},
	}
	for _, c := range cases {
		if got := Disasm(&c.in); got != c.want {
			t.Errorf("Disasm = %q, want %q", got, c.want)
		}
	}
}

func TestDisasmAnnotations(t *testing.T) {
	in := Instr{Op: OpAtomCAS, Guard: NoGuard, Ann: AnnLockAcquire | AnnSync}
	out := Disasm(&in)
	if !strings.Contains(out, "acquire") || !strings.Contains(out, "sync") {
		t.Errorf("annotations missing: %q", out)
	}
	sib := Instr{Op: OpBra, Target: 0, Reconv: 1, Guard: 0, Ann: AnnSIB}
	if !strings.Contains(Disasm(&sib), "SIB") {
		t.Error("SIB annotation missing")
	}
}

func TestListingRoundTripsEveryKernelOpcode(t *testing.T) {
	// Every opcode the builder can emit must disassemble to something
	// non-empty and unique enough to eyeball.
	b := NewBuilder("all-ops")
	b.Nop()
	b.Mov(1, I(1))
	b.Add(1, R(1), I(1))
	b.Sub(1, R(1), I(1))
	b.Mul(1, R(1), I(1))
	b.Div(1, R(1), I(1))
	b.Rem(1, R(1), I(1))
	b.Min(1, R(1), I(1))
	b.Max(1, R(1), I(1))
	b.And(1, R(1), I(1))
	b.Or(1, R(1), I(1))
	b.Xor(1, R(1), I(1))
	b.Shl(1, R(1), I(1))
	b.Shr(1, R(1), I(1))
	b.Setp(EQ, 0, R(1), I(0))
	b.Selp(2, 0, I(1), I(2))
	b.Ld(3, R(1), I(0))
	b.LdVol(3, R(1), I(0))
	b.St(R(1), I(0), R(3))
	b.AtomCAS(4, R(1), I(0), I(0), I(1))
	b.AtomExch(4, R(1), I(0), I(0))
	b.AtomAdd(4, R(1), I(0), I(1))
	b.AtomMax(4, R(1), I(0), I(1))
	b.LdParam(5, 0)
	b.Bar()
	b.Membar()
	b.Clock(6)
	b.Exit()
	p := b.MustBuild()
	listing := p.Listing()
	for pc := int32(0); pc < p.Len(); pc++ {
		if Disasm(p.At(pc)) == "" {
			t.Errorf("pc %d disassembles to empty", pc)
		}
	}
	if !strings.Contains(listing, "all-ops") {
		t.Error("listing missing kernel name")
	}
}
