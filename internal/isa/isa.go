// Package isa defines the PTX-like instruction set executed by the SIMT
// simulator. It plays the role GPGPU-Sim's PTX front end plays in the
// paper's evaluation: kernels are expressed as small assembly programs
// (see internal/kernels) built with the label-based Builder in this
// package.
//
// Design notes:
//
//   - Registers hold 32-bit values; arithmetic is two's-complement int32.
//   - Memory is word addressed: one address names one 32-bit word. A
//     cache line / coalescing segment is LineWords words (128 bytes).
//   - Every potentially divergent (conditional) branch carries an explicit
//     reconvergence PC, the information GPGPU-Sim derives from immediate
//     post-dominators. The Builder computes it for structured control
//     flow and for the paper's bottom-tested spin loops.
//   - Instructions carry annotations (lock acquire/release, wait check,
//     ground-truth spin-inducing branch, synchronization region) used by
//     the statistics layer to reproduce the paper's figures and by the
//     DDOS evaluation as ground truth.
package isa

import "fmt"

// Reg identifies a per-thread general purpose register.
type Reg uint8

// Pred identifies a per-thread 1-bit predicate register (setp target).
type Pred uint8

// Architectural limits. 64 GPRs and 8 predicates comfortably cover every
// kernel in the suite while keeping per-thread state small.
const (
	NumRegs  = 64
	NumPreds = 8
)

// WarpSize is the number of threads per warp (NVIDIA-style).
const WarpSize = 32

// LineWords is the number of 32-bit words in one cache line / coalescing
// segment: 32 words = 128 bytes, matching Table II's cache geometry.
const LineWords = 32

// Special names a read-only special register.
type Special uint8

const (
	// SpecTID is the thread index within its CTA (threadIdx.x).
	SpecTID Special = iota
	// SpecNTID is the number of threads per CTA (blockDim.x).
	SpecNTID
	// SpecCTAID is the CTA index within the grid (blockIdx.x).
	SpecCTAID
	// SpecNCTAID is the number of CTAs in the grid (gridDim.x).
	SpecNCTAID
	// SpecLaneID is the thread's lane within its warp (0..31).
	SpecLaneID
	// SpecWarpID is the warp's index within its CTA.
	SpecWarpID
	// SpecSMID is the SM the CTA is resident on.
	SpecSMID
	// SpecGTID is the global thread id: CTAID*NTID + TID.
	SpecGTID
	// SpecClock reads the SM cycle counter (clock() in CUDA); used by the
	// software back-off delay code of paper Figure 3a.
	SpecClock
)

var specialNames = [...]string{
	SpecTID: "%tid", SpecNTID: "%ntid", SpecCTAID: "%ctaid",
	SpecNCTAID: "%nctaid", SpecLaneID: "%laneid", SpecWarpID: "%warpid",
	SpecSMID: "%smid", SpecGTID: "%gtid", SpecClock: "%clock",
}

func (s Special) String() string {
	if int(s) < len(specialNames) {
		return specialNames[s]
	}
	return fmt.Sprintf("%%spec%d", uint8(s))
}

// OperandKind discriminates Operand variants.
type OperandKind uint8

const (
	// OpdNone marks an unused operand slot.
	OpdNone OperandKind = iota
	// OpdReg reads a general-purpose register.
	OpdReg
	// OpdImm is a 32-bit immediate.
	OpdImm
	// OpdSpecial reads a special register.
	OpdSpecial
)

// Operand is a source operand: a register, an immediate or a special
// register.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int32
	Spec Special
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Kind: OpdReg, Reg: r} }

// I makes an immediate operand.
func I(v int32) Operand { return Operand{Kind: OpdImm, Imm: v} }

// S makes a special-register operand.
func S(s Special) Operand { return Operand{Kind: OpdSpecial, Spec: s} }

func (o Operand) String() string {
	switch o.Kind {
	case OpdReg:
		return fmt.Sprintf("%%r%d", o.Reg)
	case OpdImm:
		return fmt.Sprintf("%d", o.Imm)
	case OpdSpecial:
		return o.Spec.String()
	default:
		return "_"
	}
}

// Op is an opcode.
type Op uint8

const (
	// OpNop does nothing (issue slot consumed).
	OpNop Op = iota
	// OpMov dst <- A.
	OpMov
	// OpAdd dst <- A + B. Likewise for the other ALU ops.
	OpAdd
	OpSub
	OpMul
	OpDiv // dst <- A / B (signed; B==0 yields 0)
	OpRem // dst <- A % B (signed; B==0 yields 0)
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical shift right
	// OpSetp sets predicate PDst <- A <Cmp> B.
	OpSetp
	// OpSelp dst <- Guard? A : B selected by predicate PSrc.
	OpSelp
	// OpBra branches to Target; with a guard it is a potentially divergent
	// branch and must carry a Reconv PC.
	OpBra
	// OpExit retires the thread.
	OpExit
	// OpBar is a CTA-wide barrier (bar.sync 0).
	OpBar
	// OpMembar is a memory fence (__threadfence); modeled as a timing-only
	// LSU drain.
	OpMembar
	// OpLd loads dst <- mem[A + B].
	OpLd
	// OpSt stores mem[A + B] <- C.
	OpSt
	// OpAtomCAS dst <- atomicCAS(&mem[A+B], C, D): dst receives the old
	// value; the word is set to D iff old == C.
	OpAtomCAS
	// OpAtomExch dst <- atomicExch(&mem[A+B], C).
	OpAtomExch
	// OpAtomAdd dst <- atomicAdd(&mem[A+B], C).
	OpAtomAdd
	// OpAtomMax dst <- atomicMax(&mem[A+B], C) (signed).
	OpAtomMax
	// OpLdParam loads dst <- kernel parameter Param (uniform across threads).
	OpLdParam
	opCount
)

var opNames = [...]string{
	OpNop: "nop", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpMin: "min", OpMax: "max", OpAnd: "and",
	OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSetp: "setp",
	OpSelp: "selp", OpBra: "bra", OpExit: "exit", OpBar: "bar.sync",
	OpMembar: "membar", OpLd: "ld.global", OpSt: "st.global",
	OpAtomCAS: "atom.cas", OpAtomExch: "atom.exch", OpAtomAdd: "atom.add",
	OpAtomMax: "atom.max", OpLdParam: "ld.param",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// IsMem reports whether the opcode goes through the load/store unit.
func (op Op) IsMem() bool {
	switch op {
	case OpLd, OpSt, OpAtomCAS, OpAtomExch, OpAtomAdd, OpAtomMax:
		return true
	}
	return false
}

// IsAtomic reports whether the opcode is a read-modify-write atomic.
func (op Op) IsAtomic() bool {
	switch op {
	case OpAtomCAS, OpAtomExch, OpAtomAdd, OpAtomMax:
		return true
	}
	return false
}

// Cmp is a comparison operator for OpSetp.
type Cmp uint8

const (
	EQ Cmp = iota
	NE
	LT
	LE
	GT
	GE
)

var cmpNames = [...]string{EQ: "eq", NE: "ne", LT: "lt", LE: "le", GT: "gt", GE: "ge"}

func (c Cmp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp%d", uint8(c))
}

// Eval applies the comparison to two values using signed semantics.
func (c Cmp) Eval(a, b uint32) bool {
	sa, sb := int32(a), int32(b)
	switch c {
	case EQ:
		return sa == sb
	case NE:
		return sa != sb
	case LT:
		return sa < sb
	case LE:
		return sa <= sb
	case GT:
		return sa > sb
	case GE:
		return sa >= sb
	}
	return false
}

// Ann is a bitset of instruction annotations used by statistics collection
// and as DDOS ground truth.
type Ann uint16

const (
	// AnnSIB marks the ground-truth spin-inducing branch of a busy-wait
	// loop (the paper's SIB). DDOS must discover these dynamically; the
	// annotation is used only for TSDR/FSDR accounting and for the
	// "static annotation" BOWS mode.
	AnnSIB Ann = 1 << iota
	// AnnLockAcquire marks an atomic that attempts a lock acquire
	// (atomicCAS(mutex,0,1) in Figure 1a). Per-lane success/failure is
	// classified for Figure 2 / Figure 12.
	AnnLockAcquire
	// AnnLockRelease marks the matching release (atomicExch(mutex,0)).
	AnnLockRelease
	// AnnWaitCheck marks the branch that re-tests a wait-and-signal
	// condition (Figure 6c); taken = wait exit fail, fall-through = wait
	// exit success.
	AnnWaitCheck
	// AnnSync marks instructions belonging to synchronization code
	// (busy-wait loop, acquire/release) rather than useful work; used for
	// the Figure 1c/1d overhead split.
	AnnSync
	// AnnNoLint suppresses static-analysis findings reported at this
	// instruction (internal/analysis). It is the ISA-level analogue of a
	// //lint:ignore comment: kernels that intentionally violate a lint
	// rule annotate the offending instruction, and warplint reports the
	// finding as suppressed instead of failing. It has no effect on
	// execution, statistics or DDOS ground truth.
	//
	// A bare `!nolint` suppresses every finding class at the instruction.
	// `!nolint race,lockorder` (Instr.NoLint non-empty) restricts the
	// suppression to the named classes, so silencing a known-benign data
	// race cannot also mute reconvergence or dataflow findings.
	AnnNoLint
)

// NoGuard is the Guard value of an unguarded instruction.
const NoGuard int8 = -1

// NoReconv marks a branch without a reconvergence point (unconditional).
const NoReconv int32 = -1

// Instr is one decoded instruction. All fields are value types so programs
// can be copied and shared freely between SMs.
type Instr struct {
	Op   Op
	Cmp  Cmp  // comparison for OpSetp
	Dst  Reg  // destination GPR (Mov/ALU/Ld/atomics/Selp/LdParam)
	PDst Pred // destination predicate (Setp)
	PSrc Pred // source predicate (Selp)
	A    Operand
	B    Operand
	C    Operand
	D    Operand // CAS swap value

	// Guard predicates the whole instruction: lanes whose predicate
	// Guard (negated if GuardNeg) is false skip it. NoGuard disables.
	Guard    int8
	GuardNeg bool

	Target int32 // branch target PC
	Reconv int32 // reconvergence PC for divergent branches
	Param  uint8 // parameter index for OpLdParam
	// Vol marks a volatile load: it bypasses the (non-coherent) L1 and
	// reads L2/DRAM directly, as CUDA `volatile` loads must in pre-Volta
	// spin-wait code. Stores are always write-through so only loads need
	// the flag.
	Vol bool
	Ann Ann
	// NoLint restricts an AnnNoLint suppression to the named finding
	// classes (analysis category or class-group strings such as "race" or
	// "lockorder"). Empty with AnnNoLint set means suppress everything,
	// the pre-class behaviour. The ISA does not interpret the strings;
	// internal/analysis matches them against its finding taxonomy.
	NoLint []string
}

// Guarded reports whether the instruction has a guard predicate.
func (in *Instr) Guarded() bool { return in.Guard != NoGuard }

// HasAnn reports whether annotation bit a is set.
func (in *Instr) HasAnn(a Ann) bool { return in.Ann&a != 0 }

// Suppresses reports whether the instruction's nolint annotation covers
// a finding tagged with the given names (typically the finding's
// category and its class group — a match on either suffices). Without
// AnnNoLint nothing is suppressed; with it and an empty NoLint list
// everything is.
func (in *Instr) Suppresses(names ...string) bool {
	if !in.HasAnn(AnnNoLint) {
		return false
	}
	if len(in.NoLint) == 0 {
		return true
	}
	for _, c := range in.NoLint {
		for _, n := range names {
			if c == n {
				return true
			}
		}
	}
	return false
}

// WritesReg reports whether the instruction writes Dst.
func (in *Instr) WritesReg() bool {
	switch in.Op {
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpMin, OpMax,
		OpAnd, OpOr, OpXor, OpShl, OpShr, OpSelp, OpLd,
		OpAtomCAS, OpAtomExch, OpAtomAdd, OpAtomMax, OpLdParam:
		return true
	}
	return false
}

// SrcRegs appends the GPRs read by the instruction to dst and returns it.
func (in *Instr) SrcRegs(dst []Reg) []Reg {
	add := func(o Operand) {
		if o.Kind == OpdReg {
			dst = append(dst, o.Reg)
		}
	}
	add(in.A)
	add(in.B)
	add(in.C)
	add(in.D)
	return dst
}

// Program is an assembled kernel body.
type Program struct {
	Name string
	Code []Instr
	// TrueSIBs lists the PCs annotated AnnSIB, for DDOS accounting.
	TrueSIBs []int32
	// Labels maps label name to PC, kept for disassembly/debugging.
	Labels map[string]int32
}

// At returns the instruction at pc.
func (p *Program) At(pc int32) *Instr { return &p.Code[pc] }

// Len returns the number of instructions.
func (p *Program) Len() int32 { return int32(len(p.Code)) }

// Validate checks structural invariants: branch targets and reconvergence
// PCs in range, conditional branches carrying reconvergence points, and
// register indices within architectural limits.
func (p *Program) Validate() error {
	n := int32(len(p.Code))
	if n == 0 {
		return fmt.Errorf("isa: program %q is empty", p.Name)
	}
	for pc := int32(0); pc < n; pc++ {
		in := &p.Code[pc]
		if in.Op >= opCount {
			return fmt.Errorf("isa: %q pc=%d: bad opcode %d", p.Name, pc, in.Op)
		}
		if in.Op == OpBra {
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("isa: %q pc=%d: branch target %d out of range", p.Name, pc, in.Target)
			}
			if in.Guarded() {
				if in.Reconv == NoReconv {
					return fmt.Errorf("isa: %q pc=%d: conditional branch without reconvergence PC", p.Name, pc)
				}
				if in.Reconv < 0 || in.Reconv > n {
					return fmt.Errorf("isa: %q pc=%d: reconvergence PC %d out of range", p.Name, pc, in.Reconv)
				}
			}
		}
		if in.WritesReg() && int(in.Dst) >= NumRegs {
			return fmt.Errorf("isa: %q pc=%d: register %%r%d out of range", p.Name, pc, in.Dst)
		}
		if in.Op == OpSetp && int(in.PDst) >= NumPreds {
			return fmt.Errorf("isa: %q pc=%d: predicate %%p%d out of range", p.Name, pc, in.PDst)
		}
		if in.Op == OpSelp && int(in.PSrc) >= NumPreds {
			return fmt.Errorf("isa: %q pc=%d: selp source predicate %%p%d out of range", p.Name, pc, in.PSrc)
		}
		if in.Guarded() && (in.Guard < 0 || int(in.Guard) >= NumPreds) {
			return fmt.Errorf("isa: %q pc=%d: guard predicate %%p%d out of range", p.Name, pc, in.Guard)
		}
		for _, o := range [...]Operand{in.A, in.B, in.C, in.D} {
			if o.Kind == OpdReg && int(o.Reg) >= NumRegs {
				return fmt.Errorf("isa: %q pc=%d: source register %%r%d out of range", p.Name, pc, o.Reg)
			}
		}
	}
	return nil
}
