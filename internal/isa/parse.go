package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse assembles a PTX-flavoured text program. It is the textual
// counterpart of the Builder: labels, structured reconvergence rules and
// annotations behave identically, so a program written as text is
// indistinguishable from one built programmatically.
//
// Syntax, one instruction per line ("//" and "#" start comments):
//
//	entry:                            // label definition
//	  mov   %r1, %tid                 // operands: %rN, %pN, immediates,
//	  add   %r1, %r1, 4               // and special registers (%tid,
//	  setp.lt %p0, %r1, %r2           // %ntid, %ctaid, %nctaid, %laneid,
//	  @%p0 bra entry                  // %warpid, %smid, %gtid, %clock)
//	  @!%p1 bra end reconv=end        // forward cond. branches need reconv
//	  ld.global    %r3, [%r10+%r1]
//	  ld.volatile  %r3, [%r10+8]      // L1-bypassing load
//	  st.global    [%r10+%r1], %r3
//	  atom.cas  %r4, [%r10+0], 0, 1  !acquire,sync
//	  atom.exch %r4, [%r10+0], 0     !release,sync
//	  atom.add  %r4, [%r9+0], 1
//	  atom.max  %r4, [%r9+0], %r2
//	  selp  %r5, 1, 2, %p0
//	  ld.param %r6, 0
//	  bar.sync
//	  membar
//	  nop
//	end:
//	  exit
//
// A trailing "!a,b,c" annotates the instruction with any of: sib,
// acquire, release, waitcheck, sync, nolint. A nolint token may carry a
// finding-class list — `!nolint race,lockorder` — restricting the
// suppression to those classes; because the classes are comma-separated
// too, `nolint <class>` must be the last annotation on the line (every
// token after it is read as another class).
func Parse(name, src string) (*Program, error) {
	b := NewBuilder(name)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, fmt.Errorf("isa: %q line %d: %w", name, lineNo+1, err)
		}
	}
	return b.Build()
}

// MustParse is Parse that panics on error, for static program literals.
func MustParse(name, src string) *Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	return line
}

var annNames = map[string]Ann{
	"sib":       AnnSIB,
	"acquire":   AnnLockAcquire,
	"release":   AnnLockRelease,
	"waitcheck": AnnWaitCheck,
	"sync":      AnnSync,
	"nolint":    AnnNoLint,
}

func parseLine(b *Builder, line string) error {
	// Label definition.
	if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t") {
		b.Label(strings.TrimSuffix(line, ":"))
		return nil
	}

	// Trailing annotations: " !acquire,sync" (the bang must follow
	// whitespace so guard negation "@!%p1" is not misparsed). A
	// "nolint <class>" token switches the rest of the list into
	// suppression-class position: the classes are themselves
	// comma-separated, so they are whatever follows.
	var ann Ann
	var nolint []string
	if i := strings.LastIndex(line, " !"); i >= 0 {
		inClasses := false
		for _, nm := range strings.Split(line[i+2:], ",") {
			tok := strings.TrimSpace(nm)
			if inClasses {
				if !validNoLintClass(tok) {
					return fmt.Errorf("bad nolint class %q", tok)
				}
				nolint = append(nolint, tok)
				continue
			}
			if cls, ok := strings.CutPrefix(tok, "nolint "); ok {
				cls = strings.TrimSpace(cls)
				if !validNoLintClass(cls) {
					return fmt.Errorf("bad nolint class %q", cls)
				}
				ann |= AnnNoLint
				nolint = append(nolint, cls)
				inClasses = true
				continue
			}
			bit, ok := annNames[tok]
			if !ok {
				return fmt.Errorf("unknown annotation %q", tok)
			}
			ann |= bit
		}
		line = strings.TrimSpace(line[:i])
	}

	// Guard predicate: "@%p1" or "@!%p1".
	guard, guardNeg := NoGuard, false
	if strings.HasPrefix(line, "@") {
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return fmt.Errorf("guard without instruction")
		}
		g := fields[0][1:]
		if strings.HasPrefix(g, "!") {
			guardNeg = true
			g = g[1:]
		}
		p, err := parsePred(g)
		if err != nil {
			return err
		}
		guard = int8(p)
		line = strings.TrimSpace(fields[1])
	}

	op, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	args := splitArgs(rest)

	emit := func(in Instr) {
		in.Guard, in.GuardNeg = guard, guardNeg
		in.Ann |= ann
		in.NoLint = nolint
		b.Emit(in)
	}

	switch {
	case op == "nop":
		emit(Instr{Op: OpNop})
	case op == "exit":
		emit(Instr{Op: OpExit})
	case op == "bar.sync" || op == "bar":
		emit(Instr{Op: OpBar})
	case op == "membar":
		emit(Instr{Op: OpMembar})
	case op == "mov":
		if len(args) != 2 {
			return fmt.Errorf("mov needs dst, src")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpMov, Dst: dst, A: a})
	case op == "selp":
		if len(args) != 4 {
			return fmt.Errorf("selp needs dst, a, b, pred")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		c, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		p, err := parsePred(args[3])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpSelp, Dst: dst, A: a, B: c, PSrc: p})
	case op == "ld.param":
		if len(args) != 2 {
			return fmt.Errorf("ld.param needs dst, index")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil || idx < 0 || idx > 255 {
			return fmt.Errorf("bad parameter index %q", args[1])
		}
		emit(Instr{Op: OpLdParam, Dst: dst, Param: uint8(idx)})
	case strings.HasPrefix(op, "setp."):
		cmp, err := parseCmp(strings.TrimPrefix(op, "setp."))
		if err != nil {
			return err
		}
		if len(args) != 3 {
			return fmt.Errorf("setp needs pred, a, b")
		}
		p, err := parsePred(args[0])
		if err != nil {
			return err
		}
		a, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		c, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpSetp, Cmp: cmp, PDst: p, A: a, B: c})
	case op == "bra":
		target, reconv := "", ""
		for _, a := range strings.Fields(rest) {
			if v, ok := strings.CutPrefix(a, "reconv="); ok {
				reconv = v
			} else if target == "" {
				target = a
			} else {
				return fmt.Errorf("too many branch operands")
			}
		}
		if target == "" {
			return fmt.Errorf("branch without target")
		}
		// Route through the builder's fixup machinery; annotations and
		// guards are applied to the just-emitted instruction.
		if guard == NoGuard {
			b.Bra(target)
		} else {
			b.BraP(Pred(guard), guardNeg, target, reconv)
		}
		if ann != 0 {
			b.AnnotateLast(ann)
		}
		if len(nolint) > 0 {
			b.NoLintLast(nolint...)
		}
	case op == "ld.global" || op == "ld.volatile" || op == "ld":
		if len(args) != 2 {
			return fmt.Errorf("load needs dst, [addr]")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, off, err := parseAddr(args[1])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpLd, Dst: dst, A: base, B: off, Vol: op == "ld.volatile"})
	case op == "st.global" || op == "st":
		if len(args) != 2 {
			return fmt.Errorf("store needs [addr], src")
		}
		base, off, err := parseAddr(args[0])
		if err != nil {
			return err
		}
		v, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpSt, A: base, B: off, C: v})
	case op == "atom.cas":
		if len(args) != 4 {
			return fmt.Errorf("atom.cas needs dst, [addr], cmp, val")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, off, err := parseAddr(args[1])
		if err != nil {
			return err
		}
		cmp, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		val, err := parseOperand(args[3])
		if err != nil {
			return err
		}
		emit(Instr{Op: OpAtomCAS, Dst: dst, A: base, B: off, C: cmp, D: val})
	case op == "atom.exch" || op == "atom.add" || op == "atom.max":
		if len(args) != 3 {
			return fmt.Errorf("%s needs dst, [addr], val", op)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, off, err := parseAddr(args[1])
		if err != nil {
			return err
		}
		val, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		o := map[string]Op{"atom.exch": OpAtomExch, "atom.add": OpAtomAdd, "atom.max": OpAtomMax}[op]
		emit(Instr{Op: o, Dst: dst, A: base, B: off, C: val})
	default:
		aluOps := map[string]Op{
			"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv,
			"rem": OpRem, "min": OpMin, "max": OpMax, "and": OpAnd,
			"or": OpOr, "xor": OpXor, "shl": OpShl, "shr": OpShr,
		}
		o, ok := aluOps[op]
		if !ok {
			return fmt.Errorf("unknown opcode %q", op)
		}
		if len(args) != 3 {
			return fmt.Errorf("%s needs dst, a, b", op)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		c, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		emit(Instr{Op: o, Dst: dst, A: a, B: c})
	}
	return nil
}

// validNoLintClass accepts lowercase kebab-case finding-class names.
func validNoLintClass(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z':
		case c == '-' && i > 0 && i < len(s)-1:
		default:
			return false
		}
	}
	return true
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseReg(s string) (Reg, error) {
	if !strings.HasPrefix(s, "%r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[2:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parsePred(s string) (Pred, error) {
	if !strings.HasPrefix(s, "%p") {
		return 0, fmt.Errorf("expected predicate, got %q", s)
	}
	n, err := strconv.Atoi(s[2:])
	if err != nil || n < 0 || n >= NumPreds {
		return 0, fmt.Errorf("bad predicate %q", s)
	}
	return Pred(n), nil
}

var specialByName = map[string]Special{
	"%tid": SpecTID, "%ntid": SpecNTID, "%ctaid": SpecCTAID,
	"%nctaid": SpecNCTAID, "%laneid": SpecLaneID, "%warpid": SpecWarpID,
	"%smid": SpecSMID, "%gtid": SpecGTID, "%clock": SpecClock,
}

func parseOperand(s string) (Operand, error) {
	if sp, ok := specialByName[s]; ok {
		return S(sp), nil
	}
	if strings.HasPrefix(s, "%r") {
		r, err := parseReg(s)
		if err != nil {
			return Operand{}, err
		}
		return R(r), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil || v < -1<<31 || v > 1<<32-1 {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	return I(int32(v)), nil
}

// parseAddr parses "[base+off]" where base and off are operands; either
// part may be omitted ("[%r1]", "[128]").
func parseAddr(s string) (base, off Operand, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return Operand{}, Operand{}, fmt.Errorf("expected [address], got %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	parts := strings.SplitN(inner, "+", 2)
	base, err = parseOperand(strings.TrimSpace(parts[0]))
	if err != nil {
		return
	}
	if len(parts) == 2 {
		off, err = parseOperand(strings.TrimSpace(parts[1]))
		return
	}
	return base, I(0), nil
}

func parseCmp(s string) (Cmp, error) {
	for c := EQ; c <= GE; c++ {
		if cmpNames[c] == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown comparison %q", s)
}
