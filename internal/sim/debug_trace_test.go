package sim

import (
	"testing"

	"warpsched/internal/isa"
	"warpsched/internal/simt"
)

// TestDebugTraceDivergence single-steps one warp functionally to inspect
// SIMT stack behaviour (development aid; assertions are minimal).
func TestDebugTraceDivergence(t *testing.T) {
	p := divergeProg(t)
	t.Log("\n" + p.Listing())
	cta := simt.NewCTA(0, 32, 1, 1)
	w := simt.NewWarp(p, cta, 0, 0, 0, 0, 32)
	w.Params = []uint32{0}
	for step := 0; step < 100 && !w.Done; step++ {
		pc := w.PC()
		in := w.NextInstr()
		res := w.Execute(int64(step))
		t.Logf("step %d pc=%d %-40s eff=%08x taken=%08x", step, pc, isa.Disasm(in), res.EffMask, res.Taken)
		if in.Op.IsMem() {
			// Functionally apply loads/stores against nothing; skip.
		}
	}
	if !w.Done {
		t.Fatalf("warp did not finish")
	}
	for lane := 0; lane < 4; lane++ {
		t.Logf("lane %d r4=%d", lane, w.Reg(lane, 4))
	}
}
