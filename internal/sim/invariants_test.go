package sim

import (
	"errors"
	"strings"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/isa"
	"warpsched/internal/mem"
)

// lockAddProg increments a shared counter (word 1) under the lock at
// word 0, one critical section per warp (lane 0 takes the lock). It
// exercises the atomic unit, spin loops, volatile loads and lock
// release — the paths the invariant checker watches most closely.
func lockAddProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("inv-lockadd")
	b.Setp(isa.EQ, 1, isa.S(isa.SpecLaneID), isa.I(0))
	b.If(1, false, func() {
		b.Annotate(isa.AnnSync, func() {
			b.DoWhile(0, false, true,
				func() {
					b.AtomCAS(1, isa.I(0), isa.I(0), isa.I(0), isa.I(1))
					b.AnnotateLast(isa.AnnLockAcquire)
				},
				func() { b.Setp(isa.NE, 0, isa.R(1), isa.I(0)) })
			b.LdVol(2, isa.I(1), isa.I(0))
			b.Add(2, isa.R(2), isa.I(1))
			b.St(isa.I(1), isa.I(0), isa.R(2))
			b.Membar()
			b.AtomExch(3, isa.I(0), isa.I(0), isa.I(0))
			b.AnnotateLast(isa.AnnLockRelease)
		})
	})
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// TestInvariantsCleanRuns enables checking on healthy kernels — compute,
// spin locks, queue locks — and requires zero violations plus correct
// functional output.
func TestInvariantsCleanRuns(t *testing.T) {
	const warps = 4 // 2 CTAs × 64 threads
	cases := []struct {
		name       string
		queueLocks bool
	}{
		{"spin-locks", false},
		{"queue-locks", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := testOptions(config.GTO)
			opt.Check = true
			opt.HangWindow = DefaultHangWindow
			opt.GPU.Mem.QueueLocks = tc.queueLocks
			eng, err := New(opt, Launch{
				Prog: lockAddProg(t), GridCTAs: 2, CTAThreads: 64, MemWords: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("checked run failed: %v", err)
			}
			if res.Memory[1] != warps {
				t.Errorf("lock-protected counter = %d, want %d", res.Memory[1], warps)
			}
			if res.Stats.Sync.LockSuccess != warps {
				t.Errorf("LockSuccess = %d, want %d", res.Stats.Sync.LockSuccess, warps)
			}
		})
	}
}

// TestInvariantsIdenticalStats proves the checker is observation-only:
// the same run with and without Check produces identical statistics.
func TestInvariantsIdenticalStats(t *testing.T) {
	run := func(check bool) int64 {
		opt := testOptions(config.GTO)
		opt.Check = check
		eng, err := New(opt, Launch{
			Prog: lockAddProg(t), GridCTAs: 2, CTAThreads: 64, MemWords: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("cycle count differs with checking: %d vs %d", a, b)
	}
}

func invTestEngine(t *testing.T) *Engine {
	t.Helper()
	opt := testOptions(config.GTO)
	opt.Check = true
	eng, err := New(opt, Launch{
		Prog: vecAddProg(t), GridCTAs: 2, CTAThreads: 64,
		Params: []uint32{16, 0, 16, 32}, MemWords: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.dispatch() // occupy warp slots so scoreboard checks engage
	return eng
}

func requireViolation(t *testing.T, err error, name string) {
	t.Helper()
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("expected *InvariantError, got %v", err)
	}
	for _, v := range ie.Violations {
		if v.Name == name {
			if v.Detail == "" {
				t.Errorf("violation %s has empty detail", name)
			}
			return
		}
	}
	t.Fatalf("no %q violation in %v", name, ie.Violations)
}

func TestInvariantDetectsStuckScoreboardBit(t *testing.T) {
	eng := invTestEngine(t)
	if err := eng.checkInvariants(false); err != nil {
		t.Fatalf("clean engine reports violations: %v", err)
	}
	eng.sms[0].regPend[0] |= 1 << 7 // no producer will ever clear r7
	requireViolation(t, eng.checkInvariants(false), "scoreboard.stuck-bit")
}

func TestInvariantDetectsPoolImbalance(t *testing.T) {
	eng := invTestEngine(t)
	eng.sms[0].reqGets++ // phantom get: a leaked request
	requireViolation(t, eng.checkInvariants(false), "pool.balance")
	requireViolation(t, eng.checkInvariants(true), "pool.leak")
}

func TestInvariantDetectsSlotCorruption(t *testing.T) {
	eng := invTestEngine(t)
	m := eng.sms[0]
	m.freeSlots = append(m.freeSlots, m.freeSlots[len(m.freeSlots)-1])
	requireViolation(t, eng.checkInvariants(false), "cta.free-slot")

	eng2 := invTestEngine(t)
	eng2.sms[0].resident++
	requireViolation(t, eng2.checkInvariants(false), "cta.residency")
}

func TestInvariantErrorFormat(t *testing.T) {
	err := &InvariantError{Violations: []InvariantViolation{
		{Name: "pool.balance", Cycle: 4096, SM: 1, Slot: -1, Detail: "x"},
		{Name: "scoreboard.stuck-bit", Cycle: 4096, SM: 0, Slot: 3, Detail: "y"},
		{Name: "a", Cycle: 1, SM: -1, Slot: -1, Detail: "z"},
		{Name: "b", Cycle: 1, SM: -1, Slot: -1, Detail: "w"},
	}}
	s := err.Error()
	for _, want := range []string{"4 invariant violation(s)", "pool.balance@4096 sm1", "sm0/w3", "(+1 more)"} {
		if !strings.Contains(s, want) {
			t.Errorf("error %q missing %q", s, want)
		}
	}
}

// TestAddrFaultStructured checks the engine converts an out-of-range
// memory access into a context-carrying error instead of crashing: the
// wrapped *mem.AddrFault names the address, the faulting SM/warp and the
// operation, and the partial result is still returned.
func TestAddrFaultStructured(t *testing.T) {
	b := isa.NewBuilder("oob-store")
	b.St(isa.I(1<<20), isa.I(0), isa.I(7))
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(testOptions(config.GTO), Launch{
		Prog: p, GridCTAs: 1, CTAThreads: 32, MemWords: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err == nil {
		t.Fatal("out-of-range store completed without error")
	}
	var f *mem.AddrFault
	if !errors.As(err, &f) {
		t.Fatalf("error does not wrap *mem.AddrFault: %v", err)
	}
	if f.Addr != 1<<20 || f.Size != 64 {
		t.Errorf("fault = addr %d size %d, want %d/%d", f.Addr, f.Size, 1<<20, 64)
	}
	if !f.HasCtx || f.Op != isa.OpSt {
		t.Errorf("fault lacks context: %+v", f)
	}
	if res == nil {
		t.Error("no partial result alongside the fault")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("unexpected message: %v", err)
	}
}
