// Package sim is the cycle-level GPU engine: it instantiates SMs with
// warp schedulers, a scoreboard, an ALU writeback pipeline and a port
// into the shared memory system, dispatches CTAs, and advances everything
// one cycle at a time. It corresponds to the GPGPU-Sim core model the
// paper's evaluation runs on, with BOWS and DDOS (internal/core) attached
// at the points Figure 8 shows: DDOS observes setp executions in the
// execution stage and backward branches at the branch unit; BOWS wraps
// the per-scheduler arbitration.
package sim

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"warpsched/internal/config"
	"warpsched/internal/core"
	"warpsched/internal/energy"
	"warpsched/internal/isa"
	"warpsched/internal/mem"
	"warpsched/internal/metrics"
	"warpsched/internal/sched"
	"warpsched/internal/simt"
	"warpsched/internal/stats"
	"warpsched/internal/trace"
)

// Launch describes one kernel launch.
type Launch struct {
	Prog *isa.Program
	// GridCTAs and CTAThreads define the launch geometry; CTAThreads need
	// not be a multiple of 32 (the last warp is partial).
	GridCTAs   int
	CTAThreads int
	Params     []uint32
	// MemWords sizes global memory; Setup initializes it before the run.
	MemWords int
	Setup    func(words []uint32)
}

// Options selects the hardware configuration and scheduling policy.
type Options struct {
	GPU   config.GPU
	Sched config.SchedulerKind
	BOWS  config.BOWS
	DDOS  config.DDOS
	// Detector selects the spin-detection mechanism (empty means
	// config.DetectDDOS, the paper's hash-based detector); BOWS in ddos
	// mode consumes whichever detector is instantiated.
	Detector config.DetectorKind
	// TAGE parameterizes the TAGE-SIB predictor when Detector is
	// config.DetectTAGE (a zero value means config.DefaultTAGE()).
	TAGE config.TAGE
	// WaSP parameterizes the WASP priority-group policy when Sched is
	// config.WASP (a zero value means config.DefaultWaSP()).
	WaSP config.WaSP
	// Profile enables per-PC issue counting (Result.PCProfile), the
	// instruction heatmap behind `warpsim -profile`.
	Profile bool
	// Tracer, when non-nil, receives pipeline events (see internal/trace).
	Tracer Tracer
	// Observer, when non-nil, receives every memory access at issue time
	// and every CTA barrier release. Observation-only: an observed run
	// simulates identically (same cycles, stats and memory image), but a
	// non-nil observer forces serial execution like a Tracer — a shared
	// observer would otherwise see SM events in nondeterministic order.
	Observer Observer

	// Check enables the runtime invariant checker (internal/sim/invariants.go):
	// every CheckEvery cycles (DefaultCheckEvery when zero) the engine
	// cross-checks scoreboards, request-pool balance, CTA accounting and the
	// memory system's internal audit, failing with an *InvariantError.
	// Checks only read state, so a checked run simulates identically.
	Check      bool
	CheckEvery int64
	// HangWindow arms early hang aborts: when positive, a hang classified
	// over two consecutive windows of that many cycles (see
	// internal/sim/hang.go) aborts the run with a *HangError instead of
	// burning the rest of the MaxCycles budget. Zero disables early aborts;
	// progress monitoring still runs passively (at DefaultHangWindow) so
	// watchdog errors carry a HangReport either way.
	HangWindow int64
	// Faults, when non-nil, wires a deterministic fault injector into the
	// memory system (see mem.FaultConfig): seeded latency spikes, response
	// reordering and atomic retry storms. Results remain deterministic for
	// a given seed but differ from uninjected runs.
	Faults *mem.FaultConfig

	// NoFastForward disables the event-driven clock. By default, when
	// every scheduler unit idles and the memory system has no per-cycle
	// work, the engine jumps the cycle counter directly to the next cycle
	// at which machine state can change (earliest memory completion event,
	// BOWS back-off expiry, adaptive-controller window, DDOS time-share
	// epoch, hang-monitor sample or invariant-check boundary),
	// bulk-crediting every per-cycle counter. Fast-forwarded runs are
	// cycle-exact: identical cycle counts, statistics, memory images and
	// hang reports (see TestFastForwardCycleExact and the golden gate).
	NoFastForward bool
	// Shards runs SM ticks on a pool of worker goroutines (at most Shards,
	// clamped to the SM count; 0 or 1 simulates serially). Each cycle is
	// phase-split — serial memory tick, parallel SM ticks, serial merge —
	// with a barrier at the L2 boundary, and SMs never touch shared state
	// during their phase, so results are bit-identical for every value.
	// Runs with a Tracer attached force serial execution (a shared tracer
	// would observe SM events in nondeterministic order).
	Shards int
	// Progress, when non-nil, receives the current cycle count while the
	// run is in flight so another goroutine (e.g. a job server answering a
	// status poll) can observe how far the simulation has advanced. The
	// engine stores into it only at hang-monitor sample boundaries
	// (DefaultHangWindow cycles apart), at event-driven clock jumps and at
	// run end — never per cycle — so the hook is free on the hot path and
	// has zero effect on simulation results.
	Progress *atomic.Int64
}

// Version identifies the simulation semantics of this build. It is part
// of every content-addressed result cache key (internal/server): bump it
// on any change that can alter cycle counts, statistics or memory images
// for some configuration, so stale cached results can never be served
// across engine changes. Observation-only changes (metrics, tracing,
// diagnosis) do not require a bump — the golden-stats gate is the
// arbiter of whether behaviour moved.
const Version = 1

// Tracer receives pipeline events during simulation. trace.Ring is the
// standard implementation.
type Tracer interface {
	Record(trace.Event)
}

// Observer receives memory-system events for dynamic analyses (e.g. the
// race-detection soundness harness in internal/analysis/race). Access is
// called once per issued memory instruction, before the request enters
// the memory system; accs is valid only for the duration of the call.
// BarrierRelease is called after every event that releases a CTA barrier
// — all live warps arrived, or the last straggler exited while others
// waited — and marks a happens-before boundary between the CTA's
// barrier intervals.
type Observer interface {
	Access(w *simt.Warp, pc int32, in *isa.Instr, accs []simt.MemAccess)
	BarrierRelease(cta *simt.CTA)
}

// DefaultOptions returns GTX480 + GTO with BOWS disabled.
func DefaultOptions() Options {
	return Options{
		GPU:   config.GTX480(),
		Sched: config.GTO,
		BOWS:  config.BOWS{Mode: config.BOWSOff},
		DDOS:  config.DefaultDDOS(),
	}
}

// Result is the outcome of a simulation.
type Result struct {
	// Stats aggregates all SMs; PerSM holds the per-SM breakdown.
	Stats stats.Sim
	PerSM []stats.Sim
	// Detection aggregates spin-detection quality (from whichever
	// detector Options.Detector selected) over SMs; PerSMDetection is
	// the per-SM view.
	Detection      core.DetectionMetrics
	PerSMDetection []core.DetectionMetrics
	// ConfirmedSIBs is the union of confirmed SIB PCs across SMs.
	ConfirmedSIBs []int32
	// MaxSIBPTEntries is the maximum concurrent SIB-PT occupancy seen.
	MaxSIBPTEntries int
	// FinalDelayLimits holds each SM's final (adaptive) delay limit.
	FinalDelayLimits []int64
	// PCProfile[pc] counts warp instructions issued at pc (Options.Profile).
	PCProfile []int64
	// Memory exposes the final memory image for verification.
	Memory []uint32
	// FFJumps and FFSkippedCycles report event-driven clock activity: how
	// many times the engine jumped over a fully calm machine and how many
	// cycles those jumps covered. FFSkippedSMTicks counts individual SM
	// ticks elided by per-SM dormancy (an SM can skip ticks while other
	// SMs or the memory system stay busy, so this is usually much larger).
	// All are zero under Options.NoFastForward; none affects any other
	// statistic.
	FFJumps          int64
	FFSkippedCycles  int64
	FFSkippedSMTicks int64
	// Metrics is the end-of-run snapshot of the engine's metrics registry
	// (hierarchical per-SM counters, see internal/metrics).
	Metrics *metrics.Snapshot
}

type wbItem struct {
	slot   int
	isPred bool
	idx    uint8
}

type ctaRec struct {
	cta   *simt.CTA
	slots []int
	done  bool
}

type smUnit struct {
	policy  sched.Policy
	wrapped *core.Wrapped // non-nil when BOWS is on
	slots   []int
	// ffBlocked caches, during a fast-forward decision, how many ready
	// backed-off warps each skipped cycle's failing Pick would have walked
	// past (see core.Wrapped.BackoffStall); fastForward credits it.
	ffBlocked int64
}

type smState struct {
	id  int
	eng *Engine

	warps   []*simt.Warp
	metrics []sched.WarpMetrics
	// regPend/predPend are per-slot scoreboards: bit r of regPend[slot]
	// marks register r pending writeback. One uint64 covers the full
	// register file (isa.NumRegs ≤ 64), so a readiness check is two ANDs
	// against the instruction's precomputed operand masks.
	regPend  []uint64
	predPend []uint64

	wbRing [][]wbItem
	// wbHead tracks cycle % len(wbRing), advanced once per tick, so the
	// hot path never computes an int64 modulo.
	wbHead int
	// wbPending counts items across all wbRing entries; the event-driven
	// clock only skips cycles while it is zero (a pending ALU writeback
	// wakes a warp within ALULat cycles).
	wbPending int
	units     []*smUnit

	det  core.Detector
	bows *core.BOWS

	ctas      []*ctaRec
	freeSlots []int
	resident  int
	// ctasDone counts CTAs completed on this SM. It is per-SM (merged into
	// Engine.ctasDone after each cycle's SM phase) so checkCTADone never
	// writes engine state from a sharded SM tick.
	ctasDone int

	// issued reports whether any scheduler unit issued during the current
	// tick; the engine reads it after the SM phase to decide whether the
	// whole machine is stalled (a fast-forward precondition).
	issued          bool
	issuedThisCycle []bool

	// Dormancy: when a tick ends with nothing issued, no pending ALU
	// writebacks and an empty LSQ, this SM is inert — failing Picks have
	// no side effects, so subsequent ticks are pure per-cycle accounting
	// until a completion callback lands (woke), a CTA is placed (woke), or
	// a time boundary arrives (wakeAt: earliest back-off expiry among
	// ready queued warps, BOWS adaptive window, DDOS time-share epoch).
	// Skipped ticks' counters are bulk-credited by flush at wake-up,
	// making dormant execution cycle-exact (see TestFastForwardCycleExact
	// and the golden gate). dormantSince is the first skipped cycle.
	dormant      bool
	woke         bool
	dormantSince int64
	wakeAt       int64
	ffSkipped    int64 // SM ticks skipped while dormant (observability)
	st           stats.Sim
	maxSIBPT     int
	pcCounts     []int64 // per-PC issue counts (Options.Profile)

	// port caches eng.sys.Port(id); readyFn and doneFn are bound once so
	// the per-cycle Pick and per-request completion allocate no closures.
	port    *mem.Port
	readyFn func(int) bool
	doneFn  func(*mem.Request)
	// reqFree pools memory requests (with their access buffers); requests
	// return to the pool in memDone. reqGets/reqPuts count pool traffic so
	// the invariant checker can prove issued == completed + in-flight and
	// catch request leaks (they are not registered metrics).
	reqFree []*mem.Request
	reqGets int64
	reqPuts int64
}

// instrMasks caches, per PC, the scoreboard bits ready must test: every
// register (source and destination) and predicate the instruction waits
// on. Computed once per launch in New.
type instrMasks struct {
	regs  uint64
	preds uint64
	// kind caches the instruction's readiness class so the scheduler's
	// per-slot ready probe — the hottest call in the simulator — never
	// touches the instruction stream.
	kind readyKind
}

// readyKind classifies what, beyond the scoreboard, gates an
// instruction's issue.
type readyKind uint8

const (
	readyPlain  readyKind = iota // scoreboard only
	readyMem                     // needs LSQ space and per-warp slots
	readyMembar                  // needs an empty per-warp LSQ
)

// The bitmask scoreboards require the architectural limits to fit.
const (
	_ = uint64(1) << (isa.NumRegs - 1)  // compile-time: NumRegs ≤ 64
	_ = uint64(1) << (isa.NumPreds - 1) // compile-time: NumPreds ≤ 64
)

func buildMasks(p *isa.Program) []instrMasks {
	out := make([]instrMasks, p.Len())
	for pc := range out {
		in := p.At(int32(pc))
		mk := &out[pc]
		if in.WritesReg() {
			mk.regs |= 1 << uint(in.Dst)
		}
		for _, o := range [...]isa.Operand{in.A, in.B, in.C, in.D} {
			if o.Kind == isa.OpdReg {
				mk.regs |= 1 << uint(o.Reg)
			}
		}
		if in.Op == isa.OpSetp {
			mk.preds |= 1 << uint(in.PDst)
		}
		if in.Op == isa.OpSelp {
			mk.preds |= 1 << uint(in.PSrc)
		}
		if in.Guarded() {
			mk.preds |= 1 << uint(in.Guard)
		}
		switch {
		case in.Op.IsMem():
			mk.kind = readyMem
		case in.Op == isa.OpMembar:
			mk.kind = readyMembar
		}
	}
	return out
}

// Engine runs one kernel launch to completion. An Engine is entirely
// self-contained (it owns its memory system and SM state), so distinct
// engines may run concurrently on different goroutines; a single Engine
// is not safe for concurrent use.
type Engine struct {
	opt    Options
	launch Launch
	sys    *mem.System
	sms    []*smState
	masks  []instrMasks // per-PC scoreboard masks for launch.Prog
	cycle  int64

	// reg is the engine's metrics registry; every entry is a view over
	// live simulator state or a snapshot-time gauge, so the registry adds
	// no per-cycle cost. agg receives the cross-SM stats aggregate in
	// result() so the energy gauges have a stable address to read.
	reg *metrics.Registry
	agg stats.Sim

	nextCTA   int
	totalCTAs int
	ctasDone  int

	// ffJumps / ffSkipped count event-driven clock jumps and the total
	// cycles they covered (reported in Result; excluded from the metrics
	// registry so golden manifests stay identical across clock modes).
	ffJumps   int64
	ffSkipped int64
}

// New builds an engine for the launch. It validates configuration and
// program.
func New(opt Options, launch Launch) (*Engine, error) {
	if err := opt.GPU.Validate(); err != nil {
		return nil, err
	}
	if err := opt.BOWS.Validate(); err != nil {
		return nil, err
	}
	// Detector and WASP knobs default in place so pre-existing callers
	// (zero Detector, zero TAGE/WaSP) build exactly the machine they
	// always did.
	if opt.Detector == "" {
		opt.Detector = config.DetectDDOS
	}
	switch opt.Detector {
	case config.DetectDDOS:
		if err := opt.DDOS.Validate(); err != nil {
			return nil, err
		}
	case config.DetectTAGE:
		if opt.TAGE == (config.TAGE{}) {
			opt.TAGE = config.DefaultTAGE()
		}
		if err := opt.TAGE.Validate(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sim: unknown detector kind %q (valid kinds: %v)",
			opt.Detector, config.Detectors)
	}
	if opt.Sched == config.WASP {
		if opt.WaSP == (config.WaSP{}) {
			opt.WaSP = config.DefaultWaSP()
		}
		if err := opt.WaSP.Validate(); err != nil {
			return nil, err
		}
	}
	if launch.Prog == nil {
		return nil, fmt.Errorf("sim: launch has no program")
	}
	if err := launch.Prog.Validate(); err != nil {
		return nil, err
	}
	if launch.GridCTAs <= 0 || launch.CTAThreads <= 0 {
		return nil, fmt.Errorf("sim: launch geometry must be positive (%d CTAs × %d threads)",
			launch.GridCTAs, launch.CTAThreads)
	}
	warpsPerCTA := (launch.CTAThreads + 31) / 32
	if warpsPerCTA > opt.GPU.WarpsPerSM {
		return nil, fmt.Errorf("sim: CTA of %d threads needs %d warp slots but SM has %d",
			launch.CTAThreads, warpsPerCTA, opt.GPU.WarpsPerSM)
	}
	if launch.MemWords <= 0 {
		return nil, fmt.Errorf("sim: launch must size memory (MemWords)")
	}

	e := &Engine{opt: opt, launch: launch, totalCTAs: launch.GridCTAs}
	e.masks = buildMasks(launch.Prog)
	e.sys = mem.NewSystem(opt.GPU.Mem, opt.GPU.NumSMs, opt.GPU.WarpsPerSM, launch.MemWords)
	if opt.Faults != nil {
		e.sys.InjectFaults(*opt.Faults)
	}
	if launch.Setup != nil {
		launch.Setup(e.sys.Words())
	}

	// The selected detector runs in every configuration (it is
	// observation-only unless BOWS consumes it), so detection metrics
	// are always available.
	newDetector := func() core.Detector {
		if opt.Detector == config.DetectTAGE {
			return core.NewTAGESIB(opt.TAGE, opt.GPU.WarpsPerSM)
		}
		return core.NewDDOS(opt.DDOS, opt.GPU.WarpsPerSM)
	}
	slotsPer := opt.GPU.WarpsPerSM / opt.GPU.SchedulersPerSM
	for id := 0; id < opt.GPU.NumSMs; id++ {
		m := &smState{
			id:              id,
			eng:             e,
			warps:           make([]*simt.Warp, opt.GPU.WarpsPerSM),
			metrics:         make([]sched.WarpMetrics, opt.GPU.WarpsPerSM),
			regPend:         make([]uint64, opt.GPU.WarpsPerSM),
			predPend:        make([]uint64, opt.GPU.WarpsPerSM),
			wbRing:          make([][]wbItem, opt.GPU.ALULat+1),
			issuedThisCycle: make([]bool, opt.GPU.WarpsPerSM),
			det:             newDetector(),
			port:            e.sys.Port(id),
		}
		m.readyFn = m.ready
		m.doneFn = m.memDone
		if opt.BOWS.Mode != config.BOWSOff {
			m.bows = core.NewBOWS(opt.BOWS, m.det, opt.GPU.WarpsPerSM)
		}
		if opt.Profile {
			m.pcCounts = make([]int64, launch.Prog.Len())
		}
		for u := 0; u < opt.GPU.SchedulersPerSM; u++ {
			slots := make([]int, slotsPer)
			for i := range slots {
				slots[i] = u*slotsPer + i
			}
			base, err := sched.New(opt.Sched, slots, m.metrics,
				sched.Params{GTORotatePeriod: opt.GPU.GTORotatePeriod, WaSP: opt.WaSP})
			if err != nil {
				return nil, err
			}
			unit := &smUnit{policy: base, slots: slots}
			if m.bows != nil {
				unit.wrapped = core.Wrap(base, m.bows)
				unit.policy = unit.wrapped
			}
			m.units = append(m.units, unit)
		}
		for s := opt.GPU.WarpsPerSM - 1; s >= 0; s-- {
			m.freeSlots = append(m.freeSlots, s)
		}
		e.sys.AttachSync(id, &m.st.Sync)
		e.sms = append(e.sms, m)
	}
	e.reg = metrics.NewRegistry()
	e.registerMetrics()
	return e, nil
}

// Metrics exposes the engine's registry (live values; snapshot at will).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// registerMetrics builds the engine's metric surface: hierarchical views
// over the live per-SM stats fields plus the scheduler, detector, memory
// and energy subsystem hooks. Registration happens once in New and
// touches no simulation state, so instrumented and uninstrumented runs
// are cycle-identical.
func (e *Engine) registerMetrics() {
	r := e.reg
	r.Int64("engine.cycles", &e.cycle)
	r.Gauge("engine.ctas_done", func() float64 { return float64(e.ctasDone) })
	for _, m := range e.sms {
		p := fmt.Sprintf("sm%d.", m.id)
		st := &m.st
		r.Int64(p+"exec.warp_instrs", &st.WarpInstrs)
		r.Int64(p+"exec.thread_instrs", &st.ThreadInstrs)
		r.Int64(p+"exec.sync_thread_instrs", &st.SyncThreadInstrs)
		r.Int64(p+"exec.sib_instrs", &st.SIBInstrs)
		r.Int64(p+"exec.active_lane_sum", &st.ActiveLaneSum)
		r.Int64(p+"sched.issue_cycles", &st.IssueCycles)
		r.Int64(p+"sched.idle_cycles", &st.IdleCycles)
		r.Int64(p+"sched.stall_warp_cycles", &st.StallTotal)
		r.Int64(p+"sched.backed_off_sum", &st.BackedOffSum)
		r.Int64(p+"sched.resident_sum", &st.ResidentSum)
		r.Int64(p+"sched.sample_cycles", &st.SampleCycles)
		r.Int64(p+"sched.backoff_blocks", &st.BackoffBlocks)
		r.Int64(p+"sync.lock_success", &st.Sync.LockSuccess)
		r.Int64(p+"sync.lock_fail_inter_warp", &st.Sync.InterWarpFail)
		r.Int64(p+"sync.lock_fail_intra_warp", &st.Sync.IntraWarpFail)
		r.Int64(p+"sync.wait_exit_success", &st.Sync.WaitExitSuccess)
		r.Int64(p+"sync.wait_exit_fail", &st.Sync.WaitExitFail)
		r.Int64(p+"sync.lock_release", &st.Sync.LockRelease)
		e.sys.RegisterMetrics(r, m.id, p+"mem.")
		// The detector's registry prefix follows its kind, so manifests
		// name DDOS counters "ddos.*" (their historical names) and TAGE
		// counters "tage.*".
		dp := p + "ddos."
		if e.opt.Detector == config.DetectTAGE {
			dp = p + "tage."
		}
		m.det.RegisterMetrics(r, dp)
		if m.bows != nil {
			m.bows.RegisterMetrics(r, p+"bows.")
		}
		for j, u := range m.units {
			up := fmt.Sprintf("%ssched.u%d.", p, j)
			if u.wrapped != nil {
				u.wrapped.RegisterMetrics(r, up)
			} else if ins, ok := u.policy.(sched.Instrumented); ok {
				ins.RegisterMetrics(r, up)
			}
		}
	}
	energy.Register(r, "energy.", energy.ByConfigName(e.opt.GPU.Name), &e.agg)
}

// Run simulates to completion and returns the result. It fails on the
// MaxCycles watchdog (livelock/deadlock guard) with a *HangError whose
// report classifies the stall and names the stuck warps; with
// Options.HangWindow set it aborts as soon as a hang is confirmed. A
// memory-system address fault (out-of-range access) is recovered into an
// error wrapping *mem.AddrFault rather than crashing the process; the
// partial result accompanies every failure.
func (e *Engine) Run() (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(*mem.AddrFault)
			if !ok {
				panic(r) // unknown panic: not ours to translate
			}
			res = e.result()
			err = fmt.Errorf("sim: %s on %s/%s: cycle %d: %w",
				e.launch.Prog.Name, e.opt.GPU.Name, e.opt.Sched, e.cycle, f)
		}
	}()

	if p := e.opt.Progress; p != nil {
		// Final store on every exit path so pollers observing a finished
		// run see its true cycle count.
		defer func() { p.Store(e.cycle) }()
	}
	checkEvery := e.opt.CheckEvery
	if checkEvery <= 0 {
		checkEvery = DefaultCheckEvery
	}
	nextCheck := checkEvery
	hm := newHangMonitor(e)
	ff := !e.opt.NoFastForward
	pool := e.newShardPool()
	if pool != nil {
		// Registered after the AddrFault-translating recover above, so the
		// workers are parked before a recovered fault returns.
		defer pool.stop()
	}

	e.dispatch()
	for e.ctasDone < e.totalCTAs {
		if e.cycle >= e.opt.GPU.MaxCycles {
			// Refresh the progress deltas over the final (partial) window so
			// the report reflects the machine's state at abort time, and
			// return the partial result alongside the error so callers can
			// inspect what the machine was doing when the watchdog fired.
			hm.sample()
			return e.result(), &HangError{
				Report:    e.buildHangReport(hm, hm.lastClass),
				Watchdog:  true,
				MaxCycles: e.opt.GPU.MaxCycles,
			}
		}
		if e.cycle >= hm.next {
			if p := e.opt.Progress; p != nil {
				p.Store(e.cycle)
			}
			if class := hm.sample(); class != HangUnknown && e.opt.HangWindow > 0 {
				return e.result(), &HangError{Report: e.buildHangReport(hm, class)}
			}
		}
		if e.opt.Check && e.cycle >= nextCheck {
			nextCheck = e.cycle + checkEvery
			if ierr := e.checkInvariants(false); ierr != nil {
				return e.result(), ierr
			}
		}
		e.sys.Tick(e.cycle)
		issued := e.tickSMs(pool)
		if e.nextCTA < e.totalCTAs {
			e.dispatch()
		}
		// Event-driven clock jump: when every SM is dormant and the memory
		// system has no queued per-cycle work, nothing can change until the
		// next event, so jump straight to it. SM counters for the skipped
		// cycles are credited lazily when each SM wakes (smState.flush);
		// only the L2 token refill is time-proportional during idle memory
		// cycles and is credited here. Landing on t-1 makes the e.cycle++
		// below arrive exactly at t, so the loop-top watchdog / hang-sample
		// / invariant boundaries fire at precisely the cycles a per-cycle
		// run would visit.
		if ff && !issued && e.calm() {
			if t := e.nextWake(hm.next, nextCheck); t > e.cycle+1 {
				e.sys.FastForward(t - e.cycle - 1)
				e.ffJumps++
				e.ffSkipped += t - e.cycle - 1
				e.cycle = t - 1
				if p := e.opt.Progress; p != nil {
					p.Store(e.cycle)
				}
			}
		}
		e.cycle++
	}
	// Close out dormant SMs at the cycle the issue loop stopped ticking
	// them: the drain below advances e.cycle without SM ticks, so credits
	// must not extend into it.
	e.flushSMs()
	// Drain in-flight stores so the final memory image is complete. Only
	// the memory system ticks here, so the event-driven clock jumps to the
	// event heap's next timestamp whenever the service queues are empty
	// (clamped to MaxCycles so a drain that can never finish — e.g. parked
	// lock waiters with no releaser — reports at the same cycle either way).
	for !e.sys.Quiescent() {
		if e.cycle >= e.opt.GPU.MaxCycles {
			// Like the issue-loop watchdog above: return the partial result
			// alongside the error so callers can inspect the stuck state.
			return e.result(), fmt.Errorf("sim: %s: memory system failed to drain", e.launch.Prog.Name)
		}
		e.sys.Tick(e.cycle)
		e.cycle++
		// Jump only while still non-quiescent: the tick above may have just
		// completed the drain, and a per-cycle run would then exit at the
		// very next cycle, not coast to the next boundary.
		if ff && !e.sys.Quiescent() && e.sys.Idle() {
			t := e.opt.GPU.MaxCycles
			if at, ok := e.sys.NextEventAt(); ok && at < t {
				t = at
			}
			if t > e.cycle {
				e.sys.FastForward(t - e.cycle)
				e.ffJumps++
				e.ffSkipped += t - e.cycle
				e.cycle = t
			}
		}
	}
	if e.opt.Check {
		if ierr := e.checkInvariants(true); ierr != nil {
			return e.result(), ierr
		}
	}
	return e.result(), nil
}

// tickSMs runs every SM's tick for the current cycle — serially, or on
// the shard pool when one is attached — then merges the per-SM CTA
// completion counts and reports whether any unit issued. The merge order
// is the fixed SM order, so sharded and serial runs are bit-identical.
func (e *Engine) tickSMs(pool *shardPool) (issued bool) {
	if pool == nil {
		for _, m := range e.sms {
			m.tickOrSkip(e.cycle)
		}
	} else {
		// Dispatching the pool costs a cross-core barrier handoff; skip
		// it on cycles where every SM would skip its tick anyway (all
		// dormant, no wake due) — common while the machine waits out
		// memory latency. Equivalent to the serial loop, whose calls
		// would all return immediately.
		work := false
		for _, m := range e.sms {
			if !m.dormant || m.woke || e.cycle >= m.wakeAt {
				work = true
				break
			}
		}
		if work {
			pool.run(e.cycle)
		}
	}
	done := 0
	for _, m := range e.sms {
		issued = issued || m.issued
		done += m.ctasDone
	}
	e.ctasDone = done
	return issued
}

// calm reports whether simulated time alone can change machine state:
// every SM is dormant with no wake-up pending (which implies no ALU
// writebacks and empty LSQs) and the memory system has no queued
// per-cycle work. This is the clock-jump precondition: scoreboards,
// barrier states, port admission and warp readiness are all static until
// the next scheduled event or time boundary.
func (e *Engine) calm() bool {
	for _, m := range e.sms {
		if !m.dormant || m.woke {
			return false
		}
	}
	return e.sys.Idle()
}

// nextWake returns the earliest future cycle at which the calm machine
// can change state: the memory event heap's minimum timestamp, each
// dormant SM's cached wake-up boundary (earliest back-off expiry among
// ready warps, adaptive delay-limit window, DDOS time-share epoch — see
// smState.sleep), the next hang-monitor sample or invariant sweep, or the
// MaxCycles watchdog. Every candidate is strictly greater than the
// current cycle (boundaries that already fired this cycle were re-armed
// beyond it); a candidate gated on instruction progress reports MaxInt64
// since no instruction can issue while the machine is stalled.
func (e *Engine) nextWake(hmNext, nextCheck int64) int64 {
	t := e.opt.GPU.MaxCycles
	if hmNext < t {
		t = hmNext
	}
	if e.opt.Check && nextCheck < t {
		t = nextCheck
	}
	if at, ok := e.sys.NextEventAt(); ok && at < t {
		t = at
	}
	for _, m := range e.sms {
		if m.wakeAt < t {
			t = m.wakeAt
		}
	}
	return t
}

// tickOrSkip is the per-cycle SM entry point: it skips the tick entirely
// while the SM is dormant and nothing has arrived to wake it, flushes and
// ticks when a wake-up condition holds, and re-evaluates dormancy after
// every real tick.
func (m *smState) tickOrSkip(cycle int64) {
	if m.dormant {
		if !m.woke && cycle < m.wakeAt {
			return // inert: credits accrue lazily until flush
		}
		m.flush(cycle)
	}
	m.tick(cycle)
	if !m.issued && m.wbPending == 0 && !m.eng.opt.NoFastForward && m.port.LSQEmpty() {
		m.sleep(cycle)
	}
}

// sleep marks the SM dormant after a tick in which nothing issued, no ALU
// writeback is pending and the LSQ is empty. In that state a tick's only
// effects are per-cycle accounting (failing Picks are side-effect-free —
// see internal/sched — except for blocked-pick counts, whose per-cycle
// contribution is cached here in u.ffBlocked). State can next change at a
// completion callback (memDone sets woke), a CTA placement (placeCTA sets
// woke), or the earliest time boundary computed here: a ready queued
// warp's back-off expiry, the BOWS adaptive window close, or the DDOS
// time-share epoch rotation.
func (m *smState) sleep(cycle int64) {
	wake := m.det.NextEpochBoundary()
	if m.bows != nil {
		if b := m.bows.NextWindowBoundary(); b < wake {
			wake = b
		}
	}
	for _, u := range m.units {
		if u.wrapped == nil {
			continue
		}
		w, blocked := u.wrapped.BackoffStall(m.readyFn)
		u.ffBlocked = blocked
		if w < wake {
			wake = w
		}
	}
	m.dormant = true
	m.woke = false
	m.dormantSince = cycle + 1
	m.wakeAt = wake
}

// flush ends a dormant span at cycle (exclusive) and bulk-credits the
// skipped ticks so every counter a per-cycle run would have accrued is
// identical: per-unit idle cycles, per-warp residency/stall/backed-off
// accounting (BackedOff is sticky — it only changes when the warp
// issues, so the end-of-span value holds for the whole span), blocked
// pick attempts (cached by sleep), and the writeback ring position (the
// ring is empty — only its phase must track cycle).
func (m *smState) flush(cycle int64) {
	delta := cycle - m.dormantSince
	m.dormant = false
	m.woke = false
	if delta <= 0 {
		return
	}
	m.ffSkipped += delta
	m.st.IdleCycles += int64(len(m.units)) * delta
	m.st.SampleCycles += delta
	for slot, w := range m.warps {
		if w == nil || w.Done {
			continue
		}
		mt := &m.metrics[slot]
		mt.ResidentCycles += delta
		mt.StallCycles += delta
		m.st.ResidentSum += delta
		m.st.StallTotal += delta
		if m.bows != nil && m.bows.BackedOff(slot) {
			m.st.BackedOffSum += delta
		}
	}
	m.wbHead = int((int64(m.wbHead) + delta) % int64(len(m.wbRing)))
	for _, u := range m.units {
		if u.wrapped != nil && u.ffBlocked > 0 {
			u.wrapped.CreditBlockedPicks(u.ffBlocked * delta)
		}
	}
}

// flushSMs settles every dormant SM's lazy credits up to the current
// cycle. Any engine-side reader of SM statistics — the hang monitor, the
// invariant checker, result — must flush first so it observes exactly the
// state a per-cycle run would have.
func (e *Engine) flushSMs() {
	for _, m := range e.sms {
		if m.dormant {
			m.flush(e.cycle)
		}
	}
}

// Cycle returns the current simulation cycle.
func (e *Engine) Cycle() int64 { return e.cycle }

// dispatch places pending CTAs onto SMs with capacity.
func (e *Engine) dispatch() {
	warpsPerCTA := (e.launch.CTAThreads + 31) / 32
	for _, m := range e.sms {
		for e.nextCTA < e.totalCTAs &&
			m.resident < e.opt.GPU.MaxCTAsPerSM &&
			len(m.freeSlots) >= warpsPerCTA {
			m.placeCTA(e.nextCTA, warpsPerCTA)
			e.nextCTA++
		}
	}
}

func (m *smState) placeCTA(ctaID, warpsPerCTA int) {
	m.woke = true // freshly placed warps are ready: end any dormancy
	l := &m.eng.launch
	cta := simt.NewCTA(int32(ctaID), int32(l.CTAThreads), int32(l.GridCTAs), warpsPerCTA)
	rec := &ctaRec{cta: cta}
	for wi := 0; wi < warpsPerCTA; wi++ {
		slot := m.freeSlots[len(m.freeSlots)-1]
		m.freeSlots = m.freeSlots[:len(m.freeSlots)-1]
		lanes := 32
		if rem := l.CTAThreads - wi*32; rem < 32 {
			lanes = rem
		}
		gtidBase := int32(ctaID*l.CTAThreads + wi*32)
		w := simt.NewWarp(l.Prog, cta, wi, slot, m.id, gtidBase, lanes)
		w.Params = l.Params
		m.warps[slot] = w
		m.metrics[slot] = sched.WarpMetrics{Resident: true, EstRemaining: int64(l.Prog.Len())}
		rec.slots = append(rec.slots, slot)
	}
	m.ctas = append(m.ctas, rec)
	m.resident++
}

// ready reports whether the warp in slot can issue its next instruction.
func (m *smState) ready(slot int) bool {
	w := m.warps[slot]
	if w == nil || w.Done || w.AtBarrier {
		return false
	}
	pc := w.PC()
	mk := &m.eng.masks[pc]
	if m.regPend[slot]&mk.regs != 0 || m.predPend[slot]&mk.preds != 0 {
		return false
	}
	switch mk.kind {
	case readyMem:
		return m.port.Outstanding(slot) < m.eng.opt.GPU.Mem.MaxPerWarp && m.port.CanAccept(1)
	case readyMembar:
		return m.port.Outstanding(slot) == 0
	}
	return true
}

func (m *smState) tick(cycle int64) {
	// 1. ALU writeback. wbHead tracks cycle % len(wbRing) (advanced at the
	// end of each tick), avoiding the per-cycle int64 modulo.
	ring := &m.wbRing[m.wbHead]
	m.wbPending -= len(*ring)
	for _, it := range *ring {
		if it.isPred {
			m.predPend[it.slot] &^= 1 << it.idx
		} else {
			m.regPend[it.slot] &^= 1 << it.idx
		}
	}
	*ring = (*ring)[:0]

	// 2. Detector / controller ticks.
	m.det.Tick(cycle)
	if m.bows != nil {
		m.bows.Tick(cycle)
	}

	// 3. Issue: one instruction per scheduler unit.
	m.issued = false
	for _, u := range m.units {
		slot := u.policy.Pick(cycle, m.readyFn)
		if slot < 0 {
			m.st.IdleCycles++
			continue
		}
		m.st.IssueCycles++
		m.issued = true
		m.issue(u, slot, cycle)
	}

	// 4. Per-warp accounting (CAWA metrics, Figure 11 sampling).
	m.st.SampleCycles++
	for slot, w := range m.warps {
		if w == nil || w.Done {
			continue
		}
		mt := &m.metrics[slot]
		mt.ResidentCycles++
		m.st.ResidentSum++
		if m.issuedThisCycle[slot] {
			m.issuedThisCycle[slot] = false
		} else {
			mt.StallCycles++
			m.st.StallTotal++
		}
		if m.bows != nil && m.bows.BackedOff(slot) {
			m.st.BackedOffSum++
		}
	}
	if n := m.det.TableLen(); n > m.maxSIBPT {
		m.maxSIBPT = n
	}
	if m.wbHead++; m.wbHead == len(m.wbRing) {
		m.wbHead = 0
	}
}

// pushWB schedules a scoreboard release ALULat cycles from now.
func (m *smState) pushWB(slot int, isPred bool, idx uint8) {
	at := m.wbHead + int(m.eng.opt.GPU.ALULat)
	if at >= len(m.wbRing) {
		at -= len(m.wbRing)
	}
	m.wbRing[at] = append(m.wbRing[at], wbItem{slot: slot, isPred: isPred, idx: idx})
	m.wbPending++
}

// issue executes one instruction from the warp in slot.
func (m *smState) issue(u *smUnit, slot int, cycle int64) {
	w := m.warps[slot]
	res := w.Execute(cycle)
	in := res.Instr
	lanes := int64(res.ActiveLanes())

	m.st.WarpInstrs++
	m.st.ThreadInstrs += lanes
	m.st.ActiveLaneSum += lanes
	if in.HasAnn(isa.AnnSync) {
		m.st.SyncThreadInstrs += lanes
	}
	m.issuedThisCycle[slot] = true
	m.metrics[slot].Issued++
	if m.pcCounts != nil {
		m.pcCounts[res.PC]++
	}
	if tr := m.eng.opt.Tracer; tr != nil {
		tr.Record(trace.Event{Cycle: cycle, SM: m.id, Slot: slot,
			Kind: trace.KindIssue, PC: res.PC, Op: in.Op, Lanes: int(lanes)})
		if m.bows != nil && m.bows.BackedOff(slot) {
			// OnIssue below will exit the backed-off state.
			tr.Record(trace.Event{Cycle: cycle, SM: m.id, Slot: slot,
				Kind: trace.KindBackoffExit, PC: res.PC})
		}
	}
	u.policy.OnIssue(slot, cycle)

	switch {
	case res.IsBranch:
		u.policy.OnBranch(slot, res.BackwardTaken)
		if res.BackwardTaken {
			m.det.OnBranch(slot, res.PC, in.HasAnn(isa.AnnSIB), cycle)
			if in.HasAnn(isa.AnnSIB) {
				m.st.SIBInstrs++
			}
			if u.wrapped != nil {
				if m.bows.IsSIB(res.PC, in) {
					u.wrapped.OnSIB(slot)
					if tr := m.eng.opt.Tracer; tr != nil {
						tr.Record(trace.Event{Cycle: cycle, SM: m.id, Slot: slot,
							Kind: trace.KindSIB, PC: res.PC})
					}
				} else {
					m.bows.OnBackwardNonSIB(slot)
				}
			}
		}
		if in.HasAnn(isa.AnnWaitCheck) {
			m.st.Sync.WaitExitFail += int64(bits.OnesCount32(res.Taken))
			m.st.Sync.WaitExitSuccess += int64(bits.OnesCount32(res.NotTaken))
		}
	case res.IsSetp:
		m.det.OnSetp(slot, res.PC, res.SetpLane, res.SetpV1, res.SetpV2)
		m.predPend[slot] |= 1 << uint(in.PDst)
		m.pushWB(slot, true, uint8(in.PDst))
	case in.Op == isa.OpMembar:
		m.eng.sys.Stats(m.id).FenceOps++
	case in.Op == isa.OpBar:
		w.CTA.Arrive(w)
		if tr := m.eng.opt.Tracer; tr != nil {
			tr.Record(trace.Event{Cycle: cycle, SM: m.id, Slot: slot,
				Kind: trace.KindBarrier, PC: res.PC})
		}
	case in.Op.IsMem():
		if ob := m.eng.opt.Observer; ob != nil && len(res.Mem) > 0 {
			ob.Access(w, res.PC, in, res.Mem)
		}
		m.issueMem(w, in, res, slot)
	case in.WritesReg():
		m.regPend[slot] |= 1 << uint(in.Dst)
		m.pushWB(slot, false, uint8(in.Dst))
	}

	if w.Done {
		m.checkCTADone(w.CTA)
	}
	if ob := m.eng.opt.Observer; ob != nil && w.CTA.Released {
		w.CTA.Released = false
		ob.BarrierRelease(w.CTA)
	}
}

func (m *smState) issueMem(w *simt.Warp, in *isa.Instr, res simt.ExecResult, slot int) {
	req := m.getReq()
	accs := req.Accesses[:0]
	for _, a := range res.Mem {
		accs = append(accs, mem.Access{Lane: a.Lane, Addr: a.Addr, V1: a.V1, V2: a.V2, GTID: a.GTID})
	}
	req.SM, req.WarpSlot = m.id, slot
	req.Op, req.Ann, req.Vol = in.Op, in.Ann, in.Vol
	req.Accesses = accs
	req.Dst, req.WritesReg = in.Dst, in.WritesReg()
	// The warp travels in the request: the slot may be recycled by a new
	// CTA before a store drains, so writeback must target this warp, not
	// whatever occupies the slot at completion time.
	req.Owner = w
	req.Done = m.doneFn
	if req.WritesReg && len(accs) > 0 {
		m.regPend[slot] |= 1 << uint(in.Dst)
	}
	m.port.Enqueue(req)
}

// getReq takes a pooled memory request (or allocates one). Requests
// return to the pool in memDone, after the memory system's final touch.
func (m *smState) getReq() *mem.Request {
	m.reqGets++
	if n := len(m.reqFree); n > 0 {
		req := m.reqFree[n-1]
		m.reqFree[n-1] = nil
		m.reqFree = m.reqFree[:n-1]
		return req
	}
	return &mem.Request{Accesses: make([]mem.Access, 0, 32)}
}

// memDone is the completion callback for every memory request this SM
// issues: it writes loaded values back to the issuing warp, releases the
// destination-register scoreboard bit, and recycles the request.
func (m *smState) memDone(r *mem.Request) {
	// Any completion can change warp readiness (scoreboard clear,
	// outstanding count, lock wake), so it ends this SM's dormancy.
	m.woke = true
	if r.WritesReg {
		w := r.Owner.(*simt.Warp)
		for i := range r.Accesses {
			a := &r.Accesses[i]
			w.SetReg(a.Lane, r.Dst, a.Result)
		}
		if len(r.Accesses) > 0 {
			m.regPend[r.WarpSlot] &^= 1 << uint(r.Dst)
		}
	}
	r.Owner = nil
	m.reqPuts++
	m.reqFree = append(m.reqFree, r)
}

func (m *smState) checkCTADone(cta *simt.CTA) {
	if cta.LiveWarps() != 0 {
		return
	}
	for _, rec := range m.ctas {
		if rec.cta == cta && !rec.done {
			rec.done = true
			for _, s := range rec.slots {
				m.warps[s] = nil
				m.metrics[s] = sched.WarpMetrics{}
				m.freeSlots = append(m.freeSlots, s)
			}
			m.resident--
			m.ctasDone++
			return
		}
	}
}

func (e *Engine) result() *Result {
	e.flushSMs()
	r := &Result{Memory: e.sys.Words(), FFJumps: e.ffJumps, FFSkippedCycles: e.ffSkipped}
	for _, m := range e.sms {
		r.FFSkippedSMTicks += m.ffSkipped
	}
	seen := make(map[int32]struct{})
	for _, m := range e.sms {
		m.st.Cycles = e.cycle
		m.st.Mem = *e.sys.Stats(m.id)
		m.st.BackoffBlocks = 0
		for _, u := range m.units {
			if u.wrapped != nil {
				m.st.BackoffBlocks += u.wrapped.BlockedPicks()
			}
		}
		if m.bows != nil {
			r.FinalDelayLimits = append(r.FinalDelayLimits, m.bows.DelayLimit())
		}
		det := m.det.Metrics()
		r.PerSM = append(r.PerSM, m.st)
		r.PerSMDetection = append(r.PerSMDetection, det)
		r.Detection.Add(det)
		r.Stats.Add(&m.st)
		for _, pc := range m.det.ConfirmedPCs() {
			if _, ok := seen[pc]; !ok {
				seen[pc] = struct{}{}
				r.ConfirmedSIBs = append(r.ConfirmedSIBs, pc)
			}
		}
		if m.maxSIBPT > r.MaxSIBPTEntries {
			r.MaxSIBPTEntries = m.maxSIBPT
		}
		if m.pcCounts != nil {
			if r.PCProfile == nil {
				r.PCProfile = make([]int64, len(m.pcCounts))
			}
			for pc, n := range m.pcCounts {
				r.PCProfile[pc] += n
			}
		}
	}
	// Snapshot after the aggregate lands in e.agg so the energy gauges
	// (registered over &e.agg) read the finished run.
	e.agg = r.Stats
	r.Metrics = e.reg.Snapshot()
	return r
}
