// Sharded SM execution: the per-cycle SM phase runs on a pool of worker
// goroutines with a spin barrier at the L2/interconnect boundary.
//
// Each simulated cycle is already phase-split by Engine.Run: the memory
// system ticks first (serially — it fires completion callbacks into SM
// scoreboards), then every SM ticks, then the engine merges per-SM CTA
// completions and dispatches. During the SM phase an smState touches only
// its own state plus its private mem.Port (LSQ, L1, stats, segment pool);
// the shared System queues are only appended to through Port.Enqueue into
// the port-local LSQ, drained later by the serial memory phase. SMs are
// therefore data-independent within the phase and can tick concurrently
// in any order with bit-identical results — determinism comes from the
// phase structure, not from scheduling luck.
//
// The barrier is a pair of atomic counters (epoch released by the
// coordinator, done counted by workers) rather than channels or a
// sync.WaitGroup per cycle: at millions of barriers per run, futex-based
// primitives dominate the simulated work. Workers spin briefly and yield;
// the coordinator runs shard 0 itself between releasing and waiting, so
// the pool adds no latency when shards outnumber free cores.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// shardPool runs SM ticks for one Engine across worker goroutines.
type shardPool struct {
	// groups is a near-equal contiguous partition of the engine's SMs;
	// groups[0] is ticked by the coordinating goroutine itself.
	groups [][]*smState

	// cycle is published before epoch is advanced and read by workers
	// after they observe the new epoch (release/acquire via the atomic).
	cycle int64
	epoch atomic.Int64 // advanced to release workers; -1 stops them
	done  atomic.Int64 // cumulative completed worker-phases

	// panics[g] carries a recovered panic out of worker g's SM phase; the
	// coordinator re-raises them in group order after the barrier, so a
	// fault on a worker surfaces exactly like a serial run's would (the
	// engine's AddrFault recovery included).
	panics []any
	wg     sync.WaitGroup
}

// newShardPool builds the worker pool for e, or returns nil when the
// engine should tick serially: Shards ≤ 1 after clamping to the SM
// count, or a Tracer or Observer is attached (a shared sink must observe
// events in deterministic SM order, which only the serial loop
// guarantees).
func (e *Engine) newShardPool() *shardPool {
	n := e.opt.Shards
	if n > len(e.sms) {
		n = len(e.sms)
	}
	if n <= 1 || e.opt.Tracer != nil || e.opt.Observer != nil {
		return nil
	}
	p := &shardPool{groups: make([][]*smState, n), panics: make([]any, n)}
	per, extra := len(e.sms)/n, len(e.sms)%n
	lo := 0
	for g := range p.groups {
		hi := lo + per
		if g < extra {
			hi++
		}
		p.groups[g] = e.sms[lo:hi]
		lo = hi
	}
	for g := 1; g < n; g++ {
		p.wg.Add(1)
		go p.worker(g)
	}
	return p
}

// run executes one SM phase at cycle across the pool and blocks until
// every shard has finished. Worker panics are re-raised here, lowest
// group first, after all shards reach the barrier.
func (p *shardPool) run(cycle int64) {
	p.cycle = cycle
	target := p.done.Load() + int64(len(p.groups)-1)
	p.epoch.Add(1)
	for _, m := range p.groups[0] {
		m.tickOrSkip(cycle)
	}
	for spins := 0; p.done.Load() != target; spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
	for g := 1; g < len(p.groups); g++ {
		if r := p.panics[g]; r != nil {
			p.panics[g] = nil
			panic(r)
		}
	}
}

// stop releases the workers for good and waits for them to exit. Safe to
// call only between cycles (never concurrently with run).
func (p *shardPool) stop() {
	p.epoch.Store(-1)
	p.wg.Wait()
}

func (p *shardPool) worker(g int) {
	defer p.wg.Done()
	var seen int64
	for spins := 0; ; spins++ {
		ep := p.epoch.Load()
		if ep == seen {
			if spins > 64 {
				runtime.Gosched()
			}
			continue
		}
		if ep < 0 {
			return
		}
		seen, spins = ep, 0
		func() {
			defer func() {
				if r := recover(); r != nil {
					p.panics[g] = r
				}
			}()
			for _, m := range p.groups[g] {
				m.tickOrSkip(p.cycle)
			}
		}()
		p.done.Add(1)
	}
}
