package sim

import (
	"errors"
	"strings"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/isa"
)

// hangBudget mirrors the experiment harness watchdog; the acceptance bar
// is detection within 10% of it.
const hangBudget int64 = 10_000_000

// hangOptions arms early hang aborts on the small test machine.
func hangOptions(kind config.SchedulerKind) Options {
	opt := testOptions(kind)
	opt.GPU.MaxCycles = hangBudget
	opt.HangWindow = DefaultHangWindow
	return opt
}

// deadlockProg is a true deadlock under queue locks: every lane
// CAS-acquires the lock at word 0 and the program exits without ever
// releasing it. One lane wins; every lane of every other warp parks in
// the lock queue waiting for a release that never comes, wedging those
// warps on the CAS result's scoreboard bit.
func deadlockProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("hang-deadlock")
	b.Annotate(isa.AnnSync, func() {
		b.AtomCAS(1, isa.I(0), isa.I(0), isa.I(0), isa.I(1))
		b.AnnotateLast(isa.AnnLockAcquire)
	})
	// The dependency on r1 is what blocks parked warps from running ahead.
	b.Setp(isa.EQ, 0, isa.R(1), isa.I(0))
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestHangDeadlockClassified(t *testing.T) {
	opt := hangOptions(config.GTO)
	opt.GPU.Mem.QueueLocks = true
	eng, err := New(opt, Launch{
		Prog: deadlockProg(t), GridCTAs: 2, CTAThreads: 64, MemWords: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	he := requireHang(t, err, HangDeadlock)
	if !he.Report.Mem.OnlyParked() {
		t.Errorf("deadlock report should show only parked lock waiters in flight, got %+v", he.Report.Mem)
	}
	found := false
	for _, w := range he.Report.TopStuck(3) {
		if w.State == "parked-lock" && w.HasPendingLock && w.PendingLock == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no parked-lock warp with pending lock@0 among top stuck: %v", he.Report.TopStuck(3))
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error does not name the classification: %v", err)
	}
}

// livelockProg spins forever on a lock that is pre-held in memory (word 0
// is initialized to 1 and no one ever releases it): warps commit spin
// iterations — SIB executions, failed acquires — but never make useful
// progress.
func livelockProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("hang-livelock")
	b.Annotate(isa.AnnSync, func() {
		b.DoWhile(0, false, true,
			func() {
				b.AtomCAS(1, isa.I(0), isa.I(0), isa.I(0), isa.I(1))
				b.AnnotateLast(isa.AnnLockAcquire)
			},
			func() { b.Setp(isa.NE, 0, isa.R(1), isa.I(0)) })
	})
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestHangLivelockClassified(t *testing.T) {
	eng, err := New(hangOptions(config.GTO), Launch{
		Prog: livelockProg(t), GridCTAs: 1, CTAThreads: 64, MemWords: 64,
		Setup: func(words []uint32) { words[0] = 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	he := requireHang(t, err, HangLivelock)
	if he.Report.IssuedInWindow == 0 || he.Report.SpinInWindow == 0 {
		t.Errorf("livelock report should show issue and spin activity, got issued=%d spin=%d",
			he.Report.IssuedInWindow, he.Report.SpinInWindow)
	}
	if len(he.Report.SIBPT) == 0 {
		t.Error("livelock report carries no SIB-PT snapshot despite an annotated spin branch")
	}
}

// starveProg starves its sibling warp under greedy-then-oldest: warp 0
// runs an always-ready infinite nop loop, so GTO's greedy pick re-issues
// it every cycle and warp 1 — ready the whole time — never runs again.
func starveProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("hang-starve")
	b.Setp(isa.EQ, 0, isa.S(isa.SpecWarpID), isa.I(0))
	b.If(0, false, func() {
		b.Label("spin")
		b.Nop()
		b.Bra("spin")
	})
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestHangStarvationClassified(t *testing.T) {
	eng, err := New(hangOptions(config.GTO), Launch{
		Prog: starveProg(t), GridCTAs: 1, CTAThreads: 64, MemWords: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	he := requireHang(t, err, HangStarvation)
	starved := false
	for _, w := range he.Report.Warps {
		if w.State == "ready" && w.IssuedInWindow == 0 {
			starved = true
		}
	}
	if !starved {
		t.Errorf("no ready-but-never-issued warp in report: %v", he.Report.Warps)
	}
	// The starved warp must sort ahead of the spinner.
	if top := he.Report.TopStuck(1); len(top) != 1 || top[0].IssuedInWindow != 0 {
		t.Errorf("most-stuck warp should be the starved one, got %v", top)
	}
}

// TestWatchdogCarriesHangReport checks the passive path: with HangWindow
// unset the run burns its MaxCycles budget, but the watchdog error still
// carries a classified report.
func TestWatchdogCarriesHangReport(t *testing.T) {
	opt := testOptions(config.GTO)
	opt.GPU.MaxCycles = 500_000 // > 2×DefaultHangWindow so passive sampling runs
	opt.GPU.Mem.QueueLocks = true
	eng, err := New(opt, Launch{
		Prog: deadlockProg(t), GridCTAs: 2, CTAThreads: 64, MemWords: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	var he *HangError
	if !errors.As(err, &he) {
		t.Fatalf("watchdog error is not a *HangError: %v", err)
	}
	if !he.Watchdog || he.MaxCycles != opt.GPU.MaxCycles {
		t.Errorf("Watchdog=%v MaxCycles=%d, want true/%d", he.Watchdog, he.MaxCycles, opt.GPU.MaxCycles)
	}
	if he.Report.Class != HangDeadlock {
		t.Errorf("passive classification = %s, want %s", he.Report.Class, HangDeadlock)
	}
	if !strings.Contains(err.Error(), "exceeded MaxCycles=") {
		t.Errorf("watchdog error lost its MaxCycles message: %v", err)
	}
}

// TestHealthyRunNoHangAbort guards against false positives: a long but
// progressing kernel must complete with hang aborts armed.
func TestHealthyRunNoHangAbort(t *testing.T) {
	opt := hangOptions(config.GTO)
	const n = 4096
	eng, err := New(opt, Launch{
		Prog: vecAddProg(t), GridCTAs: 4, CTAThreads: 128,
		Params:   []uint32{n, 0, n, 2 * n},
		MemWords: 3 * n,
		Setup: func(w []uint32) {
			for i := 0; i < n; i++ {
				w[i], w[n+i] = uint32(i), uint32(2*i)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("healthy run aborted: %v", err)
	}
}

// requireHang asserts err is an early-abort *HangError of the wanted
// class, detected within 10% of the MaxCycles budget.
func requireHang(t *testing.T, err error, want HangClass) *HangError {
	t.Helper()
	var he *HangError
	if !errors.As(err, &he) {
		t.Fatalf("expected *HangError, got %v", err)
	}
	if he.Watchdog {
		t.Fatalf("expected early abort, got watchdog: %v", err)
	}
	if he.Report.Class != want {
		t.Fatalf("classified %s, want %s (err: %v)", he.Report.Class, want, err)
	}
	if he.Report.Cycle > hangBudget/10 {
		t.Errorf("detected at cycle %d, want ≤ %d (10%% of budget)", he.Report.Cycle, hangBudget/10)
	}
	if len(he.Report.TopStuck(3)) == 0 {
		t.Error("hang report names no stuck warps")
	}
	if he.Summary() == "" {
		t.Error("empty hang summary")
	}
	return he
}
