package sim

import (
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/isa"
	"warpsched/internal/trace"
)

func TestPascalConfigRuns(t *testing.T) {
	const n = 1000
	opt := Options{
		GPU:   config.GTX1080Ti().Scaled(2),
		Sched: config.GTO,
		BOWS:  config.DefaultBOWS(),
		DDOS:  config.DefaultDDOS(),
	}
	launch := Launch{
		Prog:       vecAddProg(t),
		GridCTAs:   4,
		CTAThreads: 128,
		Params:     []uint32{n, 0, n, 2 * n},
		MemWords:   3*n + 64,
		Setup: func(w []uint32) {
			for i := 0; i < n; i++ {
				w[i] = uint32(i)
				w[n+i] = uint32(i)
			}
		},
	}
	eng, err := New(opt, launch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if res.Memory[2*n+i] != uint32(2*i) {
			t.Fatalf("c[%d] = %d", i, res.Memory[2*n+i])
		}
	}
	// 4 schedulers per SM on Pascal: per-SM stats exist for each SM.
	if len(res.PerSM) != 2 {
		t.Fatalf("PerSM = %d", len(res.PerSM))
	}
}

func TestPartialWarpCTA(t *testing.T) {
	// 50 threads per CTA: one full warp + one 18-lane warp.
	const n = 200
	launch := Launch{
		Prog:       vecAddProg(t),
		GridCTAs:   4,
		CTAThreads: 50,
		Params:     []uint32{n, 0, n, 2 * n},
		MemWords:   3*n + 64,
		Setup: func(w []uint32) {
			for i := 0; i < n; i++ {
				w[i] = uint32(i)
				w[n+i] = uint32(10 * i)
			}
		},
	}
	eng, err := New(testOptions(config.LRR), launch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if res.Memory[2*n+i] != uint32(11*i) {
			t.Fatalf("c[%d] = %d, want %d", i, res.Memory[2*n+i], 11*i)
		}
	}
}

func TestClockSpecialAdvances(t *testing.T) {
	b := isa.NewBuilder("clock")
	b.Clock(1)
	// Burn a few cycles with dependent ALU ops.
	b.Add(2, isa.R(1), isa.I(1))
	b.Add(2, isa.R(2), isa.I(1))
	b.Add(2, isa.R(2), isa.I(1))
	b.Clock(3)
	b.Sub(4, isa.R(3), isa.R(1))
	b.St(isa.I(0), isa.I(0), isa.R(4))
	b.Exit()
	p := b.MustBuild()
	eng, err := New(testOptions(config.GTO), Launch{
		Prog: p, GridCTAs: 1, CTAThreads: 32, MemWords: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if int32(res.Memory[0]) <= 0 {
		t.Fatalf("clock delta = %d, want positive", int32(res.Memory[0]))
	}
}

func TestStaticBOWSMatchesAnnotations(t *testing.T) {
	// In static mode the warp backs off at the annotated SIB even before
	// DDOS could have confirmed anything.
	prog := spinPairProg(t)
	opt := testOptions(config.GTO)
	opt.BOWS = config.FixedBOWS(500)
	opt.BOWS.Mode = config.BOWSStatic
	eng, err := New(opt, Launch{
		Prog: prog, GridCTAs: 2, CTAThreads: 32,
		Params: []uint32{64, 96, 2}, MemWords: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BackedOffSum == 0 {
		t.Fatal("static BOWS never engaged")
	}
	if got := res.Memory[96]; got != 64*2 {
		t.Fatalf("counter = %d", got)
	}
}

func TestPCProfileAccountsEveryIssue(t *testing.T) {
	opt := testOptions(config.GTO)
	opt.Profile = true
	prog := spinPairProg(t)
	eng, err := New(opt, Launch{
		Prog: prog, GridCTAs: 2, CTAThreads: 32,
		Params: []uint32{64, 96, 2}, MemWords: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PCProfile) != int(prog.Len()) {
		t.Fatalf("profile length %d, want %d", len(res.PCProfile), prog.Len())
	}
	var total int64
	for _, n := range res.PCProfile {
		total += n
	}
	if total != res.Stats.WarpInstrs {
		t.Fatalf("profile total %d != warp instrs %d", total, res.Stats.WarpInstrs)
	}
	// The CAS in the spin loop must be among the hottest instructions.
	casPC := int32(-1)
	for pc := int32(0); pc < prog.Len(); pc++ {
		if prog.At(pc).Op == isa.OpAtomCAS {
			casPC = pc
		}
	}
	if res.PCProfile[casPC] == 0 {
		t.Fatal("spin CAS never profiled")
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	ring := trace.NewRing(4096)
	opt := testOptions(config.GTO)
	opt.BOWS = config.FixedBOWS(200)
	opt.Tracer = ring
	prog := spinPairProg(t)
	eng, err := New(opt, Launch{
		Prog: prog, GridCTAs: 2, CTAThreads: 32,
		Params: []uint32{64, 96, 2}, MemWords: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	var issues, sibs, exits int
	for _, e := range ring.Events() {
		switch e.Kind {
		case trace.KindIssue:
			issues++
		case trace.KindSIB:
			sibs++
		case trace.KindBackoffExit:
			exits++
		}
	}
	if ring.Total() == 0 || issues == 0 {
		t.Fatal("tracer saw no issues")
	}
	if res.Stats.SIBInstrs > 0 && sibs == 0 {
		t.Fatal("tracer saw no SIB events despite SIB executions")
	}
	if sibs > 0 && exits == 0 {
		t.Fatal("backed-off warps must eventually exit")
	}
}
