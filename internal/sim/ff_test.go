package sim

import (
	"errors"
	"reflect"
	"testing"

	"warpsched/internal/config"
)

// hangUnder runs launch under opt and returns the *HangError it must
// produce. The fast-forward clock interacts with the hang monitor in the
// worst possible place — a hung machine is exactly the all-stalled state
// the clock skips over — so these tests require the diagnosis, not just
// the failure, to be identical with and without fast-forward.
func hangUnder(t *testing.T, opt Options, l Launch) *HangError {
	t.Helper()
	eng, err := New(opt, l)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	var he *HangError
	if !errors.As(err, &he) {
		t.Fatalf("expected *HangError, got %v", err)
	}
	return he
}

// TestHangReportFastForwardExact locks word 0 before launch so every warp
// livelocks on the acquire loop (and, under queue locks, deadlocks parked
// on a release that never comes), then requires the classified report —
// class, detection cycle, per-warp stuck ranking, SIB-PT snapshot, memory
// in-flight summary — to be bit-identical with and without fast-forward.
func TestHangReportFastForwardExact(t *testing.T) {
	cases := []struct {
		name   string
		launch func(t *testing.T) Launch
		queue  bool
	}{
		{"seeded-livelock", func(t *testing.T) Launch {
			return Launch{
				Prog: livelockProg(t), GridCTAs: 1, CTAThreads: 64, MemWords: 64,
				Setup: func(words []uint32) { words[0] = 1 },
			}
		}, false},
		{"deadlock", func(t *testing.T) Launch {
			return Launch{Prog: deadlockProg(t), GridCTAs: 2, CTAThreads: 64, MemWords: 64}
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := hangOptions(config.GTO)
			opt.GPU.Mem.QueueLocks = tc.queue
			opt.NoFastForward = true
			slow := hangUnder(t, opt, tc.launch(t))
			opt.NoFastForward = false
			fast := hangUnder(t, opt, tc.launch(t))
			if slow.Watchdog != fast.Watchdog {
				t.Fatalf("watchdog flag diverged: per-cycle %v, fast-forward %v", slow.Watchdog, fast.Watchdog)
			}
			if !reflect.DeepEqual(slow.Report, fast.Report) {
				t.Errorf("hang report diverged under fast-forward:\nper-cycle:    %+v\nfast-forward: %+v",
					slow.Report, fast.Report)
			}
			if slow.Error() != fast.Error() {
				t.Errorf("hang error text diverged:\nper-cycle:    %s\nfast-forward: %s", slow, fast)
			}
		})
	}
}

// TestWatchdogFastForwardExact exercises the passive path: no HangWindow,
// so the run must burn its entire MaxCycles budget. Fast-forward covers
// that budget in a handful of jumps, but the abort cycle and the sampled
// report must match the per-cycle run exactly.
func TestWatchdogFastForwardExact(t *testing.T) {
	opt := testOptions(config.GTO)
	opt.GPU.MaxCycles = 500_000
	opt.GPU.Mem.QueueLocks = true
	l := Launch{Prog: deadlockProg(t), GridCTAs: 2, CTAThreads: 64, MemWords: 64}

	opt.NoFastForward = true
	slow := hangUnder(t, opt, l)
	opt.NoFastForward = false
	fast := hangUnder(t, opt, l)
	if !slow.Watchdog || !fast.Watchdog {
		t.Fatalf("expected watchdog aborts, got per-cycle %v, fast-forward %v", slow.Watchdog, fast.Watchdog)
	}
	if slow.MaxCycles != fast.MaxCycles {
		t.Errorf("abort budget diverged: %d vs %d", slow.MaxCycles, fast.MaxCycles)
	}
	if !reflect.DeepEqual(slow.Report, fast.Report) {
		t.Errorf("watchdog report diverged under fast-forward:\nper-cycle:    %+v\nfast-forward: %+v",
			slow.Report, fast.Report)
	}
}
