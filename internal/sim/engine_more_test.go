package sim

import (
	"strings"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/isa"
)

// spinPairProg: warp-count threads contend for one lock; each thread
// increments a shared counter inside the critical section n times.
func spinPairProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("spinpair")
	b.LdParam(10, 0)   // lock addr
	b.LdParam(11, 1)   // counter addr
	b.LdParam(12, 2)   // iterations per thread
	b.Mov(2, isa.I(0)) // i
	b.While(0, false,
		func() { b.Setp(isa.LT, 0, isa.R(2), isa.R(12)) },
		func() {
			b.Mov(3, isa.I(0)) // done
			b.DoWhile(1, false, true,
				func() {
					b.AtomCAS(4, isa.R(10), isa.I(0), isa.I(0), isa.I(1))
					b.AnnotateLast(isa.AnnLockAcquire | isa.AnnSync)
					b.Setp(isa.EQ, 2, isa.R(4), isa.I(0))
					b.If(2, false, func() {
						b.LdVol(5, isa.R(11), isa.I(0))
						b.Add(5, isa.R(5), isa.I(1))
						b.St(isa.R(11), isa.I(0), isa.R(5))
						b.Mov(3, isa.I(1))
						b.Membar()
						b.AtomExch(6, isa.R(10), isa.I(0), isa.I(0))
						b.AnnotateLast(isa.AnnLockRelease | isa.AnnSync)
					})
				},
				func() { b.Setp(isa.EQ, 1, isa.R(3), isa.I(0)) })
			b.Add(2, isa.R(2), isa.I(1))
		})
	b.Exit()
	return b.MustBuild()
}

// TestLockMutualExclusion runs a contended increment under every
// scheduler/BOWS combination: the final counter value proves no lost
// updates (linearizable lock), and DDOS must confirm the spin branch.
func TestLockMutualExclusion(t *testing.T) {
	const threads, iters = 96, 4
	prog := spinPairProg(t)
	launch := Launch{
		Prog: prog, GridCTAs: 3, CTAThreads: 32,
		Params:   []uint32{64, 96, iters},
		MemWords: 160,
	}
	for _, kind := range config.Schedulers {
		for _, mode := range []config.BOWSMode{config.BOWSOff, config.BOWSDDOS, config.BOWSStatic} {
			opt := testOptions(kind)
			if mode != config.BOWSOff {
				opt.BOWS = config.DefaultBOWS()
				opt.BOWS.Mode = mode
			}
			eng, err := New(opt, launch)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, mode, err)
			}
			if got := res.Memory[96]; got != threads*iters {
				t.Fatalf("%s/%s: counter = %d, want %d (lost updates!)", kind, mode, got, threads*iters)
			}
			if res.Memory[64] != 0 {
				t.Fatalf("%s/%s: lock still held", kind, mode)
			}
			if mode != config.BOWSOff && res.Stats.Sync.LockSuccess != threads*iters {
				t.Fatalf("%s/%s: lock successes = %d", kind, mode, res.Stats.Sync.LockSuccess)
			}
		}
	}
}

func TestDDOSConfirmsSpinBranchInEngine(t *testing.T) {
	prog := spinPairProg(t)
	launch := Launch{
		Prog: prog, GridCTAs: 3, CTAThreads: 32,
		Params:   []uint32{64, 96, 8},
		MemWords: 160,
	}
	eng, err := New(testOptions(config.GTO), launch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Detection.TSDR() != 1 {
		t.Errorf("TSDR = %.2f (%d/%d)", res.Detection.TSDR(),
			res.Detection.TrueDetected, res.Detection.TrueSeen)
	}
	if res.Detection.FSDR() != 0 {
		t.Errorf("FSDR = %.2f", res.Detection.FSDR())
	}
	found := false
	for _, pc := range res.ConfirmedSIBs {
		for _, want := range prog.TrueSIBs {
			if pc == want {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("confirmed %v, ground truth %v", res.ConfirmedSIBs, prog.TrueSIBs)
	}
}

func TestBOWSReducesSpinInstructionsInEngine(t *testing.T) {
	prog := spinPairProg(t)
	launch := Launch{
		Prog: prog, GridCTAs: 3, CTAThreads: 32,
		Params:   []uint32{64, 96, 8},
		MemWords: 160,
	}
	base, err := New(testOptions(config.GTO), launch)
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(config.GTO)
	opt.BOWS = config.DefaultBOWS()
	bows, err := New(opt, launch)
	if err != nil {
		t.Fatal(err)
	}
	resBows, err := bows.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resBows.Stats.ThreadInstrs >= resBase.Stats.ThreadInstrs {
		t.Errorf("BOWS thread instrs %d should be below baseline %d",
			resBows.Stats.ThreadInstrs, resBase.Stats.ThreadInstrs)
	}
	if resBows.Stats.BackedOffSum == 0 {
		t.Error("BOWS never backed a warp off")
	}
	if len(resBows.FinalDelayLimits) == 0 {
		t.Error("no delay limits reported")
	}
}

func TestCTAOversubscription(t *testing.T) {
	// More CTAs than the machine can host at once: the dispatcher must
	// place them in waves.
	const n = 4096
	launch := Launch{
		Prog:       vecAddProg(t),
		GridCTAs:   40, // 2 SMs × 8 CTAs max → 3 waves
		CTAThreads: 64,
		Params:     []uint32{n, 0, n, 2 * n},
		MemWords:   3*n + 64,
		Setup: func(w []uint32) {
			for i := 0; i < n; i++ {
				w[i] = uint32(i)
				w[n+i] = uint32(2 * i)
			}
		},
	}
	eng, err := New(testOptions(config.GTO), launch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if res.Memory[2*n+i] != uint32(3*i) {
			t.Fatalf("c[%d] = %d", i, res.Memory[2*n+i])
		}
	}
}

func TestWatchdogFiresOnInfiniteLoop(t *testing.T) {
	b := isa.NewBuilder("hang")
	b.Label("top")
	b.Bra("top")
	p := b.MustBuild()
	opt := testOptions(config.GTO)
	opt.GPU.MaxCycles = 10_000
	eng, err := New(opt, Launch{Prog: p, GridCTAs: 1, CTAThreads: 32, MemWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("watchdog should fire, got %v", err)
	}
}

func TestNewRejectsBadLaunch(t *testing.T) {
	opt := testOptions(config.GTO)
	good := Launch{Prog: vecAddProg(t), GridCTAs: 1, CTAThreads: 32, MemWords: 64, Params: []uint32{0, 0, 0, 0}}
	cases := []func(*Launch){
		func(l *Launch) { l.Prog = nil },
		func(l *Launch) { l.GridCTAs = 0 },
		func(l *Launch) { l.CTAThreads = 0 },
		func(l *Launch) { l.CTAThreads = 33 * 64 }, // exceeds warp slots
		func(l *Launch) { l.MemWords = 0 },
	}
	for i, mut := range cases {
		l := good
		mut(&l)
		if _, err := New(opt, l); err == nil {
			t.Errorf("case %d: bad launch accepted", i)
		}
	}
}

func TestMembarOrdersStoreBeforeFlag(t *testing.T) {
	// Producer stores data then flag (with membar between); consumer
	// spins on the flag and must observe the data.
	// The producer must be a whole warp: a producer lane sharing a warp
	// with spinning consumer lanes would be a SIMT-induced deadlock.
	b := isa.NewBuilder("producer-consumer")
	b.Mov(1, isa.S(isa.SpecGTID))
	b.Setp(isa.LT, 0, isa.R(1), isa.I(32))
	b.IfElse(0, false,
		func() { // producer warp: lane 0 publishes
			b.Setp(isa.EQ, 2, isa.R(1), isa.I(0))
			b.If(2, false, func() {
				b.St(isa.I(0), isa.I(0), isa.I(1234)) // data
				b.Membar()
				b.St(isa.I(0), isa.I(1), isa.I(1)) // flag
			})
		},
		func() { // consumer warps
			b.DoWhile(1, false, true,
				func() { b.LdVol(3, isa.I(0), isa.I(1)) },
				func() { b.Setp(isa.EQ, 1, isa.R(3), isa.I(0)) })
			b.LdVol(4, isa.I(0), isa.I(0))
			b.Add(5, isa.R(1), isa.I(16))
			b.St(isa.I(0), isa.R(5), isa.R(4)) // out[16+gtid] = data
		})
	b.Exit()
	p := b.MustBuild()
	// Consumers must be in other warps: use 2 CTAs of 32.
	eng, err := New(testOptions(config.GTO), Launch{
		Prog: p, GridCTAs: 2, CTAThreads: 32, MemWords: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for gtid := 32; gtid < 64; gtid++ {
		if got := res.Memory[16+gtid]; got != 1234 {
			t.Fatalf("consumer %d observed %d, want 1234 (fence violated)", gtid, got)
		}
	}
}

func TestPerSMStatsSumToTotal(t *testing.T) {
	const n = 2000
	launch := Launch{
		Prog:       vecAddProg(t),
		GridCTAs:   8,
		CTAThreads: 64,
		Params:     []uint32{n, 0, n, 2 * n},
		MemWords:   3*n + 64,
	}
	eng, err := New(testOptions(config.LRR), launch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	var warpInstrs, threadInstrs int64
	for _, sm := range res.PerSM {
		warpInstrs += sm.WarpInstrs
		threadInstrs += sm.ThreadInstrs
	}
	if warpInstrs != res.Stats.WarpInstrs || threadInstrs != res.Stats.ThreadInstrs {
		t.Fatalf("per-SM stats don't sum: %d/%d vs %d/%d",
			warpInstrs, threadInstrs, res.Stats.WarpInstrs, res.Stats.ThreadInstrs)
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical runs must produce identical statistics.
	k := spinPairProg(t)
	launch := Launch{Prog: k, GridCTAs: 3, CTAThreads: 32,
		Params: []uint32{64, 96, 4}, MemWords: 160}
	opt := testOptions(config.GTO)
	opt.BOWS = config.DefaultBOWS()
	run := func() int64 {
		eng, err := New(opt, launch)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles*1000003 + res.Stats.ThreadInstrs
	}
	if run() != run() {
		t.Fatal("simulation is not deterministic")
	}
}
