// Runtime invariant checking. With Options.Check enabled the engine
// periodically cross-checks redundant state the simulator maintains in
// several places at once — scoreboard pending bits against in-flight
// producers, request-pool gets against puts, CTA slot accounting against
// residency — and fails fast with a structured InvariantError instead of
// silently simulating garbage for millions of cycles. Checks are pure
// reads: a checked run simulates cycle-identically to an unchecked one,
// it just may stop earlier.
package sim

import (
	"fmt"
	"strings"

	"warpsched/internal/mem"
	"warpsched/internal/simt"
)

// DefaultCheckEvery is the cycle period between invariant sweeps when
// Options.CheckEvery is unset. Each sweep walks every warp slot and
// in-flight request, so the period trades detection latency against
// simulation speed; 4096 keeps checked runs within a few percent of
// unchecked ones.
const DefaultCheckEvery int64 = 4096

// maxStackDepth bounds the SIMT reconvergence stack: a divergence pushes
// at most one entry per active lane transition, so a 32-lane warp can
// never legitimately exceed 2×32+1 frames.
const maxStackDepth = 65

// InvariantViolation is one failed consistency check. SM and Slot are -1
// when the violation is not tied to one.
type InvariantViolation struct {
	Name   string // e.g. "scoreboard.stuck-bit", "pool.balance"
	Cycle  int64
	SM     int
	Slot   int
	Detail string
}

// String renders the violation with its invariant name, cycle and
// SM/warp location.
func (v InvariantViolation) String() string {
	loc := ""
	switch {
	case v.SM >= 0 && v.Slot >= 0:
		loc = fmt.Sprintf(" sm%d/w%d", v.SM, v.Slot)
	case v.SM >= 0:
		loc = fmt.Sprintf(" sm%d", v.SM)
	}
	return fmt.Sprintf("%s@%d%s: %s", v.Name, v.Cycle, loc, v.Detail)
}

// InvariantError aggregates every violation found by one sweep.
type InvariantError struct {
	Violations []InvariantViolation
}

// Error lists the first few violations and the total count.
func (e *InvariantError) Error() string {
	const show = 3
	parts := make([]string, 0, show)
	for i, v := range e.Violations {
		if i == show {
			parts = append(parts, fmt.Sprintf("(+%d more)", len(e.Violations)-show))
			break
		}
		parts = append(parts, v.String())
	}
	return fmt.Sprintf("sim: %d invariant violation(s): %s", len(e.Violations), strings.Join(parts, "; "))
}

// slotProducers collects, per warp slot, the scoreboard bits that
// in-flight memory requests will eventually release. own bits belong to
// requests whose Owner is the slot's current warp; stale bits belong to
// requests issued by a previous occupant (the warp exited with a
// reg-writing request still in flight and the slot was recycled — their
// completion pokes the slot's scoreboard even though the register value
// goes to the departed warp).
type slotProducers struct {
	own   uint64
	stale uint64
	count int // distinct in-flight requests charged to this slot
}

// checkInvariants sweeps every consistency check. atEnd additionally
// requires the machine to be fully drained (no in-flight requests, pool
// gets == puts). It returns nil or an *InvariantError listing every
// violation found.
func (e *Engine) checkInvariants(atEnd bool) error {
	e.flushSMs()
	var vs []InvariantViolation
	add := func(name string, sm, slot int, format string, args ...any) {
		vs = append(vs, InvariantViolation{Name: name, Cycle: e.cycle, SM: sm, Slot: slot,
			Detail: fmt.Sprintf(format, args...)})
	}

	// In-flight requests, grouped by (SM, slot). Every in-flight request
	// must be attributable to a valid slot on a valid SM.
	slots := e.opt.GPU.WarpsPerSM
	prod := make([][]slotProducers, len(e.sms))
	for i := range prod {
		prod[i] = make([]slotProducers, slots)
	}
	e.sys.ForEachInFlightRequest(func(r *mem.Request) {
		if r.SM < 0 || r.SM >= len(e.sms) || r.WarpSlot < 0 || r.WarpSlot >= slots {
			add("mem.request-route", r.SM, r.WarpSlot, "in-flight %v request outside SM/slot range", r.Op)
			return
		}
		p := &prod[r.SM][r.WarpSlot]
		p.count++
		if !r.WritesReg || len(r.Accesses) == 0 {
			return
		}
		if r.Owner == e.sms[r.SM].warps[r.WarpSlot] {
			p.own |= 1 << uint(r.Dst)
		} else {
			p.stale |= 1 << uint(r.Dst)
		}
	})

	for i, m := range e.sms {
		// Scoreboard bits the ALU writeback ring will release.
		wbReg := make([]uint64, slots)
		wbPred := make([]uint64, slots)
		for _, ring := range m.wbRing {
			for _, it := range ring {
				if it.isPred {
					if m.predPend[it.slot]&(1<<it.idx) == 0 {
						add("scoreboard.wb-orphan", i, it.slot,
							"writeback ring holds p%d but predicate scoreboard bit is clear", it.idx)
					}
					wbPred[it.slot] |= 1 << it.idx
				} else {
					if m.regPend[it.slot]&(1<<it.idx) == 0 {
						add("scoreboard.wb-orphan", i, it.slot,
							"writeback ring holds r%d but register scoreboard bit is clear", it.idx)
					}
					wbReg[it.slot] |= 1 << it.idx
				}
			}
		}

		var inFlight int
		for slot := 0; slot < slots; slot++ {
			p := prod[i][slot]
			inFlight += p.count
			if m.warps[slot] == nil {
				// Empty slots may carry stale scoreboard bits (cleared when the
				// stale producer completes) but never own/ALU producers.
				if wbReg[slot] != 0 || wbPred[slot] != 0 || p.own != 0 {
					add("scoreboard.empty-slot", i, slot,
						"empty slot has live producers (wbReg=%#x wbPred=%#x own=%#x)",
						wbReg[slot], wbPred[slot], p.own)
				}
				continue
			}
			// Every pending bit must have a producer that will clear it;
			// every own producer must have its bit pending (a missing bit is
			// tolerated only when a stale producer for the same register may
			// have cleared it early).
			if extra := m.regPend[slot] &^ (wbReg[slot] | p.own | p.stale); extra != 0 {
				add("scoreboard.stuck-bit", i, slot,
					"register bits %#x pending with no in-flight producer", extra)
			}
			if missing := (wbReg[slot] | p.own) &^ (m.regPend[slot] | p.stale); missing != 0 {
				add("scoreboard.missing-bit", i, slot,
					"register bits %#x have live producers but are not pending", missing)
			}
			if m.predPend[slot] != wbPred[slot] {
				add("scoreboard.pred-mismatch", i, slot,
					"predicate scoreboard %#x != writeback ring %#x", m.predPend[slot], wbPred[slot])
			}
			if d := len(m.warps[slot].Stack); d < 1 || d > maxStackDepth {
				add("simt.stack-depth", i, slot, "reconvergence stack depth %d outside [1,%d]", d, maxStackDepth)
			}
		}

		// issued == completed + in-flight, expressed through the request
		// pool: every get that has not been put back is exactly one
		// in-flight request, and the port's per-slot outstanding counters
		// must agree.
		if live := m.reqGets - m.reqPuts; live != int64(inFlight) {
			add("pool.balance", i, -1,
				"request pool has %d live requests (gets=%d puts=%d) but %d are in flight",
				live, m.reqGets, m.reqPuts, inFlight)
		}
		var outstanding int
		for slot := 0; slot < slots; slot++ {
			outstanding += m.port.Outstanding(slot)
		}
		if outstanding != inFlight {
			add("port.outstanding", i, -1,
				"port counts %d outstanding but %d requests are in flight", outstanding, inFlight)
		}
		if lines := m.port.MSHRLines(); lines > e.opt.GPU.Mem.L1MSHRs {
			add("mem.mshr-bound", i, -1, "%d MSHR lines exceed capacity %d", lines, e.opt.GPU.Mem.L1MSHRs)
		}

		// CTA/warp accounting: slots are either free or occupied, free
		// slots are empty and unique, and residency matches live CTAs.
		occupied := 0
		for _, w := range m.warps {
			if w != nil {
				occupied++
			}
		}
		if occupied+len(m.freeSlots) != slots {
			add("cta.slot-accounting", i, -1, "%d occupied + %d free != %d slots",
				occupied, len(m.freeSlots), slots)
		}
		seen := make(map[int]bool, len(m.freeSlots))
		for _, s := range m.freeSlots {
			if s < 0 || s >= slots || seen[s] {
				add("cta.free-slot", i, s, "free-slot list entry %d out of range or duplicated", s)
				continue
			}
			seen[s] = true
			if m.warps[s] != nil {
				add("cta.free-slot", i, s, "slot %d is on the free list but holds a warp", s)
			}
		}
		liveCTAs := 0
		for _, rec := range m.ctas {
			if !rec.done {
				liveCTAs++
			}
		}
		if m.resident != liveCTAs {
			add("cta.residency", i, -1, "resident=%d but %d CTAs are live", m.resident, liveCTAs)
		}

		if atEnd {
			if m.reqGets != m.reqPuts {
				add("pool.leak", i, -1, "run ended with gets=%d != puts=%d (%d requests leaked)",
					m.reqGets, m.reqPuts, m.reqGets-m.reqPuts)
			}
			if inFlight != 0 {
				add("mem.drain", i, -1, "run ended with %d requests still in flight", inFlight)
			}
		}
	}

	// The memory system's own internal audit (MSHR shape, segment pool
	// hygiene, lock-queue bookkeeping).
	for _, line := range e.sys.Audit() {
		add("mem.audit", -1, -1, "%s", line)
	}

	// Barrier membership sanity: a warp marked AtBarrier must belong to a
	// CTA that still has warps to arrive (Arrive releases the whole CTA
	// when the last live warp arrives, so a lone straggler is a bug).
	for i, m := range e.sms {
		for slot, w := range m.warps {
			if w != nil && w.AtBarrier && barrierComplete(w.CTA, m) {
				add("cta.barrier", i, slot, "warp waits at a barrier every live CTA warp has reached")
			}
		}
	}

	if len(vs) == 0 {
		return nil
	}
	return &InvariantError{Violations: vs}
}

// barrierComplete reports whether every live warp of cta currently
// resident on m is parked at the barrier — a state CTA.Arrive should have
// released immediately.
func barrierComplete(cta *simt.CTA, m *smState) bool {
	any := false
	for _, w := range m.warps {
		if w == nil || w.CTA != cta || w.Done {
			continue
		}
		any = true
		if !w.AtBarrier {
			return false
		}
	}
	return any
}
