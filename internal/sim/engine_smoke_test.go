package sim

import (
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/isa"
)

// smallGPU returns a 2-SM configuration for fast tests.
func smallGPU() config.GPU {
	g := config.GTX480().Scaled(2)
	g.MaxCycles = 5_000_000
	return g
}

func testOptions(kind config.SchedulerKind) Options {
	return Options{
		GPU:   smallGPU(),
		Sched: kind,
		BOWS:  config.BOWS{Mode: config.BOWSOff},
		DDOS:  config.DefaultDDOS(),
	}
}

// vecAddProg builds c[i] = a[i] + b[i] over n elements, grid-stride.
func vecAddProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("vecadd-smoke")
	b.LdParam(10, 0) // n
	b.LdParam(11, 1) // a
	b.LdParam(12, 2) // b
	b.LdParam(13, 3) // c
	b.Mov(2, isa.S(isa.SpecGTID))
	b.Mov(3, isa.S(isa.SpecNTID))
	b.Mul(3, isa.R(3), isa.S(isa.SpecNCTAID))
	b.While(0, false,
		func() { b.Setp(isa.LT, 0, isa.R(2), isa.R(10)) },
		func() {
			b.Ld(4, isa.R(11), isa.R(2))
			b.Ld(5, isa.R(12), isa.R(2))
			b.Add(6, isa.R(4), isa.R(5))
			b.St(isa.R(13), isa.R(2), isa.R(6))
			b.Add(2, isa.R(2), isa.R(3))
		})
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestEngineVecAdd(t *testing.T) {
	const n = 1000
	for _, kind := range config.Schedulers {
		t.Run(string(kind), func(t *testing.T) {
			launch := Launch{
				Prog:       vecAddProg(t),
				GridCTAs:   4,
				CTAThreads: 96, // partial warps included
				Params:     []uint32{n, 0, n, 2 * n},
				MemWords:   3*n + 64,
				Setup: func(w []uint32) {
					for i := 0; i < n; i++ {
						w[i] = uint32(i)
						w[n+i] = uint32(3 * i)
					}
				},
			}
			eng, err := New(testOptions(kind), launch)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for i := 0; i < n; i++ {
				if got, want := res.Memory[2*n+i], uint32(4*i); got != want {
					t.Fatalf("c[%d] = %d, want %d", i, got, want)
				}
			}
			if res.Stats.Cycles <= 0 || res.Stats.WarpInstrs <= 0 {
				t.Fatalf("implausible stats: %+v", res.Stats)
			}
			// A regular loop must not be classified as spinning.
			if len(res.ConfirmedSIBs) != 0 {
				t.Fatalf("false SIB detection on vecadd: %v", res.ConfirmedSIBs)
			}
		})
	}
}

// divergeProg exercises nested divergence: odd lanes and high lanes take
// different paths, all must reconverge.
func divergeProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("diverge-smoke")
	b.LdParam(10, 0) // out base
	b.Mov(2, isa.S(isa.SpecGTID))
	b.And(3, isa.R(2), isa.I(1))
	b.Setp(isa.EQ, 0, isa.R(3), isa.I(0))
	b.IfElse(0, false,
		func() { // even lanes
			b.Setp(isa.LT, 1, isa.R(2), isa.I(16))
			b.IfElse(1, false,
				func() { b.Mov(4, isa.I(100)) },
				func() { b.Mov(4, isa.I(200)) })
		},
		func() { // odd lanes
			b.Mov(4, isa.I(300))
		})
	b.Add(4, isa.R(4), isa.R(2))
	b.St(isa.R(10), isa.R(2), isa.R(4))
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestEngineDivergence(t *testing.T) {
	const n = 64
	launch := Launch{
		Prog:       divergeProg(t),
		GridCTAs:   1,
		CTAThreads: n,
		Params:     []uint32{0},
		MemWords:   n + 64,
	}
	eng, err := New(testOptions(config.GTO), launch)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		want := uint32(300 + i)
		if i%2 == 0 {
			if i < 16 {
				want = uint32(100 + i)
			} else {
				want = uint32(200 + i)
			}
		}
		if res.Memory[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, res.Memory[i], want)
		}
	}
}

// barrierProg has warps exchange data through memory across a barrier.
func barrierProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("barrier-smoke")
	b.LdParam(10, 0) // buf base
	b.LdParam(11, 1) // out base
	b.Mov(2, isa.S(isa.SpecTID))
	b.Mov(3, isa.S(isa.SpecNTID))
	b.St(isa.R(10), isa.R(2), isa.R(2)) // buf[tid] = tid
	b.Membar()
	b.Bar()
	// read neighbour: buf[(tid+1) % ntid]
	b.Add(4, isa.R(2), isa.I(1))
	b.Rem(4, isa.R(4), isa.R(3))
	b.Ld(5, isa.R(10), isa.R(4))
	b.St(isa.R(11), isa.R(2), isa.R(5))
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestEngineBarrier(t *testing.T) {
	const n = 128
	launch := Launch{
		Prog:       barrierProg(t),
		GridCTAs:   1,
		CTAThreads: n,
		Params:     []uint32{0, n},
		MemWords:   2*n + 64,
	}
	eng, err := New(testOptions(config.LRR), launch)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		want := uint32((i + 1) % n)
		if res.Memory[n+i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, res.Memory[n+i], want)
		}
	}
}
