package sim

import (
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/isa"
)

// TestDebugEngineVecAddTiny runs vecadd on one warp in the engine and
// inspects the failure seen in TestEngineVecAdd at iteration boundaries.
func TestDebugEngineVecAddTiny(t *testing.T) {
	const n = 100 // one warp of 32, stride 32 → 4 iterations
	launch := Launch{
		Prog:       vecAddProg(t),
		GridCTAs:   1,
		CTAThreads: 32,
		Params:     []uint32{n, 0, n, 2 * n},
		MemWords:   3*n + 64,
		Setup: func(w []uint32) {
			for i := 0; i < n; i++ {
				w[i] = uint32(i)
				w[n+i] = uint32(3 * i)
			}
		},
	}
	opt := testOptions(config.GTO)
	opt.GPU = opt.GPU.Scaled(1)
	eng, err := New(opt, launch)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bad := 0
	for i := 0; i < n; i++ {
		if got, want := res.Memory[2*n+i], uint32(4*i); got != want {
			if bad < 8 {
				t.Errorf("c[%d]=%d want %d (a=%d b=%d)", i, got, want, res.Memory[i], res.Memory[n+i])
			}
			bad++
		}
	}
	t.Logf("bad=%d cycles=%d warpInstrs=%d l1acc=%d l1hit=%d l2acc=%d",
		bad, res.Stats.Cycles, res.Stats.WarpInstrs,
		res.Stats.Mem.L1Accesses, res.Stats.Mem.L1Hits, res.Stats.Mem.L2Accesses)
	_ = isa.Disasm
}
