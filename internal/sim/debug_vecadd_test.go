package sim

import (
	"testing"

	"warpsched/internal/isa"
	"warpsched/internal/simt"
)

// TestDebugVecAddFunctional steps one warp through the vecadd program
// with memory applied immediately, isolating functional bugs from timing.
func TestDebugVecAddFunctional(t *testing.T) {
	const n = 100
	p := vecAddProg(t)
	words := make([]uint32, 3*n+64)
	for i := 0; i < n; i++ {
		words[i] = uint32(i)
		words[n+i] = uint32(3 * i)
	}
	// One CTA of 32 threads, grid of 1 → stride 32.
	cta := simt.NewCTA(0, 32, 1, 1)
	w := simt.NewWarp(p, cta, 0, 0, 0, 0, 32)
	w.Params = []uint32{n, 0, n, 2 * n}
	for step := 0; step < 5000 && !w.Done; step++ {
		pc := w.PC()
		in := w.NextInstr()
		res := w.Execute(int64(step))
		for i := range res.Mem {
			a := &res.Mem[i]
			switch in.Op {
			case isa.OpLd:
				w.SetReg(a.Lane, in.Dst, words[a.Addr])
			case isa.OpSt:
				words[a.Addr] = a.V1
			}
		}
		if step < 40 || (pc >= 8 && pc <= 14 && step < 200) {
			t.Logf("step %d pc=%d %-34s eff=%08x r2L0=%d r5L0=%d", step, pc, isa.Disasm(in), res.EffMask, w.Reg(0, 2), w.Reg(0, 5))
		}
	}
	if !w.Done {
		t.Fatalf("did not finish")
	}
	for i := 0; i < n; i++ {
		if words[2*n+i] != uint32(4*i) {
			t.Fatalf("c[%d]=%d want %d", i, words[2*n+i], 4*i)
		}
	}
}
