// Forward-progress monitoring and hang diagnosis. The paper's subject is
// warps that stop making progress — spinning on locks, backed off,
// parked in queues — and a mis-scheduled or buggy configuration can turn
// that into a whole-machine hang. Instead of burning the full MaxCycles
// budget and guessing ("livelock?"), the engine samples cheap progress
// counters every monitor window and classifies a stall:
//
//   - deadlock: no warp committed any instruction for a whole window —
//     every warp is blocked (parked lock acquires, wedged memory), and
//     nothing in flight can unblock one.
//   - livelock: warps commit instructions but none of it is useful
//     progress (no lock acquired, no wait exited, no warp finished) and
//     there is spin evidence: SIB executions or failed acquires/waits.
//   - starvation: no useful progress, and some ready warp went a whole
//     window without being scheduled while its SM kept issuing (e.g. GTO
//     greedily re-picking an always-ready warp forever).
//
// A classification must repeat over two consecutive windows before the
// engine acts on it, so momentary stalls (memory bursts, back-off
// plateaus) never trigger. Monitoring is passive and always on — it only
// reads counters, so simulated behavior and golden stats are
// byte-identical — but the engine aborts early on a confirmed hang only
// when Options.HangWindow arms it. Either way, every watchdog error
// carries a structured HangReport naming the stuck warps.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"warpsched/internal/config"
	"warpsched/internal/core"
	"warpsched/internal/isa"
	"warpsched/internal/mem"
	"warpsched/internal/simt"
)

// HangClass is the diagnosis of a forward-progress stall.
type HangClass string

const (
	// HangDeadlock: no warp committed any instruction for a whole window.
	HangDeadlock HangClass = "deadlock"
	// HangLivelock: instructions issued but none useful (all spin work).
	HangLivelock HangClass = "livelock"
	// HangStarvation: a runnable warp went a whole window unscheduled
	// while its SM kept issuing.
	HangStarvation HangClass = "starvation"
	// HangUnknown means the monitor saw no confirmed hang signature (the
	// class on plain MaxCycles watchdog aborts of slow-but-progressing
	// runs).
	HangUnknown HangClass = "unknown"
)

// DefaultHangWindow is the progress-sample period (and, when armed via
// Options.HangWindow, the no-progress window that triggers an abort
// after two consecutive confirmations). It is chosen well above every
// legitimate stall the machine can produce (DRAM round trips are
// hundreds of cycles, BOWS back-off delays top out around 10k) and well
// below the experiment watchdog budget, so a seeded hang is classified
// within a few percent of MaxCycles.
const DefaultHangWindow int64 = 200_000

// WarpHang is one resident warp's state at hang-report time.
type WarpHang struct {
	SM   int
	Slot int
	PC   int32
	// State summarizes why the warp is not running: "done", "barrier",
	// "parked-lock", "backed-off", "mem-wait", "scoreboard" or "ready".
	State string
	// AtBarrier/BackedOff/Spinning are the raw flags behind State.
	AtBarrier bool
	BackedOff bool
	Spinning  bool
	// IssuedInWindow counts instructions the warp committed during the
	// last monitor window (0 = it never ran).
	IssuedInWindow int64
	// OutstandingMem is the warp's in-flight memory instruction count.
	OutstandingMem int
	// PendingLock is the lock word the warp is waiting to acquire (parked
	// in a lock queue, or about to issue an annotated acquire), valid when
	// HasPendingLock.
	PendingLock    uint32
	HasPendingLock bool
}

// String renders the warp's location and, when known, its parked lock.
func (w WarpHang) String() string {
	s := fmt.Sprintf("sm%d/w%d pc=%d %s", w.SM, w.Slot, w.PC, w.State)
	if w.HasPendingLock {
		s += fmt.Sprintf(" lock@%d", w.PendingLock)
	}
	return s
}

// SMSIBPT is one SM's spin-inducing-branch prediction table snapshot.
type SMSIBPT struct {
	SM      int
	Entries []core.SIBView
}

// HangReport is the structured diagnosis attached to a HangError: what
// every warp was doing, what the detector believed, and what the memory
// system still held when progress stopped.
type HangReport struct {
	Class  HangClass
	Cycle  int64
	Window int64
	Kernel string
	GPU    string
	Sched  config.SchedulerKind

	CTAsDone  int
	TotalCTAs int

	// Progress deltas over the last monitor window: instructions
	// committed, useful progress events (lock acquires, wait exits,
	// finished warps, finished CTAs) and spin evidence (SIB executions,
	// failed acquires, failed wait exits).
	IssuedInWindow int64
	UsefulInWindow int64
	SpinInWindow   int64

	// Warps lists every resident warp, most-stuck first.
	Warps []WarpHang
	// SIBPT is the per-SM spin-detector table snapshot.
	SIBPT []SMSIBPT
	// MSHRLines is each SM's outstanding L1 miss-line count.
	MSHRLines []int
	// Mem summarizes the memory system's in-flight work.
	Mem mem.InFlightSummary
}

// TopStuck returns up to n of the most-stuck warps (fewest instructions
// committed in the window, finished warps excluded).
func (r *HangReport) TopStuck(n int) []WarpHang {
	out := make([]WarpHang, 0, n)
	for _, w := range r.Warps {
		if w.State == "done" {
			continue
		}
		out = append(out, w)
		if len(out) == n {
			break
		}
	}
	return out
}

// StuckSummary renders the top-n stuck warps as one compact fragment for
// log lines (e.g. "sm0/w1 pc=4 parked-lock lock@64; sm0/w2 ...").
func (r *HangReport) StuckSummary(n int) string {
	top := r.TopStuck(n)
	if len(top) == 0 {
		return "no resident warps"
	}
	parts := make([]string, len(top))
	for i, w := range top {
		parts[i] = w.String()
	}
	return strings.Join(parts, "; ")
}

// HangError is returned by Engine.Run when the machine stops making
// progress: either an early abort on a confirmed hang (Options.HangWindow
// armed) or the MaxCycles/drain watchdog (Watchdog true, classification
// best-effort). The partial Result is returned alongside it.
type HangError struct {
	Report   *HangReport
	Watchdog bool
	// MaxCycles is the exceeded budget on watchdog aborts.
	MaxCycles int64
}

// Error renders the full diagnosis: classification, progress deltas and
// the top stuck warps.
func (e *HangError) Error() string {
	r := e.Report
	if e.Watchdog {
		return fmt.Sprintf("sim: %s on %s/%s: exceeded MaxCycles=%d (%d/%d CTAs done) — classified %s; stuck: %s",
			r.Kernel, r.GPU, r.Sched, e.MaxCycles, r.CTAsDone, r.TotalCTAs, r.Class, r.StuckSummary(3))
	}
	return fmt.Sprintf("sim: %s on %s/%s: %s detected at cycle %d (issued %d, useful 0 over %d-cycle window; %d/%d CTAs done); stuck: %s",
		r.Kernel, r.GPU, r.Sched, r.Class, r.Cycle, r.IssuedInWindow, r.Window,
		r.CTAsDone, r.TotalCTAs, r.StuckSummary(3))
}

// Summary is the one-line form used by runner progress output: the
// classification plus the top-3 stuck warps.
func (e *HangError) Summary() string {
	r := e.Report
	label := string(r.Class)
	switch {
	case e.Watchdog && r.Class == HangUnknown:
		label = "watchdog"
	case e.Watchdog:
		label = "watchdog/" + string(r.Class)
	}
	return fmt.Sprintf("%s at %d cycles; stuck: %s", label, r.Cycle, r.StuckSummary(3))
}

// slotTrack remembers one warp slot's occupant and issue count at the
// previous sample, for per-warp starvation deltas across a window.
type slotTrack struct {
	warp   *simt.Warp
	issued int64
}

// hangMonitor samples the engine's progress counters once per window.
type hangMonitor struct {
	eng    *Engine
	window int64
	next   int64

	prevIssued int64
	prevUseful int64
	prevSpin   int64
	prevSlots  [][]slotTrack

	// last window's deltas and classification (best-effort context for
	// the MaxCycles watchdog).
	lastIssuedD int64
	lastUsefulD int64
	lastSpinD   int64
	lastClass   HangClass
	// pending is the candidate class awaiting a second consecutive
	// confirmation before the monitor reports it.
	pending HangClass
}

func newHangMonitor(e *Engine) *hangMonitor {
	window := e.opt.HangWindow
	if window <= 0 {
		window = DefaultHangWindow
	}
	hm := &hangMonitor{eng: e, window: window, next: window,
		pending: HangUnknown, lastClass: HangUnknown}
	hm.prevSlots = make([][]slotTrack, len(e.sms))
	for i, m := range e.sms {
		hm.prevSlots[i] = make([]slotTrack, len(m.warps))
	}
	hm.snapshotSlots()
	return hm
}

// progressSignals reads the monotone progress counters: total committed
// instructions, useful progress events and spin evidence.
func (e *Engine) progressSignals() (issued, useful, spin int64) {
	warpsPerCTA := (e.launch.CTAThreads + 31) / 32
	useful = int64(e.ctasDone * warpsPerCTA)
	for _, m := range e.sms {
		st := &m.st
		issued += st.WarpInstrs
		useful += st.Sync.LockSuccess + st.Sync.WaitExitSuccess
		spin += st.SIBInstrs + st.Sync.InterWarpFail + st.Sync.IntraWarpFail + st.Sync.WaitExitFail
		for _, w := range m.warps {
			if w != nil && w.Done {
				useful++
			}
		}
	}
	return issued, useful, spin
}

func (hm *hangMonitor) snapshotSlots() {
	for i, m := range hm.eng.sms {
		for slot := range m.warps {
			hm.prevSlots[i][slot] = slotTrack{warp: m.warps[slot], issued: m.metrics[slot].Issued}
		}
	}
}

// starvedSlots returns (sm, slot) pairs for warps that were resident and
// runnable across the whole window yet never issued: same warp occupied
// the slot at both samples, its issue count did not move, it is ready
// right now, and it is not deliberately held back by BOWS back-off.
func (hm *hangMonitor) starvedSlots() [][2]int {
	var out [][2]int
	for i, m := range hm.eng.sms {
		for slot, w := range m.warps {
			if w == nil || w.Done || w.AtBarrier {
				continue
			}
			prev := hm.prevSlots[i][slot]
			if prev.warp != w || m.metrics[slot].Issued != prev.issued {
				continue
			}
			if m.bows != nil && m.bows.BackedOff(slot) {
				continue
			}
			if !m.ready(slot) {
				continue
			}
			out = append(out, [2]int{i, slot})
		}
	}
	return out
}

// sample takes one progress sample and returns a confirmed hang class
// (HangUnknown when the machine looks healthy or the evidence has not
// repeated for two windows yet).
func (hm *hangMonitor) sample() HangClass {
	e := hm.eng
	// Settle dormant SMs' lazy per-cycle credits so the sample reads the
	// exact state a per-cycle run would have at this cycle.
	e.flushSMs()
	issued, useful, spin := e.progressSignals()
	hm.lastIssuedD = issued - hm.prevIssued
	hm.lastUsefulD = useful - hm.prevUseful
	hm.lastSpinD = spin - hm.prevSpin

	class := HangUnknown
	switch {
	case hm.lastIssuedD == 0:
		class = HangDeadlock
	case hm.lastUsefulD == 0 && len(hm.starvedSlots()) > 0:
		class = HangStarvation
	case hm.lastUsefulD == 0 && hm.lastSpinD > 0:
		class = HangLivelock
	}
	hm.lastClass = class

	confirmed := HangUnknown
	if class != HangUnknown && class == hm.pending {
		confirmed = class
	}
	hm.pending = class

	hm.prevIssued, hm.prevUseful, hm.prevSpin = issued, useful, spin
	hm.snapshotSlots()
	hm.next += hm.window
	return confirmed
}

// buildHangReport assembles the full diagnosis. class may be HangUnknown
// (watchdog aborts where no hang signature was confirmed).
func (e *Engine) buildHangReport(hm *hangMonitor, class HangClass) *HangReport {
	r := &HangReport{
		Class:     class,
		Cycle:     e.cycle,
		Kernel:    e.launch.Prog.Name,
		GPU:       e.opt.GPU.Name,
		Sched:     e.opt.Sched,
		CTAsDone:  e.ctasDone,
		TotalCTAs: e.totalCTAs,
		Mem:       e.sys.InFlight(),
	}
	if hm != nil {
		r.Window = hm.window
		r.IssuedInWindow = hm.lastIssuedD
		r.UsefulInWindow = hm.lastUsefulD
		r.SpinInWindow = hm.lastSpinD
	}

	// Parked lock acquires, keyed by (SM, slot): both a state marker and
	// the pending lock address.
	parked := make(map[[2]int]uint32)
	for _, w := range e.sys.ParkedWaiters() {
		key := [2]int{w.SM, w.WarpSlot}
		if _, ok := parked[key]; !ok {
			parked[key] = w.Addr
		}
	}

	for i, m := range e.sms {
		r.MSHRLines = append(r.MSHRLines, m.port.MSHRLines())
		if snap := m.det.TableSnapshot(); len(snap) > 0 {
			r.SIBPT = append(r.SIBPT, SMSIBPT{SM: i, Entries: snap})
		}
		for slot, w := range m.warps {
			if w == nil {
				continue
			}
			wh := WarpHang{
				SM:             i,
				Slot:           slot,
				PC:             w.PC(),
				AtBarrier:      w.AtBarrier,
				BackedOff:      m.bows != nil && m.bows.BackedOff(slot),
				Spinning:       m.det.Spinning(slot),
				OutstandingMem: m.port.Outstanding(slot),
			}
			if hm != nil {
				prev := hm.prevSlots[i][slot]
				if prev.warp == w {
					wh.IssuedInWindow = m.metrics[slot].Issued - prev.issued
				} else {
					wh.IssuedInWindow = m.metrics[slot].Issued
				}
			}
			if addr, ok := parked[[2]int{i, slot}]; ok {
				wh.PendingLock, wh.HasPendingLock = addr, true
			} else if !w.Done {
				if in := w.NextInstr(); in.Op == isa.OpAtomCAS && in.HasAnn(isa.AnnLockAcquire) {
					if mask := w.ActiveMask(); mask != 0 {
						lane := 0
						for mask&(1<<lane) == 0 {
							lane++
						}
						wh.PendingLock, wh.HasPendingLock = w.EvalAddr(in, lane), true
					}
				}
			}
			switch {
			case w.Done:
				wh.State = "done"
			case w.AtBarrier:
				wh.State = "barrier"
			case wh.HasPendingLock && parkedHas(parked, i, slot):
				wh.State = "parked-lock"
			case wh.BackedOff:
				wh.State = "backed-off"
			case m.ready(slot):
				wh.State = "ready"
			case wh.OutstandingMem > 0:
				wh.State = "mem-wait"
			default:
				wh.State = "scoreboard"
			}
			r.Warps = append(r.Warps, wh)
		}
	}
	sort.SliceStable(r.Warps, func(a, b int) bool {
		wa, wb := &r.Warps[a], &r.Warps[b]
		if (wa.State == "done") != (wb.State == "done") {
			return wb.State == "done" // finished warps last
		}
		if wa.IssuedInWindow != wb.IssuedInWindow {
			return wa.IssuedInWindow < wb.IssuedInWindow
		}
		if wa.SM != wb.SM {
			return wa.SM < wb.SM
		}
		return wa.Slot < wb.Slot
	})
	return r
}

func parkedHas(parked map[[2]int]uint32, sm, slot int) bool {
	_, ok := parked[[2]int{sm, slot}]
	return ok
}
