// Determinism suite for the event-driven clock and sharded SM execution:
// both are pure performance levers, so every observable — cycle counts,
// per-SM statistics, DDOS detection quality, the final memory image, the
// metrics snapshot — must be bit-identical to the per-cycle serial run.
// The file lives in package sim_test so it can drive the real benchmark
// kernels (package kernels imports sim).
package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/kernels"
	"warpsched/internal/sim"
)

func detOptions(sms int, kind config.SchedulerKind, bows bool) sim.Options {
	g := config.GTX480().Scaled(sms)
	g.MaxCycles = 10_000_000
	opt := sim.Options{GPU: g, Sched: kind, DDOS: config.DefaultDDOS()}
	if bows {
		opt.BOWS = config.DefaultBOWS()
	} else {
		opt.BOWS = config.BOWS{Mode: config.BOWSOff}
	}
	return opt
}

func runKernel(t *testing.T, k *kernels.Kernel, opt sim.Options) *sim.Result {
	t.Helper()
	eng, err := sim.New(opt, k.Launch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	if err := k.Verify(res.Memory); err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	return res
}

// requireIdentical compares two full results field by field so a
// divergence names what broke rather than dumping two giant structs.
func requireIdentical(t *testing.T, label string, want, got *sim.Result) {
	t.Helper()
	if want.Stats.Cycles != got.Stats.Cycles {
		t.Errorf("%s: cycles %d, want %d", label, got.Stats.Cycles, want.Stats.Cycles)
	}
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Errorf("%s: aggregate stats diverged:\nwant %+v\ngot  %+v", label, want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.PerSM, got.PerSM) {
		t.Errorf("%s: per-SM stats diverged", label)
	}
	if !reflect.DeepEqual(want.Detection, got.Detection) ||
		!reflect.DeepEqual(want.PerSMDetection, got.PerSMDetection) {
		t.Errorf("%s: detection metrics diverged", label)
	}
	if !reflect.DeepEqual(want.ConfirmedSIBs, got.ConfirmedSIBs) ||
		want.MaxSIBPTEntries != got.MaxSIBPTEntries {
		t.Errorf("%s: SIB state diverged", label)
	}
	if !reflect.DeepEqual(want.FinalDelayLimits, got.FinalDelayLimits) {
		t.Errorf("%s: adaptive delay limits diverged: want %v, got %v",
			label, want.FinalDelayLimits, got.FinalDelayLimits)
	}
	if !reflect.DeepEqual(want.Memory, got.Memory) {
		t.Errorf("%s: final memory image diverged", label)
	}
	if !reflect.DeepEqual(want.Metrics, got.Metrics) {
		t.Errorf("%s: metrics snapshot diverged", label)
	}
}

// TestFastForwardCycleExact runs the quick synchronization suite — the
// kernels whose BOWS back-off windows are exactly what fast-forward
// skips — per-cycle and fast-forwarded, under both schedulers the golden
// gate covers, with BOWS off and on.
func TestFastForwardCycleExact(t *testing.T) {
	for _, kind := range []config.SchedulerKind{config.GTO, config.CAWA} {
		for _, bows := range []bool{false, true} {
			for _, k := range kernels.QuickSyncSuite() {
				name := fmt.Sprintf("%s/%s/bows=%v", k.Name, kind, bows)
				t.Run(name, func(t *testing.T) {
					opt := detOptions(2, kind, bows)
					opt.NoFastForward = true
					want := runKernel(t, k, opt)
					opt.NoFastForward = false
					got := runKernel(t, k, opt)
					requireIdentical(t, name, want, got)
				})
			}
		}
	}
}

// TestShardDeterminism runs representative sync and sync-free kernels on
// a 4-SM machine across shard counts (8 clamps to the SM count) and both
// clock implementations, requiring every variant to match the serial
// per-cycle run. Run under -race in CI, this also proves the SM phase is
// data-race-free.
func TestShardDeterminism(t *testing.T) {
	suite := kernels.QuickSyncSuite()
	picks := map[string]bool{"HT": true, "ATM": true, "TSP": true}
	var todo []*kernels.Kernel
	for _, k := range suite {
		if picks[k.Name] {
			todo = append(todo, k)
		}
	}
	if free := kernels.QuickSyncFreeSuite(); len(free) > 0 {
		todo = append(todo, free[0])
	}
	for _, k := range todo {
		t.Run(k.Name, func(t *testing.T) {
			base := detOptions(4, config.GTO, true)
			base.NoFastForward = true
			want := runKernel(t, k, base)
			for _, shards := range []int{1, 2, 8} {
				for _, noFF := range []bool{true, false} {
					opt := base
					opt.Shards = shards
					opt.NoFastForward = noFF
					got := runKernel(t, k, opt)
					requireIdentical(t, fmt.Sprintf("%s/shards=%d/noff=%v", k.Name, shards, noFF), want, got)
				}
			}
		})
	}
}
