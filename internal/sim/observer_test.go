package sim

import (
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/isa"
	"warpsched/internal/simt"
)

// countingObserver tallies memory accesses by op and barrier releases by
// CTA, and snapshots per-access data to check the slice contents are
// meaningful at call time.
type countingObserver struct {
	stores, loads int
	storeAddrs    map[uint32]bool
	releases      map[int32]int
}

func (o *countingObserver) Access(w *simt.Warp, pc int32, in *isa.Instr, accs []simt.MemAccess) {
	switch {
	case in.Op == isa.OpSt:
		o.stores += len(accs)
		for _, a := range accs {
			o.storeAddrs[a.Addr] = true
		}
	case in.Op == isa.OpLd:
		o.loads += len(accs)
	}
}

func (o *countingObserver) BarrierRelease(cta *simt.CTA) {
	o.releases[cta.ID]++
}

func newCountingObserver() *countingObserver {
	return &countingObserver{storeAddrs: map[uint32]bool{}, releases: map[int32]int{}}
}

// TestObserverSeesAccessesAndReleases runs a two-interval stencil
// (store, bar.sync, neighbour load, store) under an observer and checks
// that every access and every barrier release is reported, and that
// observation does not perturb the simulation.
func TestObserverSeesAccessesAndReleases(t *testing.T) {
	b := isa.NewBuilder("observed")
	b.LdParam(2, 0)
	b.LdParam(3, 1)
	b.Mov(1, isa.S(isa.SpecGTID))
	b.St(isa.R(2), isa.R(1), isa.R(1)) // in[gtid] = gtid
	b.Bar()
	b.Xor(4, isa.R(1), isa.I(1))       // neighbour within the pair
	b.Ld(5, isa.R(2), isa.R(4))        // in[gtid^1]
	b.St(isa.R(3), isa.R(1), isa.R(5)) // out[gtid] = neighbour
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	const ctas, threads = 2, 64
	launch := Launch{
		Prog: p, GridCTAs: ctas, CTAThreads: threads,
		Params:   []uint32{0, ctas * threads},
		MemWords: 2 * ctas * threads,
	}

	ob := newCountingObserver()
	opt := testOptions(config.GTO)
	opt.Observer = ob
	eng, err := New(opt, launch)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	const n = ctas * threads
	if ob.stores != 2*n || ob.loads != n {
		t.Errorf("observed %d stores, %d loads; want %d, %d", ob.stores, ob.loads, 2*n, n)
	}
	if len(ob.storeAddrs) != 2*n {
		t.Errorf("observed %d distinct store addresses, want %d", len(ob.storeAddrs), 2*n)
	}
	if len(ob.releases) != ctas {
		t.Fatalf("releases from %d CTAs, want %d: %v", len(ob.releases), ctas, ob.releases)
	}
	for id, k := range ob.releases {
		if k != 1 {
			t.Errorf("CTA %d released %d times, want 1", id, k)
		}
	}

	// Observation-only: the same launch without the observer must produce
	// the same cycle count and memory image.
	eng2, err := New(testOptions(config.GTO), launch)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res2, err := eng2.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stats.Cycles != res2.Stats.Cycles {
		t.Errorf("observer changed cycle count: %d vs %d", res.Stats.Cycles, res2.Stats.Cycles)
	}
	for i := range res.Memory {
		if res.Memory[i] != res2.Memory[i] {
			t.Fatalf("observer changed memory at word %d", i)
		}
	}
}

// TestObserverStragglerRelease covers the second release path: the last
// non-waiting warp exits while another warp sits at a barrier, which
// must still be reported as a release.
func TestObserverStragglerRelease(t *testing.T) {
	b := isa.NewBuilder("straggler")
	b.Mov(1, isa.S(isa.SpecTID))
	b.Setp(isa.GE, 0, isa.R(1), isa.I(32))
	b.BraP(0, false, "out", "out") // warp 1 exits without arriving
	b.Bar()                        // warp 0 waits here
	b.Label("out")
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ob := newCountingObserver()
	opt := testOptions(config.GTO)
	opt.Observer = ob
	eng, err := New(opt, Launch{Prog: p, GridCTAs: 1, CTAThreads: 64, MemWords: 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ob.releases[0] == 0 {
		t.Fatal("straggler exit did not report a barrier release")
	}
}
