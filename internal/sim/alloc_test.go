package sim

import (
	"runtime"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/isa"
)

// aluLoopProg builds a pure-ALU countdown loop: iters iterations of a few
// arithmetic instructions per thread, no memory traffic.
func aluLoopProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("alu-loop")
	b.LdParam(10, 0) // iters
	b.Mov(2, isa.I(0))
	b.Mov(3, isa.S(isa.SpecGTID))
	b.While(0, false,
		func() { b.Setp(isa.LT, 0, isa.R(2), isa.R(10)) },
		func() {
			b.Add(3, isa.R(3), isa.I(7))
			b.Xor(3, isa.R(3), isa.R(2))
			b.Add(2, isa.R(2), isa.I(1))
		})
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// aluRun executes the loop kernel at the given iteration count and
// returns the heap allocations performed by Run (not construction) and
// the warp instructions issued.
func aluRun(t *testing.T, iters uint32) (allocs uint64, instrs int64) {
	t.Helper()
	launch := Launch{
		Prog:       aluLoopProg(t),
		GridCTAs:   4,
		CTAThreads: 64,
		Params:     []uint32{iters},
		MemWords:   64,
	}
	eng, err := New(testOptions(config.GTO), launch)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := eng.Run()
	runtime.ReadMemStats(&m1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m1.Mallocs - m0.Mallocs, res.Stats.WarpInstrs
}

// TestEngineSteadyStateAllocs requires the issue/writeback hot path to be
// allocation-free: growing the per-thread loop count by tens of thousands
// of instructions must not grow Run's heap allocations. Warm-up costs
// (CTA dispatch, scratch growth, GC noise) are identical between the two
// runs, so the delta isolates the steady state.
func TestEngineSteadyStateAllocs(t *testing.T) {
	aSmall, iSmall := aluRun(t, 500)
	aBig, iBig := aluRun(t, 5000)
	dInstr := iBig - iSmall
	if dInstr < 10_000 {
		t.Fatalf("instruction delta too small to measure: %d", dInstr)
	}
	var dAlloc uint64
	if aBig > aSmall {
		dAlloc = aBig - aSmall
	}
	// Allow a small constant slop for runtime-internal allocations
	// (ReadMemStats, GC bookkeeping) — but nothing proportional to the
	// extra instructions.
	if dAlloc > 64 {
		t.Errorf("steady-state allocations: %d extra allocs over %d extra warp instructions (small=%d big=%d)",
			dAlloc, dInstr, aSmall, aBig)
	}
}
