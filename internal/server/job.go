package server

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"warpsched/internal/analysis"
	"warpsched/internal/analysis/race"
	"warpsched/internal/config"
	"warpsched/internal/exp"
	"warpsched/internal/isa"
	"warpsched/internal/kernels"
	"warpsched/internal/sim"
)

// JobConfig is the wire form of a job's simulation configuration. Every
// field here changes simulation results and therefore the cache key;
// execution-strategy knobs (worker count, SM sharding, fast-forward) are
// deliberately server-wide options instead, matching the manifest-hash
// rule that `-j`/`-shards`/`-no-ff` never key results.
type JobConfig struct {
	// GPU selects the machine: "fermi" (GTX480, default) or "pascal"
	// (GTX1080Ti).
	GPU string `json:"gpu,omitempty"`
	// SMs scales the machine down to this many SMs (0 = full machine).
	SMs int `json:"sms,omitempty"`
	// Sched is the baseline scheduler: LRR, GTO (default) or CAWA.
	Sched string `json:"sched,omitempty"`
	// BOWS selects the back-off mode: "off" (default), "ddos" or "static".
	BOWS string `json:"bows,omitempty"`
	// Delay, when non-nil, fixes the back-off delay limit in cycles
	// instead of the adaptive controller (ignored when BOWS is off).
	Delay *int64 `json:"delay,omitempty"`
	// Hash is the DDOS hashing function: "XOR" (default) or "MODULO".
	Hash string `json:"hash,omitempty"`
	// MaxCycles is the watchdog budget for this job. Zero uses the server
	// ceiling; values above the ceiling are rejected at admission.
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// Quick selects the reduced-size variant of a registered kernel (the
	// sizes the test suites and the golden gate run).
	Quick bool `json:"quick,omitempty"`
}

// JobRequest is the body of POST /v1/jobs: either a registered kernel
// name or an inline ISA program, plus the simulation configuration.
type JobRequest struct {
	// Kernel names a registered benchmark kernel (see cmd/warpsim -list).
	// Mutually exclusive with Source.
	Kernel string `json:"kernel,omitempty"`
	// Source is an inline ISA program (the assembly dialect of
	// internal/isa). Inline programs carry no functional verifier; the
	// launch geometry below is required.
	Source string `json:"source,omitempty"`
	// Name labels an inline program (default "inline").
	Name string `json:"name,omitempty"`
	// GridCTAs, CTAThreads, MemWords and Params are the launch geometry
	// for inline programs (ignored for registered kernels, whose
	// registration fixes them).
	GridCTAs   int      `json:"grid_ctas,omitempty"`
	CTAThreads int      `json:"cta_threads,omitempty"`
	MemWords   int      `json:"mem_words,omitempty"`
	Params     []uint32 `json:"params,omitempty"`
	// AllowUnsafe admits an inline program despite inter-warp race
	// analyzer findings (data races, barrier phasing, lock discipline —
	// see internal/analysis/race). The structural/dataflow gate still
	// applies: a program that cannot run correctly is rejected
	// regardless. Registered kernels never need it.
	AllowUnsafe bool `json:"allow_unsafe,omitempty"`
	// Config tunes the simulation; the zero value is GTO on the full
	// Fermi machine with BOWS off.
	Config JobConfig `json:"config"`
	// DeadlineMS, when positive, is the job's start deadline relative to
	// admission: if the queue provably cannot start the job within it
	// (queue depth × observed p50 service time), the submission is shed
	// with 429 + Retry-After instead of occupying a slot, and a job whose
	// deadline passes while queued fails without an engine run. Neither
	// the deadline nor the priority affects results, so neither
	// participates in the cache key.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Priority orders the admission queue: higher runs first, equal
	// priorities keep FIFO order (default 0).
	Priority int `json:"priority,omitempty"`
	// Wait makes the POST synchronous: the response carries the finished
	// job. Without it the response returns immediately with the job id
	// for polling.
	Wait bool `json:"wait,omitempty"`
}

// RequestError is an admission failure: a malformed or invalid job that
// was never enqueued. Status is the HTTP status the handler maps it to.
type RequestError struct {
	Status int
	Msg    string
	// Findings carries the static-analysis diagnostics when admission
	// rejected the program (HTTP 422).
	Findings []analysis.Finding
	// RetryAfter, when positive, is the suggested wait in seconds before
	// resubmitting (sent as the Retry-After header on 429/503).
	RetryAfter int
}

// Error returns the admission failure message.
func (e *RequestError) Error() string { return e.Msg }

func badRequest(format string, args ...any) *RequestError {
	return &RequestError{Status: 400, Msg: fmt.Sprintf(format, args...)}
}

// Resolve validates the request and builds the runnable spec. The
// returned spec is fully determined: GPU.MaxCycles carries the admitted
// watchdog budget so it participates in the variant hash. Unset options
// take their documented defaults, so a zero Options resolves exactly
// like a default server admits.
func (o Options) Resolve(req *JobRequest) (exp.Spec, *RequestError) {
	return o.resolve(req, false)
}

// resolve is Resolve with a switch the saturation breaker uses: with
// skipAnalysis, inline programs bypass admission-time static analysis
// (the expensive step) — safe only because the degraded admission path
// serves such a spec exclusively from the cache tiers, where a result
// can exist only if an earlier, fully-analyzed admission ran it.
func (o Options) resolve(req *JobRequest, skipAnalysis bool) (exp.Spec, *RequestError) {
	o = o.withDefaults()
	var s exp.Spec

	k, rerr := o.resolveKernel(req)
	if rerr != nil {
		return s, rerr
	}
	// Admission-time static analysis: reject programs whose CFG,
	// dataflow or sync discipline is broken before they can occupy a
	// worker. Only inline submissions need it — registered kernels pass
	// by construction (warplint gates them in CI) and skipping them
	// keeps the admission path fast enough for cache-hit traffic.
	if req.Source != "" && !skipAnalysis {
		if rep := analysis.Analyze(k.Launch.Prog); !rep.Clean() {
			return s, &RequestError{Status: 422,
				Msg:      fmt.Sprintf("program %s failed static analysis (%d findings)", k.Name, len(rep.Findings)),
				Findings: rep.Findings}
		}
		// The inter-warp pass runs at the submitted launch geometry, so
		// e.g. a cross-CTA race only fires when grid_ctas > 1. Unlike the
		// structural gate it has a documented escape hatch: allow_unsafe
		// admits the program anyway (the analyzer is conservative, and a
		// user reproducing a racy kernel on purpose needs the run).
		if !req.AllowUnsafe {
			rrep := race.Analyze(k.Launch.Prog, race.Options{
				GridCTAs:   int32(k.Launch.GridCTAs),
				CTAThreads: int32(k.Launch.CTAThreads),
			}).Report
			if !rrep.Clean() {
				return s, &RequestError{Status: 422,
					Msg: fmt.Sprintf("program %s failed race analysis (%d findings; resubmit with allow_unsafe to run anyway)",
						k.Name, len(rrep.Findings)),
					Findings: rrep.Findings}
			}
		}
	}
	s.Kernel = k

	switch strings.ToLower(req.Config.GPU) {
	case "", "fermi", "gtx480":
		s.GPU = config.GTX480()
	case "pascal", "gtx1080ti":
		s.GPU = config.GTX1080Ti()
	default:
		return s, badRequest("unknown gpu %q (want fermi or pascal)", req.Config.GPU)
	}
	if req.Config.SMs < 0 {
		return s, badRequest("sms must be non-negative")
	}
	if req.Config.SMs > 0 {
		s.GPU = s.GPU.Scaled(req.Config.SMs)
	}

	switch kind := config.SchedulerKind(strings.ToUpper(req.Config.Sched)); kind {
	case "":
		s.Sched = config.GTO
	case config.LRR, config.GTO, config.CAWA:
		s.Sched = kind
	default:
		return s, badRequest("unknown scheduler %q (want LRR, GTO or CAWA)", req.Config.Sched)
	}

	switch strings.ToLower(req.Config.BOWS) {
	case "", "off":
		s.BOWS = config.BOWS{Mode: config.BOWSOff}
	case "ddos":
		s.BOWS = config.DefaultBOWS()
	case "static":
		s.BOWS = config.DefaultBOWS()
		s.BOWS.Mode = config.BOWSStatic
	default:
		return s, badRequest("unknown bows mode %q (want off, ddos or static)", req.Config.BOWS)
	}
	if req.Config.Delay != nil && s.BOWS.Mode != config.BOWSOff {
		if *req.Config.Delay < 0 {
			return s, badRequest("delay must be non-negative")
		}
		mode := s.BOWS.Mode
		s.BOWS = config.FixedBOWS(*req.Config.Delay)
		s.BOWS.Mode = mode
	}

	s.DDOS = config.DefaultDDOS()
	switch strings.ToUpper(req.Config.Hash) {
	case "", "XOR":
	case "MODULO":
		s.DDOS.Hash = "MODULO"
	default:
		return s, badRequest("unknown ddos hash %q (want XOR or MODULO)", req.Config.Hash)
	}

	max := req.Config.MaxCycles
	switch {
	case max < 0:
		return s, badRequest("max_cycles must be non-negative")
	case max == 0:
		max = o.MaxJobCycles
	case max > o.MaxJobCycles:
		return s, badRequest("max_cycles %d exceeds the server ceiling %d", max, o.MaxJobCycles)
	}
	// The budget is part of the result (a watchdog abort at 1M cycles is
	// a different outcome than one at 10M), so it must key the cache:
	// store it in the GPU config, which the variant hash covers.
	s.GPU.MaxCycles = max
	s.MaxCycles = max
	return s, nil
}

// kernelCache memoizes registered-kernel construction ("name|quick"
// → *kernels.Kernel). The registry is static and kernels are immutable
// once built (the experiment harness already shares one kernel across
// concurrent runs), so one instance can serve every admission — this
// keeps the hot admission path at microseconds instead of rebuilding
// the whole suite per request.
var kernelCache sync.Map

// resolveKernel maps the request to a program: a registered kernel
// (full-size or, with config.quick, the reduced test-suite variant) or a
// parsed inline program with caller-supplied launch geometry.
func (o Options) resolveKernel(req *JobRequest) (*kernels.Kernel, *RequestError) {
	switch {
	case req.Kernel != "" && req.Source != "":
		return nil, badRequest("kernel and source are mutually exclusive")
	case req.Kernel != "":
		ck := fmt.Sprintf("%s|%v", req.Kernel, req.Config.Quick)
		if k, ok := kernelCache.Load(ck); ok {
			return k.(*kernels.Kernel), nil
		}
		if req.Config.Quick {
			for _, k := range append(kernels.QuickSyncSuite(), kernels.QuickSyncFreeSuite()...) {
				if k.Name == req.Kernel {
					kernelCache.Store(ck, k)
					return k, nil
				}
			}
			return nil, badRequest("unknown quick kernel %q", req.Kernel)
		}
		k, err := kernels.ByName(req.Kernel)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		kernelCache.Store(ck, k)
		return k, nil
	case req.Source != "":
		name := req.Name
		if name == "" {
			name = "inline"
		}
		prog, err := isa.Parse(name, req.Source)
		if err != nil {
			return nil, badRequest("parse inline program: %v", err)
		}
		switch {
		case req.GridCTAs <= 0 || req.CTAThreads <= 0:
			return nil, badRequest("inline programs need positive grid_ctas and cta_threads")
		case req.MemWords <= 0:
			return nil, badRequest("inline programs need positive mem_words")
		case req.MemWords > o.MaxMemWords:
			return nil, badRequest("mem_words %d exceeds the server ceiling %d", req.MemWords, o.MaxMemWords)
		}
		return &kernels.Kernel{
			Name:  name,
			Class: kernels.ClassSync,
			Desc:  "inline submission",
			Launch: sim.Launch{Prog: prog, GridCTAs: req.GridCTAs,
				CTAThreads: req.CTAThreads, MemWords: req.MemWords,
				Params: req.Params},
		}, nil
	default:
		return nil, badRequest("request needs a kernel name or inline source")
	}
}

// CacheKey is the content address of a spec's result:
// FNV-1a over the program's canonical assembly text (so two routes to
// the same instruction stream share results, and any instruction change
// misses), the variant hash over the full configuration (machine
// including the admitted MaxCycles budget, scheduler, BOWS, DDOS, launch
// geometry and parameters — see exp.VariantHash), and the engine's
// semantic version (sim.Version, bumped whenever results can change).
// Deterministic simulation makes this sound: equal key ⇒ byte-equal
// result manifest, with no expiry policy needed beyond LRU memory
// pressure.
func CacheKey(s exp.Spec) string {
	h := fnv.New64a()
	h.Write([]byte(s.Kernel.Launch.Prog.Assembly()))
	return fmt.Sprintf("%016x-%s-v%d", h.Sum64(), exp.VariantHash(s), sim.Version)
}
