package server

import (
	"container/list"
	"sync"
)

// CachedResult is one finished job as stored in the result cache: the
// headline outcome plus the full schema-2 manifest, kept as the exact
// bytes served by GET /v1/results/{key} so repeated hits are
// byte-identical by construction.
type CachedResult struct {
	// Key is the content address the result is stored under.
	Key string `json:"key"`
	// Cycles is the headline cycle count (partial on failed runs).
	Cycles int64 `json:"cycles"`
	// Err is the simulation outcome error, empty on success. Failures
	// are deterministic (watchdog aborts, hang classifications,
	// verification mismatches) and therefore as cacheable as successes.
	Err string `json:"err,omitempty"`
	// Manifest is the serialized metrics.Manifest (schema 2, one run,
	// full per-SM counter resolution).
	Manifest []byte `json:"-"`
}

// size approximates the entry's memory footprint for the cache bound.
func (r *CachedResult) size() int64 {
	return int64(len(r.Manifest) + len(r.Key) + len(r.Err) + 128)
}

// Cache is a byte-bounded LRU over CachedResults. All methods are safe
// for concurrent use. Single-flight deduplication of identical jobs
// lives above it in the server's job index — the cache itself only
// stores finished results.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, evictions int64
}

// NewCache returns an LRU bounded at maxBytes of stored results
// (approximate footprint: manifest bytes plus fixed overhead). A bound
// of zero or less stores nothing, turning the server into a pure
// pass-through — useful for load tests of the miss path.
func NewCache(maxBytes int64) *Cache {
	return &Cache{maxBytes: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached result and marks it most recently used.
func (c *Cache) Get(key string) (*CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*CachedResult), true
}

// Put stores a result, evicting least-recently-used entries until the
// byte bound holds. An entry larger than the whole bound is not stored.
func (c *Cache) Put(r *CachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[r.Key]; ok {
		// Deterministic results make overwrites value-identical; just
		// refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	sz := r.size()
	if sz > c.maxBytes {
		return
	}
	c.items[r.Key] = c.ll.PushFront(r)
	c.bytes += sz
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		victim := c.ll.Remove(el).(*CachedResult)
		delete(c.items, victim.Key)
		c.bytes -= victim.size()
		c.evictions++
	}
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	// Entries and Bytes describe current occupancy; MaxBytes the bound.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	// Hits, Misses and Evictions are cumulative since server start.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// HitRate is Hits/(Hits+Misses), 0 before any lookup.
	HitRate float64 `json:"hit_rate"`
}

// Stats returns current occupancy and cumulative hit/miss/eviction
// counts.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{Entries: len(c.items), Bytes: c.bytes, MaxBytes: c.maxBytes,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
