package server

import (
	"sync"
	"testing"
)

func qjob(priority int, seq int64) *job {
	return &job{priority: priority, seq: seq, done: make(chan struct{})}
}

// TestQueueOrder: higher priority pops first; equal priorities keep
// admission (FIFO) order.
func TestQueueOrder(t *testing.T) {
	q := newJobQueue()
	q.Push(qjob(0, 1))
	q.Push(qjob(5, 2))
	q.Push(qjob(0, 3))
	q.Push(qjob(5, 4))
	q.Push(qjob(-1, 5))
	want := []int64{2, 4, 1, 3, 5}
	for i, w := range want {
		j, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d: queue empty", i)
		}
		if j.seq != w {
			t.Errorf("Pop %d: got seq %d, want %d", i, j.seq, w)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after draining", q.Len())
	}
}

// TestQueueCloseDrains: Close lets Pop drain queued jobs, then every
// blocked or future Pop returns false.
func TestQueueCloseDrains(t *testing.T) {
	q := newJobQueue()
	q.Push(qjob(0, 1))
	q.Push(qjob(0, 2))
	q.Close()
	for i := 0; i < 2; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatalf("Pop %d: queue gave up before draining", i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned a job from a closed empty queue")
	}
}

// TestQueueBlockedPopWakes: workers blocked in Pop wake on Push and on
// Close.
func TestQueueBlockedPopWakes(t *testing.T) {
	q := newJobQueue()
	var wg sync.WaitGroup
	got := make(chan int64, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if j, ok := q.Pop(); ok {
			got <- j.seq
		}
	}()
	q.Push(qjob(0, 7))
	wg.Wait()
	if seq := <-got; seq != 7 {
		t.Errorf("woken Pop got seq %d, want 7", seq)
	}

	exited := make(chan struct{})
	go func() {
		defer close(exited)
		if _, ok := q.Pop(); ok {
			t.Error("Pop returned a job after Close on an empty queue")
		}
	}()
	q.Close()
	<-exited
}
