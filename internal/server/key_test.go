package server

import (
	"strings"
	"testing"
)

// testSrc is a tiny analysis-clean inline program used across the
// server tests: a counted ALU loop whose iteration count comes from
// param 0, so run length is controllable per-test.
const testSrc = `
  ld.param %r2, 0
  mov %r1, 0
loop:
  add %r1, %r1, 1
  setp.lt %p1, %r1, %r2
  @%p1 bra loop
  exit
`

// inlineReq builds a request for testSrc with the given iteration count.
func inlineReq(iters uint32) *JobRequest {
	return &JobRequest{Source: testSrc, Name: "alu-loop",
		GridCTAs: 1, CTAThreads: 32, MemWords: 64, Params: []uint32{iters},
		Config: JobConfig{SMs: 1}}
}

// keyOf resolves a request under default options and returns its cache
// key, failing the test on admission errors.
func keyOf(t *testing.T, o Options, req *JobRequest) string {
	t.Helper()
	spec, rerr := o.withDefaults().Resolve(req)
	if rerr != nil {
		t.Fatalf("resolve: %v", rerr)
	}
	return CacheKey(spec)
}

// TestCacheKeySensitivity: every result-affecting request field must
// change the cache key, or the cache would serve wrong results.
func TestCacheKeySensitivity(t *testing.T) {
	var o Options
	base := func() *JobRequest {
		return &JobRequest{Kernel: "HT",
			Config: JobConfig{SMs: 2, Quick: true, Sched: "GTO", BOWS: "off"}}
	}
	baseKey := keyOf(t, o, base())
	delay := int64(64)

	mutations := map[string]func(r *JobRequest){
		"kernel":     func(r *JobRequest) { r.Kernel = "ST" },
		"gpu":        func(r *JobRequest) { r.Config.GPU = "pascal" },
		"sms":        func(r *JobRequest) { r.Config.SMs = 4 },
		"sched":      func(r *JobRequest) { r.Config.Sched = "CAWA" },
		"bows":       func(r *JobRequest) { r.Config.BOWS = "ddos" },
		"max_cycles": func(r *JobRequest) { r.Config.MaxCycles = 1_000_000 },
	}
	seen := map[string]string{baseKey: "base"}
	for name, mutate := range mutations {
		req := base()
		mutate(req)
		k := keyOf(t, o, req)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q produced the same key as %q (%s)", name, prev, k)
		}
		seen[k] = name
	}

	// BOWS sub-fields only matter once BOWS is on.
	ddos := base()
	ddos.Config.BOWS = "ddos"
	ddosKey := keyOf(t, o, ddos)
	for name, mutate := range map[string]func(r *JobRequest){
		"delay": func(r *JobRequest) { r.Config.Delay = &delay },
		"hash":  func(r *JobRequest) { r.Config.Hash = "MODULO" },
		"mode":  func(r *JobRequest) { r.Config.BOWS = "static" },
	} {
		req := base()
		req.Config.BOWS = "ddos"
		mutate(req)
		if k := keyOf(t, o, req); k == ddosKey {
			t.Errorf("ddos mutation %q did not change the key", name)
		}
	}

	// Stability: resolving the identical request twice gives the same key.
	if again := keyOf(t, o, base()); again != baseKey {
		t.Errorf("same request resolved to different keys: %s vs %s", baseKey, again)
	}
}

// TestCacheKeyInlineSensitivity: for inline programs the key must cover
// the instruction stream, launch geometry and parameters.
func TestCacheKeyInlineSensitivity(t *testing.T) {
	var o Options
	baseKey := keyOf(t, o, inlineReq(100))

	for name, mutate := range map[string]func(r *JobRequest){
		"params":      func(r *JobRequest) { r.Params = []uint32{200} },
		"grid":        func(r *JobRequest) { r.GridCTAs = 2 },
		"cta_threads": func(r *JobRequest) { r.CTAThreads = 64 },
		"mem_words":   func(r *JobRequest) { r.MemWords = 128 },
		"name":        func(r *JobRequest) { r.Name = "other" },
		"instruction": func(r *JobRequest) {
			r.Source = strings.Replace(r.Source, "add %r1, %r1, 1", "add %r1, %r1, 2", 1)
		},
	} {
		req := inlineReq(100)
		mutate(req)
		if k := keyOf(t, o, req); k == baseKey {
			t.Errorf("inline mutation %q did not change the key", name)
		}
	}
}

// TestCacheKeyCanonicalSource: the program is content-addressed by its
// canonical assembly, so comments, blank lines and whitespace do not
// change the key — two routes to the same instruction stream share one
// cached result.
func TestCacheKeyCanonicalSource(t *testing.T) {
	var o Options
	baseKey := keyOf(t, o, inlineReq(100))

	noisy := inlineReq(100)
	noisy.Source = `
  // counted ALU loop        # with comments
  ld.param    %r2,    0

  mov %r1, 0   // init
loop:
  add %r1, %r1, 1
  setp.lt %p1, %r1, %r2
  @%p1 bra loop
  exit
`
	if k := keyOf(t, o, noisy); k != baseKey {
		t.Errorf("comment/whitespace changes altered the key: %s vs %s", k, baseKey)
	}
}

// TestCacheKeyExcludesExecutionStrategy: server-wide execution-strategy
// knobs (worker count, sharding, fast-forward, retries, invariant
// checking) must NOT key results — they cannot change what a
// deterministic simulation computes, only how it is scheduled, matching
// the manifest-hash rule for -j/-shards/-no-ff.
func TestCacheKeyExcludesExecutionStrategy(t *testing.T) {
	plain := keyOf(t, Options{}, inlineReq(100))
	for name, o := range map[string]Options{
		"shards":  {Shards: 4},
		"no-ff":   {NoFastForward: true},
		"workers": {Workers: 2},
		"retries": {Retries: 3},
		"check":   {Check: true},
		"queue":   {QueueDepth: 1},
	} {
		if k := keyOf(t, o, inlineReq(100)); k != plain {
			t.Errorf("server option %q leaked into the cache key", name)
		}
	}
}
