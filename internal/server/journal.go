package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalLine is one JSONL record in the server's recovery journal:
// an admitted job (with its full request, so it can be resubmitted), a
// completion marker, or the max_id header a compaction writes so
// restarts never reuse the id of a job whose admit/done pair was
// compacted away. On restart, admits without a matching done are the
// jobs that were queued or running when the server died, and they are
// re-enqueued before the listener comes up.
type journalLine struct {
	Admit *journalAdmit `json:"admit,omitempty"`
	Done  string        `json:"done,omitempty"`
	MaxID int64         `json:"max_id,omitempty"`
}

type journalAdmit struct {
	ID  string      `json:"id"`
	Req *JobRequest `json:"req"`
}

// JournalStats is the journal's health summary in GET /v1/stats: the
// current file size and what the startup compaction kept, dropped and
// salvaged.
type JournalStats struct {
	// SizeBytes is the journal file's current size (compacted at startup,
	// then growing one line per admit/done until the next restart).
	SizeBytes int64 `json:"size_bytes"`
	// LastCompactionKept and LastCompactionDropped count journal lines
	// kept (unfinished admits) and dropped (finished admit/done pairs and
	// the previous max_id header) by the compaction at startup.
	LastCompactionKept    int64 `json:"last_compaction_kept"`
	LastCompactionDropped int64 `json:"last_compaction_dropped"`
	// SalvagedLines counts corrupt lines skipped while reading the
	// journal back — torn final appends and bit-flipped interior lines
	// alike. When non-zero, the damaged original is preserved at
	// <journal>.corrupt before compaction rewrites the file.
	SalvagedLines int64 `json:"salvaged_lines"`
}

// journal is an append-only JSONL file of job admissions and
// completions. Appends are serialized and flushed line-at-a-time, so a
// crash loses at most the final, possibly torn, line — which recovery
// tolerates (the matching job is simply re-run; determinism makes the
// re-run identical). On every open the journal is compacted: finished
// admit/done pairs are dropped, unfinished admits and a max_id header
// are rewritten through a temp file + atomic rename, so the file's size
// tracks in-flight work instead of growing forever.
type journal struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	w     *bufio.Writer
	size  int64
	stats JournalStats // compaction fields fixed after open; size lives above
}

// openJournal opens (creating if needed) the journal at path and
// returns it plus the admitted-but-unfinished jobs from any previous
// incarnation, in admission order, and the highest numeric job id seen
// anywhere in the file (admits, done markers and the max_id header all
// count, so restarts never reuse the id of an already-finished job).
// Corrupt lines — a torn final append or interior damage — are
// salvaged around, never fatal: the damaged line's record is lost (its
// job, if admitted, is simply not recovered), the rest of the journal
// is kept, and the damaged original is copied to <path>.corrupt before
// the compaction rewrite.
func openJournal(path string) (*journal, []journalAdmit, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, 0, err
	}
	var pending []journalAdmit
	var maxID, salvaged, parsed int64
	seen := func(id string) {
		var n int64
		if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > maxID {
			maxID = n
		}
	}
	doneIdx := make(map[string]bool)
	lines, _ := splitLines(data)
	for _, line := range lines {
		if len(line) == 0 {
			continue
		}
		var jl journalLine
		if jerr := json.Unmarshal(line, &jl); jerr != nil {
			salvaged++
			continue
		}
		parsed++
		switch {
		case jl.Admit != nil:
			pending = append(pending, *jl.Admit)
			seen(jl.Admit.ID)
		case jl.Done != "":
			doneIdx[jl.Done] = true
			seen(jl.Done)
		case jl.MaxID > 0:
			if jl.MaxID > maxID {
				maxID = jl.MaxID
			}
		}
	}
	unfinished := pending[:0]
	for _, a := range pending {
		if !doneIdx[a.ID] {
			unfinished = append(unfinished, a)
		}
	}
	if salvaged > 0 {
		// Keep the damaged original for forensics before compaction
		// overwrites it; salvage never silently destroys evidence.
		if werr := os.WriteFile(path+".corrupt", data, 0o644); werr != nil {
			return nil, nil, 0, fmt.Errorf("server: journal %s: save corrupt copy: %w", path, werr)
		}
	}
	j := &journal{path: path}
	j.stats.SalvagedLines = salvaged
	if err := j.compact(unfinished, maxID, parsed); err != nil {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return j, unfinished, maxID, nil
}

// compact rewrites the journal to its minimal equivalent — a max_id
// header plus the still-unfinished admits — through a temp file and
// atomic rename, so a crash mid-compaction leaves the previous journal
// intact.
func (j *journal) compact(unfinished []journalAdmit, maxID, parsed int64) error {
	var buf bytes.Buffer
	if maxID > 0 {
		line, err := json.Marshal(journalLine{MaxID: maxID})
		if err != nil {
			return fmt.Errorf("server: journal compact: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	for i := range unfinished {
		line, err := json.Marshal(journalLine{Admit: &unfinished[i]})
		if err != nil {
			return fmt.Errorf("server: journal compact: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: journal compact: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("server: journal compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("server: journal compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("server: journal compact: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("server: journal compact: %w", err)
	}
	j.size = int64(buf.Len())
	j.stats.LastCompactionKept = int64(len(unfinished))
	j.stats.LastCompactionDropped = parsed - int64(len(unfinished))
	return nil
}

// statsSnapshot returns the journal's current size alongside the
// startup-compaction summary.
func (j *journal) statsSnapshot() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.SizeBytes = j.size
	return st
}

// splitLines splits data on '\n' and also returns each line's starting
// byte offset.
func splitLines(data []byte) (lines [][]byte, starts []int) {
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			starts = append(starts, start)
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
		starts = append(starts, start)
	}
	return lines, starts
}

func (j *journal) append(jl journalLine) error {
	data, err := json.Marshal(jl)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.size += int64(len(data) + 1)
	return nil
}

// admit journals a job admission before it is enqueued, so a crash
// between admission and completion leaves a recoverable record.
func (j *journal) admit(id string, req *JobRequest) error {
	return j.append(journalLine{Admit: &journalAdmit{ID: id, Req: req}})
}

// done journals a job completion. Results themselves live in the cache
// and the persistent store, not the journal — a store-backed server
// writes the done marker only after the result is durably persisted, so
// an acked result either survives on disk or its job is re-run
// (deterministically, to identical bytes) from the journal.
func (j *journal) done(id string) error {
	return j.append(journalLine{Done: id})
}

// Close flushes and closes the journal file.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
