package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalLine is one JSONL record in the server's recovery journal:
// an admitted job (with its full request, so it can be resubmitted) or
// a completion marker. On restart, admits without a matching done are
// the jobs that were queued or running when the server died, and they
// are re-enqueued before the listener comes up.
type journalLine struct {
	Admit *journalAdmit `json:"admit,omitempty"`
	Done  string        `json:"done,omitempty"`
}

type journalAdmit struct {
	ID  string      `json:"id"`
	Req *JobRequest `json:"req"`
}

// journal is an append-only JSONL file of job admissions and
// completions. Appends are serialized and flushed line-at-a-time, so a
// crash loses at most the final, possibly torn, line — which recovery
// tolerates (the matching job is simply re-run; determinism makes the
// re-run identical).
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openJournal opens (creating if needed) the journal at path and
// returns it plus the admitted-but-unfinished jobs from any previous
// incarnation, in admission order, and the highest numeric job id seen
// anywhere in the file (admits and done markers both count, so restarts
// never reuse the id of an already-finished job). A torn final line is
// discarded; corruption earlier in the file is an error (the file is
// not the one this server wrote).
func openJournal(path string) (*journal, []journalAdmit, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, 0, err
	}
	var pending []journalAdmit
	var maxID int64
	seen := func(id string) {
		var n int64
		if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > maxID {
			maxID = n
		}
	}
	doneIdx := make(map[string]bool)
	valid := int64(len(data)) // length of the well-formed prefix
	if len(data) > 0 {
		lines, starts := splitLines(data)
		for i, line := range lines {
			if len(line) == 0 {
				continue
			}
			var jl journalLine
			if jerr := json.Unmarshal(line, &jl); jerr != nil {
				if i == len(lines)-1 {
					// Torn final line from a crash mid-append: discard it
					// (and truncate it below, so new appends do not fuse
					// with the fragment into a corrupt line).
					valid = int64(starts[i])
					break
				}
				return nil, nil, 0, fmt.Errorf("server: journal %s: line %d corrupt: %v", path, i+1, jerr)
			}
			switch {
			case jl.Admit != nil:
				pending = append(pending, *jl.Admit)
				seen(jl.Admit.ID)
			case jl.Done != "":
				doneIdx[jl.Done] = true
				seen(jl.Done)
			}
		}
	}
	unfinished := pending[:0]
	for _, a := range pending {
		if !doneIdx[a.ID] {
			unfinished = append(unfinished, a)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("server: journal %s: drop torn line: %w", path, err)
		}
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, unfinished, maxID, nil
}

// splitLines splits data on '\n' and also returns each line's starting
// byte offset (so a torn final line can be truncated away).
func splitLines(data []byte) (lines [][]byte, starts []int) {
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			starts = append(starts, start)
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
		starts = append(starts, start)
	}
	return lines, starts
}

func (j *journal) append(jl journalLine) error {
	data, err := json.Marshal(jl)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.w.Flush()
}

// admit journals a job admission before it is enqueued, so a crash
// between admission and completion leaves a recoverable record.
func (j *journal) admit(id string, req *JobRequest) error {
	return j.append(journalLine{Admit: &journalAdmit{ID: id, Req: req}})
}

// done journals a job completion. Results themselves live in the cache,
// not the journal — on recovery the job is re-run (deterministically)
// rather than restored.
func (j *journal) done(id string) error {
	return j.append(journalLine{Done: id})
}

// Close flushes and closes the journal file.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
