package server

import (
	"fmt"
	"sync"
	"testing"
)

func mkResult(key string, payload int) *CachedResult {
	return &CachedResult{Key: key, Cycles: 1, Manifest: make([]byte, payload)}
}

// TestCacheLRUEviction fills the cache past its byte bound and checks
// that the least-recently-used entries leave first, that a Get
// refreshes recency, and that occupancy tracking matches.
func TestCacheLRUEviction(t *testing.T) {
	entrySize := mkResult("kX", 1000).size() // all entries below are equal-sized
	c := NewCache(3 * entrySize)             // room for exactly 3

	for i := 0; i < 3; i++ {
		c.Put(mkResult(fmt.Sprintf("k%d", i), 1000))
	}
	if st := c.Stats(); st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("after 3 puts: %+v", st)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put(mkResult("k3", 1000))
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted (LRU)")
	}
	for _, want := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(want); !ok {
			t.Errorf("%s should have survived", want)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > st.MaxBytes {
		t.Errorf("bytes %d exceeds bound %d", st.Bytes, st.MaxBytes)
	}
}

// TestCacheMemoryBound holds the byte bound under a large randomized-ish
// workload with mixed entry sizes.
func TestCacheMemoryBound(t *testing.T) {
	c := NewCache(64 << 10)
	for i := 0; i < 500; i++ {
		c.Put(mkResult(fmt.Sprintf("k%d", i), 100*(i%37)))
		if st := c.Stats(); st.Bytes > st.MaxBytes {
			t.Fatalf("put %d: bytes %d exceeds bound %d", i, st.Bytes, st.MaxBytes)
		}
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("expected evictions under a 64KiB bound")
	}
}

// TestCacheOversizedEntry: an entry larger than the whole bound is not
// stored and does not evict everything else.
func TestCacheOversizedEntry(t *testing.T) {
	c := NewCache(4 << 10)
	c.Put(mkResult("small", 100))
	c.Put(mkResult("huge", 1<<20))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized entry should not be cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("small entry should have survived the oversized put")
	}
}

// TestCacheDuplicatePut: re-putting an existing key refreshes recency
// without double-counting bytes (deterministic results make the value
// identical by construction).
func TestCacheDuplicatePut(t *testing.T) {
	c := NewCache(1 << 20)
	c.Put(mkResult("k", 1000))
	before := c.Stats().Bytes
	c.Put(mkResult("k", 1000))
	st := c.Stats()
	if st.Bytes != before || st.Entries != 1 {
		t.Errorf("duplicate put changed occupancy: %+v (bytes before %d)", st, before)
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run under
// -race this checks the locking discipline.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(32 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%50)
				if _, ok := c.Get(key); !ok {
					c.Put(mkResult(key, 200))
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > st.MaxBytes {
		t.Errorf("bytes %d exceeds bound %d", st.Bytes, st.MaxBytes)
	}
}
