package server

import "sync"

// jobQueue is the admission queue: a blocking priority queue ordered by
// (priority descending, admission sequence ascending), so higher-priority
// jobs start first and equal-priority jobs keep FIFO order. It replaces
// the earlier channel queue to support deadline-aware scheduling —
// a channel cannot reorder, and deadline shedding needs urgent work to
// overtake the backlog. Unbounded by construction: the admission bound
// (Options.QueueDepth) is enforced by Submit, and journal replay may
// push past it without deadlocking.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*job
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// before is the heap order: higher priority first, then admission order.
func (q *jobQueue) before(a, b *job) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

// Push enqueues a job and wakes one waiting worker. Pushing after Close
// drops the job; the server never does this (all pushes happen under the
// server lock with draining checked).
func (q *jobQueue) Push(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, j)
	q.up(len(q.items) - 1)
	q.cond.Signal()
}

// Pop blocks until a job is available and returns it. After Close it
// keeps returning queued jobs until the queue is empty (drain), then
// returns false.
func (q *jobQueue) Pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = nil
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return j, true
}

// Len returns the number of queued (not yet started) jobs.
func (q *jobQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close stops the queue: Pop drains the remaining items and then
// returns false to every worker.
func (q *jobQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *jobQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(q.items[i], q.items[parent]) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *jobQueue) down(i int) {
	n := len(q.items)
	for {
		best, l, r := i, 2*i+1, 2*i+2
		if l < n && q.before(q.items[l], q.items[best]) {
			best = l
		}
		if r < n && q.before(q.items[r], q.items[best]) {
			best = r
		}
		if best == i {
			return
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
}
