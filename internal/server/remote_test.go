package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"warpsched/internal/config"
	"warpsched/internal/exp"
	"warpsched/internal/kernels"
)

// bowsOff mirrors the harness's BOWS-disabled configuration.
func bowsOff() config.BOWS { return config.BOWS{Mode: config.BOWSOff} }

// TestSpecRequestRegistered: a sweep spec over a registered kernel maps
// back to the kernel-by-name wire route, with quick/full, machine scale,
// scheduler, BOWS mode and the clamped budget all recovered.
func TestSpecRequestRegistered(t *testing.T) {
	quick := kernels.QuickSyncSuite()[0]
	spec := exp.Spec{GPU: config.GTX480().Scaled(2), Sched: config.GTO,
		BOWS: bowsOff(), DDOS: config.DefaultDDOS(), Kernel: quick}
	req, err := SpecRequest(spec)
	if err != nil {
		t.Fatalf("SpecRequest: %v", err)
	}
	if req.Kernel != quick.Name || req.Source != "" || !req.Config.Quick {
		t.Errorf("kernel route: %+v", req)
	}
	if req.Config.GPU != "fermi" || req.Config.SMs != 2 {
		t.Errorf("machine: gpu=%q sms=%d", req.Config.GPU, req.Config.SMs)
	}
	if req.Config.Sched != "GTO" || req.Config.BOWS != "off" || req.Config.Delay != nil {
		t.Errorf("policies: %+v", req.Config)
	}
	// GTX480's 200M default clamps to the experiment budget, which the
	// server re-admits as the job ceiling.
	if req.Config.MaxCycles != 10_000_000 {
		t.Errorf("MaxCycles = %d, want the 10M experiment clamp", req.Config.MaxCycles)
	}

	full := kernels.SyncSuite()[0]
	spec.Kernel = full
	req, err = SpecRequest(spec)
	if err != nil {
		t.Fatalf("SpecRequest full-size: %v", err)
	}
	if req.Kernel != full.Name || req.Config.Quick {
		t.Errorf("full-size kernel mapped to quick: %+v", req)
	}

	// The paper's adaptive BOWS and a fixed-delay variant.
	spec.BOWS = config.DefaultBOWS()
	req, err = SpecRequest(spec)
	if err != nil {
		t.Fatalf("SpecRequest adaptive BOWS: %v", err)
	}
	if req.Config.BOWS != "ddos" || req.Config.Delay != nil {
		t.Errorf("adaptive BOWS: %+v", req.Config)
	}
	spec.BOWS = config.FixedBOWS(500)
	req, err = SpecRequest(spec)
	if err != nil {
		t.Fatalf("SpecRequest fixed BOWS: %v", err)
	}
	if req.Config.BOWS != "ddos" || req.Config.Delay == nil || *req.Config.Delay != 500 {
		t.Errorf("fixed BOWS: %+v", req.Config)
	}
}

// TestSpecRequestInlineRoundTrip: a spec resolved from an inline request
// maps back to an inline request with the same content address.
func TestSpecRequestInlineRoundTrip(t *testing.T) {
	orig := inlineReq(fastIters)
	spec, rerr := Options{}.Resolve(orig)
	if rerr != nil {
		t.Fatalf("Resolve: %v", rerr)
	}
	req, err := SpecRequest(spec)
	if err != nil {
		t.Fatalf("SpecRequest: %v", err)
	}
	if req.Source == "" || req.Kernel != "" {
		t.Fatalf("inline spec did not map to the inline route: %+v", req)
	}
	spec2, rerr := Options{}.Resolve(req)
	if rerr != nil {
		t.Fatalf("re-resolve: %v", rerr)
	}
	if CacheKey(spec2) != CacheKey(spec) {
		t.Errorf("round-trip key %s != %s", CacheKey(spec2), CacheKey(spec))
	}
}

// TestSpecRequestNotMappable: specs the wire cannot express — modified
// registered kernels with host closures, non-default BOWS/DDOS
// parameterizations, hand-edited machines — all fail with
// ErrNotMappable instead of mapping to the wrong result.
func TestSpecRequestNotMappable(t *testing.T) {
	base := func() exp.Spec {
		return exp.Spec{GPU: config.GTX480().Scaled(2), Sched: config.GTO,
			BOWS: bowsOff(), DDOS: config.DefaultDDOS(),
			Kernel: kernels.QuickSyncSuite()[0]}
	}

	// A registered kernel with altered launch parameters is no longer the
	// suite entry, and its Setup/Verify closures cannot go on the wire.
	spec := base()
	clone := *spec.Kernel
	clone.Launch.Params = append(append([]uint32(nil), clone.Launch.Params...), 12345)
	spec.Kernel = &clone
	if clone.Launch.Setup == nil && clone.Verify == nil {
		t.Skip("suite kernel has no host-side closures; inline route would legitimately map it")
	}
	if _, err := SpecRequest(spec); !errors.Is(err, ErrNotMappable) {
		t.Errorf("altered kernel: err = %v, want ErrNotMappable", err)
	}

	spec = base()
	spec.BOWS = config.DefaultBOWS()
	spec.BOWS.WindowCycles++
	if _, err := SpecRequest(spec); !errors.Is(err, ErrNotMappable) {
		t.Errorf("non-default BOWS: err = %v, want ErrNotMappable", err)
	}

	spec = base()
	spec.DDOS.PathBits++
	if _, err := SpecRequest(spec); !errors.Is(err, ErrNotMappable) {
		t.Errorf("non-default DDOS: err = %v, want ErrNotMappable", err)
	}

	spec = base()
	spec.GPU.WarpsPerSM++
	if _, err := SpecRequest(spec); !errors.Is(err, ErrNotMappable) {
		t.Errorf("hand-edited machine: err = %v, want ErrNotMappable", err)
	}
}

// TestRunSpecEndToEnd: RunSpec against a live daemon returns the same
// cycle count as a direct local run, and a second submission is served
// without another engine run.
func TestRunSpecEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, DegradeInterval: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cli := NewClient(ts.URL, ClientOptions{})

	spec, rerr := Options{}.Resolve(inlineReq(fastIters))
	if rerr != nil {
		t.Fatalf("Resolve: %v", rerr)
	}
	out, err := cli.RunSpec(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	if out.Err != nil || out.Res == nil || out.Res.Stats.Cycles <= 0 {
		t.Fatalf("remote outcome: res=%v err=%v", out.Res, out.Err)
	}

	local := exp.Cfg{Jobs: 1}.Execute([]exp.Spec{spec})[0]
	if local.Err != nil {
		t.Fatalf("local run: %v", local.Err)
	}
	if out.Res.Stats.Cycles != local.Res.Stats.Cycles {
		t.Errorf("remote cycles %d != local %d", out.Res.Stats.Cycles, local.Res.Stats.Cycles)
	}
	// Counter reconstruction must fold the manifest's per-SM names into
	// machine totals — every derived metric the experiments consume
	// (instruction counts, sync events, memory traffic) depends on it.
	if got, want := out.Res.Stats.WarpInstrs, local.Res.Stats.WarpInstrs; got != want || got == 0 {
		t.Errorf("remote WarpInstrs %d != local %d (want nonzero)", got, want)
	}
	if got, want := out.Res.Stats.IssueCycles, local.Res.Stats.IssueCycles; got != want || got == 0 {
		t.Errorf("remote IssueCycles %d != local %d (want nonzero)", got, want)
	}
	if out.Res.Stats.Sync != local.Res.Stats.Sync {
		t.Errorf("remote sync events %+v != local %+v", out.Res.Stats.Sync, local.Res.Stats.Sync)
	}
	if out.Res.Stats.Mem != local.Res.Stats.Mem {
		t.Errorf("remote mem stats %+v != local %+v", out.Res.Stats.Mem, local.Res.Stats.Mem)
	}

	again, err := cli.RunSpec(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunSpec (cached): %v", err)
	}
	if again.Res.Stats.Cycles != out.Res.Stats.Cycles {
		t.Errorf("cached remote cycles %d != %d", again.Res.Stats.Cycles, out.Res.Stats.Cycles)
	}
	if runs := s.Stats().Jobs.EngineRuns; runs != 1 {
		t.Errorf("EngineRuns = %d, want 1 (second submission cached)", runs)
	}
}

// TestRunSpecWatchdogOutcome: a remote watchdog abort comes back in the
// local convention — error set, partial result attached.
func TestRunSpecWatchdogOutcome(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, DegradeInterval: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cli := NewClient(ts.URL, ClientOptions{})

	req := inlineReq(slowIters)
	req.Config.MaxCycles = 2000
	spec, rerr := Options{}.Resolve(req)
	if rerr != nil {
		t.Fatalf("Resolve: %v", rerr)
	}
	out, err := cli.RunSpec(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	if out.Err == nil {
		t.Fatal("watchdog abort came back clean")
	}
	if out.Res == nil || out.Res.Stats.Cycles <= 0 {
		t.Errorf("partial result missing: %+v", out.Res)
	}
}
