package server

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitDone blocks until the job finishes, with a test-failing timeout.
func waitDone(t *testing.T, j *job) {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(time.Minute):
		t.Fatal("job did not finish within a minute")
	}
}

// waitRunning spins until the server has n jobs mid-simulation.
func waitRunning(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for s.running.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("server never reached %d running jobs", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStoreTierSurvivesRestart: with StoreDir set, a result computed by
// one server incarnation is served byte-identically by the next from
// disk, with no engine run.
func TestStoreTierSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	req := inlineReq(fastIters)

	a := newTestServer(t, Options{Workers: 1, StoreDir: dir, DegradeInterval: -1})
	j, rerr := a.Submit(req)
	if rerr != nil {
		t.Fatalf("Submit: %v", rerr)
	}
	waitDone(t, j)
	if j.result.Err != "" {
		t.Fatalf("job failed: %s", j.result.Err)
	}
	key, manifest := j.key, j.result.Manifest
	// Shutdown (via Cleanup ordering we do it explicitly here) flushes
	// the async persist queue before returning.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := a.Stats(); st.Jobs.Persisted != 1 {
		t.Fatalf("Persisted = %d, want 1 (stats: %+v)", st.Jobs.Persisted, st.Jobs)
	}

	b := newTestServer(t, Options{Workers: 1, StoreDir: dir, DegradeInterval: -1})
	j2, rerr := b.Submit(req)
	if rerr != nil {
		t.Fatalf("Submit on restart: %v", rerr)
	}
	waitDone(t, j2)
	if !j2.cached {
		t.Error("restart submission was not served from a cache tier")
	}
	if !bytes.Equal(j2.result.Manifest, manifest) {
		t.Error("restarted result bytes differ from the original")
	}
	st := b.Stats()
	if st.Jobs.EngineRuns != 0 {
		t.Errorf("EngineRuns = %d after restart, want 0", st.Jobs.EngineRuns)
	}
	if st.Jobs.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1", st.Jobs.DiskHits)
	}
	if res, ok := b.Result(key); !ok || !bytes.Equal(res.Manifest, manifest) {
		t.Error("Result() does not serve the persisted bytes")
	}
}

// TestDeadlineShed: a deadline the queue provably cannot meet (per the
// observed p50 service time) is rejected at admission with 429 and a
// Retry-After hint, without occupying a queue slot.
func TestDeadlineShed(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, DegradeInterval: -1})
	slow, rerr := s.Submit(inlineReq(slowIters))
	if rerr != nil {
		t.Fatalf("Submit slow: %v", rerr)
	}
	waitRunning(t, s, 1)
	if _, rerr := s.Submit(inlineReq(fastIters)); rerr != nil {
		t.Fatalf("Submit queued: %v", rerr)
	}
	// Teach the estimator a 5s p50 service time; with one queued job on
	// one worker, the estimated start delay is one full 5s wave.
	s.latMu.Lock()
	s.svc.Observe(5_000_000)
	s.latMu.Unlock()

	req := inlineReq(fastIters + 1)
	req.DeadlineMS = 10
	_, rerr = s.Submit(req)
	if rerr == nil {
		t.Fatal("infeasible deadline was admitted")
	}
	if rerr.Status != 429 {
		t.Errorf("status = %d, want 429", rerr.Status)
	}
	if rerr.RetryAfter < 1 {
		t.Errorf("RetryAfter = %d, want >= 1", rerr.RetryAfter)
	}
	if !strings.Contains(rerr.Msg, "deadline") {
		t.Errorf("message %q does not mention the deadline", rerr.Msg)
	}
	if got := s.Stats().Jobs.DeadlineShed; got != 1 {
		t.Errorf("DeadlineShed = %d, want 1", got)
	}
	waitDone(t, slow)
}

// TestDeadlineExpiresInQueue: a job admitted optimistically (no service
// observations yet) whose deadline passes while queued fails at dequeue
// without an engine run.
func TestDeadlineExpiresInQueue(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, DegradeInterval: -1})
	slow, rerr := s.Submit(inlineReq(slowIters))
	if rerr != nil {
		t.Fatalf("Submit slow: %v", rerr)
	}
	waitRunning(t, s, 1)
	req := inlineReq(fastIters)
	req.DeadlineMS = 1
	j, rerr := s.Submit(req)
	if rerr != nil {
		t.Fatalf("Submit deadline job: %v", rerr)
	}
	waitDone(t, j)
	if !strings.Contains(j.result.Err, "deadline exceeded") {
		t.Errorf("result err = %q, want a deadline failure", j.result.Err)
	}
	st := s.Stats()
	if st.Jobs.Expired != 1 {
		t.Errorf("Expired = %d, want 1", st.Jobs.Expired)
	}
	// The expired pseudo-result must never enter a cache tier: the same
	// request without a deadline must run the engine for real.
	waitDone(t, slow)
	j2, rerr := s.Submit(inlineReq(fastIters))
	if rerr != nil {
		t.Fatalf("resubmit: %v", rerr)
	}
	waitDone(t, j2)
	if j2.result.Err != "" || j2.result.Cycles <= 0 {
		t.Errorf("resubmission after expiry: %+v", j2.result)
	}
}

// TestBreakerDegradesInlineAdmission: sustained saturation trips the
// breaker; inline programs are then served only from the cache tiers
// (503 on miss, no static analysis), and slack resets the breaker.
func TestBreakerDegradesInlineAdmission(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, DegradeAfter: 2, DegradeInterval: -1})

	// Prime the cache with one inline result while the pool is idle.
	primed, rerr := s.Submit(inlineReq(fastIters))
	if rerr != nil {
		t.Fatalf("Submit primed: %v", rerr)
	}
	waitDone(t, primed)

	slow, rerr := s.Submit(inlineReq(slowIters))
	if rerr != nil {
		t.Fatalf("Submit slow: %v", rerr)
	}
	waitRunning(t, s, 1)
	queued, rerr := s.Submit(inlineReq(slowIters - 1))
	if rerr != nil {
		t.Fatalf("Submit queued: %v", rerr)
	}

	s.sampleDegrade()
	if s.degraded.Load() {
		t.Fatal("breaker tripped after one window, want two")
	}
	s.sampleDegrade()
	if !s.degraded.Load() {
		t.Fatal("breaker did not trip after DegradeAfter windows")
	}

	// Uncached inline miss: rejected cache-only.
	_, rerr = s.Submit(inlineReq(fastIters + 7))
	if rerr == nil || rerr.Status != 503 {
		t.Fatalf("degraded inline miss: got %v, want 503", rerr)
	}
	if rerr.RetryAfter < 1 {
		t.Errorf("RetryAfter = %d, want >= 1", rerr.RetryAfter)
	}
	// Cached inline hit still serves.
	hit, rerr := s.Submit(inlineReq(fastIters))
	if rerr != nil {
		t.Fatalf("degraded inline hit rejected: %v", rerr)
	}
	waitDone(t, hit)
	if !hit.cached {
		t.Error("degraded inline hit was not served from cache")
	}
	st := s.Stats()
	if !st.Degraded || st.Jobs.RejectedDegraded != 1 || st.Jobs.DegradeTrips != 1 {
		t.Errorf("degraded stats: %+v (degraded=%v)", st.Jobs, st.Degraded)
	}

	waitDone(t, slow)
	waitDone(t, queued)
	s.sampleDegrade() // pool has slack again
	if s.degraded.Load() {
		t.Error("breaker did not reset once the pool drained")
	}
}

// TestJournalCompactsAtStartup: a journal full of finished admit/done
// pairs shrinks to a max_id header on the next open, and ids are never
// reused.
func TestJournalCompactsAtStartup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	s := newTestServer(t, Options{Workers: 1, Journal: path, DegradeInterval: -1})
	j, rerr := s.Submit(inlineReq(fastIters))
	if rerr != nil {
		t.Fatalf("Submit: %v", rerr)
	}
	waitDone(t, j)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	jour, unfinished, maxID, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	defer jour.Close()
	if len(unfinished) != 0 {
		t.Errorf("unfinished = %v, want none", unfinished)
	}
	if maxID != 1 {
		t.Errorf("maxID = %d, want 1", maxID)
	}
	st := jour.statsSnapshot()
	if st.LastCompactionDropped < 2 {
		t.Errorf("LastCompactionDropped = %d, want the admit/done pair gone", st.LastCompactionDropped)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(data, []byte("\n"))
	if lines != 1 || !bytes.Contains(data, []byte(`"max_id":1`)) {
		t.Errorf("compacted journal = %q, want a single max_id line", data)
	}
	if st.SizeBytes != int64(len(data)) {
		t.Errorf("SizeBytes = %d, file is %d", st.SizeBytes, len(data))
	}
}

// TestAckedImpliesDurable: with both a journal and a store, the done
// marker for a fresh result is written only after the bytes are on
// disk, so a post-shutdown journal holds no unfinished work and the
// store holds every result.
func TestAckedImpliesDurable(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	s := newTestServer(t, Options{Workers: 2, Journal: jpath,
		StoreDir: filepath.Join(dir, "store"), DegradeInterval: -1})
	var keys []string
	var jobs []*job
	for i := uint32(0); i < 4; i++ {
		j, rerr := s.Submit(inlineReq(fastIters + i))
		if rerr != nil {
			t.Fatalf("Submit %d: %v", i, rerr)
		}
		jobs = append(jobs, j)
		keys = append(keys, j.key)
	}
	for _, j := range jobs {
		waitDone(t, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := s.Stats(); st.Jobs.Persisted != 4 || st.Jobs.PersistFailed != 0 {
		t.Fatalf("persist stats: %+v", st.Jobs)
	}
	if _, unfinished, _, err := openJournal(jpath); err != nil {
		t.Fatalf("reopen journal: %v", err)
	} else if len(unfinished) != 0 {
		t.Errorf("unfinished after full drain: %v", unfinished)
	}

	s2 := newTestServer(t, Options{Workers: 1, Journal: jpath,
		StoreDir: filepath.Join(dir, "store"), DegradeInterval: -1})
	for _, key := range keys {
		if _, ok := s2.Result(key); !ok {
			t.Errorf("key %s not durable across restart", key)
		}
	}
}
