// Package server is warpsimd's core: a simulation-as-a-service job
// server over the deterministic engine. Jobs (registered kernels or
// inline ISA programs, plus a configuration) are validated with
// internal/analysis at admission, run on a bounded worker pool through
// internal/exp's guarded runner, and their results stored in a
// content-addressed LRU cache keyed by (program FNV, config hash,
// sim.Version) — so repeated submissions, the common case under heavy
// traffic, return instantly and byte-identically. Concurrent identical
// submissions collapse to one engine run (single-flight), a bounded
// queue sheds load with 429, and an append-only journal makes queued
// and running jobs recoverable across restarts.
//
// With Options.StoreDir set, a persistent content-addressed store
// (internal/store) backs the in-memory cache as a second, durable tier:
// misses read through to disk (promoting hits into memory), fresh engine
// results write through asynchronously, and the journal's done marker is
// written only after the result is durable — so every acked result
// either survives restart on disk or is re-run deterministically from
// the journal. Jobs may carry a deadline and priority; work that
// provably cannot start in time is shed at admission with 429 +
// Retry-After, and a saturation breaker degrades inline-program
// admission to cache-only while the pool is overloaded.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"warpsched/internal/exp"
	"warpsched/internal/metrics"
	"warpsched/internal/sim"
	"warpsched/internal/store"
)

// Options configures a Server. The zero value is usable: New fills
// every unset field with the documented default.
type Options struct {
	// Workers bounds the pool of goroutines running simulations
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// rejected with HTTP 429 (default 64).
	QueueDepth int
	// CacheBytes bounds the result cache's memory footprint
	// (default 256 MiB).
	CacheBytes int64
	// MaxJobCycles is the per-job watchdog ceiling: the default budget
	// for jobs that do not set max_cycles, and the upper bound for those
	// that do (default 10M cycles, the experiment harness's clamp).
	MaxJobCycles int64
	// MaxMemWords bounds inline programs' memory size (default 4M words
	// = 16 MiB per running job).
	MaxMemWords int
	// Retries bounds re-runs of panicked simulations, as in exp.Cfg
	// (default 1).
	Retries int
	// Shards and NoFastForward tune engine execution strategy for every
	// job. Neither affects results, so neither participates in cache
	// keys — the same rule that keeps them out of manifest hashes.
	Shards        int
	NoFastForward bool
	// Check arms the runtime invariant checker and early hang aborts on
	// every job.
	Check bool
	// Journal, when non-empty, is the path of the append-only recovery
	// journal: admitted jobs are logged before they run and marked done
	// after, and on startup unfinished entries are re-enqueued.
	Journal string
	// StoreDir, when non-empty, enables the persistent result store: a
	// durable content-addressed tier behind the in-memory cache, written
	// via temp-file + fsync + atomic rename, GC'd by access order, and
	// recovered (corrupt entries quarantined) at startup.
	StoreDir string
	// StoreBytes bounds the persistent store's on-disk footprint
	// (default 4 GiB).
	StoreBytes int64
	// StoreFS overrides the store's filesystem; the chaos harness
	// injects store.FaultFS here to simulate ENOSPC, torn writes and
	// failed renames. Nil means the real filesystem.
	StoreFS store.FS
	// DegradeAfter is the saturation breaker's threshold: after this
	// many consecutive saturated sampling windows (every worker busy and
	// the queue non-empty), inline-program admission degrades to
	// cache-only — static analysis is skipped and misses are rejected
	// with 503 — until a window observes slack (default 5).
	DegradeAfter int
	// DegradeInterval is the breaker's sampling period (default 1s).
	// Negative disables the sampler goroutine; tests then drive
	// sampleDegrade directly for deterministic breaker coverage.
	DegradeInterval time.Duration
	// Log, when non-nil, receives one line per notable server event.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 256 << 20
	}
	if o.MaxJobCycles <= 0 {
		o.MaxJobCycles = 10_000_000
	}
	if o.MaxMemWords <= 0 {
		o.MaxMemWords = 4 << 20
	}
	if o.Retries <= 0 {
		o.Retries = 1
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 5
	}
	if o.DegradeInterval == 0 {
		o.DegradeInterval = time.Second
	}
	return o
}

// jobState is a job's lifecycle position.
type jobState string

const (
	stateQueued  jobState = "queued"
	stateRunning jobState = "running"
	stateDone    jobState = "done"
)

// job is one admitted submission. Identical concurrent submissions
// share a single job (single-flight): ids lists every journaled id the
// job answers for.
type job struct {
	ids      []string
	key      string
	spec     exp.Spec
	state    jobState  // guarded by Server.mu
	cached   bool      // result came from a cache tier, no engine run
	deadline time.Time // zero = none; guarded by Server.mu (attach extends)
	priority int
	seq      int64
	progress atomic.Int64
	admitted time.Time
	result   *CachedResult // set before done is closed
	done     chan struct{}
}

// persistReq is one fresh result on its way to the durable store; the
// job's journal ids ride along so the done markers are written only
// after the bytes are on disk.
type persistReq struct {
	res *CachedResult
	ids []string
}

// Server is the warpsimd daemon core. Create with New, expose via
// Handler, stop with Shutdown.
type Server struct {
	opt   Options
	cache *Cache
	disk  *store.Store // nil without StoreDir
	jour  *journal

	mu     sync.Mutex
	jobs   map[string]*job // every admitted job, by id
	byKey  map[string]*job // queued/running jobs, by cache key (single-flight)
	nextID int64
	seq    int64
	queue  *jobQueue
	drain  bool

	persistCh chan persistReq
	persistWG sync.WaitGroup

	wg      sync.WaitGroup
	start   time.Time
	stop    chan struct{} // closed at Shutdown; stops the breaker sampler
	running atomic.Int64

	latMu   sync.Mutex
	latency *metrics.Histogram
	svc     *metrics.Histogram // engine-run service time (no queueing)

	degraded  atomic.Bool
	satStreak int // breaker sampler state; single-goroutine

	admitted, completed, failed, deduped   atomic.Int64
	rejectedFull, rejectedInvalid, engRuns atomic.Int64
	recovered, deadlineShed, expired       atomic.Int64
	persisted, persistFailed, diskHits     atomic.Int64
	degradeTrips, rejectedDegraded         atomic.Int64
}

// latencyBounds is a 1-2-5 log series from 100µs to 1000s, the bucket
// layout of the end-to-end job latency histogram (p50/p99 resolution
// within one series step).
func latencyBounds() []int64 {
	var out []int64
	for base := int64(100); base <= 100_000_000; base *= 10 {
		out = append(out, base, 2*base, 5*base)
	}
	return append(out, 1_000_000_000)
}

// New builds a server, opens the persistent store (quarantining any
// entries damaged since the last run), replays the recovery journal
// (re-enqueueing jobs that were admitted but unfinished when the
// previous incarnation died), and starts the worker pool, the result
// persister, and the saturation breaker's sampler.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	s := &Server{
		opt:       opt,
		cache:     NewCache(opt.CacheBytes),
		jobs:      make(map[string]*job),
		byKey:     make(map[string]*job),
		queue:     newJobQueue(),
		persistCh: make(chan persistReq, opt.Workers),
		stop:      make(chan struct{}),
		start:     time.Now(),
	}
	reg := metrics.NewRegistry()
	s.latency = reg.Histogram("server.latency_us", latencyBounds())
	s.svc = reg.Histogram("server.service_us", latencyBounds())

	if opt.StoreDir != "" {
		disk, rep, err := store.Open(opt.StoreDir, store.Options{
			MaxBytes: opt.StoreBytes, FS: opt.StoreFS, Log: opt.Log})
		if err != nil {
			return nil, fmt.Errorf("server: open store: %w", err)
		}
		s.disk = disk
		s.logf("store: %s recovered %d/%d entries (%d quarantined, %d evicted at open)",
			opt.StoreDir, rep.Recovered, rep.Scanned, len(rep.Quarantined), rep.EvictedAtOpen)
	}

	var pending []journalAdmit
	if opt.Journal != "" {
		var err error
		s.jour, pending, s.nextID, err = openJournal(opt.Journal)
		if err != nil {
			return nil, fmt.Errorf("server: open journal: %w", err)
		}
	}
	for _, a := range pending {
		s.recover(a)
	}
	for i := 0; i < opt.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.persistWG.Add(1)
	go s.persister()
	if opt.DegradeInterval > 0 {
		go s.degradeSampler()
	}
	return s, nil
}

// recover re-admits one journaled job under its original id. Requests
// that no longer validate (e.g. a ceiling was lowered) are dropped with
// a done marker so they stop reappearing. Deadlines are not replayed —
// wall time has moved on arbitrarily — but priorities are.
func (s *Server) recover(a journalAdmit) {
	spec, rerr := s.opt.Resolve(a.Req)
	if rerr != nil {
		s.logf("journal: dropping unrecoverable job %s: %v", a.ID, rerr)
		s.journalDone(a.ID)
		return
	}
	key := CacheKey(spec)
	if dup, ok := s.byKey[key]; ok {
		// Two unfinished admits of the same configuration: attach the id
		// to the earlier job and mark this admit resolved.
		dup.ids = append(dup.ids, a.ID)
		s.jobs[a.ID] = dup
		s.journalDone(a.ID)
		return
	}
	s.seq++
	j := &job{ids: []string{a.ID}, key: key, spec: spec, state: stateQueued,
		priority: a.Req.Priority, seq: s.seq,
		admitted: time.Now(), done: make(chan struct{})}
	j.spec.Progress = &j.progress
	s.jobs[a.ID] = j
	s.byKey[key] = j
	s.queue.Push(j)
	s.recovered.Add(1)
	s.logf("journal: recovered job %s (%s)", a.ID, key)
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Log != nil {
		s.opt.Log(format, args...)
	}
}

// cfg is the exp harness configuration a worker runs one job under:
// serial in-place execution (the server owns the pool), with the
// runner's panic barrier and bounded retries.
func (s *Server) cfg() exp.Cfg {
	return exp.Cfg{Jobs: 1, Retries: s.opt.Retries, Shards: s.opt.Shards,
		NoFastForward: s.opt.NoFastForward, Check: s.opt.Check}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// fetch looks a key up in both cache tiers: memory first, then the
// persistent store, promoting a disk hit into memory so the bytes
// served stay identical across tiers (the stored payload is the
// manifest verbatim).
func (s *Server) fetch(key string) (*CachedResult, bool) {
	if res, ok := s.cache.Get(key); ok {
		return res, true
	}
	if s.disk == nil {
		return nil, false
	}
	payload, ok := s.disk.Get(key)
	if !ok {
		return nil, false
	}
	res, err := resultFromManifest(key, payload)
	if err != nil {
		// Checksum-valid but semantically unparsable: treat as a miss and
		// leave the entry for operator inspection.
		s.logf("store: entry %s unparsable: %v", key, err)
		return nil, false
	}
	s.diskHits.Add(1)
	s.cache.Put(res)
	return res, true
}

// resultFromManifest rebuilds a CachedResult from a persisted manifest:
// the payload bytes are kept verbatim (byte-identical serving) and the
// headline cycles/error are recovered from the manifest's single run.
func resultFromManifest(key string, payload []byte) (*CachedResult, error) {
	var m metrics.Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, err
	}
	if len(m.Runs) != 1 {
		return nil, fmt.Errorf("want 1 run, got %d", len(m.Runs))
	}
	return &CachedResult{Key: key, Cycles: m.Runs[0].Cycles,
		Err: m.Runs[0].Err, Manifest: payload}, nil
}

// runJob executes one queued job (or resolves it from a cache tier —
// the recovery path can enqueue a key that a later run already filled),
// stores the result, and wakes every waiter. Jobs whose deadline passed
// while queued are failed without an engine run.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	j.state = stateRunning
	deadline := j.deadline
	s.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)

	if !deadline.IsZero() && time.Now().After(deadline) {
		s.expired.Add(1)
		s.finish(j, &CachedResult{Key: j.key,
			Err: "deadline exceeded before start"}, false, false)
		return
	}

	res, cached := s.fetch(j.key)
	fresh := false
	if !cached {
		s.engRuns.Add(1)
		t0 := time.Now()
		out := s.cfg().Execute([]exp.Spec{j.spec})[0]
		s.latMu.Lock()
		s.svc.Observe(time.Since(t0).Microseconds())
		s.latMu.Unlock()
		res = buildResult(j.key, j.spec, out)
		s.cache.Put(res)
		fresh = true
	}
	if res.Err != "" {
		s.failed.Add(1)
	}
	us := time.Since(j.admitted).Microseconds()
	s.latMu.Lock()
	s.latency.Observe(us)
	s.latMu.Unlock()
	s.finish(j, res, cached, fresh)
	s.logf("job %s done: %s cycles=%d err=%q (%.1f ms)",
		j.ids[0], j.key, res.Cycles, res.Err, float64(us)/1e3)
}

// finish publishes a job's result and settles its journal entries. A
// fresh engine result on a store-backed server is handed to the
// persister, which writes the journal done markers only after the bytes
// are durable — the acked-implies-durable half of the recovery
// invariant (the other half: an undurable job still has its journal
// admit, so a crash re-runs it deterministically).
func (s *Server) finish(j *job, res *CachedResult, cached, fresh bool) {
	s.mu.Lock()
	j.result = res
	j.cached = cached
	j.state = stateDone
	delete(s.byKey, j.key)
	s.mu.Unlock()
	close(j.done)
	s.completed.Add(1)

	if fresh && s.disk != nil {
		s.persistCh <- persistReq{res: res, ids: j.ids}
		return
	}
	for _, id := range j.ids {
		s.journalDone(id)
	}
}

// persister is the single write-behind goroutine draining fresh results
// into the persistent store. Persist failures (e.g. ENOSPC) are logged
// and counted but still settle the journal: the result remains served
// from memory, and losing it at a crash is indistinguishable from an
// eviction — the job re-runs deterministically on resubmission.
func (s *Server) persister() {
	defer s.persistWG.Done()
	for p := range s.persistCh {
		if err := s.disk.Put(p.res.Key, p.res.Manifest); err != nil {
			s.persistFailed.Add(1)
			s.logf("store: persist %s: %v", p.res.Key, err)
		} else {
			s.persisted.Add(1)
		}
		for _, id := range p.ids {
			s.journalDone(id)
		}
	}
}

func (s *Server) journalDone(id string) {
	if s.jour == nil {
		return
	}
	if err := s.jour.done(id); err != nil {
		s.logf("journal: done %s: %v", id, err)
	}
}

// degradeSampler drives the saturation breaker on a wall-clock period.
func (s *Server) degradeSampler() {
	t := time.NewTicker(s.opt.DegradeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sampleDegrade()
		case <-s.stop:
			return
		}
	}
}

// sampleDegrade takes one breaker sample: a window is saturated when
// every worker is mid-simulation and jobs are still queued behind them.
// DegradeAfter consecutive saturated windows trip the breaker (inline
// admission degrades to cache-only, skipping static analysis); the
// first window with slack resets it. Tests with DegradeInterval < 0
// call this directly for deterministic schedules.
func (s *Server) sampleDegrade() {
	saturated := s.running.Load() >= int64(s.opt.Workers) && s.queue.Len() > 0
	if !saturated {
		if s.degraded.Load() {
			s.logf("breaker: pool has slack; inline admission restored")
		}
		s.satStreak = 0
		s.degraded.Store(false)
		return
	}
	s.satStreak++
	if s.satStreak >= s.opt.DegradeAfter && !s.degraded.Load() {
		s.degraded.Store(true)
		s.degradeTrips.Add(1)
		s.logf("breaker: %d consecutive saturated windows; inline admission degraded to cache-only", s.satStreak)
	}
}

// Shutdown drains the server: admission stops (503), queued and running
// jobs finish, dirty store writes flush, then the journal closes. A
// journal-backed server killed before the drain completes recovers the
// unfinished jobs on next start. Returns ctx.Err when the deadline
// expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.drain {
		s.mu.Unlock()
		return nil
	}
	s.drain = true
	close(s.stop)
	s.queue.Close() // all pushes happen under mu with drain false
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()        // workers drain the queue...
		close(s.persistCh) // ...then no more persist sends...
		s.persistWG.Wait() // ...and the store flushes before the journal
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.jour != nil {
		return s.jour.Close()
	}
	return nil
}

// retryAfterSeconds rounds a wait estimate up to whole seconds for a
// Retry-After header, minimum 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	return secs + 1
}

// estimateStartDelay estimates how long a job admitted now would queue
// before starting: full waves of already-queued work across the worker
// pool, each lasting the observed p50 engine service time. Before any
// engine run has been observed the estimate is zero — admission stays
// optimistic rather than shedding on no evidence.
func (s *Server) estimateStartDelay() time.Duration {
	s.latMu.Lock()
	n := s.svc.Count()
	p50 := s.svc.Quantile(0.50)
	s.latMu.Unlock()
	if n == 0 {
		return 0
	}
	waves := (s.queue.Len() + s.opt.Workers - 1) / s.opt.Workers
	return time.Duration(waves) * time.Duration(p50) * time.Microsecond
}

// Submit admits one job: validation, two-tier cache lookup,
// single-flight attach, deadline shed, or enqueue. It returns the job
// (possibly already done, on a cache or store hit) or a *RequestError
// carrying the HTTP status.
func (s *Server) Submit(req *JobRequest) (*job, *RequestError) {
	if req.DeadlineMS < 0 {
		s.rejectedInvalid.Add(1)
		return nil, badRequest("deadline_ms must be non-negative")
	}
	// Breaker open: inline programs skip admission-time static analysis
	// (the expensive step the breaker protects) and are served only when
	// their result already exists in a cache tier.
	degradedInline := s.degraded.Load() && req.Source != ""
	spec, rerr := s.opt.resolve(req, degradedInline)
	if rerr != nil {
		s.rejectedInvalid.Add(1)
		return nil, rerr
	}
	key := CacheKey(spec)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drain {
		return nil, &RequestError{Status: http.StatusServiceUnavailable, Msg: "server is draining"}
	}
	if res, ok := s.fetch(key); ok {
		// Admission-time hit (either tier): the job is born finished; no
		// queue slot, no journal entry, no engine run.
		id := s.newID()
		j := &job{ids: []string{id}, key: key, spec: spec, state: stateDone,
			cached: true, admitted: time.Now(), result: res,
			done: make(chan struct{})}
		close(j.done)
		s.jobs[id] = j
		s.admitted.Add(1)
		return j, nil
	}
	if degradedInline {
		s.rejectedDegraded.Add(1)
		return nil, &RequestError{Status: http.StatusServiceUnavailable,
			Msg:        "saturated: inline admission is cache-only until the worker pool drains (breaker open)",
			RetryAfter: retryAfterSeconds(s.estimateStartDelay())}
	}
	if inflight, ok := s.byKey[key]; ok {
		// Single-flight: an identical job is already queued or running;
		// this submission shares it (same id, one engine run). The shared
		// job runs under the laxest deadline of its submitters.
		s.deduped.Add(1)
		if !inflight.deadline.IsZero() {
			if d := reqDeadline(req); d.IsZero() || d.After(inflight.deadline) {
				inflight.deadline = d
			}
		}
		return inflight, nil
	}
	if req.DeadlineMS > 0 {
		if est := s.estimateStartDelay(); est > time.Duration(req.DeadlineMS)*time.Millisecond {
			s.deadlineShed.Add(1)
			return nil, &RequestError{Status: http.StatusTooManyRequests,
				Msg: fmt.Sprintf("deadline %dms cannot be met: estimated queue wait %s",
					req.DeadlineMS, est.Round(time.Millisecond)),
				RetryAfter: retryAfterSeconds(est)}
		}
	}
	if s.queue.Len() >= s.opt.QueueDepth {
		s.rejectedFull.Add(1)
		return nil, &RequestError{Status: http.StatusTooManyRequests,
			Msg:        fmt.Sprintf("queue full (%d jobs)", s.opt.QueueDepth),
			RetryAfter: retryAfterSeconds(s.estimateStartDelay())}
	}
	id := s.newID()
	s.seq++
	j := &job{ids: []string{id}, key: key, spec: spec, state: stateQueued,
		priority: req.Priority, seq: s.seq, deadline: reqDeadline(req),
		admitted: time.Now(), done: make(chan struct{})}
	j.spec.Progress = &j.progress
	s.jobs[id] = j
	s.byKey[key] = j
	if s.jour != nil {
		if err := s.jour.admit(id, req); err != nil {
			delete(s.jobs, id)
			delete(s.byKey, key)
			return nil, &RequestError{Status: http.StatusInternalServerError,
				Msg: fmt.Sprintf("journal write failed: %v", err)}
		}
	}
	s.queue.Push(j)
	s.admitted.Add(1)
	return j, nil
}

// reqDeadline converts a request's relative deadline to absolute wall
// time (zero when the request has none).
func reqDeadline(req *JobRequest) time.Time {
	if req.DeadlineMS <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
}

func (s *Server) newID() string {
	s.nextID++
	return fmt.Sprintf("j%d", s.nextID)
}

// Job returns the admitted job with the given id, if any.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Result returns the result at the given content address from either
// cache tier.
func (s *Server) Result(key string) (*CachedResult, bool) {
	return s.fetch(key)
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	// UptimeS is seconds since the server started.
	UptimeS float64 `json:"uptime_s"`
	// Workers is the pool size; Running how many are mid-simulation.
	Workers int   `json:"workers"`
	Running int64 `json:"running"`
	// QueueDepth/QueueCapacity describe the admission queue.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Degraded reports the saturation breaker's state: true while inline
	// admission is cache-only.
	Degraded bool `json:"degraded"`
	// Jobs counts admissions and outcomes since start.
	Jobs JobStats `json:"jobs"`
	// Cache is the in-memory result cache's occupancy and hit statistics.
	Cache CacheStats `json:"cache"`
	// Store is the persistent tier's occupancy and health; nil when the
	// server runs without one.
	Store *store.Stats `json:"store,omitempty"`
	// Journal is the recovery journal's size and last-compaction summary;
	// nil when the server runs without one.
	Journal *JournalStats `json:"journal,omitempty"`
	// LatencyUS summarizes end-to-end job latency (admission to result,
	// engine runs and queueing included; admission-time cache hits are
	// not observed here — they never enter the queue).
	LatencyUS LatencyStats `json:"latency_us"`
	// ServiceUS summarizes pure engine service time (no queueing), the
	// signal behind deadline shedding and Retry-After estimates.
	ServiceUS LatencyStats `json:"service_us"`
}

// JobStats counts job lifecycle events since server start.
type JobStats struct {
	// Admitted jobs entered the system (including admission-time cache
	// hits); Deduped submissions attached to an in-flight identical job.
	Admitted int64 `json:"admitted"`
	Deduped  int64 `json:"deduped"`
	// Completed jobs finished (Failed of them with a simulation error,
	// Expired with their deadline passed before they could start).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Expired   int64 `json:"expired"`
	// EngineRuns counts actual simulations — the cache and single-flight
	// savings are Admitted+Deduped-EngineRuns.
	EngineRuns int64 `json:"engine_runs"`
	// Recovered jobs were replayed from the journal at startup.
	Recovered int64 `json:"recovered"`
	// Persisted results reached the durable store; PersistFailed writes
	// errored (the result stays served from memory). DiskHits counts
	// lookups answered by the persistent tier.
	Persisted     int64 `json:"persisted"`
	PersistFailed int64 `json:"persist_failed"`
	DiskHits      int64 `json:"disk_hits"`
	// RejectedQueueFull, RejectedInvalid, DeadlineShed and
	// RejectedDegraded were turned away at admission (HTTP 429, 400/422,
	// 429 and 503 respectively). DegradeTrips counts breaker openings.
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedInvalid   int64 `json:"rejected_invalid"`
	DeadlineShed      int64 `json:"deadline_shed"`
	RejectedDegraded  int64 `json:"rejected_degraded"`
	DegradeTrips      int64 `json:"degrade_trips"`
}

// LatencyStats summarizes a latency histogram in microseconds.
type LatencyStats struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// P50 and P99 are bucketed upper-bound estimates; Max is exact.
	P50 int64 `json:"p50"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
	// MeanUS is the exact arithmetic mean.
	MeanUS float64 `json:"mean"`
}

// histStats snapshots one histogram; call with latMu held.
func histStats(h *metrics.Histogram) LatencyStats {
	st := LatencyStats{Count: h.Count(), P50: h.Quantile(0.50),
		P99: h.Quantile(0.99), Max: h.Quantile(1.0)}
	if st.Count > 0 {
		st.MeanUS = float64(h.Sum()) / float64(st.Count)
	}
	return st
}

// Stats returns a point-in-time snapshot of server health.
func (s *Server) Stats() Stats {
	s.latMu.Lock()
	lat := histStats(s.latency)
	svc := histStats(s.svc)
	s.latMu.Unlock()
	st := Stats{
		UptimeS:       time.Since(s.start).Seconds(),
		Workers:       s.opt.Workers,
		Running:       s.running.Load(),
		QueueDepth:    s.queue.Len(),
		QueueCapacity: s.opt.QueueDepth,
		Degraded:      s.degraded.Load(),
		Jobs: JobStats{
			Admitted: s.admitted.Load(), Deduped: s.deduped.Load(),
			Completed: s.completed.Load(), Failed: s.failed.Load(),
			Expired:    s.expired.Load(),
			EngineRuns: s.engRuns.Load(), Recovered: s.recovered.Load(),
			Persisted:         s.persisted.Load(),
			PersistFailed:     s.persistFailed.Load(),
			DiskHits:          s.diskHits.Load(),
			RejectedQueueFull: s.rejectedFull.Load(),
			RejectedInvalid:   s.rejectedInvalid.Load(),
			DeadlineShed:      s.deadlineShed.Load(),
			RejectedDegraded:  s.rejectedDegraded.Load(),
			DegradeTrips:      s.degradeTrips.Load(),
		},
		Cache:     s.cache.Stats(),
		LatencyUS: lat,
		ServiceUS: svc,
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		st.Store = &ds
	}
	if s.jour != nil {
		js := s.jour.statsSnapshot()
		st.Journal = &js
	}
	return st
}

// buildResult renders one outcome into its cacheable form: headline
// cycles/error plus the full schema-2 manifest (per-SM counter
// resolution, like cmd/warpsim -stats-json) serialized once so every
// future hit serves identical bytes — from memory or from the
// persistent store, which keeps exactly these bytes as its payload.
func buildResult(key string, spec exp.Spec, out exp.Outcome) *CachedResult {
	r := &CachedResult{Key: key}
	if out.Err != nil {
		r.Err = out.Err.Error()
	}
	m := metrics.NewManifest("warpsimd", map[string]any{
		"kernel": spec.Kernel.Name, "gpu": spec.GPU.Name,
		"sched": string(spec.Sched), "bows": spec.BOWS.Desc(),
		"ddos": spec.DDOS.Desc(), "max_cycles": spec.MaxCycles,
		"sim_version": sim.Version, "cache_key": key,
	})
	rec := metrics.RunRecord{
		Kernel: spec.Kernel.Name, GPU: spec.GPU.Name,
		Sched: string(spec.Sched), BOWS: spec.BOWS.Desc(),
		DDOS: spec.DDOS.Desc(), Variant: exp.VariantHash(spec),
		Err: r.Err,
	}
	if res := out.Res; res != nil {
		r.Cycles = res.Stats.Cycles
		rec.Cycles = res.Stats.Cycles
		if res.Metrics != nil {
			rec.Counters = res.Metrics.Counters
			rec.Derived = res.Metrics.Gauges
		}
	}
	// Add cannot fail on a fresh manifest's first record; a marshal
	// failure would be a programming error in the metrics layer.
	if err := m.Add(rec); err != nil {
		panic(fmt.Sprintf("server: manifest add: %v", err))
	}
	m.Sort()
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		panic(fmt.Sprintf("server: manifest marshal: %v", err))
	}
	r.Manifest = append(data, '\n')
	return r
}
