// Package server is warpsimd's core: a simulation-as-a-service job
// server over the deterministic engine. Jobs (registered kernels or
// inline ISA programs, plus a configuration) are validated with
// internal/analysis at admission, run on a bounded worker pool through
// internal/exp's guarded runner, and their results stored in a
// content-addressed LRU cache keyed by (program FNV, config hash,
// sim.Version) — so repeated submissions, the common case under heavy
// traffic, return instantly and byte-identically. Concurrent identical
// submissions collapse to one engine run (single-flight), a bounded
// queue sheds load with 429, and an append-only journal makes queued
// and running jobs recoverable across restarts.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"warpsched/internal/exp"
	"warpsched/internal/metrics"
	"warpsched/internal/sim"
)

// Options configures a Server. The zero value is usable: New fills
// every unset field with the documented default.
type Options struct {
	// Workers bounds the pool of goroutines running simulations
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// rejected with HTTP 429 (default 64).
	QueueDepth int
	// CacheBytes bounds the result cache's memory footprint
	// (default 256 MiB).
	CacheBytes int64
	// MaxJobCycles is the per-job watchdog ceiling: the default budget
	// for jobs that do not set max_cycles, and the upper bound for those
	// that do (default 10M cycles, the experiment harness's clamp).
	MaxJobCycles int64
	// MaxMemWords bounds inline programs' memory size (default 4M words
	// = 16 MiB per running job).
	MaxMemWords int
	// Retries bounds re-runs of panicked simulations, as in exp.Cfg
	// (default 1).
	Retries int
	// Shards and NoFastForward tune engine execution strategy for every
	// job. Neither affects results, so neither participates in cache
	// keys — the same rule that keeps them out of manifest hashes.
	Shards        int
	NoFastForward bool
	// Check arms the runtime invariant checker and early hang aborts on
	// every job.
	Check bool
	// Journal, when non-empty, is the path of the append-only recovery
	// journal: admitted jobs are logged before they run and marked done
	// after, and on startup unfinished entries are re-enqueued.
	Journal string
	// Log, when non-nil, receives one line per notable server event.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 256 << 20
	}
	if o.MaxJobCycles <= 0 {
		o.MaxJobCycles = 10_000_000
	}
	if o.MaxMemWords <= 0 {
		o.MaxMemWords = 4 << 20
	}
	if o.Retries <= 0 {
		o.Retries = 1
	}
	return o
}

// jobState is a job's lifecycle position.
type jobState string

const (
	stateQueued  jobState = "queued"
	stateRunning jobState = "running"
	stateDone    jobState = "done"
)

// job is one admitted submission. Identical concurrent submissions
// share a single job (single-flight): ids lists every journaled id the
// job answers for.
type job struct {
	ids      []string
	key      string
	spec     exp.Spec
	state    jobState // guarded by Server.mu
	cached   bool     // result came from the cache, no engine run
	progress atomic.Int64
	admitted time.Time
	result   *CachedResult // set before done is closed
	done     chan struct{}
}

// Server is the warpsimd daemon core. Create with New, expose via
// Handler, stop with Shutdown.
type Server struct {
	opt   Options
	cache *Cache
	jour  *journal

	mu     sync.Mutex
	jobs   map[string]*job // every admitted job, by id
	byKey  map[string]*job // queued/running jobs, by cache key (single-flight)
	nextID int64
	queue  chan *job
	drain  bool

	wg      sync.WaitGroup
	start   time.Time
	running atomic.Int64

	latMu   sync.Mutex
	latency *metrics.Histogram

	admitted, completed, failed, deduped   atomic.Int64
	rejectedFull, rejectedInvalid, engRuns atomic.Int64
	recovered                              atomic.Int64
}

// latencyBounds is a 1-2-5 log series from 100µs to 1000s, the bucket
// layout of the end-to-end job latency histogram (p50/p99 resolution
// within one series step).
func latencyBounds() []int64 {
	var out []int64
	for base := int64(100); base <= 100_000_000; base *= 10 {
		out = append(out, base, 2*base, 5*base)
	}
	return append(out, 1_000_000_000)
}

// New builds a server, replays the recovery journal (re-enqueueing jobs
// that were admitted but unfinished when the previous incarnation
// died), and starts the worker pool.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	s := &Server{
		opt:   opt,
		cache: NewCache(opt.CacheBytes),
		jobs:  make(map[string]*job),
		byKey: make(map[string]*job),
		start: time.Now(),
	}
	reg := metrics.NewRegistry()
	s.latency = reg.Histogram("server.latency_us", latencyBounds())

	var pending []journalAdmit
	if opt.Journal != "" {
		var err error
		s.jour, pending, s.nextID, err = openJournal(opt.Journal)
		if err != nil {
			return nil, fmt.Errorf("server: open journal: %w", err)
		}
	}
	// Size the queue to hold every recovered job on top of the normal
	// bound, so replay can never trip the 429 path.
	s.queue = make(chan *job, opt.QueueDepth+len(pending))
	for _, a := range pending {
		s.recover(a)
	}
	for i := 0; i < opt.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover re-admits one journaled job under its original id. Requests
// that no longer validate (e.g. a ceiling was lowered) are dropped with
// a done marker so they stop reappearing.
func (s *Server) recover(a journalAdmit) {
	spec, rerr := s.opt.Resolve(a.Req)
	if rerr != nil {
		s.logf("journal: dropping unrecoverable job %s: %v", a.ID, rerr)
		s.journalDone(a.ID)
		return
	}
	key := CacheKey(spec)
	if dup, ok := s.byKey[key]; ok {
		// Two unfinished admits of the same configuration: attach the id
		// to the earlier job and mark this admit resolved.
		dup.ids = append(dup.ids, a.ID)
		s.jobs[a.ID] = dup
		s.journalDone(a.ID)
		return
	}
	j := &job{ids: []string{a.ID}, key: key, spec: spec, state: stateQueued,
		admitted: time.Now(), done: make(chan struct{})}
	j.spec.Progress = &j.progress
	s.jobs[a.ID] = j
	s.byKey[key] = j
	s.queue <- j
	s.recovered.Add(1)
	s.logf("journal: recovered job %s (%s)", a.ID, key)
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Log != nil {
		s.opt.Log(format, args...)
	}
}

// cfg is the exp harness configuration a worker runs one job under:
// serial in-place execution (the server owns the pool), with the
// runner's panic barrier and bounded retries.
func (s *Server) cfg() exp.Cfg {
	return exp.Cfg{Jobs: 1, Retries: s.opt.Retries, Shards: s.opt.Shards,
		NoFastForward: s.opt.NoFastForward, Check: s.opt.Check}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one queued job (or resolves it from the cache — the
// recovery path can enqueue a key that a later run already filled),
// stores the result, and wakes every waiter.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	j.state = stateRunning
	s.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)

	res, ok := s.cache.Get(j.key)
	cached := ok
	if !ok {
		s.engRuns.Add(1)
		out := s.cfg().Execute([]exp.Spec{j.spec})[0]
		res = buildResult(j.key, j.spec, out)
		s.cache.Put(res)
	}

	s.mu.Lock()
	j.result = res
	j.cached = cached
	j.state = stateDone
	delete(s.byKey, j.key)
	s.mu.Unlock()
	close(j.done)

	s.completed.Add(1)
	if res.Err != "" {
		s.failed.Add(1)
	}
	us := time.Since(j.admitted).Microseconds()
	s.latMu.Lock()
	s.latency.Observe(us)
	s.latMu.Unlock()
	for _, id := range j.ids {
		s.journalDone(id)
	}
	s.logf("job %s done: %s cycles=%d err=%q (%.1f ms)",
		j.ids[0], j.key, res.Cycles, res.Err, float64(us)/1e3)
}

func (s *Server) journalDone(id string) {
	if s.jour == nil {
		return
	}
	if err := s.jour.done(id); err != nil {
		s.logf("journal: done %s: %v", id, err)
	}
}

// Shutdown drains the server: admission stops (503), queued and running
// jobs finish, then the journal closes. A journal-backed server killed
// before the drain completes recovers the unfinished jobs on next
// start. Returns ctx.Err when the deadline expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.drain {
		s.mu.Unlock()
		return nil
	}
	s.drain = true
	close(s.queue) // all sends happen under mu with drain false
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.jour != nil {
		return s.jour.Close()
	}
	return nil
}

// Submit admits one job: validation, cache lookup, single-flight
// attach, or enqueue. It returns the job (possibly already done, on a
// cache hit) or a *RequestError carrying the HTTP status.
func (s *Server) Submit(req *JobRequest) (*job, *RequestError) {
	spec, rerr := s.opt.Resolve(req)
	if rerr != nil {
		s.rejectedInvalid.Add(1)
		return nil, rerr
	}
	key := CacheKey(spec)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drain {
		return nil, &RequestError{Status: http.StatusServiceUnavailable, Msg: "server is draining"}
	}
	if res, ok := s.cache.Get(key); ok {
		// Admission-time hit: the job is born finished; no queue slot, no
		// journal entry, no engine run.
		id := s.newID()
		j := &job{ids: []string{id}, key: key, spec: spec, state: stateDone,
			cached: true, admitted: time.Now(), result: res,
			done: make(chan struct{})}
		close(j.done)
		s.jobs[id] = j
		s.admitted.Add(1)
		return j, nil
	}
	if inflight, ok := s.byKey[key]; ok {
		// Single-flight: an identical job is already queued or running;
		// this submission shares it (same id, one engine run).
		s.deduped.Add(1)
		return inflight, nil
	}
	if len(s.queue) >= s.opt.QueueDepth {
		s.rejectedFull.Add(1)
		return nil, &RequestError{Status: http.StatusTooManyRequests,
			Msg: fmt.Sprintf("queue full (%d jobs)", s.opt.QueueDepth)}
	}
	id := s.newID()
	j := &job{ids: []string{id}, key: key, spec: spec, state: stateQueued,
		admitted: time.Now(), done: make(chan struct{})}
	j.spec.Progress = &j.progress
	s.jobs[id] = j
	s.byKey[key] = j
	if s.jour != nil {
		if err := s.jour.admit(id, req); err != nil {
			delete(s.jobs, id)
			delete(s.byKey, key)
			return nil, &RequestError{Status: http.StatusInternalServerError,
				Msg: fmt.Sprintf("journal write failed: %v", err)}
		}
	}
	s.queue <- j // cannot block: length checked under mu, workers only drain
	s.admitted.Add(1)
	return j, nil
}

func (s *Server) newID() string {
	s.nextID++
	return fmt.Sprintf("j%d", s.nextID)
}

// Job returns the admitted job with the given id, if any.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Result returns the cached result at the given content address.
func (s *Server) Result(key string) (*CachedResult, bool) {
	return s.cache.Get(key)
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	// UptimeS is seconds since the server started.
	UptimeS float64 `json:"uptime_s"`
	// Workers is the pool size; Running how many are mid-simulation.
	Workers int   `json:"workers"`
	Running int64 `json:"running"`
	// QueueDepth/QueueCapacity describe the admission queue.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Jobs counts admissions and outcomes since start.
	Jobs JobStats `json:"jobs"`
	// Cache is the result cache's occupancy and hit statistics.
	Cache CacheStats `json:"cache"`
	// LatencyUS summarizes end-to-end job latency (admission to result,
	// engine runs and queueing included; admission-time cache hits are
	// not observed here — they never enter the queue).
	LatencyUS LatencyStats `json:"latency_us"`
}

// JobStats counts job lifecycle events since server start.
type JobStats struct {
	// Admitted jobs entered the system (including admission-time cache
	// hits); Deduped submissions attached to an in-flight identical job.
	Admitted int64 `json:"admitted"`
	Deduped  int64 `json:"deduped"`
	// Completed jobs finished (Failed of them with a simulation error).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// EngineRuns counts actual simulations — the cache and single-flight
	// savings are Admitted+Deduped-EngineRuns.
	EngineRuns int64 `json:"engine_runs"`
	// Recovered jobs were replayed from the journal at startup.
	Recovered int64 `json:"recovered"`
	// RejectedQueueFull and RejectedInvalid were turned away at
	// admission (HTTP 429 and 400/422 respectively).
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedInvalid   int64 `json:"rejected_invalid"`
}

// LatencyStats summarizes the job latency histogram in microseconds.
type LatencyStats struct {
	// Count is the number of completed (non-admission-hit) jobs.
	Count int64 `json:"count"`
	// P50 and P99 are bucketed upper-bound estimates; Max is exact.
	P50 int64 `json:"p50"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
	// MeanUS is the exact arithmetic mean.
	MeanUS float64 `json:"mean"`
}

// Stats returns a point-in-time snapshot of server health.
func (s *Server) Stats() Stats {
	s.latMu.Lock()
	lat := LatencyStats{Count: s.latency.Count(),
		P50: s.latency.Quantile(0.50), P99: s.latency.Quantile(0.99),
		Max: s.latency.Quantile(1.0)}
	if lat.Count > 0 {
		lat.MeanUS = float64(s.latency.Sum()) / float64(lat.Count)
	}
	s.latMu.Unlock()
	return Stats{
		UptimeS:       time.Since(s.start).Seconds(),
		Workers:       s.opt.Workers,
		Running:       s.running.Load(),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.opt.QueueDepth,
		Jobs: JobStats{
			Admitted: s.admitted.Load(), Deduped: s.deduped.Load(),
			Completed: s.completed.Load(), Failed: s.failed.Load(),
			EngineRuns: s.engRuns.Load(), Recovered: s.recovered.Load(),
			RejectedQueueFull: s.rejectedFull.Load(),
			RejectedInvalid:   s.rejectedInvalid.Load(),
		},
		Cache:     s.cache.Stats(),
		LatencyUS: lat,
	}
}

// buildResult renders one outcome into its cacheable form: headline
// cycles/error plus the full schema-2 manifest (per-SM counter
// resolution, like cmd/warpsim -stats-json) serialized once so every
// future hit serves identical bytes.
func buildResult(key string, spec exp.Spec, out exp.Outcome) *CachedResult {
	r := &CachedResult{Key: key}
	if out.Err != nil {
		r.Err = out.Err.Error()
	}
	m := metrics.NewManifest("warpsimd", map[string]any{
		"kernel": spec.Kernel.Name, "gpu": spec.GPU.Name,
		"sched": string(spec.Sched), "bows": spec.BOWS.Desc(),
		"ddos": spec.DDOS.Desc(), "max_cycles": spec.MaxCycles,
		"sim_version": sim.Version, "cache_key": key,
	})
	rec := metrics.RunRecord{
		Kernel: spec.Kernel.Name, GPU: spec.GPU.Name,
		Sched: string(spec.Sched), BOWS: spec.BOWS.Desc(),
		DDOS: spec.DDOS.Desc(), Variant: exp.VariantHash(spec),
		Err: r.Err,
	}
	if res := out.Res; res != nil {
		r.Cycles = res.Stats.Cycles
		rec.Cycles = res.Stats.Cycles
		if res.Metrics != nil {
			rec.Counters = res.Metrics.Counters
			rec.Derived = res.Metrics.Gauges
		}
	}
	// Add cannot fail on a fresh manifest's first record; a marshal
	// failure would be a programming error in the metrics layer.
	if err := m.Add(rec); err != nil {
		panic(fmt.Sprintf("server: manifest add: %v", err))
	}
	m.Sort()
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		panic(fmt.Sprintf("server: manifest marshal: %v", err))
	}
	r.Manifest = append(data, '\n')
	return r
}
